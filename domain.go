package epidemic

import (
	"epidemic/internal/domain"
)

// Clearinghouse-style partial replication (§0.1 of the paper): the key
// space is partitioned into named domains, each replicated at its own
// subset of servers, every domain gossiping independently among the sites
// that store it.
type (
	// DomainAssignment maps domain names to the sites replicating them.
	DomainAssignment = domain.Assignment
	// DomainHost is one server storing several domains.
	DomainHost = domain.Host
	// DomainHostConfig configures a DomainHost.
	DomainHostConfig = domain.HostConfig
)

// ErrNotHosted is returned for operations on a domain a host does not
// store.
var ErrNotHosted = domain.ErrNotHosted

// NewDomainHost builds a server storing its share of the assignment.
func NewDomainHost(cfg DomainHostConfig, assignment DomainAssignment) (*DomainHost, error) {
	return domain.NewHost(cfg, assignment)
}

// WireDomainHosts connects hosts per the assignment with in-process peers.
func WireDomainHosts(hosts map[SiteID]*DomainHost, assignment DomainAssignment, seed int64) error {
	return domain.Wire(hosts, assignment, seed)
}
