GO ?= go

# BENCH_OUT numbers the machine-readable bench report; bump per PR.
# BENCH_4 is the outbound-engine report: direct-mail fan-out serial vs
# outbox, the rumor-apply lock ablation, and a re-run of the wire rows.
BENCH_OUT ?= BENCH_4.json
BENCH_BASELINE ?= docs/bench-seed.txt
# SCRATCH collects transient command output (bench logs, smoke logs);
# the whole directory is gitignored and removed by clean.
SCRATCH ?= .scratch
# STORE_BENCH pins the store microbenchmarks to a fixed iteration count
# and a -cpu sweep so sharded-vs-mutex ratios are comparable across runs.
STORE_BENCH = -run '^$$' -bench BenchmarkStore -benchtime=200000x -cpu 1,4,8 -benchmem ./internal/store
# WIRE_BENCH / CODEC_BENCH pin the transport benchmarks to fixed iteration
# counts so UDP-vs-TCP and binary-vs-gob ratios are stable run to run (the
# 1x suite pass skips them — see bench).
WIRE_BENCH = -run '^$$' -bench '^(BenchmarkExchange|BenchmarkRumorPush)' -benchtime=2000x -benchmem .
CODEC_BENCH = -run '^$$' -bench Codec -benchtime=20000x -benchmem ./internal/transport
# DEEP_BENCH is the deep-divergence family: delta old entries buried under
# {10k,100k} newer ones, shard-vector vs global peel-back. Few iterations —
# the global baseline walks the whole index per op by design.
DEEP_BENCH = -run '^$$' -bench BenchmarkDeepDivergence -benchtime=3x -benchmem .
# FANOUT_BENCH / APPLY_BENCH pin the outbound-engine benchmarks: direct
# mail to 1ms-latency peers, serial vs worker-pool outbox, and the
# rumor-apply batched-vs-per-entry lock ablation. Iterations are fixed so
# the serial/outbox ratio is stable run to run (the 1x suite pass covers
# fan-out; the apply ablation lives in ./internal/node).
FANOUT_BENCH = -run '^$$' -bench BenchmarkDirectMailFanout -benchtime=5x -benchmem .
APPLY_BENCH = -run '^$$' -bench BenchmarkApplyRumors -benchtime=5000x -benchmem ./internal/node

.PHONY: all build test check race cover bench bench-store bench-transport bench-node bench-smoke experiments fuzz obs-smoke cluster-smoke clean

all: build test check

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

# check is the pre-merge gate: static analysis, a fast race pass over the
# sharded store (the most concurrency-sensitive package), the race
# detector over the whole module (daemons included), and the
# observability and cluster-observatory smoke tests.
check:
	$(GO) vet ./...
	$(GO) test -race -count=1 ./internal/store/...
	$(GO) test -race -count=1 -run 'Outbox|MailBatch|SlowPeer|RedistributeMail' ./internal/node ./internal/transport
	$(GO) test -race ./...
	$(MAKE) obs-smoke
	$(MAKE) cluster-smoke
	$(MAKE) bench-smoke

# obs-smoke boots a 3-daemon gossipd cluster on ephemeral ports, scrapes
# every replica's /metrics, /healthz, /events, /metrics/history and
# /flight, then re-boots the cluster, kills one daemon, and fails unless
# each survivor records exactly one stale-digest flight dump with
# non-empty correlated sections. The verbose log and the flight dumps
# land in $(SCRATCH) for CI artifact upload on failure.
obs-smoke:
	@mkdir -p $(SCRATCH)
	FLIGHT_SMOKE_DIR=$(abspath $(SCRATCH))/flight-smoke \
		$(GO) test -race -v -run 'TestObsSmoke|TestFlightDumpOnDaemonKill' -count=1 ./cmd/gossipd > $(SCRATCH)/obs-smoke.log 2>&1; \
		status=$$?; cat $(SCRATCH)/obs-smoke.log; exit $$status

# cluster-smoke boots a 3-daemon cluster with gossip-borne health digests,
# waits for every replica's /cluster view to cover all three sites, kills
# one daemon, and fails unless the survivors mark it stale and degrade
# /healthz. The verbose log lands in $(SCRATCH) for CI artifact upload.
cluster-smoke:
	@mkdir -p $(SCRATCH)
	$(GO) test -race -v -run TestClusterSmoke -count=1 ./cmd/gossipd > $(SCRATCH)/cluster-smoke.log 2>&1; \
		status=$$?; cat $(SCRATCH)/cluster-smoke.log; exit $$status

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# bench runs the full benchmark suite once per benchmark, appends the
# store -cpu sweep, and converts the output into $(BENCH_OUT): ns/op,
# B/op, allocs/op and the paper metrics per benchmark, with the
# seed-state baseline numbers embedded for before/after comparison.
bench:
	@mkdir -p $(SCRATCH)
	$(GO) test -bench . -skip 'BenchmarkExchange|BenchmarkRumorPush|BenchmarkDeepDivergence' -benchtime=1x -benchmem . | tee $(SCRATCH)/bench_output.txt
	$(GO) test $(STORE_BENCH) | tee -a $(SCRATCH)/bench_output.txt
	$(GO) test $(WIRE_BENCH) | tee -a $(SCRATCH)/bench_output.txt
	$(GO) test $(CODEC_BENCH) | tee -a $(SCRATCH)/bench_output.txt
	$(GO) test $(DEEP_BENCH) | tee -a $(SCRATCH)/bench_output.txt
	$(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) -o $(BENCH_OUT) < $(SCRATCH)/bench_output.txt

# bench-store compares the sharded store against a single-mutex replica
# of the seed design on mixed Get/Update/Checksum/RecentUpdates
# workloads at 1, 4 and 8 procs (see internal/store/bench_test.go).
bench-store:
	$(GO) test $(STORE_BENCH)

# bench-transport measures the wire protocol in isolation: pooled vs
# dial-per-request exchanges (binary and gob codecs), UDP-vs-TCP rumor
# pushes, the O(δ) peel-back mismatch benchmark, and the raw codec
# encode/round-trip microbenchmarks, with allocation counts.
bench-transport:
	$(GO) test $(WIRE_BENCH)
	$(GO) test $(CODEC_BENCH)
	$(GO) test $(DEEP_BENCH)

# bench-node is this PR's report: the direct-mail fan-out comparison, the
# rumor-apply lock ablation, and a re-run of the wire exchange/rumor rows
# so $(BENCH_OUT) carries fresh transport numbers from the same machine.
bench-node:
	@mkdir -p $(SCRATCH)
	$(GO) test $(FANOUT_BENCH) | tee $(SCRATCH)/bench_node.txt
	$(GO) test $(APPLY_BENCH) | tee -a $(SCRATCH)/bench_node.txt
	$(GO) test $(WIRE_BENCH) | tee -a $(SCRATCH)/bench_node.txt
	$(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) -o $(BENCH_OUT) < $(SCRATCH)/bench_node.txt

# bench-smoke is the compile-and-run gate inside check: the deep-divergence
# family at one iteration on the 10k store, so bench code can't rot between
# BENCH_2.json refreshes. The 100k rows are left to bench/bench-transport —
# the global baseline there walks 100k records per op by design.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkDeepDivergence[^/]*/n10000_' -benchtime=1x -benchmem .

# Regenerate every table and figure of the paper.
experiments:
	$(GO) run ./cmd/epidemicsim -exp all -trials 100

fuzz:
	$(GO) test ./internal/store -fuzz FuzzApply -fuzztime 30s
	$(GO) test ./internal/store -fuzz FuzzLoad -fuzztime 30s
	$(GO) test ./internal/transport -fuzz FuzzDecodeFrame -fuzztime 30s

clean:
	rm -f test_output.txt bench_output.txt
	rm -rf $(SCRATCH) internal/store/testdata/fuzz
