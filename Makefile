GO ?= go

.PHONY: all build test race cover bench experiments fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure of the paper.
experiments:
	$(GO) run ./cmd/epidemicsim -exp all -trials 100

fuzz:
	$(GO) test ./internal/store -fuzz FuzzApply -fuzztime 30s
	$(GO) test ./internal/store -fuzz FuzzLoad -fuzztime 30s

clean:
	rm -f test_output.txt bench_output.txt
	rm -rf internal/store/testdata/fuzz
