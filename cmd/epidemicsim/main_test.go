package main

import (
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "nope", 100, 1, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunEachExperimentSmoke(t *testing.T) {
	// Tiny populations/trials: just prove every runner produces output.
	tests := []struct {
		exp  string
		want string
	}{
		{"table1", "Table 1"},
		{"table2", "Table 2"},
		{"table3", "Table 3"},
		{"figure1", "Figure 1"},
		{"figure2", "Figure 2"},
		{"convergence", "push model"},
		{"law", "lambda"},
		{"minimization", "minimization"},
		{"deathcert", "resurrected"},
		{"backup", "backup"},
		{"methods", "direct mail"},
		{"dormant", "history"},
		{"async", "async"},
		{"hybrid", "strategy"},
	}
	for _, tt := range tests {
		t.Run(tt.exp, func(t *testing.T) {
			var b strings.Builder
			if err := run(&b, tt.exp, 120, 2, 1); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(b.String(), tt.want) {
				t.Errorf("output missing %q:\n%s", tt.want, b.String())
			}
		})
	}
}

func TestRunCINTables(t *testing.T) {
	if testing.Short() {
		t.Skip("CIN tables are slower")
	}
	for _, exp := range []string{"table4", "table5"} {
		var b strings.Builder
		if err := run(&b, exp, 0, 2, 1); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "Bushey") {
			t.Errorf("%s output missing Bushey", exp)
		}
	}
}

func TestRunLine(t *testing.T) {
	if testing.Short() {
		t.Skip("line sweep is slower")
	}
	var b strings.Builder
	if err := run(&b, "line", 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "t_last") {
		t.Error("line output wrong")
	}
}

func TestRunSlowerExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("slower experiment runners")
	}
	tests := []struct {
		exp  string
		want string
	}{
		{"kadjust", "100%"},
		{"tauwindow", "tau"},
		{"staleness", "currency"},
		{"remail", "policy"},
		{"maillinks", "Bushey"},
	}
	for _, tt := range tests {
		t.Run(tt.exp, func(t *testing.T) {
			var b strings.Builder
			if err := run(&b, tt.exp, 100, 3, 1); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(b.String(), tt.want) {
				t.Errorf("output missing %q", tt.want)
			}
		})
	}
}

func TestRunConnLimit(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "connlimit", 150, 2, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "hunt") {
		t.Error("connlimit output wrong")
	}
}
