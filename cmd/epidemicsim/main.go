// Command epidemicsim regenerates the tables, figures, and analytical
// claims of "Epidemic Algorithms for Replicated Database Maintenance"
// (Demers et al., PODC 1987) from the simulators in this repository.
//
// Usage:
//
//	epidemicsim -exp table1 [-n 1000] [-trials 100] [-seed 1] [-workers 0]
//	epidemicsim -exp all
//
// Experiments: table1 table2 table3 table4 table5 figure1 figure2
// convergence law connlimit minimization line deathcert backup all
//
// Monte Carlo trials fan out across -workers goroutines (0 = GOMAXPROCS);
// results are identical for a given -seed regardless of -workers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"epidemic/internal/experiments"
	"epidemic/internal/parallel"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run (table1..table5, figure1, figure2, convergence, law, connlimit, minimization, line, deathcert, backup, all)")
		n       = flag.Int("n", 1000, "population size for the uniform-topology tables")
		trials  = flag.Int("trials", 100, "trials per configuration (the paper uses 250 for tables 4-5)")
		seed    = flag.Int64("seed", 1, "base RNG seed")
		workers = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()
	parallel.SetMaxWorkers(*workers)
	if err := run(os.Stdout, *exp, *n, *trials, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "epidemicsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, exp string, n, trials int, seed int64) error {
	runners := map[string]func(io.Writer, int, int, int64) error{
		"table1":       runTable1,
		"table2":       runTable2,
		"table3":       runTable3,
		"table4":       runTable4,
		"table5":       runTable5,
		"figure1":      runFigure1,
		"figure2":      runFigure2,
		"convergence":  runConvergence,
		"law":          runLaw,
		"connlimit":    runConnLimit,
		"minimization": runMinimization,
		"line":         runLine,
		"deathcert":    runDeathCert,
		"backup":       runBackup,
		"kadjust":      runKAdjust,
		"tauwindow":    runTauWindow,
		"async":        runAsync,
		"staleness":    runStaleness,
		"methods":      runMethods,
		"dormant":      runDormant,
		"remail":       runRemail,
		"maillinks":    runMailLinks,
		"hybrid":       runHybrid,
		"rumorcin":     runRumorCIN,
	}
	if exp == "all" {
		order := []string{
			"table1", "table2", "table3", "table4", "table5",
			"figure1", "figure2", "convergence", "law", "connlimit",
			"minimization", "line", "deathcert", "backup", "kadjust",
			"tauwindow", "async", "staleness", "methods", "dormant", "remail", "maillinks", "hybrid", "rumorcin",
		}
		for _, name := range order {
			if err := runners[name](w, n, trials, seed); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	runner, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return runner(w, n, trials, seed)
}

func runTable1(w io.Writer, n, trials int, seed int64) error {
	rows, err := experiments.Table1(n, trials, seed)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Table 1: push rumor mongering, feedback+counter, n=%d (%d trials)", n, trials)
	_, err = fmt.Fprint(w, experiments.FormatRumorRows(title, rows))
	return err
}

func runTable2(w io.Writer, n, trials int, seed int64) error {
	rows, err := experiments.Table2(n, trials, seed)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Table 2: push rumor mongering, blind+coin, n=%d (%d trials)", n, trials)
	_, err = fmt.Fprint(w, experiments.FormatRumorRows(title, rows))
	return err
}

func runTable3(w io.Writer, n, trials int, seed int64) error {
	rows, err := experiments.Table3(n, trials, seed)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Table 3: pull rumor mongering, feedback+counter, n=%d (%d trials)", n, trials)
	_, err = fmt.Fprint(w, experiments.FormatRumorRows(title, rows))
	return err
}

func runTable4(w io.Writer, _, trials int, seed int64) error {
	rows, err := experiments.Table4(trials, seed)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Table 4: anti-entropy on synthetic CIN, push-pull, no connection limit (%d trials)", trials)
	_, err = fmt.Fprint(w, experiments.FormatCINRows(title, rows))
	return err
}

func runTable5(w io.Writer, _, trials int, seed int64) error {
	rows, err := experiments.Table5(trials, seed)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Table 5: anti-entropy on synthetic CIN, connection limit 1, hunt 0 (%d trials)", trials)
	_, err = fmt.Fprint(w, experiments.FormatCINRows(title, rows))
	return err
}

func runFigure1(w io.Writer, _, trials int, seed int64) error {
	rows, err := experiments.Figure1(20, 3, trials, []int{1, 2, 3, 4, 6, 8}, seed)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Figure 1 scenario: pair+fan topology, push rumors, Q^-2 distribution (%d trials)", trials)
	_, err = fmt.Fprint(w, experiments.FormatFigureRows(title, rows))
	return err
}

func runFigure2(w io.Writer, _, trials int, seed int64) error {
	rows, err := experiments.Figure2(7, trials, []int{1, 2, 3, 4, 6, 8}, seed)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Figure 2 scenario: binary tree + satellite, push rumors, Q^-2 distribution (%d trials)", trials)
	_, err = fmt.Fprint(w, experiments.FormatFigureRows(title, rows))
	return err
}

func runConvergence(w io.Writer, n, trials int, seed int64) error {
	rows := experiments.PushPullConvergence(n, 0.1, 10, trials, seed)
	_, err := fmt.Fprint(w, experiments.FormatConvergenceRows(rows))
	return err
}

func runLaw(w io.Writer, n, trials int, seed int64) error {
	rows, err := experiments.ResidueTrafficLaw(n, trials, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatLawRows("s = e^-m law across push variants (§1.4)", rows))
	return err
}

func runConnLimit(w io.Writer, n, trials int, seed int64) error {
	rows, err := experiments.ConnectionLimitLaw(n, trials, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatLawRows("connection limits and hunting (§1.4)", rows))
	return err
}

func runMinimization(w io.Writer, n, trials int, seed int64) error {
	rows, err := experiments.MinimizationComparison(n, trials, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatLawRows("counter minimization (§1.4)", rows))
	return err
}

func runLine(w io.Writer, _, trials int, seed int64) error {
	rows, err := experiments.LineScaling([]int{100, 200, 400}, []float64{0, 1, 1.5, 2, 3}, trials, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatLineScalingRows(rows))
	return err
}

func runDeathCert(w io.Writer, _, _ int, seed int64) error {
	rows, err := experiments.DeathCertificates(10, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatDeathCertRows(rows))
	return err
}

func runKAdjust(w io.Writer, _, trials int, seed int64) error {
	rows, err := experiments.KAdjustment(trials, 24, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatKAdjustRows(rows))
	return err
}

func runAsync(w io.Writer, n, trials int, seed int64) error {
	rows, err := experiments.AsyncRobustness(n, trials, []int{1, 2, 3, 4}, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatAsyncRows(rows))
	return err
}

func runRumorCIN(w io.Writer, _, trials int, seed int64) error {
	rows, err := experiments.RumorMongeringOnCIN(100, 16, trials, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatRumorCINRows(rows))
	return err
}

func runHybrid(w io.Writer, n, trials int, seed int64) error {
	rows, err := experiments.HybridCost(n, trials, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatHybridRows(n, rows))
	return err
}

func runMailLinks(w io.Writer, _, trials int, seed int64) error {
	rows, err := experiments.MailLinkTraffic(trials, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatLinkTrafficRows(rows))
	return err
}

func runRemail(w io.Writer, _, trials int, seed int64) error {
	const n = 300
	rows, err := experiments.RedistributionCost(n, trials, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatRedistributionRows(n, rows))
	return err
}

func runDormant(w io.Writer, _, _ int, _ int64) error {
	// The paper's own numbers: ~300 servers, 30-day fixed threshold.
	rows := experiments.DormantSpace(300, 30, 15, []int{1, 2, 4, 8})
	_, err := fmt.Fprint(w, experiments.FormatDormantSpaceRows(300, 30, 15, rows))
	return err
}

func runMethods(w io.Writer, n, trials int, seed int64) error {
	rows, err := experiments.MethodComparison(n, trials, 0.05, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatMethodRows(rows))
	return err
}

func runStaleness(w io.Writer, _, _ int, seed int64) error {
	rows, err := experiments.Staleness(12, []float64{0.5, 2, 8, 32}, 60, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatStalenessRows(rows))
	return err
}

func runTauWindow(w io.Writer, _, _ int, seed int64) error {
	rows, err := experiments.TauWindow(12, []int64{1, 3, 5, 10, 20, 50, 100}, 80, 2, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatTauWindowRows(rows))
	return err
}

func runBackup(w io.Writer, _, trials int, seed int64) error {
	row, err := experiments.BackupAntiEntropy(24, trials, seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, experiments.FormatBackupRow(row))
	return err
}
