package main

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"epidemic"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("2=host2:7001, 3=host3:7001", epidemic.TCPPeerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("peers = %d", len(peers))
	}
	if peers[0].ID() != 2 || peers[1].ID() != 3 {
		t.Errorf("IDs = %d %d", peers[0].ID(), peers[1].ID())
	}
	if got, _ := parsePeers("", epidemic.TCPPeerOptions{}); got != nil {
		t.Error("empty spec should be nil")
	}
	if _, err := parsePeers("nonsense", epidemic.TCPPeerOptions{}); err == nil {
		t.Error("missing '=' accepted")
	}
	if _, err := parsePeers("x=host:1", epidemic.TCPPeerOptions{}); err == nil {
		t.Error("non-numeric id accepted")
	}
}

// clientRoundTrip sends one command to a handleClient goroutine over a
// pipe and returns the first response line.
func clientSession(t *testing.T, n *epidemic.Node, cmds []string) []string {
	t.Helper()
	server, client := net.Pipe()
	go handleClient(server, n, clientEnv{})
	defer client.Close()

	var out []string
	r := bufio.NewReader(client)
	for _, cmd := range cmds {
		if _, err := client.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read after %q: %v", cmd, err)
		}
		out = append(out, strings.TrimSpace(line))
	}
	return out
}

func TestClientProtocol(t *testing.T) {
	n, err := epidemic.NewNode(epidemic.NodeConfig{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := clientSession(t, n, []string{
		"GET missing",
		"SET k hello world",
		"GET k",
		"KEYS",
		"DEL k",
		"GET k",
		"STATS",
		"BOGUS",
		"GET",
	})
	want := []string{
		"MISSING",
		"OK",
		"VALUE hello world",
		"KEYS k",
		"OK",
		"MISSING",
		"", // STATS checked by prefix below
		"ERR unknown command",
		"ERR usage: GET <key>",
	}
	for i, w := range want {
		if i == 6 {
			if !strings.HasPrefix(got[i], "STATS updates=2") {
				t.Errorf("STATS = %q", got[i])
			}
			continue
		}
		if got[i] != w {
			t.Errorf("cmd %d: got %q, want %q", i, got[i], w)
		}
	}
}

func TestClientProtocolArgErrors(t *testing.T) {
	n, err := epidemic.NewNode(epidemic.NodeConfig{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := clientSession(t, n, []string{"SET onlykey", "DEL"})
	if !strings.HasPrefix(got[0], "ERR usage: SET") {
		t.Errorf("SET error = %q", got[0])
	}
	if !strings.HasPrefix(got[1], "ERR usage: DEL") {
		t.Errorf("DEL error = %q", got[1])
	}
}

func TestClientMembers(t *testing.T) {
	n, err := epidemic.NewNode(epidemic.NodeConfig{Site: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := epidemic.Announce(n, "h5:1"); err != nil {
		t.Fatal(err)
	}
	n.Update("app", epidemic.Value("x"))
	got := clientSession(t, n, []string{"MEMBERS", "KEYS"})
	if got[0] != "MEMBERS 5=h5:1" {
		t.Errorf("MEMBERS = %q", got[0])
	}
	if got[1] != "KEYS app" {
		t.Errorf("KEYS leaked membership records: %q", got[1])
	}
}

// End-to-end: two daemons on ephemeral ports, seeded one-way, converge
// via gossip and the membership directory.
func TestDaemonEndToEnd(t *testing.T) {
	base := daemonConfig{
		listen: "127.0.0.1:0", client: "127.0.0.1:0",
		aePer: 20 * time.Millisecond, rumPer: 10 * time.Millisecond,
		mail: true, k: 3, tau1: time.Hour, tau2: time.Hour, retain: 1, shardVector: true,
	}
	cfg1 := base
	cfg1.site = 1
	d1, err := startDaemon(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()

	cfg2 := base
	cfg2.site = 2
	cfg2.peerSpec = "1=" + d1.GossipAddr()
	d2, err := startDaemon(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	send := func(addr, cmd string) string {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(line)
	}

	if got := send(d2.ClientAddr(), "SET greeting hello"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	deadline := time.After(5 * time.Second)
	for {
		if got := send(d1.ClientAddr(), "GET greeting"); got == "VALUE hello" {
			break
		}
		select {
		case <-deadline:
			t.Fatal("update never reached daemon 1")
		case <-time.After(20 * time.Millisecond):
		}
	}
	// Membership: daemon 1 must have learned daemon 2's record via gossip.
	for {
		got := send(d1.ClientAddr(), "MEMBERS")
		if strings.Contains(got, "1=") && strings.Contains(got, "2=") {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("directory never synced: %q", got)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestClientHotAndSnapshot(t *testing.T) {
	n, err := epidemic.NewNode(epidemic.NodeConfig{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.Update("fresh", epidemic.Value("v"))
	got := clientSession(t, n, []string{"HOT", "SNAPSHOT"})
	if got[0] != "HOT fresh" {
		t.Errorf("HOT = %q", got[0])
	}
	// No snapshot path configured: clean error.
	if !strings.HasPrefix(got[1], "ERR") {
		t.Errorf("SNAPSHOT without path = %q", got[1])
	}
}
