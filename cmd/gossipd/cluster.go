package main

import (
	"fmt"
	"time"

	"epidemic"
)

// digestSettings resolves the cluster-observatory flags into concrete
// windows. Stamp units are wall-clock nanoseconds on daemons.
type digestSettings struct {
	every, ttl, staleAfter time.Duration
}

func (cfg daemonConfig) digestSettings() digestSettings {
	s := digestSettings{every: cfg.digestEvery, ttl: cfg.digestTTL, staleAfter: cfg.staleAfter}
	if s.every <= 0 {
		s.every = time.Second
	}
	if s.ttl <= 0 {
		s.ttl = 10 * time.Minute
	}
	if s.staleAfter <= 0 {
		// The detector's default: a digest should have crossed the cluster
		// within a few anti-entropy periods (push-pull spreads it in
		// O(log n) conversations), so 3 missed periods means trouble.
		s.staleAfter = 3 * cfg.aePer
	}
	return s
}

// digestCollector owns the daemon's periodic health-digest refresh: it
// snapshots this replica into the digest directory, prunes departed sites,
// runs the stall detector, and publishes the /cluster status.
type digestCollector struct {
	d      *daemon
	s      digestSettings
	det    *epidemic.ClusterStallDetector
	active map[string]bool // stall keys currently firing, for edge-triggered events
}

func newDigestCollector(d *daemon, s digestSettings) *digestCollector {
	return &digestCollector{
		d: d,
		s: s,
		det: epidemic.NewClusterStallDetector(epidemic.ClusterStallConfig{
			StaleAfter:     s.staleAfter.Nanoseconds(),
			ResidueWindow:  (2 * s.staleAfter).Nanoseconds(),
			ChecksumWindow: s.staleAfter.Nanoseconds(),
			SecondsPerUnit: 1e-9,
		}),
		active: make(map[string]bool),
	}
}

// loop drives collect on the digest cadence until the daemon closes.
func (c *digestCollector) loop() {
	defer close(c.d.digestsDone)
	ticker := time.NewTicker(c.s.every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			c.collect()
		case <-c.d.stopDigests:
			return
		}
	}
}

// collect runs one observation tick.
func (c *digestCollector) collect() {
	d := c.d
	now := time.Now().UnixNano()
	d.digests.SetSelf(d.selfDigest(now, c.s.staleAfter.Nanoseconds()))
	d.digests.Prune(now, c.s.ttl.Nanoseconds())
	view := d.digests.Snapshot()
	stalls := c.det.Check(now, view)
	status := epidemic.BuildClusterStatus(d.node.Site(), now, view, stalls,
		c.s.staleAfter.Nanoseconds(), 1e-9)
	d.status.Store(&status)

	stale := 0
	for _, st := range status.Sites {
		if st.Stale {
			stale++
		}
	}
	d.reg.Gauge(epidemic.MetricClusterSites,
		"Sites in this replica's cluster digest view.").Set(float64(len(view)))
	d.reg.Gauge(epidemic.MetricClusterStaleSites,
		"Digest-view sites past the staleness window.").Set(float64(stale))

	// Stalls are level conditions; count and announce only the rising edge
	// so a stall that persists for minutes is one event, not thousands.
	seen := make(map[string]bool, len(stalls))
	for _, st := range stalls {
		k := fmt.Sprintf("%d/%s", st.Site, st.Reason)
		seen[k] = true
		if c.active[k] {
			continue
		}
		c.active[k] = true
		d.reg.Counter(epidemic.MetricClusterStalls,
			"Convergence stalls detected, by reason.",
			epidemic.MetricLabel{Name: "reason", Value: st.Reason}).Inc()
		d.ring.Append(epidemic.EventRecord{
			Site:      int32(d.node.Site()),
			Kind:      "cluster-stall",
			Peer:      st.Site,
			Key:       st.Reason,
			Keys:      []string{st.Detail},
			UnixNanos: now,
		})
	}
	for k := range c.active {
		if !seen[k] {
			delete(c.active, k)
		}
	}
}

// selfDigest snapshots this replica's health at time now (unix nanos).
// staleAfter bounds which remote digests count as fresh for the residue
// proxy below.
func (d *daemon) selfDigest(now, staleAfter int64) epidemic.ClusterDigest {
	n := d.node
	st := n.Stats()
	w := d.wire.Snapshot()
	members := len(epidemic.Members(n.Store()))
	dg := epidemic.ClusterDigest{
		Stamp:          now,
		StartedAt:      d.started.UnixNano(),
		StoreKeys:      int64(len(n.Store().Keys())),
		Checksum:       n.Store().Checksum(),
		HotRumors:      int64(len(n.HotEntries())),
		Peers:          int64(len(n.Peers())),
		Members:        int64(members),
		AERuns:         int64(st.AntiEntropyRuns),
		RumorRuns:      int64(st.RumorRuns),
		WireMsgsBinary: w.MsgsBinary,
		WireMsgsGob:    w.MsgsGob,
		UDPPushes:      w.UDPPushes,
		UDPFallbacks:   w.UDPFallbacks,
		LastAE:         d.lastAE.Load(),
		AntiEntropy:    summarize(d.aeSeconds),
		Rumor:          summarize(d.rumorSeconds),
	}
	if d.prop != nil {
		// t_last over the tracked updates: the largest origination-to-
		// local-apply delay seen, i.e. how long updates take to reach this
		// replica — the one propagation observable a lone node can measure.
		var worst float64
		for _, k := range d.prop.Keys() {
			if tl, ok := d.prop.TLast(k); ok && tl > worst {
				worst = tl
			}
		}
		dg.TLastSeconds = worst
	}
	// A lone replica cannot count infections at other sites, so its
	// residue is the gossip-observable proxy: the fraction of fresh remote
	// digests whose database checksum disagrees with this replica's. A
	// converged cluster reports 0 everywhere; an update in flight raises
	// it until the other sites apply it and their refreshed digests gossip
	// back, so "nonzero and not decaying" still means a stalled epidemic.
	var remote, differ int
	for _, rd := range d.digests.Snapshot() {
		if rd.Site == int32(n.Site()) || now-rd.Stamp > staleAfter {
			continue
		}
		remote++
		if rd.Checksum != dg.Checksum {
			differ++
		}
	}
	if remote > 0 {
		dg.Residue = float64(differ) / float64(remote)
	}
	return dg
}

// summarize compresses an exchange-latency histogram into the digest's
// quantile pair. An empty histogram yields the zero summary (never NaN).
func summarize(h *epidemic.Histogram) epidemic.ClusterLatencySummary {
	if h == nil {
		return epidemic.ClusterLatencySummary{}
	}
	c := h.Count()
	if c == 0 {
		return epidemic.ClusterLatencySummary{}
	}
	return epidemic.ClusterLatencySummary{Count: c, P50: h.Quantile(0.5), P99: h.Quantile(0.99)}
}
