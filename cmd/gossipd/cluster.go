package main

import (
	"fmt"
	"time"

	"epidemic"
)

// digestSettings resolves the cluster-observatory flags into concrete
// windows. Stamp units are wall-clock nanoseconds on daemons.
type digestSettings struct {
	every, ttl, staleAfter time.Duration
}

func (cfg daemonConfig) digestSettings() digestSettings {
	s := digestSettings{every: cfg.digestEvery, ttl: cfg.digestTTL, staleAfter: cfg.staleAfter}
	if s.every <= 0 {
		s.every = time.Second
	}
	if s.ttl <= 0 {
		s.ttl = 10 * time.Minute
	}
	if s.staleAfter <= 0 {
		// The detector's default: a digest should have crossed the cluster
		// within a few anti-entropy periods (push-pull spreads it in
		// O(log n) conversations), so 3 missed periods means trouble.
		s.staleAfter = 3 * cfg.aePer
	}
	return s
}

// digestCollector owns the daemon's periodic health-digest refresh: it
// snapshots this replica into the digest directory, prunes departed sites,
// runs the stall detector, and publishes the /cluster status. Stall
// rising edges (via the edge tracker) increment the stall counter, append
// a cluster-stall event, and trigger one flight dump per incident.
type digestCollector struct {
	d     *daemon
	s     digestSettings
	det   *epidemic.ClusterStallDetector
	edges *epidemic.ClusterEdgeTracker
	// overflow is the outbox-overflow burst edge: true while drops are
	// accumulating inside the look-back window, so a sustained burst
	// triggers one dump, not one per collect tick.
	overflow bool
}

func newDigestCollector(d *daemon, s digestSettings) *digestCollector {
	return &digestCollector{
		d: d,
		s: s,
		det: epidemic.NewClusterStallDetector(epidemic.ClusterStallConfig{
			StaleAfter:     s.staleAfter.Nanoseconds(),
			ResidueWindow:  (2 * s.staleAfter).Nanoseconds(),
			ChecksumWindow: s.staleAfter.Nanoseconds(),
			SecondsPerUnit: 1e-9,
		}),
		edges: epidemic.NewClusterEdgeTracker(),
	}
}

// loop drives collect on the digest cadence until the daemon closes.
func (c *digestCollector) loop() {
	defer close(c.d.digestsDone)
	ticker := time.NewTicker(c.s.every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			c.collect()
		case <-c.d.stopDigests:
			return
		}
	}
}

// collect runs one observation tick.
func (c *digestCollector) collect() {
	d := c.d
	now := time.Now().UnixNano()
	self := d.selfDigest(now, c.s.staleAfter.Nanoseconds())
	d.digests.SetSelf(self)
	d.digests.Prune(now, c.s.ttl.Nanoseconds())
	view := d.digests.Snapshot()
	stalls := c.det.Check(now, view)
	status := epidemic.BuildClusterStatus(d.node.Site(), now, view, stalls,
		c.s.staleAfter.Nanoseconds(), 1e-9)
	status.Trends = c.buildTrends()
	d.status.Store(&status)

	stale := 0
	for _, st := range status.Sites {
		if st.Stale {
			stale++
		}
	}
	d.reg.Gauge(epidemic.MetricClusterSites,
		"Sites in this replica's cluster digest view.").Set(float64(len(view)))
	d.reg.Gauge(epidemic.MetricClusterStaleSites,
		"Digest-view sites past the staleness window.").Set(float64(stale))
	d.reg.Gauge(epidemic.MetricClusterResidue,
		"Checksum-disagreement residue proxy: fraction of fresh remote digests whose checksum differs.").
		Set(self.Residue)

	// Stalls are level conditions; count, announce, and flight-dump only
	// the rising edge so a stall that persists for minutes is one
	// incident, not thousands.
	for _, st := range c.edges.Update(stalls) {
		d.reg.Counter(epidemic.MetricClusterStalls,
			"Convergence stalls detected, by reason.",
			epidemic.MetricLabel{Name: "reason", Value: st.Reason}).Inc()
		d.ring.Append(epidemic.EventRecord{
			Site:      int32(d.node.Site()),
			Kind:      "cluster-stall",
			Peer:      st.Site,
			Key:       st.Reason,
			Keys:      []string{st.Detail},
			UnixNanos: now,
		})
		// Trigger is nil-safe (no-op without -flight-dir); a dump failure
		// must not take the collector down, so the error is dropped.
		_, _ = d.flight.Trigger(st.Reason, fmt.Sprintf("site %d: %s", st.Site, st.Detail), now)
	}
	c.checkOverflowBurst(now)
}

// checkOverflowBurst flight-dumps when the outbound mail engine starts
// shedding entries: a positive drop delta across the staleness window is
// the burst condition, edge-tracked so one sustained burst is one dump.
func (c *digestCollector) checkOverflowBurst(now int64) {
	d := c.d
	if d.history == nil || d.flight == nil {
		c.overflow = false
		return
	}
	delta, ok := d.history.Delta(epidemic.MetricOutboxDropped, c.s.staleAfter)
	bursting := ok && delta > 0
	if bursting && !c.overflow {
		detail := fmt.Sprintf("%.0f outbox entries dropped in %s", delta, c.s.staleAfter)
		_, _ = d.flight.Trigger("outbox-overflow", detail, now)
	}
	c.overflow = bursting
}

// trendWindow is the look-back the /cluster and STATSJSON trend fields
// cover; trendPoints bounds each trajectory for sparkline rendering.
const (
	trendWindow = time.Minute
	trendPoints = 24
)

// buildTrends derives the rates-and-trajectories block from the telemetry
// sampler; nil when history is disabled or has fewer than two samples.
func (c *digestCollector) buildTrends() *epidemic.ClusterTrends {
	h := c.d.history
	if h == nil || h.Samples() < 2 {
		return nil
	}
	t := &epidemic.ClusterTrends{WindowSeconds: trendWindow.Seconds()}
	if r, ok := h.Rate(epidemic.MetricRumorRounds, trendWindow); ok {
		t.RumorRatePerSec = r
	}
	if r, ok := h.Rate(epidemic.MetricAntiEntropyRuns, trendWindow); ok {
		t.ExchangeRatePerSec = r
	}
	if p, ok := h.Last(epidemic.MetricOutboxQueueDepth); ok {
		t.OutboxDepth = p.V
	}
	if r, ok := h.Rate(epidemic.MetricOutboxQueueDepth, trendWindow); ok {
		t.OutboxSlopePerSec = r
	}
	t.ResidueTrajectory = trajectory(h, epidemic.MetricClusterResidue)
	t.ExchangeTrajectory = trajectory(h, epidemic.MetricAntiEntropyRuns)
	t.OutboxTrajectory = trajectory(h, epidemic.MetricOutboxQueueDepth)
	return t
}

// trajectory downsamples one series to at most trendPoints values across
// the trend window, oldest first.
func trajectory(h *epidemic.HistorySampler, metric string) []float64 {
	pts := h.Points(metric, trendWindow, trendWindow/trendPoints)
	if len(pts) == 0 {
		return nil
	}
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.V
	}
	return out
}

// selfDigest snapshots this replica's health at time now (unix nanos).
// staleAfter bounds which remote digests count as fresh for the residue
// proxy below.
func (d *daemon) selfDigest(now, staleAfter int64) epidemic.ClusterDigest {
	n := d.node
	st := n.Stats()
	w := d.wire.Snapshot()
	members := len(epidemic.Members(n.Store()))
	dg := epidemic.ClusterDigest{
		Stamp:          now,
		StartedAt:      d.started.UnixNano(),
		StoreKeys:      int64(len(n.Store().Keys())),
		Checksum:       n.Store().Checksum(),
		HotRumors:      int64(len(n.HotEntries())),
		Peers:          int64(len(n.Peers())),
		Members:        int64(members),
		AERuns:         int64(st.AntiEntropyRuns),
		RumorRuns:      int64(st.RumorRuns),
		WireMsgsBinary: w.MsgsBinary,
		WireMsgsGob:    w.MsgsGob,
		UDPPushes:      w.UDPPushes,
		UDPFallbacks:   w.UDPFallbacks,
		LastAE:         d.lastAE.Load(),
		AntiEntropy:    summarize(d.aeSeconds),
		Rumor:          summarize(d.rumorSeconds),
	}
	if d.prop != nil {
		// t_last over the tracked updates: the largest origination-to-
		// local-apply delay seen, i.e. how long updates take to reach this
		// replica — the one propagation observable a lone node can measure.
		var worst float64
		for _, k := range d.prop.Keys() {
			if tl, ok := d.prop.TLast(k); ok && tl > worst {
				worst = tl
			}
		}
		dg.TLastSeconds = worst
	}
	// A lone replica cannot count infections at other sites, so its
	// residue is the gossip-observable proxy: the fraction of fresh remote
	// digests whose database checksum disagrees with this replica's. A
	// converged cluster reports 0 everywhere; an update in flight raises
	// it until the other sites apply it and their refreshed digests gossip
	// back, so "nonzero and not decaying" still means a stalled epidemic.
	var remote, differ int
	for _, rd := range d.digests.Snapshot() {
		if rd.Site == int32(n.Site()) || now-rd.Stamp > staleAfter {
			continue
		}
		remote++
		if rd.Checksum != dg.Checksum {
			differ++
		}
	}
	if remote > 0 {
		dg.Residue = float64(differ) / float64(remote)
	}
	return dg
}

// summarize compresses an exchange-latency histogram into the digest's
// quantile pair. An empty histogram yields the zero summary (never NaN).
func summarize(h *epidemic.Histogram) epidemic.ClusterLatencySummary {
	if h == nil {
		return epidemic.ClusterLatencySummary{}
	}
	c := h.Count()
	if c == 0 {
		return epidemic.ClusterLatencySummary{}
	}
	return epidemic.ClusterLatencySummary{Count: c, P50: h.Quantile(0.5), P99: h.Quantile(0.99)}
}
