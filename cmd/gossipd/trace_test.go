package main

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"epidemic"
)

// TestTraceEndToEnd runs a three-daemon cluster with tracing on, gossips
// one update through, federates each replica's TRACE dump over the client
// protocol — exactly what gossipctl trace does — and checks the assembled
// infection tree: it covers the whole membership, roots at the writing
// site with hop zero, and every child sits one causal hop beyond its
// parent.
func TestTraceEndToEnd(t *testing.T) {
	base := daemonConfig{
		listen: "127.0.0.1:0", client: "127.0.0.1:0", admin: "127.0.0.1:0",
		aePer: 20 * time.Millisecond, rumPer: 10 * time.Millisecond,
		mail: true, k: 3, tau1: time.Hour, tau2: time.Hour, retain: 1, shardVector: true,
		traceRing: 4096,
	}
	var daemons []*daemon
	for site := 1; site <= 3; site++ {
		cfg := base
		cfg.site = site
		if len(daemons) > 0 {
			cfg.peerSpec = "1=" + daemons[0].GossipAddr()
		}
		d, err := startDaemon(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		daemons = append(daemons, d)
	}

	send := func(addr, cmd string) string {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(line)
	}

	if got := send(daemons[0].ClientAddr(), "SET traced payload"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	deadline := time.After(5 * time.Second)
	for _, d := range daemons {
		for {
			if got := send(d.ClientAddr(), "GET traced"); got == "VALUE payload" {
				break
			}
			select {
			case <-deadline:
				t.Fatal("update never converged")
			case <-time.After(20 * time.Millisecond):
			}
		}
	}

	// Federate spans over the client protocol, one TRACE per replica.
	var spans []epidemic.TraceSpan
	for i, d := range daemons {
		line := send(d.ClientAddr(), "TRACE traced")
		var dump epidemic.TraceDump
		if err := json.Unmarshal([]byte(line), &dump); err != nil {
			t.Fatalf("daemon %d: TRACE = %q: %v", i, line, err)
		}
		if dump.Site != epidemic.SiteID(i+1) {
			t.Errorf("daemon %d: dump site = %d", i, dump.Site)
		}
		if len(dump.Spans) == 0 {
			t.Errorf("daemon %d: no spans for the converged key", i)
		}
		spans = append(spans, dump.Spans...)
	}

	tree := epidemic.AssembleTrace("traced", spans)
	if tree == nil {
		t.Fatal("no tree assembled")
	}
	if len(tree.Orphans) != 0 {
		t.Errorf("orphans with every replica traced: %+v", tree.Orphans)
	}
	sites := tree.Sites()
	if len(sites) != 3 || sites[0] != 1 || sites[1] != 2 || sites[2] != 3 {
		t.Fatalf("tree sites = %v, want [1 2 3]", sites)
	}
	if tree.Root == nil || tree.Root.Site != 1 || tree.Root.Hop != 0 {
		t.Fatalf("root = %+v, want site 1 at hop 0", tree.Root)
	}
	var walk func(n *epidemic.InfectionTreeNode)
	walk = func(n *epidemic.InfectionTreeNode) {
		for _, child := range n.Children {
			if child.Hop != n.Hop+1 {
				t.Errorf("site %d hop %d under site %d hop %d", child.Site, child.Hop, n.Site, n.Hop)
			}
			walk(child)
		}
	}
	walk(tree.Root)
	sum := tree.Summarize(len(daemons), 1e-9)
	if sum.Residue != 0 {
		t.Errorf("residue = %v after convergence", sum.Residue)
	}
	if sum.Mechanisms["origin"] != 1 {
		t.Errorf("mechanisms = %v, want one origin", sum.Mechanisms)
	}

	// The /trace admin route serves the same dump.
	var adminDump epidemic.TraceDump
	if err := json.Unmarshal(fetchAdmin(t, daemons[1].AdminAddr(), "/trace?key=traced"), &adminDump); err != nil {
		t.Fatal(err)
	}
	if adminDump.Site != 2 || len(adminDump.Spans) == 0 {
		t.Errorf("/trace dump = site %d, %d spans", adminDump.Site, len(adminDump.Spans))
	}
	for _, sp := range adminDump.Spans {
		if sp.Key != "traced" {
			t.Errorf("/trace?key= returned span for %q", sp.Key)
		}
	}

	// /events supports incremental polls via the cursor contract.
	var first struct {
		Events []epidemic.EventRecord `json:"events"`
		Next   uint64                 `json:"next"`
	}
	if err := json.Unmarshal(fetchAdmin(t, daemons[0].AdminAddr(), "/events"), &first); err != nil {
		t.Fatal(err)
	}
	if first.Next == 0 || len(first.Events) == 0 {
		t.Fatalf("/events = %d events, next %d", len(first.Events), first.Next)
	}
}

// TestTraceDisabled checks both surfaces report tracing off rather than
// returning empty data when -trace-ring is unset.
func TestTraceDisabled(t *testing.T) {
	n, err := epidemic.NewNode(epidemic.NodeConfig{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := clientSession(t, n, []string{"TRACE k", "TRACE"})
	if !strings.HasPrefix(got[0], "ERR tracing disabled") {
		t.Errorf("TRACE on untraced node = %q", got[0])
	}
	if !strings.HasPrefix(got[1], "ERR usage") {
		t.Errorf("bare TRACE = %q", got[1])
	}

	d, err := startDaemon(daemonConfig{
		site: 1, listen: "127.0.0.1:0", client: "127.0.0.1:0", admin: "127.0.0.1:0",
		aePer: time.Hour, rumPer: time.Hour, k: 3,
		tau1: time.Hour, tau2: time.Hour, retain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.AdminAddr() + "/trace?key=k")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/trace without -trace-ring = %s", resp.Status)
	}
}
