package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"epidemic"
)

// daemonConfig carries the parsed flags.
type daemonConfig struct {
	site            int
	listen, client  string
	peerSpec        string
	aePer, rumPer   time.Duration
	mail            bool
	k               int
	tau1, tau2      time.Duration
	retain          int
	data, advertise string
	// admin enables the observability HTTP endpoint when non-empty.
	admin string
	// logLevel enables structured logging to stderr when non-empty
	// (debug|info|warn|error); logFormat selects text or json.
	logLevel, logFormat string
	// poolSize bounds the persistent gossip connections kept per peer
	// (negative disables reuse); peelBatch sets the peel-back batch size
	// (0 = default); exchangeTimeout is the per-request deadline on
	// outbound gossip.
	poolSize        int
	peelBatch       int
	exchangeTimeout time.Duration
	// codec selects the outbound wire codec ("binary", "gob" or "legacy")
	// and caps what the gossip server negotiates ("binary" serves both;
	// "gob" refuses binary — the rollout safety valve; "legacy" clients
	// skip the hello for pre-negotiation servers).
	codec string
	// udp enables the single-datagram UDP fast path for rumor pushes
	// (server side always binds it unless the codec cap forbids binary).
	udp bool
	// storeShards sets the replica store's lock-stripe count (0 = default).
	storeShards int
	// shardVector enables the narrow shard-vector anti-entropy path on
	// outbound exchanges; shardRepairWorkers bounds how many diverged
	// shards one exchange repairs concurrently (0 = default).
	shardVector        bool
	shardRepairWorkers int
	// outboxWorkers sizes the asynchronous outbound mail engine's worker
	// pool (0 = default, negative = serial direct mail); outboxQueue
	// bounds each per-peer send queue before drop-oldest kicks in
	// (0 = default).
	outboxWorkers int
	outboxQueue   int
	// traceRing enables hop-provenance tracing when > 0: the node retains
	// that many spans for the TRACE verb and /trace admin route.
	traceRing int
	// mutexProfileFraction/blockProfileRate feed the runtime profilers so
	// /debug/pprof/{mutex,block} can show lock contention (0 = disabled).
	mutexProfileFraction int
	blockProfileRate     int
	// clusterDigests enables the cluster observatory: health digests that
	// piggyback on gossip exchanges, the /cluster admin route, and the
	// convergence stall detector behind /healthz degradation.
	clusterDigests bool
	// digestEvery is the self-digest refresh period; digestTTL drops remote
	// digests unrefreshed for that long; staleAfter marks a site stale
	// (0 = 3 x the anti-entropy period).
	digestEvery, digestTTL, staleAfter time.Duration
	// historyStep enables the telemetry time machine when > 0: a sampler
	// goroutine records every registered metric into bounded ring-buffer
	// time series at this cadence, retained for historyRetention, behind
	// /metrics/history and the /cluster + STATSJSON trend fields.
	historyStep, historyRetention time.Duration
	// flightDir enables the anomaly flight recorder when non-empty: stall
	// edges and outbox overflow bursts dump a correlated snapshot (events,
	// spans, time series, digests, wire stats) there, at most flightMax
	// dumps with oldest-first eviction, served on /flight.
	flightDir string
	flightMax int
}

// peerOptions derives the outbound wire options every peer of this daemon
// shares, feeding one process-wide WireStats.
func (cfg daemonConfig) peerOptions(wire *epidemic.WireStats, digests *epidemic.ClusterDirectory) epidemic.TCPPeerOptions {
	return epidemic.TCPPeerOptions{
		Timeout:            cfg.exchangeTimeout,
		PoolSize:           cfg.poolSize,
		Stats:              wire,
		Codec:              cfg.codec,
		UDP:                cfg.udp,
		Digests:            digests,
		DisableShardVector: !cfg.shardVector,
		ShardRepairWorkers: cfg.shardRepairWorkers,
	}
}

// serverOptions derives the gossip server's codec ceiling and UDP policy
// from the same flags: a daemon that speaks only gob outbound also refuses
// to negotiate binary inbound, and -udp=false unbinds the fast-path socket.
func (cfg daemonConfig) serverOptions() epidemic.TCPServerOptions {
	codec := cfg.codec
	if codec == "legacy" {
		// "legacy" is a client-only mode (skip the hello); the server
		// equivalent is a gob ceiling.
		codec = "gob"
	}
	return epidemic.TCPServerOptions{Codec: codec, DisableUDP: !cfg.udp}
}

// daemon is one running replica: gossip server, client listener, node
// daemons, the membership sync loop, and the optional admin endpoint.
type daemon struct {
	node     *epidemic.Node
	srv      *epidemic.TCPServer
	clientLn net.Listener
	stopSync chan struct{}
	syncDone chan struct{}

	reg      *epidemic.MetricsRegistry
	ring     *epidemic.EventRing
	wire     *epidemic.WireStats
	peerOpts epidemic.TCPPeerOptions
	adminLn  net.Listener
	adminSrv *http.Server

	// Cluster observatory state. digests is nil when -cluster-digests is
	// off; status holds the latest /cluster reply (nil until the first
	// collect, or forever when the observatory is off).
	started      time.Time
	digests      *epidemic.ClusterDirectory
	prop         *epidemic.PropagationTracker
	aeSeconds    *epidemic.Histogram
	rumorSeconds *epidemic.Histogram
	lastAE       atomic.Int64
	status       atomic.Pointer[epidemic.ClusterStatusReply]
	stopDigests  chan struct{}
	digestsDone  chan struct{}
	closeOnce    sync.Once

	// Telemetry time machine: history is nil when -history-step is 0,
	// flight nil when -flight-dir is empty.
	history     *epidemic.HistorySampler
	flight      *epidemic.FlightRecorder
	stopHistory chan struct{}
	historyDone chan struct{}
}

// buildLogger maps the -log-level/-log-format flags onto a slog.Logger
// writing to stderr. An empty level disables logging (nil logger).
func buildLogger(level, format string) (*slog.Logger, error) {
	if level == "" {
		return nil, nil
	}
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}

// startDaemon wires and starts a replica. Callers must Close it.
func startDaemon(cfg daemonConfig) (*daemon, error) {
	logger, err := buildLogger(cfg.logLevel, cfg.logFormat)
	if err != nil {
		return nil, err
	}
	// Lock-contention sampling must be on before any contention happens for
	// the pprof endpoints to have data; both default to off (zero cost).
	if cfg.mutexProfileFraction > 0 {
		runtime.SetMutexProfileFraction(cfg.mutexProfileFraction)
	}
	if cfg.blockProfileRate > 0 {
		runtime.SetBlockProfileRate(cfg.blockProfileRate)
	}
	var digests *epidemic.ClusterDirectory
	if cfg.clusterDigests {
		digests = epidemic.NewClusterDirectory(epidemic.SiteID(cfg.site), 0)
	}
	n, err := epidemic.NewNode(epidemic.NodeConfig{
		Site:   epidemic.SiteID(cfg.site),
		Logger: logger,
		Rumor:  epidemic.RumorConfig{K: cfg.k, Counter: true, Feedback: true, Mode: epidemic.PushPull},
		Resolve: epidemic.ResolveConfig{
			Mode:              epidemic.PushPull,
			Strategy:          epidemic.CompareRecent,
			Tau:               int64(20 * cfg.aePer), // generous: 20 anti-entropy periods
			Tau1:              cfg.tau1.Nanoseconds(),
			BatchSize:         cfg.peelBatch,
			ReactivateDormant: true,
		},
		DirectMailOnUpdate: cfg.mail,
		Outbox:             epidemic.OutboxConfig{Workers: cfg.outboxWorkers, QueuePerPeer: cfg.outboxQueue},
		Redistribution:     epidemic.RedistributeRumor,
		Tau1:               cfg.tau1.Nanoseconds(),
		Tau2:               cfg.tau2.Nanoseconds(),
		RetentionCount:     cfg.retain,
		AntiEntropyEvery:   cfg.aePer,
		RumorEvery:         cfg.rumPer,
		SnapshotPath:       cfg.data,
		SnapshotEvery:      time.Minute,
		StoreShards:        cfg.storeShards,
		TraceRing:          cfg.traceRing,
		Digests:            digests,
	})
	if err != nil {
		return nil, err
	}

	wire := &epidemic.WireStats{}
	peerOpts := cfg.peerOptions(wire, digests)
	peers, err := parsePeers(cfg.peerSpec, peerOpts)
	if err != nil {
		return nil, err
	}
	n.SetPeers(peers)

	srv, err := epidemic.ServeTCPWith(n, cfg.listen, cfg.serverOptions())
	if err != nil {
		return nil, err
	}
	cln, err := net.Listen("tcp", cfg.client)
	if err != nil {
		_ = srv.Close()
		return nil, fmt.Errorf("client listen %s: %w", cfg.client, err)
	}

	// Announce this replica in the replicated membership directory and
	// keep the peer set synchronised with it: new replicas that announce
	// themselves anywhere become peers everywhere once the record gossips
	// over.
	advertise := cfg.advertise
	if advertise == "" {
		advertise = srv.Addr()
	}
	if _, err := epidemic.Announce(n, advertise); err != nil {
		_ = srv.Close()
		_ = cln.Close()
		return nil, err
	}

	d := &daemon{
		node:        n,
		srv:         srv,
		clientLn:    cln,
		stopSync:    make(chan struct{}),
		syncDone:    make(chan struct{}),
		reg:         epidemic.NewMetricsRegistry(),
		ring:        epidemic.NewEventRing(0),
		wire:        wire,
		peerOpts:    peerOpts,
		started:     time.Now(),
		digests:     digests,
		stopDigests: make(chan struct{}),
		digestsDone: make(chan struct{}),
	}
	d.instrument(logger)
	if cfg.historyStep > 0 {
		d.history = epidemic.NewHistorySampler(d.reg, epidemic.HistoryConfig{
			Step:      cfg.historyStep,
			Retention: cfg.historyRetention,
		})
		d.stopHistory = make(chan struct{})
		d.historyDone = make(chan struct{})
	}
	if cfg.flightDir != "" {
		flight, err := epidemic.NewFlightRecorder(cfg.flightDir, cfg.flightMax)
		if err != nil {
			_ = srv.Close()
			_ = cln.Close()
			return nil, err
		}
		d.flight = flight
		d.addFlightSections()
	}
	if cfg.admin != "" {
		if err := d.startAdmin(cfg.admin); err != nil {
			_ = srv.Close()
			_ = cln.Close()
			return nil, err
		}
	}
	if digests != nil {
		// First collect runs synchronously so /cluster answers from the
		// moment the daemon is up; the loop takes over from there.
		col := newDigestCollector(d, cfg.digestSettings())
		col.collect()
		go col.loop()
	} else {
		close(d.digestsDone)
	}
	if d.history != nil {
		go func() {
			defer close(d.historyDone)
			d.history.Run(d.stopHistory)
		}()
	}
	go d.syncLoop(cfg.aePer)
	go serveClients(cln, n, d.clientEnv())
	n.Start()
	return d, nil
}

// clientEnv bundles what the line-protocol handler needs beyond the node:
// the wire stats for the WIRE verb and the trend provider for STATSJSON.
func (d *daemon) clientEnv() clientEnv {
	return clientEnv{
		wire:   d.wire,
		trends: func() *epidemic.ClusterTrends { return d.loadTrends() },
	}
}

// loadTrends returns the latest published trends block, or nil before the
// first digest collect (or when the observatory/history are off).
func (d *daemon) loadTrends() *epidemic.ClusterTrends {
	st := d.status.Load()
	if st == nil {
		return nil
	}
	return st.Trends
}

// addFlightSections registers the correlated snapshot every flight dump
// carries: the recent event window, hop-trace spans, the full retained
// time-series window, the digest directory, wire stats, node stats, and
// the latest /cluster status. Every callback tolerates the corresponding
// subsystem being disabled (nil-safe snapshots).
func (d *daemon) addFlightSections() {
	d.flight.AddSection("events", func() any {
		return d.ring.Snapshot()
	})
	d.flight.AddSection("spans", func() any {
		return d.node.Tracer().DumpFor("")
	})
	d.flight.AddSection("series", func() any {
		return d.history.SnapshotWindow(0)
	})
	d.flight.AddSection("digests", func() any {
		if d.digests == nil {
			return nil
		}
		return d.digests.Snapshot()
	})
	d.flight.AddSection("wire", func() any {
		return d.wire.Snapshot()
	})
	d.flight.AddSection("stats", func() any {
		return d.node.Stats()
	})
	d.flight.AddSection("status", func() any {
		return d.status.Load()
	})
}

// instrument bridges the node and the gossip server into the registry and
// the event ring. Stamp units are wall-clock nanoseconds, so propagation
// delays scale by 1e-9.
func (d *daemon) instrument(logger *slog.Logger) {
	if d.digests != nil {
		// The propagation tracker feeds the digest's residue/t_last fields;
		// it takes over the propagation-histogram observations from the
		// bridge (same histogram, deduplicated per site).
		d.prop = epidemic.NewPropagationTracker(1e-9, d.reg.Histogram(
			epidemic.MetricUpdatePropagation,
			"Delay from an update's origination to its application at a replica, in seconds.",
			nil))
	}
	observe := epidemic.InstrumentNode(d.reg, d.node, epidemic.ObserveOptions{
		Ring:           d.ring,
		Propagation:    d.prop,
		SecondsPerUnit: 1e-9,
		WallTime:       true,
	})
	d.node.SetOnEvent(func(e epidemic.NodeEvent) {
		if e.Kind == epidemic.NodeEventAntiEntropy {
			d.lastAE.Store(time.Now().UnixNano())
		}
		observe(e)
	})
	// Handles on the per-mechanism exchange-latency histograms the bridge
	// just registered, for the digest's quantile summaries (registration is
	// idempotent, so these fetch the same instances).
	d.aeSeconds = d.reg.Histogram(epidemic.MetricExchangeSeconds,
		"Initiator-side duration of one exchange, in seconds, by mechanism.",
		nil, epidemic.MetricLabel{Name: "mechanism", Value: "anti-entropy"})
	d.rumorSeconds = d.reg.Histogram(epidemic.MetricExchangeSeconds,
		"Initiator-side duration of one exchange, in seconds, by mechanism.",
		nil, epidemic.MetricLabel{Name: "mechanism", Value: "rumor"})
	if logger != nil {
		d.srv.SetLogger(logger.With("site", int(d.node.Site()), "component", "transport"))
	}
	d.srv.SetObserver(func(kind string, dur time.Duration) {
		label := epidemic.MetricLabel{Name: "kind", Value: kind}
		d.reg.Counter(epidemic.MetricTransportRequests,
			"Gossip requests served, by request kind.", label).Inc()
		d.reg.Histogram(epidemic.MetricTransportSeconds,
			"Gossip request handling duration in seconds.", nil, label).Observe(dur.Seconds())
	})
	epidemic.InstrumentWire(d.reg, d.wire)
}

func (d *daemon) syncLoop(every time.Duration) {
	defer close(d.syncDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// SyncPeers keeps unchanged peers (and their pooled
			// connections); only new or re-addressed sites dial.
			epidemic.SyncPeers(d.node, func(rec epidemic.MemberRecord) epidemic.Peer {
				return epidemic.NewTCPPeerWith(rec.Site, rec.Addr, d.peerOpts)
			})
		case <-d.stopSync:
			return
		}
	}
}

// GossipAddr returns the bound gossip address.
func (d *daemon) GossipAddr() string { return d.srv.Addr() }

// ClientAddr returns the bound client address.
func (d *daemon) ClientAddr() string { return d.clientLn.Addr().String() }

// AdminAddr returns the bound admin address, or "" when -admin is off.
func (d *daemon) AdminAddr() string {
	if d.adminLn == nil {
		return ""
	}
	return d.adminLn.Addr().String()
}

// Close stops everything, in reverse start order. Safe to call more than
// once (tests kill a daemon mid-run and still defer the cleanup).
func (d *daemon) Close() {
	d.closeOnce.Do(func() {
		close(d.stopSync)
		<-d.syncDone
		if d.history != nil {
			close(d.stopHistory)
			<-d.historyDone
		}
		if d.digests != nil {
			close(d.stopDigests)
		}
		<-d.digestsDone
		if d.adminSrv != nil {
			_ = d.adminSrv.Close()
		}
		d.node.Stop()
		_ = d.clientLn.Close()
		_ = d.srv.Close()
	})
}
