package main

import (
	"fmt"
	"net"
	"time"

	"epidemic"
)

// daemonConfig carries the parsed flags.
type daemonConfig struct {
	site            int
	listen, client  string
	peerSpec        string
	aePer, rumPer   time.Duration
	mail            bool
	k               int
	tau1, tau2      time.Duration
	retain          int
	data, advertise string
}

// daemon is one running replica: gossip server, client listener, node
// daemons, and the membership sync loop.
type daemon struct {
	node     *epidemic.Node
	srv      *epidemic.TCPServer
	clientLn net.Listener
	stopSync chan struct{}
	syncDone chan struct{}
}

// startDaemon wires and starts a replica. Callers must Close it.
func startDaemon(cfg daemonConfig) (*daemon, error) {
	n, err := epidemic.NewNode(epidemic.NodeConfig{
		Site:  epidemic.SiteID(cfg.site),
		Rumor: epidemic.RumorConfig{K: cfg.k, Counter: true, Feedback: true, Mode: epidemic.PushPull},
		Resolve: epidemic.ResolveConfig{
			Mode:              epidemic.PushPull,
			Strategy:          epidemic.CompareRecent,
			Tau:               int64(20 * cfg.aePer), // generous: 20 anti-entropy periods
			Tau1:              cfg.tau1.Nanoseconds(),
			ReactivateDormant: true,
		},
		DirectMailOnUpdate: cfg.mail,
		Redistribution:     epidemic.RedistributeRumor,
		Tau1:               cfg.tau1.Nanoseconds(),
		Tau2:               cfg.tau2.Nanoseconds(),
		RetentionCount:     cfg.retain,
		AntiEntropyEvery:   cfg.aePer,
		RumorEvery:         cfg.rumPer,
		SnapshotPath:       cfg.data,
		SnapshotEvery:      time.Minute,
	})
	if err != nil {
		return nil, err
	}

	peers, err := parsePeers(cfg.peerSpec)
	if err != nil {
		return nil, err
	}
	n.SetPeers(peers)

	srv, err := epidemic.ServeTCP(n, cfg.listen)
	if err != nil {
		return nil, err
	}
	cln, err := net.Listen("tcp", cfg.client)
	if err != nil {
		_ = srv.Close()
		return nil, fmt.Errorf("client listen %s: %w", cfg.client, err)
	}

	// Announce this replica in the replicated membership directory and
	// keep the peer set synchronised with it: new replicas that announce
	// themselves anywhere become peers everywhere once the record gossips
	// over.
	advertise := cfg.advertise
	if advertise == "" {
		advertise = srv.Addr()
	}
	if _, err := epidemic.Announce(n, advertise); err != nil {
		_ = srv.Close()
		_ = cln.Close()
		return nil, err
	}

	d := &daemon{
		node:     n,
		srv:      srv,
		clientLn: cln,
		stopSync: make(chan struct{}),
		syncDone: make(chan struct{}),
	}
	go d.syncLoop(cfg.aePer)
	go serveClients(cln, n)
	n.Start()
	return d, nil
}

func (d *daemon) syncLoop(every time.Duration) {
	defer close(d.syncDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			epidemic.SyncPeers(d.node, func(rec epidemic.MemberRecord) epidemic.Peer {
				return epidemic.NewTCPPeer(rec.Site, rec.Addr)
			})
		case <-d.stopSync:
			return
		}
	}
}

// GossipAddr returns the bound gossip address.
func (d *daemon) GossipAddr() string { return d.srv.Addr() }

// ClientAddr returns the bound client address.
func (d *daemon) ClientAddr() string { return d.clientLn.Addr().String() }

// Close stops everything, in reverse start order.
func (d *daemon) Close() {
	close(d.stopSync)
	<-d.syncDone
	d.node.Stop()
	_ = d.clientLn.Close()
	_ = d.srv.Close()
}
