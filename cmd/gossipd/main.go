// Command gossipd runs one replica of the epidemic-replicated database as
// a network daemon: it serves gossip over TCP, runs the anti-entropy and
// rumor-mongering daemons, announces itself in the replicated membership
// directory, and accepts simple line-oriented client commands on a second
// port.
//
// Usage:
//
//	gossipd -site 1 -listen :7001 -client :8001 \
//	        -peers 2=host2:7001,3=host3:7001 [-data /var/lib/gossipd.snap]
//
// The -peers list only seeds the first contact; thereafter the peer set is
// synchronised from the membership directory, which rides the replicated
// database itself.
//
// Client protocol (one command per line):
//
//	GET <key>            -> VALUE <v> | MISSING
//	SET <key> <value>    -> OK
//	DEL <key>            -> OK
//	KEYS                 -> KEYS <k1> <k2> ...
//	MEMBERS              -> MEMBERS <site>=<addr> ...
//	HOT                  -> HOT <k1> <k2> ...      (current hot rumors)
//	SNAPSHOT             -> OK                     (force a durable snapshot)
//	STATS                -> STATS <text>
//	STATSJSON            -> <one-line JSON object> (machine-readable stats)
//	WIRE                 -> <one-line JSON object> (connection-pool and wire-traffic stats)
//	TRACE <key>          -> <one-line JSON object> (this replica's hop spans for key)
//
// Wire protocol: -codec picks the frame encoding (binary is the
// hand-rolled zero-allocation codec; gob refuses binary inbound and
// outbound, the rolling-upgrade safety valve; legacy additionally skips
// the codec hello for pre-negotiation servers) and -udp toggles the
// single-datagram fast path for rumor pushes, which falls back to pooled
// TCP on loss or oversize batches. The WIRE client verb and the
// epidemic_wire_* metrics expose per-codec session/message counts and the
// UDP push/retry/fallback counters.
//
// Outbound mail: direct-mailed updates ride an asynchronous per-peer
// send-queue engine — SET/DEL return after an enqueue, workers fan out to
// all peers in parallel, and back-to-back writes to one key coalesce to
// the newest stamp. -outbox-workers sizes the pool (negative restores
// serial mail), -outbox-queue bounds each peer's queue (overflow drops
// the oldest entry, the paper's lossy-mail queue in §1.2). Peers on codec
// v5 receive a whole drain as one batched frame; older peers get
// per-entry mail transparently. The epidemic_outbox_* metrics and the
// STATSJSON outbox_* fields expose enqueues, coalesced supersessions,
// drops, batches, and current depth.
//
// Observability: -admin host:port serves /metrics (Prometheus text
// format), /healthz (JSON), /cluster (this replica's gossip-borne view of
// every site's health digest, plus convergence stalls and
// history-derived trends), /events (recent node events as JSON,
// ?since=<cursor> for incremental polls, ?key= to filter),
// /metrics/history (retained metric time series, ?metric=&window=&step=),
// /flight (flight-recorder dumps), /trace?key= (hop spans) and
// /debug/pprof/* on a separate HTTP listener; -log-level and -log-format
// control structured logging to stderr.
//
// Telemetry history: a fixed-cadence sampler walks the metrics registry
// every -history-step (default 1s) and retains -history-retention
// (default 15m) of every counter, gauge, and histogram quantile summary
// in bounded rings — the source for /metrics/history, the trends block
// on /cluster and STATSJSON, and gossipctl top. -history-step 0 disables
// it. On a stall edge (stale digest, stuck residue, persistent checksum
// mismatch) or an outbox-overflow burst, the flight recorder captures
// the correlated event window, trace spans, time-series window, digest
// directory, and wire/node stats into one JSON dump under -flight-dir
// (default .scratch/flight/), keeping the newest -flight-max dumps;
// /flight and gossipctl flight retrieve them. -flight-dir "" disables
// the recorder.
//
// Cluster observatory: with -cluster-digests (default on) every replica
// refreshes a compact health digest each -digest-every and the digests
// ride ordinary anti-entropy and rumor exchanges as a v3 binary-codec
// envelope — no extra connections, zero bytes when disabled. Any single
// daemon can then serve the whole cluster's status on /cluster (gossipctl
// status / watch render it). A stall detector flags sites whose digests
// go stale (-stale-after, default 3x the anti-entropy period), residue
// that stops decaying, and persistent checksum disagreement; stalls
// degrade /healthz, append cluster-stall events, and feed the
// epidemic_cluster_* metrics. -digest-ttl bounds how long a departed
// site's digest lingers. -trace-ring N enables update
// tracing: every applied update records a hop span (sender, mechanism,
// causal hop count) into a ring of N spans, federated across replicas by
// gossipctl trace into an infection tree. -mutex-profile-fraction and
// -block-profile-rate enable runtime lock-contention sampling so
// /debug/pprof/mutex and /debug/pprof/block show store and protocol
// contention; -store-shards sets the replica store's lock-stripe count.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"epidemic"
)

func main() {
	var cfg daemonConfig
	flag.IntVar(&cfg.site, "site", 1, "this replica's site ID (unique per replica)")
	flag.StringVar(&cfg.listen, "listen", ":7001", "gossip listen address")
	flag.StringVar(&cfg.client, "client", ":8001", "client listen address")
	flag.StringVar(&cfg.peerSpec, "peers", "", "comma-separated id=host:port seed peer list")
	flag.DurationVar(&cfg.aePer, "anti-entropy-every", 5*time.Second, "anti-entropy period")
	flag.DurationVar(&cfg.rumPer, "rumor-every", time.Second, "rumor-mongering period")
	flag.BoolVar(&cfg.mail, "direct-mail", true, "direct-mail updates to all peers")
	flag.IntVar(&cfg.k, "k", 3, "rumor counter threshold")
	flag.DurationVar(&cfg.tau1, "tau1", time.Hour, "death-certificate active window")
	flag.DurationVar(&cfg.tau2, "tau2", 24*time.Hour, "death-certificate dormant window")
	flag.IntVar(&cfg.retain, "retention", 2, "dormant death-certificate retention sites")
	flag.StringVar(&cfg.data, "data", "", "snapshot file for durable state (empty = in-memory only)")
	flag.StringVar(&cfg.advertise, "advertise", "", "gossip address to announce in the membership directory (empty = -listen)")
	flag.StringVar(&cfg.admin, "admin", "", "admin HTTP address serving /metrics, /healthz, /events and /debug/pprof (empty = disabled)")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "log level: debug, info, warn or error (empty = no logging)")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "log format: text or json")
	flag.IntVar(&cfg.poolSize, "pool-size", 2, "persistent gossip connections kept per peer (negative = dial per request)")
	flag.IntVar(&cfg.peelBatch, "peel-batch", 0, "entries per peel-back batch during anti-entropy (0 = default)")
	flag.DurationVar(&cfg.exchangeTimeout, "exchange-timeout", 10*time.Second, "per-request deadline on outbound gossip")
	flag.StringVar(&cfg.codec, "codec", "binary", "wire codec: binary (negotiate, prefer binary), gob (refuse binary - rollout safety valve) or legacy (no hello, for pre-negotiation servers)")
	flag.BoolVar(&cfg.udp, "udp", true, "UDP fast path for single-datagram rumor pushes (falls back to TCP)")
	flag.IntVar(&cfg.storeShards, "store-shards", 0, "replica store lock stripes, rounded up to a power of two (0 = default)")
	flag.BoolVar(&cfg.shardVector, "shard-vector", true, "narrow anti-entropy to diverged store shards when the peer's codec and shard count allow it")
	flag.IntVar(&cfg.shardRepairWorkers, "shard-repair-workers", 0, "diverged shards repaired concurrently per exchange (0 = default)")
	flag.IntVar(&cfg.outboxWorkers, "outbox-workers", 0, "async outbound-mail worker pool size (0 = default, negative = serial direct mail)")
	flag.IntVar(&cfg.outboxQueue, "outbox-queue", 0, "outbound-mail entries queued per peer before drop-oldest (0 = default)")
	flag.IntVar(&cfg.traceRing, "trace-ring", 0, "hop-provenance spans retained for TRACE and /trace (0 = tracing disabled)")
	flag.IntVar(&cfg.mutexProfileFraction, "mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction: sample 1/n mutex contention events for /debug/pprof/mutex (0 = off)")
	flag.IntVar(&cfg.blockProfileRate, "block-profile-rate", 0, "runtime.SetBlockProfileRate: sample blocking events >= n ns for /debug/pprof/block (0 = off)")
	flag.BoolVar(&cfg.clusterDigests, "cluster-digests", true, "spread health digests on gossip exchanges and serve the /cluster view")
	flag.DurationVar(&cfg.digestEvery, "digest-every", time.Second, "health-digest refresh period")
	flag.DurationVar(&cfg.digestTTL, "digest-ttl", 10*time.Minute, "drop a remote site's digest after this long without a refresh")
	flag.DurationVar(&cfg.staleAfter, "stale-after", 0, "mark a site stale when its digest is older than this (0 = 3x -anti-entropy-every)")
	flag.DurationVar(&cfg.historyStep, "history-step", time.Second, "metric time-series sampling cadence for /metrics/history (0 = history disabled)")
	flag.DurationVar(&cfg.historyRetention, "history-retention", 15*time.Minute, "how much metric trajectory to retain per series")
	flag.StringVar(&cfg.flightDir, "flight-dir", ".scratch/flight", "directory for anomaly flight dumps (empty = flight recorder disabled)")
	flag.IntVar(&cfg.flightMax, "flight-max", 8, "flight dumps retained before oldest-first eviction")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gossipd:", err)
		os.Exit(1)
	}
}

func run(cfg daemonConfig) error {
	d, err := startDaemon(cfg)
	if err != nil {
		return err
	}
	defer d.Close()
	if admin := d.AdminAddr(); admin != "" {
		fmt.Printf("gossipd site=%d gossip=%s client=%s admin=%s\n", cfg.site, d.GossipAddr(), d.ClientAddr(), admin)
	} else {
		fmt.Printf("gossipd site=%d gossip=%s client=%s\n", cfg.site, d.GossipAddr(), d.ClientAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return nil
}

func parsePeers(spec string, opts epidemic.TCPPeerOptions) ([]epidemic.Peer, error) {
	if spec == "" {
		return nil, nil
	}
	var peers []epidemic.Peer
	for _, part := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q, want id=host:port", part)
		}
		sid, err := strconv.Atoi(id)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %w", id, err)
		}
		peers = append(peers, epidemic.NewTCPPeerWith(epidemic.SiteID(sid), addr, opts))
	}
	return peers, nil
}

// clientEnv bundles the per-daemon dependencies of the line protocol
// beyond the node itself: wire stats for the WIRE verb and the trend
// provider (nil-safe) that STATSJSON folds into its reply.
type clientEnv struct {
	wire   *epidemic.WireStats
	trends func() *epidemic.ClusterTrends
}

func serveClients(ln net.Listener, n *epidemic.Node, env clientEnv) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go handleClient(conn, n, env)
	}
}

func handleClient(conn net.Conn, n *epidemic.Node, env clientEnv) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "GET":
			if len(fields) != 2 {
				fmt.Fprintln(conn, "ERR usage: GET <key>")
				continue
			}
			if v, ok := n.Lookup(fields[1]); ok {
				fmt.Fprintf(conn, "VALUE %s\n", v)
			} else {
				fmt.Fprintln(conn, "MISSING")
			}
		case "SET":
			if len(fields) < 3 {
				fmt.Fprintln(conn, "ERR usage: SET <key> <value>")
				continue
			}
			n.Update(fields[1], epidemic.Value(strings.Join(fields[2:], " ")))
			fmt.Fprintln(conn, "OK")
		case "DEL":
			if len(fields) != 2 {
				fmt.Fprintln(conn, "ERR usage: DEL <key>")
				continue
			}
			n.Delete(fields[1])
			fmt.Fprintln(conn, "OK")
		case "KEYS":
			var keys []string
			for _, k := range n.Store().Keys() {
				if !epidemic.IsMembershipKey(k) {
					keys = append(keys, k)
				}
			}
			fmt.Fprintf(conn, "KEYS %s\n", strings.Join(keys, " "))
		case "MEMBERS":
			var parts []string
			for _, rec := range epidemic.Members(n.Store()) {
				parts = append(parts, fmt.Sprintf("%d=%s", rec.Site, rec.Addr))
			}
			fmt.Fprintf(conn, "MEMBERS %s\n", strings.Join(parts, " "))
		case "HOT":
			var keys []string
			for _, e := range n.HotEntries() {
				keys = append(keys, e.Key)
			}
			fmt.Fprintf(conn, "HOT %s\n", strings.Join(keys, " "))
		case "SNAPSHOT":
			if err := n.SaveSnapshot(""); err != nil {
				fmt.Fprintf(conn, "ERR %v\n", err)
			} else {
				fmt.Fprintln(conn, "OK")
			}
		case "STATS":
			st := n.Stats()
			fmt.Fprintf(conn, "STATS updates=%d mail=%d/%d ae=%d rumor=%d sent=%d received=%d applied=%d redist=%d gc=%d\n",
				st.UpdatesAccepted, st.MailSent, st.MailFailed, st.AntiEntropyRuns,
				st.RumorRuns, st.EntriesSent, st.EntriesReceived, st.EntriesApplied,
				st.Redistributed, st.CertificatesExpired)
		case "STATSJSON":
			reply := struct {
				epidemic.NodeStats
				Trends *epidemic.ClusterTrends `json:"trends,omitempty"`
			}{NodeStats: n.Stats()}
			if env.trends != nil {
				reply.Trends = env.trends()
			}
			b, err := json.Marshal(reply)
			if err != nil {
				fmt.Fprintf(conn, "ERR %v\n", err)
				continue
			}
			fmt.Fprintf(conn, "%s\n", b)
		case "WIRE":
			b, err := json.Marshal(env.wire.Snapshot())
			if err != nil {
				fmt.Fprintf(conn, "ERR %v\n", err)
				continue
			}
			fmt.Fprintf(conn, "%s\n", b)
		case "TRACE":
			if len(fields) != 2 {
				fmt.Fprintln(conn, "ERR usage: TRACE <key>")
				continue
			}
			tr := n.Tracer()
			if tr == nil {
				fmt.Fprintln(conn, "ERR tracing disabled (start gossipd with -trace-ring)")
				continue
			}
			b, err := json.Marshal(tr.DumpFor(fields[1]))
			if err != nil {
				fmt.Fprintf(conn, "ERR %v\n", err)
				continue
			}
			fmt.Fprintf(conn, "%s\n", b)
		case "QUIT":
			return
		default:
			fmt.Fprintln(conn, "ERR unknown command")
		}
	}
}
