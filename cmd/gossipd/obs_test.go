package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"epidemic"
)

// fetchAdmin GETs one admin endpoint path and returns the body.
func fetchAdmin(t *testing.T, addr, path string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", path, resp.Status, body)
	}
	return body
}

// TestObsSmoke is the observability smoke test behind `make obs-smoke`: a
// three-daemon cluster on ephemeral ports, one update gossiped through,
// then every daemon's admin endpoint is scraped and checked — /metrics
// must be well-formed Prometheus exposition carrying the acceptance metric
// families, /metrics/history retained trajectories, /healthz well-formed
// JSON, /events a JSON log of real node activity (?key= filtering it
// server-side), /flight the (healthy, empty) dump listing, and STATSJSON
// the history-derived trends block.
func TestObsSmoke(t *testing.T) {
	base := daemonConfig{
		listen: "127.0.0.1:0", client: "127.0.0.1:0", admin: "127.0.0.1:0",
		aePer: 20 * time.Millisecond, rumPer: 10 * time.Millisecond,
		mail: true, k: 3, tau1: time.Hour, tau2: time.Hour, retain: 1, shardVector: true,
		clusterDigests: true, digestEvery: 20 * time.Millisecond, staleAfter: time.Second,
		historyStep: 20 * time.Millisecond, historyRetention: time.Minute,
	}
	var daemons []*daemon
	for site := 1; site <= 3; site++ {
		cfg := base
		cfg.site = site
		cfg.flightDir = t.TempDir()
		if len(daemons) > 0 {
			cfg.peerSpec = "1=" + daemons[0].GossipAddr()
		}
		d, err := startDaemon(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		daemons = append(daemons, d)
	}

	send := func(addr, cmd string) string {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(line)
	}

	if got := send(daemons[2].ClientAddr(), "SET greeting hello"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	deadline := time.After(5 * time.Second)
	for _, d := range daemons {
		for {
			if got := send(d.ClientAddr(), "GET greeting"); got == "VALUE hello" {
				break
			}
			select {
			case <-deadline:
				t.Fatal("update never converged")
			case <-time.After(20 * time.Millisecond):
			}
		}
	}

	required := []string{
		epidemic.MetricAntiEntropyRuns,
		epidemic.MetricRumorRounds,
		epidemic.MetricFullCompares,
		epidemic.MetricMailFailures,
		epidemic.MetricUpdatePropagation,
		epidemic.MetricEntriesReceived,
		epidemic.MetricOutboxEnqueued,
		epidemic.MetricOutboxCoalesced,
		epidemic.MetricOutboxDropped,
		epidemic.MetricOutboxBatches,
		epidemic.MetricOutboxQueueDepth,
		epidemic.MetricMailBatchesReceived,
		epidemic.MetricWireDials,
		epidemic.MetricWireReuses,
		epidemic.MetricWireOpenConns,
		epidemic.MetricWireBytesSent,
		epidemic.MetricWireBytesReceived,
		epidemic.MetricWireEntriesPerExchange,
		epidemic.MetricWireBytesPerExchange,
		epidemic.MetricWireMailBatches,
		epidemic.MetricWireMailBatchEntries,
		epidemic.MetricWireMailFallbackEntries,
	}
	for i, d := range daemons {
		metrics := fetchAdmin(t, d.AdminAddr(), "/metrics")
		if err := epidemic.ValidateExposition(strings.NewReader(string(metrics))); err != nil {
			t.Fatalf("daemon %d: malformed exposition: %v\n%s", i, err, metrics)
		}
		for _, name := range required {
			if !strings.Contains(string(metrics), name) {
				t.Errorf("daemon %d: /metrics missing %s", i, name)
			}
		}

		var health struct {
			Status  string `json:"status"`
			Site    int    `json:"site"`
			Members int    `json:"members"`
		}
		if err := json.Unmarshal(fetchAdmin(t, d.AdminAddr(), "/healthz"), &health); err != nil {
			t.Fatalf("daemon %d: bad /healthz JSON: %v", i, err)
		}
		if health.Status != "ok" || health.Site != i+1 {
			t.Errorf("daemon %d: health = %+v", i, health)
		}
		if health.Members < 3 {
			t.Errorf("daemon %d: directory has %d members, want 3", i, health.Members)
		}

		var events struct {
			Events []epidemic.EventRecord `json:"events"`
		}
		if err := json.Unmarshal(fetchAdmin(t, d.AdminAddr(), "/events"), &events); err != nil {
			t.Fatalf("daemon %d: bad /events JSON: %v", i, err)
		}
		if len(events.Events) == 0 {
			t.Errorf("daemon %d: /events is empty after traffic", i)
		}

		var stats epidemic.NodeStats
		if err := json.Unmarshal([]byte(send(d.ClientAddr(), "STATSJSON")), &stats); err != nil {
			t.Fatalf("daemon %d: bad STATSJSON: %v", i, err)
		}
		if i == 2 && stats.UpdatesAccepted < 1 {
			t.Errorf("daemon %d: STATSJSON updates_accepted = %d", i, stats.UpdatesAccepted)
		}
		// The SET rode the async outbound engine: the originating daemon
		// must show the enqueues and drained batches behind its mail.
		if i == 2 && stats.OutboxEnqueued < 1 {
			t.Errorf("daemon %d: STATSJSON outbox_enqueued = %d", i, stats.OutboxEnqueued)
		}
		if i == 2 && stats.OutboxBatches < 1 {
			t.Errorf("daemon %d: STATSJSON outbox_batches = %d", i, stats.OutboxBatches)
		}
	}

	// The update was applied somewhere it did not originate, so at least
	// one daemon observed a propagation delay.
	total := uint64(0)
	for _, d := range daemons {
		hist := d.reg.Histogram(epidemic.MetricUpdatePropagation, "", nil)
		total += hist.Count()
	}
	if total == 0 {
		t.Error("no propagation delays were observed cluster-wide")
	}

	// /events honours the n limit.
	var limited struct {
		Events []epidemic.EventRecord `json:"events"`
	}
	if err := json.Unmarshal(fetchAdmin(t, daemons[0].AdminAddr(), "/events?n=1"), &limited); err != nil {
		t.Fatal(err)
	}
	if len(limited.Events) != 1 {
		t.Errorf("/events?n=1 returned %d events", len(limited.Events))
	}

	// /events?key= filters server-side: only records touching the SET key
	// come back, and at least one must (the update was applied everywhere).
	var keyed struct {
		Events []epidemic.EventRecord `json:"events"`
	}
	if err := json.Unmarshal(fetchAdmin(t, daemons[0].AdminAddr(), "/events?key=greeting"), &keyed); err != nil {
		t.Fatal(err)
	}
	if len(keyed.Events) == 0 {
		t.Error("/events?key=greeting returned nothing after the SET")
	}
	for _, e := range keyed.Events {
		if !e.Matches("greeting") {
			t.Errorf("/events?key=greeting leaked %+v", e)
		}
	}

	// Telemetry history: every daemon's sampler serves an index and
	// windowed points for the acceptance metrics, and /flight answers with
	// the healthy cluster's (empty) dump listing.
	for i, d := range daemons {
		var index struct {
			Samples uint64   `json:"samples"`
			Series  []string `json:"series"`
		}
		histDeadline := time.Now().Add(5 * time.Second)
		for {
			if err := json.Unmarshal(fetchAdmin(t, d.AdminAddr(), "/metrics/history"), &index); err != nil {
				t.Fatalf("daemon %d: bad /metrics/history JSON: %v", i, err)
			}
			if index.Samples >= 2 {
				break
			}
			if time.Now().After(histDeadline) {
				t.Fatalf("daemon %d: sampler never took two samples", i)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if len(index.Series) == 0 {
			t.Errorf("daemon %d: /metrics/history lists no series", i)
		}
		var hist struct {
			Metric string                  `json:"metric"`
			Points []epidemic.HistoryPoint `json:"points"`
		}
		path := "/metrics/history?metric=" + epidemic.MetricRumorRounds + "&window=1m"
		if err := json.Unmarshal(fetchAdmin(t, d.AdminAddr(), path), &hist); err != nil {
			t.Fatalf("daemon %d: bad history points JSON: %v", i, err)
		}
		if len(hist.Points) == 0 {
			t.Errorf("daemon %d: no retained points for %s", i, epidemic.MetricRumorRounds)
		}

		var flight struct {
			Dir   string                    `json:"dir"`
			Dumps []epidemic.FlightDumpMeta `json:"dumps"`
		}
		if err := json.Unmarshal(fetchAdmin(t, d.AdminAddr(), "/flight"), &flight); err != nil {
			t.Fatalf("daemon %d: bad /flight JSON: %v", i, err)
		}
		if flight.Dir == "" {
			t.Errorf("daemon %d: /flight reports no dump dir", i)
		}
	}

	// STATSJSON grows the history-derived trends block once the digest
	// collector has two samples to rate over.
	var withTrends struct {
		Trends *epidemic.ClusterTrends `json:"trends"`
	}
	trendDeadline := time.Now().Add(5 * time.Second)
	for {
		if err := json.Unmarshal([]byte(send(daemons[0].ClientAddr(), "STATSJSON")), &withTrends); err != nil {
			t.Fatal(err)
		}
		if withTrends.Trends != nil {
			break
		}
		if time.Now().After(trendDeadline) {
			t.Fatal("STATSJSON never grew a trends block")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if withTrends.Trends.WindowSeconds <= 0 {
		t.Errorf("trends window_seconds = %v", withTrends.Trends.WindowSeconds)
	}
}

// TestBuildLogger covers the flag-to-logger mapping, including rejection
// of unknown levels and formats.
func TestBuildLogger(t *testing.T) {
	if l, err := buildLogger("", ""); err != nil || l != nil {
		t.Errorf("empty level: logger=%v err=%v", l, err)
	}
	for _, level := range []string{"debug", "info", "warn", "error"} {
		for _, format := range []string{"", "text", "json"} {
			if l, err := buildLogger(level, format); err != nil || l == nil {
				t.Errorf("level=%q format=%q: logger=%v err=%v", level, format, l, err)
			}
		}
	}
	if _, err := buildLogger("loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := buildLogger("info", "yaml"); err == nil {
		t.Error("bad format accepted")
	}
}

// TestClientStatsJSON checks the machine-readable stats command against
// the snake_case contract of node.Stats.
func TestClientStatsJSON(t *testing.T) {
	n, err := epidemic.NewNode(epidemic.NodeConfig{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.Update("k", epidemic.Value("v"))
	got := clientSession(t, n, []string{"STATSJSON"})
	var raw map[string]any
	if err := json.Unmarshal([]byte(got[0]), &raw); err != nil {
		t.Fatalf("STATSJSON = %q: %v", got[0], err)
	}
	if v, ok := raw["updates_accepted"]; !ok || v != float64(1) {
		t.Errorf("updates_accepted = %v (present=%v)", v, ok)
	}
	for _, field := range []string{"mail_sent", "mail_failed", "anti_entropy_runs",
		"rumor_runs", "entries_sent", "entries_received", "entries_applied",
		"full_compares", "redistributed", "certificates_expired"} {
		if _, ok := raw[field]; !ok {
			t.Errorf("STATSJSON missing field %q", field)
		}
	}
}

// TestClientWire checks the WIRE command's pool/traffic snapshot contract.
func TestClientWire(t *testing.T) {
	n, err := epidemic.NewNode(epidemic.NodeConfig{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	wire := &epidemic.WireStats{}
	server, client := net.Pipe()
	go handleClient(server, n, clientEnv{wire: wire})
	defer client.Close()
	if _, err := client.Write([]byte("WIRE\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(client).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal([]byte(line), &raw); err != nil {
		t.Fatalf("WIRE = %q: %v", line, err)
	}
	for _, field := range []string{"dials", "redials", "reuses", "open_conns",
		"bytes_sent", "bytes_received", "exchanges"} {
		if _, ok := raw[field]; !ok {
			t.Errorf("WIRE missing field %q", field)
		}
	}
}
