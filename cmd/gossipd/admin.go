package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"epidemic"
)

// healthReply is the /healthz response body. Status degrades from "ok"
// when the cluster stall detector flags a convergence problem; Stalls
// then lists the reasons.
type healthReply struct {
	Status        string                  `json:"status"`
	Site          int                     `json:"site"`
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Members       int                     `json:"members"`
	Peers         int                     `json:"peers"`
	HotRumors     int                     `json:"hot_rumors"`
	StoreKeys     int                     `json:"store_keys"`
	Stalls        []epidemic.ClusterStall `json:"stalls,omitempty"`
}

// startAdmin serves the observability endpoints on addr: /metrics
// (Prometheus text format), /metrics/history (retained metric time
// series, ?metric=&window=&step=; 503 unless -history-step), /healthz
// (JSON liveness + topology summary, "degraded" with reasons when the
// stall detector fires), /cluster (this replica's whole-cluster digest
// view; 503 unless -cluster-digests), /events (recent node events, newest
// last, ?n= to limit, ?since= for incremental polls, ?key= to filter),
// /trace (this replica's hop spans, ?key= to filter; 503 unless
// -trace-ring is set), /flight (anomaly flight dumps, ?name= for one raw
// dump; 503 unless -flight-dir), and the standard /debug/pprof/*
// profiles. Handlers are mounted on a private mux, not
// http.DefaultServeMux, so nothing else in the process leaks in.
func (d *daemon) startAdmin(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("admin listen %s: %w", addr, err)
	}
	started := time.Now()

	mux := http.NewServeMux()
	mux.Handle("/metrics", d.reg.Handler())
	mux.Handle("/events", d.ring.Handler())
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, req *http.Request) {
		if d.history == nil {
			http.Error(w, "history disabled (-history-step)", http.StatusServiceUnavailable)
			return
		}
		d.history.Handler().ServeHTTP(w, req)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, req *http.Request) {
		if d.flight == nil {
			http.Error(w, "flight recorder disabled (-flight-dir)", http.StatusServiceUnavailable)
			return
		}
		d.flight.Handler().ServeHTTP(w, req)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		n := d.node
		reply := healthReply{
			Status:        "ok",
			Site:          int(n.Site()),
			UptimeSeconds: time.Since(started).Seconds(),
			Members:       len(epidemic.Members(n.Store())),
			Peers:         len(n.Peers()),
			HotRumors:     len(n.HotEntries()),
			StoreKeys:     len(n.Store().Keys()),
		}
		if st := d.status.Load(); st != nil && len(st.Stalls) > 0 {
			reply.Status = "degraded"
			reply.Stalls = st.Stalls
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reply)
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, _ *http.Request) {
		st := d.status.Load()
		if st == nil {
			http.Error(w, "cluster digests disabled (-cluster-digests)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		tr := d.node.Tracer()
		if tr == nil {
			http.Error(w, "tracing disabled (-trace-ring)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(tr.DumpFor(req.URL.Query().Get("key")))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d.adminLn = ln
	d.adminSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = d.adminSrv.Serve(ln) }()
	return nil
}
