package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"epidemic"
)

// clusterBase is the daemon config the observatory tests share: fast
// gossip, fast digest refresh, and an explicit staleness window so the
// stall detector's behaviour doesn't depend on flag defaults.
func clusterBase() daemonConfig {
	return daemonConfig{
		listen: "127.0.0.1:0", client: "127.0.0.1:0", admin: "127.0.0.1:0",
		aePer: 20 * time.Millisecond, rumPer: 10 * time.Millisecond,
		mail: true, k: 3, tau1: time.Hour, tau2: time.Hour, retain: 1, shardVector: true,
		clusterDigests: true,
		digestEvery:    10 * time.Millisecond,
		staleAfter:     300 * time.Millisecond,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getClusterStatus(t *testing.T, d *daemon) epidemic.ClusterStatusReply {
	t.Helper()
	var st epidemic.ClusterStatusReply
	if err := json.Unmarshal(fetchAdmin(t, d.AdminAddr(), "/cluster"), &st); err != nil {
		t.Fatalf("bad /cluster JSON: %v", err)
	}
	return st
}

// TestClusterSmoke is the acceptance e2e behind `make cluster-smoke`: a
// three-daemon cluster whose digests spread by gossip until every daemon
// serves the whole cluster's health on /cluster; then one daemon is
// killed and the survivors must mark it stale, flip /healthz to degraded
// with a stale-digest reason, emit a cluster-stall event, and expose the
// epidemic_cluster_* metrics.
func TestClusterSmoke(t *testing.T) {
	base := clusterBase()
	var daemons []*daemon
	for site := 1; site <= 3; site++ {
		cfg := base
		cfg.site = site
		if len(daemons) > 0 {
			cfg.peerSpec = "1=" + daemons[0].GossipAddr()
		}
		d, err := startDaemon(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		daemons = append(daemons, d)
	}

	// Phase 1: every daemon's digest view converges to all three sites,
	// fresh and healthy, and the digests carry real state — at least the
	// three membership records and a positive uptime stamp. The content
	// check must ride the wait: a freshly received digest may predate the
	// remote site learning the full membership, and a newer one follows.
	waitFor(t, 5*time.Second, "full fresh cluster view", func() bool {
		for _, d := range daemons {
			st := getClusterStatus(t, d)
			if len(st.Sites) != 3 || st.Status != "ok" {
				return false
			}
			for _, s := range st.Sites {
				if s.Stale || s.StoreKeys < 3 || s.StartedAt <= 0 || s.Stamp <= s.StartedAt {
					return false
				}
			}
		}
		return true
	})

	// A healthy converged cluster must not trip the residue-stuck detector:
	// wait out the residue window (2x stale-after) and the view must still
	// be ok with zero residue everywhere. Regression test for the lone-
	// replica residue false positive (a node only observes its own applies,
	// so tracker-derived residue sat at 1-1/n forever).
	time.Sleep(2*base.staleAfter + 100*time.Millisecond)
	for _, d := range daemons {
		st := getClusterStatus(t, d)
		if st.Status != "ok" {
			t.Errorf("healthy cluster degraded after residue window: %+v", st.Stalls)
		}
		for _, s := range st.Sites {
			if s.Residue != 0 {
				t.Errorf("site %d residue = %v in a converged cluster", s.Site, s.Residue)
			}
		}
	}

	metrics := string(fetchAdmin(t, daemons[0].AdminAddr(), "/metrics"))
	if err := epidemic.ValidateExposition(strings.NewReader(metrics)); err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	for _, name := range []string{
		epidemic.MetricClusterSites,
		epidemic.MetricClusterStaleSites,
		epidemic.MetricExchangeSeconds,
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}

	// Phase 2: kill site 3. The survivors' copies of its digest age out of
	// the staleness window; /cluster marks it stale and /healthz degrades.
	daemons[2].Close()
	survivors := daemons[:2]
	waitFor(t, 5*time.Second, "stale detection after kill", func() bool {
		for _, d := range survivors {
			st := getClusterStatus(t, d)
			stale := false
			for _, s := range st.Sites {
				if s.Site == 3 && s.Stale {
					stale = true
				}
			}
			if !stale || st.Status != "degraded" {
				return false
			}
		}
		return true
	})

	for _, d := range survivors {
		var health healthReply
		if err := json.Unmarshal(fetchAdmin(t, d.AdminAddr(), "/healthz"), &health); err != nil {
			t.Fatalf("bad /healthz JSON: %v", err)
		}
		if health.Status != "degraded" {
			t.Errorf("site %d /healthz status = %q, want degraded", health.Site, health.Status)
		}
		found := false
		for _, stall := range health.Stalls {
			if stall.Site == 3 && stall.Reason == epidemic.StallStaleDigest {
				found = true
			}
		}
		if !found {
			t.Errorf("site %d /healthz stalls lack stale-digest for site 3: %+v", health.Site, health.Stalls)
		}

		var events struct {
			Events []epidemic.EventRecord `json:"events"`
		}
		if err := json.Unmarshal(fetchAdmin(t, d.AdminAddr(), "/events"), &events); err != nil {
			t.Fatalf("bad /events JSON: %v", err)
		}
		stallEvents := 0
		for _, e := range events.Events {
			if e.Kind == "cluster-stall" && e.Peer == 3 && e.Key == epidemic.StallStaleDigest {
				stallEvents++
			}
		}
		if stallEvents != 1 {
			t.Errorf("survivor has %d cluster-stall events for site 3, want exactly 1 (edge-triggered)", stallEvents)
		}

		metrics := string(fetchAdmin(t, d.AdminAddr(), "/metrics"))
		if !strings.Contains(metrics, epidemic.MetricClusterStalls) {
			t.Errorf("/metrics missing %s after a stall", epidemic.MetricClusterStalls)
		}
	}
}

// TestHealthzDegradesAndRecovers drives one daemon's /healthz through
// both states: ok at startup, degraded once a stale digest appears in its
// view, and ok again after the TTL prunes the departed site.
func TestHealthzDegradesAndRecovers(t *testing.T) {
	cfg := clusterBase()
	cfg.site = 1
	cfg.staleAfter = 50 * time.Millisecond
	cfg.digestTTL = 2 * time.Second
	d, err := startDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	health := func() healthReply {
		var h healthReply
		if err := json.Unmarshal(fetchAdmin(t, d.AdminAddr(), "/healthz"), &h); err != nil {
			t.Fatalf("bad /healthz JSON: %v", err)
		}
		return h
	}
	if h := health(); h.Status != "ok" || len(h.Stalls) != 0 {
		t.Fatalf("fresh daemon health = %+v, want ok", h)
	}

	// A site whose digest is already 500ms old: past the 50ms staleness
	// window, well inside the 2s TTL.
	d.digests.Merge([]epidemic.ClusterDigest{{
		Site: 99, Stamp: time.Now().Add(-500 * time.Millisecond).UnixNano(),
	}})
	waitFor(t, 3*time.Second, "degraded health", func() bool {
		h := health()
		if h.Status != "degraded" {
			return false
		}
		for _, s := range h.Stalls {
			if s.Site == 99 && s.Reason == epidemic.StallStaleDigest {
				return true
			}
		}
		return false
	})

	// Once the TTL passes, the departed site is pruned and health recovers.
	waitFor(t, 5*time.Second, "health recovery after TTL prune", func() bool {
		return health().Status == "ok"
	})
	st := getClusterStatus(t, d)
	for _, s := range st.Sites {
		if s.Site == 99 {
			t.Errorf("site 99 still in view after TTL: %+v", s)
		}
	}
}

// TestClusterDisabled: with -cluster-digests=false the /cluster route
// answers 503, /healthz never degrades, and no digest directory exists.
func TestClusterDisabled(t *testing.T) {
	cfg := clusterBase()
	cfg.site = 1
	cfg.clusterDigests = false
	d, err := startDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	resp, err := http.Get("http://" + d.AdminAddr() + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/cluster = %s (%s), want 503", resp.Status, body)
	}
	var h healthReply
	if err := json.Unmarshal(fetchAdmin(t, d.AdminAddr(), "/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("health = %+v, want ok", h)
	}
	if d.node.Digests() != nil {
		t.Error("digest directory materialised with the observatory off")
	}
}
