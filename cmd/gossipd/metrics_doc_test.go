package main

import (
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"epidemic"
)

// tableRow matches one row of the DESIGN.md §9 metric-family table.
var tableRow = regexp.MustCompile("(?m)^\\| `(epidemic_[a-z0-9_]+)` \\|")

// TestMetricsDocDrift is the metrics-documentation drift gate: it boots a
// daemon pair with every metric-registering subsystem enabled, drives one
// update through so lazily-registered families (transport request
// counters) appear, walks the registry, and asserts the registered
// epidemic_* family set and DESIGN.md's metric table are identical — a
// new metric without a doc row fails, as does a doc row whose metric was
// removed or renamed.
func TestMetricsDocDrift(t *testing.T) {
	base := daemonConfig{
		listen: "127.0.0.1:0", client: "127.0.0.1:0",
		aePer: 20 * time.Millisecond, rumPer: 10 * time.Millisecond,
		mail: true, k: 3, tau1: time.Hour, tau2: time.Hour, retain: 1,
		shardVector: true, traceRing: 64,
		clusterDigests: true, digestEvery: 20 * time.Millisecond,
		historyStep: 50 * time.Millisecond, historyRetention: time.Minute,
	}
	cfg1 := base
	cfg1.site = 1
	d1, err := startDaemon(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	cfg2 := base
	cfg2.site = 2
	cfg2.peerSpec = "1=" + d1.GossipAddr()
	d2, err := startDaemon(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	// Converge one update: real gossip traffic registers the kind-labelled
	// transport families on the serving side.
	d1.node.Update("drift", epidemic.Value("gate"))
	deadline := time.After(5 * time.Second)
	for {
		if _, ok := d2.node.Lookup("drift"); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("update never converged")
		case <-time.After(10 * time.Millisecond):
		}
	}
	waitForFamily := func(d *daemon, name string) {
		wait := time.Now().Add(5 * time.Second)
		for {
			found := false
			d.reg.VisitSeries(func(v epidemic.MetricSeriesView) {
				if v.Name == name {
					found = true
				}
			})
			if found {
				return
			}
			if time.Now().After(wait) {
				t.Fatalf("%s never registered", name)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitForFamily(d1, epidemic.MetricTransportRequests)

	// The stall counter registers on the first stall edge; the gate wants
	// the full healthy-daemon surface, so register it here exactly as the
	// digest collector does when an incident fires.
	d1.reg.Counter(epidemic.MetricClusterStalls,
		"Convergence stalls detected, by reason.",
		epidemic.MetricLabel{Name: "reason", Value: "stale-digest"})

	registered := make(map[string]bool)
	d1.reg.VisitSeries(func(v epidemic.MetricSeriesView) {
		if strings.HasPrefix(v.Name, "epidemic_") {
			registered[v.Name] = true
		}
	})
	if len(registered) == 0 {
		t.Fatal("registry walk found no epidemic_* families")
	}

	design, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := make(map[string]bool)
	for _, m := range tableRow.FindAllStringSubmatch(string(design), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("DESIGN.md has no metric-family table rows")
	}

	for name := range registered {
		if !documented[name] {
			t.Errorf("registered family %s has no DESIGN.md table row", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("DESIGN.md documents %s but the daemon does not register it", name)
		}
	}
}
