package main

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"testing"
	"time"

	"epidemic"
)

// TestFlightDumpOnDaemonKill is the flight-recorder acceptance test: a
// three-daemon cluster converges, one daemon is killed, and each survivor
// must produce exactly one stale-digest flight dump whose correlated
// sections — event window, trace-span ring, time-series window — are all
// non-empty and cover the incident.
func TestFlightDumpOnDaemonKill(t *testing.T) {
	const staleAfter = 500 * time.Millisecond
	base := daemonConfig{
		listen: "127.0.0.1:0", client: "127.0.0.1:0", admin: "127.0.0.1:0",
		aePer: 20 * time.Millisecond, rumPer: 10 * time.Millisecond,
		mail: true, k: 3, tau1: time.Hour, tau2: time.Hour, retain: 1, shardVector: true,
		traceRing:      256,
		clusterDigests: true, digestEvery: 20 * time.Millisecond, staleAfter: staleAfter,
		historyStep: 20 * time.Millisecond, historyRetention: time.Minute,
	}
	// FLIGHT_SMOKE_DIR redirects dumps to a stable path (make obs-smoke
	// points it into .scratch/) so a failing CI run leaves the flight
	// dumps behind as artifacts; unset, they go to the test temp dir.
	flightRoot := os.Getenv("FLIGHT_SMOKE_DIR")
	var daemons []*daemon
	for site := 1; site <= 3; site++ {
		cfg := base
		cfg.site = site
		cfg.flightDir = t.TempDir()
		if flightRoot != "" {
			cfg.flightDir = filepath.Join(flightRoot, fmt.Sprintf("site-%d", site))
			if err := os.RemoveAll(cfg.flightDir); err != nil {
				t.Fatal(err)
			}
		}
		if len(daemons) > 0 {
			cfg.peerSpec = "1=" + daemons[0].GossipAddr()
		}
		d, err := startDaemon(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		daemons = append(daemons, d)
	}

	// Converge one update so every survivor has event/span/series history
	// covering real gossip activity, and every digest checksum agrees
	// (only the staleness trigger should fire after the kill).
	daemons[0].node.Update("incident", epidemic.Value("payload"))
	deadline := time.After(5 * time.Second)
	for _, d := range daemons {
		for {
			if _, ok := d.node.Lookup("incident"); ok {
				break
			}
			select {
			case <-deadline:
				t.Fatal("update never converged")
			case <-time.After(10 * time.Millisecond):
			}
		}
	}

	victim := daemons[2]
	victim.Close()
	killed := time.Now().UnixNano()

	// Each survivor notices the victim's digest going stale and dumps once.
	type dumpList struct {
		Dumps []epidemic.FlightDumpMeta `json:"dumps"`
	}
	staleDumps := func(addr string) []epidemic.FlightDumpMeta {
		var list dumpList
		if err := json.Unmarshal(fetchAdmin(t, addr, "/flight"), &list); err != nil {
			t.Fatalf("bad /flight JSON: %v", err)
		}
		var out []epidemic.FlightDumpMeta
		for _, m := range list.Dumps {
			if m.Reason == "stale-digest" {
				out = append(out, m)
			}
		}
		return out
	}
	for i, d := range daemons[:2] {
		var dumps []epidemic.FlightDumpMeta
		dumpDeadline := time.Now().Add(10 * time.Second)
		for {
			dumps = staleDumps(d.AdminAddr())
			if len(dumps) > 0 {
				break
			}
			if time.Now().After(dumpDeadline) {
				t.Fatalf("survivor %d never produced a stale-digest flight dump", i)
			}
			time.Sleep(25 * time.Millisecond)
		}

		// The stall is a level condition that persists; the edge tracker
		// must keep it to exactly one dump. Wait several more staleness
		// windows to catch any re-trigger.
		time.Sleep(3 * staleAfter)
		dumps = staleDumps(d.AdminAddr())
		if len(dumps) != 1 {
			t.Fatalf("survivor %d has %d stale-digest dumps, want exactly 1: %+v", i, len(dumps), dumps)
		}
		if dumps[0].At < killed-staleAfter.Nanoseconds() {
			t.Errorf("survivor %d: dump stamped %d, before the kill at %d", i, dumps[0].At, killed)
		}

		// The dump's correlated sections must be non-empty and the
		// time-series window must cover the incident stamp.
		var dump struct {
			Reason   string `json:"reason"`
			At       int64  `json:"at"`
			Sections struct {
				Events []epidemic.EventRecord `json:"events"`
				Spans  struct {
					Spans []json.RawMessage `json:"spans"`
				} `json:"spans"`
				Series map[string][]epidemic.HistoryPoint `json:"series"`
				Status *epidemic.ClusterStatusReply       `json:"status"`
			} `json:"sections"`
		}
		body := fetchAdmin(t, d.AdminAddr(), "/flight?name="+url.QueryEscape(dumps[0].Name))
		if err := json.Unmarshal(body, &dump); err != nil {
			t.Fatalf("survivor %d: bad dump JSON: %v", i, err)
		}
		if dump.Reason != "stale-digest" {
			t.Errorf("survivor %d: dump reason = %q", i, dump.Reason)
		}
		if len(dump.Sections.Events) == 0 {
			t.Errorf("survivor %d: dump has an empty event window", i)
		}
		if len(dump.Sections.Spans.Spans) == 0 {
			t.Errorf("survivor %d: dump has an empty span ring", i)
		}
		if len(dump.Sections.Series) == 0 {
			t.Fatalf("survivor %d: dump has no time series", i)
		}
		covered := false
		for _, pts := range dump.Sections.Series {
			for _, p := range pts {
				if p.At <= dump.At {
					covered = true
				}
			}
		}
		if !covered {
			t.Errorf("survivor %d: no series point at or before the incident stamp", i)
		}
		if dump.Sections.Status == nil {
			t.Errorf("survivor %d: dump carries no cluster status", i)
		}
	}
}
