// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report.
//
// Usage:
//
//	go test -bench . -benchmem . | benchjson -o BENCH_1.json -baseline docs/bench-seed.txt
//
// Each benchmark line ("BenchmarkName-8  10  123 ns/op  4 B/op ...")
// becomes an object with its run count and a metrics map (ns/op, B/op,
// allocs/op, plus every custom b.ReportMetric unit, e.g. the paper
// metrics residue_kmax or bushey_a2). The -baseline flag parses a second
// bench text in the same format and embeds it alongside per-benchmark
// ns/op speedup ratios, so a report carries its own before/after story.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix go test appended to the name (the
	// "-8" in "BenchmarkFoo-8"), zero when absent. A -cpu 1,4,8 run emits
	// the same name at several procs values; this field keeps them apart.
	Procs   int                `json:"procs,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
	// Speedup is baseline ns/op divided by this run's ns/op; present
	// only when a baseline knows the same benchmark.
	Speedup float64 `json:"speedup_vs_baseline,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Generated  string      `json:"generated"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Baseline embeds the parsed -baseline file, if given.
	Baseline *BaselineReport `json:"baseline,omitempty"`
}

// BaselineReport is the parsed baseline bench text.
type BaselineReport struct {
	Source     string      `json:"source"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		out      = flag.String("o", "", "output file (default stdout)")
		baseline = flag.String("baseline", "", "bench text file to embed as the comparison baseline")
	)
	flag.Parse()
	if err := run(os.Stdin, *out, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out, baselinePath string) error {
	benches, header, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       header["goos"],
		GOARCH:     header["goarch"],
		CPU:        header["cpu"],
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: benches,
	}
	if baselinePath != "" {
		f, err := os.Open(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		base, baseHeader, err := parseBench(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		report.Baseline = &BaselineReport{
			Source:     baselinePath,
			CPU:        baseHeader["cpu"],
			Benchmarks: base,
		}
		// Match baseline entries by (name, procs) first so -cpu sweeps
		// compare like with like, falling back to name alone for baselines
		// recorded before procs mattered.
		baseNs := make(map[string]float64, 2*len(base))
		for _, b := range base {
			baseNs[fmt.Sprintf("%s-%d", b.Name, b.Procs)] = b.Metrics["ns/op"]
			if _, ok := baseNs[b.Name]; !ok {
				baseNs[b.Name] = b.Metrics["ns/op"]
			}
		}
		for i := range report.Benchmarks {
			b := &report.Benchmarks[i]
			prev, ok := baseNs[fmt.Sprintf("%s-%d", b.Name, b.Procs)]
			if !ok {
				prev, ok = baseNs[b.Name]
			}
			if ok && b.Metrics["ns/op"] > 0 {
				b.Speedup = prev / b.Metrics["ns/op"]
			}
		}
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// parseBench reads `go test -bench` text, returning the benchmark lines
// and the goos/goarch/cpu/pkg header values.
func parseBench(in io.Reader) ([]Benchmark, map[string]string, error) {
	var benches []Benchmark
	header := make(map[string]string)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "cpu", "pkg"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				header[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			benches = append(benches, b)
		}
	}
	return benches, header, sc.Err()
}

// parseBenchLine parses one result line: a name, a run count, then
// alternating "value unit" pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	// Strip the -<GOMAXPROCS> suffix go test appends to the name, keeping
	// its value so -cpu sweeps stay distinguishable.
	name := fields[0]
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	metrics := make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		metrics[fields[i+1]] = v
	}
	return Benchmark{Name: name, Procs: procs, Runs: runs, Metrics: metrics}, true
}
