package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: epidemic
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1-8 	       2	  40000000 ns/op	         0.001120 residue_kmax	 3895536 B/op	     889 allocs/op
BenchmarkTable4 	       1	 100000000 ns/op	        60.30 bushey_uniform	23224576 B/op	   19247 allocs/op
PASS
ok  	epidemic	0.303s
`

const baseline = `cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1 	       1	  80000000 ns/op	 3895536 B/op	     889 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	benches, header, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks", len(benches))
	}
	if header["goos"] != "linux" || header["cpu"] == "" {
		t.Errorf("header = %v", header)
	}
	b := benches[0]
	if b.Name != "BenchmarkTable1" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", b.Name)
	}
	if b.Procs != 8 {
		t.Errorf("procs = %d, want 8 (from the -8 suffix)", b.Procs)
	}
	if benches[1].Procs != 0 {
		t.Errorf("procs = %d, want 0 when the name has no suffix", benches[1].Procs)
	}
	if b.Runs != 2 {
		t.Errorf("runs = %d", b.Runs)
	}
	for unit, want := range map[string]float64{
		"ns/op":        40000000,
		"residue_kmax": 0.001120,
		"B/op":         3895536,
		"allocs/op":    889,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metric %s = %v, want %v", unit, got, want)
		}
	}
}

func TestRunWithBaseline(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	if err := os.WriteFile(basePath, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.json")
	if err := run(strings.NewReader(sample), outPath, basePath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Baseline == nil || len(rep.Baseline.Benchmarks) != 1 {
		t.Fatal("baseline not embedded")
	}
	if got := rep.Benchmarks[0].Speedup; got != 2 {
		t.Errorf("Table1 speedup = %v, want 2", got)
	}
	if rep.Benchmarks[1].Speedup != 0 {
		t.Errorf("Table4 has no baseline, speedup should be omitted (got %v)", rep.Benchmarks[1].Speedup)
	}
	if rep.GOMAXPROCS < 1 || rep.GoVersion == "" {
		t.Errorf("environment fields missing: %+v", rep)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("nothing here\n"), "", ""); err == nil {
		t.Fatal("empty input accepted")
	}
}

// A -cpu 1,4,8 sweep repeats each benchmark name at several procs values;
// the parser must keep them apart and the baseline matcher must pair each
// with the same-procs baseline line, not the first name match.
func TestCPUSweepProcs(t *testing.T) {
	const sweep = `BenchmarkMix/sharded 	 200000	 1000 ns/op
BenchmarkMix/sharded-4 	 200000	  500 ns/op
BenchmarkMix/sharded-8 	 200000	  250 ns/op
PASS
`
	const sweepBase = `BenchmarkMix/sharded 	 200000	 2000 ns/op
BenchmarkMix/sharded-4 	 200000	 2000 ns/op
BenchmarkMix/sharded-8 	 200000	 2000 ns/op
PASS
`
	benches, _, err := parseBench(strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
	for i, want := range []int{0, 4, 8} {
		if benches[i].Name != "BenchmarkMix/sharded" || benches[i].Procs != want {
			t.Errorf("benches[%d] = %q procs %d, want procs %d", i, benches[i].Name, benches[i].Procs, want)
		}
	}

	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	if err := os.WriteFile(basePath, []byte(sweepBase), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.json")
	if err := run(strings.NewReader(sweep), outPath, basePath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{2, 4, 8} {
		if got := rep.Benchmarks[i].Speedup; got != want {
			t.Errorf("speedup at procs %d = %v, want %v", rep.Benchmarks[i].Procs, got, want)
		}
	}
}
