package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"epidemic"
)

// liveAdmin assembles a real admin endpoint — the same registry and
// event-ring handlers gossipd mounts — around a live node, so the admin
// verbs are exercised end to end rather than against canned strings.
func liveAdmin(t *testing.T) (admin string, ring *epidemic.EventRing) {
	t.Helper()
	n, err := epidemic.NewNode(epidemic.NodeConfig{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := epidemic.NewMetricsRegistry()
	ring = epidemic.NewEventRing(0)
	n.SetOnEvent(epidemic.InstrumentNode(reg, n, epidemic.ObserveOptions{Ring: ring}))
	n.Update("greeting", epidemic.Value("hello"))

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/events", ring.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","site":1}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://"), ring
}

// TestAdminVerbsLive drives metrics, health and events against live
// handlers: the metrics body must be valid Prometheus exposition carrying
// real node series, and the events cursor must resume incrementally.
func TestAdminVerbsLive(t *testing.T) {
	admin, ring := liveAdmin(t)
	opts := testOpts("127.0.0.1:1", admin)

	metrics, err := run(opts, []string{"metrics"})
	if err != nil {
		t.Fatal(err)
	}
	if err := epidemic.ValidateExposition(strings.NewReader(metrics)); err != nil {
		t.Fatalf("metrics verb returned malformed exposition: %v", err)
	}
	for _, name := range []string{epidemic.MetricUpdatesAccepted, epidemic.MetricStoreKeys} {
		if !strings.Contains(metrics, name) {
			t.Errorf("metrics output missing %s", name)
		}
	}

	health, err := run(opts, []string{"health"})
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(health), &h); err != nil || h.Status != "ok" {
		t.Errorf("health = %q (%v)", health, err)
	}

	// Events: the update event is retained; a -since resume from the reply
	// cursor sees nothing until new activity lands.
	out, err := run(opts, []string{"events"})
	if err != nil {
		t.Fatal(err)
	}
	var reply struct {
		Events []epidemic.EventRecord `json:"events"`
		Next   int64                  `json:"next"`
	}
	if err := json.Unmarshal([]byte(out), &reply); err != nil {
		t.Fatalf("events reply: %v\n%s", err, out)
	}
	if len(reply.Events) == 0 || reply.Events[0].Kind != "update" {
		t.Fatalf("events = %+v, want the update event", reply.Events)
	}

	resume := opts
	resume.since = reply.Next
	out, err = run(resume, []string{"events"})
	if err != nil {
		t.Fatal(err)
	}
	var empty struct {
		Events []epidemic.EventRecord `json:"events"`
		Next   int64                  `json:"next"`
	}
	if err := json.Unmarshal([]byte(out), &empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Events) != 0 {
		t.Errorf("resume from cursor %d replayed %d events", reply.Next, len(empty.Events))
	}

	// New activity after the cursor is picked up by the next resume.
	ring.Append(epidemic.EventRecord{Site: 1, Kind: "gc"})
	out, err = run(resume, []string{"events"})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(out), &empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Events) != 1 || empty.Events[0].Kind != "gc" {
		t.Errorf("resume after new event = %+v, want just the gc event", empty.Events)
	}
}

// clusterReply builds a two-site status with one stale site and a stall,
// served the way gossipd's /cluster route does.
func clusterReply() epidemic.ClusterStatusReply {
	now := int64(100 * 1e9)
	digests := []epidemic.ClusterDigest{
		{
			Site: 1, Stamp: now, StartedAt: now - 60*1e9, StoreKeys: 7,
			Checksum: 0xabcdef0123456789, HotRumors: 2, LastAE: now - 2*1e9,
			AntiEntropy: epidemic.ClusterLatencySummary{Count: 40, P50: 0.004, P99: 0.12},
		},
		{Site: 2, Stamp: now - 30*1e9, StartedAt: now - 60*1e9, StoreKeys: 6},
	}
	stalls := []epidemic.ClusterStall{{
		Site: 2, Reason: epidemic.StallStaleDigest,
		Detail: "digest last refreshed 30.0s ago", AgeSeconds: 30,
	}}
	return epidemic.BuildClusterStatus(1, now, digests, stalls, int64(10*1e9), 1e-9)
}

func serveCluster(t *testing.T, st epidemic.ClusterStatusReply) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// TestRunStatus checks the status verb renders the /cluster view: header,
// per-site rows with quantiles and staleness, and the stall list.
func TestRunStatus(t *testing.T) {
	opts := testOpts("127.0.0.1:1", serveCluster(t, clusterReply()))
	out, err := run(opts, []string{"status"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cluster status from site 1: degraded (2 sites)",
		"SITE", "AE-P50", "LAST-AE",
		"abcdef01", // checksum prefix
		"4.0ms",    // site 1 AE p50
		"120.0ms",  // site 1 AE p99
		"2.0s ago", // site 1 last anti-entropy
		"stale",    // site 2 marked stale
		"-",        // site 2 has no latency samples
		"stall: site 2 stale-digest",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("status output leaked NaN:\n%s", out)
	}

	// Healthy reply: no stall lines, status ok.
	healthy := clusterReply()
	healthy.Status = "ok"
	healthy.Stalls = nil
	opts = testOpts("127.0.0.1:1", serveCluster(t, healthy))
	out, err = run(opts, []string{"status"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "stall:") {
		t.Errorf("healthy status output has stalls:\n%s", out)
	}

	if _, err := run(testOpts("127.0.0.1:1", ""), []string{"status"}); err == nil || !strings.Contains(err.Error(), "-admin") {
		t.Errorf("missing -admin not reported: %v", err)
	}
	if _, err := run(opts, []string{"status", "extra"}); err == nil {
		t.Error("status with args accepted")
	}
}

// TestRunWatch checks watch redraws frames (clear-screen escape between
// them) and stops at the iteration bound; errors surface immediately.
func TestRunWatch(t *testing.T) {
	opts := testOpts("127.0.0.1:1", serveCluster(t, clusterReply()))
	opts.interval = time.Millisecond
	var sb strings.Builder
	if err := runWatch(opts, &sb, 3); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "\033[H\033[2J"); got != 3 {
		t.Errorf("watch drew %d clear-screens, want 3", got)
	}
	if got := strings.Count(out, "cluster status from site 1"); got != 3 {
		t.Errorf("watch drew %d frames, want 3", got)
	}

	bad := testOpts("127.0.0.1:1", "127.0.0.1:1")
	bad.timeout = 200 * time.Millisecond
	bad.interval = time.Millisecond
	if err := runWatch(bad, &sb, 2); err == nil {
		t.Error("watch against a dead endpoint did not error")
	}
}
