package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"strings"
	"text/tabwriter"
	"time"

	"epidemic"
)

// topRow is one node's slice of the dashboard: the /cluster reply fetched
// from its admin endpoint, or the error that fetch produced.
type topRow struct {
	addr   string
	status epidemic.ClusterStatusReply
	err    error
}

// runTop drives the live dashboard: it federates /cluster from every
// comma-separated -admin address (each reply carries the answering node's
// own history-derived trends), renders one row per node, and redraws
// every -interval. iterations bounds the frame count when > 0 (tests);
// <= 0 runs until a fetch of every node fails or the process is
// interrupted.
func runTop(opts options, out io.Writer, iterations int) error {
	addrs := splitList(opts.admin)
	if len(addrs) == 0 {
		return fmt.Errorf("top reads admin endpoints; set -admin host:port[,host:port...] (gossipd -admin)")
	}
	interval := opts.interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	for i := 0; iterations <= 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		rows := make([]topRow, 0, len(addrs))
		alive := 0
		for _, a := range addrs {
			o := opts
			o.admin = a
			row := topRow{addr: a}
			row.status, row.err = fetchStatus(o)
			if row.err == nil {
				alive++
			}
			rows = append(rows, row)
		}
		if alive == 0 {
			return fmt.Errorf("every node failed; first error: %v", rows[0].err)
		}
		fmt.Fprint(out, "\033[H\033[2J") // cursor home + clear screen
		renderTop(out, rows)
	}
	return nil
}

// renderTop formats one dashboard frame: a header and one row per node
// with its windowed rates, queue depth and slope, exchange latency
// quantiles, and sparkline trends from the node's retained time series.
func renderTop(w io.Writer, rows []topRow) {
	fmt.Fprintf(w, "gossip top — %d node(s)\n", len(rows))
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tSITE\tSTATUS\tRUMOR/S\tAE/S\tOUTBOX\tSLOPE/S\tAE-P50\tAE-P99\tRESIDUE\tOUTBOX-TREND")
	for _, r := range rows {
		if r.err != nil {
			fmt.Fprintf(tw, "%s\t-\tunreachable\t-\t-\t-\t-\t-\t-\t-\t-\n", r.addr)
			continue
		}
		st := r.status
		// The answering node's own exchange-latency summary rides its site
		// row in the digest view.
		var ae epidemic.ClusterLatencySummary
		for _, s := range st.Sites {
			if s.Site == st.Site {
				ae = s.AntiEntropy
			}
		}
		rumor, exch, depth, slope := "-", "-", "-", "-"
		residueSpark, outboxSpark := "-", "-"
		if t := st.Trends; t != nil {
			rumor = fmt.Sprintf("%.1f", t.RumorRatePerSec)
			exch = fmt.Sprintf("%.1f", t.ExchangeRatePerSec)
			depth = fmt.Sprintf("%.0f", t.OutboxDepth)
			slope = fmt.Sprintf("%+.1f", t.OutboxSlopePerSec)
			residueSpark = sparkline(t.ResidueTrajectory)
			outboxSpark = sparkline(t.OutboxTrajectory)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.addr, st.Site, st.Status, rumor, exch, depth, slope,
			fmtQuantile(ae, ae.P50), fmtQuantile(ae, ae.P99),
			residueSpark, outboxSpark)
	}
	tw.Flush()
	for _, r := range rows {
		if r.err != nil {
			continue
		}
		for _, stall := range r.status.Stalls {
			site := fmt.Sprintf("site %d", stall.Site)
			if stall.Site == epidemic.StallClusterWide {
				site = "cluster"
			}
			fmt.Fprintf(w, "stall @%s: %s %s — %s (%.1fs)\n",
				r.addr, site, stall.Reason, stall.Detail, stall.AgeSeconds)
		}
	}
}

// sparkLevels are the eight block glyphs a trajectory maps onto.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// sparkline renders a trajectory as block glyphs normalized to its own
// min..max (a flat series renders at the lowest level).
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return "-"
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		level := 0
		if max > min {
			level = int((v - min) / (max - min) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[level])
	}
	return b.String()
}

// runFlight lists a daemon's flight dumps, or fetches one raw dump when a
// name is given.
func runFlight(opts options, rest []string) (string, error) {
	switch len(rest) {
	case 0:
		body, err := fetchAdmin(opts.admin, "/flight", opts.timeout)
		if err != nil {
			return "", err
		}
		var list struct {
			Dir   string                    `json:"dir"`
			Dumps []epidemic.FlightDumpMeta `json:"dumps"`
		}
		if err := json.Unmarshal([]byte(body), &list); err != nil {
			return "", fmt.Errorf("bad /flight reply: %w", err)
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "flight dir %s — %d dump(s)\n", list.Dir, len(list.Dumps))
		tw := tabwriter.NewWriter(&sb, 0, 0, 2, ' ', 0)
		fmt.Fprintln(tw, "NAME\tREASON\tAT\tSIZE")
		for _, m := range list.Dumps {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\n",
				m.Name, m.Reason, time.Unix(0, m.At).UTC().Format(time.RFC3339), m.Size)
		}
		tw.Flush()
		return strings.TrimRight(sb.String(), "\n"), nil
	case 1:
		return fetchAdmin(opts.admin, "/flight?name="+url.QueryEscape(rest[0]), opts.timeout)
	default:
		return "", fmt.Errorf("usage: flight [name]")
	}
}

// splitList splits a comma-separated address list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
