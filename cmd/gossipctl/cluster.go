package main

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"epidemic"
)

// fetchStatus grabs and decodes one /cluster reply from the admin
// endpoint. Any single replica answers for the whole cluster: the digests
// behind the reply arrived by gossip.
func fetchStatus(opts options) (epidemic.ClusterStatusReply, error) {
	var st epidemic.ClusterStatusReply
	body, err := fetchAdmin(opts.admin, "/cluster", opts.timeout)
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		return st, fmt.Errorf("bad /cluster reply: %w", err)
	}
	return st, nil
}

// runStatus renders one /cluster fetch as the status table.
func runStatus(opts options) (string, error) {
	st, err := fetchStatus(opts)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	renderStatus(&sb, st)
	return strings.TrimRight(sb.String(), "\n"), nil
}

// runWatch redraws the status table every -interval until the fetch fails
// or the process is interrupted. iterations bounds the number of frames
// when > 0 (tests); <= 0 runs forever.
func runWatch(opts options, out io.Writer, iterations int) error {
	interval := opts.interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	for i := 0; iterations <= 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		st, err := fetchStatus(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, "\033[H\033[2J") // cursor home + clear screen
		renderStatus(out, st)
	}
	return nil
}

// renderStatus formats one replica's cluster view: a header, one table
// row per site, and any active convergence stalls below.
func renderStatus(w io.Writer, st epidemic.ClusterStatusReply) {
	fmt.Fprintf(w, "cluster status from site %d: %s (%d sites)\n",
		st.Site, st.Status, len(st.Sites))
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "SITE\tSTATUS\tAGE\tUPTIME\tKEYS\tCKSUM\tHOT\tAE-P50\tAE-P99\tLAST-AE")
	for _, s := range st.Sites {
		status := "ok"
		if s.Stale {
			status = "stale"
		}
		lastAE := "never"
		if s.LastAE > 0 {
			lastAE = fmtSeconds(float64(st.Now-s.LastAE)*1e-9) + " ago"
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d\t%s\t%d\t%s\t%s\t%s\n",
			s.Site, status,
			fmtSeconds(s.AgeSeconds), fmtSeconds(s.UptimeSeconds),
			s.StoreKeys, fmt.Sprintf("%016x", s.Checksum)[:8], s.HotRumors,
			fmtQuantile(s.AntiEntropy, s.AntiEntropy.P50),
			fmtQuantile(s.AntiEntropy, s.AntiEntropy.P99),
			lastAE)
	}
	tw.Flush()
	for _, stall := range st.Stalls {
		site := fmt.Sprintf("site %d", stall.Site)
		if stall.Site == epidemic.StallClusterWide {
			site = "cluster"
		}
		fmt.Fprintf(w, "stall: %s %s — %s (%.1fs)\n",
			site, stall.Reason, stall.Detail, stall.AgeSeconds)
	}
}

// fmtSeconds renders an age or uptime: sub-two-minute values in seconds,
// longer ones as rounded durations ("3m20s", "2h0m0s").
func fmtSeconds(sec float64) string {
	if sec < 0 {
		sec = 0
	}
	if sec < 120 {
		return fmt.Sprintf("%.1fs", sec)
	}
	return time.Duration(sec * float64(time.Second)).Round(time.Second).String()
}

// fmtQuantile renders one latency quantile, "-" when the summary is empty.
func fmtQuantile(sm epidemic.ClusterLatencySummary, sec float64) string {
	if sm.Count == 0 {
		return "-"
	}
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.2fs", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.1fms", sec*1e3)
	default:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	}
}
