package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"epidemic"
)

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "-" {
		t.Errorf("empty = %q", got)
	}
	if got := sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("flat = %q", got)
	}
	got := sparkline([]float64{0, 1})
	if got != "▁█" {
		t.Errorf("ramp = %q", got)
	}
	// Monotone input maps to non-decreasing glyph levels.
	got = sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	runes := []rune(got)
	if len(runes) != 8 {
		t.Fatalf("len = %d", len(runes))
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("levels decreased at %d: %q", i, got)
		}
	}
}

// clusterServer serves a canned /cluster reply for one fake node.
func clusterServer(t *testing.T, st epidemic.ClusterStatusReply) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster" {
			http.NotFound(w, r)
			return
		}
		_ = json.NewEncoder(w).Encode(st)
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// TestRunTop federates two fake nodes — one with trends, one without and
// one unreachable — and checks the dashboard rows.
func TestRunTop(t *testing.T) {
	withTrends := epidemic.ClusterStatusReply{
		Site: 1, Status: "ok",
		Sites: []epidemic.ClusterSiteStatus{{
			Digest: epidemic.ClusterDigest{
				Site:        1,
				AntiEntropy: epidemic.ClusterLatencySummary{Count: 10, P50: 0.002, P99: 0.010},
			},
		}},
		Trends: &epidemic.ClusterTrends{
			WindowSeconds:      60,
			RumorRatePerSec:    42.5,
			ExchangeRatePerSec: 3.25,
			OutboxDepth:        7,
			OutboxSlopePerSec:  -0.5,
			ResidueTrajectory:  []float64{1, 0.5, 0},
			OutboxTrajectory:   []float64{0, 7},
		},
	}
	bare := epidemic.ClusterStatusReply{Site: 2, Status: "degraded",
		Stalls: []epidemic.ClusterStall{{Site: 3, Reason: "stale-digest", Detail: "no refresh", AgeSeconds: 9}}}

	opts := testOpts("127.0.0.1:1",
		clusterServer(t, withTrends)+","+clusterServer(t, bare)+",127.0.0.1:1")
	var sb strings.Builder
	if err := runTop(opts, &sb, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"3 node(s)",
		"RUMOR/S", "OUTBOX-TREND",
		"42.5", "3.2", "-0.5", "2.0ms", "10.0ms",
		sparkline([]float64{1, 0.5, 0}),
		"degraded",
		"unreachable",
		"stall", "stale-digest",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}

	// Every node down is an error, not an empty dashboard.
	dead := testOpts("127.0.0.1:1", "127.0.0.1:1")
	if err := runTop(dead, &sb, 1); err == nil {
		t.Error("all-dead fleet accepted")
	}
	none := testOpts("127.0.0.1:1", "")
	if err := runTop(none, &sb, 1); err == nil || !strings.Contains(err.Error(), "-admin") {
		t.Errorf("missing -admin: %v", err)
	}
}

// TestRunFlight covers the list table and the raw-dump fetch.
func TestRunFlight(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/flight" {
			http.NotFound(w, r)
			return
		}
		if name := r.URL.Query().Get("name"); name != "" {
			if name != "flight-1-0001-stale-digest.json" {
				http.Error(w, "unknown dump", http.StatusNotFound)
				return
			}
			fmt.Fprint(w, `{"reason":"stale-digest","sections":{}}`)
			return
		}
		_ = json.NewEncoder(w).Encode(struct {
			Dir   string                    `json:"dir"`
			Dumps []epidemic.FlightDumpMeta `json:"dumps"`
		}{"/tmp/flight", []epidemic.FlightDumpMeta{
			{Name: "flight-1-0001-stale-digest.json", Reason: "stale-digest", At: 1700000000000000000, Size: 321},
		}})
	}))
	defer srv.Close()
	opts := testOpts("127.0.0.1:1", strings.TrimPrefix(srv.URL, "http://"))

	out, err := run(opts, []string{"flight"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"/tmp/flight", "1 dump(s)", "NAME", "flight-1-0001-stale-digest.json", "stale-digest", "321"} {
		if !strings.Contains(out, want) {
			t.Errorf("flight list missing %q:\n%s", want, out)
		}
	}

	out, err = run(opts, []string{"flight", "flight-1-0001-stale-digest.json"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"reason":"stale-digest"`) {
		t.Errorf("raw dump = %q", out)
	}

	if _, err := run(opts, []string{"flight", "a", "b"}); err == nil {
		t.Error("flight with two args accepted")
	}
	if _, err := run(opts, []string{"flight", "nope.json"}); err == nil {
		t.Error("unknown dump accepted")
	}
}

// TestRunEventsKey checks -key splices the filter onto /events and
// composes with -since and [n].
func TestRunEventsKey(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/events" || r.URL.Query().Get("key") != "greeting" {
			http.Error(w, "missing key filter", http.StatusBadRequest)
			return
		}
		fmt.Fprintln(w, `{"events":[],"next":1}`)
	}))
	defer srv.Close()
	opts := testOpts("127.0.0.1:1", strings.TrimPrefix(srv.URL, "http://"))
	opts.key = "greeting"

	if _, err := run(opts, []string{"events"}); err != nil {
		t.Errorf("events -key: %v", err)
	}
	opts.since = 0
	if _, err := run(opts, []string{"events", "5"}); err != nil {
		t.Errorf("events -key -since n: %v", err)
	}
}
