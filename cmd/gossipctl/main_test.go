package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"epidemic"
)

func TestBuildCommand(t *testing.T) {
	tests := []struct {
		args    []string
		want    string
		wantErr bool
	}{
		{args: []string{"get", "k"}, want: "GET k"},
		{args: []string{"del", "k"}, want: "DEL k"},
		{args: []string{"set", "k", "a", "b"}, want: "SET k a b"},
		{args: []string{"keys"}, want: "KEYS"},
		{args: []string{"members"}, want: "MEMBERS"},
		{args: []string{"stats"}, want: "STATS"},
		{args: []string{"statsjson"}, want: "STATSJSON"},
		{args: []string{"hot"}, want: "HOT"},
		{args: []string{"snapshot"}, want: "SNAPSHOT"},
		{args: []string{"get"}, wantErr: true},
		{args: []string{"set", "k"}, wantErr: true},
		{args: []string{"keys", "extra"}, wantErr: true},
		{args: []string{"bogus"}, wantErr: true},
	}
	for _, tt := range tests {
		got, err := buildCommand(tt.args)
		if (err != nil) != tt.wantErr {
			t.Errorf("%v: err = %v, wantErr %v", tt.args, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("%v: got %q, want %q", tt.args, got, tt.want)
		}
	}
}

func TestBuildAdminPath(t *testing.T) {
	tests := []struct {
		args    []string
		want    string
		wantOK  bool
		wantErr bool
	}{
		{args: []string{"metrics"}, want: "/metrics", wantOK: true},
		{args: []string{"health"}, want: "/healthz", wantOK: true},
		{args: []string{"events"}, want: "/events", wantOK: true},
		{args: []string{"events", "10"}, want: "/events?n=10", wantOK: true},
		{args: []string{"history"}, want: "/metrics/history", wantOK: true},
		{args: []string{"history", "epidemic_peers"}, want: "/metrics/history?metric=epidemic_peers", wantOK: true},
		{args: []string{"history", "a", "b"}, wantOK: true, wantErr: true},
		{args: []string{"metrics", "extra"}, wantOK: true, wantErr: true},
		{args: []string{"events", "x"}, wantOK: true, wantErr: true},
		{args: []string{"events", "1", "2"}, wantOK: true, wantErr: true},
		{args: []string{"get", "k"}, wantOK: false},
		{args: []string{"stats"}, wantOK: false},
	}
	for _, tt := range tests {
		got, err, ok := buildAdminPath(tt.args)
		if ok != tt.wantOK {
			t.Errorf("%v: ok = %v, want %v", tt.args, ok, tt.wantOK)
			continue
		}
		if (err != nil) != tt.wantErr {
			t.Errorf("%v: err = %v, wantErr %v", tt.args, err, tt.wantErr)
			continue
		}
		if ok && err == nil && got != tt.want {
			t.Errorf("%v: path = %q, want %q", tt.args, got, tt.want)
		}
	}
}

// testOpts mirrors the flag defaults (since -1, one-second timeout).
func testOpts(addr, admin string) options {
	return options{addr: addr, admin: admin, timeout: time.Second, since: -1}
}

// fakeServer answers one line per connection with a canned response.
func fakeServer(t *testing.T, respond func(string) string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				line, err := bufio.NewReader(c).ReadString('\n')
				if err != nil {
					return
				}
				fmt.Fprintln(c, respond(strings.TrimSpace(line)))
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestRunRoundTrip(t *testing.T) {
	addr := fakeServer(t, func(cmd string) string {
		if cmd == "GET k" {
			return "VALUE hello"
		}
		return "ERR unexpected " + cmd
	})
	out, err := run(testOpts(addr, ""), []string{"get", "k"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "VALUE hello" {
		t.Errorf("out = %q", out)
	}
}

func TestRunServerError(t *testing.T) {
	addr := fakeServer(t, func(string) string { return "ERR boom" })
	if _, err := run(testOpts(addr, ""), []string{"keys"}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestRunUsageAndDialErrors(t *testing.T) {
	if _, err := run(testOpts("127.0.0.1:1", ""), nil); err == nil {
		t.Error("no args accepted")
	}
	if _, err := run(options{addr: "127.0.0.1:1", timeout: 200 * time.Millisecond, since: -1}, []string{"keys"}); err == nil {
		t.Error("dead address accepted")
	}
}

func TestRunAdminFetch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprintln(w, `{"status":"ok"}`)
		case "/events":
			if r.URL.Query().Get("n") != "3" {
				http.Error(w, "missing n", http.StatusBadRequest)
				return
			}
			fmt.Fprintln(w, `{"events":[]}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	admin := strings.TrimPrefix(srv.URL, "http://")

	out, err := run(testOpts("127.0.0.1:1", admin), []string{"health"})
	if err != nil {
		t.Fatal(err)
	}
	if out != `{"status":"ok"}` {
		t.Errorf("health = %q", out)
	}
	if _, err := run(testOpts("127.0.0.1:1", admin), []string{"events", "3"}); err != nil {
		t.Errorf("events 3: %v", err)
	}
	if _, err := run(testOpts("127.0.0.1:1", admin), []string{"metrics"}); err == nil {
		t.Error("404 not reported")
	}
	if _, err := run(testOpts("127.0.0.1:1", ""), []string{"metrics"}); err == nil || !strings.Contains(err.Error(), "-admin") {
		t.Errorf("missing -admin not reported: %v", err)
	}
}

// TestRunTrace federates TRACE dumps from two fake replicas and checks all
// three output formats plus the error paths.
func TestRunTrace(t *testing.T) {
	stamp := epidemic.Timestamp{Time: 100, Site: 1}
	dump1 := epidemic.TraceDump{Site: 1, Spans: []epidemic.TraceSpan{
		{Key: "k", Stamp: stamp, From: 1, To: 1, Mech: epidemic.MechOrigin, Hop: 0, At: 100},
	}}
	dump2 := epidemic.TraceDump{Site: 2, Spans: []epidemic.TraceSpan{
		{Key: "k", Stamp: stamp, From: 1, To: 2, Mech: epidemic.MechRumorPush, Hop: 1, At: 105},
	}}
	respond := func(d epidemic.TraceDump) func(string) string {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		return func(cmd string) string {
			if cmd == "TRACE k" {
				return string(b)
			}
			return "ERR unexpected " + cmd
		}
	}
	opts := testOpts(fakeServer(t, respond(dump1))+","+fakeServer(t, respond(dump2)), "")

	out, err := run(opts, []string{"trace", "k"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"site 1", "origin", "└─ site 2", "rumor-push", "hop 1", "residue 0.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}

	opts.output = "dot"
	out, err = run(opts, []string{"trace", "k"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "s1 -> s2") {
		t.Errorf("dot output:\n%s", out)
	}

	opts.output = "json"
	out, err = run(opts, []string{"trace", "k"})
	if err != nil {
		t.Fatal(err)
	}
	var reply struct {
		Tree    *epidemic.InfectionTree `json:"tree"`
		Summary epidemic.TraceSummary   `json:"summary"`
	}
	if err := json.Unmarshal([]byte(out), &reply); err != nil {
		t.Fatalf("json output: %v\n%s", err, out)
	}
	if reply.Summary.Sites != 2 || reply.Summary.ClusterSize != 2 || reply.Summary.Residue != 0 {
		t.Errorf("summary = %+v", reply.Summary)
	}
	if reply.Tree == nil || reply.Tree.Root == nil || reply.Tree.Root.Site != 1 {
		t.Errorf("tree = %+v", reply.Tree)
	}

	opts.output = "bogus"
	if _, err := run(opts, []string{"trace", "k"}); err == nil {
		t.Error("bogus output format accepted")
	}
	opts.output = "tree"
	if _, err := run(opts, []string{"trace"}); err == nil {
		t.Error("trace without key accepted")
	}
	if _, err := run(opts, []string{"trace", "other"}); err == nil {
		t.Error("key without spans accepted")
	}

	// A replica with tracing off fails the federation loudly.
	disabled := testOpts(fakeServer(t, func(string) string {
		return "ERR tracing disabled (start gossipd with -trace-ring)"
	}), "")
	if _, err := run(disabled, []string{"trace", "k"}); err == nil || !strings.Contains(err.Error(), "tracing disabled") {
		t.Errorf("disabled replica: %v", err)
	}
}

// TestRunEventsSince checks -since splices the cursor onto /events (and
// only /events).
func TestRunEventsSince(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if since := r.URL.Query().Get("since"); r.URL.Path == "/events" {
			if since != "7" {
				http.Error(w, "missing since", http.StatusBadRequest)
				return
			}
		} else if since != "" {
			http.Error(w, "since leaked onto "+r.URL.Path, http.StatusBadRequest)
			return
		}
		fmt.Fprintln(w, `{"events":[],"next":8}`)
	}))
	defer srv.Close()
	opts := testOpts("127.0.0.1:1", strings.TrimPrefix(srv.URL, "http://"))
	opts.since = 7

	if out, err := run(opts, []string{"events"}); err != nil || !strings.Contains(out, `"next":8`) {
		t.Errorf("events: %q, %v", out, err)
	}
	// ?n= and &since= compose.
	if _, err := run(opts, []string{"events", "2"}); err != nil {
		t.Errorf("events 2: %v", err)
	}
	if _, err := run(opts, []string{"health"}); err != nil {
		t.Errorf("health: %v", err)
	}
}
