package main

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestBuildCommand(t *testing.T) {
	tests := []struct {
		args    []string
		want    string
		wantErr bool
	}{
		{args: []string{"get", "k"}, want: "GET k"},
		{args: []string{"del", "k"}, want: "DEL k"},
		{args: []string{"set", "k", "a", "b"}, want: "SET k a b"},
		{args: []string{"keys"}, want: "KEYS"},
		{args: []string{"members"}, want: "MEMBERS"},
		{args: []string{"stats"}, want: "STATS"},
		{args: []string{"statsjson"}, want: "STATSJSON"},
		{args: []string{"hot"}, want: "HOT"},
		{args: []string{"snapshot"}, want: "SNAPSHOT"},
		{args: []string{"get"}, wantErr: true},
		{args: []string{"set", "k"}, wantErr: true},
		{args: []string{"keys", "extra"}, wantErr: true},
		{args: []string{"bogus"}, wantErr: true},
	}
	for _, tt := range tests {
		got, err := buildCommand(tt.args)
		if (err != nil) != tt.wantErr {
			t.Errorf("%v: err = %v, wantErr %v", tt.args, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("%v: got %q, want %q", tt.args, got, tt.want)
		}
	}
}

func TestBuildAdminPath(t *testing.T) {
	tests := []struct {
		args    []string
		want    string
		wantOK  bool
		wantErr bool
	}{
		{args: []string{"metrics"}, want: "/metrics", wantOK: true},
		{args: []string{"health"}, want: "/healthz", wantOK: true},
		{args: []string{"events"}, want: "/events", wantOK: true},
		{args: []string{"events", "10"}, want: "/events?n=10", wantOK: true},
		{args: []string{"metrics", "extra"}, wantOK: true, wantErr: true},
		{args: []string{"events", "x"}, wantOK: true, wantErr: true},
		{args: []string{"events", "1", "2"}, wantOK: true, wantErr: true},
		{args: []string{"get", "k"}, wantOK: false},
		{args: []string{"stats"}, wantOK: false},
	}
	for _, tt := range tests {
		got, err, ok := buildAdminPath(tt.args)
		if ok != tt.wantOK {
			t.Errorf("%v: ok = %v, want %v", tt.args, ok, tt.wantOK)
			continue
		}
		if (err != nil) != tt.wantErr {
			t.Errorf("%v: err = %v, wantErr %v", tt.args, err, tt.wantErr)
			continue
		}
		if ok && err == nil && got != tt.want {
			t.Errorf("%v: path = %q, want %q", tt.args, got, tt.want)
		}
	}
}

// fakeServer answers one line per connection with a canned response.
func fakeServer(t *testing.T, respond func(string) string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				line, err := bufio.NewReader(c).ReadString('\n')
				if err != nil {
					return
				}
				fmt.Fprintln(c, respond(strings.TrimSpace(line)))
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestRunRoundTrip(t *testing.T) {
	addr := fakeServer(t, func(cmd string) string {
		if cmd == "GET k" {
			return "VALUE hello"
		}
		return "ERR unexpected " + cmd
	})
	out, err := run(addr, "", time.Second, []string{"get", "k"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "VALUE hello" {
		t.Errorf("out = %q", out)
	}
}

func TestRunServerError(t *testing.T) {
	addr := fakeServer(t, func(string) string { return "ERR boom" })
	if _, err := run(addr, "", time.Second, []string{"keys"}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestRunUsageAndDialErrors(t *testing.T) {
	if _, err := run("127.0.0.1:1", "", time.Second, nil); err == nil {
		t.Error("no args accepted")
	}
	if _, err := run("127.0.0.1:1", "", 200*time.Millisecond, []string{"keys"}); err == nil {
		t.Error("dead address accepted")
	}
}

func TestRunAdminFetch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprintln(w, `{"status":"ok"}`)
		case "/events":
			if r.URL.Query().Get("n") != "3" {
				http.Error(w, "missing n", http.StatusBadRequest)
				return
			}
			fmt.Fprintln(w, `{"events":[]}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	admin := strings.TrimPrefix(srv.URL, "http://")

	out, err := run("127.0.0.1:1", admin, time.Second, []string{"health"})
	if err != nil {
		t.Fatal(err)
	}
	if out != `{"status":"ok"}` {
		t.Errorf("health = %q", out)
	}
	if _, err := run("127.0.0.1:1", admin, time.Second, []string{"events", "3"}); err != nil {
		t.Errorf("events 3: %v", err)
	}
	if _, err := run("127.0.0.1:1", admin, time.Second, []string{"metrics"}); err == nil {
		t.Error("404 not reported")
	}
	if _, err := run("127.0.0.1:1", "", time.Second, []string{"metrics"}); err == nil || !strings.Contains(err.Error(), "-admin") {
		t.Errorf("missing -admin not reported: %v", err)
	}
}
