// Command gossipctl is the client for gossipd's line protocol.
//
// Usage:
//
//	gossipctl -addr host:8001 get <key>
//	gossipctl -addr host:8001 set <key> <value...>
//	gossipctl -addr host:8001 del <key>
//	gossipctl -addr host:8001 keys | members | stats | hot | snapshot
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8001", "gossipd client address")
		timeout = flag.Duration("timeout", 5*time.Second, "request timeout")
	)
	flag.Parse()
	out, err := run(*addr, *timeout, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gossipctl:", err)
		os.Exit(1)
	}
	fmt.Println(out)
}

func run(addr string, timeout time.Duration, args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("usage: gossipctl [-addr host:port] <get|set|del|keys|members|stats|hot|snapshot> [args...]")
	}
	cmd, err := buildCommand(args)
	if err != nil {
		return "", err
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		return "", fmt.Errorf("send: %w", err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("receive: %w", err)
	}
	resp := strings.TrimSpace(line)
	if strings.HasPrefix(resp, "ERR ") {
		return "", fmt.Errorf("%s", strings.TrimPrefix(resp, "ERR "))
	}
	return resp, nil
}

// buildCommand maps CLI verbs onto the wire protocol, validating arity.
func buildCommand(args []string) (string, error) {
	verb := strings.ToLower(args[0])
	rest := args[1:]
	switch verb {
	case "get", "del":
		if len(rest) != 1 {
			return "", fmt.Errorf("usage: %s <key>", verb)
		}
		return strings.ToUpper(verb) + " " + rest[0], nil
	case "set":
		if len(rest) < 2 {
			return "", fmt.Errorf("usage: set <key> <value...>")
		}
		return "SET " + rest[0] + " " + strings.Join(rest[1:], " "), nil
	case "keys", "members", "stats", "hot", "snapshot":
		if len(rest) != 0 {
			return "", fmt.Errorf("usage: %s", verb)
		}
		return strings.ToUpper(verb), nil
	default:
		return "", fmt.Errorf("unknown command %q", verb)
	}
}
