// Command gossipctl is the client for gossipd's line protocol and admin
// endpoint.
//
// Usage:
//
//	gossipctl -addr host:8001 get <key>
//	gossipctl -addr host:8001 set <key> <value...>
//	gossipctl -addr host:8001 del <key>
//	gossipctl -addr host:8001 keys | members | stats | statsjson | wire | hot | snapshot
//	gossipctl -addr host1:8001,host2:8001,host3:8001 [-o tree|json|dot] trace <key>
//	gossipctl -admin host:9001 metrics | health | status
//	gossipctl -admin host:9001 [-interval 2s] watch
//	gossipctl -admin host1:9001,host2:9001 [-interval 2s] top
//	gossipctl -admin host:9001 [-since cursor] [-key k] events [n]
//	gossipctl -admin host:9001 history [metric]
//	gossipctl -admin host:9001 flight [name]
//
// Line-protocol verbs talk to the daemon's -client port; metrics, health,
// status, watch, top, events, history and flight fetch from its -admin
// HTTP endpoint. The
// status verb renders any one replica's gossip-borne view of the whole
// cluster (/cluster) as a table — per-site digest age, uptime, store
// size, checksum, hot-rumor count, anti-entropy latency quantiles and
// last-anti-entropy time — followed by the convergence stalls that
// replica detects (stale sites, stuck residue, persistent checksum
// disagreement). watch redraws the same table every -interval until
// interrupted. top federates /cluster from a comma-separated -admin list
// into a live per-node dashboard: windowed rumor and exchange rates,
// outbox depth and slope, anti-entropy latency quantiles, and sparkline
// trends of residue and outbox depth from each node's retained telemetry
// history (gossipd -history-step), redrawn every -interval. history
// lists the retained metric time series, or one series' windowed points
// with a metric name (/metrics/history). flight lists the daemon's
// anomaly flight dumps (gossipd -flight-dir), or prints one raw dump by
// name. events takes -key to filter records server-side to one key.
// The wire verb returns the
// daemon's client-side wire snapshot as one JSON object: connection-pool
// counters (dials, redials, reuses, open_conns), framed traffic totals,
// per-codec session and message counts from the binary/gob negotiation
// (sessions_binary, sessions_gob, msgs_binary, msgs_gob), and the UDP
// rumor fast path's pushes/retries/fallbacks/oversize and byte counters
// (udp_*). The trace verb accepts a
// comma-separated -addr list: it federates every replica's hop spans for
// the key (gossipd must run with -trace-ring), reconstructs the infection
// tree, and prints it with the paper's convergence observables — t_last,
// t_avg, residue, the hop histogram and the per-mechanism infection counts
// (-o json for machine-readable output, -o dot for Graphviz). For events,
// -since resumes from a cursor returned in a previous reply's "next" field
// so repeated polls only see new records.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"epidemic"
)

// options carries the parsed flags into run.
type options struct {
	// addr is the gossipd client address — a comma-separated list for the
	// trace verb, which federates spans from every replica named.
	addr string
	// admin is the gossipd admin HTTP address (metrics, health, events).
	admin   string
	timeout time.Duration
	// output selects the trace rendering: tree (default), json or dot.
	output string
	// since, when >= 0, is the events cursor to resume from (the "next"
	// field of a previous events reply).
	since int64
	// key, when non-empty, filters the events verb server-side to records
	// touching that key.
	key string
	// interval is the watch and top verbs' refresh period.
	interval time.Duration
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", "127.0.0.1:8001", "gossipd client address (comma-separated list for trace)")
	flag.StringVar(&opts.admin, "admin", "", "gossipd admin HTTP address (for metrics, health, events)")
	flag.DurationVar(&opts.timeout, "timeout", 5*time.Second, "request timeout")
	flag.StringVar(&opts.output, "o", "tree", "trace output format: tree, json or dot")
	flag.Int64Var(&opts.since, "since", -1, "events cursor to resume from (-1 = everything retained)")
	flag.StringVar(&opts.key, "key", "", "filter events to records touching this key")
	flag.DurationVar(&opts.interval, "interval", 2*time.Second, "watch/top refresh period")
	flag.Parse()
	args := flag.Args()
	if len(args) == 1 {
		// watch and top own the terminal until interrupted; they never
		// return output.
		switch strings.ToLower(args[0]) {
		case "watch":
			if err := runWatch(opts, os.Stdout, 0); err != nil {
				fmt.Fprintln(os.Stderr, "gossipctl:", err)
				os.Exit(1)
			}
			return
		case "top":
			if err := runTop(opts, os.Stdout, 0); err != nil {
				fmt.Fprintln(os.Stderr, "gossipctl:", err)
				os.Exit(1)
			}
			return
		}
	}
	out, err := run(opts, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gossipctl:", err)
		os.Exit(1)
	}
	fmt.Println(out)
}

func run(opts options, args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("usage: gossipctl [-addr host:port] [-admin host:port] <get|set|del|keys|members|stats|statsjson|wire|hot|snapshot|trace|metrics|health|events|history|status|watch|top|flight> [args...]")
	}
	switch strings.ToLower(args[0]) {
	case "trace":
		return runTrace(opts, args[1:])
	case "status":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: status")
		}
		return runStatus(opts)
	case "watch":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: watch")
		}
		return "", runWatch(opts, os.Stdout, 0)
	case "top":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: top")
		}
		return "", runTop(opts, os.Stdout, 0)
	case "flight":
		return runFlight(opts, args[1:])
	}
	if path, err, ok := buildAdminPath(args); ok {
		if err != nil {
			return "", err
		}
		if strings.HasPrefix(path, "/events") {
			appendParam := func(param string) {
				sep := "?"
				if strings.Contains(path, "?") {
					sep = "&"
				}
				path += sep + param
			}
			if opts.since >= 0 {
				appendParam("since=" + strconv.FormatInt(opts.since, 10))
			}
			if opts.key != "" {
				appendParam("key=" + url.QueryEscape(opts.key))
			}
		}
		return fetchAdmin(opts.admin, path, opts.timeout)
	}
	cmd, err := buildCommand(args)
	if err != nil {
		return "", err
	}
	return sendLine(opts.addr, cmd, opts.timeout)
}

// sendLine performs one line-protocol round trip: one command, one reply.
func sendLine(addr, cmd string, timeout time.Duration) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		return "", fmt.Errorf("send: %w", err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("receive: %w", err)
	}
	resp := strings.TrimSpace(line)
	if strings.HasPrefix(resp, "ERR ") {
		return "", fmt.Errorf("%s", strings.TrimPrefix(resp, "ERR "))
	}
	return resp, nil
}

// runTrace federates TRACE dumps from every -addr replica, assembles the
// infection tree, and renders it in the selected output format. Residue is
// measured against the number of replicas queried.
func runTrace(opts options, rest []string) (string, error) {
	if len(rest) != 1 {
		return "", fmt.Errorf("usage: trace <key>")
	}
	key := rest[0]
	addrs := strings.Split(opts.addr, ",")
	var spans []epidemic.TraceSpan
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		line, err := sendLine(a, "TRACE "+key, opts.timeout)
		if err != nil {
			return "", fmt.Errorf("%s: %w", a, err)
		}
		var dump epidemic.TraceDump
		if err := json.Unmarshal([]byte(line), &dump); err != nil {
			return "", fmt.Errorf("%s: bad TRACE reply %q: %w", a, line, err)
		}
		spans = append(spans, dump.Spans...)
	}
	tree := epidemic.AssembleTrace(key, spans)
	if tree == nil {
		return "", fmt.Errorf("no spans for %q at %d replica(s); is gossipd running with -trace-ring?", key, len(addrs))
	}

	// Stamps are wall-clock nanoseconds on live daemons.
	const spu = 1e-9
	summary := tree.Summarize(len(addrs), spu)
	var sb strings.Builder
	switch opts.output {
	case "", "tree":
		tree.Render(&sb, spu)
		fmt.Fprintf(&sb, "t_last %.3fs  t_avg %.3fs  residue %.2f (%d/%d sites)\n",
			summary.TLastSeconds, summary.TAvgSeconds, summary.Residue,
			summary.Sites, summary.ClusterSize)
		fmt.Fprintf(&sb, "hops %v  mechanisms %v\n", summary.Hops, summary.Mechanisms)
	case "json":
		b, err := json.Marshal(struct {
			Tree    *epidemic.InfectionTree `json:"tree"`
			Summary epidemic.TraceSummary   `json:"summary"`
		}{tree, summary})
		if err != nil {
			return "", err
		}
		sb.Write(b)
	case "dot":
		tree.DOT(&sb)
	default:
		return "", fmt.Errorf("unknown output %q (want tree, json or dot)", opts.output)
	}
	return strings.TrimRight(sb.String(), "\n"), nil
}

// buildCommand maps CLI verbs onto the wire protocol, validating arity.
func buildCommand(args []string) (string, error) {
	verb := strings.ToLower(args[0])
	rest := args[1:]
	switch verb {
	case "get", "del":
		if len(rest) != 1 {
			return "", fmt.Errorf("usage: %s <key>", verb)
		}
		return strings.ToUpper(verb) + " " + rest[0], nil
	case "set":
		if len(rest) < 2 {
			return "", fmt.Errorf("usage: set <key> <value...>")
		}
		return "SET " + rest[0] + " " + strings.Join(rest[1:], " "), nil
	case "keys", "members", "stats", "statsjson", "hot", "snapshot", "wire":
		if len(rest) != 0 {
			return "", fmt.Errorf("usage: %s", verb)
		}
		return strings.ToUpper(verb), nil
	default:
		return "", fmt.Errorf("unknown command %q", verb)
	}
}

// buildAdminPath maps the admin-endpoint verbs onto URL paths. ok is false
// when the verb belongs to the line protocol instead.
func buildAdminPath(args []string) (path string, err error, ok bool) {
	verb := strings.ToLower(args[0])
	rest := args[1:]
	switch verb {
	case "metrics":
		if len(rest) != 0 {
			return "", fmt.Errorf("usage: metrics"), true
		}
		return "/metrics", nil, true
	case "health":
		if len(rest) != 0 {
			return "", fmt.Errorf("usage: health"), true
		}
		return "/healthz", nil, true
	case "events":
		switch len(rest) {
		case 0:
			return "/events", nil, true
		case 1:
			n, err := strconv.Atoi(rest[0])
			if err != nil || n < 0 {
				return "", fmt.Errorf("usage: events [n]"), true
			}
			return "/events?n=" + url.QueryEscape(rest[0]), nil, true
		default:
			return "", fmt.Errorf("usage: events [n]"), true
		}
	case "history":
		switch len(rest) {
		case 0:
			return "/metrics/history", nil, true
		case 1:
			return "/metrics/history?metric=" + url.QueryEscape(rest[0]), nil, true
		default:
			return "", fmt.Errorf("usage: history [metric]"), true
		}
	default:
		return "", nil, false
	}
}

// fetchAdmin performs one GET against the daemon's admin endpoint.
func fetchAdmin(admin, path string, timeout time.Duration) (string, error) {
	if admin == "" {
		return "", fmt.Errorf("this command reads the admin endpoint; set -admin host:port (gossipd -admin)")
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + admin + path)
	if err != nil {
		return "", fmt.Errorf("admin fetch %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("admin read %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("admin %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return strings.TrimRight(string(body), "\n"), nil
}
