// Command gossipctl is the client for gossipd's line protocol and admin
// endpoint.
//
// Usage:
//
//	gossipctl -addr host:8001 get <key>
//	gossipctl -addr host:8001 set <key> <value...>
//	gossipctl -addr host:8001 del <key>
//	gossipctl -addr host:8001 keys | members | stats | statsjson | wire | hot | snapshot
//	gossipctl -admin host:9001 metrics | health
//	gossipctl -admin host:9001 events [n]
//
// Line-protocol verbs talk to the daemon's -client port; metrics, health
// and events fetch from its -admin HTTP endpoint.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8001", "gossipd client address")
		admin   = flag.String("admin", "", "gossipd admin HTTP address (for metrics, health, events)")
		timeout = flag.Duration("timeout", 5*time.Second, "request timeout")
	)
	flag.Parse()
	out, err := run(*addr, *admin, *timeout, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gossipctl:", err)
		os.Exit(1)
	}
	fmt.Println(out)
}

func run(addr, admin string, timeout time.Duration, args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("usage: gossipctl [-addr host:port] [-admin host:port] <get|set|del|keys|members|stats|statsjson|wire|hot|snapshot|metrics|health|events> [args...]")
	}
	if path, err, ok := buildAdminPath(args); ok {
		if err != nil {
			return "", err
		}
		return fetchAdmin(admin, path, timeout)
	}
	cmd, err := buildCommand(args)
	if err != nil {
		return "", err
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		return "", fmt.Errorf("send: %w", err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("receive: %w", err)
	}
	resp := strings.TrimSpace(line)
	if strings.HasPrefix(resp, "ERR ") {
		return "", fmt.Errorf("%s", strings.TrimPrefix(resp, "ERR "))
	}
	return resp, nil
}

// buildCommand maps CLI verbs onto the wire protocol, validating arity.
func buildCommand(args []string) (string, error) {
	verb := strings.ToLower(args[0])
	rest := args[1:]
	switch verb {
	case "get", "del":
		if len(rest) != 1 {
			return "", fmt.Errorf("usage: %s <key>", verb)
		}
		return strings.ToUpper(verb) + " " + rest[0], nil
	case "set":
		if len(rest) < 2 {
			return "", fmt.Errorf("usage: set <key> <value...>")
		}
		return "SET " + rest[0] + " " + strings.Join(rest[1:], " "), nil
	case "keys", "members", "stats", "statsjson", "hot", "snapshot", "wire":
		if len(rest) != 0 {
			return "", fmt.Errorf("usage: %s", verb)
		}
		return strings.ToUpper(verb), nil
	default:
		return "", fmt.Errorf("unknown command %q", verb)
	}
}

// buildAdminPath maps the admin-endpoint verbs onto URL paths. ok is false
// when the verb belongs to the line protocol instead.
func buildAdminPath(args []string) (path string, err error, ok bool) {
	verb := strings.ToLower(args[0])
	rest := args[1:]
	switch verb {
	case "metrics":
		if len(rest) != 0 {
			return "", fmt.Errorf("usage: metrics"), true
		}
		return "/metrics", nil, true
	case "health":
		if len(rest) != 0 {
			return "", fmt.Errorf("usage: health"), true
		}
		return "/healthz", nil, true
	case "events":
		switch len(rest) {
		case 0:
			return "/events", nil, true
		case 1:
			n, err := strconv.Atoi(rest[0])
			if err != nil || n < 0 {
				return "", fmt.Errorf("usage: events [n]"), true
			}
			return "/events?n=" + url.QueryEscape(rest[0]), nil, true
		default:
			return "", fmt.Errorf("usage: events [n]"), true
		}
	default:
		return "", nil, false
	}
}

// fetchAdmin performs one GET against the daemon's admin endpoint.
func fetchAdmin(admin, path string, timeout time.Duration) (string, error) {
	if admin == "" {
		return "", fmt.Errorf("this command reads the admin endpoint; set -admin host:port (gossipd -admin)")
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + admin + path)
	if err != nil {
		return "", fmt.Errorf("admin fetch %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("admin read %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("admin %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return strings.TrimRight(string(body), "\n"), nil
}
