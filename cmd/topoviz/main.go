// Command topoviz renders the repository's network topologies as Graphviz
// DOT, for inspection and documentation:
//
//	topoviz -topo cin | dot -Tsvg > cin.svg
//	topoviz -topo pairfan -m 12 -far 4
//	topoviz -topo tree -depth 4
//	topoviz -topo line -n 20
//	topoviz -topo mesh -n 6
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"epidemic/internal/topology"
)

func main() {
	var (
		topo  = flag.String("topo", "cin", "topology: cin, line, ring, mesh, pairfan, tree")
		n     = flag.Int("n", 12, "sites (line, ring) or mesh side length")
		m     = flag.Int("m", 12, "fan size for pairfan")
		far   = flag.Int("far", 3, "fan distance for pairfan")
		depth = flag.Int("depth", 4, "tree depth")
	)
	flag.Parse()
	if err := run(os.Stdout, *topo, *n, *m, *far, *depth); err != nil {
		fmt.Fprintln(os.Stderr, "topoviz:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, topo string, n, m, far, depth int) error {
	var (
		nw  *topology.Network
		err error
	)
	switch topo {
	case "cin":
		var cin *topology.CIN
		cin, err = topology.NewCIN()
		if err == nil {
			nw = cin.Network
		}
	case "line":
		nw, err = topology.Line(n)
	case "ring":
		nw, err = topology.Ring(n)
	case "mesh":
		nw, err = topology.Mesh(n, n)
	case "pairfan":
		nw, err = topology.PairFan(m, far)
	case "tree":
		nw, err = topology.TreeWithSatellite(depth)
	default:
		return fmt.Errorf("unknown topology %q", topo)
	}
	if err != nil {
		return err
	}
	return nw.WriteDOT(w, topo)
}
