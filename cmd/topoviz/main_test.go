package main

import (
	"strings"
	"testing"
)

func TestRunAllTopologies(t *testing.T) {
	for _, topo := range []string{"cin", "line", "ring", "mesh", "pairfan", "tree"} {
		var b strings.Builder
		if err := run(&b, topo, 6, 5, 2, 3); err != nil {
			t.Errorf("%s: %v", topo, err)
			continue
		}
		if !strings.Contains(b.String(), "graph") {
			t.Errorf("%s: no DOT output", topo)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "bogus", 6, 5, 2, 3); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run(&b, "line", 0, 0, 0, 0); err == nil {
		t.Error("invalid size accepted")
	}
}
