package epidemic_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// runs the corresponding experiment at paper scale and reports the paper's
// metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every published number alongside wall-clock cost.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"epidemic"
	"epidemic/internal/core"
	"epidemic/internal/experiments"
	"epidemic/internal/obs/trace"
	"epidemic/internal/spatial"
	"epidemic/internal/store"
	"epidemic/internal/topology"
)

// reportRumorRows attaches a table's first and last rows as metrics.
func reportRumorRows(b *testing.B, rows []experiments.RumorRow) {
	b.Helper()
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(first.Residue, "residue_kmin")
	b.ReportMetric(first.Traffic, "traffic_kmin")
	b.ReportMetric(last.Residue, "residue_kmax")
	b.ReportMetric(last.Traffic, "traffic_kmax")
	b.ReportMetric(last.TLast, "tlast_kmax")
}

// BenchmarkTable1 regenerates Table 1: push rumor mongering with feedback
// and counters, n=1000, k=1..5.
func BenchmarkTable1(b *testing.B) {
	var rows []experiments.RumorRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1(1000, 25, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRumorRows(b, rows)
}

// BenchmarkTable2 regenerates Table 2: blind+coin push rumor mongering.
func BenchmarkTable2(b *testing.B) {
	var rows []experiments.RumorRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(1000, 25, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRumorRows(b, rows)
}

// BenchmarkTable3 regenerates Table 3: pull with feedback and counters.
func BenchmarkTable3(b *testing.B) {
	var rows []experiments.RumorRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3(1000, 25, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRumorRows(b, rows)
}

func reportCINRows(b *testing.B, rows []experiments.CINRow) {
	b.Helper()
	uniform, tightest := rows[0], rows[len(rows)-1]
	b.ReportMetric(uniform.TLast, "tlast_uniform")
	b.ReportMetric(uniform.CompareAvg, "cmpavg_uniform")
	b.ReportMetric(uniform.CompareBushey, "bushey_uniform")
	b.ReportMetric(tightest.TLast, "tlast_a2")
	b.ReportMetric(tightest.CompareAvg, "cmpavg_a2")
	b.ReportMetric(tightest.CompareBushey, "bushey_a2")
}

// BenchmarkTable4 regenerates Table 4: anti-entropy with spatial
// distributions on the synthetic CIN, no connection limit.
func BenchmarkTable4(b *testing.B) {
	var rows []experiments.CINRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table4(25, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCINRows(b, rows)
}

// BenchmarkTable5 regenerates Table 5: connection limit 1, hunt limit 0.
func BenchmarkTable5(b *testing.B) {
	var rows []experiments.CINRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table5(25, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCINRows(b, rows)
}

// BenchmarkFigure1 regenerates the Figure 1 pathological topology: push
// rumors between a close pair with a distant fan can die before escaping.
func BenchmarkFigure1(b *testing.B) {
	var rows []experiments.FigureRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure1(20, 3, 100, []int{1, 2, 4}, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FailureRate, "pfail_k1")
	b.ReportMetric(rows[len(rows)-1].FailureRate, "pfail_k4")
}

// BenchmarkFigure2 regenerates the Figure 2 scenario: a satellite site
// beyond a binary tree misses push rumors at small k.
func BenchmarkFigure2(b *testing.B) {
	var rows []experiments.FigureRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure2(7, 100, []int{1, 2, 4}, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FailureRate, "pfail_k1")
	b.ReportMetric(rows[len(rows)-1].FailureRate, "pfail_k4")
}

// BenchmarkPushPullConvergence regenerates §1.3's residual recurrences.
func BenchmarkPushPullConvergence(b *testing.B) {
	var rows []experiments.ConvergenceRow
	for i := 0; i < b.N; i++ {
		rows = experiments.PushPullConvergence(1000, 0.1, 10, 10, int64(i)+1)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.PushSim, "push_p10")
	b.ReportMetric(last.PullSim, "pull_p10")
}

// BenchmarkResidueTrafficLaw regenerates §1.4's s=e^{-m} law sweep.
func BenchmarkResidueTrafficLaw(b *testing.B) {
	var rows []experiments.LawRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ResidueTrafficLaw(1000, 20, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Lambda, "lambda_first")
}

// BenchmarkConnectionLimit regenerates §1.4's connection-limit and hunting
// effects.
func BenchmarkConnectionLimit(b *testing.B) {
	var rows []experiments.LawRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ConnectionLimitLaw(1000, 20, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Residue, "residue_first")
}

// BenchmarkMinimization regenerates §1.4's counter-minimization ablation.
func BenchmarkMinimization(b *testing.B) {
	var rows []experiments.LawRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.MinimizationComparison(1000, 20, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Residue, "residue_min_kmax")
}

// BenchmarkLineScaling regenerates §3's T(n) traffic table on a line.
func BenchmarkLineScaling(b *testing.B) {
	var rows []experiments.LineScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.LineScaling([]int{100, 200, 400}, []float64{0, 1, 2, 3}, 5, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TrafficPerLink, "traffic_n100_a0")
	b.ReportMetric(rows[len(rows)-1].TrafficPerLink, "traffic_n400_a3")
}

// BenchmarkDeathCertificates regenerates §2's deletion scenarios.
func BenchmarkDeathCertificates(b *testing.B) {
	var rows []experiments.DeathCertRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.DeathCertificates(10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].ResurrectedReplicas), "resurrected_expired")
	b.ReportMetric(float64(rows[2].ResurrectedReplicas), "resurrected_dormant")
}

// BenchmarkBackupAntiEntropy regenerates §1.5's backup experiment.
func BenchmarkBackupAntiEntropy(b *testing.B) {
	var row experiments.BackupRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.BackupAntiEntropy(24, 10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.RumorFailures)/float64(row.Trials), "rumor_fail_rate")
	b.ReportMetric(float64(row.AfterBackupFailures), "after_backup_failures")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationRumorVariants sweeps the counter/coin × feedback/blind
// matrix at fixed k.
func BenchmarkAblationRumorVariants(b *testing.B) {
	variants := map[string]epidemic.RumorConfig{
		"feedback-counter": {K: 3, Counter: true, Feedback: true, Mode: epidemic.Push},
		"feedback-coin":    {K: 3, Feedback: true, Mode: epidemic.Push},
		"blind-counter":    {K: 3, Counter: true, Mode: epidemic.Push},
		"blind-coin":       {K: 3, Mode: epidemic.Push},
	}
	for name, cfg := range variants {
		b.Run(name, func(b *testing.B) {
			sel, err := epidemic.NewUniformSelector(1000)
			if err != nil {
				b.Fatal(err)
			}
			var res epidemic.SpreadResult
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				var err error
				res, err = epidemic.SpreadRumor(cfg, sel, rng.Intn(1000), rng)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Residue, "residue")
			b.ReportMetric(res.Traffic, "traffic")
		})
	}
}

// BenchmarkAblationSpatialForms compares Q-based, paper-equation, and
// direct d^{-a} weighting on a mesh.
func BenchmarkAblationSpatialForms(b *testing.B) {
	nw, err := topology.Mesh(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	for name, form := range map[string]spatial.Form{
		"d^-a":    spatial.FormDistance,
		"Q^-a":    spatial.FormQ,
		"eq3.1.1": spatial.FormPaper,
		"1/(dQ)":  spatial.FormDQ,
	} {
		b.Run(name, func(b *testing.B) {
			sel, err := spatial.New(nw, form, 2)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			var res core.SpreadResult
			for i := 0; i < b.N; i++ {
				res, err = core.SpreadAntiEntropy(core.AntiEntropyConfig{Mode: core.PushPull}, sel,
					rng.Intn(256), rng, core.WithLinkAccounting(nw))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.TLast), "tlast")
			b.ReportMetric(res.CompareLoad.Max(), "max_link_load")
		})
	}
}

// BenchmarkAblationAntiEntropyCompare measures the database-level compare
// strategies on nearly in-sync replicas — the case §1.3's checksums and
// peel-back exist for.
func BenchmarkAblationAntiEntropyCompare(b *testing.B) {
	strategies := map[string]epidemic.CompareStrategy{
		"full":     epidemic.CompareFull,
		"checksum": epidemic.CompareChecksum,
		"recent":   epidemic.CompareRecent,
		"peelback": epidemic.ComparePeelBack,
	}
	for name, strat := range strategies {
		b.Run(name, func(b *testing.B) {
			src := epidemic.NewSimulatedClock(1)
			s1 := epidemic.NewStore(1, src.ClockAt(1))
			s2 := epidemic.NewStore(2, src.ClockAt(2))
			for i := 0; i < 500; i++ {
				e := s1.Update(randKey(i), epidemic.Value("v"))
				s2.Apply(e)
				src.Advance(1)
			}
			cfg := epidemic.ResolveConfig{Mode: epidemic.PushPull, Strategy: strat, Tau: 10}
			b.ResetTimer()
			var sent int
			for i := 0; i < b.N; i++ {
				// One fresh divergence per iteration, then resolve.
				s1.Update(randKey(10_000+i), epidemic.Value("new"))
				st, err := epidemic.ResolveDifference(cfg, s1, s2)
				if err != nil {
					b.Fatal(err)
				}
				sent += st.Transferred()
				src.Advance(1)
			}
			b.ReportMetric(float64(sent)/float64(b.N), "entries_sent/op")
		})
	}
}

func randKey(i int) string {
	const letters = "abcdefghij"
	buf := make([]byte, 0, 8)
	for i > 0 || len(buf) == 0 {
		buf = append(buf, letters[i%10])
		i /= 10
	}
	return string(buf)
}

// BenchmarkSpreadRumorOp measures the raw cost of one 1000-site spread —
// the unit underneath every table bench.
func BenchmarkSpreadRumorOp(b *testing.B) {
	sel, err := epidemic.NewUniformSelector(1000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := epidemic.DefaultRumorConfig()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := epidemic.SpreadRumor(cfg, sel, rng.Intn(1000), rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreApply measures the replica merge hot path.
func BenchmarkStoreApply(b *testing.B) {
	src := epidemic.NewSimulatedClock(1)
	producer := epidemic.NewStore(1, src.ClockAt(1))
	entries := make([]epidemic.Entry, 1000)
	for i := range entries {
		entries[i] = producer.Update(randKey(i), epidemic.Value("v"))
		src.Advance(1)
	}
	consumer := epidemic.NewStore(2, src.ClockAt(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		consumer.Apply(entries[i%len(entries)])
	}
}

// BenchmarkKAdjustment regenerates §3.2's k-for-100%-distribution search.
func BenchmarkKAdjustment(b *testing.B) {
	var rows []experiments.KAdjustRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.KAdjustment(20, 20, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].K), "k_pushpull_uniform")
	b.ReportMetric(float64(rows[len(rows)-1].K), "k_push_a2")
}

// BenchmarkTauWindow regenerates §1.3's recent-update window tradeoff.
func BenchmarkTauWindow(b *testing.B) {
	var rows []experiments.TauWindowRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TauWindow(12, []int64{1, 5, 50}, 60, 2, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FullCompareRate, "fullcmp_tau1")
	b.ReportMetric(rows[1].EntriesPerExchange, "entries_tau5")
}

// BenchmarkNodeStepAntiEntropy measures one runtime anti-entropy
// conversation between nearly in-sync replicas (the steady-state op).
func BenchmarkNodeStepAntiEntropy(b *testing.B) {
	src := epidemic.NewSimulatedClock(1)
	mk := func(site epidemic.SiteID) *epidemic.Node {
		n, err := epidemic.NewNode(epidemic.NodeConfig{Site: site, Clock: src.ClockAt(site), Seed: int64(site)})
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
	n1, n2 := mk(1), mk(2)
	n1.SetPeers([]epidemic.Peer{epidemic.NewLocalPeer(n2, 1)})
	for i := 0; i < 200; i++ {
		e := n1.Update(randKey(i), epidemic.Value("v"))
		n2.Store().Apply(e)
		src.Advance(1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n1.StepAntiEntropy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNodeActivityExchange measures the §1.5 combined exchange on
// in-sync replicas (one checksum probe).
func BenchmarkNodeActivityExchange(b *testing.B) {
	src := epidemic.NewSimulatedClock(1)
	mk := func(site epidemic.SiteID) *epidemic.Node {
		n, err := epidemic.NewNode(epidemic.NodeConfig{Site: site, Clock: src.ClockAt(site), Seed: int64(site)})
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
	n1, n2 := mk(1), mk(2)
	n1.SetPeers([]epidemic.Peer{epidemic.NewLocalPeer(n2, 1)})
	for i := 0; i < 200; i++ {
		e := n1.Update(randKey(i), epidemic.Value("v"))
		n2.Store().Apply(e)
		src.Advance(1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n1.StepActivityExchange(16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsyncRobustness regenerates the synchronous-vs-asynchronous
// comparison (event-driven simulator with jitter and latency).
func BenchmarkAsyncRobustness(b *testing.B) {
	var rows []experiments.AsyncRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AsyncRobustness(1000, 10, []int{1, 2, 3, 4}, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].SyncResidue, "s_sync_k2")
	b.ReportMetric(rows[1].AsyncResidue, "s_async_k2")
}

// BenchmarkRumorCIN regenerates §3.2's rumor-on-CIN equivalence table.
func BenchmarkRumorCIN(b *testing.B) {
	var rows []experiments.RumorCINRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RumorMongeringOnCIN(50, 16, 25, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].K), "k_uniform")
	b.ReportMetric(rows[len(rows)-1].CompareBushey, "bushey_a2")
}

// BenchmarkHybridCost regenerates §1.5's deployment economics.
func BenchmarkHybridCost(b *testing.B) {
	var rows []experiments.HybridRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.HybridCost(1000, 10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ExpensiveConversations, "convs_pure_ae")
	b.ReportMetric(rows[1].ExpensiveConversations, "convs_hybrid")
}

// BenchmarkMethodComparison regenerates §1's three-mechanism table.
func BenchmarkMethodComparison(b *testing.B) {
	var rows []experiments.MethodRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.MethodComparison(1000, 20, 0.05, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[2].Residue, "rumor_residue")
}

// BenchmarkRedistributionCost regenerates the §0.1 remail disaster.
func BenchmarkRedistributionCost(b *testing.B) {
	var rows []experiments.RedistributionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RedistributionCost(300, 10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Messages, "mail_storm")
	b.ReportMetric(rows[1].Messages, "rumor_redistribution")
}

// BenchmarkStaleness regenerates §0's relaxed-consistency measurement.
func BenchmarkStaleness(b *testing.B) {
	var rows []experiments.StalenessRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Staleness(12, []float64{2, 16}, 40, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Currency, "currency_heavy_load")
}

// BenchmarkMailLinkTraffic regenerates §1.2/§3.1's per-link comparison.
func BenchmarkMailLinkTraffic(b *testing.B) {
	var rows []experiments.LinkTrafficRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.MailLinkTraffic(10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MaxLink, "mail_hotspot")
	b.ReportMetric(rows[2].Bushey, "spatial_bushey")
}

// --- wire-transport benchmarks: persistent-connection pool + peel-back ---

// benchWireExchange measures one in-sync anti-entropy conversation over a
// real TCP socket: a checksum-agreeing round trip, the steady state of a
// healthy cluster. The pooled and dial-per-request variants differ only in
// TCPPeerOptions, isolating the cost of connection setup and per-dial gob
// type descriptors. The serving node is instrumented and a history
// sampler ticks over its registry for the whole measured loop, so
// allocs/op also proves the telemetry pipeline (counters, histograms,
// time-series capture) stays off the exchange path's allocation budget.
func benchWireExchange(b *testing.B, opts epidemic.TCPPeerOptions) {
	src := epidemic.NewSimulatedClock(1 << 30)
	remote, err := epidemic.NewNode(epidemic.NodeConfig{Site: 2, Clock: src.ClockAt(2)})
	if err != nil {
		b.Fatal(err)
	}
	reg := epidemic.NewMetricsRegistry()
	remote.SetOnEvent(epidemic.InstrumentNode(reg, remote, epidemic.ObserveOptions{
		SecondsPerUnit: 1e-9,
		WallTime:       true,
	}))
	sampler := epidemic.NewHistorySampler(reg, epidemic.HistoryConfig{
		Step: time.Millisecond, Retention: time.Minute,
	})
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		sampler.Run(stopSampler)
	}()
	defer func() {
		close(stopSampler)
		<-samplerDone
	}()
	srv, err := epidemic.ServeTCP(remote, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	local := epidemic.NewStore(1, src.ClockAt(1))
	for i := 0; i < 100; i++ {
		e := local.Update(randKey(i), epidemic.Value("v"))
		remote.Store().Apply(e)
		src.Advance(1)
	}
	src.Advance(100) // shared history ages out of the recent window
	cfg := epidemic.ResolveConfig{
		Mode: epidemic.PushPull, Strategy: epidemic.CompareRecent,
		Tau: 10, Tau1: 1 << 40,
	}
	peer := epidemic.NewTCPPeerWith(2, srv.Addr(), opts)
	defer peer.Close()
	// Warm-up: converge the replicas and (when pooling) open the session
	// the loop will reuse.
	if _, err := peer.AntiEntropy(cfg, local, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := peer.AntiEntropy(cfg, local, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExchangeDialPerRequest is the pre-pool wire protocol: every
// request dials, handshakes, and re-ships gob type descriptors.
func BenchmarkExchangeDialPerRequest(b *testing.B) {
	benchWireExchange(b, epidemic.TCPPeerOptions{PoolSize: -1})
}

// BenchmarkExchangePooled reuses one persistent framed session per request
// with the default hand-rolled binary codec.
func BenchmarkExchangePooled(b *testing.B) {
	benchWireExchange(b, epidemic.TCPPeerOptions{})
}

// BenchmarkExchangePooledGob is the same pooled exchange negotiated down to
// gob framing — the codec ablation isolating what the binary codec saves.
func BenchmarkExchangePooledGob(b *testing.B) {
	benchWireExchange(b, epidemic.TCPPeerOptions{Codec: "gob"})
}

// benchRumorPush measures one hot-rumor push round trip: a single entry and
// its provenance hop to a peer that already knows it (the steady-state
// "unnecessary contact" every rumor eventually dies on). The UDP and TCP
// variants differ only in TCPPeerOptions.UDP, isolating the fast path.
func benchRumorPush(b *testing.B, udp bool) {
	src := epidemic.NewSimulatedClock(1 << 30)
	remote, err := epidemic.NewNode(epidemic.NodeConfig{Site: 2, Clock: src.ClockAt(2)})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := epidemic.ServeTCP(remote, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	peer := epidemic.NewTCPPeerWith(2, srv.Addr(), epidemic.TCPPeerOptions{UDP: udp})
	defer peer.Close()
	entries := []epidemic.Entry{{
		Key: "rumor", Value: epidemic.Value("v"),
		Stamp: epidemic.Timestamp{Time: 1 << 30, Site: 1, Seq: 1},
	}}
	// Warm-up delivers the entry and opens the path the loop reuses.
	if _, err := peer.PushRumors(entries, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := peer.PushRumors(entries, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRumorPushUDP sends each push as one datagram with a correlated
// response (the fast path).
func BenchmarkRumorPushUDP(b *testing.B) { benchRumorPush(b, true) }

// BenchmarkRumorPushTCP sends each push over the pooled framed session.
func BenchmarkRumorPushTCP(b *testing.B) { benchRumorPush(b, false) }

// BenchmarkExchangePeelBackMismatch is the O(δ) acceptance benchmark: a
// 10 000-entry database with 10 fresh divergences per conversation must
// reconcile by shipping a few peel batches — entries_moved/op ≪ store
// size — never by swapping full databases.
func BenchmarkExchangePeelBackMismatch(b *testing.B) {
	src := epidemic.NewSimulatedClock(1 << 30)
	remote, err := epidemic.NewNode(epidemic.NodeConfig{Site: 2, Clock: src.ClockAt(2)})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := epidemic.ServeTCP(remote, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	local := epidemic.NewStore(1, src.ClockAt(1))
	const shared, delta = 10_000, 10
	for i := 0; i < shared; i++ {
		e := local.Update(fmt.Sprintf("k%05d", i), epidemic.Value("v"))
		remote.Store().Apply(e)
		src.Advance(1)
	}
	cfg := epidemic.ResolveConfig{
		Mode: epidemic.PushPull, Strategy: epidemic.CompareRecent,
		Tau: 10, Tau1: 1 << 40, BatchSize: 64,
	}
	peer := epidemic.NewTCPPeer(2, srv.Addr())
	defer peer.Close()
	if _, err := peer.AntiEntropy(cfg, local, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	moved := 0
	for i := 0; i < b.N; i++ {
		for j := 0; j < delta; j++ {
			local.Update(fmt.Sprintf("diff%08d", i*delta+j), epidemic.Value("new"))
		}
		src.Advance(50) // push the divergence outside the recent window
		st, err := peer.AntiEntropy(cfg, local, nil)
		if err != nil {
			b.Fatal(err)
		}
		if st.FullCompare {
			b.Fatal("peel-back degraded to a full database swap")
		}
		moved += st.Transferred()
	}
	b.ReportMetric(float64(moved)/float64(b.N), "entries_moved/op")
	b.ReportMetric(shared, "store_entries")
}

// --- deep-divergence benchmarks: shard-vector vs global peel-back ---

// benchDeepDivergence reconciles delta old-stamped entries buried under n
// newer shared entries. The global peel-back walk must re-examine all n
// newer records newest-first before it reaches the divergence; the
// shard-vector path localizes the mismatch to the handful of diverged
// lock stripes and walks only those, examining O(delta + n/shards)
// records per conversation.
func benchDeepDivergence(b *testing.B, n, delta int, shardVec bool) {
	const shards = 256
	src := epidemic.NewSimulatedClock(1 << 30)
	remote, err := epidemic.NewNode(epidemic.NodeConfig{
		Site: 2, Clock: src.ClockAt(2), StoreShards: shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := epidemic.ServeTCP(remote, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	local := epidemic.NewShardedStore(1, src.ClockAt(1), shards)
	for i := 0; i < n; i++ {
		e := local.Update(fmt.Sprintf("k%07d", i), epidemic.Value("v"))
		remote.Store().Apply(e)
		src.Advance(1)
	}
	src.Advance(100) // the shared history ages out of the recent window

	cfg := epidemic.ResolveConfig{
		Mode: epidemic.PushPull, Strategy: epidemic.CompareRecent,
		Tau: 10, Tau1: 1 << 40, BatchSize: 64,
	}
	opts := epidemic.TCPPeerOptions{}
	if !shardVec {
		// The global walk has to peel all the way down to the divergence
		// without tripping the capped full-swap last resort.
		opts.DisableShardVector = true
		opts.MaxPeelRounds = 1 << 20
	}
	peer := epidemic.NewTCPPeerWith(2, srv.Addr(), opts)
	defer peer.Close()
	if _, err := peer.AntiEntropy(cfg, local, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	moved, seq := 0, 0
	for i := 0; i < b.N; i++ {
		// Divergence stamped far older than the shared history, so it sits
		// at the bottom of the newest-first timestamp index. Earlier
		// iterations' entries carry still-older stamps and stay below it.
		for j := 0; j < delta; j++ {
			seq++
			local.Apply(epidemic.Entry{
				Key:   fmt.Sprintf("old%09d", seq),
				Value: epidemic.Value("deep"),
				Stamp: epidemic.Timestamp{Time: 100 + int64(seq), Site: 3, Seq: uint32(seq)},
			})
		}
		st, err := peer.AntiEntropy(cfg, local, nil)
		if err != nil {
			b.Fatal(err)
		}
		if st.FullCompare {
			b.Fatal("deep divergence degraded to a full database swap")
		}
		if shardVec && st.ShardsRepaired == 0 {
			b.Fatal("shard-vector path not taken")
		}
		moved += st.Transferred()
	}
	b.ReportMetric(float64(moved)/float64(b.N), "entries_moved/op")
	b.ReportMetric(float64(n), "store_entries")
}

func benchDeepDivergenceGrid(b *testing.B, shardVec bool) {
	for _, n := range []int{10_000, 100_000} {
		for _, delta := range []int{1, 10, 100} {
			b.Run(fmt.Sprintf("n%d_d%d", n, delta), func(b *testing.B) {
				benchDeepDivergence(b, n, delta, shardVec)
			})
		}
	}
}

// BenchmarkDeepDivergenceShardVec repairs through the codec-v4 shard
// vector: one S x 8-byte vector round trip, then only diverged shards.
func BenchmarkDeepDivergenceShardVec(b *testing.B) { benchDeepDivergenceGrid(b, true) }

// BenchmarkDeepDivergenceGlobal is the pre-v4 baseline: the global merged
// peel-back walk over the whole timestamp index.
func BenchmarkDeepDivergenceGlobal(b *testing.B) { benchDeepDivergenceGrid(b, false) }

// latencyPeer models a remote mailbox reached over a link with fixed
// request latency: every Mail and every MailBatch costs one round trip.
// Only the mail surface matters to the fan-out bench; the gossip methods
// are inert.
type latencyPeer struct {
	id    epidemic.SiteID
	delay time.Duration
	mails atomic.Int64
}

func (p *latencyPeer) ID() epidemic.SiteID { return p.id }

func (p *latencyPeer) AntiEntropy(cfg core.ResolveConfig, local *store.Store, tr *trace.Tracer) (core.ExchangeStats, error) {
	return core.ExchangeStats{}, nil
}

func (p *latencyPeer) PushRumors(entries []store.Entry, hops []trace.Hop) ([]bool, error) {
	return make([]bool, len(entries)), nil
}

func (p *latencyPeer) PullRumors() ([]store.Entry, []trace.Hop, error) { return nil, nil, nil }

func (p *latencyPeer) Checksum(tau1 int64) (uint64, error) { return 0, nil }

func (p *latencyPeer) Mail(e store.Entry, hop trace.Hop) error {
	time.Sleep(p.delay)
	p.mails.Add(1)
	return nil
}

func (p *latencyPeer) MailBatch(mb epidemic.MailBatch) error {
	time.Sleep(p.delay)
	p.mails.Add(int64(len(mb.Entries)))
	return nil
}

// benchDirectMailFanout times one direct-mailed Update reaching `peers`
// mailboxes a fixed 1ms link apart. workers < 0 is the pre-engine serial
// path (Update itself walks every peer); workers > 0 is the async outbox,
// where the timed region covers the enqueue plus a flush so the engine
// gets no credit for work it merely deferred. slow makes one peer a 50ms
// straggler.
func benchDirectMailFanout(b *testing.B, peers, workers int, slow bool) {
	n, err := epidemic.NewNode(epidemic.NodeConfig{
		Site:               1,
		DirectMailOnUpdate: true,
		Outbox: epidemic.OutboxConfig{
			Workers:      workers,
			QueuePerPeer: 1 << 20, // never drop: the bench measures fan-out, not shedding
			FlushTimeout: time.Minute,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Stop()
	ps := make([]epidemic.Peer, peers)
	for i := range ps {
		d := time.Millisecond
		if slow && i == 0 {
			d = 50 * time.Millisecond
		}
		ps[i] = &latencyPeer{id: epidemic.SiteID(i + 2), delay: d}
	}
	n.SetPeers(ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Update(fmt.Sprintf("fanout-%d", i), epidemic.Value("v"))
		if workers > 0 {
			if !n.FlushMail(time.Minute) {
				b.Fatal("flush timed out")
			}
		}
	}
	b.StopTimer()
	var mails int64
	for _, p := range ps {
		mails += p.(*latencyPeer).mails.Load()
	}
	b.ReportMetric(float64(mails)/float64(b.N), "mails/op")
}

// BenchmarkDirectMailFanout compares serial direct mail against the async
// outbox engine across fan-out widths, plus a one-straggler variant. The
// serial path pays links sequentially (peers x 1ms per op); the outbox
// drains queues from a worker pool, so the same op costs roughly
// peers/workers link delays.
func BenchmarkDirectMailFanout(b *testing.B) {
	for _, peers := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("serial_p%d", peers), func(b *testing.B) {
			benchDirectMailFanout(b, peers, -1, false)
		})
		b.Run(fmt.Sprintf("outbox_p%d", peers), func(b *testing.B) {
			benchDirectMailFanout(b, peers, 8, false)
		})
	}
	b.Run("serial_p32_slowpeer", func(b *testing.B) {
		benchDirectMailFanout(b, 32, -1, true)
	})
	b.Run("outbox_p32_slowpeer", func(b *testing.B) {
		benchDirectMailFanout(b, 32, 8, true)
	})
}
