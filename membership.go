package epidemic

import (
	"epidemic/internal/membership"
	"epidemic/internal/store"
)

// MemberRecord describes one replica site in the replicated membership
// directory (a record stored in the database itself, under a reserved key
// prefix, so site additions and removals spread like any other update).
type MemberRecord = membership.Record

// MemberDialer turns a membership record into a live Peer.
type MemberDialer = membership.Dialer

// Announce writes (or refreshes) a node's own record into the replicated
// membership directory.
func Announce(n *Node, addr string) (Entry, error) { return membership.Announce(n, addr) }

// RemoveMember deletes a site from the directory; the removal spreads as
// a death certificate.
func RemoveMember(n *Node, site SiteID) Entry { return membership.Remove(n, site) }

// Members lists the live membership records held by a replica.
func Members(st *store.Store) []MemberRecord { return membership.List(st) }

// SyncPeers reconciles a node's peer set with the membership directory in
// its own replica, dialing every listed site except itself.
func SyncPeers(n *Node, dial MemberDialer) []MemberRecord { return membership.SyncPeers(n, dial) }

// IsMembershipKey reports whether a database key is a membership record
// (applications should treat the prefix as reserved).
func IsMembershipKey(key string) bool { return membership.IsMembershipKey(key) }
