module epidemic

go 1.22
