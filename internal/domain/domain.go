// Package domain implements Clearinghouse-style partial replication on
// top of the epidemic machinery. The paper's motivating system partitions
// its name space into *domains*, and "each domain may be stored
// (replicated) on as few as one, or as many as all, of the Clearinghouse
// servers" (§0.1). A Host runs one independent replica runtime per domain
// it stores; each domain gossips only among the sites that store it, so
// lightly replicated domains impose no load on the rest of the network.
package domain

import (
	"errors"
	"fmt"
	"sort"

	"epidemic/internal/node"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// ErrNotHosted is returned for operations on a domain this host does not
// store.
var ErrNotHosted = errors.New("domain: not hosted at this site")

// Assignment maps each domain name to the sites that replicate it.
type Assignment map[string][]timestamp.SiteID

// DomainsAt returns the domains assigned to one site, sorted.
func (a Assignment) DomainsAt(site timestamp.SiteID) []string {
	var out []string
	for name, sites := range a {
		for _, s := range sites {
			if s == site {
				out = append(out, name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks that every domain has at least one replica.
func (a Assignment) Validate() error {
	if len(a) == 0 {
		return errors.New("domain: empty assignment")
	}
	for name, sites := range a {
		if len(sites) == 0 {
			return fmt.Errorf("domain: %q has no replicas", name)
		}
		seen := make(map[timestamp.SiteID]bool, len(sites))
		for _, s := range sites {
			if seen[s] {
				return fmt.Errorf("domain: %q lists site %d twice", name, s)
			}
			seen[s] = true
		}
	}
	return nil
}

// HostConfig configures one server.
type HostConfig struct {
	// Site is this server's ID.
	Site timestamp.SiteID
	// Clock is shared across all of the host's domain replicas.
	Clock timestamp.Clock
	// Node is the template for each per-domain replica runtime; Site,
	// Clock, and Seed are filled in per domain.
	Node node.Config
	// Seed derives per-domain RNG seeds.
	Seed int64
}

// Host is one server storing several domains.
type Host struct {
	site     timestamp.SiteID
	replicas map[string]*node.Node
}

// NewHost builds a host storing its share of the assignment.
func NewHost(cfg HostConfig, assignment Assignment) (*Host, error) {
	if err := assignment.Validate(); err != nil {
		return nil, err
	}
	h := &Host{site: cfg.Site, replicas: make(map[string]*node.Node)}
	for i, name := range assignment.DomainsAt(cfg.Site) {
		ncfg := cfg.Node
		ncfg.Site = cfg.Site
		ncfg.Clock = cfg.Clock
		ncfg.Seed = cfg.Seed + int64(i)*7919 + 1
		n, err := node.New(ncfg)
		if err != nil {
			return nil, fmt.Errorf("domain %q: %w", name, err)
		}
		h.replicas[name] = n
	}
	return h, nil
}

// Site returns the host's site ID.
func (h *Host) Site() timestamp.SiteID { return h.site }

// Domains returns the domains stored here, sorted.
func (h *Host) Domains() []string {
	out := make([]string, 0, len(h.replicas))
	for name := range h.replicas {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Replica returns the replica runtime for one domain.
func (h *Host) Replica(domain string) (*node.Node, bool) {
	n, ok := h.replicas[domain]
	return n, ok
}

// Update writes into a hosted domain.
func (h *Host) Update(domain, key string, v store.Value) (store.Entry, error) {
	n, ok := h.replicas[domain]
	if !ok {
		return store.Entry{}, fmt.Errorf("update %s:%s: %w", domain, key, ErrNotHosted)
	}
	return n.Update(key, v), nil
}

// Delete removes an item from a hosted domain (death certificate).
func (h *Host) Delete(domain, key string) (store.Entry, error) {
	n, ok := h.replicas[domain]
	if !ok {
		return store.Entry{}, fmt.Errorf("delete %s:%s: %w", domain, key, ErrNotHosted)
	}
	return n.Delete(key), nil
}

// Lookup reads from a hosted domain.
func (h *Host) Lookup(domain, key string) (store.Value, bool, error) {
	n, ok := h.replicas[domain]
	if !ok {
		return nil, false, fmt.Errorf("lookup %s:%s: %w", domain, key, ErrNotHosted)
	}
	v, found := n.Lookup(key)
	return v, found, nil
}

// StepAntiEntropy runs one anti-entropy conversation in every hosted
// domain that has peers.
func (h *Host) StepAntiEntropy() error {
	for _, name := range h.Domains() {
		if err := h.replicas[name].StepAntiEntropy(); err != nil && !errors.Is(err, node.ErrNoPeers) {
			return fmt.Errorf("domain %q: %w", name, err)
		}
	}
	return nil
}

// StepRumor runs one rumor round in every hosted domain that has peers.
func (h *Host) StepRumor() error {
	for _, name := range h.Domains() {
		if err := h.replicas[name].StepRumor(); err != nil && !errors.Is(err, node.ErrNoPeers) {
			return fmt.Errorf("domain %q: %w", name, err)
		}
	}
	return nil
}

// Wire connects a set of hosts per the assignment: for every domain, each
// hosting site peers with the other hosting sites, using in-process
// LocalPeers. Hosts must cover the assignment (a listed site missing from
// hosts is an error).
func Wire(hosts map[timestamp.SiteID]*Host, assignment Assignment, seed int64) error {
	if err := assignment.Validate(); err != nil {
		return err
	}
	for name, sites := range assignment {
		for _, site := range sites {
			h, ok := hosts[site]
			if !ok {
				return fmt.Errorf("domain %q: site %d has no host", name, site)
			}
			self, ok := h.replicas[name]
			if !ok {
				return fmt.Errorf("domain %q: host %d does not store it", name, site)
			}
			var peers []node.Peer
			for _, other := range sites {
				if other == site {
					continue
				}
				oh, ok := hosts[other]
				if !ok {
					return fmt.Errorf("domain %q: site %d has no host", name, other)
				}
				target, ok := oh.replicas[name]
				if !ok {
					return fmt.Errorf("domain %q: host %d does not store it", name, other)
				}
				peers = append(peers, node.NewLocalPeer(target, seed+int64(site)*1000+int64(other)))
			}
			self.SetPeers(peers)
		}
	}
	return nil
}
