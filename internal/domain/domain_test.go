package domain

import (
	"errors"
	"testing"

	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// threeHosts builds: domain "common" on all three sites, "west" on 1+2,
// "east" on 2+3, "solo" only on 3.
func threeHosts(t *testing.T) (map[timestamp.SiteID]*Host, Assignment, *timestamp.Simulated) {
	t.Helper()
	assignment := Assignment{
		"common": {1, 2, 3},
		"west":   {1, 2},
		"east":   {2, 3},
		"solo":   {3},
	}
	src := timestamp.NewSimulated(1)
	hosts := make(map[timestamp.SiteID]*Host)
	for _, site := range []timestamp.SiteID{1, 2, 3} {
		h, err := NewHost(HostConfig{Site: site, Clock: src.ClockAt(site), Seed: int64(site)}, assignment)
		if err != nil {
			t.Fatal(err)
		}
		hosts[site] = h
	}
	if err := Wire(hosts, assignment, 99); err != nil {
		t.Fatal(err)
	}
	return hosts, assignment, src
}

func stepAll(t *testing.T, hosts map[timestamp.SiteID]*Host, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		for _, site := range []timestamp.SiteID{1, 2, 3} {
			if err := hosts[site].StepAntiEntropy(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestAssignmentValidate(t *testing.T) {
	if err := (Assignment{}).Validate(); err == nil {
		t.Error("empty assignment accepted")
	}
	if err := (Assignment{"d": nil}).Validate(); err == nil {
		t.Error("empty replica set accepted")
	}
	if err := (Assignment{"d": {1, 1}}).Validate(); err == nil {
		t.Error("duplicate site accepted")
	}
	if err := (Assignment{"d": {1}}).Validate(); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
}

func TestDomainsAt(t *testing.T) {
	_, assignment, _ := threeHosts(t)
	got := assignment.DomainsAt(2)
	want := []string{"common", "east", "west"}
	if len(got) != len(want) {
		t.Fatalf("DomainsAt(2) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DomainsAt(2) = %v, want %v", got, want)
		}
	}
	if len(assignment.DomainsAt(9)) != 0 {
		t.Error("unknown site should host nothing")
	}
}

func TestHostDomains(t *testing.T) {
	hosts, _, _ := threeHosts(t)
	if got := hosts[1].Domains(); len(got) != 2 || got[0] != "common" || got[1] != "west" {
		t.Fatalf("host1 domains = %v", got)
	}
	if hosts[3].Site() != 3 {
		t.Error("Site wrong")
	}
	if _, ok := hosts[1].Replica("west"); !ok {
		t.Error("Replica(west) missing")
	}
	if _, ok := hosts[1].Replica("east"); ok {
		t.Error("host1 should not store east")
	}
}

func TestNotHostedErrors(t *testing.T) {
	hosts, _, _ := threeHosts(t)
	if _, err := hosts[1].Update("east", "k", store.Value("v")); !errors.Is(err, ErrNotHosted) {
		t.Errorf("Update err = %v", err)
	}
	if _, err := hosts[1].Delete("east", "k"); !errors.Is(err, ErrNotHosted) {
		t.Errorf("Delete err = %v", err)
	}
	if _, _, err := hosts[1].Lookup("east", "k"); !errors.Is(err, ErrNotHosted) {
		t.Errorf("Lookup err = %v", err)
	}
}

func TestDomainIsolation(t *testing.T) {
	hosts, _, _ := threeHosts(t)
	if _, err := hosts[1].Update("west", "printer", store.Value("w1")); err != nil {
		t.Fatal(err)
	}
	if _, err := hosts[3].Update("east", "printer", store.Value("e1")); err != nil {
		t.Fatal(err)
	}
	stepAll(t, hosts, 5)

	// West data reached site 2 but never site 3.
	if v, ok, err := hosts[2].Lookup("west", "printer"); err != nil || !ok || string(v) != "w1" {
		t.Fatalf("west at site2: %q %v %v", v, ok, err)
	}
	if _, _, err := hosts[3].Lookup("west", "printer"); !errors.Is(err, ErrNotHosted) {
		t.Fatal("west leaked to site 3")
	}
	// The two domains keep independent values for the same key.
	if v, _, _ := hosts[2].Lookup("east", "printer"); string(v) != "e1" {
		t.Fatalf("east at site2 = %q", v)
	}
	if v, _, _ := hosts[2].Lookup("west", "printer"); string(v) != "w1" {
		t.Fatalf("west at site2 = %q", v)
	}
}

func TestSingleReplicaDomain(t *testing.T) {
	hosts, _, _ := threeHosts(t)
	if _, err := hosts[3].Update("solo", "k", store.Value("v")); err != nil {
		t.Fatal(err)
	}
	// StepAntiEntropy must tolerate the peer-less domain.
	if err := hosts[3].StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	if err := hosts[3].StepRumor(); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := hosts[3].Lookup("solo", "k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("solo lookup: %q %v %v", v, ok, err)
	}
}

func TestDeleteWithinDomain(t *testing.T) {
	hosts, _, src := threeHosts(t)
	if _, err := hosts[1].Update("common", "k", store.Value("v")); err != nil {
		t.Fatal(err)
	}
	stepAll(t, hosts, 5)
	src.Advance(1)
	if _, err := hosts[2].Delete("common", "k"); err != nil {
		t.Fatal(err)
	}
	stepAll(t, hosts, 5)
	for _, site := range []timestamp.SiteID{1, 2, 3} {
		if _, ok, err := hosts[site].Lookup("common", "k"); err != nil || ok {
			t.Errorf("site %d still sees deleted item", site)
		}
	}
}

func TestRumorWithinDomain(t *testing.T) {
	hosts, _, _ := threeHosts(t)
	if _, err := hosts[1].Update("common", "news", store.Value("hot")); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		for _, site := range []timestamp.SiteID{1, 2, 3} {
			if err := hosts[site].StepRumor(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, site := range []timestamp.SiteID{2, 3} {
		if _, ok, err := hosts[site].Lookup("common", "news"); err != nil || !ok {
			t.Errorf("rumor did not reach site %d", site)
		}
	}
}

func TestWireErrors(t *testing.T) {
	assignment := Assignment{"d": {1, 2}}
	src := timestamp.NewSimulated(1)
	h1, err := NewHost(HostConfig{Site: 1, Clock: src.ClockAt(1)}, assignment)
	if err != nil {
		t.Fatal(err)
	}
	// Site 2 missing from hosts.
	if err := Wire(map[timestamp.SiteID]*Host{1: h1}, assignment, 1); err == nil {
		t.Error("missing host accepted")
	}
	if err := Wire(nil, Assignment{}, 1); err == nil {
		t.Error("empty assignment accepted")
	}
}

func TestNewHostPropagatesNodeErrors(t *testing.T) {
	assignment := Assignment{"d": {1}}
	cfg := HostConfig{Site: 1}
	cfg.Node.Rumor.K = -1 // invalid
	cfg.Node.Rumor.Mode = 1
	if _, err := NewHost(cfg, assignment); err == nil {
		t.Error("invalid node template accepted")
	}
}
