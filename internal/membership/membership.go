// Package membership stores the set of replica sites inside the
// replicated database itself, under a reserved key prefix — the way the
// Clearinghouse kept its own server addresses in the name database it
// served. Because the directory rides the same epidemic machinery as any
// other data, site additions and removals propagate by direct mail, rumor
// mongering, and anti-entropy, and a removal is just a death certificate.
//
// The paper notes that direct mail "may also fail when the source site of
// an update does not have accurate knowledge of S, the set of sites"; a
// replicated directory keeps each site's knowledge of S as current as the
// epidemics themselves can make it.
package membership

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"epidemic/internal/node"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// KeyPrefix is the reserved prefix for membership records. Applications
// should not write keys under it; List and SyncPeers ignore everything
// else.
const KeyPrefix = "\x00sites/"

// Record describes one replica site.
type Record struct {
	Site timestamp.SiteID `json:"site"`
	// Addr is the site's gossip address ("host:port" for TCP replicas;
	// free-form otherwise).
	Addr string `json:"addr"`
}

// Key returns the database key for a site's membership record.
func Key(site timestamp.SiteID) string {
	return KeyPrefix + strconv.FormatInt(int64(site), 10)
}

// IsMembershipKey reports whether key is a membership record.
func IsMembershipKey(key string) bool { return strings.HasPrefix(key, KeyPrefix) }

// Announce writes (or refreshes) this node's own record into its replica,
// from where the epidemic machinery spreads it to every site.
func Announce(n *node.Node, addr string) (store.Entry, error) {
	rec := Record{Site: n.Site(), Addr: addr}
	raw, err := json.Marshal(rec)
	if err != nil {
		return store.Entry{}, fmt.Errorf("membership: marshal record: %w", err)
	}
	return n.Update(Key(n.Site()), raw), nil
}

// Remove deletes a site from the directory via this node. The removal
// spreads as a death certificate, so it wins over stale announcements
// with older timestamps.
func Remove(n *node.Node, site timestamp.SiteID) store.Entry {
	return n.Delete(Key(site))
}

// List reads all live membership records from a replica, sorted by site.
func List(st *store.Store) []Record {
	var out []Record
	for _, e := range st.ScanPrefix(KeyPrefix) {
		var rec Record
		if err := json.Unmarshal(e.Value, &rec); err != nil {
			continue // unparseable record; ignore rather than fail gossip
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Dialer turns a membership record into a live Peer (e.g. a TCP peer).
type Dialer func(Record) node.Peer

// addressed is the optional Peer facet that exposes a dial address
// (transport.TCPPeer implements it). SyncPeers uses it to recognise an
// existing peer as current.
type addressed interface{ Addr() string }

// SyncPeers reconciles n's peer set with the directory in its own replica:
// every listed site except n itself becomes a peer. An existing peer whose
// site and address still match its record is kept as-is — peers hold
// pooled connections, and re-dialing every sync period would discard them
// — while peers that were dropped or re-addressed are closed (when they
// implement io.Closer) after replacement. It returns the records used.
// Sites with empty addresses are skipped.
func SyncPeers(n *node.Node, dial Dialer) []Record {
	current := make(map[timestamp.SiteID]node.Peer)
	for _, p := range n.Peers() {
		current[p.ID()] = p
	}
	recs := List(n.Store())
	peers := make([]node.Peer, 0, len(recs))
	used := make([]Record, 0, len(recs))
	kept := make(map[timestamp.SiteID]bool)
	for _, rec := range recs {
		if rec.Site == n.Site() || rec.Addr == "" {
			continue
		}
		if p, ok := current[rec.Site]; ok && !kept[rec.Site] {
			if a, ok := p.(addressed); ok && a.Addr() == rec.Addr {
				peers = append(peers, p)
				used = append(used, rec)
				kept[rec.Site] = true
				continue
			}
		}
		p := dial(rec)
		if p == nil {
			continue
		}
		peers = append(peers, p)
		used = append(used, rec)
	}
	if len(peers) > 0 {
		n.SetPeers(peers)
		for site, p := range current {
			if kept[site] {
				continue
			}
			if c, ok := p.(io.Closer); ok {
				_ = c.Close()
			}
		}
	}
	return used
}
