package membership

import (
	"encoding/json"
	"testing"

	"epidemic/internal/node"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

func mkNode(t *testing.T, src *timestamp.Simulated, site timestamp.SiteID) *node.Node {
	t.Helper()
	n, err := node.New(node.Config{Site: site, Clock: src.ClockAt(site), Seed: int64(site)})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestKeyAndPrefix(t *testing.T) {
	k := Key(42)
	if !IsMembershipKey(k) {
		t.Error("Key not recognised")
	}
	if IsMembershipKey("user/alice") {
		t.Error("ordinary key recognised as membership")
	}
}

func TestAnnounceListRoundTrip(t *testing.T) {
	src := timestamp.NewSimulated(1)
	n := mkNode(t, src, 1)
	if _, err := Announce(n, "host1:7001"); err != nil {
		t.Fatal(err)
	}
	recs := List(n.Store())
	if len(recs) != 1 || recs[0].Site != 1 || recs[0].Addr != "host1:7001" {
		t.Fatalf("List = %+v", recs)
	}
}

func TestDirectoryPropagatesAndRemoves(t *testing.T) {
	src := timestamp.NewSimulated(1)
	a := mkNode(t, src, 1)
	b := mkNode(t, src, 2)
	a.SetPeers([]node.Peer{node.NewLocalPeer(b, 1)})
	b.SetPeers([]node.Peer{node.NewLocalPeer(a, 2)})

	if _, err := Announce(a, "host1:7001"); err != nil {
		t.Fatal(err)
	}
	if _, err := Announce(b, "host2:7001"); err != nil {
		t.Fatal(err)
	}
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	// Both replicas now list both sites.
	for _, n := range []*node.Node{a, b} {
		recs := List(n.Store())
		if len(recs) != 2 {
			t.Fatalf("site %d sees %d records", n.Site(), len(recs))
		}
		if recs[0].Site != 1 || recs[1].Site != 2 {
			t.Fatalf("records out of order: %+v", recs)
		}
	}

	// Removing b spreads as a death certificate and wins.
	src.Advance(1)
	Remove(a, 2)
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*node.Node{a, b} {
		recs := List(n.Store())
		if len(recs) != 1 || recs[0].Site != 1 {
			t.Fatalf("site %d: removal not applied: %+v", n.Site(), recs)
		}
	}
}

func TestListSkipsGarbageRecords(t *testing.T) {
	src := timestamp.NewSimulated(1)
	n := mkNode(t, src, 1)
	n.Store().Update(Key(9), store.Value("not json"))
	n.Update("app/key", store.Value("data"))
	if recs := List(n.Store()); len(recs) != 0 {
		t.Fatalf("List = %+v, want empty", recs)
	}
}

func TestSyncPeers(t *testing.T) {
	src := timestamp.NewSimulated(1)
	a := mkNode(t, src, 1)
	b := mkNode(t, src, 2)
	c := mkNode(t, src, 3)

	// a's directory knows everyone; c has no address (skipped).
	if _, err := Announce(a, "host1:1"); err != nil {
		t.Fatal(err)
	}
	for _, rec := range []Record{{Site: 2, Addr: "host2:1"}, {Site: 3}} {
		raw := mustJSON(t, rec)
		a.Store().Update(Key(rec.Site), raw)
	}

	targets := map[string]*node.Node{"host2:1": b, "host3:1": c}
	used := SyncPeers(a, func(rec Record) node.Peer {
		target, ok := targets[rec.Addr]
		if !ok {
			return nil
		}
		return node.NewLocalPeer(target, int64(rec.Site))
	})
	if len(used) != 1 || used[0].Site != 2 {
		t.Fatalf("used = %+v", used)
	}
	peers := a.Peers()
	if len(peers) != 1 || peers[0].ID() != 2 {
		t.Fatalf("peers = %v", peers)
	}
}

// fakeAddrPeer is a Peer with an address and a close flag, standing in for
// a pooled TCP peer.
type fakeAddrPeer struct {
	node.Peer
	addr   string
	closed bool
}

func (p *fakeAddrPeer) Addr() string { return p.addr }
func (p *fakeAddrPeer) Close() error { p.closed = true; return nil }

func TestSyncPeersReusesUnchangedPeers(t *testing.T) {
	src := timestamp.NewSimulated(1)
	a := mkNode(t, src, 1)
	b := mkNode(t, src, 2)

	if _, err := Announce(a, "host1:1"); err != nil {
		t.Fatal(err)
	}
	a.Store().Update(Key(2), mustJSON(t, Record{Site: 2, Addr: "host2:1"}))

	dials := 0
	dial := func(rec Record) node.Peer {
		dials++
		return &fakeAddrPeer{Peer: node.NewLocalPeer(b, int64(rec.Site)), addr: rec.Addr}
	}
	SyncPeers(a, dial)
	if dials != 1 {
		t.Fatalf("first sync dialed %d times", dials)
	}
	first := a.Peers()[0]

	// Unchanged directory: the existing peer (and its pooled connections)
	// must be kept, not re-dialed.
	SyncPeers(a, dial)
	if dials != 1 {
		t.Errorf("unchanged record re-dialed (%d dials)", dials)
	}
	if a.Peers()[0] != first {
		t.Error("unchanged record replaced the peer instance")
	}
	if first.(*fakeAddrPeer).closed {
		t.Error("kept peer was closed")
	}

	// Re-addressed site: dial a replacement and close the stale peer.
	a.Store().Update(Key(2), mustJSON(t, Record{Site: 2, Addr: "host2:2"}))
	SyncPeers(a, dial)
	if dials != 2 {
		t.Errorf("re-addressed record dialed %d times, want 2", dials)
	}
	if got := a.Peers()[0].(*fakeAddrPeer).addr; got != "host2:2" {
		t.Errorf("peer addr = %q after re-address", got)
	}
	if !first.(*fakeAddrPeer).closed {
		t.Error("replaced peer was not closed")
	}
}

func TestSyncPeersKeepsOldSetWhenDirectoryEmpty(t *testing.T) {
	src := timestamp.NewSimulated(1)
	a := mkNode(t, src, 1)
	b := mkNode(t, src, 2)
	seed := []node.Peer{node.NewLocalPeer(b, 1)}
	a.SetPeers(seed)
	SyncPeers(a, func(Record) node.Peer { return nil })
	if len(a.Peers()) != 1 {
		t.Fatal("empty directory wiped the seed peers")
	}
}

func mustJSON(t *testing.T, rec Record) store.Value {
	t.Helper()
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
