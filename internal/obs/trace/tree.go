package trace

import (
	"sort"
	"strconv"

	"epidemic/internal/timestamp"
)

// TreeNode is one site's position in an infection tree: the hop span that
// first delivered the traced version to the site, with the sites it went
// on to infect as children.
type TreeNode struct {
	Site     timestamp.SiteID `json:"site"`
	From     timestamp.SiteID `json:"from"`
	Hop      int32            `json:"hop"`
	Mech     Mechanism        `json:"mechanism"`
	At       int64            `json:"at"`
	Round    uint64           `json:"round"`
	Children []*TreeNode      `json:"children,omitempty"`
}

// Tree is the reconstructed infection tree of one update version: which
// site infected which, by what mechanism, at what time. Assemble builds
// it from spans federated across replicas.
type Tree struct {
	// Key and Stamp identify the traced update version (the newest version
	// among the supplied spans).
	Key   string      `json:"key"`
	Stamp timestamp.T `json:"stamp"`
	// Root is the origination, or nil when no origin span was collected
	// (e.g. the originating replica was not queried).
	Root *TreeNode `json:"root,omitempty"`
	// Orphans are infected sites whose recorded parent produced no span of
	// its own (tracing off at the parent, ring overwritten, or the parent
	// unknown) — they are part of the node set but cannot be attached.
	Orphans []*TreeNode `json:"orphans,omitempty"`

	nodes map[timestamp.SiteID]*TreeNode
}

// Assemble reconstructs the infection tree for key from spans collected
// across any number of replicas. Only the newest version (largest Stamp)
// present in the spans is considered; per site, the earliest application
// of that version wins. It returns nil when no span matches the key.
func Assemble(key string, spans []Span) *Tree {
	var newest timestamp.T
	found := false
	for _, sp := range spans {
		if sp.Key != key {
			continue
		}
		if !found || newest.Less(sp.Stamp) {
			newest, found = sp.Stamp, true
		}
	}
	if !found {
		return nil
	}

	tr := &Tree{Key: key, Stamp: newest, nodes: make(map[timestamp.SiteID]*TreeNode)}
	for _, sp := range spans {
		if sp.Key != key || sp.Stamp != newest {
			continue
		}
		cand := &TreeNode{
			Site: sp.To, From: sp.From, Hop: sp.Hop,
			Mech: sp.Mech, At: sp.At, Round: sp.Round,
		}
		cur, ok := tr.nodes[sp.To]
		if !ok || betterNode(cand, cur) {
			tr.nodes[sp.To] = cand
		}
	}

	// Attach children to parents. The origin anchors the tree; any node
	// whose parent is absent (or is itself) becomes an orphan.
	for _, n := range tr.nodes {
		if n.Mech == MechOrigin {
			tr.Root = n
		}
	}
	for _, n := range tr.nodes {
		if n == tr.Root {
			continue
		}
		parent, ok := tr.nodes[n.From]
		if !ok || parent == n {
			tr.Orphans = append(tr.Orphans, n)
			continue
		}
		parent.Children = append(parent.Children, n)
	}
	for _, n := range tr.nodes {
		sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].Site < n.Children[j].Site })
	}
	sort.Slice(tr.Orphans, func(i, j int) bool { return tr.Orphans[i].Site < tr.Orphans[j].Site })
	return tr
}

// betterNode prefers the span that first delivered the version: origin
// spans beat applies, then earlier application times win.
func betterNode(cand, cur *TreeNode) bool {
	if (cand.Mech == MechOrigin) != (cur.Mech == MechOrigin) {
		return cand.Mech == MechOrigin
	}
	return cand.At < cur.At
}

// Node returns site's tree node, or nil when the site holds no span for
// the traced version.
func (tr *Tree) Node(site timestamp.SiteID) *TreeNode { return tr.nodes[site] }

// Sites returns the infected sites, sorted — the tree's node set.
func (tr *Tree) Sites() []timestamp.SiteID {
	out := make([]timestamp.SiteID, 0, len(tr.nodes))
	for s := range tr.nodes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// originAt returns the propagation's time zero: the origin span's time
// when present, otherwise the version stamp's time component (the same
// value the origin span would carry).
func (tr *Tree) originAt() int64 {
	if tr.Root != nil {
		return tr.Root.At
	}
	return tr.Stamp.Time
}

// delayUnits returns a node's infection delay in stamp units, clamped at
// zero for cross-site clock skew exactly like the Propagation tracker.
func (tr *Tree) delayUnits(n *TreeNode) int64 {
	d := n.At - tr.originAt()
	if d < 0 {
		d = 0
	}
	return d
}

// TLastUnits returns t_last in stamp units: the delay until the last
// currently infected site received the update (§1.4).
func (tr *Tree) TLastUnits() int64 {
	var max int64
	for _, n := range tr.nodes {
		if d := tr.delayUnits(n); d > max {
			max = d
		}
	}
	return max
}

// TAvgUnits returns t_avg in stamp units: the mean infection delay over
// all infected sites, the origin included with delay zero.
func (tr *Tree) TAvgUnits() float64 {
	if len(tr.nodes) == 0 {
		return 0
	}
	var sum int64
	for _, n := range tr.nodes {
		sum += tr.delayUnits(n)
	}
	return float64(sum) / float64(len(tr.nodes))
}

// Residue returns the fraction of n sites the update never reached — the
// paper's residue s/n (§1.4).
func (tr *Tree) Residue(n int) float64 {
	if n <= 0 {
		return 0
	}
	infected := len(tr.nodes)
	if infected > n {
		infected = n
	}
	return float64(n-infected) / float64(n)
}

// HopHistogram returns the per-hop site counts, keyed by hop count with
// "unknown" for spans without causal hop numbers — JSON-friendly string
// keys.
func (tr *Tree) HopHistogram() map[string]int {
	out := make(map[string]int)
	for _, n := range tr.nodes {
		if n.Hop == HopUnknown {
			out["unknown"]++
			continue
		}
		out[strconv.Itoa(int(n.Hop))]++
	}
	return out
}

// MechanismCounts returns how many sites each mechanism infected,
// including the origin. The rumor push/pull ratio of §1.4 reads directly
// off the rumor-push and rumor-pull entries.
func (tr *Tree) MechanismCounts() map[string]int {
	out := make(map[string]int)
	for _, n := range tr.nodes {
		out[n.Mech.String()]++
	}
	return out
}

// Summary packages the paper's convergence observables for one traced
// update, in seconds via secondsPerUnit. clusterSize is the number of
// replicas residue is measured against (typically the membership size).
type Summary struct {
	Key          string         `json:"key"`
	Stamp        timestamp.T    `json:"stamp"`
	Sites        int            `json:"sites"`
	ClusterSize  int            `json:"cluster_size"`
	TLastSeconds float64        `json:"t_last_seconds"`
	TAvgSeconds  float64        `json:"t_avg_seconds"`
	Residue      float64        `json:"residue"`
	Hops         map[string]int `json:"hop_histogram"`
	Mechanisms   map[string]int `json:"mechanisms"`
}

// Summarize derives the Summary.
func (tr *Tree) Summarize(clusterSize int, secondsPerUnit float64) Summary {
	if secondsPerUnit <= 0 {
		secondsPerUnit = 1e-9
	}
	return Summary{
		Key:          tr.Key,
		Stamp:        tr.Stamp,
		Sites:        len(tr.nodes),
		ClusterSize:  clusterSize,
		TLastSeconds: float64(tr.TLastUnits()) * secondsPerUnit,
		TAvgSeconds:  tr.TAvgUnits() * secondsPerUnit,
		Residue:      tr.Residue(clusterSize),
		Hops:         tr.HopHistogram(),
		Mechanisms:   tr.MechanismCounts(),
	}
}
