// Package trace implements per-update provenance for the epidemic
// protocols: every application of an update at a replica produces a hop
// span (who sent it, by which mechanism, after how many hops), and
// exchange payloads carry a compact provenance envelope so hop counts are
// causal — stamped by the sender — rather than inferred after the fact.
//
// The paper's experimental observables (§1.4: t_last, t_avg, residue,
// traffic per mechanism) are distributions over exactly this information;
// package trace captures it on live clusters, where the simulator's
// god's-eye Propagation tracker is unavailable. Spans from all replicas
// federate into an infection tree (see Assemble) reproducing those
// observables per update.
//
// The package sits below node and transport in the import order: it may
// import only timestamp and store, so both the replica runtime and the
// wire protocol can record into it.
package trace

import (
	"encoding/json"
	"fmt"
	"sync"

	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// Mechanism identifies which epidemic process delivered an update to a
// replica.
type Mechanism uint8

const (
	// MechUnknown marks a span whose delivery mechanism was not recorded.
	MechUnknown Mechanism = iota
	// MechOrigin marks the update's origination: a local client write
	// (hop 0 of its propagation).
	MechOrigin
	// MechDirectMail is a PostMail delivery (§1.2).
	MechDirectMail
	// MechRumorPush is a rumor pushed by the sender (§1.4).
	MechRumorPush
	// MechRumorPull is a rumor the receiver pulled (§1.4).
	MechRumorPull
	// MechAntiEntropy is an anti-entropy repair outside the peel-back
	// rounds (recent-update lists, full compares; §1.3).
	MechAntiEntropy
	// MechPeelBack is a repair shipped by a peel-back batch (§1.3, §1.5).
	MechPeelBack
)

// String names the mechanism as used in rendered trees, JSON and DOT
// output.
func (m Mechanism) String() string {
	switch m {
	case MechOrigin:
		return "origin"
	case MechDirectMail:
		return "direct-mail"
	case MechRumorPush:
		return "rumor-push"
	case MechRumorPull:
		return "rumor-pull"
	case MechAntiEntropy:
		return "anti-entropy"
	case MechPeelBack:
		return "peel-back"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the mechanism as its name.
func (m Mechanism) MarshalJSON() ([]byte, error) { return json.Marshal(m.String()) }

// UnmarshalJSON accepts a mechanism name.
func (m *Mechanism) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for _, c := range []Mechanism{MechOrigin, MechDirectMail, MechRumorPush,
		MechRumorPull, MechAntiEntropy, MechPeelBack} {
		if c.String() == s {
			*m = c
			return nil
		}
	}
	if s == "unknown" {
		*m = MechUnknown
		return nil
	}
	return fmt.Errorf("trace: unknown mechanism %q", s)
}

// HopUnknown is the hop count of a span whose causal distance from the
// origin could not be established (the sender carried no envelope, or its
// own hop count was unknown).
const HopUnknown int32 = -1

// SiteUnknown marks an unidentified sender. Site 0 is a real site in
// simulated clusters, so "unknown" needs an out-of-band value.
const SiteUnknown timestamp.SiteID = -1

// Hop is the provenance envelope an exchange payload carries alongside
// each entry: who is sending it and how many hops the update has taken to
// reach the sender. The receiver's hop count is Count+1, making hop
// numbers causal rather than inferred. The zero value means "no envelope"
// (Valid false) — a nil envelope slice costs nothing on the wire, keeping
// disabled tracing free.
type Hop struct {
	// Parent is the sending site.
	Parent timestamp.SiteID
	// Count is the sender's hop count for the update (0 at the origin),
	// or HopUnknown.
	Count int32
	// Valid distinguishes a real envelope from the zero value.
	Valid bool
}

// Sender returns the sending site, or SiteUnknown without an envelope.
func (h Hop) Sender() timestamp.SiteID {
	if h.Valid {
		return h.Parent
	}
	return SiteUnknown
}

// Span is one hop of one update's propagation: the application of a
// specific version (Stamp) at site To, delivered by From via Mech. At is
// in stamp units (wall nanoseconds on real nodes, ticks in simulation);
// Round is the receiving node's exchange-round counter.
type Span struct {
	Seq   uint64           `json:"seq"`
	Key   string           `json:"key"`
	Stamp timestamp.T      `json:"stamp"`
	From  timestamp.SiteID `json:"from"`
	To    timestamp.SiteID `json:"to"`
	Mech  Mechanism        `json:"mechanism"`
	Hop   int32            `json:"hop"`
	At    int64            `json:"at"`
	Round uint64           `json:"round"`
}

// Dump is the wire-friendly span report served by gossipd's TRACE verb
// and /trace admin route, and what gossipctl federates per replica.
type Dump struct {
	Site  timestamp.SiteID `json:"site"`
	Spans []Span           `json:"spans"`
}

// DefaultRingSize bounds the span ring when no capacity is given.
const DefaultRingSize = 4096

// curVersion is the tracer's current knowledge about one key: the newest
// stamp it has seen applied and the hop count it arrived with.
type curVersion struct {
	stamp timestamp.T
	hop   int32
}

// Tracer records hop spans into a bounded ring and answers provenance
// envelopes for outbound entries. A nil *Tracer is valid and disables
// everything: every method is nil-safe, so call sites carry no
// tracing-enabled branches.
type Tracer struct {
	site timestamp.SiteID

	mu   sync.Mutex
	buf  []Span
	next uint64 // total spans ever recorded
	cur  map[string]curVersion
}

// NewTracer builds a tracer for one site retaining the last capacity
// spans (DefaultRingSize when capacity <= 0). The per-key hop table is
// bounded by the same capacity, evicting the key with the oldest stamp.
func NewTracer(site timestamp.SiteID, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Tracer{
		site: site,
		buf:  make([]Span, capacity),
		cur:  make(map[string]curVersion),
	}
}

// Site returns the tracer's site ID.
func (t *Tracer) Site() timestamp.SiteID { return t.site }

// record appends one span. Caller holds t.mu.
func (t *Tracer) record(sp Span) {
	sp.Seq = t.next
	t.buf[t.next%uint64(len(t.buf))] = sp
	t.next++
}

// setCur updates the per-key hop table, keeping only the newest stamp per
// key and evicting the oldest-stamped key at capacity. Caller holds t.mu.
func (t *Tracer) setCur(key string, stamp timestamp.T, hop int32) {
	if cv, ok := t.cur[key]; ok {
		if stamp.Less(cv.stamp) {
			return // stale version
		}
		t.cur[key] = curVersion{stamp: stamp, hop: hop}
		return
	}
	for len(t.cur) >= len(t.buf) {
		victim := ""
		var oldest timestamp.T
		first := true
		for k, cv := range t.cur {
			if first || cv.stamp.Less(oldest) {
				victim, oldest, first = k, cv.stamp, false
			}
		}
		delete(t.cur, victim)
	}
	t.cur[key] = curVersion{stamp: stamp, hop: hop}
}

// RecordLocal records an update's origination at this site: hop 0, the
// span's From equal to its To, At equal to the stamp's time component
// (time zero of the propagation).
func (t *Tracer) RecordLocal(key string, stamp timestamp.T, round uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.setCur(key, stamp, 0)
	t.record(Span{
		Key: key, Stamp: stamp,
		From: t.site, To: t.site,
		Mech: MechOrigin, Hop: 0,
		At: stamp.Time, Round: round,
	})
}

// RecordApply records the application of an update that originated
// elsewhere. env is the provenance envelope the entry arrived with (zero
// Hop when the sender carried none); from identifies the sender when it
// is known out of band (transport request headers, exchange stats) and is
// superseded by the envelope's Parent when an envelope is present. at is
// the receiving replica's clock reading, in stamp units.
func (t *Tracer) RecordApply(key string, stamp timestamp.T, from timestamp.SiteID, env Hop, mech Mechanism, at int64, round uint64) {
	if t == nil {
		return
	}
	hop := HopUnknown
	if env.Valid && env.Count >= 0 {
		hop = env.Count + 1
	}
	src := from
	if env.Valid {
		src = env.Parent
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.setCur(key, stamp, hop)
	t.record(Span{
		Key: key, Stamp: stamp,
		From: src, To: t.site,
		Mech: mech, Hop: hop,
		At: at, Round: round,
	})
}

// Envelope returns the provenance envelope for sending key at the given
// version from this site: Parent is this site, Count the hop count the
// version arrived here with (HopUnknown when the tracer has no record of
// that exact version). A nil tracer returns the zero Hop — no envelope.
func (t *Tracer) Envelope(key string, stamp timestamp.T) Hop {
	if t == nil {
		return Hop{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.envelopeLocked(key, stamp)
}

func (t *Tracer) envelopeLocked(key string, stamp timestamp.T) Hop {
	h := Hop{Parent: t.site, Count: HopUnknown, Valid: true}
	if cv, ok := t.cur[key]; ok && cv.stamp == stamp {
		h.Count = cv.hop
	}
	return h
}

// Envelopes returns one envelope per entry, or nil for a nil tracer or an
// empty batch — the nil slice is what keeps disabled tracing free on the
// wire (gob omits the field entirely).
func (t *Tracer) Envelopes(entries []store.Entry) []Hop {
	if t == nil || len(entries) == 0 {
		return nil
	}
	out := make([]Hop, len(entries))
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, e := range entries {
		out[i] = t.envelopeLocked(e.Key, e.Stamp)
	}
	return out
}

// Len returns the number of spans currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	return t.SpansFor("")
}

// SpansFor returns the retained spans for one key (all keys when key is
// empty), oldest first.
func (t *Tracer) SpansFor(key string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	start := uint64(0)
	if t.next > n {
		start = t.next - n
	}
	var out []Span
	for seq := start; seq < t.next; seq++ {
		sp := t.buf[seq%n]
		if key == "" || sp.Key == key {
			out = append(out, sp)
		}
	}
	return out
}

// DumpFor packages this tracer's spans for one key (all keys when key is
// empty) in the wire shape served by gossipd.
func (t *Tracer) DumpFor(key string) Dump {
	if t == nil {
		return Dump{Site: SiteUnknown}
	}
	return Dump{Site: t.site, Spans: t.SpansFor(key)}
}
