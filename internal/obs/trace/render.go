package trace

import (
	"fmt"
	"io"
)

// Render writes the infection tree as ASCII, one line per site:
//
//	key "greeting" version 1754… (site 1) — 3/3 sites
//	site 1  origin       hop 0  +0.000s
//	└─ site 2  rumor-push   hop 1  +0.013s
//	   └─ site 3  anti-entropy hop 2  +0.041s
//
// Delays are relative to the origination, scaled to seconds by
// secondsPerUnit (1e-9 for wall-nanosecond stamps, 1 for simulated
// ticks).
func (tr *Tree) Render(w io.Writer, secondsPerUnit float64) {
	if secondsPerUnit <= 0 {
		secondsPerUnit = 1e-9
	}
	fmt.Fprintf(w, "key %q version %s — %d sites\n", tr.Key, tr.Stamp, len(tr.nodes))
	seen := make(map[*TreeNode]bool)
	if tr.Root != nil {
		fmt.Fprintf(w, "site %d  %s  hop 0  +0.000s\n", tr.Root.Site, tr.Root.Mech)
		seen[tr.Root] = true
		tr.renderChildren(w, tr.Root, "", secondsPerUnit, seen)
	}
	for _, o := range tr.Orphans {
		if seen[o] {
			continue
		}
		fmt.Fprintf(w, "?─ %s   (parent site %d recorded no span)\n", tr.nodeLine(o, secondsPerUnit), o.From)
		seen[o] = true
		tr.renderChildren(w, o, "   ", secondsPerUnit, seen)
	}
}

func (tr *Tree) renderChildren(w io.Writer, n *TreeNode, prefix string, spu float64, seen map[*TreeNode]bool) {
	for i, c := range n.Children {
		if seen[c] {
			continue // defensive: malformed span sets could alias nodes
		}
		seen[c] = true
		connector, childPrefix := "├─ ", prefix+"│  "
		if i == len(n.Children)-1 {
			connector, childPrefix = "└─ ", prefix+"   "
		}
		fmt.Fprintf(w, "%s%s%s\n", prefix, connector, tr.nodeLine(c, spu))
		tr.renderChildren(w, c, childPrefix, spu, seen)
	}
}

func (tr *Tree) nodeLine(n *TreeNode, spu float64) string {
	hop := "hop ?"
	if n.Hop != HopUnknown {
		hop = fmt.Sprintf("hop %d", n.Hop)
	}
	return fmt.Sprintf("site %d  %s  %s  +%.3fs", n.Site, n.Mech, hop,
		float64(tr.delayUnits(n))*spu)
}

// DOT writes the infection tree in Graphviz DOT format: one node per
// site, one edge per infection labelled with its mechanism and hop count.
func (tr *Tree) DOT(w io.Writer) {
	fmt.Fprintf(w, "digraph infection {\n")
	fmt.Fprintf(w, "  label=%q;\n", fmt.Sprintf("%s @ %s", tr.Key, tr.Stamp))
	for _, site := range tr.Sites() {
		n := tr.nodes[site]
		shape := "ellipse"
		if n.Mech == MechOrigin {
			shape = "doublecircle"
		}
		fmt.Fprintf(w, "  s%d [label=\"site %d\", shape=%s];\n", site, site, shape)
	}
	for _, site := range tr.Sites() {
		n := tr.nodes[site]
		if n.Mech == MechOrigin {
			continue
		}
		if parent, ok := tr.nodes[n.From]; ok && parent != n {
			hop := "?"
			if n.Hop != HopUnknown {
				hop = fmt.Sprintf("%d", n.Hop)
			}
			fmt.Fprintf(w, "  s%d -> s%d [label=\"%s/hop %s\"];\n", parent.Site, n.Site, n.Mech, hop)
		}
	}
	fmt.Fprintf(w, "}\n")
}
