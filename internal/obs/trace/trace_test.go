package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

func stamp(t int64, site timestamp.SiteID) timestamp.T {
	return timestamp.T{Time: t, Site: site}
}

func TestMechanismJSONRoundTrip(t *testing.T) {
	for _, m := range []Mechanism{MechUnknown, MechOrigin, MechDirectMail,
		MechRumorPush, MechRumorPull, MechAntiEntropy, MechPeelBack} {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back Mechanism
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if back != m {
			t.Errorf("round trip %v -> %s -> %v", m, b, back)
		}
	}
	var m Mechanism
	if err := json.Unmarshal([]byte(`"bogus"`), &m); err == nil {
		t.Error("bogus mechanism accepted")
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	tr.RecordLocal("k", stamp(1, 1), 0)
	tr.RecordApply("k", stamp(1, 1), 2, Hop{}, MechDirectMail, 5, 0)
	if env := tr.Envelope("k", stamp(1, 1)); env.Valid {
		t.Errorf("nil tracer produced an envelope: %+v", env)
	}
	if hops := tr.Envelopes([]store.Entry{{Key: "k"}}); hops != nil {
		t.Errorf("nil tracer produced envelopes: %v", hops)
	}
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Error("nil tracer retained spans")
	}
	if d := tr.DumpFor(""); d.Site != SiteUnknown || d.Spans != nil {
		t.Errorf("nil tracer dump = %+v", d)
	}
}

func TestRecordAndEnvelope(t *testing.T) {
	tr := NewTracer(1, 16)
	s := stamp(10, 1)
	tr.RecordLocal("k", s, 3)

	env := tr.Envelope("k", s)
	if !env.Valid || env.Parent != 1 || env.Count != 0 {
		t.Fatalf("origin envelope = %+v", env)
	}
	// A version the tracer never saw gets an envelope with unknown count.
	if env := tr.Envelope("k", stamp(99, 2)); !env.Valid || env.Count != HopUnknown {
		t.Errorf("unseen-version envelope = %+v", env)
	}
	if env := tr.Envelope("other", s); !env.Valid || env.Count != HopUnknown {
		t.Errorf("unseen-key envelope = %+v", env)
	}

	// Receiving with a hop-2 envelope makes this site hop 3.
	rx := NewTracer(7, 16)
	rx.RecordApply("k", s, SiteUnknown, Hop{Parent: 4, Count: 2, Valid: true}, MechRumorPush, 12, 1)
	spans := rx.SpansFor("k")
	if len(spans) != 1 {
		t.Fatalf("spans = %v", spans)
	}
	sp := spans[0]
	if sp.Hop != 3 || sp.From != 4 || sp.To != 7 || sp.Mech != MechRumorPush || sp.At != 12 || sp.Round != 1 {
		t.Errorf("span = %+v", sp)
	}
	if env := rx.Envelope("k", s); env.Count != 3 {
		t.Errorf("forwarded envelope = %+v", env)
	}

	// No envelope at all -> unknown hop, sender from the out-of-band site.
	rx.RecordApply("k2", s, 5, Hop{}, MechAntiEntropy, 13, 1)
	sp = rx.SpansFor("k2")[0]
	if sp.Hop != HopUnknown || sp.From != 5 {
		t.Errorf("no-envelope span = %+v", sp)
	}
	// Unknown hops stay unknown when forwarded.
	fwd := rx.Envelope("k2", s)
	next := NewTracer(9, 16)
	next.RecordApply("k2", s, SiteUnknown, fwd, MechRumorPull, 14, 0)
	if sp := next.SpansFor("k2")[0]; sp.Hop != HopUnknown || sp.From != 7 {
		t.Errorf("forwarded-unknown span = %+v", sp)
	}
}

func TestSpanRingWrapsAndFilters(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 6; i++ {
		key := "a"
		if i%2 == 1 {
			key = "b"
		}
		tr.RecordLocal(key, stamp(int64(i+1), 1), 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d", tr.Len())
	}
	spans := tr.Spans()
	if len(spans) != 4 || spans[0].Seq != 2 || spans[3].Seq != 5 {
		t.Fatalf("spans = %+v", spans)
	}
	for _, sp := range tr.SpansFor("b") {
		if sp.Key != "b" {
			t.Errorf("filter leaked %+v", sp)
		}
	}
}

func TestCurEvictionKeepsNewestStamps(t *testing.T) {
	tr := NewTracer(1, 2) // hop table capacity 2
	tr.RecordLocal("old", stamp(1, 1), 0)
	tr.RecordLocal("mid", stamp(2, 1), 0)
	tr.RecordLocal("new", stamp(3, 1), 0) // evicts "old"
	if env := tr.Envelope("old", stamp(1, 1)); env.Count != HopUnknown {
		t.Errorf("evicted key still tracked: %+v", env)
	}
	for _, k := range []string{"mid", "new"} {
		if env := tr.Envelope(k, stamp(map[string]int64{"mid": 2, "new": 3}[k], 1)); env.Count != 0 {
			t.Errorf("%s lost its hop: %+v", k, env)
		}
	}
	// A stale version must not clobber a newer one.
	tr.RecordApply("new", stamp(2, 2), 4, Hop{Parent: 4, Count: 0, Valid: true}, MechDirectMail, 5, 0)
	if env := tr.Envelope("new", stamp(3, 1)); env.Count != 0 {
		t.Errorf("stale apply clobbered hop table: %+v", env)
	}
}

// buildSpans simulates 0 -> {1 by push, 2 by mail}, 1 -> 3 by anti-entropy.
func buildSpans() []Span {
	s := stamp(100, 0)
	return []Span{
		{Key: "k", Stamp: s, From: 0, To: 0, Mech: MechOrigin, Hop: 0, At: 100},
		{Key: "k", Stamp: s, From: 0, To: 1, Mech: MechRumorPush, Hop: 1, At: 101},
		{Key: "k", Stamp: s, From: 0, To: 2, Mech: MechDirectMail, Hop: 1, At: 102},
		{Key: "k", Stamp: s, From: 1, To: 3, Mech: MechAntiEntropy, Hop: 2, At: 104},
		// A later duplicate delivery to site 2 must lose to the first.
		{Key: "k", Stamp: s, From: 1, To: 2, Mech: MechRumorPull, Hop: 2, At: 110},
		// A different key must be ignored entirely.
		{Key: "other", Stamp: s, From: 0, To: 9, Mech: MechDirectMail, Hop: 1, At: 101},
	}
}

func TestAssembleTree(t *testing.T) {
	tr := Assemble("k", buildSpans())
	if tr == nil {
		t.Fatal("no tree")
	}
	if tr.Root == nil || tr.Root.Site != 0 {
		t.Fatalf("root = %+v", tr.Root)
	}
	sites := tr.Sites()
	if len(sites) != 4 {
		t.Fatalf("sites = %v", sites)
	}
	if n := tr.Node(2); n.Mech != MechDirectMail || n.At != 102 {
		t.Errorf("duplicate delivery won: %+v", n)
	}
	if got := len(tr.Root.Children); got != 2 {
		t.Fatalf("root children = %d", got)
	}
	if n := tr.Node(3); n.Hop != 2 || tr.Node(1).Children[0] != n {
		t.Errorf("site 3 not under site 1: %+v", n)
	}
	// Hop consistency: every child is its parent's hop + 1.
	for _, site := range sites {
		n := tr.Node(site)
		for _, c := range n.Children {
			if c.Hop != n.Hop+1 {
				t.Errorf("site %d hop %d under parent hop %d", c.Site, c.Hop, n.Hop)
			}
		}
	}
	if len(tr.Orphans) != 0 {
		t.Errorf("orphans = %+v", tr.Orphans)
	}

	if Assemble("missing", buildSpans()) != nil {
		t.Error("tree for untraced key")
	}
}

func TestAssemblePicksNewestVersion(t *testing.T) {
	old, new_ := stamp(10, 0), stamp(20, 1)
	spans := []Span{
		{Key: "k", Stamp: old, From: 0, To: 0, Mech: MechOrigin, Hop: 0, At: 10},
		{Key: "k", Stamp: old, From: 0, To: 1, Mech: MechDirectMail, Hop: 1, At: 11},
		{Key: "k", Stamp: new_, From: 1, To: 1, Mech: MechOrigin, Hop: 0, At: 20},
		{Key: "k", Stamp: new_, From: 1, To: 0, Mech: MechRumorPush, Hop: 1, At: 21},
	}
	tr := Assemble("k", spans)
	if tr.Stamp != new_ {
		t.Fatalf("stamp = %v", tr.Stamp)
	}
	if tr.Root == nil || tr.Root.Site != 1 || len(tr.Sites()) != 2 {
		t.Fatalf("tree = %+v sites=%v", tr.Root, tr.Sites())
	}
}

func TestTreeObservables(t *testing.T) {
	tr := Assemble("k", buildSpans())
	if got := tr.TLastUnits(); got != 4 {
		t.Errorf("t_last = %d, want 4", got)
	}
	// Delays 0, 1, 2, 4 over 4 sites.
	if got := tr.TAvgUnits(); got != 7.0/4 {
		t.Errorf("t_avg = %v, want %v", got, 7.0/4)
	}
	if got := tr.Residue(5); got != 0.2 {
		t.Errorf("residue(5) = %v", got)
	}
	if got := tr.Residue(4); got != 0 {
		t.Errorf("residue(4) = %v", got)
	}
	hops := tr.HopHistogram()
	if hops["0"] != 1 || hops["1"] != 2 || hops["2"] != 1 {
		t.Errorf("hops = %v", hops)
	}
	mechs := tr.MechanismCounts()
	if mechs["origin"] != 1 || mechs["rumor-push"] != 1 || mechs["direct-mail"] != 1 || mechs["anti-entropy"] != 1 {
		t.Errorf("mechanisms = %v", mechs)
	}
	sum := tr.Summarize(5, 1)
	if sum.Sites != 4 || sum.TLastSeconds != 4 || sum.Residue != 0.2 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestAssembleOrphans(t *testing.T) {
	s := stamp(50, 3)
	spans := []Span{
		// No origin span; site 8's parent 3 recorded nothing either.
		{Key: "k", Stamp: s, From: 3, To: 8, Mech: MechAntiEntropy, Hop: HopUnknown, At: 55},
		{Key: "k", Stamp: s, From: 8, To: 9, Mech: MechRumorPush, Hop: HopUnknown, At: 56},
	}
	tr := Assemble("k", spans)
	if tr.Root != nil {
		t.Fatalf("root = %+v", tr.Root)
	}
	if len(tr.Orphans) != 1 || tr.Orphans[0].Site != 8 {
		t.Fatalf("orphans = %+v", tr.Orphans)
	}
	if len(tr.Orphans[0].Children) != 1 || tr.Orphans[0].Children[0].Site != 9 {
		t.Fatalf("orphan children = %+v", tr.Orphans[0].Children)
	}
	// t_last still measures from the stamp's time when the origin span is
	// missing.
	if got := tr.TLastUnits(); got != 6 {
		t.Errorf("t_last = %d", got)
	}
}

func TestRenderAndDOT(t *testing.T) {
	tr := Assemble("k", buildSpans())
	var buf, dot strings.Builder
	tr.Render(&buf, 1)
	out := buf.String()
	for _, want := range []string{`key "k"`, "site 0", "├─", "└─", "rumor-push", "anti-entropy", "+4.000s"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	tr.DOT(&dot)
	d := dot.String()
	for _, want := range []string{"digraph infection", "s0 -> s1", "s1 -> s3", "doublecircle"} {
		if !strings.Contains(d, want) {
			t.Errorf("dot missing %q:\n%s", want, d)
		}
	}
}
