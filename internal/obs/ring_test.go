package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"
)

func TestEventRingWraps(t *testing.T) {
	r := NewEventRing(3)
	for i := 0; i < 5; i++ {
		r.Append(EventRecord{Kind: "rumor", Count: i})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, rec := range snap {
		if want := uint64(i + 2); rec.Seq != want {
			t.Errorf("snap[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
		if rec.Count != i+2 {
			t.Errorf("snap[%d].Count = %d, want %d", i, rec.Count, i+2)
		}
	}
}

func TestEventRingPartial(t *testing.T) {
	r := NewEventRing(8)
	r.Append(EventRecord{Kind: "gc"})
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != "gc" || snap[0].Seq != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestEventRingSnapshotSince(t *testing.T) {
	r := NewEventRing(4)
	var cursor uint64
	for i := 0; i < 3; i++ {
		cursor = r.Append(EventRecord{Kind: "rumor", Count: i}) + 1
	}
	if recs, next := r.SnapshotSince(0); len(recs) != 3 || next != 3 {
		t.Fatalf("from zero: %d recs, next %d", len(recs), next)
	}
	// Nothing new yet.
	recs, next := r.SnapshotSince(cursor)
	if len(recs) != 0 || next != cursor {
		t.Fatalf("caught up: %d recs, next %d", len(recs), next)
	}
	// Incremental poll returns only the two new records.
	r.Append(EventRecord{Kind: "gc"})
	r.Append(EventRecord{Kind: "apply"})
	recs, next = r.SnapshotSince(cursor)
	if len(recs) != 2 || recs[0].Kind != "gc" || recs[1].Kind != "apply" || next != 5 {
		t.Fatalf("incremental: %+v next %d", recs, next)
	}
	// A cursor that fell behind the ring returns what is retained.
	for i := 0; i < 6; i++ {
		r.Append(EventRecord{Kind: "rumor"})
	}
	recs, next = r.SnapshotSince(cursor)
	if len(recs) != 4 || recs[0].Seq != 7 || next != 11 {
		t.Fatalf("lagged: %d recs, first seq %d, next %d", len(recs), recs[0].Seq, next)
	}
}

func TestEventRingHandlerSince(t *testing.T) {
	r := NewEventRing(8)
	for i := 0; i < 5; i++ {
		r.Append(EventRecord{Kind: "rumor", Count: i})
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(query string) (events []EventRecord, next uint64) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Events []EventRecord `json:"events"`
			Next   uint64        `json:"next"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Events, body.Next
	}

	events, next := get("")
	if len(events) != 5 || next != 5 {
		t.Fatalf("full poll: %d events, next %d", len(events), next)
	}
	r.Append(EventRecord{Kind: "gc"})
	events, next = get("?since=" + strconv.FormatUint(next, 10))
	if len(events) != 1 || events[0].Kind != "gc" || next != 6 {
		t.Fatalf("incremental poll: %+v next %d", events, next)
	}
	if resp, err := srv.Client().Get(srv.URL + "?since=bogus"); err == nil {
		if resp.StatusCode != 400 {
			t.Errorf("bad since status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestEventRingKeyFilter covers the server-side ?key= filter: primary-key
// matches, batch Keys matches, composition with ?n=, and the FilterByKey
// helper directly.
func TestEventRingKeyFilter(t *testing.T) {
	r := NewEventRing(16)
	r.Append(EventRecord{Kind: "update", Key: "alpha"})
	r.Append(EventRecord{Kind: "update", Key: "beta"})
	r.Append(EventRecord{Kind: "rumor", Keys: []string{"alpha", "gamma"}})
	r.Append(EventRecord{Kind: "gc"})
	r.Append(EventRecord{Kind: "update", Key: "alpha"})

	if got := FilterByKey(r.Snapshot(), "alpha"); len(got) != 3 {
		t.Fatalf("FilterByKey(alpha) = %d records, want 3", len(got))
	}
	if got := FilterByKey(r.Snapshot(), "gamma"); len(got) != 1 || got[0].Kind != "rumor" {
		t.Fatalf("FilterByKey(gamma) = %+v", got)
	}
	if got := FilterByKey(r.Snapshot(), "nope"); len(got) != 0 {
		t.Fatalf("FilterByKey(nope) = %d records, want 0", len(got))
	}

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	get := func(query string) []EventRecord {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Events []EventRecord `json:"events"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Events
	}
	if events := get("?key=alpha"); len(events) != 3 {
		t.Errorf("?key=alpha returned %d events, want 3", len(events))
	}
	// ?n applies after the key filter: the most recent alpha event.
	events := get("?key=alpha&n=1")
	if len(events) != 1 || events[0].Seq != 4 {
		t.Errorf("?key=alpha&n=1 = %+v", events)
	}
	if events := get("?key=missing"); len(events) != 0 {
		t.Errorf("?key=missing returned %d events", len(events))
	}
}

func TestEventRingHandler(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 6; i++ {
		r.Append(EventRecord{Kind: "anti-entropy", Site: 1})
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	var body struct {
		Events []EventRecord `json:"events"`
	}
	resp, err := srv.Client().Get(srv.URL + "?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Events) != 2 {
		t.Fatalf("events = %d", len(body.Events))
	}
	if body.Events[1].Seq != 5 {
		t.Errorf("last seq = %d", body.Events[1].Seq)
	}

	if resp, err := srv.Client().Get(srv.URL + "?n=bogus"); err == nil {
		if resp.StatusCode != 400 {
			t.Errorf("bad n status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}
