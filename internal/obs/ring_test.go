package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestEventRingWraps(t *testing.T) {
	r := NewEventRing(3)
	for i := 0; i < 5; i++ {
		r.Append(EventRecord{Kind: "rumor", Count: i})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, rec := range snap {
		if want := uint64(i + 2); rec.Seq != want {
			t.Errorf("snap[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
		if rec.Count != i+2 {
			t.Errorf("snap[%d].Count = %d, want %d", i, rec.Count, i+2)
		}
	}
}

func TestEventRingPartial(t *testing.T) {
	r := NewEventRing(8)
	r.Append(EventRecord{Kind: "gc"})
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != "gc" || snap[0].Seq != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestEventRingHandler(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 6; i++ {
		r.Append(EventRecord{Kind: "anti-entropy", Site: 1})
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	var body struct {
		Events []EventRecord `json:"events"`
	}
	resp, err := srv.Client().Get(srv.URL + "?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Events) != 2 {
		t.Fatalf("events = %d", len(body.Events))
	}
	if body.Events[1].Seq != 5 {
		t.Errorf("last seq = %d", body.Events[1].Seq)
	}

	if resp, err := srv.Client().Get(srv.URL + "?n=bogus"); err == nil {
		if resp.StatusCode != 400 {
			t.Errorf("bad n status = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}
