package obs

import (
	"strings"
	"testing"
)

func TestValidateExpositionAccepts(t *testing.T) {
	good := `# HELP up whether the target is up
# TYPE up gauge
up 1
# TYPE reqs_total counter
reqs_total{method="get",path="/a\"b"} 12 1700000000000
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="+Inf"} 2
lat_seconds_sum 0.3
lat_seconds_count 2
untyped_metric 3.5e-2
nan_metric NaN
inf_metric +Inf
`
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"empty":               "",
		"bad name":            "9metric 1\n",
		"bad value":           "metric one\n",
		"bad type":            "# TYPE m widget\nm 1\n",
		"duplicate type":      "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"type after samples":  "m 1\n# TYPE m counter\n",
		"unterminated labels": "m{a=\"b\" 1\n",
		"unquoted label":      "m{a=b} 1\n",
		"duplicate sample":    "m 1\nm 1\n",
		"bad timestamp":       "m 1 notatime\n",
		"histogram no inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram no sum":    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"histogram bare":      "# TYPE h histogram\nh 1\n",
	}
	for name, in := range cases {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
