package obs

import (
	"strconv"
	"time"

	"epidemic/internal/node"
)

// Metric names exposed for a node runtime. The *_total counters mirror
// node.Stats; the propagation histogram realises the paper's per-update
// delay distribution (Tables 1-4 measure its t_last / t_avg quantiles).
const (
	MetricUpdatesAccepted     = "epidemic_updates_accepted_total"
	MetricMailSent            = "epidemic_mail_sent_total"
	MetricMailFailures        = "epidemic_mail_failures_total"
	MetricAntiEntropyRuns     = "epidemic_anti_entropy_runs_total"
	MetricRumorRounds         = "epidemic_rumor_rounds_total"
	MetricEntriesSent         = "epidemic_entries_sent_total"
	MetricEntriesReceived     = "epidemic_entries_received_total"
	MetricEntriesApplied      = "epidemic_entries_applied_total"
	MetricFullCompares        = "epidemic_full_compares_total"
	MetricRedistributed       = "epidemic_redistributed_total"
	MetricCertificatesExpired = "epidemic_certificates_expired_total"
	MetricUpdatePropagation   = "epidemic_update_propagation_seconds"
	MetricPropagationTracked  = "epidemic_propagation_tracked"
	MetricHotRumors           = "epidemic_hot_rumors"
	MetricPeers               = "epidemic_peers"
	MetricStoreKeys           = "epidemic_store_keys"
	MetricStoreShards         = "epidemic_store_shards"

	// Outbound-engine names: the per-peer send-queue machinery direct mail
	// rides (enqueues, coalesced supersessions, overflow/shutdown drops,
	// drained batches, current depth) plus the receive-side batch counter.
	MetricOutboxEnqueued      = "epidemic_outbox_enqueued_total"
	MetricOutboxCoalesced     = "epidemic_outbox_coalesced_total"
	MetricOutboxDropped       = "epidemic_outbox_dropped_total"
	MetricOutboxBatches       = "epidemic_outbox_batches_total"
	MetricOutboxQueueDepth    = "epidemic_outbox_queue_depth"
	MetricMailBatchesReceived = "epidemic_mail_batches_received_total"

	// Transport-side names, fed from transport.Server.SetObserver by the
	// daemon (the kind label carries the request kind: mail, push-rumors,
	// pull-rumors, sync, full-sync, checksum).
	MetricTransportRequests = "epidemic_transport_requests_total"
	MetricTransportSeconds  = "epidemic_transport_request_seconds"

	// MetricExchangeSeconds is the initiator-side exchange latency
	// histogram, labelled mechanism="anti-entropy"|"rumor" — the source of
	// the cluster digest's p50/p99 columns.
	MetricExchangeSeconds = "epidemic_exchange_seconds"

	// Cluster-observatory names, fed by the daemon's digest collector.
	MetricClusterSites      = "epidemic_cluster_sites"
	MetricClusterStaleSites = "epidemic_cluster_stale_sites"
	MetricClusterStalls     = "epidemic_cluster_stalls_total"
	MetricClusterResidue    = "epidemic_cluster_residue"
)

// ObserveOptions configures InstrumentNode.
type ObserveOptions struct {
	// Ring, when set, records every node event.
	Ring *EventRing
	// Propagation, when set, tracks per-update infection times (it then
	// owns the propagation-histogram observations, deduplicated per
	// site); when nil, the bridge observes the histogram directly on
	// every apply event.
	Propagation *Propagation
	// SecondsPerUnit converts stamp units to seconds for the propagation
	// histogram; 0 means 1e-9 (wall-clock nanoseconds).
	SecondsPerUnit float64
	// Buckets overrides DefBuckets for the propagation histogram.
	Buckets []float64
	// SiteLabel adds a site="<id>" label to the per-node series, so
	// several nodes (e.g. a sim cluster) can share one registry.
	SiteLabel bool
	// WallTime stamps ring records with time.Now; enable it on real
	// daemons, leave it off for deterministic simulation.
	WallTime bool
}

// InstrumentNode registers n's counters and gauges on reg and returns the
// node.Config.OnEvent callback that completes the bridge (event ring,
// propagation tracking, the propagation histogram). The caller installs
// the callback — typically by setting it as cfg.OnEvent before node.New,
// or chaining it with an existing observer.
func InstrumentNode(reg *Registry, n *node.Node, opts ObserveOptions) func(node.Event) {
	var labels []Label
	if opts.SiteLabel {
		labels = []Label{{"site", strconv.Itoa(int(n.Site()))}}
	}
	spu := opts.SecondsPerUnit
	if spu <= 0 {
		spu = 1e-9
	}

	counter := func(name, help string, read func(node.Stats) int) {
		reg.CounterFunc(name, help, func() float64 {
			return float64(read(n.Stats()))
		}, labels...)
	}
	counter(MetricUpdatesAccepted, "Local client writes (updates and deletes) accepted.",
		func(s node.Stats) int { return s.UpdatesAccepted })
	counter(MetricMailSent, "Direct-mail postings delivered (PostMail, §1.2).",
		func(s node.Stats) int { return s.MailSent })
	counter(MetricMailFailures, "Direct-mail postings that failed outright.",
		func(s node.Stats) int { return s.MailFailed })
	counter(MetricAntiEntropyRuns, "Anti-entropy conversations executed (§1.3).",
		func(s node.Stats) int { return s.AntiEntropyRuns })
	counter(MetricRumorRounds, "Rumor-mongering rounds executed (§1.4).",
		func(s node.Stats) int { return s.RumorRuns })
	counter(MetricEntriesSent, "Entries transmitted from this node to peers in exchanges.",
		func(s node.Stats) int { return s.EntriesSent })
	counter(MetricEntriesReceived, "Entries received by this node from peers in exchanges.",
		func(s node.Stats) int { return s.EntriesReceived })
	counter(MetricEntriesApplied, "Transmitted entries that changed a replica.",
		func(s node.Stats) int { return s.EntriesApplied })
	counter(MetricFullCompares, "Anti-entropy conversations that fell back to full database compares.",
		func(s node.Stats) int { return s.FullCompares })
	counter(MetricRedistributed, "Repaired updates re-hotted or re-mailed (§1.5).",
		func(s node.Stats) int { return s.Redistributed })
	counter(MetricCertificatesExpired, "Death certificates dropped by GC (§2.1).",
		func(s node.Stats) int { return s.CertificatesExpired })
	counter(MetricOutboxEnqueued, "Entries enqueued to per-peer outbound mail queues.",
		func(s node.Stats) int { return s.OutboxEnqueued })
	counter(MetricOutboxCoalesced, "Outbox enqueues absorbed by newest-stamp-wins coalescing.",
		func(s node.Stats) int { return s.OutboxCoalesced })
	counter(MetricOutboxDropped, "Outbox entries dropped (queue overflow, departed peers, shutdown).",
		func(s node.Stats) int { return s.OutboxDropped })
	counter(MetricOutboxBatches, "Outbox drains posted to peers (batched or per-entry).",
		func(s node.Stats) int { return s.OutboxBatches })
	counter(MetricMailBatchesReceived, "Batched mail frames applied by this replica.",
		func(s node.Stats) int { return s.MailBatchesReceived })
	reg.GaugeFunc(MetricOutboxQueueDepth, "Entries currently queued in the outbound mail engine across all peers.",
		func() float64 { return float64(n.Stats().OutboxDepth) }, labels...)

	reg.GaugeFunc(MetricHotRumors, "Updates currently on the hot-rumor (infective) list.",
		func() float64 { return float64(len(n.HotEntries())) }, labels...)
	reg.GaugeFunc(MetricPeers, "Peers currently in the replica's partner set.",
		func() float64 { return float64(len(n.Peers())) }, labels...)
	reg.GaugeFunc(MetricStoreKeys, "Keys held by the replica, death certificates included.",
		func() float64 { return float64(len(n.Store().Keys())) }, labels...)
	reg.Gauge(MetricStoreShards, "Lock stripes (shards) in the replica store.",
		labels...).Set(float64(n.Store().ShardCount()))

	// The propagation histogram is shared (no site label): the delay
	// distribution is a cluster-wide observable, t_last/t_avg in seconds.
	hist := reg.Histogram(MetricUpdatePropagation,
		"Delay from an update's origination to its application at a replica, in seconds.",
		opts.Buckets)
	if opts.Propagation != nil {
		// Shared like the histogram: the tracker spans the cluster, and the
		// registry's idempotent registration makes repeat calls harmless.
		tracked := opts.Propagation
		reg.GaugeFunc(MetricPropagationTracked,
			"Update keys currently tracked by the propagation tracker (capacity-bounded).",
			func() float64 { return float64(tracked.Tracked()) })
	}

	// Exchange latency by mechanism, shared across sites like the
	// propagation histogram (one latency distribution per registry).
	aeSeconds := reg.Histogram(MetricExchangeSeconds,
		"Initiator-side duration of one exchange, in seconds, by mechanism.",
		opts.Buckets, Label{"mechanism", "anti-entropy"})
	rumorSeconds := reg.Histogram(MetricExchangeSeconds,
		"Initiator-side duration of one exchange, in seconds, by mechanism.",
		opts.Buckets, Label{"mechanism", "rumor"})

	site := int32(n.Site())
	prop := opts.Propagation
	ring := opts.Ring
	wall := opts.WallTime
	return func(e node.Event) {
		switch e.Kind {
		case node.EventAntiEntropy:
			if e.Duration > 0 {
				aeSeconds.Observe(e.Duration.Seconds())
			}
		case node.EventRumor:
			if e.Duration > 0 {
				rumorSeconds.Observe(e.Duration.Seconds())
			}
		case node.EventUpdate:
			if prop != nil {
				prop.Originated(e.Key, site, e.Stamp.Time)
			}
		case node.EventApply:
			if prop != nil {
				prop.Infected(e.Key, site, e.Stamp.Time, n.Store().Now())
			} else {
				d := float64(n.Store().Now()-e.Stamp.Time) * spu
				if d < 0 {
					d = 0 // cross-site clock skew
				}
				hist.Observe(d)
			}
		}
		if ring != nil {
			rec := EventRecord{
				Site:            site,
				Kind:            e.Kind.String(),
				Peer:            int32(e.Peer),
				Key:             e.Key,
				Keys:            e.Keys,
				Count:           e.Count,
				EntriesSent:     e.Stats.EntriesSent,
				EntriesReceived: e.Stats.EntriesReceived,
				EntriesApplied:  e.Stats.EntriesApplied,
				FullCompare:     e.Stats.FullCompare,
			}
			if !e.Stamp.IsZero() {
				rec.Stamp = e.Stamp.String()
			}
			if wall {
				rec.UnixNanos = time.Now().UnixNano()
			}
			ring.Append(rec)
		}
	}
}
