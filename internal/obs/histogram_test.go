package obs

import (
	"math"
	"testing"
)

func TestQuantileEmptyAndInvalid(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("empty histogram quantile = %v, want NaN", v)
	}
	h.Observe(1.5)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if v := h.Quantile(q); !math.IsNaN(v) {
			t.Errorf("Quantile(%v) = %v, want NaN", q, v)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	// 100 samples uniformly in the (1,2] bucket: the estimator assumes a
	// uniform spread, so the q-quantile lands at 1 + q within the bucket.
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	cases := []struct{ q, want float64 }{
		{0, 1.0},
		{0.25, 1.25},
		{0.5, 1.5},
		{0.99, 1.99},
		{1, 2.0},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	// 50 samples in (0,1], 30 in (1,2], 20 in (2,4].
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 20; i++ {
		h.Observe(3)
	}
	cases := []struct{ q, want float64 }{
		{0.25, 0.5}, // rank 25 of 50 in [0,1] -> 0.5
		{0.5, 1.0},  // rank 50 = exactly the first bucket boundary
		{0.65, 1.5}, // rank 65: 15 of 30 into [1,2] -> 1.5
		{0.9, 3.0},  // rank 90: 10 of 20 into [2,4] -> 3.0
		{1.0, 4.0},  // top of the last occupied bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileOverflowClamps(t *testing.T) {
	// Samples beyond the last finite bound saturate the estimate at that
	// bound instead of reporting +Inf.
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("overflow Quantile(0.5) = %v, want clamp to 4", got)
	}
	if got := h.Quantile(0.99); got != 4 {
		t.Errorf("overflow Quantile(0.99) = %v, want clamp to 4", got)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	h := newHistogram(DefBuckets)
	h.Observe(0.007) // lands in (0.005, 0.01]
	for _, q := range []float64{0.5, 0.99} {
		got := h.Quantile(q)
		if got <= 0.005 || got > 0.01 {
			t.Errorf("Quantile(%v) = %v, want within (0.005, 0.01]", q, got)
		}
	}
}
