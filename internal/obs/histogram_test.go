package obs

import (
	"math"
	"testing"
)

func TestQuantileEmptyAndInvalid(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("empty histogram quantile = %v, want NaN", v)
	}
	h.Observe(1.5)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if v := h.Quantile(q); !math.IsNaN(v) {
			t.Errorf("Quantile(%v) = %v, want NaN", q, v)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	// 100 samples uniformly in the (1,2] bucket: the estimator assumes a
	// uniform spread, so the q-quantile lands at 1 + q within the bucket.
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	cases := []struct{ q, want float64 }{
		{0, 1.0},
		{0.25, 1.25},
		{0.5, 1.5},
		{0.99, 1.99},
		{1, 2.0},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	// 50 samples in (0,1], 30 in (1,2], 20 in (2,4].
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 20; i++ {
		h.Observe(3)
	}
	cases := []struct{ q, want float64 }{
		{0.25, 0.5}, // rank 25 of 50 in [0,1] -> 0.5
		{0.5, 1.0},  // rank 50 = exactly the first bucket boundary
		{0.65, 1.5}, // rank 65: 15 of 30 into [1,2] -> 1.5
		{0.9, 3.0},  // rank 90: 10 of 20 into [2,4] -> 3.0
		{1.0, 4.0},  // top of the last occupied bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileOverflowClamps(t *testing.T) {
	// Samples beyond the last finite bound saturate the estimate at that
	// bound instead of reporting +Inf.
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("overflow Quantile(0.5) = %v, want clamp to 4", got)
	}
	if got := h.Quantile(0.99); got != 4 {
		t.Errorf("overflow Quantile(0.99) = %v, want clamp to 4", got)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	h := newHistogram(DefBuckets)
	h.Observe(0.007) // lands in (0.005, 0.01]
	for _, q := range []float64{0.5, 0.99} {
		got := h.Quantile(q)
		if got <= 0.005 || got > 0.01 {
			t.Errorf("Quantile(%v) = %v, want within (0.005, 0.01]", q, got)
		}
	}
}

// TestQuantileSingleSampleBoundaries pins the exact single-sample edge
// behavior the dashboards render: q=0 is the lower edge of the sample's
// bucket, q=1 its upper edge — the estimate never leaves the one bucket
// holding data.
func TestQuantileSingleSampleBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(3) // the only sample, in (2,4]
	if got := h.Quantile(0); got != 2 {
		t.Errorf("single-sample Quantile(0) = %v, want lower edge 2", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("single-sample Quantile(1) = %v, want upper edge 4", got)
	}
}

// TestQuantileZeroSkipsEmptyBuckets is the edge-case fix: with leading
// empty buckets, q=0 must report the lower edge of the first bucket that
// actually holds samples, not the first bucket's bound.
func TestQuantileZeroSkipsEmptyBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 5; i++ {
		h.Observe(3) // (2,4]: buckets (0,1] and (1,2] stay empty
	}
	if got := h.Quantile(0); got != 2 {
		t.Errorf("Quantile(0) = %v, want 2 (lower edge of first nonempty bucket)", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
}

// TestQuantileFromCounts checks the allocation-free snapshot form agrees
// with Quantile and that the CountsInto+QuantileFromCounts path performs
// zero allocations — the contract the history sampler's hot path relies
// on.
func TestQuantileFromCounts(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		h.Observe(1.5)
	}
	scratch := make([]uint64, h.NumBuckets())
	total := h.CountsInto(scratch)
	if total != 80 {
		t.Fatalf("CountsInto total = %d, want 80", total)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		want := h.Quantile(q)
		got := h.QuantileFromCounts(scratch, total, q)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("QuantileFromCounts(%v) = %v, Quantile = %v", q, got, want)
		}
	}
	if got := h.QuantileFromCounts(scratch, 0, 0.5); !math.IsNaN(got) {
		t.Errorf("zero-total QuantileFromCounts = %v, want NaN", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		total := h.CountsInto(scratch)
		h.QuantileFromCounts(scratch, total, 0.5)
		h.QuantileFromCounts(scratch, total, 0.99)
	})
	if allocs != 0 {
		t.Errorf("CountsInto+QuantileFromCounts allocates %v per run, want 0", allocs)
	}
}
