package obs

import (
	"math"
	"testing"
)

func TestPropagationObservables(t *testing.T) {
	p := NewPropagation(1, nil) // ticks are seconds
	p.Originated("k", 0, 10)
	p.Infected("k", 1, 10, 12)
	p.Infected("k", 2, 10, 15)
	p.Infected("k", 2, 10, 99) // duplicate: first infection wins

	if got := p.InfectedCount("k"); got != 3 {
		t.Errorf("infected = %d", got)
	}
	if last, ok := p.TLast("k"); !ok || last != 5 {
		t.Errorf("t_last = %v, %v", last, ok)
	}
	if avg, ok := p.TAvg("k"); !ok || math.Abs(avg-(0+2+5)/3.0) > 1e-12 {
		t.Errorf("t_avg = %v, %v", avg, ok)
	}
	if res := p.Residue("k", 5); res != 2.0/5 {
		t.Errorf("residue = %v", res)
	}
	if res := p.Residue("unknown", 5); res != 1 {
		t.Errorf("unknown residue = %v", res)
	}
}

func TestPropagationReupdateResets(t *testing.T) {
	p := NewPropagation(1, nil)
	p.Originated("k", 0, 10)
	p.Infected("k", 1, 10, 11)
	// A newer version of k resets the track.
	p.Originated("k", 2, 20)
	if got := p.InfectedCount("k"); got != 1 {
		t.Errorf("infected after re-update = %d", got)
	}
	// Stale applies of the superseded version are ignored.
	p.Infected("k", 3, 10, 25)
	if got := p.InfectedCount("k"); got != 1 {
		t.Errorf("stale apply counted: %d", got)
	}
}

func TestPropagationEviction(t *testing.T) {
	p := NewPropagation(1, nil)
	p.SetCapacity(2)

	p.Originated("old", 0, 10)
	p.Infected("old", 1, 10, 12)
	p.Originated("mid", 0, 20)
	p.Infected("mid", 1, 20, 23)
	if got := p.Tracked(); got != 2 {
		t.Fatalf("tracked = %d", got)
	}

	// Admitting a third key evicts the oldest origin ("old") and leaves
	// the retained keys' observables untouched.
	p.Originated("new", 0, 30)
	p.Infected("new", 1, 30, 34)
	if got := p.Tracked(); got != 2 {
		t.Fatalf("tracked after eviction = %d", got)
	}
	if _, ok := p.TLast("old"); ok {
		t.Error("evicted key still tracked")
	}
	if res := p.Residue("old", 2); res != 1 {
		t.Errorf("evicted residue = %v", res)
	}
	if last, ok := p.TLast("mid"); !ok || last != 3 {
		t.Errorf("retained t_last(mid) = %v, %v", last, ok)
	}
	if last, ok := p.TLast("new"); !ok || last != 4 {
		t.Errorf("retained t_last(new) = %v, %v", last, ok)
	}
	if res := p.Residue("mid", 2); res != 0 {
		t.Errorf("retained residue(mid) = %v", res)
	}
	if keys := p.Keys(); len(keys) != 2 || keys[0] != "mid" || keys[1] != "new" {
		t.Errorf("keys = %v", keys)
	}

	// Shrinking evicts immediately.
	p.SetCapacity(1)
	if keys := p.Keys(); len(keys) != 1 || keys[0] != "new" {
		t.Errorf("keys after shrink = %v", keys)
	}
}

func TestPropagationHistogramAndSkew(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("epidemic_update_propagation_seconds", "x", []float64{1, 10})
	p := NewPropagation(1, h)
	p.Originated("k", 0, 100)
	p.Infected("k", 1, 100, 105)
	p.Infected("k", 2, 100, 95) // skewed clock: clamped to 0
	if h.Count() != 2 {
		t.Errorf("histogram count = %d", h.Count())
	}
	if h.Sum() != 5 {
		t.Errorf("histogram sum = %v", h.Sum())
	}
	if last, _ := p.TLast("k"); last != 5 {
		t.Errorf("t_last with skew = %v", last)
	}
	if keys := p.Keys(); len(keys) != 1 || keys[0] != "k" {
		t.Errorf("keys = %v", keys)
	}
}
