package cluster

// EdgeTracker reduces the StallDetector's level-triggered output to
// rising edges: a stall that persists across many Check calls reports
// once, and only a genuine clear-then-reappear produces a second edge.
// It is what guarantees "exactly one flight-recorder dump (and one event,
// one counter increment) per distinct incident" — the daemon's digest
// collector and the simulator both feed it every detector pass.
//
// Incidents are keyed (site, reason); Detail and age may evolve while an
// incident stays active without retriggering. Not safe for concurrent
// use; callers serialize Update the same way they serialize Check.
type EdgeTracker struct {
	active map[[2]int64]bool
}

// NewEdgeTracker builds an empty tracker.
func NewEdgeTracker() *EdgeTracker {
	return &EdgeTracker{active: make(map[[2]int64]bool)}
}

func edgeKey(s Stall) [2]int64 {
	var reason int64
	switch s.Reason {
	case ReasonStaleDigest:
		reason = 1
	case ReasonResidueStuck:
		reason = 2
	case ReasonChecksumMismatch:
		reason = 3
	default:
		for _, c := range s.Reason {
			reason = reason*31 + int64(c)
		}
	}
	return [2]int64{int64(s.Site), reason}
}

// Update observes one detector pass and returns the stalls that are newly
// active — present now, absent on the previous call. Stalls missing from
// this pass are cleared, so their next appearance is a fresh edge.
func (e *EdgeTracker) Update(stalls []Stall) []Stall {
	if e.active == nil {
		e.active = make(map[[2]int64]bool)
	}
	seen := make(map[[2]int64]bool, len(stalls))
	var rising []Stall
	for _, s := range stalls {
		k := edgeKey(s)
		seen[k] = true
		if !e.active[k] {
			e.active[k] = true
			rising = append(rising, s)
		}
	}
	for k := range e.active {
		if !seen[k] {
			delete(e.active, k)
		}
	}
	return rising
}

// ActiveCount returns how many incidents are currently active.
func (e *EdgeTracker) ActiveCount() int { return len(e.active) }
