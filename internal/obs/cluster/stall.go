package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Stall reasons reported by the detector.
const (
	// ReasonStaleDigest : a site's digest has not refreshed within the
	// staleness window — the node is down, partitioned, or its exchanges
	// have stopped carrying digests.
	ReasonStaleDigest = "stale-digest"
	// ReasonResidueStuck : a site reports nonzero propagation residue that
	// has stopped decaying — some update is no longer making progress
	// toward full infection (the dying feeble epidemic of §1.4).
	ReasonResidueStuck = "residue-stuck"
	// ReasonChecksumMismatch : fresh digests disagree on the live database
	// checksum for longer than anti-entropy should need to reconcile them
	// — a convergence storm rather than normal in-flight propagation.
	ReasonChecksumMismatch = "checksum-mismatch"
)

// ClusterWide marks a Stall that concerns the whole cluster rather than
// one site.
const ClusterWide int32 = -1

// Stall is one convergence problem the detector flagged.
type Stall struct {
	// Site is the site concerned, or ClusterWide (-1).
	Site int32 `json:"site"`
	// Reason is one of the Reason* constants.
	Reason string `json:"reason"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail"`
	// AgeSeconds is how long the condition has persisted.
	AgeSeconds float64 `json:"age_seconds"`
}

// StallConfig tunes the detector. All windows are in stamp units.
type StallConfig struct {
	// StaleAfter flags a digest older than this (typically k times the
	// anti-entropy interval, k around 3). <= 0 disables staleness checks.
	StaleAfter int64
	// ResidueWindow flags a site whose nonzero residue has not decreased
	// for this long. <= 0 disables the check.
	ResidueWindow int64
	// ChecksumWindow flags checksum disagreement among fresh digests
	// persisting beyond this. <= 0 disables the check.
	ChecksumWindow int64
	// SecondsPerUnit converts stamp units to seconds for Stall.AgeSeconds
	// (0 means 1e-9, wall-clock nanoseconds).
	SecondsPerUnit float64
}

// residueState tracks one site's last observed residue for the
// stopped-decaying check.
type residueState struct {
	value float64
	since int64
}

// StallDetector turns a digest view into a list of convergence stalls.
// Check keeps internal history (per-site residue trajectories, the start
// of a checksum disagreement), so one detector instance should observe
// one directory over time. Not safe for concurrent use; callers serialize
// Check (the daemon's collector loop already does).
type StallDetector struct {
	cfg           StallConfig
	residue       map[int32]residueState
	mismatch      bool  // checksums currently disagree
	mismatchSince int64 // when the disagreement started (valid when mismatch)
}

// NewStallDetector builds a detector.
func NewStallDetector(cfg StallConfig) *StallDetector {
	if cfg.SecondsPerUnit <= 0 {
		cfg.SecondsPerUnit = 1e-9
	}
	return &StallDetector{cfg: cfg, residue: make(map[int32]residueState)}
}

func (sd *StallDetector) seconds(units int64) float64 {
	if units < 0 {
		units = 0
	}
	return float64(units) * sd.cfg.SecondsPerUnit
}

// Check evaluates the digest view at time now (stamp units) and returns
// the active stalls, sorted by site then reason. An empty result means
// the cluster looks healthy from this replica's viewpoint.
func (sd *StallDetector) Check(now int64, digests []Digest) []Stall {
	var stalls []Stall

	// Stale digests: the site stopped refreshing.
	fresh := digests[:0:0]
	for _, dg := range digests {
		age := now - dg.Stamp
		if sd.cfg.StaleAfter > 0 && age > sd.cfg.StaleAfter {
			stalls = append(stalls, Stall{
				Site:       dg.Site,
				Reason:     ReasonStaleDigest,
				Detail:     fmt.Sprintf("digest last refreshed %.1fs ago", sd.seconds(age)),
				AgeSeconds: sd.seconds(age),
			})
			continue
		}
		fresh = append(fresh, dg)
	}

	// Residue stuck: nonzero residue that has not decreased since the
	// window opened. A decrease (or reaching zero) resets the clock.
	if sd.cfg.ResidueWindow > 0 {
		const eps = 1e-9
		seen := make(map[int32]bool, len(fresh))
		for _, dg := range fresh {
			seen[dg.Site] = true
			st, ok := sd.residue[dg.Site]
			if !ok || dg.Residue < st.value-eps || dg.Residue <= eps {
				sd.residue[dg.Site] = residueState{value: dg.Residue, since: now}
				continue
			}
			if age := now - st.since; age > sd.cfg.ResidueWindow {
				stalls = append(stalls, Stall{
					Site:       dg.Site,
					Reason:     ReasonResidueStuck,
					Detail:     fmt.Sprintf("residue %.2f not decaying", dg.Residue),
					AgeSeconds: sd.seconds(age),
				})
			}
		}
		for site := range sd.residue {
			if !seen[site] {
				delete(sd.residue, site) // departed or gone stale
			}
		}
	}

	// Checksum mismatch storm: fresh digests disagreeing for longer than
	// anti-entropy needs. Brief disagreement is normal (an update in
	// flight); persistence is the signal.
	if sd.cfg.ChecksumWindow > 0 && len(fresh) >= 2 {
		sums := make(map[uint64]bool, len(fresh))
		for _, dg := range fresh {
			sums[dg.Checksum] = true
		}
		if len(sums) > 1 {
			if !sd.mismatch {
				sd.mismatch = true
				sd.mismatchSince = now
			}
			if age := now - sd.mismatchSince; age > sd.cfg.ChecksumWindow {
				stalls = append(stalls, Stall{
					Site:       ClusterWide,
					Reason:     ReasonChecksumMismatch,
					Detail:     fmt.Sprintf("%d distinct checksums across %d fresh digests", len(sums), len(fresh)),
					AgeSeconds: sd.seconds(age),
				})
			}
		} else {
			sd.mismatch = false
		}
	}

	sort.Slice(stalls, func(i, j int) bool {
		if stalls[i].Site != stalls[j].Site {
			return stalls[i].Site < stalls[j].Site
		}
		return stalls[i].Reason < stalls[j].Reason
	})
	return stalls
}

// SiteStatus decorates one digest with reader-side staleness for the
// /cluster admin route and gossipctl status.
type SiteStatus struct {
	Digest
	// AgeSeconds is how old the digest is at the reporting replica; Stale
	// whether that exceeds the configured staleness window.
	AgeSeconds    float64 `json:"age_seconds"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Stale         bool    `json:"stale"`
}

// Trends summarizes the answering replica's recent telemetry history —
// windowed rates and short trajectories derived from the on-node time
// series (internal/obs/history), so one /cluster fetch carries both the
// instantaneous view and how the node got there. Trajectory slices are
// oldest-first, downsampled, and bounded; NaN-free by construction.
type Trends struct {
	// WindowSeconds is the look-back the rates and trajectories cover.
	WindowSeconds float64 `json:"window_seconds"`
	// RumorRatePerSec / ExchangeRatePerSec are windowed per-second rates
	// of rumor rounds and anti-entropy exchanges.
	RumorRatePerSec    float64 `json:"rumor_rate_per_sec"`
	ExchangeRatePerSec float64 `json:"exchange_rate_per_sec"`
	// OutboxDepth is the newest sampled queue depth; OutboxSlopePerSec its
	// change per second across the window (positive = backing up).
	OutboxDepth       float64 `json:"outbox_depth"`
	OutboxSlopePerSec float64 `json:"outbox_slope_per_sec"`
	// Trajectories for sparkline rendering: residue, cumulative
	// anti-entropy exchanges, and outbox depth.
	ResidueTrajectory  []float64 `json:"residue_trajectory,omitempty"`
	ExchangeTrajectory []float64 `json:"exchange_trajectory,omitempty"`
	OutboxTrajectory   []float64 `json:"outbox_trajectory,omitempty"`
}

// StatusReply is the /cluster response body: one replica's current view
// of the whole cluster, plus the convergence stalls it detects. The same
// shape feeds gossipctl status, watch, and top.
type StatusReply struct {
	// Site is the replica answering; Now its current time in stamp units.
	Site int32 `json:"site"`
	Now  int64 `json:"now"`
	// Status is "ok" or "degraded" (mirrors /healthz).
	Status string       `json:"status"`
	Sites  []SiteStatus `json:"sites"`
	Stalls []Stall      `json:"stalls,omitempty"`
	// Trends carries the answering replica's history-derived rates and
	// trajectories; nil when the telemetry sampler is disabled.
	Trends *Trends `json:"trends,omitempty"`
}

// BuildStatus assembles the status reply for a digest view at time now.
// staleAfter is the staleness window in stamp units; secondsPerUnit
// converts stamp units to seconds (0 means 1e-9).
func BuildStatus(self int32, now int64, digests []Digest, stalls []Stall, staleAfter int64, secondsPerUnit float64) StatusReply {
	if secondsPerUnit <= 0 {
		secondsPerUnit = 1e-9
	}
	toSec := func(units int64) float64 {
		if units < 0 {
			units = 0
		}
		return float64(units) * secondsPerUnit
	}
	reply := StatusReply{Site: self, Now: now, Status: "ok"}
	if len(stalls) > 0 {
		reply.Status = "degraded"
		reply.Stalls = stalls
	}
	for _, dg := range digests {
		age := now - dg.Stamp
		st := SiteStatus{
			Digest:        dg,
			AgeSeconds:    toSec(age),
			UptimeSeconds: toSec(dg.Stamp - dg.StartedAt),
			Stale:         staleAfter > 0 && age > staleAfter,
		}
		// Digests travel as JSON too: scrub any NaN that could sneak in
		// from a quantile over an empty histogram.
		if math.IsNaN(st.Residue) {
			st.Residue = 0
		}
		reply.Sites = append(reply.Sites, st)
	}
	return reply
}
