package cluster

import (
	"testing"
)

// edgeConfig is a detector config in small integer stamp units (think
// seconds): digests stale after 10, residue window 20, checksum window 15.
func edgeConfig() StallConfig {
	return StallConfig{StaleAfter: 10, ResidueWindow: 20, ChecksumWindow: 15, SecondsPerUnit: 1}
}

func digestAt(site int32, stamp int64) Digest {
	return Digest{Site: site, Stamp: stamp, Checksum: 42}
}

// TestEdgeTrackerOncePerIncident: a stall persisting across many detector
// passes produces exactly one rising edge — the flight-recorder
// per-incident guarantee.
func TestEdgeTrackerOncePerIncident(t *testing.T) {
	sd := NewStallDetector(edgeConfig())
	et := NewEdgeTracker()

	triggers := 0
	// Site 2 goes silent at stamp 0; site 1 keeps refreshing. Sweep the
	// clock across five checks — the stale stall persists in each.
	for now := int64(15); now <= 55; now += 10 {
		stalls := sd.Check(now, []Digest{digestAt(1, now), digestAt(2, 0)})
		if len(stalls) != 1 || stalls[0].Reason != ReasonStaleDigest || stalls[0].Site != 2 {
			t.Fatalf("now=%d: stalls = %+v", now, stalls)
		}
		triggers += len(et.Update(stalls))
	}
	if triggers != 1 {
		t.Fatalf("persistent stall produced %d rising edges, want 1", triggers)
	}
	if et.ActiveCount() != 1 {
		t.Fatalf("active incidents = %d, want 1", et.ActiveCount())
	}
}

// TestEdgeTrackerFlapping: stale -> fresh -> stale inside one staleness
// window is two distinct incidents and must produce two edges, with the
// intermediate healthy pass clearing the first.
func TestEdgeTrackerFlapping(t *testing.T) {
	sd := NewStallDetector(edgeConfig())
	et := NewEdgeTracker()

	// Stale: site 2's digest is 15 units old at now=15.
	stalls := sd.Check(15, []Digest{digestAt(1, 15), digestAt(2, 0)})
	if n := len(et.Update(stalls)); n != 1 {
		t.Fatalf("first stale pass: %d edges, want 1", n)
	}
	// Fresh again: site 2 recovered (rebooted, repartition healed).
	stalls = sd.Check(18, []Digest{digestAt(1, 18), digestAt(2, 18)})
	if len(stalls) != 0 {
		t.Fatalf("recovered pass: stalls = %+v", stalls)
	}
	if n := len(et.Update(stalls)); n != 0 {
		t.Fatalf("recovered pass: %d edges, want 0", n)
	}
	if et.ActiveCount() != 0 {
		t.Fatal("incident not cleared on recovery")
	}
	// Stale again within the same wall window: a new incident, new edge.
	stalls = sd.Check(30, []Digest{digestAt(1, 30), digestAt(2, 18)})
	if len(stalls) != 1 || stalls[0].Reason != ReasonStaleDigest {
		t.Fatalf("re-stale pass: stalls = %+v", stalls)
	}
	if n := len(et.Update(stalls)); n != 1 {
		t.Fatalf("re-stale pass: %d edges, want 1", n)
	}
}

// TestEdgeTrackerDistinguishesReasonsAndSites: simultaneous stalls on
// different (site, reason) pairs are separate incidents.
func TestEdgeTrackerDistinguishesReasonsAndSites(t *testing.T) {
	et := NewEdgeTracker()
	stalls := []Stall{
		{Site: 2, Reason: ReasonStaleDigest},
		{Site: 3, Reason: ReasonStaleDigest},
		{Site: ClusterWide, Reason: ReasonChecksumMismatch},
	}
	if n := len(et.Update(stalls)); n != 3 {
		t.Fatalf("three distinct incidents: %d edges", n)
	}
	// Same set again: no new edges.
	if n := len(et.Update(stalls)); n != 0 {
		t.Fatalf("repeat pass: %d edges, want 0", n)
	}
	// One clears, two persist, a new reason appears on site 2.
	next := []Stall{
		{Site: 2, Reason: ReasonStaleDigest},
		{Site: 2, Reason: ReasonResidueStuck},
		{Site: ClusterWide, Reason: ReasonChecksumMismatch},
	}
	rising := et.Update(next)
	if len(rising) != 1 || rising[0].Reason != ReasonResidueStuck {
		t.Fatalf("rising = %+v, want just the new residue incident", rising)
	}
}

// TestStallDetectorClockStep: a forward clock step makes every digest
// look ancient for one pass; once refreshed digests arrive the stall
// clears, and the edge tracker charges exactly one incident per site for
// the step.
func TestStallDetectorClockStep(t *testing.T) {
	sd := NewStallDetector(edgeConfig())
	et := NewEdgeTracker()

	// Healthy steady state.
	stalls := sd.Check(5, []Digest{digestAt(1, 5), digestAt(2, 5)})
	if len(stalls) != 0 {
		t.Fatalf("steady state: %+v", stalls)
	}
	et.Update(stalls)

	// The reader's clock jumps forward by 1000 units (NTP step, VM
	// resume). Both digests now look stale.
	stalls = sd.Check(1010, []Digest{digestAt(1, 5), digestAt(2, 5)})
	if len(stalls) != 2 {
		t.Fatalf("post-step: %d stalls, want 2", len(stalls))
	}
	edges := et.Update(stalls)
	if len(edges) != 2 {
		t.Fatalf("post-step edges = %d, want 2", len(edges))
	}

	// Fresh digests arrive at the stepped clock; both incidents clear and
	// do NOT re-trigger on subsequent passes.
	for now := int64(1012); now <= 1020; now += 4 {
		stalls = sd.Check(now, []Digest{digestAt(1, now), digestAt(2, now)})
		if len(stalls) != 0 {
			t.Fatalf("now=%d: %+v", now, stalls)
		}
		if n := len(et.Update(stalls)); n != 0 {
			t.Fatalf("now=%d: %d spurious edges", now, n)
		}
	}
	if et.ActiveCount() != 0 {
		t.Fatal("incidents left active after recovery")
	}

	// Residue state survives the step: a backward-compatible site whose
	// residue is stuck still dates the incident from when the stuck value
	// was first seen, so the step alone cannot fire residue-stuck.
	sd2 := NewStallDetector(edgeConfig())
	d := digestAt(1, 100)
	d.Residue = 0.5
	if stalls := sd2.Check(100, []Digest{d}); len(stalls) != 0 {
		t.Fatalf("first residue sight: %+v", stalls)
	}
	// Clock steps forward beyond the residue window, but the digest is
	// stale now — the stale filter wins and residue state is dropped, not
	// double-reported.
	d.Stamp = 100
	stalls = sd2.Check(1100, []Digest{d})
	if len(stalls) != 1 || stalls[0].Reason != ReasonStaleDigest {
		t.Fatalf("stepped residue pass: %+v", stalls)
	}
}

// TestEdgeTrackerFlappingInsideOneWindow drives the full
// detector+tracker pipeline through a flap faster than the residue
// window, checking the intermediate recovery resets the incident clock.
func TestEdgeTrackerFlappingInsideOneWindow(t *testing.T) {
	sd := NewStallDetector(edgeConfig())
	et := NewEdgeTracker()
	total := 0

	residueDigest := func(stamp int64, residue float64) Digest {
		d := digestAt(1, stamp)
		d.Residue = residue
		return d
	}

	// Residue 0.4 appears at t=0 and sits stuck past the window (20).
	for now := int64(0); now <= 25; now += 5 {
		stalls := sd.Check(now, []Digest{residueDigest(now, 0.4)})
		total += len(et.Update(stalls))
	}
	if total != 1 {
		t.Fatalf("stuck residue: %d edges, want 1", total)
	}
	// Residue decays — recovery clears the incident.
	stalls := sd.Check(30, []Digest{residueDigest(30, 0.1)})
	if len(stalls) != 0 {
		t.Fatalf("decaying pass: %+v", stalls)
	}
	et.Update(stalls)
	// It re-sticks at the lower value; the window must restart from the
	// re-stick, not the original incident.
	stalls = sd.Check(45, []Digest{residueDigest(45, 0.1)})
	if len(stalls) != 0 {
		t.Fatalf("within new window: %+v", stalls)
	}
	et.Update(stalls)
	stalls = sd.Check(55, []Digest{residueDigest(55, 0.1)})
	if len(stalls) != 1 || stalls[0].Reason != ReasonResidueStuck {
		t.Fatalf("re-stuck pass: %+v", stalls)
	}
	if n := len(et.Update(stalls)); n != 1 {
		t.Fatalf("re-stuck edges = %d, want 1", n)
	}
}
