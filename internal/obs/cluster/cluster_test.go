package cluster

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestDirectoryNilSafe(t *testing.T) {
	var d *Directory
	d.SetSelf(Digest{StoreKeys: 1})
	if got := d.Merge([]Digest{{Site: 2, Stamp: 5}}); got != 0 {
		t.Errorf("nil Merge = %d", got)
	}
	if d.Share() != nil {
		t.Error("nil Share returned digests")
	}
	if d.Snapshot() != nil {
		t.Error("nil Snapshot returned digests")
	}
	if d.Len() != 0 || d.Prune(100, 1) != 0 || d.Self() != 0 {
		t.Error("nil directory not inert")
	}
	if _, ok := d.Get(1); ok {
		t.Error("nil Get found a digest")
	}
}

func TestDirectoryMergeNewestWins(t *testing.T) {
	d := NewDirectory(1, 0)
	d.SetSelf(Digest{Stamp: 100, StoreKeys: 7})

	if got := d.Merge([]Digest{{Site: 2, Stamp: 50}, {Site: 3, Stamp: 60}}); got != 2 {
		t.Fatalf("initial merge changed %d, want 2", got)
	}
	// Older stamp for site 2 must lose; newer must win.
	if got := d.Merge([]Digest{{Site: 2, Stamp: 40, StoreKeys: 1}}); got != 0 {
		t.Errorf("stale digest merged (%d)", got)
	}
	if got := d.Merge([]Digest{{Site: 2, Stamp: 55, StoreKeys: 9}}); got != 1 {
		t.Errorf("newer digest rejected (%d)", got)
	}
	dg, ok := d.Get(2)
	if !ok || dg.Stamp != 55 || dg.StoreKeys != 9 {
		t.Errorf("site 2 digest = %+v", dg)
	}
	// The node is authoritative for its own digest: a bounced copy with a
	// newer stamp must not overwrite it.
	if got := d.Merge([]Digest{{Site: 1, Stamp: 999, StoreKeys: 0}}); got != 0 {
		t.Errorf("self digest overwritten via merge (%d)", got)
	}
	if dg, _ := d.Get(1); dg.Stamp != 100 || dg.StoreKeys != 7 {
		t.Errorf("self digest = %+v", dg)
	}
}

func TestDirectoryShareSelfFirstAndCapped(t *testing.T) {
	d := NewDirectory(1, 3)
	if d.Share() != nil {
		t.Fatal("empty directory shared digests")
	}
	d.SetSelf(Digest{Stamp: 10})
	d.Merge([]Digest{
		{Site: 2, Stamp: 100},
		{Site: 3, Stamp: 300},
		{Site: 4, Stamp: 200},
		{Site: 5, Stamp: 50},
	})
	share := d.Share()
	if len(share) != 3 {
		t.Fatalf("share len = %d, want cap 3", len(share))
	}
	if share[0].Site != 1 {
		t.Errorf("share[0].Site = %d, want self first", share[0].Site)
	}
	// Remaining slots go to the freshest others: sites 3 (300) and 4 (200).
	if share[1].Site != 3 || share[2].Site != 4 {
		t.Errorf("share order = %d,%d, want 3,4", share[1].Site, share[2].Site)
	}
}

func TestDirectorySnapshotSortedAndPrune(t *testing.T) {
	d := NewDirectory(2, 0)
	d.SetSelf(Digest{Stamp: 1000})
	d.Merge([]Digest{{Site: 5, Stamp: 900}, {Site: 1, Stamp: 100}})

	snap := d.Snapshot()
	if len(snap) != 3 || snap[0].Site != 1 || snap[1].Site != 2 || snap[2].Site != 5 {
		t.Fatalf("snapshot order = %+v", snap)
	}
	// TTL aging drops site 1 (age 900 > 500) but never self (age 0) nor
	// the still-fresh site 5.
	if dropped := d.Prune(1000, 500); dropped != 1 {
		t.Fatalf("pruned %d, want 1", dropped)
	}
	if _, ok := d.Get(1); ok {
		t.Error("stale digest survived prune")
	}
	if _, ok := d.Get(2); !ok {
		t.Error("self digest pruned")
	}
	if d.Len() != 2 {
		t.Errorf("len = %d", d.Len())
	}
}

func TestDirectoryConcurrent(t *testing.T) {
	d := NewDirectory(1, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.SetSelf(Digest{Stamp: int64(i)})
				d.Merge([]Digest{{Site: int32(2 + g), Stamp: int64(i)}})
				d.Share()
				d.Snapshot()
				d.Prune(int64(i), 50)
			}
		}(g)
	}
	wg.Wait()
	if d.Len() < 1 {
		t.Error("directory lost its own digest")
	}
}

func TestStallDetectorStaleDigest(t *testing.T) {
	sd := NewStallDetector(StallConfig{StaleAfter: 100, SecondsPerUnit: 1})
	digests := []Digest{
		{Site: 1, Stamp: 1000},
		{Site: 2, Stamp: 850}, // age 150 > 100
	}
	stalls := sd.Check(1000, digests)
	if len(stalls) != 1 || stalls[0].Site != 2 || stalls[0].Reason != ReasonStaleDigest {
		t.Fatalf("stalls = %+v", stalls)
	}
	if stalls[0].AgeSeconds != 150 {
		t.Errorf("age = %v", stalls[0].AgeSeconds)
	}
	// Refreshing the digest clears the stall.
	digests[1].Stamp = 990
	if stalls := sd.Check(1000, digests); len(stalls) != 0 {
		t.Errorf("refreshed digest still stalled: %+v", stalls)
	}
}

func TestStallDetectorResidueStuck(t *testing.T) {
	sd := NewStallDetector(StallConfig{ResidueWindow: 50, SecondsPerUnit: 1})
	at := func(now int64, residue float64) []Stall {
		return sd.Check(now, []Digest{{Site: 1, Stamp: now, Residue: residue}})
	}
	if got := at(0, 0.5); len(got) != 0 {
		t.Fatalf("first observation stalled: %+v", got)
	}
	if got := at(40, 0.5); len(got) != 0 {
		t.Fatalf("inside window stalled: %+v", got)
	}
	got := at(60, 0.5) // unchanged for 60 > 50
	if len(got) != 1 || got[0].Reason != ReasonResidueStuck || got[0].Site != 1 {
		t.Fatalf("stuck residue not flagged: %+v", got)
	}
	// A decaying residue resets the window; zero residue never stalls.
	if got := at(70, 0.4); len(got) != 0 {
		t.Errorf("decaying residue flagged: %+v", got)
	}
	if got := at(200, 0); len(got) != 0 {
		t.Errorf("zero residue flagged: %+v", got)
	}
	if got := at(400, 0); len(got) != 0 {
		t.Errorf("zero residue flagged after window: %+v", got)
	}
}

func TestStallDetectorChecksumMismatch(t *testing.T) {
	sd := NewStallDetector(StallConfig{ChecksumWindow: 100, SecondsPerUnit: 1})
	view := func(now int64, sums ...uint64) []Digest {
		out := make([]Digest, len(sums))
		for i, s := range sums {
			out[i] = Digest{Site: int32(i + 1), Stamp: now, Checksum: s}
		}
		return out
	}
	if got := sd.Check(0, view(0, 7, 8)); len(got) != 0 {
		t.Fatalf("fresh mismatch flagged immediately: %+v", got)
	}
	got := sd.Check(150, view(150, 7, 8))
	if len(got) != 1 || got[0].Reason != ReasonChecksumMismatch || got[0].Site != ClusterWide {
		t.Fatalf("persistent mismatch not flagged: %+v", got)
	}
	// Agreement resets; a fresh disagreement starts a new window.
	if got := sd.Check(200, view(200, 9, 9)); len(got) != 0 {
		t.Errorf("agreement flagged: %+v", got)
	}
	if got := sd.Check(250, view(250, 9, 10)); len(got) != 0 {
		t.Errorf("new mismatch flagged without persistence: %+v", got)
	}
}

func TestStallDetectorStaleExcludedFromChecksum(t *testing.T) {
	// A stale digest's checksum must not count as a mismatch: the site is
	// already flagged stale, and its frozen checksum says nothing about
	// the live cluster.
	sd := NewStallDetector(StallConfig{StaleAfter: 100, ChecksumWindow: 10, SecondsPerUnit: 1})
	digests := []Digest{
		{Site: 1, Stamp: 1000, Checksum: 7},
		{Site: 2, Stamp: 995, Checksum: 7},
		{Site: 3, Stamp: 100, Checksum: 999}, // stale
	}
	sd.Check(1000, digests)
	stalls := sd.Check(1050, []Digest{
		{Site: 1, Stamp: 1050, Checksum: 7},
		{Site: 2, Stamp: 1045, Checksum: 7},
		{Site: 3, Stamp: 100, Checksum: 999},
	})
	for _, s := range stalls {
		if s.Reason == ReasonChecksumMismatch {
			t.Fatalf("stale site's checksum drove a mismatch stall: %+v", stalls)
		}
	}
}

func TestBuildStatus(t *testing.T) {
	digests := []Digest{
		{Site: 1, Stamp: 1000, StartedAt: 0},
		{Site: 2, Stamp: 400, StartedAt: 100},
	}
	stalls := []Stall{{Site: 2, Reason: ReasonStaleDigest}}
	reply := BuildStatus(1, 1000, digests, stalls, 500, 1)
	if reply.Status != "degraded" || reply.Site != 1 || len(reply.Sites) != 2 {
		t.Fatalf("reply = %+v", reply)
	}
	if reply.Sites[0].Stale || reply.Sites[0].AgeSeconds != 0 {
		t.Errorf("site 1 status = %+v", reply.Sites[0])
	}
	if !reply.Sites[1].Stale || reply.Sites[1].AgeSeconds != 600 || reply.Sites[1].UptimeSeconds != 300 {
		t.Errorf("site 2 status = %+v", reply.Sites[1])
	}
	// The reply must round-trip as JSON (no NaN leaks).
	b, err := json.Marshal(reply)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(b), `"degraded"`) {
		t.Errorf("json = %s", b)
	}
	healthy := BuildStatus(1, 1000, digests[:1], nil, 500, 1)
	if healthy.Status != "ok" || len(healthy.Stalls) != 0 {
		t.Errorf("healthy reply = %+v", healthy)
	}
}
