// Package cluster implements the gossip-borne cluster observatory: each
// node periodically snapshots a compact Digest of its own health and the
// digest set spreads epidemically, piggybacked on the anti-entropy and
// rumor-pull exchanges the nodes already run. Any single replica then
// holds an (eventually consistent) view of the whole cluster — the same
// O(log n)-round push-pull dissemination bound the data itself enjoys —
// without a central collector or a scrape of every node.
//
// The package is deliberately self-contained (stdlib only, no node or
// transport imports) so the node runtime, the wire codec, the simulator
// and the daemons can all share it without cycles. Times are abstract
// int64 stamp units — wall-clock nanoseconds on daemons, simulated ticks
// in the sim cluster — exactly like the store's timestamps.
package cluster

import (
	"sort"
	"sync"
)

// LatencySummary compresses one exchange-latency histogram into the three
// numbers the status table needs. Quantiles are in seconds and only valid
// when Count > 0 (a zero summary means "no exchanges observed yet", never
// NaN — the digests travel as JSON too).
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// Digest is one node's self-reported health snapshot. Stamp orders
// versions of the same site's digest (newest wins on merge); every other
// field is informational. The struct is flat and fixed-shape on purpose:
// it has a hand-rolled binary encoding in the transport codec, so fields
// are only added, never reordered.
type Digest struct {
	// Site is the reporting replica; Stamp the digest's creation time in
	// stamp units — the merge key.
	Site  int32 `json:"site"`
	Stamp int64 `json:"stamp"`
	// StartedAt is the node's start time in stamp units (uptime = now -
	// StartedAt at the reader).
	StartedAt int64 `json:"started_at"`
	// StoreKeys and Checksum describe the replica database: key count
	// (death certificates included) and the live checksum — matching
	// checksums across fresh digests mean the cluster has converged.
	StoreKeys int64  `json:"store_keys"`
	Checksum  uint64 `json:"checksum"`
	// HotRumors, Peers and Members summarise the epidemic topology as this
	// node sees it.
	HotRumors int64 `json:"hot_rumors"`
	Peers     int64 `json:"peers"`
	Members   int64 `json:"members"`
	// AERuns and RumorRuns count protocol rounds executed since start.
	AERuns    int64 `json:"ae_runs"`
	RumorRuns int64 `json:"rumor_runs"`
	// Wire and UDP fast-path counters (zero on sim nodes).
	WireMsgsBinary int64 `json:"wire_msgs_binary"`
	WireMsgsGob    int64 `json:"wire_msgs_gob"`
	UDPPushes      int64 `json:"udp_pushes"`
	UDPFallbacks   int64 `json:"udp_fallbacks"`
	// Residue and TLastSeconds are the node's view of the paper's
	// convergence observables. A lone replica cannot count infections at
	// other sites, so its Residue is a checksum proxy: the fraction of
	// fresh remote digests disagreeing with its own database checksum
	// (0 = converged from this node's viewpoint). TLastSeconds is the
	// largest origination-to-local-apply delay its propagation tracker
	// has seen, in seconds.
	Residue      float64 `json:"residue"`
	TLastSeconds float64 `json:"t_last_seconds"`
	// LastAE is the stamp-unit time of the last successful anti-entropy
	// conversation this node initiated; 0 = none yet.
	LastAE int64 `json:"last_ae"`
	// AntiEntropy and Rumor summarise the per-mechanism exchange-latency
	// histograms (p50/p99 in seconds).
	AntiEntropy LatencySummary `json:"anti_entropy"`
	Rumor       LatencySummary `json:"rumor"`
}

// DefaultShareLimit caps the digests piggybacked on one exchange so the
// envelope stays bounded on large clusters; the epidemic still spreads
// every digest, just over more exchanges.
const DefaultShareLimit = 64

// Directory is one node's view of the cluster digest set: its own digest
// plus the newest digest it has heard for every other site. All methods
// are safe for concurrent use and nil-safe — a nil *Directory records
// nothing and shares nothing, so disabled digests cost zero wire bytes
// (the same pattern as the nil trace.Tracer).
type Directory struct {
	self       int32
	shareLimit int

	mu      sync.RWMutex
	digests map[int32]Digest
}

// NewDirectory builds a directory for the given site. shareLimit bounds
// the digests attached to one exchange (<= 0 selects DefaultShareLimit).
func NewDirectory(self int32, shareLimit int) *Directory {
	if shareLimit <= 0 {
		shareLimit = DefaultShareLimit
	}
	return &Directory{
		self:       self,
		shareLimit: shareLimit,
		digests:    make(map[int32]Digest),
	}
}

// Self returns the directory's own site ID (0 on a nil directory).
func (d *Directory) Self() int32 {
	if d == nil {
		return 0
	}
	return d.self
}

// SetSelf installs this node's freshly built digest. The digest's Site is
// forced to the directory's own site; callers only fill the payload.
func (d *Directory) SetSelf(dg Digest) {
	if d == nil {
		return
	}
	dg.Site = d.self
	d.mu.Lock()
	d.digests[d.self] = dg
	d.mu.Unlock()
}

// Merge folds digests heard from a peer into the view: newest stamp wins
// per site, and the node stays authoritative for its own digest (a copy
// of it bouncing back from a peer can never overwrite the local one).
// It returns the number of digests that changed the view.
func (d *Directory) Merge(in []Digest) int {
	if d == nil || len(in) == 0 {
		return 0
	}
	changed := 0
	d.mu.Lock()
	for _, dg := range in {
		if dg.Site == d.self {
			continue
		}
		if cur, ok := d.digests[dg.Site]; !ok || dg.Stamp > cur.Stamp {
			d.digests[dg.Site] = dg
			changed++
		}
	}
	d.mu.Unlock()
	return changed
}

// Share returns the digests to piggyback on one outgoing exchange: this
// node's own digest first (the one fact only it can originate), then the
// freshest others, capped at the share limit. nil when the directory is
// nil or empty — nil piggybacks encode to zero wire bytes.
func (d *Directory) Share() []Digest {
	if d == nil {
		return nil
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.digests) == 0 {
		return nil
	}
	out := make([]Digest, 0, min(len(d.digests), d.shareLimit))
	if self, ok := d.digests[d.self]; ok {
		out = append(out, self)
	}
	rest := make([]Digest, 0, len(d.digests))
	for site, dg := range d.digests {
		if site == d.self {
			continue
		}
		rest = append(rest, dg)
	}
	// Freshest first, site as the deterministic tiebreak.
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].Stamp != rest[j].Stamp {
			return rest[i].Stamp > rest[j].Stamp
		}
		return rest[i].Site < rest[j].Site
	})
	for _, dg := range rest {
		if len(out) >= d.shareLimit {
			break
		}
		out = append(out, dg)
	}
	return out
}

// Snapshot returns every digest in the view, sorted by site.
func (d *Directory) Snapshot() []Digest {
	if d == nil {
		return nil
	}
	d.mu.RLock()
	out := make([]Digest, 0, len(d.digests))
	for _, dg := range d.digests {
		out = append(out, dg)
	}
	d.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Get returns the digest for one site.
func (d *Directory) Get(site int32) (Digest, bool) {
	if d == nil {
		return Digest{}, false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	dg, ok := d.digests[site]
	return dg, ok
}

// Len returns the number of sites in the view.
func (d *Directory) Len() int {
	if d == nil {
		return 0
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.digests)
}

// Prune drops digests whose stamp is older than now-ttl — the TTL aging
// that eventually forgets departed nodes (their digest stops refreshing,
// goes stale, gets flagged by the stall detector, and is finally aged
// out). The node's own digest is never pruned. Returns the count dropped.
func (d *Directory) Prune(now, ttl int64) int {
	if d == nil || ttl <= 0 {
		return 0
	}
	dropped := 0
	d.mu.Lock()
	for site, dg := range d.digests {
		if site == d.self {
			continue
		}
		if now-dg.Stamp > ttl {
			delete(d.digests, site)
			dropped++
		}
	}
	d.mu.Unlock()
	return dropped
}
