package obs

import (
	"sort"
	"sync"
)

// Propagation tracks per-update infection timestamps across a set of
// replicas and derives the paper's convergence observables: t_last (time
// until the last susceptible site is infected), t_avg (mean infection
// delay over infected sites), and residue (the fraction of sites an
// update never reached, §1.4). Times are in abstract stamp units — wall
// nanoseconds on real nodes, simulated ticks in the sim cluster — and
// converted to seconds via secondsPerUnit.
//
// Tracking is idempotent per (key, site): only the first infection of a
// site counts, so redundant apply reports (e.g. both parties of an
// anti-entropy exchange reporting the same repaired key) are harmless. A
// newer origin for a key (a re-update) resets its track.
// Tracking is bounded: at most capacity keys are tracked at once, and the
// key with the oldest origin is evicted to admit a newer one, so a
// long-running node's tracker cannot grow without limit. Observables for
// retained keys are unaffected by evictions.
type Propagation struct {
	mu             sync.Mutex
	secondsPerUnit float64
	hist           *Histogram // optional: observed once per new infection
	updates        map[string]*track
	capacity       int
}

// DefaultPropagationCap bounds the tracked-update map when no explicit
// capacity is set.
const DefaultPropagationCap = 1024

type track struct {
	origin    int64
	firstSeen map[int32]int64 // site -> stamp-unit time of first infection
}

// NewPropagation builds a tracker. secondsPerUnit scales stamp units to
// seconds (1e-9 for wall-clock nanoseconds, 1 to treat simulated ticks as
// seconds); hist, when non-nil, receives one observation per new
// infection.
func NewPropagation(secondsPerUnit float64, hist *Histogram) *Propagation {
	if secondsPerUnit <= 0 {
		secondsPerUnit = 1e-9
	}
	return &Propagation{
		secondsPerUnit: secondsPerUnit,
		hist:           hist,
		updates:        make(map[string]*track),
		capacity:       DefaultPropagationCap,
	}
}

// SetCapacity bounds the number of simultaneously tracked keys (values
// <= 0 restore DefaultPropagationCap). Shrinking below the current track
// count evicts oldest-origin keys immediately.
func (p *Propagation) SetCapacity(n int) {
	if n <= 0 {
		n = DefaultPropagationCap
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.capacity = n
	p.evictLocked()
}

// Tracked returns the number of keys currently tracked — exported as the
// epidemic_propagation_tracked gauge.
func (p *Propagation) Tracked() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.updates)
}

// evictLocked drops oldest-origin keys (ties broken by smaller key, for
// determinism) until the map fits the capacity. Caller holds p.mu.
func (p *Propagation) evictLocked() {
	for len(p.updates) > p.capacity {
		victim := ""
		var oldest int64
		first := true
		for k, tr := range p.updates {
			if first || tr.origin < oldest || (tr.origin == oldest && k < victim) {
				victim, oldest, first = k, tr.origin, false
			}
		}
		delete(p.updates, victim)
	}
}

// ensure returns the track for (key, origin), resetting it when origin is
// newer than the tracked version and ignoring nothing — stale origins keep
// the existing track.
func (p *Propagation) ensure(key string, origin int64) *track {
	tr, ok := p.updates[key]
	if !ok || origin > tr.origin {
		tr = &track{origin: origin, firstSeen: make(map[int32]int64)}
		p.updates[key] = tr
		p.evictLocked()
	}
	return tr
}

// Originated records that site accepted the update for key locally at
// origin (its timestamp's time component). The originating site counts as
// infected with zero delay.
func (p *Propagation) Originated(key string, site int32, origin int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tr := p.ensure(key, origin)
	if origin < tr.origin {
		return // stale version of the key
	}
	if _, ok := tr.firstSeen[site]; !ok {
		tr.firstSeen[site] = origin
	}
}

// Infected records that site first applied the update for key (originated
// at origin) at time at. Duplicate reports for a site are ignored.
func (p *Propagation) Infected(key string, site int32, origin, at int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tr := p.ensure(key, origin)
	if origin < tr.origin {
		return // applying an already superseded version
	}
	if _, ok := tr.firstSeen[site]; ok {
		return
	}
	tr.firstSeen[site] = at
	if p.hist != nil {
		p.hist.Observe(p.delay(tr.origin, at))
	}
}

func (p *Propagation) delay(origin, at int64) float64 {
	d := at - origin
	if d < 0 {
		d = 0 // clock skew between sites; the paper assumes ε ≪ τ
	}
	return float64(d) * p.secondsPerUnit
}

// TLast returns the delay, in seconds, until the last currently infected
// site received key's update — the paper's t_last once propagation has
// quiesced.
func (p *Propagation) TLast(key string) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tr, ok := p.updates[key]
	if !ok || len(tr.firstSeen) == 0 {
		return 0, false
	}
	max := 0.0
	for _, at := range tr.firstSeen {
		if d := p.delay(tr.origin, at); d > max {
			max = d
		}
	}
	return max, true
}

// TAvg returns the mean infection delay in seconds over all infected
// sites, the originating site included with delay zero.
func (p *Propagation) TAvg(key string) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tr, ok := p.updates[key]
	if !ok || len(tr.firstSeen) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, at := range tr.firstSeen {
		sum += p.delay(tr.origin, at)
	}
	return sum / float64(len(tr.firstSeen)), true
}

// InfectedCount returns how many sites hold key's tracked update.
func (p *Propagation) InfectedCount(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	tr, ok := p.updates[key]
	if !ok {
		return 0
	}
	return len(tr.firstSeen)
}

// Residue returns the fraction of n sites key's update never reached —
// the paper's residue s/n (§1.4).
func (p *Propagation) Residue(key string, n int) float64 {
	if n <= 0 {
		return 0
	}
	infected := p.InfectedCount(key)
	if infected > n {
		infected = n
	}
	return float64(n-infected) / float64(n)
}

// Keys returns the tracked update keys, sorted.
func (p *Propagation) Keys() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.updates))
	for k := range p.updates {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
