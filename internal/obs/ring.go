package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
)

// EventRecord is one node lifecycle event in wire-friendly form, as served
// by the admin /events endpoint. Zero-valued fields are omitted from the
// JSON so each kind only carries the fields that event populates.
type EventRecord struct {
	Seq             uint64   `json:"seq"`
	UnixNanos       int64    `json:"unix_ns,omitempty"`
	Site            int32    `json:"site"`
	Kind            string   `json:"kind"`
	Peer            int32    `json:"peer,omitempty"`
	Key             string   `json:"key,omitempty"`
	Keys            []string `json:"keys,omitempty"`
	Count           int      `json:"count,omitempty"`
	EntriesSent     int      `json:"entries_sent,omitempty"`
	EntriesReceived int      `json:"entries_received,omitempty"`
	EntriesApplied  int      `json:"entries_applied,omitempty"`
	FullCompare     bool     `json:"full_compare,omitempty"`
	Stamp           string   `json:"stamp,omitempty"`
}

// EventRing is a bounded ring buffer of recent events: appends are O(1),
// the oldest record is overwritten once the ring is full.
type EventRing struct {
	mu   sync.Mutex
	buf  []EventRecord
	next uint64 // total records ever appended
}

// DefaultRingSize bounds the admin /events buffer when no size is given.
const DefaultRingSize = 256

// NewEventRing builds a ring holding the last capacity records
// (DefaultRingSize when capacity <= 0).
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &EventRing{buf: make([]EventRecord, capacity)}
}

// Append records one event, assigning its sequence number.
func (r *EventRing) Append(rec EventRecord) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = rec
	r.next++
	return rec.Seq
}

// Len returns the number of records currently retained.
func (r *EventRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Snapshot returns the retained records, oldest first.
func (r *EventRing) Snapshot() []EventRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	if r.next > n {
		start = r.next - n
	}
	out := make([]EventRecord, 0, r.next-start)
	for seq := start; seq < r.next; seq++ {
		out = append(out, r.buf[seq%n])
	}
	return out
}

// SnapshotSince returns the retained records with Seq >= cursor, oldest
// first, plus the cursor to pass next time (one past the newest record
// ever appended). A cursor of 0 returns everything retained; a cursor
// beyond the newest record returns nothing. Records that were overwritten
// before the cursor caught up are silently gone — the returned slice's
// first Seq tells the caller how much it missed.
func (r *EventRing) SnapshotSince(cursor uint64) ([]EventRecord, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	if r.next > n {
		start = r.next - n
	}
	if cursor > start {
		start = cursor
	}
	var out []EventRecord
	for seq := start; seq < r.next; seq++ {
		out = append(out, r.buf[seq%n])
	}
	return out, r.next
}

// Matches reports whether the record concerns the given key — either as
// its primary Key or within the Keys batch list.
func (rec *EventRecord) Matches(key string) bool {
	if rec.Key == key {
		return true
	}
	for _, k := range rec.Keys {
		if k == key {
			return true
		}
	}
	return false
}

// FilterByKey returns the records matching key, preserving order. Used by
// the /events?key= route so flight-recorder follow-ups can scope the log
// to one update's lifecycle server-side.
func FilterByKey(events []EventRecord, key string) []EventRecord {
	out := events[:0:0]
	for _, rec := range events {
		if rec.Matches(key) {
			out = append(out, rec)
		}
	}
	return out
}

// Handler serves the ring as JSON: {"events": [...], "next": cursor},
// newest last. The optional ?since= query parameter (a cursor from a
// previous reply's "next") restricts the reply to records not yet seen;
// ?key= keeps only records touching that key (primary or batch);
// ?n= limits the result to the most recent n.
func (r *EventRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var cursor uint64
		if s := req.URL.Query().Get("since"); s != "" {
			c, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since", http.StatusBadRequest)
				return
			}
			cursor = c
		}
		events, next := r.SnapshotSince(cursor)
		if key := req.URL.Query().Get("key"); key != "" {
			events = FilterByKey(events, key)
		}
		if s := req.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Events []EventRecord `json:"events"`
			Next   uint64        `json:"next"`
		}{events, next})
	})
}
