// Package obs is the observability layer for the replica runtime: a
// dependency-free metrics registry (counters, gauges, histograms with
// atomic hot paths) rendered in Prometheus text exposition format, a
// bounded ring buffer of recent node events, and a per-update propagation
// tracker that turns infection timestamps into the paper's convergence
// observables — t_last, t_avg, and residue (§1.4, §3).
//
// The registry is deliberately small: no external dependencies, no
// label-cardinality explosion, no background goroutines. Hot-path metric
// updates are single atomic operations so instrumented protocol rounds pay
// nanoseconds, not locks.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name, Value string
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use. Registering
// the same (name, labels) pair twice returns the existing collector, so
// instrumentation is idempotent.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	gen      atomic.Uint64 // bumped whenever a new family or series appears
}

// family is one metric name: help text, type, and its labelled series.
type family struct {
	name, help, typ string
	series          map[string]*seriesEntry // canonical label string -> entry
}

type seriesEntry struct {
	labels []Label
	metric any // *Counter | *Gauge | *Histogram | funcMetric
}

// funcMetric reads its value from a callback at render time; used to
// expose externally maintained counters (e.g. node.Stats) without copying
// them on every increment.
type funcMetric struct {
	fn func() float64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register fetches or creates the (name, labels) series. It panics on
// malformed names or on re-registration with a conflicting type — both are
// programming errors.
func (r *Registry) register(name, help, typ string, labels []Label, create func() any) any {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l.Name) || strings.HasPrefix(l.Name, "__") {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l.Name, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*seriesEntry)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, typ, f.typ))
	}
	key := labelKey(labels)
	if e, ok := f.series[key]; ok {
		return e.metric
	}
	m := create()
	f.series[key] = &seriesEntry{labels: sortedLabels(labels), metric: m}
	r.gen.Add(1)
	return m
}

// Generation returns a counter that increases whenever a new series is
// registered. Samplers cache a walk of the registry and rebuild it only
// when the generation moves, keeping the steady-state read path
// allocation-free.
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// SeriesView is one registered series as seen by VisitSeries. Exactly one
// of Counter, Gauge, Value, or Histogram is set, matching Type
// ("counter", "gauge", or "histogram" — func-backed series report the
// type they were registered under with Value set).
type SeriesView struct {
	ID     string // name + canonical label rendering, unique per registry
	Name   string
	Type   string
	Labels []Label
	Counter   *Counter
	Gauge     *Gauge
	Value     func() float64
	Histogram *Histogram
}

// VisitSeries calls visit once per registered series, in name-then-label
// order. The registry lock is NOT held during callbacks, so visit may
// register further metrics; series added mid-walk are picked up on the
// next call.
func (r *Registry) VisitSeries(visit func(SeriesView)) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	views := make([]SeriesView, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := f.series[k]
			v := SeriesView{ID: f.name + k, Name: f.name, Type: f.typ, Labels: e.labels}
			switch m := e.metric.(type) {
			case *Counter:
				v.Counter = m
			case *Gauge:
				v.Gauge = m
			case funcMetric:
				v.Value = m.fn
			case *Histogram:
				v.Histogram = m
			}
			views = append(views, v)
		}
	}
	r.mu.Unlock()
	for _, v := range views {
		visit(v)
	}
}

// Counter registers (or fetches) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, "counter", labels, func() any { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s%s is not a Counter", name, labelKey(labels)))
	}
	return c
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, "gauge", labels, func() any { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s%s is not a Gauge", name, labelKey(labels)))
	}
	return g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	m := r.register(name, help, "counter", labels, func() any { return funcMetric{fn} })
	if _, ok := m.(funcMetric); !ok {
		panic(fmt.Sprintf("obs: metric %s%s is not a CounterFunc", name, labelKey(labels)))
	}
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	m := r.register(name, help, "gauge", labels, func() any { return funcMetric{fn} })
	if _, ok := m.(funcMetric); !ok {
		panic(fmt.Sprintf("obs: metric %s%s is not a GaugeFunc", name, labelKey(labels)))
	}
}

// Histogram registers (or fetches) a histogram with the given bucket upper
// bounds (sorted, strictly increasing; +Inf is implicit). A nil buckets
// slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	m := r.register(name, help, "histogram", labels, func() any { return newHistogram(buckets) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %s%s is not a Histogram", name, labelKey(labels)))
	}
	return h
}

// WritePrometheus renders every registered family in text exposition
// format (version 0.0.4), families sorted by name and series by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		entries := make([]*seriesEntry, len(keys))
		for i, k := range keys {
			entries[i] = f.series[k]
		}
		r.mu.Unlock()
		for _, e := range entries {
			writeSeries(&b, f.name, e)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func writeSeries(b *strings.Builder, name string, e *seriesEntry) {
	switch m := e.metric.(type) {
	case *Counter:
		fmt.Fprintf(b, "%s%s %s\n", name, renderLabels(e.labels), formatFloat(float64(m.Value())))
	case *Gauge:
		fmt.Fprintf(b, "%s%s %s\n", name, renderLabels(e.labels), formatFloat(m.Value()))
	case funcMetric:
		fmt.Fprintf(b, "%s%s %s\n", name, renderLabels(e.labels), formatFloat(m.fn()))
	case *Histogram:
		cum := uint64(0)
		for i, upper := range m.upper {
			cum += m.counts[i].Load()
			le := append(append([]Label(nil), e.labels...), Label{"le", formatFloat(upper)})
			fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(le), cum)
		}
		cum += m.counts[len(m.upper)].Load()
		le := append(append([]Label(nil), e.labels...), Label{"le", "+Inf"})
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(le), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(e.labels), formatFloat(m.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(e.labels), cum)
	}
}

// Counter is a monotonically increasing integer counter. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down. The zero value is
// ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// sortedLabels copies and sorts labels by name for canonical rendering.
func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// labelKey is the canonical map key for a label set.
func labelKey(labels []Label) string { return renderLabels(sortedLabels(labels)) }

// renderLabels renders `{a="b",c="d"}`, or "" for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
