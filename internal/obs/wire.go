package obs

import (
	"epidemic/internal/transport"
)

// Metric names for the client-side wire protocol: the connection pool and
// per-exchange traffic of every TCPPeer sharing one transport.WireStats.
const (
	MetricWireDials              = "epidemic_wire_dials_total"
	MetricWireRedials            = "epidemic_wire_redials_total"
	MetricWireReuses             = "epidemic_wire_reuses_total"
	MetricWireOpenConns          = "epidemic_wire_open_conns"
	MetricWireBytesSent          = "epidemic_wire_bytes_sent_total"
	MetricWireBytesReceived      = "epidemic_wire_bytes_received_total"
	MetricWireExchanges          = "epidemic_wire_exchanges_total"
	MetricWireEntriesPerExchange = "epidemic_wire_exchange_entries"
	MetricWireBytesPerExchange   = "epidemic_wire_exchange_bytes"

	// Codec negotiation outcomes: sessions and request round trips by the
	// codec the handshake settled on.
	MetricWireSessionsGob    = "epidemic_wire_sessions_gob_total"
	MetricWireSessionsBinary = "epidemic_wire_sessions_binary_total"
	MetricWireMsgsGob        = "epidemic_wire_msgs_gob_total"
	MetricWireMsgsBinary     = "epidemic_wire_msgs_binary_total"

	// Shard-vector anti-entropy: narrow repairs completed, shards walked,
	// and sessions that fell back to the global peel-back path.
	MetricWireShardVecExchanges  = "epidemic_wire_shardvec_exchanges_total"
	MetricWireShardVecShards     = "epidemic_wire_shardvec_shards_total"
	MetricWireShardVecDowngrades = "epidemic_wire_shardvec_downgrades_total"

	// Batched mail (codec v5): outbox drains shipped as one frame, entries
	// they carried, entries degraded to per-entry mail on pre-v5 peers.
	MetricWireMailBatches         = "epidemic_wire_mail_batches_total"
	MetricWireMailBatchEntries    = "epidemic_wire_mail_batch_entries_total"
	MetricWireMailFallbackEntries = "epidemic_wire_mail_fallback_entries_total"

	// UDP rumor fast path (transport/udp.go).
	MetricWireUDPPushes        = "epidemic_wire_udp_pushes_total"
	MetricWireUDPRetries       = "epidemic_wire_udp_retries_total"
	MetricWireUDPFallbacks     = "epidemic_wire_udp_fallbacks_total"
	MetricWireUDPOversize      = "epidemic_wire_udp_oversize_total"
	MetricWireUDPBytesSent     = "epidemic_wire_udp_bytes_sent_total"
	MetricWireUDPBytesReceived = "epidemic_wire_udp_bytes_received_total"
)

// Default histogram buckets for per-exchange entry counts and byte sizes:
// a healthy anti-entropy exchange moves O(δ) entries, so the interesting
// resolution is at the low end.
var (
	wireEntryBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
	wireByteBuckets  = []float64{128, 256, 512, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20}
)

// InstrumentWire registers ws's pool and traffic counters on reg and
// installs the exchange observer that feeds the per-exchange histograms.
// The counters are read at scrape time; the histograms accumulate one
// observation per completed anti-entropy conversation. Call once per
// process-wide WireStats.
func InstrumentWire(reg *Registry, ws *transport.WireStats) {
	counter := func(name, help string, read func(transport.WireSnapshot) int64) {
		reg.CounterFunc(name, help, func() float64 {
			return float64(read(ws.Snapshot()))
		})
	}
	counter(MetricWireDials, "Gossip client connections dialed.",
		func(s transport.WireSnapshot) int64 { return s.Dials })
	counter(MetricWireRedials, "Dials that replaced a pooled connection found dead mid-request.",
		func(s transport.WireSnapshot) int64 { return s.Redials })
	counter(MetricWireReuses, "Gossip requests served by an already-open pooled connection.",
		func(s transport.WireSnapshot) int64 { return s.Reuses })
	counter(MetricWireBytesSent, "Framed gossip bytes sent to peers, headers included.",
		func(s transport.WireSnapshot) int64 { return s.BytesSent })
	counter(MetricWireBytesReceived, "Framed gossip bytes received from peers, headers included.",
		func(s transport.WireSnapshot) int64 { return s.BytesReceived })
	counter(MetricWireExchanges, "Anti-entropy conversations completed over the wire.",
		func(s transport.WireSnapshot) int64 { return s.Exchanges })
	counter(MetricWireSessionsGob, "Client sessions the codec handshake settled on gob.",
		func(s transport.WireSnapshot) int64 { return s.SessionsGob })
	counter(MetricWireSessionsBinary, "Client sessions the codec handshake settled on the binary codec.",
		func(s transport.WireSnapshot) int64 { return s.SessionsBinary })
	counter(MetricWireMsgsGob, "Request round trips framed in gob.",
		func(s transport.WireSnapshot) int64 { return s.MsgsGob })
	counter(MetricWireMsgsBinary, "Request round trips framed in the binary codec.",
		func(s transport.WireSnapshot) int64 { return s.MsgsBinary })
	counter(MetricWireShardVecExchanges, "Anti-entropy conversations resolved on the narrow shard-vector path.",
		func(s transport.WireSnapshot) int64 { return s.ShardVecExchanges })
	counter(MetricWireShardVecShards, "Diverged shards repaired by shard-vector exchanges.",
		func(s transport.WireSnapshot) int64 { return s.ShardVecShards })
	counter(MetricWireShardVecDowngrades, "Shard-vector attempts that fell back to the global peel-back walk.",
		func(s transport.WireSnapshot) int64 { return s.ShardVecDowngrades })
	counter(MetricWireMailBatches, "Outbox drains shipped as single batched mail frames.",
		func(s transport.WireSnapshot) int64 { return s.MailBatches })
	counter(MetricWireMailBatchEntries, "Mail entries carried by batched mail frames.",
		func(s transport.WireSnapshot) int64 { return s.MailBatchEntries })
	counter(MetricWireMailFallbackEntries, "Mail entries degraded to per-entry round trips on pre-v5 peers.",
		func(s transport.WireSnapshot) int64 { return s.MailFallbackEntries })
	counter(MetricWireUDPPushes, "Rumor pushes completed over the UDP fast path.",
		func(s transport.WireSnapshot) int64 { return s.UDPPushes })
	counter(MetricWireUDPRetries, "UDP rumor datagrams resent after a response timeout.",
		func(s transport.WireSnapshot) int64 { return s.UDPRetries })
	counter(MetricWireUDPFallbacks, "Rumor pushes that fell back from UDP to pooled TCP.",
		func(s transport.WireSnapshot) int64 { return s.UDPFallbacks })
	counter(MetricWireUDPOversize, "Rumor pushes skipped from UDP as over the datagram budget.",
		func(s transport.WireSnapshot) int64 { return s.UDPOversize })
	counter(MetricWireUDPBytesSent, "UDP fast-path bytes sent, headers included.",
		func(s transport.WireSnapshot) int64 { return s.UDPBytesSent })
	counter(MetricWireUDPBytesReceived, "UDP fast-path bytes received, headers included.",
		func(s transport.WireSnapshot) int64 { return s.UDPBytesReceived })
	reg.GaugeFunc(MetricWireOpenConns, "Gossip client connections currently open.",
		func() float64 { return float64(ws.Snapshot().OpenConns) })

	entries := reg.Histogram(MetricWireEntriesPerExchange,
		"Entries moved per anti-entropy conversation, both directions.",
		wireEntryBuckets)
	bytes := reg.Histogram(MetricWireBytesPerExchange,
		"Framed bytes moved per anti-entropy conversation, both directions.",
		wireByteBuckets)
	ws.SetExchangeObserver(func(entriesSent, entriesReceived int, bytesOut, bytesIn int64) {
		entries.Observe(float64(entriesSent + entriesReceived))
		bytes.Observe(float64(bytesOut + bytesIn))
	})
}
