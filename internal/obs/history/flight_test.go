package history

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestFlightRecorderDump(t *testing.T) {
	rec, err := NewRecorder(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rec.AddSection("events", func() any { return []string{"a", "b"} })
	rec.AddSection("stats", func() any { return map[string]int{"depth": 3} })

	meta, err := rec.Trigger("stale-digest", "site 2 silent", 1234)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Reason != "stale-digest" || meta.At != 1234 || meta.Size == 0 {
		t.Fatalf("meta = %+v", meta)
	}
	if !strings.HasPrefix(meta.Name, "flight-") || !strings.HasSuffix(meta.Name, "-stale-digest.json") {
		t.Fatalf("dump name = %q", meta.Name)
	}

	data, err := rec.Read(meta.Name)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Reason   string         `json:"reason"`
		Detail   string         `json:"detail"`
		At       int64          `json:"at"`
		Sections map[string]any `json:"sections"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if body.Reason != "stale-digest" || body.Detail != "site 2 silent" || body.At != 1234 {
		t.Fatalf("dump body = %+v", body)
	}
	if len(body.Sections) != 2 {
		t.Fatalf("sections = %v", body.Sections)
	}
	if _, ok := body.Sections["events"]; !ok {
		t.Fatal("events section missing")
	}

	list := rec.List()
	if len(list) != 1 || list[0].Name != meta.Name || list[0].Reason != "stale-digest" || list[0].At != 1234 {
		t.Fatalf("List = %+v", list)
	}
}

func TestFlightRecorderEviction(t *testing.T) {
	rec, err := NewRecorder(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if _, err := rec.Trigger("residue-stuck", "", i); err != nil {
			t.Fatal(err)
		}
	}
	list := rec.List()
	if len(list) != 3 {
		t.Fatalf("retained %d dumps, want 3", len(list))
	}
	// Oldest-first: stamps 3, 4, 5 survive.
	for i, want := range []int64{3, 4, 5} {
		if list[i].At != want {
			t.Errorf("list[%d].At = %d, want %d", i, list[i].At, want)
		}
	}
}

func TestFlightRecorderReadGuards(t *testing.T) {
	rec, err := NewRecorder(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"../etc/passwd",
		"/etc/passwd",
		"flight-..-x.json",
		"notflight-1.json",
		"flight-1.txt",
		"flight-1-UPPER.json",
	} {
		if _, err := rec.Read(name); err == nil {
			t.Errorf("Read(%q) succeeded", name)
		}
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var rec *Recorder
	rec.AddSection("x", func() any { return 1 })
	if meta, err := rec.Trigger("r", "", 0); err != nil || meta.Name != "" {
		t.Fatalf("nil Trigger = %+v, %v", meta, err)
	}
	if list := rec.List(); list != nil {
		t.Fatalf("nil List = %+v", list)
	}
	if rec.Dir() != "" {
		t.Fatal("nil Dir nonempty")
	}
}

func TestFlightHandler(t *testing.T) {
	rec, err := NewRecorder(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rec.AddSection("note", func() any { return "hello" })
	meta, err := rec.Trigger("checksum-mismatch", "", 99)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var index struct {
		Dumps []DumpMeta `json:"dumps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&index); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(index.Dumps) != 1 || index.Dumps[0].Name != meta.Name {
		t.Fatalf("index = %+v", index)
	}

	resp, err = srv.Client().Get(srv.URL + "?name=" + meta.Name)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Sections map[string]any `json:"sections"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dump.Sections["note"] != "hello" {
		t.Fatalf("dump = %+v", dump)
	}

	resp, err = srv.Client().Get(srv.URL + "?name=../escape.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("traversal status = %d, want 404", resp.StatusCode)
	}
}
