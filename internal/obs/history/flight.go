package history

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DefaultFlightMax bounds the on-disk dump directory when no limit is
// given: the oldest dump is evicted once more than this many exist.
const DefaultFlightMax = 8

// DumpMeta describes one flight dump on disk.
type DumpMeta struct {
	Name   string `json:"name"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
	At     int64  `json:"at"`
	Size   int64  `json:"size"`
}

// section is one named capture callback contributing to every dump.
type section struct {
	name    string
	capture func() any
}

// Recorder is the anomaly flight recorder: when a trigger fires (a stall
// edge, an outbox overflow burst, persistent checksum divergence), it
// atomically captures every registered section — event-ring window, trace
// spans, the full time-series window, digest directory, wire stats — into
// one JSON dump in a bounded on-disk directory, oldest dump evicted.
//
// Section callbacks run outside the recorder lock and must be safe to
// call at any time. A nil Recorder is inert: AddSection and Trigger are
// no-ops, List returns nothing.
type Recorder struct {
	dir string
	max int

	mu       sync.Mutex
	sections []section
	seq      uint64 // tie-breaker for dumps triggered at the same stamp
}

// NewRecorder builds a recorder writing dumps into dir (created if
// missing), keeping at most max dumps (DefaultFlightMax when max <= 0).
func NewRecorder(dir string, max int) (*Recorder, error) {
	if dir == "" {
		return nil, fmt.Errorf("flight: empty dump directory")
	}
	if max <= 0 {
		max = DefaultFlightMax
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	return &Recorder{dir: dir, max: max}, nil
}

// Dir returns the dump directory.
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// AddSection registers a named capture callback included in every
// subsequent dump. Sections are serialized in registration order.
func (r *Recorder) AddSection(name string, capture func() any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sections = append(r.sections, section{name, capture})
}

// Trigger captures a dump for the given incident: every section callback
// runs, the result is written atomically (temp file + rename) as
// flight-<at>-<seq>-<reason>.json, and dumps beyond the retention bound
// are evicted oldest-first.
func (r *Recorder) Trigger(reason, detail string, at int64) (DumpMeta, error) {
	if r == nil {
		return DumpMeta{}, nil
	}
	r.mu.Lock()
	sections := append([]section(nil), r.sections...)
	r.seq++
	seq := r.seq
	r.mu.Unlock()

	body := struct {
		Reason   string         `json:"reason"`
		Detail   string         `json:"detail,omitempty"`
		At       int64          `json:"at"`
		Sections map[string]any `json:"sections"`
	}{Reason: reason, Detail: detail, At: at, Sections: make(map[string]any, len(sections))}
	for _, s := range sections {
		body.Sections[s.name] = s.capture()
	}
	data, err := json.MarshalIndent(body, "", " ")
	if err != nil {
		return DumpMeta{}, fmt.Errorf("flight: encode dump: %w", err)
	}

	name := fmt.Sprintf("flight-%020d-%04d-%s.json", at, seq, sanitizeReason(reason))
	tmp, err := os.CreateTemp(r.dir, ".flight-*")
	if err != nil {
		return DumpMeta{}, fmt.Errorf("flight: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return DumpMeta{}, fmt.Errorf("flight: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return DumpMeta{}, fmt.Errorf("flight: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(r.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return DumpMeta{}, fmt.Errorf("flight: %w", err)
	}
	r.evict()
	return DumpMeta{Name: name, Reason: reason, Detail: detail, At: at, Size: int64(len(data))}, nil
}

// evict removes the oldest dumps until at most max remain. Dump names
// embed a zero-padded stamp and sequence, so lexicographic order is
// chronological.
func (r *Recorder) evict() {
	names := r.dumpNames()
	for len(names) > r.max {
		os.Remove(filepath.Join(r.dir, names[0]))
		names = names[1:]
	}
}

// dumpNames lists dump filenames in chronological (lexicographic) order.
func (r *Recorder) dumpNames() []string {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && validDumpName(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// List returns the retained dumps, oldest first.
func (r *Recorder) List() []DumpMeta {
	if r == nil {
		return nil
	}
	var out []DumpMeta
	for _, name := range r.dumpNames() {
		meta := DumpMeta{Name: name}
		if info, err := os.Stat(filepath.Join(r.dir, name)); err == nil {
			meta.Size = info.Size()
		}
		trimmed := strings.TrimSuffix(strings.TrimPrefix(name, "flight-"), ".json")
		if parts := strings.SplitN(trimmed, "-", 3); len(parts) == 3 {
			fmt.Sscanf(parts[0], "%d", &meta.At)
			meta.Reason = parts[2]
		}
		out = append(out, meta)
	}
	return out
}

// Read returns the raw JSON of one dump by name. Names are validated
// against the dump filename shape, so path traversal via the admin route
// is impossible.
func (r *Recorder) Read(name string) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("flight: recorder disabled")
	}
	if !validDumpName(name) {
		return nil, fmt.Errorf("flight: invalid dump name %q", name)
	}
	return os.ReadFile(filepath.Join(r.dir, name))
}

// validDumpName accepts exactly the names Trigger generates.
func validDumpName(name string) bool {
	if filepath.Base(name) != name || !strings.HasPrefix(name, "flight-") || !strings.HasSuffix(name, ".json") {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// sanitizeReason maps a trigger reason onto the filename-safe alphabet.
func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, c := range strings.ToLower(reason) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "trigger"
	}
	return b.String()
}

// Handler serves the recorder as the /flight admin route: no query lists
// the dumps as JSON; ?name= streams one raw dump.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if name := req.URL.Query().Get("name"); name != "" {
			data, err := r.Read(name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(data)
			return
		}
		dumps := r.List()
		if dumps == nil {
			dumps = []DumpMeta{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Dir   string     `json:"dir"`
			Dumps []DumpMeta `json:"dumps"`
		}{r.Dir(), dumps})
	})
}
