package history

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"epidemic/internal/obs"
)

// tickSampler builds a sampler over a fresh registry with 1-second ticks
// as the stamp unit, the configuration the simulator uses.
func tickSampler(capSamples int) (*obs.Registry, *Sampler) {
	reg := obs.NewRegistry()
	s := New(reg, Config{
		Step:           time.Second,
		Retention:      time.Duration(capSamples) * time.Second,
		SecondsPerUnit: 1,
	})
	return reg, s
}

func TestSamplerRecordsAndQueries(t *testing.T) {
	reg, s := tickSampler(64)
	c := reg.Counter("epidemic_rounds_total", "help")
	g := reg.Gauge("epidemic_depth", "help")

	for tick := int64(0); tick < 10; tick++ {
		c.Add(3) // 3 rounds per second
		g.Set(float64(10 - tick))
		s.Sample(tick)
	}

	if got, ok := s.Last("epidemic_rounds_total"); !ok || got.V != 30 || got.At != 9 {
		t.Fatalf("Last = %+v ok=%v", got, ok)
	}
	// Delta over the whole window: first sample saw 3, last 30.
	if d, ok := s.Delta("epidemic_rounds_total", 0); !ok || d != 27 {
		t.Fatalf("Delta = %v ok=%v", d, ok)
	}
	// Rate: 27 rounds over 9 seconds.
	if r, ok := s.Rate("epidemic_rounds_total", 0); !ok || math.Abs(r-3) > 1e-12 {
		t.Fatalf("Rate = %v ok=%v", r, ok)
	}
	// Windowed rate over the last 4 seconds: stamps 5..9, 12 rounds / 4s.
	if r, ok := s.Rate("epidemic_rounds_total", 4*time.Second); !ok || math.Abs(r-3) > 1e-12 {
		t.Fatalf("windowed Rate = %v ok=%v", r, ok)
	}
	if min, max, ok := s.MinMax("epidemic_depth", 0); !ok || min != 1 || max != 10 {
		t.Fatalf("MinMax = %v %v ok=%v", min, max, ok)
	}
	pts := s.Points("epidemic_depth", 0, 0)
	if len(pts) != 10 || pts[0].At != 0 || pts[0].V != 10 || pts[9].V != 1 {
		t.Fatalf("Points = %+v", pts)
	}
	// Downsampled to every 3 ticks: stamps 0, 3, 6, 9.
	ds := s.Points("epidemic_depth", 0, 3*time.Second)
	if len(ds) != 4 || ds[1].At != 3 || ds[3].At != 9 {
		t.Fatalf("downsampled Points = %+v", ds)
	}
	if names := s.Names(); len(names) != 2 {
		t.Fatalf("Names = %v", names)
	}
}

func TestSamplerRingWrap(t *testing.T) {
	reg, s := tickSampler(8)
	c := reg.Counter("epidemic_rounds_total", "help")
	for tick := int64(0); tick < 20; tick++ {
		c.Inc()
		s.Sample(tick)
	}
	pts := s.Points("epidemic_rounds_total", 0, 0)
	if len(pts) != 8 {
		t.Fatalf("retained %d points, want 8", len(pts))
	}
	if pts[0].At != 12 || pts[7].At != 19 {
		t.Fatalf("window = [%d, %d], want [12, 19]", pts[0].At, pts[7].At)
	}
	if d, ok := s.Delta("epidemic_rounds_total", 0); !ok || d != 7 {
		t.Fatalf("Delta after wrap = %v ok=%v", d, ok)
	}
}

// TestSamplerLateSeries checks NaN backfill: a series registered mid-run
// must not fabricate values for samples predating it.
func TestSamplerLateSeries(t *testing.T) {
	reg, s := tickSampler(32)
	reg.Counter("epidemic_first_total", "help")
	for tick := int64(0); tick < 5; tick++ {
		s.Sample(tick)
	}
	late := reg.Gauge("epidemic_late", "help")
	late.Set(7)
	for tick := int64(5); tick < 10; tick++ {
		s.Sample(tick)
	}
	pts := s.Points("epidemic_late", 0, 0)
	if len(pts) != 5 || pts[0].At != 5 {
		t.Fatalf("late series points = %+v, want stamps 5..9 only", pts)
	}
	for _, p := range pts {
		if p.V != 7 {
			t.Fatalf("late series value = %v", p.V)
		}
	}
}

func TestSamplerHistogramSeries(t *testing.T) {
	reg, s := tickSampler(16)
	h := reg.Histogram("epidemic_latency_seconds", "help", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	s.Sample(0)
	if got, ok := s.Last("epidemic_latency_seconds:count"); !ok || got.V != 100 {
		t.Fatalf("histogram count series = %+v ok=%v", got, ok)
	}
	p50, ok := s.Last("epidemic_latency_seconds:p50")
	if !ok || math.Abs(p50.V-1.5) > 1e-9 {
		t.Fatalf("p50 series = %+v ok=%v", p50, ok)
	}
	if _, ok := s.Last("epidemic_latency_seconds:p99"); !ok {
		t.Fatal("p99 series missing")
	}
	// The bare histogram name is ambiguous (count + quantiles share it).
	if _, ok := s.Last("epidemic_latency_seconds"); ok {
		t.Fatal("bare histogram name resolved despite ambiguity")
	}
}

// TestSamplerResolvesLabelledSingleton: a bare name resolves iff exactly
// one series carries it.
func TestSamplerResolvesLabelledSingleton(t *testing.T) {
	reg, s := tickSampler(16)
	c := reg.Counter("epidemic_rounds_total", "help", obs.Label{Name: "site", Value: "1"})
	c.Add(5)
	s.Sample(0)
	if got, ok := s.Last("epidemic_rounds_total"); !ok || got.V != 5 {
		t.Fatalf("bare-name singleton = %+v ok=%v", got, ok)
	}
	if got, ok := s.Last(`epidemic_rounds_total{site="1"}`); !ok || got.V != 5 {
		t.Fatalf("exact ID = %+v ok=%v", got, ok)
	}
	reg.Counter("epidemic_rounds_total", "help", obs.Label{Name: "site", Value: "2"})
	s.Sample(1)
	if _, ok := s.Last("epidemic_rounds_total"); ok {
		t.Fatal("ambiguous bare name resolved")
	}
}

func TestSamplerNilAndEmpty(t *testing.T) {
	var nilS *Sampler
	nilS.Sample(0)
	if _, ok := nilS.Last("x"); ok {
		t.Fatal("nil sampler resolved a metric")
	}
	if pts := nilS.Points("x", 0, 0); pts != nil {
		t.Fatal("nil sampler returned points")
	}
	if _, ok := nilS.Rate("x", 0); ok {
		t.Fatal("nil sampler returned a rate")
	}

	_, s := tickSampler(8)
	if _, ok := s.Last("missing"); ok {
		t.Fatal("empty sampler resolved a metric")
	}
	s.Sample(0)
	if _, ok := s.Rate("missing", 0); ok {
		t.Fatal("unknown metric returned a rate")
	}
}

// TestSampleZeroAlloc is the tentpole's steady-state contract: once the
// plan is built, Sample performs zero allocations even with histograms in
// the registry.
func TestSampleZeroAlloc(t *testing.T) {
	reg, s := tickSampler(128)
	daemonSizedRegistry(reg)
	s.Sample(0) // build the plan
	tick := int64(1)
	allocs := testing.AllocsPerRun(200, func() {
		s.Sample(tick)
		tick++
	})
	if allocs != 0 {
		t.Errorf("Sample allocates %v per tick, want 0", allocs)
	}
}

func TestSamplerHandler(t *testing.T) {
	reg, s := tickSampler(32)
	c := reg.Counter("epidemic_rounds_total", "help")
	for tick := int64(0); tick < 5; tick++ {
		c.Add(2)
		s.Sample(tick)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var index struct {
		Series  []string `json:"series"`
		Samples uint64   `json:"samples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&index); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(index.Series) != 1 || index.Samples != 5 {
		t.Fatalf("index = %+v", index)
	}

	resp, err = srv.Client().Get(srv.URL + "?metric=epidemic_rounds_total&window=10s&step=2s")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Metric     string  `json:"metric"`
		RatePerSec float64 `json:"rate_per_sec"`
		Points     []Point `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if body.Metric != "epidemic_rounds_total" || len(body.Points) != 3 {
		t.Fatalf("history reply = %+v", body)
	}
	if math.Abs(body.RatePerSec-2) > 1e-12 {
		t.Fatalf("rate = %v, want 2", body.RatePerSec)
	}

	for _, q := range []string{"?metric=missing", "?metric=epidemic_rounds_total&window=bogus", "?metric=epidemic_rounds_total&step=bogus"} {
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == 200 {
			t.Errorf("%s: status %d, want error", q, resp.StatusCode)
		}
	}
}

// daemonSizedRegistry populates reg with the same shape of series a real
// gossipd registers: ~30 counter/gauge funcs plus latency histograms.
// The funcs read plain variables, so benchmark results isolate the
// sampler's own cost.
func daemonSizedRegistry(reg *obs.Registry) {
	var v float64
	for i := 0; i < 24; i++ {
		reg.CounterFunc(fmt.Sprintf("epidemic_bench_counter_%d_total", i), "help", func() float64 { v++; return v })
	}
	for i := 0; i < 8; i++ {
		reg.GaugeFunc(fmt.Sprintf("epidemic_bench_gauge_%d", i), "help", func() float64 { return 42 })
	}
	for i := 0; i < 3; i++ {
		h := reg.Histogram(fmt.Sprintf("epidemic_bench_hist_%d_seconds", i), "help", nil)
		for j := 0; j < 1000; j++ {
			h.Observe(float64(j) / 100)
		}
	}
}

// BenchmarkHistorySample measures one sampler tick over a daemon-sized
// registry; the acceptance criterion is 0 allocs/op.
func BenchmarkHistorySample(b *testing.B) {
	reg := obs.NewRegistry()
	daemonSizedRegistry(reg)
	s := New(reg, Config{Step: time.Second, Retention: 15 * time.Minute})
	s.Sample(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(int64(i))
	}
}
