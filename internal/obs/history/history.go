// Package history retains on-node metric time series: a fixed-cadence
// sampler walks an obs.Registry and records every counter and gauge (and
// derived histogram quantile summaries) into bounded per-series ring
// buffers, with windowed query helpers — Rate, Delta, MinMax, and
// downsampled point extraction.
//
// The paper's observables (§1.4 residue, traffic, t_avg/t_last) are
// trajectories, not points; this package is what lets a daemon answer
// "how did I get here" without an external Prometheus. The steady-state
// sample path is allocation-free: the sampler caches a reader plan keyed
// on the registry's generation counter and rebuilds it only when a new
// series is registered, and every histogram reader reuses a preallocated
// bucket-count scratch buffer.
//
// Timestamps are abstract int64 stamps in the same spirit as the cluster
// digest directory: wall-clock nanoseconds on daemons, ticks under the
// simulator's deterministic clock. Config.SecondsPerUnit converts stamp
// deltas to seconds for rate math.
package history

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"epidemic/internal/obs"
)

// Defaults for the sampling cadence and retention window: one sample per
// second for fifteen minutes, i.e. 900 points per series.
const (
	DefaultStep      = time.Second
	DefaultRetention = 15 * time.Minute
)

// DefaultQuantiles are the histogram summary quantiles recorded as
// derived series (p50 and p99, the columns `gossipctl top` renders).
var DefaultQuantiles = []float64{0.5, 0.99}

// Config shapes a Sampler. Zero values select the defaults above;
// SecondsPerUnit defaults to 1e-9 (stamps are wall-clock nanoseconds).
type Config struct {
	Step           time.Duration // sampling cadence the caller will drive
	Retention      time.Duration // how much trajectory to retain
	SecondsPerUnit float64       // seconds per stamp unit (1e-9 for ns, 1 for sim ticks)
	Quantiles      []float64     // histogram quantiles recorded as derived series
}

// Point is one retained sample: the stamp it was taken at and the value.
type Point struct {
	At int64   `json:"at"`
	V  float64 `json:"v"`
}

// Series is one retained time series. Scalar registry series keep their
// registry ID (name plus canonical label rendering); histograms appear as
// derived series with ":count" and ":p<q>" suffixes.
type Series struct {
	id   string
	name string
	kind string    // "counter" or "gauge"
	vals []float64 // ring indexed by absolute sample count % capacity
	born uint64    // absolute sample index at which this series appeared
}

// ID returns the series' unique identifier.
func (se *Series) ID() string { return se.id }

// Kind returns "counter" or "gauge" (derived quantile series are gauges,
// derived count series counters).
func (se *Series) Kind() string { return se.kind }

// Sampler records registry samples into bounded rings. All methods are
// safe for concurrent use; a nil Sampler is inert (Sample is a no-op and
// queries report no data).
type Sampler struct {
	reg       *obs.Registry
	step      time.Duration
	retention time.Duration
	perUnit   float64
	quantiles []float64
	capacity  int

	mu     sync.Mutex
	gen    uint64
	built  bool
	plan   []func(slot int)
	series map[string]*Series
	byName map[string][]*Series
	ids    []string // sorted series IDs, rebuilt with the plan
	times  []int64  // ring of sample stamps
	count  uint64   // absolute samples taken
}

// New builds a sampler over reg. The caller drives the cadence by calling
// Sample (or Run); cfg.Step only sizes the rings: capacity =
// Retention/Step samples.
func New(reg *obs.Registry, cfg Config) *Sampler {
	if cfg.Step <= 0 {
		cfg.Step = DefaultStep
	}
	if cfg.Retention <= 0 {
		cfg.Retention = DefaultRetention
	}
	if cfg.SecondsPerUnit <= 0 {
		cfg.SecondsPerUnit = 1e-9
	}
	if cfg.Quantiles == nil {
		cfg.Quantiles = DefaultQuantiles
	}
	capacity := int(cfg.Retention / cfg.Step)
	if capacity < 2 {
		capacity = 2
	}
	return &Sampler{
		reg:       reg,
		step:      cfg.Step,
		retention: cfg.Retention,
		perUnit:   cfg.SecondsPerUnit,
		quantiles: append([]float64(nil), cfg.Quantiles...),
		capacity:  capacity,
		series:    make(map[string]*Series),
		byName:    make(map[string][]*Series),
		times:     make([]int64, capacity),
	}
}

// Step returns the configured sampling cadence.
func (s *Sampler) Step() time.Duration {
	if s == nil {
		return 0
	}
	return s.step
}

// SecondsPerUnit returns the stamp-to-seconds conversion factor.
func (s *Sampler) SecondsPerUnit() float64 {
	if s == nil {
		return 1e-9
	}
	return s.perUnit
}

// Capacity returns how many samples each series retains.
func (s *Sampler) Capacity() int {
	if s == nil {
		return 0
	}
	return s.capacity
}

// Samples returns how many samples have been taken so far (unbounded;
// only the last Capacity are retained).
func (s *Sampler) Samples() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Sample takes one sample of every registered series at stamp now. The
// steady-state path — no new series since the last call — performs no
// allocations: it walks the cached plan and writes one float per series
// into preallocated rings.
func (s *Sampler) Sample(now int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g := s.reg.Generation(); !s.built || g != s.gen {
		s.rebuildLocked()
		s.gen = g
		s.built = true
	}
	slot := int(s.count % uint64(s.capacity))
	s.times[slot] = now
	for _, fn := range s.plan {
		fn(slot)
	}
	s.count++
}

// Run samples every Step until stop is closed, stamping samples with
// time.Now().UnixNano(). The first sample is taken immediately so query
// routes have data as soon as the daemon is up.
func (s *Sampler) Run(stop <-chan struct{}) {
	if s == nil {
		return
	}
	s.Sample(time.Now().UnixNano())
	t := time.NewTicker(s.step)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			s.Sample(now.UnixNano())
		}
	}
}

// rebuildLocked regenerates the reader plan from the registry. Called
// with s.mu held, only when the registry generation moved.
func (s *Sampler) rebuildLocked() {
	s.plan = s.plan[:0]
	s.reg.VisitSeries(func(v obs.SeriesView) {
		switch {
		case v.Counter != nil:
			se := s.ensureLocked(v.ID, v.Name, "counter")
			c := v.Counter
			s.plan = append(s.plan, func(slot int) { se.vals[slot] = float64(c.Value()) })
		case v.Gauge != nil:
			se := s.ensureLocked(v.ID, v.Name, "gauge")
			g := v.Gauge
			s.plan = append(s.plan, func(slot int) { se.vals[slot] = g.Value() })
		case v.Value != nil:
			se := s.ensureLocked(v.ID, v.Name, v.Type)
			fn := v.Value
			s.plan = append(s.plan, func(slot int) { se.vals[slot] = fn() })
		case v.Histogram != nil:
			h := v.Histogram
			scratch := make([]uint64, h.NumBuckets())
			countSe := s.ensureLocked(v.ID+":count", v.Name, "counter")
			qSeries := make([]*Series, len(s.quantiles))
			for i, q := range s.quantiles {
				qSeries[i] = s.ensureLocked(v.ID+":p"+quantileSuffix(q), v.Name, "gauge")
			}
			quantiles := s.quantiles
			s.plan = append(s.plan, func(slot int) {
				total := h.CountsInto(scratch)
				countSe.vals[slot] = float64(total)
				for i, q := range quantiles {
					qSeries[i].vals[slot] = h.QuantileFromCounts(scratch, total, q)
				}
			})
		}
	})
	s.ids = s.ids[:0]
	for id := range s.series {
		s.ids = append(s.ids, id)
	}
	sort.Strings(s.ids)
}

// quantileSuffix renders 0.5 -> "50", 0.99 -> "99", 0.999 -> "99.9".
func quantileSuffix(q float64) string {
	return strconv.FormatFloat(q*100, 'g', -1, 64)
}

// ensureLocked fetches or creates a series ring. New rings are NaN-filled
// so windows reaching back before the series existed read as gaps, not
// zeros.
func (s *Sampler) ensureLocked(id, name, kind string) *Series {
	if se, ok := s.series[id]; ok {
		return se
	}
	se := &Series{id: id, name: name, kind: kind, vals: make([]float64, s.capacity), born: s.count}
	for i := range se.vals {
		se.vals[i] = math.NaN()
	}
	s.series[id] = se
	s.byName[name] = append(s.byName[name], se)
	return se
}

// resolveLocked maps a query string to a series: an exact ID match wins;
// otherwise a bare metric name resolves iff exactly one series carries it.
func (s *Sampler) resolveLocked(metric string) *Series {
	if se, ok := s.series[metric]; ok {
		return se
	}
	if list := s.byName[metric]; len(list) == 1 {
		return list[0]
	}
	return nil
}

// boundsLocked returns the absolute index range [lo, hi] of retained
// samples valid for se (hi inclusive), or ok=false when none exist.
func (s *Sampler) boundsLocked(se *Series) (lo, hi uint64, ok bool) {
	if s.count == 0 {
		return 0, 0, false
	}
	hi = s.count - 1
	lo = 0
	if s.count > uint64(s.capacity) {
		lo = s.count - uint64(s.capacity)
	}
	if se.born > lo {
		lo = se.born
	}
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// windowLocked narrows [lo, hi] to samples with stamps inside the window
// ending at the newest sample, then trims NaN gaps at both ends. ok is
// false when no finite samples remain.
func (s *Sampler) windowLocked(se *Series, window time.Duration) (lo, hi uint64, ok bool) {
	lo, hi, ok = s.boundsLocked(se)
	if !ok {
		return 0, 0, false
	}
	if window > 0 {
		cutoff := float64(s.times[hi%uint64(s.capacity)]) - window.Seconds()/s.perUnit
		for lo < hi && float64(s.times[lo%uint64(s.capacity)]) < cutoff {
			lo++
		}
	}
	cap64 := uint64(s.capacity)
	for lo <= hi && math.IsNaN(se.vals[lo%cap64]) {
		lo++
	}
	for hi > lo && math.IsNaN(se.vals[hi%cap64]) {
		hi--
	}
	if lo > hi || math.IsNaN(se.vals[hi%cap64]) {
		return 0, 0, false
	}
	return lo, hi, true
}

// Last returns the newest retained sample of metric.
func (s *Sampler) Last(metric string) (Point, bool) {
	if s == nil {
		return Point{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.resolveLocked(metric)
	if se == nil {
		return Point{}, false
	}
	_, hi, ok := s.windowLocked(se, 0)
	if !ok {
		return Point{}, false
	}
	cap64 := uint64(s.capacity)
	return Point{At: s.times[hi%cap64], V: se.vals[hi%cap64]}, true
}

// Delta returns newest minus oldest value of metric across the window
// ending at the newest sample. For counters this is the increase over the
// window. At least two finite samples are required.
func (s *Sampler) Delta(metric string, window time.Duration) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deltaLocked(metric, window)
}

func (s *Sampler) deltaLocked(metric string, window time.Duration) (float64, bool) {
	se := s.resolveLocked(metric)
	if se == nil {
		return 0, false
	}
	lo, hi, ok := s.windowLocked(se, window)
	if !ok || lo == hi {
		return 0, false
	}
	cap64 := uint64(s.capacity)
	return se.vals[hi%cap64] - se.vals[lo%cap64], true
}

// Rate returns Delta divided by the elapsed seconds between the oldest
// and newest samples actually used — per-second rate over the window.
func (s *Sampler) Rate(metric string, window time.Duration) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.resolveLocked(metric)
	if se == nil {
		return 0, false
	}
	lo, hi, ok := s.windowLocked(se, window)
	if !ok || lo == hi {
		return 0, false
	}
	cap64 := uint64(s.capacity)
	elapsed := float64(s.times[hi%cap64]-s.times[lo%cap64]) * s.perUnit
	if elapsed <= 0 {
		return 0, false
	}
	return (se.vals[hi%cap64] - se.vals[lo%cap64]) / elapsed, true
}

// MinMax returns the smallest and largest finite values of metric inside
// the window.
func (s *Sampler) MinMax(metric string, window time.Duration) (min, max float64, ok bool) {
	if s == nil {
		return 0, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.resolveLocked(metric)
	if se == nil {
		return 0, 0, false
	}
	lo, hi, found := s.windowLocked(se, window)
	if !found {
		return 0, 0, false
	}
	cap64 := uint64(s.capacity)
	min, max = math.Inf(1), math.Inf(-1)
	for i := lo; i <= hi; i++ {
		v := se.vals[i%cap64]
		if math.IsNaN(v) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, true
}

// Points extracts the retained samples of metric inside the window,
// oldest first, downsampled so consecutive points are at least step
// apart (step <= 0 returns every sample). NaN gaps are skipped.
func (s *Sampler) Points(metric string, window, step time.Duration) []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.resolveLocked(metric)
	if se == nil {
		return nil
	}
	lo, hi, ok := s.windowLocked(se, window)
	if !ok {
		return nil
	}
	cap64 := uint64(s.capacity)
	stride := 0.0
	if step > 0 {
		stride = step.Seconds() / s.perUnit
	}
	out := make([]Point, 0, hi-lo+1)
	next := math.Inf(-1)
	for i := lo; i <= hi; i++ {
		at, v := s.times[i%cap64], se.vals[i%cap64]
		if math.IsNaN(v) || float64(at) < next {
			continue
		}
		out = append(out, Point{At: at, V: v})
		next = float64(at) + stride
	}
	return out
}

// Names returns the sorted IDs of every retained series.
func (s *Sampler) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.ids...)
}

// Handler serves the sampler as the /metrics/history admin route. With no
// ?metric= it lists series IDs; with one it returns the windowed,
// optionally downsampled points:
//
//	/metrics/history?metric=epidemic_rumor_rounds_total&window=5m&step=10s
func (s *Sampler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		q := req.URL.Query()
		metric := q.Get("metric")
		if metric == "" {
			_ = json.NewEncoder(w).Encode(struct {
				Step           string   `json:"step"`
				SecondsPerUnit float64  `json:"seconds_per_unit"`
				Samples        uint64   `json:"samples"`
				Series         []string `json:"series"`
			}{s.Step().String(), s.SecondsPerUnit(), s.Samples(), s.Names()})
			return
		}
		var window, step time.Duration
		if v := q.Get("window"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad window", http.StatusBadRequest)
				return
			}
			window = d
		}
		if v := q.Get("step"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad step", http.StatusBadRequest)
				return
			}
			step = d
		}
		points := s.Points(metric, window, step)
		if points == nil {
			s.mu.Lock()
			_, known := s.series[metric]
			if !known {
				known = len(s.byName[metric]) > 0
			}
			s.mu.Unlock()
			if !known {
				http.Error(w, "unknown metric", http.StatusNotFound)
				return
			}
			points = []Point{}
		}
		rate, _ := s.Rate(metric, window)
		delta, _ := s.Delta(metric, window)
		_ = json.NewEncoder(w).Encode(struct {
			Metric         string  `json:"metric"`
			SecondsPerUnit float64 `json:"seconds_per_unit"`
			RatePerSec     float64 `json:"rate_per_sec"`
			Delta          float64 `json:"delta"`
			Points         []Point `json:"points"`
		}{metric, s.SecondsPerUnit(), rate, delta, points})
	})
}

// SnapshotWindow bundles every series' windowed points — the flight
// recorder's time-series section, so a dump carries the full trajectory
// covering the incident.
func (s *Sampler) SnapshotWindow(window time.Duration) map[string][]Point {
	if s == nil {
		return nil
	}
	out := make(map[string][]Point)
	for _, id := range s.Names() {
		if pts := s.Points(id, window, 0); len(pts) > 0 {
			out[id] = pts
		}
	}
	return out
}
