package obs

import (
	"testing"
)

// TestRegistryGeneration checks the generation counter moves exactly when
// a new series appears — the contract the history sampler's cached plan
// rebuild relies on.
func TestRegistryGeneration(t *testing.T) {
	r := NewRegistry()
	if g := r.Generation(); g != 0 {
		t.Fatalf("fresh registry generation = %d", g)
	}
	c := r.Counter("epidemic_test_total", "help")
	g1 := r.Generation()
	if g1 == 0 {
		t.Fatal("generation did not move on first registration")
	}
	// Idempotent re-registration must not move the generation.
	if again := r.Counter("epidemic_test_total", "help"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	if g := r.Generation(); g != g1 {
		t.Fatalf("generation moved on re-registration: %d -> %d", g1, g)
	}
	// A new label set on the same family is a new series.
	r.Counter("epidemic_test_total", "help", Label{"site", "2"})
	if g := r.Generation(); g <= g1 {
		t.Fatalf("generation did not move on new series: %d", g)
	}
	g2 := r.Generation()
	r.Gauge("epidemic_test_gauge", "help")
	if g := r.Generation(); g <= g2 {
		t.Fatalf("generation did not move on new family: %d", g)
	}
}

// TestVisitSeries checks the walk covers every metric shape with stable
// ordering and usable accessors.
func TestVisitSeries(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("b_total", "help")
	c.Add(7)
	g := r.Gauge("a_gauge", "help")
	g.Set(2.5)
	r.GaugeFunc("c_func", "help", func() float64 { return 42 })
	h := r.Histogram("d_hist", "help", []float64{1, 2})
	h.Observe(1.5)

	var got []SeriesView
	r.VisitSeries(func(v SeriesView) { got = append(got, v) })
	if len(got) != 4 {
		t.Fatalf("visited %d series, want 4", len(got))
	}
	// Name-sorted: a_gauge, b_total, c_func, d_hist.
	wantOrder := []string{"a_gauge", "b_total", "c_func", "d_hist"}
	for i, name := range wantOrder {
		if got[i].Name != name || got[i].ID != name {
			t.Errorf("visit[%d] = %q (id %q), want %q", i, got[i].Name, got[i].ID, name)
		}
	}
	if got[0].Gauge == nil || got[0].Gauge.Value() != 2.5 {
		t.Errorf("gauge view = %+v", got[0])
	}
	if got[1].Counter == nil || got[1].Counter.Value() != 7 {
		t.Errorf("counter view = %+v", got[1])
	}
	if got[2].Value == nil || got[2].Value() != 42 || got[2].Type != "gauge" {
		t.Errorf("func view = %+v", got[2])
	}
	if got[3].Histogram == nil || got[3].Histogram.Count() != 1 {
		t.Errorf("histogram view = %+v", got[3])
	}

	// Labelled series get the canonical label rendering in their ID.
	r.Counter("b_total", "help", Label{"site", "1"})
	var ids []string
	r.VisitSeries(func(v SeriesView) {
		if v.Name == "b_total" {
			ids = append(ids, v.ID)
		}
	})
	if len(ids) != 2 || ids[0] != "b_total" || ids[1] != `b_total{site="1"}` {
		t.Errorf("b_total ids = %v", ids)
	}

	// The callback may register metrics without deadlocking.
	r.VisitSeries(func(v SeriesView) {
		r.Counter("e_reentrant_total", "help")
	})
}
