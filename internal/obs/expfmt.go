package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition checks that r holds well-formed Prometheus text
// exposition format (version 0.0.4): parseable HELP/TYPE comments, sample
// lines with valid names, labels, and values, TYPE declared at most once
// and before the family's samples, and complete histogram families
// (_bucket with le="+Inf", _sum, _count). It is the scrape-side oracle the
// obs-smoke gate and tests use to fail on malformed output.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)

	typed := make(map[string]string)        // family -> declared type
	sampled := make(map[string]bool)        // family -> any sample seen
	histParts := make(map[string][3]bool)   // histogram family -> {bucket+Inf, sum, count}
	seenSeries := make(map[string]struct{}) // duplicate sample detection
	lineNo := 0
	samples := 0

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				name := fields[2]
				if !metricNameRe.MatchString(name) {
					return fmt.Errorf("line %d: invalid metric name %q in %s", lineNo, name, fields[1])
				}
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return fmt.Errorf("line %d: TYPE needs a type", lineNo)
					}
					typ := fields[3]
					switch typ {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return fmt.Errorf("line %d: unknown type %q", lineNo, typ)
					}
					if _, dup := typed[name]; dup {
						return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
					}
					if sampled[name] {
						return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
					}
					typed[name] = typ
				}
			}
			continue // other comments are legal
		}

		name, labels, value, rest, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if rest != "" { // optional timestamp
			if _, err := strconv.ParseInt(rest, 10, 64); err != nil {
				return fmt.Errorf("line %d: bad timestamp %q", lineNo, rest)
			}
		}
		samples++
		fam := familyOf(name, typed)
		sampled[fam] = true
		seriesKey := name + labels
		if _, dup := seenSeries[seriesKey]; dup {
			return fmt.Errorf("line %d: duplicate sample %s%s", lineNo, name, labels)
		}
		seenSeries[seriesKey] = struct{}{}
		if typed[fam] == "histogram" {
			parts := histParts[fam]
			switch {
			case name == fam+"_bucket":
				if strings.Contains(labels, `le="+Inf"`) {
					parts[0] = true
				}
			case name == fam+"_sum":
				parts[1] = true
			case name == fam+"_count":
				parts[2] = true
			case name == fam:
				return fmt.Errorf("line %d: histogram %s has a bare sample", lineNo, fam)
			}
			histParts[fam] = parts
		}
		_ = value
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	for fam, typ := range typed {
		if typ != "histogram" {
			continue
		}
		parts := histParts[fam]
		if !parts[0] || !parts[1] || !parts[2] {
			return fmt.Errorf("histogram %s incomplete: le=+Inf bucket/sum/count = %v/%v/%v",
				fam, parts[0], parts[1], parts[2])
		}
	}
	return nil
}

// familyOf strips histogram sample suffixes when the base name was
// declared as a histogram family.
func familyOf(name string, typed map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && typed[base] == "histogram" {
			return base
		}
	}
	return name
}

// parseSample splits `name{labels} value [timestamp]`, returning the
// rendered label string (or "") and the remainder after the value.
func parseSample(line string) (name, labels string, value float64, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", 0, "", fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !metricNameRe.MatchString(name) {
		return "", "", 0, "", fmt.Errorf("invalid metric name %q", name)
	}
	remainder := line[i:]
	if remainder[0] == '{' {
		end, err := scanLabels(remainder)
		if err != nil {
			return "", "", 0, "", err
		}
		labels = remainder[:end]
		remainder = remainder[end:]
	}
	fields := strings.Fields(remainder)
	if len(fields) == 0 || len(fields) > 2 {
		return "", "", 0, "", fmt.Errorf("sample %q needs `value [timestamp]`", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", "", 0, "", fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		rest = fields[1]
	}
	return name, labels, value, rest, nil
}

// scanLabels validates a `{a="b",...}` block starting at s[0]=='{' and
// returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block in %q", s)
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return 0, fmt.Errorf("label without '=' in %q", s)
		}
		lname := s[i : i+j]
		if !labelNameRe.MatchString(lname) {
			return 0, fmt.Errorf("invalid label name %q", lname)
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++ // past opening quote
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value in %q", s)
			}
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				i++
				break
			}
			i++
		}
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// parseValue accepts ordinary floats plus the exposition spellings
// +Inf/-Inf/NaN, all of which strconv handles directly.
func parseValue(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}
