package obs

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/node"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
	"epidemic/internal/transport"
)

// scrape renders reg and returns the value of the series whose name (with
// any label set) matches exactly.
func scrape(t *testing.T, reg *Registry, series string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == series {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not exposed:\n%s", series, sb.String())
	return 0
}

// TestInstrumentWire drives a pooled anti-entropy exchange plus a redial
// through an instrumented WireStats and asserts every epidemic_wire_*
// metric moved.
func TestInstrumentWire(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)
	mkNode := func(site timestamp.SiteID) *node.Node {
		n, err := node.New(node.Config{Site: site, Clock: src.ClockAt(site)})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	remote := mkNode(2)
	srv, err := transport.Serve(remote, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	reg := NewRegistry()
	ws := &transport.WireStats{}
	InstrumentWire(reg, ws)

	local := store.New(1, src.ClockAt(1))
	local.Update("mine", store.Value("v"))
	remote.Store().Update("theirs", store.Value("w"))

	peer := transport.NewTCPPeerWith(2, addr, transport.PeerOptions{
		Timeout: 2 * time.Second, Stats: ws, UDP: true,
	})
	defer peer.Close()
	// One small push rides the UDP fast path.
	if _, err := peer.PushRumors([]store.Entry{
		{Key: "rumor", Value: store.Value("r"), Stamp: timestamp.T{Time: 9, Site: 1, Seq: 9}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	cfg := core.ResolveConfig{
		Mode: core.PushPull, Strategy: core.CompareRecent,
		Tau: 1 << 40, Tau1: 1 << 40,
	}
	if _, err := peer.AntiEntropy(cfg, local, nil); err != nil {
		t.Fatal(err)
	}
	// A second conversation reuses the pooled session.
	if _, err := peer.AntiEntropy(cfg, local, nil); err != nil {
		t.Fatal(err)
	}

	for name, min := range map[string]float64{
		MetricWireDials:                         1,
		MetricWireReuses:                        1,
		MetricWireOpenConns:                     1,
		MetricWireBytesSent:                     1,
		MetricWireBytesReceived:                 1,
		MetricWireExchanges:                     2,
		MetricWireEntriesPerExchange + "_count": 2,
		MetricWireBytesPerExchange + "_count":   2,
		MetricWireSessionsBinary:                1,
		MetricWireMsgsBinary:                    1,
		MetricWireUDPPushes:                     1,
		MetricWireUDPBytesSent:                  1,
		MetricWireUDPBytesReceived:              1,
	} {
		if got := scrape(t, reg, name); got < min {
			t.Errorf("%s = %v, want >= %v", name, got, min)
		}
	}
	if got := scrape(t, reg, MetricWireRedials); got != 0 {
		t.Errorf("redials before restart = %v", got)
	}

	// Restart the remote on the same address: the pooled session is now a
	// dead socket, and the next request must dial a replacement.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := transport.Serve(mkNode(2), addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if _, err := peer.AntiEntropy(cfg, local, nil); err != nil {
		t.Fatalf("exchange through restarted remote: %v", err)
	}
	if got := scrape(t, reg, MetricWireRedials); got < 1 {
		t.Errorf("%s = %v after restart, want >= 1", MetricWireRedials, got)
	}

	// Age a fresh divergence past the recent window so the next exchange
	// has to localize it: that is the shard-vector narrow path, and its
	// counters must move.
	local.Update("aged", store.Value("old"))
	src.Advance(1 << 20)
	aged := core.ResolveConfig{
		Mode: core.PushPull, Strategy: core.CompareRecent,
		Tau: 1, Tau1: 1 << 40,
	}
	if _, err := peer.AntiEntropy(aged, local, nil); err != nil {
		t.Fatal(err)
	}
	if got := scrape(t, reg, MetricWireShardVecExchanges); got < 1 {
		t.Errorf("%s = %v, want >= 1", MetricWireShardVecExchanges, got)
	}
	if got := scrape(t, reg, MetricWireShardVecShards); got < 1 {
		t.Errorf("%s = %v, want >= 1", MetricWireShardVecShards, got)
	}
	if got := scrape(t, reg, MetricWireShardVecDowngrades); got != 0 {
		t.Errorf("%s = %v, want 0", MetricWireShardVecDowngrades, got)
	}
}
