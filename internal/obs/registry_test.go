package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("epidemic_test_total", "a counter")
	c.Inc()
	c.Add(2)
	g := r.Gauge("epidemic_gauge", "a gauge", Label{"site", "3"})
	g.Set(1.5)
	g.Add(-0.5)
	r.CounterFunc("epidemic_func_total", "from fn", func() float64 { return 42 })

	out := render(t, r)
	for _, want := range []string{
		"# HELP epidemic_test_total a counter\n# TYPE epidemic_test_total counter\nepidemic_test_total 3\n",
		"# TYPE epidemic_gauge gauge\nepidemic_gauge{site=\"3\"} 1\n",
		"epidemic_func_total 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("own exposition invalid: %v", err)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("epidemic_same_total", "x", Label{"site", "1"})
	b := r.Counter("epidemic_same_total", "x", Label{"site", "1"})
	if a != b {
		t.Error("same (name, labels) must return the same collector")
	}
	other := r.Counter("epidemic_same_total", "x", Label{"site", "2"})
	if a == other {
		t.Error("distinct labels must be distinct series")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("epidemic_conflict", "x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as gauge must panic")
		}
	}()
	r.Gauge("epidemic_conflict", "x")
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("epidemic_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Errorf("sum = %v", got)
	}
	out := render(t, r)
	for _, want := range []string{
		`epidemic_lat_seconds_bucket{le="0.1"} 1`,
		`epidemic_lat_seconds_bucket{le="1"} 3`,
		`epidemic_lat_seconds_bucket{le="10"} 4`,
		`epidemic_lat_seconds_bucket{le="+Inf"} 5`,
		`epidemic_lat_seconds_sum 56.05`,
		`epidemic_lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("own exposition invalid: %v", err)
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("epidemic_edge_seconds", "x", []float64{1, 2})
	h.Observe(1) // le="1" counts v <= 1
	out := render(t, r)
	if !strings.Contains(out, `epidemic_edge_seconds_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not in le=1 bucket:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("epidemic_esc", "h", Label{"path", `a"b\c` + "\n"}).Set(1)
	out := render(t, r)
	if !strings.Contains(out, `path="a\"b\\c\n"`) {
		t.Errorf("labels not escaped:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("escaped exposition invalid: %v", err)
	}
}

func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("epidemic_conc_total", "x")
	h := r.Histogram("epidemic_conc_seconds", "x", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.5)
				_ = r.WritePrometheus(io.Discard)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counter = %d, histogram count = %d", c.Value(), h.Count())
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("epidemic_h_total", "x").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if err := ValidateExposition(resp.Body); err != nil {
		t.Errorf("served exposition invalid: %v", err)
	}
}
