package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default histogram buckets, in seconds: they span the
// paper's convergence-time range from sub-10ms LAN rounds out to the
// multi-minute anti-entropy residue tail (Tables 1-4).
var DefBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Histogram is a fixed-bucket histogram with an atomic hot path: Observe
// is one binary search plus two atomic adds, no locks.
type Histogram struct {
	upper  []float64       // sorted upper bounds, excluding +Inf
	counts []atomic.Uint64 // len(upper)+1; the last slot is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-updated
}

func newHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket")
	}
	if !sort.Float64sAreSorted(buckets) {
		panic("obs: histogram buckets must be sorted")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] == buckets[i-1] {
			panic(fmt.Sprintf("obs: duplicate histogram bucket %v", buckets[i]))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], 1) {
		buckets = buckets[:len(buckets)-1] // +Inf is implicit
	}
	return &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }
