package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default histogram buckets, in seconds: they span the
// paper's convergence-time range from sub-10ms LAN rounds out to the
// multi-minute anti-entropy residue tail (Tables 1-4).
var DefBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Histogram is a fixed-bucket histogram with an atomic hot path: Observe
// is one binary search plus two atomic adds, no locks.
type Histogram struct {
	upper  []float64       // sorted upper bounds, excluding +Inf
	counts []atomic.Uint64 // len(upper)+1; the last slot is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-updated
}

func newHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket")
	}
	if !sort.Float64sAreSorted(buckets) {
		panic("obs: histogram buckets must be sorted")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] == buckets[i-1] {
			panic(fmt.Sprintf("obs: duplicate histogram bucket %v", buckets[i]))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], 1) {
		buckets = buckets[:len(buckets)-1] // +Inf is implicit
	}
	return &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// NumBuckets returns the number of count slots, including the implicit
// +Inf overflow bucket — the length callers must size CountsInto scratch
// buffers to.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// CountsInto snapshots the per-bucket counts into dst (which must have
// length NumBuckets) and returns the total observation count. It performs
// no allocation, so fixed-cadence samplers can reuse one scratch buffer
// per histogram. Observe may race; a torn-but-monotone view only shifts
// downstream estimates by the in-flight samples.
func (h *Histogram) CountsInto(dst []uint64) uint64 {
	var total uint64
	for i := range h.counts {
		dst[i] = h.counts[i].Load()
		total += dst[i]
	}
	return total
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts
// using linear interpolation within the target bucket — the same estimator
// Prometheus's histogram_quantile applies server-side, done here so a
// process can summarize its own latency histograms (the cluster digest's
// p50/p99 columns).
//
// Boundary behavior, pinned by tests: NaN when q is out of range or the
// histogram is empty; q=0 returns the lower edge of the first nonempty
// bucket (0 for the first finite bucket); a single sample interpolates
// within its bucket, so q=1 on one sample returns that bucket's upper
// bound; samples landing in the +Inf overflow bucket are clamped to the
// last finite upper bound — the estimate saturates rather than inventing
// an unbounded value.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.counts))
	total := h.CountsInto(counts)
	return h.QuantileFromCounts(counts, total, q)
}

// QuantileFromCounts is Quantile over an externally held snapshot taken
// with CountsInto — the allocation-free form used on sampler hot paths,
// where one CountsInto snapshot feeds several quantiles.
func (h *Histogram) QuantileFromCounts(counts []uint64, total uint64, q float64) float64 {
	if math.IsNaN(q) || q < 0 || q > 1 || total == 0 {
		return math.NaN()
	}
	rank := q * float64(total) // fractional target rank in [0, total]
	var cum uint64
	for i, c := range counts {
		prev := cum
		cum += c
		// Skip empty buckets and buckets wholly below the rank; without the
		// c == 0 guard, q=0 would satisfy cum >= rank at the first (possibly
		// empty) bucket and report its bound instead of where data lives.
		if c == 0 || float64(cum) < rank {
			continue
		}
		if i == len(counts)-1 {
			// +Inf bucket: clamp to the largest finite bound.
			return h.upper[len(h.upper)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.upper[i-1]
		}
		hi := h.upper[i]
		// Interpolate the rank's position within [lo, hi].
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return h.upper[len(h.upper)-1]
}
