// Package parallel is the Monte Carlo trial-execution engine behind
// package experiments: it fans independent trials out across worker
// goroutines while keeping results bit-for-bit reproducible.
//
// Reproducibility rests on two rules:
//
//   - Every trial draws from its own *rand.Rand seeded by
//     TrialSeed(seed, trial), a splitmix64-style mix of the experiment
//     seed and the trial index. No trial ever observes another trial's
//     RNG stream, so the numbers a trial sees are independent of which
//     worker ran it, or when.
//   - Results land in a slice indexed by trial, and callers reduce that
//     slice in index order. Floating-point accumulation order is
//     therefore fixed, making parallel runs byte-identical to
//     sequential ones.
//
// The worker count defaults to GOMAXPROCS and can be overridden
// globally with SetMaxWorkers (the epidemicsim -workers flag) — with
// any worker count, including 1, the same seed produces the same
// results.
package parallel

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// TrialSeed derives the RNG seed for one trial from the experiment seed
// and the trial index. It is the nth output of a splitmix64 generator
// started at seed: the index is spread by the 64-bit golden ratio and
// run through the splitmix64 finalizer, so adjacent trial indices (and
// adjacent experiment seeds) yield statistically independent streams.
func TrialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + (uint64(trial)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// TrialRNG returns a fresh RNG for one trial.
func TrialRNG(seed int64, trial int) *rand.Rand {
	return rand.New(rand.NewSource(TrialSeed(seed, trial)))
}

// maxWorkers caps the number of concurrent workers; 0 means GOMAXPROCS.
var maxWorkers atomic.Int64

// SetMaxWorkers overrides the global worker cap. n <= 0 restores the
// default (GOMAXPROCS). It returns the previous setting.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkers.Swap(int64(n)))
}

// Workers reports the worker count a Run started now would use.
func Workers() int {
	if n := int(maxWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes fn for every trial in [0, trials) and returns the
// results indexed by trial. Each invocation receives an RNG private to
// that trial, seeded by TrialSeed(seed, trial); fn must take all its
// randomness from it and must not share mutable state across trials.
// Trials run concurrently on up to Workers() goroutines; with one
// worker they run sequentially on the calling goroutine. Either way the
// returned slice is identical for identical (trials, seed, fn).
//
// If any trial returns an error, Run cancels undispatched trials and
// returns the error of the lowest-indexed failing trial.
func Run[T any](trials int, seed int64, fn func(trial int, rng *rand.Rand) (T, error)) ([]T, error) {
	if trials <= 0 {
		return nil, nil
	}
	out := make([]T, trials)
	workers := Workers()
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		rng := rand.New(rand.NewSource(0))
		for t := 0; t < trials; t++ {
			rng.Seed(TrialSeed(seed, t))
			r, err := fn(t, rng)
			if err != nil {
				return nil, err
			}
			out[t] = r
		}
		return out, nil
	}

	errs := make([]error, trials)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reseeded RNG per worker avoids a fresh ~5 KB
			// rand source allocation per trial.
			rng := rand.New(rand.NewSource(0))
			for {
				t := int(next.Add(1)) - 1
				if t >= trials || failed.Load() {
					return
				}
				rng.Seed(TrialSeed(seed, t))
				r, err := fn(t, rng)
				if err != nil {
					errs[t] = err
					failed.Store(true)
					return
				}
				out[t] = r
			}
		}()
	}
	wg.Wait()
	// Indices are dispatched in ascending order, so every trial below
	// the lowest failure completed; reporting the lowest-indexed error
	// keeps the outcome independent of scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// All runs a per-trial predicate over [0, trials) and reports whether
// every trial returned true. Trials are seeded exactly as in Run. The
// conjunction is order-independent, so All cancels undispatched trials
// as soon as any trial returns false; the result is nevertheless
// identical to evaluating every trial. The error of the lowest-indexed
// failing trial wins over any higher-indexed false verdict, mirroring a
// sequential loop that stops at the first decisive trial.
func All(trials int, seed int64, fn func(trial int, rng *rand.Rand) (bool, error)) (bool, error) {
	type verdict struct {
		ok  bool
		err error
	}
	var stop atomic.Bool
	results, err := Run(trials, seed, func(t int, rng *rand.Rand) (verdict, error) {
		if stop.Load() {
			// Undecided: a lower-indexed trial already decided the
			// outcome. Reported as ok so it cannot mask that verdict.
			return verdict{ok: true}, nil
		}
		ok, err := fn(t, rng)
		if !ok || err != nil {
			stop.Store(true)
		}
		return verdict{ok: ok, err: err}, nil
	})
	if err != nil {
		return false, err
	}
	for _, v := range results {
		if v.err != nil {
			return false, v.err
		}
		if !v.ok {
			return false, nil
		}
	}
	return true, nil
}
