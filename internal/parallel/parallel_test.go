package parallel

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func TestTrialSeedsDistinct(t *testing.T) {
	seen := make(map[int64]struct{})
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40} {
		for trial := 0; trial < 10_000; trial++ {
			s := TrialSeed(seed, trial)
			if _, dup := seen[s]; dup {
				t.Fatalf("duplicate trial seed %d (seed=%d trial=%d)", s, seed, trial)
			}
			seen[s] = struct{}{}
		}
	}
}

func TestTrialRNGIndependentOfCallOrder(t *testing.T) {
	a := TrialRNG(7, 3).Int63()
	// Drawing other trials first must not change trial 3's stream.
	_ = TrialRNG(7, 0).Int63()
	_ = TrialRNG(7, 999).Int63()
	if b := TrialRNG(7, 3).Int63(); a != b {
		t.Fatalf("trial RNG not a pure function of (seed, trial): %d vs %d", a, b)
	}
}

// withWorkers runs f under a fixed worker cap and restores the previous
// cap afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetMaxWorkers(n)
	defer SetMaxWorkers(prev)
	f()
}

func trialSum(_ int, rng *rand.Rand) (float64, error) {
	var s float64
	for i := 0; i < 100; i++ {
		s += rng.Float64()
	}
	return s, nil
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	const trials = 64
	var base []float64
	withWorkers(t, 1, func() {
		var err error
		base, err = Run(trials, 99, trialSum)
		if err != nil {
			t.Fatal(err)
		}
	})
	if len(base) != trials {
		t.Fatalf("got %d results", len(base))
	}
	for _, workers := range []int{2, 4, 8} {
		withWorkers(t, workers, func() {
			got, err := Run(trials, 99, trialSum)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("workers=%d: results differ from sequential run", workers)
			}
		})
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		withWorkers(t, workers, func() {
			_, err := Run(32, 5, func(trial int, _ *rand.Rand) (int, error) {
				switch trial {
				case 3:
					return 0, errLow
				case 17:
					return 0, errHigh
				}
				return trial, nil
			})
			if !errors.Is(err, errLow) {
				t.Errorf("workers=%d: got %v, want lowest-indexed error", workers, err)
			}
		})
	}
}

func TestRunZeroTrials(t *testing.T) {
	out, err := Run(0, 1, trialSum)
	if err != nil || out != nil {
		t.Fatalf("Run(0) = %v, %v", out, err)
	}
}

func TestAllDeterministicAcrossWorkerCounts(t *testing.T) {
	pred := func(_ int, rng *rand.Rand) (bool, error) {
		return rng.Float64() < 0.9, nil
	}
	var base bool
	withWorkers(t, 1, func() {
		var err error
		base, err = All(40, 7, pred)
		if err != nil {
			t.Fatal(err)
		}
	})
	for _, workers := range []int{2, 8} {
		withWorkers(t, workers, func() {
			got, err := All(40, 7, pred)
			if err != nil {
				t.Fatal(err)
			}
			if got != base {
				t.Errorf("workers=%d: All = %v, sequential = %v", workers, got, base)
			}
		})
	}
}

func TestAllTrueWhenEveryTrialPasses(t *testing.T) {
	ok, err := All(20, 1, func(int, *rand.Rand) (bool, error) { return true, nil })
	if err != nil || !ok {
		t.Fatalf("All = %v, %v", ok, err)
	}
}

func TestAllFalseOnAnyFailure(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withWorkers(t, workers, func() {
			ok, err := All(20, 1, func(trial int, _ *rand.Rand) (bool, error) {
				return trial != 13, nil
			})
			if err != nil || ok {
				t.Errorf("workers=%d: All = %v, %v; want false", workers, ok, err)
			}
		})
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(3)
	defer SetMaxWorkers(prev)
	if Workers() != 3 {
		t.Errorf("Workers = %d after SetMaxWorkers(3)", Workers())
	}
	SetMaxWorkers(0)
	if Workers() < 1 {
		t.Errorf("Workers = %d with default cap", Workers())
	}
}
