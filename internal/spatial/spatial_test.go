package spatial

import (
	"math"
	"math/rand"
	"testing"

	"epidemic/internal/topology"
)

func mustLine(t *testing.T, n int) *topology.Network {
	t.Helper()
	nw, err := topology.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestUniformNeverSelf(t *testing.T) {
	sel := Uniform(10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		for trial := 0; trial < 200; trial++ {
			if got := sel.Pick(rng, i); got == i || got < 0 || got >= 10 {
				t.Fatalf("Pick(%d) = %d", i, got)
			}
		}
	}
}

func TestUniformIsUniform(t *testing.T) {
	const n, trials = 5, 100_000
	sel := Uniform(n)
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[sel.Pick(rng, 0)]++
	}
	if counts[0] != 0 {
		t.Fatalf("picked self %d times", counts[0])
	}
	want := float64(trials) / float64(n-1)
	for j := 1; j < n; j++ {
		if math.Abs(float64(counts[j])-want) > want*0.05 {
			t.Errorf("site %d picked %d times, want ~%.0f", j, counts[j], want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	nw := mustLine(t, 5)
	if _, err := New(nw, FormPaper, 0); err == nil {
		t.Error("a=0 should fail")
	}
	if _, err := New(nw, Form(99), 2); err == nil {
		t.Error("unknown form should fail")
	}
	one, err := topology.Star(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(one, FormUniform, 0); err == nil {
		t.Error("single site should fail")
	}
}

func TestFormString(t *testing.T) {
	tests := []struct {
		form Form
		want string
	}{
		{FormUniform, "uniform"},
		{FormDistance, "d^-a"},
		{FormQ, "Q^-a"},
		{FormPaper, "eq3.1.1"},
		{Form(42), "Form(42)"},
	}
	for _, tt := range tests {
		if got := tt.form.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.form), got, tt.want)
		}
	}
}

func TestProbabilitiesNormalised(t *testing.T) {
	nw := mustLine(t, 9)
	for _, form := range []Form{FormUniform, FormDistance, FormQ, FormPaper} {
		sel, err := New(nw, form, 2)
		if err != nil {
			t.Fatalf("%v: %v", form, err)
		}
		for i := 0; i < nw.NumSites(); i++ {
			p := Probabilities(sel, i)
			var sum float64
			for j, pj := range p {
				if j == i && pj != 0 {
					t.Errorf("%v: self probability %v", form, pj)
				}
				if pj < 0 {
					t.Errorf("%v: negative probability %v", form, pj)
				}
				sum += pj
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%v site %d: probabilities sum to %v", form, i, sum)
			}
		}
	}
}

func TestNearerSitesMoreLikely(t *testing.T) {
	nw := mustLine(t, 21)
	for _, form := range []Form{FormDistance, FormQ, FormPaper} {
		sel, err := New(nw, form, 2)
		if err != nil {
			t.Fatalf("%v: %v", form, err)
		}
		p := Probabilities(sel, 0)
		for d := 2; d < 21; d++ {
			if p[d] > p[d-1] {
				t.Errorf("%v: p at distance %d (%v) exceeds distance %d (%v)", form, d, p[d], d-1, p[d-1])
			}
		}
	}
}

// On a line, FormPaper with a=2 must reduce to 1/(Q(d-1)+1)/(Q(d)+1) per
// site; for an end site Q(d)=d, so the probability of the site at distance
// d is ∝ 1/(d(d+1)).
func TestPaperFormClosedFormOnLine(t *testing.T) {
	nw := mustLine(t, 12)
	sel, err := New(nw, FormPaper, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := Probabilities(sel, 0)
	// Compute expected unnormalised weights and normalise.
	var norm float64
	want := make([]float64, 12)
	for d := 1; d <= 11; d++ {
		want[d] = 1 / (float64(d) * float64(d+1))
		norm += want[d]
	}
	for d := 1; d <= 11; d++ {
		want[d] /= norm
		if math.Abs(p[d]-want[d]) > 1e-9 {
			t.Errorf("p[%d] = %v, want %v", d, p[d], want[d])
		}
	}
}

func TestTableSelectorPickMatchesProbabilities(t *testing.T) {
	nw := mustLine(t, 6)
	sel, err := New(nw, FormPaper, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 200_000
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 6)
	for i := 0; i < trials; i++ {
		counts[sel.Pick(rng, 2)]++
	}
	p := Probabilities(sel, 2)
	for j := range counts {
		got := float64(counts[j]) / trials
		if math.Abs(got-p[j]) > 0.01 {
			t.Errorf("site %d: empirical %v, want %v", j, got, p[j])
		}
	}
}

func TestSelectorOnMeshAndTies(t *testing.T) {
	nw, err := topology.Mesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := New(nw, FormPaper, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Equidistant sites must get equal probability (the paper averages
	// f(i) over equidistant sites).
	p := Probabilities(sel, 0)
	// Sites 1 and 4 are both at distance 1 from corner 0.
	if math.Abs(p[1]-p[4]) > 1e-12 {
		t.Errorf("equidistant sites got %v vs %v", p[1], p[4])
	}
	// Sites 2, 5, 8 at distance 2.
	if math.Abs(p[2]-p[8]) > 1e-12 || math.Abs(p[2]-p[5]) > 1e-12 {
		t.Errorf("distance-2 sites unequal: %v %v %v", p[2], p[5], p[8])
	}
}

func TestNumSites(t *testing.T) {
	nw := mustLine(t, 8)
	sel, err := New(nw, FormQ, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumSites() != 8 {
		t.Errorf("NumSites = %d", sel.NumSites())
	}
	if Uniform(5).NumSites() != 5 {
		t.Error("uniform NumSites wrong")
	}
}

func TestPickNeverSelfAllForms(t *testing.T) {
	nw, err := topology.Mesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, form := range []Form{FormDistance, FormQ, FormPaper} {
		sel, err := New(nw, form, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 9; i++ {
			for trial := 0; trial < 500; trial++ {
				if got := sel.Pick(rng, i); got == i || got < 0 || got >= 9 {
					t.Fatalf("%v: Pick(%d) = %d", form, i, got)
				}
			}
		}
	}
}

// Tighter distributions concentrate more mass on the nearest neighbour.
func TestExponentMonotonicity(t *testing.T) {
	nw := mustLine(t, 30)
	var prev float64
	for _, a := range []float64{1.2, 1.6, 2.0} {
		sel, err := New(nw, FormPaper, a)
		if err != nil {
			t.Fatal(err)
		}
		p := Probabilities(sel, 0)
		if p[1] < prev {
			t.Errorf("a=%v: nearest-neighbour mass %v decreased from %v", a, p[1], prev)
		}
		prev = p[1]
	}
}

func TestFormDQ(t *testing.T) {
	nw := mustLine(t, 15)
	sel, err := New(nw, FormDQ, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := Probabilities(sel, 0)
	var sum float64
	for d := 1; d < 15; d++ {
		if p[d] <= 0 {
			t.Fatalf("p[%d] = %v", d, p[d])
		}
		if d > 1 && p[d] > p[d-1] {
			t.Fatalf("FormDQ not decreasing at %d", d)
		}
		sum += p[d]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if FormDQ.String() != "1/(dQ)" {
		t.Errorf("String = %q", FormDQ.String())
	}
	// On a line with Q(d)=d the two families coincide: 1/(d·(Q+1)) =
	// 1/(d(d+1)) = eq(3.1.1) at a=2.
	paper, err := New(nw, FormPaper, 2)
	if err != nil {
		t.Fatal(err)
	}
	pp := Probabilities(paper, 0)
	if math.Abs(p[14]-pp[14]) > 1e-12 {
		t.Errorf("on a line 1/(dQ) (%v) should equal eq3.1.1 a=2 (%v)", p[14], pp[14])
	}
	// On a mesh, where Q grows quadratically, 1/(dQ) is looser in the
	// tail than Q^-2 — the distinction §3.1 draws.
	mesh, err := topology.Mesh(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	dq, err := New(mesh, FormDQ, 1)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := New(mesh, FormPaper, 2)
	if err != nil {
		t.Fatal(err)
	}
	far := mesh.NumSites() - 1 // opposite corner from site 0
	if Probabilities(dq, 0)[far] <= Probabilities(q2, 0)[far] {
		t.Errorf("on a mesh 1/(dQ) tail should be fatter than Q^-2's")
	}
}
