// Package spatial implements the nonuniform partner-selection
// distributions of §3 of the paper. A Selector chooses, for a given site,
// the random partner for one anti-entropy or rumor-mongering exchange.
//
// Three families are provided:
//
//   - FormDistance: probability ∝ d^{-a}, the paper's linear-network
//     starting point.
//   - FormQ: probability ∝ (Q_s(d)+1)^{-a}, the first Q-parameterised
//     family the paper simulated.
//   - FormPaper: the paper's final equation (3.1.1),
//     p(d) ≈ (Q(d-1)^{1-a} − Q(d)^{1-a}) / (Q(d) − Q(d-1)),
//     with 1 added to Q throughout to avoid the singularity at Q(d)=0.
//     For a=2 this reduces to 1/(Q(d-1)·Q(d)), which is O(d^{-2D}) on a
//     D-dimensional mesh.
//
// Two sampling backends implement every form. The default is a Walker
// alias table (MethodAlias): per-site probabilities are preprocessed into
// equal-width slots so one Pick costs O(1) — one uniform draw, one slot
// lookup. MethodTable keeps the classic per-site cumulative tables with
// an O(log n) binary search per Pick; it survives as the reference
// implementation the alias sampler is tested against.
package spatial

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"epidemic/internal/topology"
)

// Selector picks random exchange partners for sites. Implementations are
// immutable after construction and safe for concurrent use by multiple
// goroutines (each with its own rng).
type Selector interface {
	// Pick returns a partner site for site from, never from itself.
	Pick(rng *rand.Rand, from int) int
	// NumSites returns the population size the selector was built for.
	NumSites() int
}

// Form identifies a spatial distribution family.
type Form int

const (
	// FormUniform selects uniformly among all other sites.
	FormUniform Form = iota + 1
	// FormDistance weights each site at distance d by d^{-a}.
	FormDistance
	// FormQ weights each site at distance d by (Q(d)+1)^{-a}.
	FormQ
	// FormPaper uses the paper's equation (3.1.1).
	FormPaper
	// FormDQ weights each site at distance d by 1/(d·(Q(d)+1)) — the
	// 1/(d·Q_s(d)) family §3 conjectures sits at the loose end of the
	// good-scaling range; the paper found Q^{-2} outperforms it on the
	// CIN. The exponent a scales the whole product: (d·(Q(d)+1))^{-a}.
	FormDQ
)

// String names the form for reports.
func (f Form) String() string {
	switch f {
	case FormUniform:
		return "uniform"
	case FormDistance:
		return "d^-a"
	case FormQ:
		return "Q^-a"
	case FormPaper:
		return "eq3.1.1"
	case FormDQ:
		return "1/(dQ)"
	default:
		return fmt.Sprintf("Form(%d)", int(f))
	}
}

// Method selects the sampling backend behind a Selector.
type Method int

const (
	// MethodAlias preprocesses each site's distribution into a Walker
	// alias table: O(n) extra memory per site, O(1) per Pick.
	MethodAlias Method = iota
	// MethodTable stores per-site cumulative weights and binary-searches
	// them: O(log n) per Pick. Reference implementation.
	MethodTable
)

// NewUniform returns a Selector choosing uniformly among the other n-1
// sites, or an error when n leaves no partner to choose.
func NewUniform(n int) (Selector, error) {
	if n < 2 {
		return nil, fmt.Errorf("spatial: uniform selector needs at least 2 sites, got %d", n)
	}
	return uniformSelector{n: n}, nil
}

// Uniform returns a Selector choosing uniformly among the other n-1
// sites. It panics if n < 2 (no possible partner); use NewUniform to get
// an error instead.
func Uniform(n int) Selector {
	sel, err := NewUniform(n)
	if err != nil {
		panic(err)
	}
	return sel
}

type uniformSelector struct{ n int }

func (u uniformSelector) NumSites() int { return u.n }

func (u uniformSelector) Pick(rng *rand.Rand, from int) int {
	j := rng.Intn(u.n - 1)
	if j >= from {
		j++
	}
	return j
}

// tableSelector holds per-site cumulative weight tables over all other
// sites.
type tableSelector struct {
	n int
	// cum[i] is the cumulative weights for site i over targets, where
	// target[i][k] is the site at rank k of site i's distance-sorted list.
	cum    [][]float64
	target [][]int32
}

func (t *tableSelector) NumSites() int { return t.n }

func (t *tableSelector) Pick(rng *rand.Rand, from int) int {
	cum := t.cum[from]
	total := cum[len(cum)-1]
	x := rng.Float64() * total
	k := sort.SearchFloat64s(cum, x)
	if k == len(cum) { // x == total edge case
		k--
	}
	return int(t.target[from][k])
}

// aliasSelector holds per-site Walker alias tables (Vose's construction).
// Each site's distribution over its n-1 possible partners is split into
// n-1 equal-width slots; slot k keeps probability prob[k] of its own
// target and hands the rest to alias[k]. One Pick consumes a single
// uniform double: the integer part chooses the slot, the fractional part
// the coin — O(1), no search.
type aliasSelector struct {
	n int
	// prob[i][k] is slot k's acceptance threshold for site i; alias[i][k]
	// the slot whose target wins when the coin exceeds it. target[i][k]
	// is the site at rank k of site i's distance-sorted list, and
	// p[i][k] that target's exact selection probability (kept for
	// Probabilities; the alias table itself only preserves it up to
	// reconstruction rounding).
	prob   [][]float64
	alias  [][]int32
	target [][]int32
	p      [][]float64
}

func (s *aliasSelector) NumSites() int { return s.n }

func (s *aliasSelector) Pick(rng *rand.Rand, from int) int {
	prob := s.prob[from]
	u := rng.Float64() * float64(len(prob))
	k := int(u)
	if u-float64(k) >= prob[k] {
		k = int(s.alias[from][k])
	}
	return int(s.target[from][k])
}

// buildAlias fills prob and alias for one site from its normalised
// probabilities using Vose's O(n) two-stack construction.
// small and large are caller-provided scratch stacks (content ignored,
// capacity reused across calls).
func buildAlias(p []float64, prob []float64, alias []int32, small, large []int32) {
	small, large = small[:0], large[:0]
	n := len(p)
	for k, pk := range p {
		prob[k] = pk * float64(n)
		if prob[k] < 1 {
			small = append(small, int32(k))
		} else {
			large = append(large, int32(k))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		alias[s] = l
		// Slot s is settled; l absorbs the shortfall.
		prob[l] -= 1 - prob[s]
		if prob[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are exactly full up to rounding.
	for _, k := range large {
		prob[k] = 1
	}
	for _, k := range small {
		prob[k] = 1
	}
}

// New builds a Selector of the given form over the network using the
// default O(1) alias sampling backend. The exponent a is ignored for
// FormUniform. Weights below are per *site* at a given distance
// (equation (3.1.1) already is a per-site probability; the other forms
// are defined per site directly).
func New(nw *topology.Network, form Form, a float64) (Selector, error) {
	return NewWithMethod(nw, form, a, MethodAlias)
}

// NewWithMethod builds a Selector with an explicit sampling backend.
func NewWithMethod(nw *topology.Network, form Form, a float64, m Method) (Selector, error) {
	n := nw.NumSites()
	if n < 2 {
		return nil, fmt.Errorf("spatial: need at least 2 sites, got %d", n)
	}
	if form == FormUniform {
		return NewUniform(n)
	}
	if a <= 0 {
		return nil, fmt.Errorf("spatial: exponent a must be positive, got %v", a)
	}

	// All per-site rows carve out of flat backing arrays (each row holds
	// at most the n-1 other sites), so building a selector costs a
	// handful of allocations instead of several per site.
	var ts *tableSelector
	var as *aliasSelector
	tgtBack := make([]int32, n*(n-1))
	var cumBack, probBack, pBack, wScratch []float64
	var aliasBack, smallStack, largeStack []int32
	switch m {
	case MethodTable:
		ts = &tableSelector{n: n, cum: make([][]float64, n), target: make([][]int32, n)}
		cumBack = make([]float64, n*(n-1))
		wScratch = make([]float64, n-1)
	case MethodAlias:
		as = &aliasSelector{
			n:      n,
			prob:   make([][]float64, n),
			alias:  make([][]int32, n),
			target: make([][]int32, n),
			p:      make([][]float64, n),
		}
		probBack = make([]float64, n*(n-1))
		pBack = make([]float64, n*(n-1))
		aliasBack = make([]int32, n*(n-1))
		smallStack = make([]int32, 0, n-1)
		largeStack = make([]int32, 0, n-1)
	default:
		return nil, fmt.Errorf("spatial: unknown method %d", int(m))
	}

	off := 0
	for i := 0; i < n; i++ {
		order := nw.SitesByDistance(i)
		q := nw.Q(i)
		perDist, err := weightsByDistance(form, a, q)
		if err != nil {
			return nil, err
		}
		rows := len(order)
		end := off + rows
		tgt := tgtBack[off:end:end]
		var w []float64
		if m == MethodAlias {
			w = pBack[off:end:end] // becomes the stored p row
		} else {
			w = wScratch[:rows]
		}
		var total float64
		for k, j := range order {
			d := nw.Distance(i, j)
			wk := perDist[d]
			if wk <= 0 || math.IsInf(wk, 0) || math.IsNaN(wk) {
				return nil, fmt.Errorf("spatial: non-positive weight %v for site %d at distance %d", wk, i, d)
			}
			w[k] = wk
			total += wk
			tgt[k] = int32(j)
		}
		switch m {
		case MethodTable:
			cum := cumBack[off:end:end]
			var run float64
			for k, wk := range w {
				run += wk
				cum[k] = run
			}
			ts.cum[i] = cum
			ts.target[i] = tgt
		case MethodAlias:
			p := w // reuse: normalise in place
			for k := range p {
				p[k] /= total
			}
			prob := probBack[off:end:end]
			alias := aliasBack[off:end:end]
			buildAlias(p, prob, alias, smallStack, largeStack)
			as.prob[i] = prob
			as.alias[i] = alias
			as.target[i] = tgt
			as.p[i] = p
		}
		off = end
	}
	if ts != nil {
		return ts, nil
	}
	return as, nil
}

// weightsByDistance returns the per-site selection weight for each distance
// d given the cumulative count function q (q[d] = # other sites at
// distance ≤ d).
func weightsByDistance(form Form, a float64, q []int) ([]float64, error) {
	w := make([]float64, len(q))
	for d := 1; d < len(q); d++ {
		qd := float64(q[d])
		qprev := 0.0
		if d > 0 {
			qprev = float64(q[d-1])
		}
		count := qd - qprev
		if count == 0 {
			continue // no sites at this distance; weight unused
		}
		switch form {
		case FormDistance:
			w[d] = math.Pow(float64(d), -a)
		case FormQ:
			w[d] = math.Pow(qd+1, -a)
		case FormPaper:
			// (Q(d-1)^{1-a} − Q(d)^{1-a}) / (Q(d) − Q(d-1)), Q shifted by
			// +1 throughout per the paper.
			num := math.Pow(qprev+1, 1-a) - math.Pow(qd+1, 1-a)
			w[d] = num / count
		case FormDQ:
			w[d] = math.Pow(float64(d)*(qd+1), -a)
		default:
			return nil, fmt.Errorf("spatial: unknown form %v", form)
		}
	}
	return w, nil
}

// Probabilities returns site i's full selection distribution over all
// sites (index = site, self gets 0). Used by tests and analysis tools.
func Probabilities(sel Selector, i int) []float64 {
	switch s := sel.(type) {
	case uniformSelector:
		p := make([]float64, s.n)
		u := 1 / float64(s.n-1)
		for j := range p {
			if j != i {
				p[j] = u
			}
		}
		return p
	case *tableSelector:
		p := make([]float64, s.n)
		cum := s.cum[i]
		total := cum[len(cum)-1]
		prev := 0.0
		for k, c := range cum {
			p[s.target[i][k]] = (c - prev) / total
			prev = c
		}
		return p
	case *aliasSelector:
		p := make([]float64, s.n)
		for k, pk := range s.p[i] {
			p[s.target[i][k]] = pk
		}
		return p
	default:
		return nil
	}
}
