// Package spatial implements the nonuniform partner-selection
// distributions of §3 of the paper. A Selector chooses, for a given site,
// the random partner for one anti-entropy or rumor-mongering exchange.
//
// Three families are provided:
//
//   - FormDistance: probability ∝ d^{-a}, the paper's linear-network
//     starting point.
//   - FormQ: probability ∝ (Q_s(d)+1)^{-a}, the first Q-parameterised
//     family the paper simulated.
//   - FormPaper: the paper's final equation (3.1.1),
//     p(d) ≈ (Q(d-1)^{1-a} − Q(d)^{1-a}) / (Q(d) − Q(d-1)),
//     with 1 added to Q throughout to avoid the singularity at Q(d)=0.
//     For a=2 this reduces to 1/(Q(d-1)·Q(d)), which is O(d^{-2D}) on a
//     D-dimensional mesh.
//
// Weights are precomputed into per-site cumulative tables; selection is a
// binary search, so a cycle over n sites costs O(n log n).
package spatial

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"epidemic/internal/topology"
)

// Selector picks random exchange partners for sites.
type Selector interface {
	// Pick returns a partner site for site from, never from itself.
	Pick(rng *rand.Rand, from int) int
	// NumSites returns the population size the selector was built for.
	NumSites() int
}

// Form identifies a spatial distribution family.
type Form int

const (
	// FormUniform selects uniformly among all other sites.
	FormUniform Form = iota + 1
	// FormDistance weights each site at distance d by d^{-a}.
	FormDistance
	// FormQ weights each site at distance d by (Q(d)+1)^{-a}.
	FormQ
	// FormPaper uses the paper's equation (3.1.1).
	FormPaper
	// FormDQ weights each site at distance d by 1/(d·(Q(d)+1)) — the
	// 1/(d·Q_s(d)) family §3 conjectures sits at the loose end of the
	// good-scaling range; the paper found Q^{-2} outperforms it on the
	// CIN. The exponent a scales the whole product: (d·(Q(d)+1))^{-a}.
	FormDQ
)

// String names the form for reports.
func (f Form) String() string {
	switch f {
	case FormUniform:
		return "uniform"
	case FormDistance:
		return "d^-a"
	case FormQ:
		return "Q^-a"
	case FormPaper:
		return "eq3.1.1"
	case FormDQ:
		return "1/(dQ)"
	default:
		return fmt.Sprintf("Form(%d)", int(f))
	}
}

// Uniform returns a Selector choosing uniformly among the other n-1 sites.
func Uniform(n int) Selector { return uniformSelector{n: n} }

type uniformSelector struct{ n int }

func (u uniformSelector) NumSites() int { return u.n }

func (u uniformSelector) Pick(rng *rand.Rand, from int) int {
	j := rng.Intn(u.n - 1)
	if j >= from {
		j++
	}
	return j
}

// tableSelector holds per-site cumulative weight tables over all other
// sites.
type tableSelector struct {
	n int
	// cum[i] is the cumulative weights for site i over targets, where
	// target[i][k] is the site at rank k of site i's distance-sorted list.
	cum    [][]float64
	target [][]int32
}

func (t *tableSelector) NumSites() int { return t.n }

func (t *tableSelector) Pick(rng *rand.Rand, from int) int {
	cum := t.cum[from]
	total := cum[len(cum)-1]
	x := rng.Float64() * total
	k := sort.SearchFloat64s(cum, x)
	if k == len(cum) { // x == total edge case
		k--
	}
	return int(t.target[from][k])
}

// New builds a Selector of the given form over the network. The exponent a
// is ignored for FormUniform. Weights below are per *site* at a given
// distance (equation (3.1.1) already is a per-site probability; the other
// forms are defined per site directly).
func New(nw *topology.Network, form Form, a float64) (Selector, error) {
	n := nw.NumSites()
	if n < 2 {
		return nil, fmt.Errorf("spatial: need at least 2 sites, got %d", n)
	}
	if form == FormUniform {
		return Uniform(n), nil
	}
	if a <= 0 {
		return nil, fmt.Errorf("spatial: exponent a must be positive, got %v", a)
	}

	ts := &tableSelector{
		n:      n,
		cum:    make([][]float64, n),
		target: make([][]int32, n),
	}
	for i := 0; i < n; i++ {
		order := nw.SitesByDistance(i)
		q := nw.Q(i)
		perDist, err := weightsByDistance(form, a, q)
		if err != nil {
			return nil, err
		}
		cum := make([]float64, len(order))
		tgt := make([]int32, len(order))
		var run float64
		for k, j := range order {
			d := nw.Distance(i, j)
			w := perDist[d]
			if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
				return nil, fmt.Errorf("spatial: non-positive weight %v for site %d at distance %d", w, i, d)
			}
			run += w
			cum[k] = run
			tgt[k] = int32(j)
		}
		ts.cum[i] = cum
		ts.target[i] = tgt
	}
	return ts, nil
}

// weightsByDistance returns the per-site selection weight for each distance
// d given the cumulative count function q (q[d] = # other sites at
// distance ≤ d).
func weightsByDistance(form Form, a float64, q []int) ([]float64, error) {
	w := make([]float64, len(q))
	for d := 1; d < len(q); d++ {
		qd := float64(q[d])
		qprev := 0.0
		if d > 0 {
			qprev = float64(q[d-1])
		}
		count := qd - qprev
		if count == 0 {
			continue // no sites at this distance; weight unused
		}
		switch form {
		case FormDistance:
			w[d] = math.Pow(float64(d), -a)
		case FormQ:
			w[d] = math.Pow(qd+1, -a)
		case FormPaper:
			// (Q(d-1)^{1-a} − Q(d)^{1-a}) / (Q(d) − Q(d-1)), Q shifted by
			// +1 throughout per the paper.
			num := math.Pow(qprev+1, 1-a) - math.Pow(qd+1, 1-a)
			w[d] = num / count
		case FormDQ:
			w[d] = math.Pow(float64(d)*(qd+1), -a)
		default:
			return nil, fmt.Errorf("spatial: unknown form %v", form)
		}
	}
	return w, nil
}

// Probabilities returns site i's full selection distribution over all
// sites (index = site, self gets 0). Used by tests and analysis tools.
func Probabilities(sel Selector, i int) []float64 {
	switch s := sel.(type) {
	case uniformSelector:
		p := make([]float64, s.n)
		u := 1 / float64(s.n-1)
		for j := range p {
			if j != i {
				p[j] = u
			}
		}
		return p
	case *tableSelector:
		p := make([]float64, s.n)
		cum := s.cum[i]
		total := cum[len(cum)-1]
		prev := 0.0
		for k, c := range cum {
			p[s.target[i][k]] = (c - prev) / total
			prev = c
		}
		return p
	default:
		return nil
	}
}
