package spatial

import (
	"math"
	"math/rand"
	"testing"

	"epidemic/internal/topology"
)

var allForms = []Form{FormDistance, FormQ, FormPaper, FormDQ}

func formExponent(form Form) float64 {
	if form == FormDQ {
		return 1
	}
	return 2
}

// The alias tables must encode exactly the distribution the cumulative
// table draws from.
func TestAliasAndTableProbabilitiesIdentical(t *testing.T) {
	nw := mustLine(t, 14)
	for _, form := range allForms {
		a := formExponent(form)
		alias, err := NewWithMethod(nw, form, a, MethodAlias)
		if err != nil {
			t.Fatalf("%v: %v", form, err)
		}
		table, err := NewWithMethod(nw, form, a, MethodTable)
		if err != nil {
			t.Fatalf("%v: %v", form, err)
		}
		for i := 0; i < nw.NumSites(); i++ {
			pa := Probabilities(alias, i)
			pt := Probabilities(table, i)
			for j := range pa {
				if math.Abs(pa[j]-pt[j]) > 1e-12 {
					t.Fatalf("%v site %d→%d: alias %v, table %v", form, i, j, pa[j], pt[j])
				}
			}
		}
	}
}

// chiSquare returns the goodness-of-fit statistic of counts against the
// expected probabilities, skipping zero-probability categories, plus the
// degrees of freedom.
func chiSquare(counts []int, p []float64, trials int) (stat float64, df int) {
	for j, pj := range p {
		if pj == 0 {
			continue
		}
		expected := pj * float64(trials)
		d := float64(counts[j]) - expected
		stat += d * d / expected
		df++
	}
	return stat, df - 1
}

// chiSquareCritical approximates the upper critical value of the χ²(df)
// distribution at α = 0.001 (Wilson–Hilferty).
func chiSquareCritical(df int) float64 {
	const z = 3.09 // standard normal quantile for α = 0.001
	k := float64(df)
	v := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * v * v * v
}

// Both sampling methods must draw from the same distribution for every
// spatial form: each is chi-square tested against the shared exact
// probabilities.
func TestAliasChiSquareMatchesTableAllForms(t *testing.T) {
	const trials = 100_000
	nw := mustLine(t, 12)
	for _, form := range allForms {
		a := formExponent(form)
		for _, method := range []Method{MethodAlias, MethodTable} {
			sel, err := NewWithMethod(nw, form, a, method)
			if err != nil {
				t.Fatalf("%v: %v", form, err)
			}
			for _, origin := range []int{0, 6} {
				rng := rand.New(rand.NewSource(int64(origin)*1000 + int64(form)))
				counts := make([]int, nw.NumSites())
				for i := 0; i < trials; i++ {
					counts[sel.Pick(rng, origin)]++
				}
				p := Probabilities(sel, origin)
				stat, df := chiSquare(counts, p, trials)
				if crit := chiSquareCritical(df); stat > crit {
					t.Errorf("%v method %d site %d: chi2 = %.2f > %.2f (df %d)",
						form, method, origin, stat, crit, df)
				}
			}
		}
	}
}

// On a mesh, equidistant sites share one weight; the alias table must
// preserve those ties when sampling.
func TestAliasChiSquareOnMesh(t *testing.T) {
	const trials = 100_000
	nw, err := topology.Mesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewWithMethod(nw, FormPaper, 2, MethodAlias)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	counts := make([]int, nw.NumSites())
	for i := 0; i < trials; i++ {
		counts[sel.Pick(rng, 5)]++
	}
	p := Probabilities(sel, 5)
	stat, df := chiSquare(counts, p, trials)
	if crit := chiSquareCritical(df); stat > crit {
		t.Errorf("mesh: chi2 = %.2f > %.2f (df %d)", stat, crit, df)
	}
}

func TestNewUniformRejectsSingletons(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		if _, err := NewUniform(n); err == nil {
			t.Errorf("NewUniform(%d) accepted", n)
		}
	}
	sel, err := NewUniform(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if got := sel.Pick(rng, 0); got != 1 {
			t.Fatalf("Pick = %d", got)
		}
	}
}
