package topology

import "testing"

func TestCINDefaultShape(t *testing.T) {
	cin, err := NewCIN()
	if err != nil {
		t.Fatal(err)
	}
	n := cin.NumSites()
	if n != len(cin.NASites)+len(cin.EUSites) {
		t.Fatalf("site partition inconsistent: %d != %d + %d", n, len(cin.NASites), len(cin.EUSites))
	}
	if n < 300 || n > 500 {
		t.Errorf("NumSites = %d, want several hundred", n)
	}
	if len(cin.EUSites) < 20 || len(cin.EUSites) > 60 {
		t.Errorf("EU sites = %d, want a few tens", len(cin.EUSites))
	}
	if _, ok := cin.Graph().LinkByName(BusheyLinkName); !ok {
		t.Error("Bushey link missing")
	}
	if _, ok := cin.Graph().LinkByName(SecondTransatlanticLinkName); !ok {
		t.Error("second transatlantic link missing")
	}
}

// Every EU↔NA shortest path must cross one of the two transatlantic links;
// most must cross Bushey.
func TestCINTransatlanticCut(t *testing.T) {
	cin, err := NewCIN()
	if err != nil {
		t.Fatal(err)
	}
	bushey, _ := cin.Graph().LinkByName(BusheyLinkName)
	second, _ := cin.Graph().LinkByName(SecondTransatlanticLinkName)

	viaBushey, viaSecond := 0, 0
	var buf []LinkID
	for _, e := range cin.EUSites {
		for i, a := 0, 0; i < 10; i++ { // sample of NA sites
			na := cin.NASites[a]
			a += len(cin.NASites)/10 + 1
			if a >= len(cin.NASites) {
				a = 0
			}
			buf = cin.PathLinks(e, na, buf[:0])
			crossed := false
			for _, l := range buf {
				if l == bushey {
					viaBushey++
					crossed = true
				}
				if l == second {
					viaSecond++
					crossed = true
				}
			}
			if !crossed {
				t.Fatalf("EU site %d to NA site %d does not cross the Atlantic", e, na)
			}
		}
	}
	if viaBushey <= viaSecond {
		t.Errorf("Bushey should carry most transatlantic paths: bushey=%d second=%d", viaBushey, viaSecond)
	}
}

// Intra-continental paths must never cross the Atlantic.
func TestCINNoGratuitousCrossings(t *testing.T) {
	cin, err := NewCIN()
	if err != nil {
		t.Fatal(err)
	}
	bushey, _ := cin.Graph().LinkByName(BusheyLinkName)
	second, _ := cin.Graph().LinkByName(SecondTransatlanticLinkName)
	var buf []LinkID
	check := func(sites []int) {
		for i := 0; i < len(sites); i += 17 {
			for j := 1; j < len(sites); j += 23 {
				buf = cin.PathLinks(sites[i], sites[j], buf[:0])
				for _, l := range buf {
					if l == bushey || l == second {
						t.Fatalf("intra-continent path %d->%d crosses the Atlantic", sites[i], sites[j])
					}
				}
			}
		}
	}
	check(cin.NASites)
	check(cin.EUSites)
}

func TestCINConfigValidation(t *testing.T) {
	if _, err := NewCINFromConfig(CINConfig{GridW: 1, GridH: 2}); err == nil {
		t.Error("expected grid validation error")
	}
	cfg := DefaultCINConfig()
	cfg.NASitesPerCluster = 0
	if _, err := NewCINFromConfig(cfg); err == nil {
		t.Error("expected cluster-size validation error")
	}
}

func TestCINSmallConfig(t *testing.T) {
	cfg := CINConfig{
		GridW: 2, GridH: 2, NASitesPerCluster: 2,
		Chains: 1, ChainLen: 1,
		EUClusters: 2, EUSitesPerCluster: 2,
	}
	cin, err := NewCINFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 grid clusters + 1 chain cluster = 10 NA sites, 4 EU sites.
	if len(cin.NASites) != 10 || len(cin.EUSites) != 4 {
		t.Fatalf("NA=%d EU=%d, want 10/4", len(cin.NASites), len(cin.EUSites))
	}
	if cin.MaxDistance() <= 0 {
		t.Error("degenerate distances")
	}
}
