// Package topology models the communication networks the epidemic
// algorithms run over: graphs of router nodes and database sites, hop
// distances, per-link traffic accounting, and the cumulative site-count
// function Q_s(d) that drives the paper's spatial distributions (§3).
//
// A Graph is a set of vertices connected by named links. Database sites are
// placed on vertices by a Network, which precomputes site-to-site hop
// distances and shortest-path link sequences so that simulations can charge
// every conversation to the links it traverses — the quantity Tables 4 and
// 5 of the paper report.
package topology

import (
	"errors"
	"fmt"
)

// NodeID identifies a graph vertex (a router, gateway, or host machine).
type NodeID int32

// LinkID identifies an undirected edge of the graph.
type LinkID int32

// Link is an undirected edge. Name is optional and used to single out
// critical links (the paper's transatlantic link to Bushey, England).
type Link struct {
	ID   LinkID
	A, B NodeID
	Name string
}

type halfEdge struct {
	to   NodeID
	link LinkID
}

// Graph is an undirected multigraph of network nodes.
type Graph struct {
	adj     [][]halfEdge
	links   []Link
	byName  map[string]LinkID
	nodeTag []string
}

// NewGraph returns a graph with n isolated vertices.
func NewGraph(n int) *Graph {
	return &Graph{
		adj:    make([][]halfEdge, n),
		byName: make(map[string]LinkID),
	}
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// AddNode appends a vertex and returns its ID. tag is a free-form label
// used in debugging output.
func (g *Graph) AddNode(tag string) NodeID {
	g.adj = append(g.adj, nil)
	g.nodeTag = append(g.nodeTag, tag)
	return NodeID(len(g.adj) - 1)
}

// NodeTag returns the label assigned when the node was added, if any.
func (g *Graph) NodeTag(n NodeID) string {
	if int(n) < len(g.nodeTag) {
		return g.nodeTag[n]
	}
	return ""
}

// AddLink connects a and b and returns the new link's ID.
func (g *Graph) AddLink(a, b NodeID) LinkID {
	return g.AddNamedLink(a, b, "")
}

// AddNamedLink connects a and b with a named link. Names must be unique
// when non-empty.
func (g *Graph) AddNamedLink(a, b NodeID, name string) LinkID {
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, A: a, B: b, Name: name})
	g.adj[a] = append(g.adj[a], halfEdge{to: b, link: id})
	g.adj[b] = append(g.adj[b], halfEdge{to: a, link: id})
	if name != "" {
		g.byName[name] = id
	}
	return id
}

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Links returns a copy of all links.
func (g *Graph) Links() []Link {
	out := make([]Link, len(g.links))
	copy(out, g.links)
	return out
}

// LinkByName looks up a named link.
func (g *Graph) LinkByName(name string) (LinkID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// Degree returns the number of links incident to n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// bfs fills dist (hops) and via (link taken on the last hop of a shortest
// path toward root) for every node reachable from root. Unreachable nodes
// get dist -1. The two slices must have length NumNodes.
func (g *Graph) bfs(root NodeID, dist []int32, via []LinkID, prev []NodeID) {
	for i := range dist {
		dist[i] = -1
		via[i] = -1
		prev[i] = -1
	}
	queue := make([]NodeID, 0, len(g.adj))
	dist[root] = 0
	queue = append(queue, root)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[cur] {
			if dist[e.to] >= 0 {
				continue
			}
			dist[e.to] = dist[cur] + 1
			via[e.to] = e.link
			prev[e.to] = cur
			queue = append(queue, e.to)
		}
	}
}

// Connected reports whether the graph is connected (ignoring a graph with
// zero nodes, which is trivially connected).
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return true
	}
	dist := make([]int32, len(g.adj))
	via := make([]LinkID, len(g.adj))
	prev := make([]NodeID, len(g.adj))
	g.bfs(0, dist, via, prev)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: link endpoints in range and
// unique non-empty names.
func (g *Graph) Validate() error {
	n := NodeID(len(g.adj))
	seen := make(map[string]bool, len(g.byName))
	for _, l := range g.links {
		if l.A < 0 || l.A >= n || l.B < 0 || l.B >= n {
			return fmt.Errorf("link %d endpoints (%d,%d) out of range [0,%d)", l.ID, l.A, l.B, n)
		}
		if l.Name != "" {
			if seen[l.Name] {
				return fmt.Errorf("duplicate link name %q", l.Name)
			}
			seen[l.Name] = true
		}
	}
	return nil
}

var errNotConnected = errors.New("topology: graph is not connected")
