package topology

// LinkLoad accumulates per-link conversation counts for one simulation run.
// Tables 4 and 5 of the paper report two such loads: "compare traffic"
// (anti-entropy conversations per cycle, charged to every link the
// conversation traverses) and "update traffic" (conversations in which the
// update actually had to be sent).
type LinkLoad struct {
	nw     *Network
	counts []float64
	buf    []LinkID
}

// NewLinkLoad returns a zeroed accumulator for the network's links.
func NewLinkLoad(nw *Network) *LinkLoad {
	return &LinkLoad{
		nw:     nw,
		counts: make([]float64, nw.Graph().NumLinks()),
	}
}

// Charge adds one conversation between sites i and j to every link on the
// shortest path between them.
func (ll *LinkLoad) Charge(i, j int) {
	ll.buf = ll.nw.PathLinks(i, j, ll.buf[:0])
	for _, l := range ll.buf {
		ll.counts[l]++
	}
}

// Add accumulates another load into this one.
func (ll *LinkLoad) Add(other *LinkLoad) {
	for i, c := range other.counts {
		ll.counts[i] += c
	}
}

// Scale multiplies every count by f (used to average over trials/cycles).
func (ll *LinkLoad) Scale(f float64) {
	for i := range ll.counts {
		ll.counts[i] *= f
	}
}

// Total returns the sum of all link counts.
func (ll *LinkLoad) Total() float64 {
	var t float64
	for _, c := range ll.counts {
		t += c
	}
	return t
}

// Average returns the mean count per link.
func (ll *LinkLoad) Average() float64 {
	if len(ll.counts) == 0 {
		return 0
	}
	return ll.Total() / float64(len(ll.counts))
}

// Max returns the largest per-link count.
func (ll *LinkLoad) Max() float64 {
	var m float64
	for _, c := range ll.counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Get returns the count on one link.
func (ll *LinkLoad) Get(id LinkID) float64 { return ll.counts[id] }

// GetNamed returns the count on a named link, or 0 if no such link exists.
func (ll *LinkLoad) GetNamed(name string) float64 {
	id, ok := ll.nw.Graph().LinkByName(name)
	if !ok {
		return 0
	}
	return ll.counts[id]
}

// Reset zeroes all counts.
func (ll *LinkLoad) Reset() {
	for i := range ll.counts {
		ll.counts[i] = 0
	}
}
