package topology

import (
	"fmt"
	"sort"
)

// Network places database sites on a graph and precomputes the site-level
// quantities the epidemic algorithms need: hop distances between sites,
// shortest-path link sequences for traffic accounting, and the cumulative
// neighbourhood function Q_s(d).
type Network struct {
	graph    *Graph
	siteNode []NodeID // site index -> vertex

	// dist[i][j] is the hop distance between sites i and j.
	dist [][]int32
	// prev[i] and via[i] are the BFS tree of site i's node, used to walk
	// shortest paths from any node back to site i.
	prev [][]NodeID
	via  [][]LinkID
}

// NewNetwork builds a Network for the given site placement. The graph must
// be connected so that every site can reach every other site.
func NewNetwork(g *Graph, siteNodes []NodeID) (*Network, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.Connected() {
		return nil, errNotConnected
	}
	if len(siteNodes) == 0 {
		return nil, fmt.Errorf("topology: no sites placed")
	}
	seen := make(map[NodeID]bool, len(siteNodes))
	for i, nd := range siteNodes {
		if int(nd) < 0 || int(nd) >= g.NumNodes() {
			return nil, fmt.Errorf("topology: site %d placed at invalid node %d", i, nd)
		}
		if seen[nd] {
			return nil, fmt.Errorf("topology: two sites placed at node %d", nd)
		}
		seen[nd] = true
	}

	n := len(siteNodes)
	nw := &Network{
		graph:    g,
		siteNode: append([]NodeID(nil), siteNodes...),
		dist:     make([][]int32, n),
		prev:     make([][]NodeID, n),
		via:      make([][]LinkID, n),
	}
	nodeDist := make([]int32, g.NumNodes())
	for i, nd := range nw.siteNode {
		via := make([]LinkID, g.NumNodes())
		prev := make([]NodeID, g.NumNodes())
		g.bfs(nd, nodeDist, via, prev)
		nw.via[i] = via
		nw.prev[i] = prev
		row := make([]int32, n)
		for j, nd2 := range nw.siteNode {
			row[j] = nodeDist[nd2]
		}
		nw.dist[i] = row
	}
	return nw, nil
}

// Graph returns the underlying graph.
func (nw *Network) Graph() *Graph { return nw.graph }

// NumSites returns the number of database sites.
func (nw *Network) NumSites() int { return len(nw.siteNode) }

// SiteNode returns the vertex hosting site i.
func (nw *Network) SiteNode(i int) NodeID { return nw.siteNode[i] }

// Distance returns the hop distance between sites i and j.
func (nw *Network) Distance(i, j int) int { return int(nw.dist[i][j]) }

// MaxDistance returns the largest site-to-site distance (the site
// diameter).
func (nw *Network) MaxDistance() int {
	var m int32
	for _, row := range nw.dist {
		for _, d := range row {
			if d > m {
				m = d
			}
		}
	}
	return int(m)
}

// PathLinks appends to buf the links on a shortest path from site i to
// site j and returns the extended slice. The path is taken from site i's
// BFS tree, so repeated calls for the same pair return the same path.
func (nw *Network) PathLinks(i, j int, buf []LinkID) []LinkID {
	cur := nw.siteNode[j]
	root := nw.siteNode[i]
	via := nw.via[i]
	prev := nw.prev[i]
	for cur != root {
		buf = append(buf, via[cur])
		cur = prev[cur]
	}
	return buf
}

// Q returns the cumulative neighbourhood function of site i:
// Q(d) = number of *other* sites at hop distance ≤ d. The returned slice q
// satisfies q[d] = Q(d) for d in [0, MaxDistance of i]; Q(0) counts sites
// co-located at distance 0 (normally zero). This is the Q_s(d) of §3 of
// the paper.
func (nw *Network) Q(i int) []int {
	var maxD int32
	for j, d := range nw.dist[i] {
		if j != i && d > maxD {
			maxD = d
		}
	}
	q := make([]int, maxD+1)
	for j, d := range nw.dist[i] {
		if j == i {
			continue
		}
		q[d]++
	}
	for d := 1; d <= int(maxD); d++ {
		q[d] += q[d-1]
	}
	return q
}

// SitesByDistance returns the other sites sorted by distance from site i
// (ties broken by site index), as the paper's "list of the other sites
// sorted by their distance from s".
func (nw *Network) SitesByDistance(i int) []int {
	out := make([]int, 0, len(nw.siteNode)-1)
	for j := range nw.siteNode {
		if j != i {
			out = append(out, j)
		}
	}
	row := nw.dist[i]
	sort.Slice(out, func(a, b int) bool {
		if row[out[a]] != row[out[b]] {
			return row[out[a]] < row[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}
