package topology

import "fmt"

// BusheyLinkName is the name of the primary transatlantic link in the
// synthetic CIN topology, after the link to Bushey, England whose traffic
// Tables 4 and 5 of the paper single out.
const BusheyLinkName = "Bushey"

// SecondTransatlanticLinkName names the secondary transatlantic link; the
// paper notes a *pair* of transatlantic links connects Europe to North
// America.
const SecondTransatlanticLinkName = "TransAtlantic2"

// CINConfig parameterises the synthetic Xerox Corporate Internet topology.
// The real CIN is proprietary; this generator reproduces its load-bearing
// structure as described in the paper: several hundred Ethernets connected
// by gateways, a few small linear sections, a small European cluster of "a
// few tens" of sites, and exactly two transatlantic links carrying all
// Europe↔America traffic (§0.1, §3.1).
type CINConfig struct {
	// GridW x GridH gateway routers form the North American backbone; each
	// hosts one Ethernet (cluster) of NASitesPerCluster sites.
	GridW, GridH      int
	NASitesPerCluster int
	// Chains linear sections hang off the backbone, each ChainLen clusters
	// long ("small sections of the CIN are in fact linear").
	Chains, ChainLen int
	// EUClusters Ethernets of EUSitesPerCluster sites form Europe,
	// connected in a chain starting at the Bushey gateway.
	EUClusters, EUSitesPerCluster int
}

// DefaultCINConfig yields ~400 sites: 360 in North America and 40 in
// Europe, matching the paper's "several hundred" NA and "few tens" EU
// sites. Under uniform partner selection the expected transatlantic
// conversation load is 2·n1·n2/(n1+n2) ≈ 72 per cycle, reproducing the
// overload the paper observed (~80).
func DefaultCINConfig() CINConfig {
	return CINConfig{
		GridW: 6, GridH: 6, NASitesPerCluster: 9,
		Chains: 2, ChainLen: 2,
		EUClusters: 4, EUSitesPerCluster: 10,
	}
}

// CIN is the synthetic Xerox Corporate Internet.
type CIN struct {
	*Network

	// NASites and EUSites are the site indices on each continent.
	NASites, EUSites []int
	// BusheyLink is the primary transatlantic link.
	BusheyLink LinkID
}

// NewCIN builds the default synthetic CIN.
func NewCIN() (*CIN, error) { return NewCINFromConfig(DefaultCINConfig()) }

// NewCINFromConfig builds a synthetic CIN from cfg.
func NewCINFromConfig(cfg CINConfig) (*CIN, error) {
	if cfg.GridW < 2 || cfg.GridH < 2 {
		return nil, fmt.Errorf("topology: CIN grid must be at least 2x2, got %dx%d", cfg.GridW, cfg.GridH)
	}
	if cfg.NASitesPerCluster < 1 || cfg.EUSitesPerCluster < 1 || cfg.EUClusters < 1 {
		return nil, fmt.Errorf("topology: CIN cluster sizes must be >= 1")
	}
	g := NewGraph(0)
	var sites []NodeID
	var naSites, euSites []int

	// addCluster attaches k sites to router r and records their indices.
	addCluster := func(r NodeID, k int, eu bool) {
		for i := 0; i < k; i++ {
			s := g.AddNode("host")
			g.AddLink(r, s)
			idx := len(sites)
			sites = append(sites, s)
			if eu {
				euSites = append(euSites, idx)
			} else {
				naSites = append(naSites, idx)
			}
		}
	}

	// North American backbone: GridW x GridH gateway grid.
	grid := make([]NodeID, cfg.GridW*cfg.GridH)
	for y := 0; y < cfg.GridH; y++ {
		for x := 0; x < cfg.GridW; x++ {
			r := g.AddNode(fmt.Sprintf("na-gw-%d-%d", x, y))
			grid[y*cfg.GridW+x] = r
			if x > 0 {
				g.AddLink(grid[y*cfg.GridW+x-1], r)
			}
			if y > 0 {
				g.AddLink(grid[(y-1)*cfg.GridW+x], r)
			}
			addCluster(r, cfg.NASitesPerCluster, false)
		}
	}

	// Linear sections hanging off distinct corners of the backbone.
	corners := []NodeID{
		grid[0],
		grid[cfg.GridW-1],
		grid[(cfg.GridH-1)*cfg.GridW],
		grid[cfg.GridH*cfg.GridW-1],
	}
	var lastChainEnd NodeID = grid[0]
	for c := 0; c < cfg.Chains; c++ {
		cur := corners[c%len(corners)]
		for l := 0; l < cfg.ChainLen; l++ {
			r := g.AddNode(fmt.Sprintf("na-chain-%d-%d", c, l))
			g.AddLink(cur, r)
			addCluster(r, cfg.NASitesPerCluster, false)
			cur = r
		}
		lastChainEnd = cur
	}

	// European chain: Bushey gateway first.
	euRouters := make([]NodeID, cfg.EUClusters)
	for i := range euRouters {
		tag := fmt.Sprintf("eu-gw-%d", i)
		if i == 0 {
			tag = "eu-gw-bushey"
		}
		euRouters[i] = g.AddNode(tag)
		if i > 0 {
			g.AddLink(euRouters[i-1], euRouters[i])
		}
		addCluster(euRouters[i], cfg.EUSitesPerCluster, true)
	}

	// Two transatlantic links. The primary (Bushey) lands mid-backbone so
	// it is on the shortest path for almost all EU↔NA pairs; the secondary
	// connects a chain end to the far end of Europe and carries little.
	bushey := g.AddNamedLink(grid[cfg.GridW/2], euRouters[0], BusheyLinkName)
	g.AddNamedLink(lastChainEnd, euRouters[len(euRouters)-1], SecondTransatlanticLinkName)

	nw, err := NewNetwork(g, sites)
	if err != nil {
		return nil, err
	}
	return &CIN{Network: nw, NASites: naSites, EUSites: euSites, BusheyLink: bushey}, nil
}
