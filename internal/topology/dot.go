package topology

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the network as a Graphviz graph: sites as filled
// circles, router nodes as points, named links labelled. Useful for
// inspecting generated topologies (`dot -Tsvg`).
func (nw *Network) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", title)
	b.WriteString("  layout=neato;\n  overlap=false;\n  node [shape=point];\n")

	siteOf := make(map[NodeID]int, nw.NumSites())
	for i := 0; i < nw.NumSites(); i++ {
		siteOf[nw.SiteNode(i)] = i
	}
	g := nw.Graph()
	for n := NodeID(0); int(n) < g.NumNodes(); n++ {
		if idx, ok := siteOf[n]; ok {
			fmt.Fprintf(&b, "  n%d [shape=circle, style=filled, fillcolor=lightblue, label=\"s%d\"];\n", n, idx)
			continue
		}
		tag := g.NodeTag(n)
		if tag != "" {
			fmt.Fprintf(&b, "  n%d [xlabel=%q];\n", n, tag)
		}
	}
	for _, l := range g.Links() {
		if l.Name != "" {
			fmt.Fprintf(&b, "  n%d -- n%d [label=%q, color=red, penwidth=2];\n", l.A, l.B, l.Name)
		} else {
			fmt.Fprintf(&b, "  n%d -- n%d;\n", l.A, l.B)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
