package topology

import "fmt"

// Line builds a linear network of n sites, each one link from its nearest
// neighbours — the paper's introductory example for spatial distributions
// (§3: "assume the database sites are arranged on a linear network").
func Line(n int) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: Line needs n >= 1, got %d", n)
	}
	g := NewGraph(0)
	sites := make([]NodeID, n)
	for i := range sites {
		sites[i] = g.AddNode(fmt.Sprintf("site%d", i))
	}
	for i := 0; i+1 < n; i++ {
		g.AddLink(sites[i], sites[i+1])
	}
	return NewNetwork(g, sites)
}

// Ring builds a cycle of n sites.
func Ring(n int) (*Network, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: Ring needs n >= 3, got %d", n)
	}
	g := NewGraph(0)
	sites := make([]NodeID, n)
	for i := range sites {
		sites[i] = g.AddNode(fmt.Sprintf("site%d", i))
	}
	for i := 0; i < n; i++ {
		g.AddLink(sites[i], sites[(i+1)%n])
	}
	return NewNetwork(g, sites)
}

// Mesh builds a D-dimensional rectilinear grid of sites with the given
// extents, one site per grid point (§3's "higher dimensional rectilinear
// meshes of sites"). Q_s(d) is Θ(d^D) on such a mesh.
func Mesh(dims ...int) (*Network, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("topology: Mesh needs at least one dimension")
	}
	total := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("topology: Mesh dimension %d < 1", d)
		}
		total *= d
	}
	g := NewGraph(0)
	sites := make([]NodeID, total)
	for i := range sites {
		sites[i] = g.AddNode(fmt.Sprintf("site%d", i))
	}
	// strides[k] is the flat-index step when coordinate k increments.
	strides := make([]int, len(dims))
	strides[0] = 1
	for k := 1; k < len(dims); k++ {
		strides[k] = strides[k-1] * dims[k-1]
	}
	coord := make([]int, len(dims))
	for i := 0; i < total; i++ {
		for k := range dims {
			if coord[k]+1 < dims[k] {
				g.AddLink(sites[i], sites[i+strides[k]])
			}
		}
		// Increment the odometer.
		for k := 0; k < len(dims); k++ {
			coord[k]++
			if coord[k] < dims[k] {
				break
			}
			coord[k] = 0
		}
	}
	return NewNetwork(g, sites)
}

// Complete builds a clique of n sites (all pairs at distance 1): the
// "uniform" network of §1 where topology is ignored. Intended for modest n
// since it materialises n(n-1)/2 links.
func Complete(n int) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: Complete needs n >= 1, got %d", n)
	}
	g := NewGraph(0)
	sites := make([]NodeID, n)
	for i := range sites {
		sites[i] = g.AddNode(fmt.Sprintf("site%d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddLink(sites[i], sites[j])
		}
	}
	return NewNetwork(g, sites)
}

// Star builds a hub-and-spoke network: one central router node (not a
// site) with n sites attached, so every pair of sites is at distance 2.
func Star(n int) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: Star needs n >= 1, got %d", n)
	}
	g := NewGraph(0)
	hub := g.AddNode("hub")
	sites := make([]NodeID, n)
	for i := range sites {
		sites[i] = g.AddNode(fmt.Sprintf("site%d", i))
		g.AddLink(hub, sites[i])
	}
	return NewNetwork(g, sites)
}

// PairFan builds the pathological topology of the paper's Figure 1: two
// sites s and t near each other (distance 1) and m sites u_1..u_m all
// equidistant from s and from t, slightly farther away (distance far+1 via
// a shared hub reached through a chain of far router hops).
//
// Site indices: 0 = s, 1 = t, 2..m+1 = u_1..u_m.
func PairFan(m, far int) (*Network, error) {
	if m < 1 || far < 1 {
		return nil, fmt.Errorf("topology: PairFan needs m >= 1 and far >= 1, got m=%d far=%d", m, far)
	}
	g := NewGraph(0)
	s := g.AddNode("s")
	t := g.AddNode("t")
	g.AddLink(s, t)
	// Two chains of far-1 router nodes from s and t to a shared hub keep
	// d(s,u_i) == d(t,u_i) == far+1 while d(s,t) == 1.
	hub := g.AddNode("hub")
	chain := func(from NodeID) {
		cur := from
		for h := 0; h < far-1; h++ {
			next := g.AddNode("r")
			g.AddLink(cur, next)
			cur = next
		}
		g.AddLink(cur, hub)
	}
	chain(s)
	chain(t)
	sites := []NodeID{s, t}
	for i := 0; i < m; i++ {
		u := g.AddNode(fmt.Sprintf("u%d", i))
		g.AddLink(hub, u)
		sites = append(sites, u)
	}
	return NewNetwork(g, sites)
}

// TreeWithSatellite builds the pathological topology of the paper's
// Figure 2: a complete binary tree of sites of the given depth (depth 0 is
// a single root), plus one satellite site s connected to the root through a
// chain of router nodes strictly longer than the height of the tree.
//
// Site indices: 0 = satellite s, 1.. = tree sites in breadth-first order
// (site 1 is the root u_0).
func TreeWithSatellite(depth int) (*Network, error) {
	if depth < 1 {
		return nil, fmt.Errorf("topology: TreeWithSatellite needs depth >= 1, got %d", depth)
	}
	g := NewGraph(0)
	sat := g.AddNode("s")

	treeSize := (1 << (depth + 1)) - 1
	tree := make([]NodeID, treeSize)
	for i := range tree {
		tree[i] = g.AddNode(fmt.Sprintf("u%d", i))
		if i > 0 {
			g.AddLink(tree[(i-1)/2], tree[i])
		}
	}

	// Chain of depth+1 router hops puts d(s, root) = depth+2 > tree height.
	cur := sat
	for h := 0; h <= depth; h++ {
		next := g.AddNode("r")
		g.AddLink(cur, next)
		cur = next
	}
	g.AddLink(cur, tree[0])

	sites := append([]NodeID{sat}, tree...)
	return NewNetwork(g, sites)
}
