package topology

import (
	"strings"
	"testing"
)

func TestGraphAddNodeLink(t *testing.T) {
	g := NewGraph(0)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	l1 := g.AddLink(a, b)
	l2 := g.AddNamedLink(b, c, "bc")

	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2", g.NumLinks())
	}
	if got := g.Link(l1); got.A != a || got.B != b {
		t.Errorf("Link(l1) = %+v", got)
	}
	if id, ok := g.LinkByName("bc"); !ok || id != l2 {
		t.Errorf("LinkByName(bc) = %v, %v", id, ok)
	}
	if _, ok := g.LinkByName("missing"); ok {
		t.Error("LinkByName(missing) should not exist")
	}
	if g.Degree(b) != 2 {
		t.Errorf("Degree(b) = %d, want 2", g.Degree(b))
	}
	if g.NodeTag(a) != "a" {
		t.Errorf("NodeTag(a) = %q", g.NodeTag(a))
	}
}

func TestGraphLinksCopy(t *testing.T) {
	g := NewGraph(0)
	a, b := g.AddNode(""), g.AddNode("")
	g.AddLink(a, b)
	links := g.Links()
	links[0].Name = "mutated"
	if g.Link(0).Name != "" {
		t.Error("Links() must return a copy")
	}
}

func TestGraphConnected(t *testing.T) {
	g := NewGraph(0)
	a := g.AddNode("")
	b := g.AddNode("")
	if g.Connected() {
		t.Error("two isolated nodes reported connected")
	}
	g.AddLink(a, b)
	if !g.Connected() {
		t.Error("joined nodes reported disconnected")
	}
	if !NewGraph(0).Connected() {
		t.Error("empty graph should be trivially connected")
	}
}

func TestGraphValidateDuplicateName(t *testing.T) {
	g := NewGraph(0)
	a, b, c := g.AddNode(""), g.AddNode(""), g.AddNode("")
	g.AddNamedLink(a, b, "x")
	g.AddNamedLink(b, c, "x")
	if err := g.Validate(); err == nil {
		t.Error("expected duplicate-name error")
	}
}

func TestNetworkRejectsDisconnected(t *testing.T) {
	g := NewGraph(0)
	a := g.AddNode("")
	g.AddNode("") // isolated
	if _, err := NewNetwork(g, []NodeID{a}); err == nil {
		t.Error("expected not-connected error")
	}
}

func TestNetworkRejectsDuplicateSites(t *testing.T) {
	g := NewGraph(0)
	a, b := g.AddNode(""), g.AddNode("")
	g.AddLink(a, b)
	if _, err := NewNetwork(g, []NodeID{a, a}); err == nil {
		t.Error("expected duplicate-site error")
	}
	if _, err := NewNetwork(g, nil); err == nil {
		t.Error("expected no-sites error")
	}
	if _, err := NewNetwork(g, []NodeID{a, 99}); err == nil {
		t.Error("expected invalid-node error")
	}
}

func TestLineDistances(t *testing.T) {
	nw, err := Line(5)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumSites() != 5 {
		t.Fatalf("NumSites = %d", nw.NumSites())
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := i - j
			if want < 0 {
				want = -want
			}
			if got := nw.Distance(i, j); got != want {
				t.Errorf("Distance(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
	if nw.MaxDistance() != 4 {
		t.Errorf("MaxDistance = %d, want 4", nw.MaxDistance())
	}
}

func TestRingDistances(t *testing.T) {
	nw, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Distance(0, 3); got != 3 {
		t.Errorf("Distance(0,3) = %d, want 3", got)
	}
	if got := nw.Distance(0, 5); got != 1 {
		t.Errorf("Distance(0,5) = %d, want 1", got)
	}
}

func TestMeshDistances(t *testing.T) {
	nw, err := Mesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumSites() != 9 {
		t.Fatalf("NumSites = %d, want 9", nw.NumSites())
	}
	// Manhattan distance from corner (site 0) to opposite corner (site 8).
	if got := nw.Distance(0, 8); got != 4 {
		t.Errorf("corner distance = %d, want 4", got)
	}
	// 3D mesh sanity.
	nw3, err := Mesh(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw3.Distance(0, 7); got != 3 {
		t.Errorf("3d corner distance = %d, want 3", got)
	}
}

func TestCompleteAndStar(t *testing.T) {
	cl, err := Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 1
			if i == j {
				want = 0
			}
			if got := cl.Distance(i, j); got != want {
				t.Errorf("clique Distance(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
	st, err := Star(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Distance(0, 4); got != 2 {
		t.Errorf("star distance = %d, want 2", got)
	}
}

func TestBuilderArgValidation(t *testing.T) {
	if _, err := Line(0); err == nil {
		t.Error("Line(0) should fail")
	}
	if _, err := Ring(2); err == nil {
		t.Error("Ring(2) should fail")
	}
	if _, err := Mesh(); err == nil {
		t.Error("Mesh() should fail")
	}
	if _, err := Mesh(2, 0); err == nil {
		t.Error("Mesh(2,0) should fail")
	}
	if _, err := Complete(0); err == nil {
		t.Error("Complete(0) should fail")
	}
	if _, err := Star(0); err == nil {
		t.Error("Star(0) should fail")
	}
	if _, err := PairFan(0, 1); err == nil {
		t.Error("PairFan(0,1) should fail")
	}
	if _, err := TreeWithSatellite(0); err == nil {
		t.Error("TreeWithSatellite(0) should fail")
	}
}

func TestPairFanGeometry(t *testing.T) {
	const m, far = 8, 3
	nw, err := PairFan(m, far)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumSites() != m+2 {
		t.Fatalf("NumSites = %d, want %d", nw.NumSites(), m+2)
	}
	if got := nw.Distance(0, 1); got != 1 {
		t.Errorf("d(s,t) = %d, want 1", got)
	}
	for u := 2; u < m+2; u++ {
		ds, dt := nw.Distance(0, u), nw.Distance(1, u)
		if ds != dt {
			t.Errorf("u%d not equidistant: d(s)=%d d(t)=%d", u-2, ds, dt)
		}
		if ds != far+1 {
			t.Errorf("d(s,u%d) = %d, want %d", u-2, ds, far+1)
		}
	}
	// All u_i are mutually distance 2 (via the hub).
	if got := nw.Distance(2, 3); got != 2 {
		t.Errorf("d(u0,u1) = %d, want 2", got)
	}
}

func TestTreeWithSatelliteGeometry(t *testing.T) {
	const depth = 3
	nw, err := TreeWithSatellite(depth)
	if err != nil {
		t.Fatal(err)
	}
	wantSites := 1 + (1<<(depth+1) - 1)
	if nw.NumSites() != wantSites {
		t.Fatalf("NumSites = %d, want %d", nw.NumSites(), wantSites)
	}
	// Satellite to root is longer than tree height.
	dRoot := nw.Distance(0, 1)
	if dRoot <= depth {
		t.Errorf("d(s,root) = %d, want > height %d", dRoot, depth)
	}
	// Leaves are `depth` from root.
	lastLeaf := nw.NumSites() - 1
	if got := nw.Distance(1, lastLeaf); got != depth {
		t.Errorf("d(root,leaf) = %d, want %d", got, depth)
	}
}

func TestQFunction(t *testing.T) {
	nw, err := Line(7)
	if err != nil {
		t.Fatal(err)
	}
	// For the middle site of a line of 7, Q(1)=2, Q(2)=4, Q(3)=6.
	q := nw.Q(3)
	want := []int{0, 2, 4, 6}
	if len(q) != len(want) {
		t.Fatalf("len(Q) = %d, want %d (%v)", len(q), len(want), q)
	}
	for d, w := range want {
		if q[d] != w {
			t.Errorf("Q(%d) = %d, want %d", d, q[d], w)
		}
	}
	// For an end site, Q(d)=d.
	q0 := nw.Q(0)
	for d := 1; d < len(q0); d++ {
		if q0[d] != d {
			t.Errorf("end site Q(%d) = %d, want %d", d, q0[d], d)
		}
	}
}

func TestQMonotoneAndTotalProperty(t *testing.T) {
	nets := map[string]func() (*Network, error){
		"line":   func() (*Network, error) { return Line(12) },
		"mesh":   func() (*Network, error) { return Mesh(4, 4) },
		"tree":   func() (*Network, error) { return TreeWithSatellite(3) },
		"ring":   func() (*Network, error) { return Ring(9) },
		"star":   func() (*Network, error) { return Star(6) },
		"clique": func() (*Network, error) { return Complete(5) },
	}
	for name, build := range nets {
		nw, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for s := 0; s < nw.NumSites(); s++ {
			q := nw.Q(s)
			for d := 1; d < len(q); d++ {
				if q[d] < q[d-1] {
					t.Errorf("%s site %d: Q not monotone at %d", name, s, d)
				}
			}
			if q[len(q)-1] != nw.NumSites()-1 {
				t.Errorf("%s site %d: Q(max) = %d, want %d", name, s, q[len(q)-1], nw.NumSites()-1)
			}
		}
	}
}

func TestSitesByDistance(t *testing.T) {
	nw, err := Line(5)
	if err != nil {
		t.Fatal(err)
	}
	got := nw.SitesByDistance(2)
	want := []int{1, 3, 0, 4}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SitesByDistance[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPathLinksChargesShortestPath(t *testing.T) {
	nw, err := Line(5)
	if err != nil {
		t.Fatal(err)
	}
	path := nw.PathLinks(0, 3, nil)
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3", len(path))
	}
	seen := make(map[LinkID]bool)
	for _, l := range path {
		if seen[l] {
			t.Errorf("duplicate link %d on path", l)
		}
		seen[l] = true
	}
	if len(nw.PathLinks(2, 2, nil)) != 0 {
		t.Error("self path should be empty")
	}
}

func TestLinkLoad(t *testing.T) {
	nw, err := Line(4)
	if err != nil {
		t.Fatal(err)
	}
	ll := NewLinkLoad(nw)
	ll.Charge(0, 3) // 3 links
	ll.Charge(1, 2) // middle link again
	if got := ll.Total(); got != 4 {
		t.Errorf("Total = %v, want 4", got)
	}
	if got := ll.Average(); got != 4.0/3.0 {
		t.Errorf("Average = %v", got)
	}
	if got := ll.Max(); got != 2 {
		t.Errorf("Max = %v, want 2", got)
	}
	other := NewLinkLoad(nw)
	other.Charge(0, 1)
	ll.Add(other)
	if got := ll.Total(); got != 5 {
		t.Errorf("after Add Total = %v, want 5", got)
	}
	ll.Scale(2)
	if got := ll.Total(); got != 10 {
		t.Errorf("after Scale Total = %v, want 10", got)
	}
	ll.Reset()
	if got := ll.Total(); got != 0 {
		t.Errorf("after Reset Total = %v, want 0", got)
	}
	if got := ll.GetNamed("nope"); got != 0 {
		t.Errorf("GetNamed(nope) = %v, want 0", got)
	}
}

func TestWriteDOT(t *testing.T) {
	nw, err := PairFan(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := nw.WriteDOT(&b, "pairfan"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"graph \"pairfan\"", "s0", "--"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	cin, err := NewCINFromConfig(CINConfig{
		GridW: 2, GridH: 2, NASitesPerCluster: 1,
		EUClusters: 1, EUSitesPerCluster: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := cin.WriteDOT(&b, "cin"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), BusheyLinkName) {
		t.Error("named link missing from DOT")
	}
}
