package sim

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics over a sample of trial results.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes descriptive statistics of xs. An empty sample yields
// a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean is a convenience for Summarize(xs).Mean.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }
