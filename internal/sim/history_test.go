package sim

import (
	"testing"
	"time"

	"epidemic/internal/obs"
	"epidemic/internal/store"
)

// TestHistoryMatchesPropagationGroundTruth is the sim ground-truth
// acceptance test: under the deterministic clock, the history-derived
// residue trajectory and rumor-round rate must match the Propagation
// tracker's values exactly — same floats, same stamps — at every sampled
// step. The cluster samples once per cycle (HistoryEvery=1) right after
// the clock advances, so recording the tracker's view after each StepRumor
// reconstructs precisely what the sampler saw.
func TestHistoryMatchesPropagationGroundTruth(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, func(cfg *ClusterConfig) {
		cfg.Registry = reg
		cfg.HistoryEvery = 1
		cfg.HistoryRetention = 256
	})
	h := c.History()
	if h == nil {
		t.Fatal("History() is nil although HistoryEvery was configured")
	}
	prop := c.Propagation()
	// Expose the tracker's residue for "k" as a gauge; the sampler picks
	// the new series up on its next plan rebuild, exactly as the daemon's
	// cluster gauges are picked up.
	reg.GaugeFunc("epidemic_sim_residue", "Tracker residue for key k.",
		func() float64 { return prop.Residue("k", c.N()) })

	c.Node(0).Update("k", store.Value("v"))

	type sample struct {
		at      int64
		residue float64
		rounds  float64
	}
	var want []sample
	for cycle := 0; cycle < 40; cycle++ {
		c.StepRumor()
		// The sampler ran inside StepRumor, after the clock advanced; this
		// is the state it recorded.
		want = append(want, sample{
			at:      c.Clock().Read(),
			residue: prop.Residue("k", c.N()),
			rounds:  float64(c.Node(0).Stats().RumorRuns),
		})
	}

	residuePts := h.Points("epidemic_sim_residue", 0, 0)
	if len(residuePts) != len(want) {
		t.Fatalf("residue trajectory has %d points, want %d", len(residuePts), len(want))
	}
	roundsPts := h.Points(`epidemic_rumor_rounds_total{site="0"}`, 0, 0)
	if len(roundsPts) != len(want) {
		t.Fatalf("rumor-round trajectory has %d points, want %d", len(roundsPts), len(want))
	}
	for i, w := range want {
		if residuePts[i].At != w.at || residuePts[i].V != w.residue {
			t.Errorf("residue[%d] = (%d, %v), ground truth (%d, %v)",
				i, residuePts[i].At, residuePts[i].V, w.at, w.residue)
		}
		if roundsPts[i].At != w.at || roundsPts[i].V != w.rounds {
			t.Errorf("rounds[%d] = (%d, %v), ground truth (%d, %v)",
				i, roundsPts[i].At, roundsPts[i].V, w.at, w.rounds)
		}
	}

	// The residue trajectory must end at the tracker's final value and be
	// monotonically non-increasing (infection never un-happens).
	final := want[len(want)-1].residue
	if got, ok := h.Last("epidemic_sim_residue"); !ok || got.V != final {
		t.Errorf("Last residue = %+v ok=%v, want %v", got, ok, final)
	}
	for i := 1; i < len(residuePts); i++ {
		if residuePts[i].V > residuePts[i-1].V {
			t.Errorf("residue increased at step %d: %v -> %v", i, residuePts[i-1].V, residuePts[i].V)
		}
	}

	// Windowed rate agrees with the trajectory endpoints: one tick = one
	// second, so the expected rate is the exact same float expression the
	// sampler computes.
	first, last := want[0], want[len(want)-1]
	wantRate := (last.rounds - first.rounds) / float64(last.at-first.at)
	if got, ok := h.Rate(`epidemic_rumor_rounds_total{site="0"}`, 0); !ok || got != wantRate {
		t.Errorf("Rate = %v ok=%v, ground truth %v", got, ok, wantRate)
	}
	// Delta over the full window is the cycle count the node ran.
	if got, ok := h.Delta(`epidemic_rumor_rounds_total{site="0"}`, 0); !ok || got != last.rounds-first.rounds {
		t.Errorf("Delta = %v ok=%v, ground truth %v", got, ok, last.rounds-first.rounds)
	}
}

// TestHistorySamplingCadence checks HistoryEvery > 1 samples on exactly
// the configured cycle boundaries with simulated stamps.
func TestHistorySamplingCadence(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, func(cfg *ClusterConfig) {
		cfg.Registry = reg
		cfg.HistoryEvery = 3
		cfg.TickPerCycle = 2
	})
	c.Node(0).Update("k", store.Value("v"))
	start := c.Clock().Read()
	for i := 0; i < 12; i++ {
		c.StepAntiEntropy()
	}
	h := c.History()
	if got, want := h.Samples(), uint64(4); got != want {
		t.Fatalf("samples = %d, want %d (12 cycles / every 3)", got, want)
	}
	pts := h.Points(`epidemic_anti_entropy_runs_total{site="0"}`, 0, 0)
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	// Samples land after cycles 3, 6, 9, 12: stamps start+6, +12, +18, +24.
	for i, p := range pts {
		if want := start + int64((i+1)*6); p.At != want {
			t.Errorf("pts[%d].At = %d, want %d", i, p.At, want)
		}
	}
	// The history window is sized Step*Retention with Step =
	// TickPerCycle*HistoryEvery seconds.
	if got, want := h.Step(), 6*time.Second; got != want {
		t.Errorf("Step = %v, want %v", got, want)
	}
}
