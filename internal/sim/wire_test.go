package sim

import (
	"fmt"
	"testing"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/node"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
	"epidemic/internal/transport"
)

// TestMixedCodecTCPClusterConverges stands up a small cluster over the real
// TCP transport with deliberately mismatched wire configurations — a
// binary-codec node with the UDP fast path, a gob-capped server, and a
// legacy client that skips the codec hello entirely — and drives rumor and
// anti-entropy rounds until every replica agrees. This is the rolling-
// upgrade story: old (gob) and new (binary/UDP) builds gossiping in one
// cluster must still converge.
func TestMixedCodecTCPClusterConverges(t *testing.T) {
	src := timestamp.NewSimulated(1 << 20)

	type site struct {
		n     *node.Node
		srv   *transport.Server
		codec string // client codec this site uses toward its peers
		udp   bool
	}

	// Server codec ceilings and client preferences per site. Site 1 is a
	// "new" build (binary everywhere + UDP pushes), site 2 an "old" build
	// (gob ceiling, gob client), site 3 an ancient client that predates
	// negotiation (legacy: raw frames, no hello), sites 4 and 5 pinned
	// pre-shard-vector binary builds (v3 and v2), and site 6 a new build
	// whose store runs more shards than everyone else's — its vectors are
	// incomparable with site 1's, forcing the shard-count downgrade.
	plans := []struct {
		serverCodec string
		clientCodec string
		udp         bool
		shards      int
	}{
		{serverCodec: "", clientCodec: "binary", udp: true},
		{serverCodec: "gob", clientCodec: "gob", udp: false},
		{serverCodec: "", clientCodec: "legacy", udp: false},
		{serverCodec: "binary-v3", clientCodec: "binary-v3", udp: false},
		{serverCodec: "", clientCodec: "binary-v2", udp: false},
		{serverCodec: "", clientCodec: "binary", udp: false, shards: 64},
	}

	sites := make([]*site, len(plans))
	for i, plan := range plans {
		id := timestamp.SiteID(i + 1)
		n, err := node.New(node.Config{
			Site:        id,
			Clock:       src.ClockAt(id),
			Rumor:       core.RumorConfig{K: 2, Counter: true, Feedback: true, Mode: core.Push},
			StoreShards: plan.shards,
			Seed:        int64(i) + 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := transport.ServeWith(n, "127.0.0.1:0", transport.ServerOptions{Codec: plan.serverCodec})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		sites[i] = &site{n: n, srv: srv, codec: plan.clientCodec, udp: plan.udp}
	}

	stats := &transport.WireStats{}
	var allPeers []*transport.TCPPeer
	for i, s := range sites {
		var peers []node.Peer
		for j, target := range sites {
			if j == i {
				continue
			}
			p := transport.NewTCPPeerWith(target.n.Site(), target.srv.Addr(), transport.PeerOptions{
				Timeout: 2 * time.Second,
				Codec:   s.codec,
				UDP:     s.udp,
				Stats:   stats,
			})
			defer p.Close()
			peers = append(peers, p)
			allPeers = append(allPeers, p)
		}
		s.n.SetPeers(peers)
	}

	// Seed a distinct update at every site, then gossip.
	for i, s := range sites {
		s.n.Update(fmt.Sprintf("k%d", i), store.Value(fmt.Sprintf("v%d", i)))
	}

	consistent := func() bool {
		first := sites[0].n.Store()
		for _, s := range sites[1:] {
			if !store.ContentEqual(first, s.n.Store()) {
				return false
			}
		}
		return true
	}

	for round := 0; round < 40 && !consistent(); round++ {
		for _, s := range sites {
			_ = s.n.StepRumor()
			if err := s.n.StepAntiEntropy(); err != nil {
				t.Fatalf("anti-entropy from site %d: %v", s.n.Site(), err)
			}
		}
		src.Advance(1)
	}
	if !consistent() {
		t.Fatal("mixed-codec cluster never converged")
	}

	// Random partner selection may have converged without ever dialing some
	// pairs; touch every session so each negotiation outcome is observed.
	for _, p := range allPeers {
		if _, err := p.Checksum(1 << 40); err != nil {
			t.Fatalf("checksum via %d: %v", p.ID(), err)
		}
	}

	// Both codecs must actually have been on the wire: site 1 negotiated
	// binary sessions, sites 2 and 3 ran gob (capped and legacy).
	snap := stats.Snapshot()
	if snap.SessionsBinary == 0 {
		t.Error("no binary sessions negotiated")
	}
	if snap.SessionsGob == 0 {
		t.Error("no gob sessions negotiated")
	}
	if snap.MsgsBinary == 0 || snap.MsgsGob == 0 {
		t.Errorf("both codecs should carry traffic: binary=%d gob=%d",
			snap.MsgsBinary, snap.MsgsGob)
	}

	// Deterministic shard-vector exercise on top of the converged cluster:
	// a v4<->v4 conversation with equal shard counts must complete on the
	// narrow path; one against the 64-shard site must record a downgrade —
	// and both must converge.
	exercise := func(target *site) {
		t.Helper()
		sites[0].n.Update(fmt.Sprintf("late-%s", target.codec), store.Value("zz"))
		src.Advance(500)
		p := transport.NewTCPPeerWith(target.n.Site(), target.srv.Addr(),
			transport.PeerOptions{Timeout: 2 * time.Second, Stats: stats})
		defer p.Close()
		if _, err := p.AntiEntropy(core.ResolveConfig{
			Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 1,
		}, sites[0].n.Store(), nil); err != nil {
			t.Fatalf("anti-entropy to site %d: %v", target.n.Site(), err)
		}
		if !store.ContentEqual(sites[0].n.Store(), target.n.Store()) {
			t.Fatalf("site %d differs after shard-vector exercise", target.n.Site())
		}
	}
	exercise(sites[2]) // legacy client, but its server negotiates v4
	exercise(sites[5]) // v4 with 64 shards: incomparable vectors
	snap = stats.Snapshot()
	if snap.ShardVecExchanges == 0 {
		t.Error("no shard-vector exchange completed between equal-shard v4 peers")
	}
	if snap.ShardVecDowngrades == 0 {
		t.Error("mismatched shard counts never recorded a downgrade")
	}
}
