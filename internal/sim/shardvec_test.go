package sim

import (
	"fmt"
	"testing"

	"epidemic/internal/core"
	"epidemic/internal/store"
)

// TestClusterShardVectorStrategyConverges drives a full in-process cluster
// whose anti-entropy resolves via the per-shard vector compare: scattered
// divergence, deletions included, must still reach a consistent state.
func TestClusterShardVectorStrategyConverges(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		N: 6,
		Resolve: core.ResolveConfig{
			Mode: core.PushPull, Strategy: core.CompareShardVector,
			Tau: 2, Tau1: 1 << 40, BatchSize: 8,
		},
		Tau1: 1 << 40, Tau2: 1 << 41,
		StoreShards: 16,
		Seed:        99,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.N(); i++ {
		for j := 0; j < 5; j++ {
			c.Node(i).Update(fmt.Sprintf("site%d-k%d", i, j), store.Value("v"))
		}
	}
	c.Clock().Advance(50) // age the divergence past the recent window
	c.Node(0).Delete(fmt.Sprintf("site%d-k%d", 0, 0))

	if cycles, ok := c.RunAntiEntropyToConsistency(60); !ok {
		t.Fatalf("shard-vector cluster not consistent after %d cycles", cycles)
	}
	if c.CountDeleted("site0-k0") != c.N() {
		t.Error("deletion did not spread under the shard-vector strategy")
	}
	if c.TotalStats().FullCompares != 0 {
		t.Error("shard-vector runs degraded to full compares")
	}
}
