package sim

import (
	"epidemic/internal/node"
	"epidemic/internal/spatial"
	"epidemic/internal/timestamp"
	"epidemic/internal/topology"
	"fmt"
	"testing"

	"epidemic/internal/core"
	"epidemic/internal/store"
)

func newTestCluster(t *testing.T, mut func(*ClusterConfig)) *Cluster {
	t.Helper()
	cfg := ClusterConfig{
		N:     8,
		Rumor: core.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: core.PushPull},
		Seed:  42,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{N: 1}); err == nil {
		t.Error("N=1 accepted")
	}
}

func TestRumorSpreadsToAllNodes(t *testing.T) {
	c := newTestCluster(t, nil)
	c.Node(0).Update("k", store.Value("v"))
	cycles := c.RunRumorToQuiescence(100)
	if cycles == 0 {
		t.Fatal("no cycles ran")
	}
	got := c.CountWithValue("k", "v")
	if got < c.N()-1 { // rumor can miss a site; allow at most one straggler
		t.Errorf("only %d/%d nodes got the update", got, c.N())
	}
}

func TestAntiEntropyReachesConsistency(t *testing.T) {
	c := newTestCluster(t, nil)
	for i := 0; i < 4; i++ {
		c.Node(i).Update(fmt.Sprintf("k%d", i), store.Value("v"))
	}
	cycles, ok := c.RunAntiEntropyToConsistency(100)
	if !ok {
		t.Fatal("never consistent")
	}
	if cycles == 0 {
		t.Fatal("was already consistent?")
	}
	if !c.Consistent() {
		t.Fatal("Consistent() disagrees")
	}
}

func TestRumorBackedByAntiEntropyAlwaysConverges(t *testing.T) {
	// Rumor with aggressive k=1 may leave residue; a few anti-entropy
	// cycles must finish the job (§1.5).
	c := newTestCluster(t, func(cfg *ClusterConfig) {
		cfg.N = 16
		cfg.Rumor = core.RumorConfig{K: 1, Counter: true, Feedback: true, Mode: core.Push}
	})
	c.Node(3).Update("k", store.Value("v"))
	c.RunRumorToQuiescence(50)
	if _, ok := c.RunAntiEntropyToConsistency(50); !ok {
		t.Fatal("anti-entropy backup failed to converge")
	}
	if got := c.CountWithValue("k", "v"); got != c.N() {
		t.Errorf("%d/%d nodes have the update", got, c.N())
	}
}

func TestDeleteSpreadsAndNothingResurrects(t *testing.T) {
	c := newTestCluster(t, func(cfg *ClusterConfig) {
		cfg.Tau1 = 1000
		cfg.Tau2 = 1000
		cfg.RetentionCount = 2
	})
	c.Node(0).Update("k", store.Value("v"))
	if _, ok := c.RunAntiEntropyToConsistency(50); !ok {
		t.Fatal("initial spread failed")
	}
	c.Node(1).Delete("k")
	if _, ok := c.RunAntiEntropyToConsistency(50); !ok {
		t.Fatal("delete spread failed")
	}
	if got := c.CountDeleted("k"); got != c.N() {
		t.Errorf("%d/%d nodes deleted", got, c.N())
	}
	// Keep gossiping: the item must stay dead (death certificates win).
	for i := 0; i < 10; i++ {
		c.StepAntiEntropy()
	}
	if got := c.CountDeleted("k"); got != c.N() {
		t.Errorf("resurrection: only %d/%d deleted", got, c.N())
	}
}

func TestPartitionHealsViaAntiEntropy(t *testing.T) {
	c := newTestCluster(t, nil)
	c.SetPartition(5, true)
	c.Node(0).Update("k", store.Value("v"))
	c.RunRumorToQuiescence(50)
	if _, ok := c.Node(5).Lookup("k"); ok {
		t.Fatal("partitioned node received update")
	}
	c.SetPartition(5, false)
	if _, ok := c.RunAntiEntropyToConsistency(100); !ok {
		t.Fatal("post-partition convergence failed")
	}
	if _, ok := c.Node(5).Lookup("k"); !ok {
		t.Fatal("healed node missing update")
	}
}

func TestDirectMailWithLossThenRepair(t *testing.T) {
	c := newTestCluster(t, func(cfg *ClusterConfig) {
		cfg.DirectMailOnUpdate = true
		cfg.MailLoss = 0.5
	})
	c.Node(0).Update("k", store.Value("v"))
	before := c.CountWithValue("k", "v")
	if before == c.N() {
		t.Skip("mail got lucky; nothing to repair")
	}
	if _, ok := c.RunAntiEntropyToConsistency(100); !ok {
		t.Fatal("repair failed")
	}
	if got := c.CountWithValue("k", "v"); got != c.N() {
		t.Errorf("%d/%d after repair", got, c.N())
	}
	stats := c.TotalStats()
	if stats.MailSent == 0 {
		t.Error("no mail recorded")
	}
}

func TestAsyncOutboxDirectMailConverges(t *testing.T) {
	// With OutboxWorkers > 0 every node mails through the async engine:
	// Update returns after an enqueue, so the test must FlushMail before
	// counting deliveries. LocalPeer batches deliver per-entry, so loss
	// and trace semantics are unchanged.
	c := newTestCluster(t, func(cfg *ClusterConfig) {
		cfg.DirectMailOnUpdate = true
		cfg.OutboxWorkers = 4
	})
	for i := 0; i < 4; i++ {
		c.Node(i).Update(fmt.Sprintf("k%d", i), store.Value("v"))
	}
	if !c.FlushMail() {
		t.Fatal("outbox flush timed out")
	}
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		if got := c.CountWithValue(key, "v"); got != c.N() {
			t.Errorf("%s: %d/%d nodes after flush", key, got, c.N())
		}
	}
	stats := c.TotalStats()
	if stats.OutboxEnqueued == 0 {
		t.Error("no outbox enqueues recorded")
	}
	if stats.OutboxBatches == 0 {
		t.Error("no outbox batches recorded")
	}
	if stats.OutboxDepth != 0 {
		t.Errorf("outbox depth %d after flush", stats.OutboxDepth)
	}
}

func TestStepGCDropsCertificates(t *testing.T) {
	c := newTestCluster(t, func(cfg *ClusterConfig) {
		cfg.Tau1 = 5
		cfg.Tau2 = 5
		cfg.RetentionCount = 1
	})
	c.Node(0).Update("k", store.Value("v"))
	c.RunAntiEntropyToConsistency(50)
	c.Node(0).Delete("k")
	c.RunAntiEntropyToConsistency(50)
	c.Clock().Advance(100)
	c.StepGC()
	total := 0
	for i := 0; i < c.N(); i++ {
		total += len(c.Node(i).Store().DeathCertificates())
	}
	if total != 0 {
		t.Errorf("%d certificates survived far beyond tau1+tau2", total)
	}
}

func TestClusterAccessors(t *testing.T) {
	c := newTestCluster(t, nil)
	if c.N() != 8 {
		t.Errorf("N = %d", c.N())
	}
	if c.Cycle() != 0 {
		t.Errorf("Cycle = %d", c.Cycle())
	}
	c.StepRumor()
	if c.Cycle() != 1 {
		t.Errorf("Cycle = %d after step", c.Cycle())
	}
	if c.Clock() == nil || c.Node(0) == nil {
		t.Error("accessors nil")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("Summary = %+v", s)
	}
	s = Summarize([]float64{5})
	if s.Median != 5 || s.Std != 0 {
		t.Errorf("single-sample Summary = %+v", s)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("empty Summary = %+v", got)
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean wrong")
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Errorf("odd median = %v", odd.Median)
	}
}

// With badly skewed clocks the algorithms "work formally but not
// practically" (§1.1): replicas still converge to identical content, but
// a fast-clocked site's update beats a genuinely later write from a
// slow-clocked site.
func TestClockSkewConvergesButMisorders(t *testing.T) {
	src := timestamp.NewSimulated(1000)
	mkNode := func(site timestamp.SiteID, skew int64) *node.Node {
		n, err := node.New(node.Config{
			Site:  site,
			Clock: src.SkewedClockAt(site, skew),
			Seed:  int64(site),
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	fast := mkNode(1, +500) // clock runs half a kilotick ahead
	slow := mkNode(2, -500)
	fast.SetPeers([]node.Peer{node.NewLocalPeer(slow, 1)})
	slow.SetPeers([]node.Peer{node.NewLocalPeer(fast, 2)})

	fast.Update("k", store.Value("from-fast"))
	src.Advance(100)
	slow.Update("k", store.Value("from-slow")) // genuinely later

	if err := fast.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	// Formally correct: both replicas agree...
	if !store.ContentEqual(fast.Store(), slow.Store()) {
		t.Fatal("replicas diverged under skew")
	}
	// ...practically wrong: the earlier write won.
	v, _ := slow.Lookup("k")
	if string(v) != "from-fast" {
		t.Fatalf("expected the fast clock's earlier write to win, got %q", v)
	}
}

func TestClusterSpatialWiring(t *testing.T) {
	nw, err := topology.Line(8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		N:           8,
		Rumor:       core.RumorConfig{K: 4, Counter: true, Feedback: true, Mode: core.PushPull},
		Network:     nw,
		SpatialForm: spatial.FormPaper,
		SpatialA:    2,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Node(0).Update("k", store.Value("v"))
	if _, ok := c.RunAntiEntropyToConsistency(100); !ok {
		t.Fatal("spatial cluster never converged")
	}
	// Size mismatch is rejected.
	if _, err := NewCluster(ClusterConfig{
		N: 4, Network: nw, SpatialForm: spatial.FormPaper, SpatialA: 2,
		Rumor: core.RumorConfig{K: 2, Counter: true, Feedback: true, Mode: core.PushPull},
	}); err == nil {
		t.Error("size mismatch accepted")
	}
	// Bad exponent is rejected.
	if _, err := NewCluster(ClusterConfig{
		N: 8, Network: nw, SpatialForm: spatial.FormPaper, SpatialA: -1,
		Rumor: core.RumorConfig{K: 2, Counter: true, Feedback: true, Mode: core.PushPull},
	}); err == nil {
		t.Error("bad exponent accepted")
	}
}

// §1.5: the combined peel-back/rumor scheme "behaves well when a network
// partitions and rejoins" — both sides accumulate updates independently;
// after the heal, activity-ordered exchanges converge without shipping
// the whole shared history.
func TestActivityExchangeHealsPartition(t *testing.T) {
	c := newTestCluster(t, func(cfg *ClusterConfig) { cfg.N = 6 })
	// Shared history at every replica.
	for i := 0; i < 30; i++ {
		c.Node(0).Update(fmt.Sprintf("hist%02d", i), store.Value("old"))
	}
	if _, ok := c.RunAntiEntropyToConsistency(60); !ok {
		t.Fatal("history never spread")
	}
	// Partition site 5; both sides write.
	c.SetPartition(5, true)
	c.Node(5).Update("island", store.Value("i"))
	c.Node(1).Update("mainland", store.Value("m"))
	for i := 0; i < 5; i++ {
		c.StepActivityExchange(4)
	}
	if _, ok := c.Node(5).Lookup("mainland"); ok {
		t.Fatal("partition leaked")
	}
	c.SetPartition(5, false)
	shipped := 0
	for i := 0; i < 20 && !c.Consistent(); i++ {
		shipped += c.StepActivityExchange(4)
	}
	if !c.Consistent() {
		t.Fatal("activity exchange did not heal the partition")
	}
	// The fresh divergence (2 keys) must not cost a full history replay
	// per conversation: allow generous slack for probing batches, but far
	// below everyone shipping all ~32 entries to everyone.
	if shipped > 6*32*3 {
		t.Errorf("healing shipped %d entries; activity order should keep it small", shipped)
	}
}

// The per-cycle total must be the sum of per-node counts regardless of the
// randomized visit order: two clusters with the same seed report identical
// totals cycle by cycle, and the totals reconcile with the nodes' own
// EntriesSent statistics.
func TestStepActivityExchangeIndexedTotals(t *testing.T) {
	build := func() *Cluster {
		c := newTestCluster(t, func(cfg *ClusterConfig) { cfg.N = 6 })
		for i := 0; i < 6; i++ {
			c.Node(i).Update(fmt.Sprintf("k%d", i), store.Value("v"))
		}
		return c
	}
	a, b := build(), build()
	var totalA, totalB int
	for i := 0; i < 10; i++ {
		totalA += a.StepActivityExchange(4)
		totalB += b.StepActivityExchange(4)
	}
	if totalA != totalB {
		t.Errorf("same-seed clusters shipped %d vs %d entries", totalA, totalB)
	}
	if totalA == 0 {
		t.Fatal("no entries shipped")
	}
	if got := int(a.TotalStats().EntriesSent); got != totalA {
		t.Errorf("StepActivityExchange total %d != summed node stats %d", totalA, got)
	}
}
