package sim

import (
	"math"
	"testing"

	"epidemic/internal/core"
)

func digestCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		N:     n,
		Rumor: core.RumorConfig{K: 4, Counter: true, Feedback: true, Mode: core.PushPull},
		Resolve: core.ResolveConfig{
			Mode: core.PushPull, Strategy: core.CompareRecent, Tau: 1 << 40,
		},
		ClusterDigests: true,
		Seed:           99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// digestViewComplete reports whether every directory holds a digest for
// every site with the expected stamp.
func digestViewComplete(c *Cluster, wantStamp int64) bool {
	for i := 0; i < c.N(); i++ {
		dir := c.DigestDirectory(i)
		if dir.Len() != c.N() {
			return false
		}
		for site := 0; site < c.N(); site++ {
			dg, ok := dir.Get(int32(site))
			if !ok || dg.Stamp != wantStamp {
				return false
			}
		}
	}
	return true
}

// TestDigestViewConvergesLogN is the acceptance property: after one
// refresh, anti-entropy push-pull disseminates the full digest set to
// every replica within O(log n) cycles — the same bound the data itself
// enjoys (each conversation swaps views both ways, so informed pairs
// double per cycle until the connection graph saturates).
func TestDigestViewConvergesLogN(t *testing.T) {
	const n = 32
	c := digestCluster(t, n)

	c.RefreshDigests()
	stamp := c.Clock().Read()

	// Generous constant over ceil(log2 n): push-pull needs ~log2 n + O(1)
	// expected cycles; 4x absorbs random partner collisions at this size.
	budget := 4 * int(math.Ceil(math.Log2(n)))
	cycles := 0
	for ; cycles < budget && !digestViewComplete(c, stamp); cycles++ {
		c.StepAntiEntropy()
	}
	if !digestViewComplete(c, stamp) {
		t.Fatalf("digest view incomplete after %d cycles (budget %d, n=%d)", cycles, budget, n)
	}
	t.Logf("digest view converged in %d cycles (budget %d, n=%d)", cycles, budget, n)
}

// TestDigestViewMatchesGroundTruth: the converged digests report the real
// per-node state — store sizes, checksums, protocol counters — not copies
// of someone else's.
func TestDigestViewMatchesGroundTruth(t *testing.T) {
	const n = 8
	c := digestCluster(t, n)

	// Give the sites distinguishable stores: site i originates i+1 keys,
	// spread to full consistency first so StoreKeys agree everywhere.
	for i := 0; i < n; i++ {
		for k := 0; k <= i; k++ {
			c.Node(i).Update(string(rune('a'+i))+string(rune('0'+k)), []byte{byte(i)})
		}
	}
	if _, ok := c.RunAntiEntropyToConsistency(200); !ok {
		t.Fatal("cluster did not converge")
	}

	c.RefreshDigests()
	stamp := c.Clock().Read()
	for i := 0; i < 40 && !digestViewComplete(c, stamp); i++ {
		c.StepAntiEntropy()
	}
	if !digestViewComplete(c, stamp) {
		t.Fatal("digest view incomplete")
	}

	// Every observer's digest for every site must equal that site's own
	// self-digest (ground truth at refresh time).
	for observer := 0; observer < n; observer++ {
		dir := c.DigestDirectory(observer)
		for site := 0; site < n; site++ {
			got, _ := dir.Get(int32(site))
			truth, _ := c.DigestDirectory(site).Get(int32(site))
			if got != truth {
				t.Errorf("observer %d's digest of site %d = %+v, truth %+v",
					observer, site, got, truth)
			}
			want := c.Node(site).Store()
			if got.StoreKeys != int64(len(want.Keys())) || got.Checksum != want.Checksum() {
				t.Errorf("site %d digest disagrees with its store: %+v", site, got)
			}
		}
	}
}

// TestDigestStalenessAfterPartition: a partitioned site's digest stops
// refreshing in the survivors' views — the staleness signal the daemon's
// stall detector consumes.
func TestDigestStalenessAfterPartition(t *testing.T) {
	const n = 8
	c := digestCluster(t, n)

	c.RefreshDigests()
	firstStamp := c.Clock().Read()
	for i := 0; i < 40 && !digestViewComplete(c, firstStamp); i++ {
		c.StepAntiEntropy()
	}
	if !digestViewComplete(c, firstStamp) {
		t.Fatal("initial digest view incomplete")
	}

	c.SetPartition(0, true)
	// Several refresh+spread rounds with site 0 cut off.
	var lastStamp int64
	for round := 0; round < 3; round++ {
		c.RefreshDigests()
		lastStamp = c.Clock().Read()
		for i := 0; i < 10; i++ {
			c.StepAntiEntropy()
		}
	}

	for observer := 1; observer < n; observer++ {
		dir := c.DigestDirectory(observer)
		dg, ok := dir.Get(0)
		if !ok {
			t.Fatalf("observer %d lost site 0's digest entirely", observer)
		}
		if dg.Stamp != firstStamp {
			t.Errorf("observer %d has site 0 at stamp %d, want frozen at %d",
				observer, dg.Stamp, firstStamp)
		}
		if fresh, _ := dir.Get(1); observer != 1 && fresh.Stamp != lastStamp {
			t.Errorf("observer %d has live site 1 at stamp %d, want %d",
				observer, fresh.Stamp, lastStamp)
		}
	}
}
