package sim

import (
	"testing"

	"epidemic/internal/core"
	"epidemic/internal/obs"
	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
)

// federateSpans collects every node's trace ring, as gossipctl does across
// a live cluster.
func federateSpans(c *Cluster) []trace.Span {
	var spans []trace.Span
	for i := 0; i < c.N(); i++ {
		spans = append(spans, c.Node(i).Tracer().Spans()...)
	}
	return spans
}

// checkHops walks the tree asserting the causal-hop invariant: every child
// sits exactly one hop beyond its parent, no later than it, and the root is
// hop zero.
func checkHops(t *testing.T, n *trace.TreeNode) {
	t.Helper()
	for _, child := range n.Children {
		if child.Hop != n.Hop+1 {
			t.Errorf("site %d hop %d under site %d hop %d", child.Site, child.Hop, n.Site, n.Hop)
		}
		if child.At < n.At {
			t.Errorf("site %d infected at %d before its parent %d at %d", child.Site, child.At, n.Site, n.At)
		}
		checkHops(t, child)
	}
}

// TestClusterTraceMatchesPropagation proves the span path is lossless: the
// observables derived from the assembled infection tree agree exactly (in
// ticks) with the Propagation tracker watching the same run.
func TestClusterTraceMatchesPropagation(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, func(cfg *ClusterConfig) {
		cfg.Registry = reg
		cfg.TraceRing = 1024
	})
	origin, firstSeen := groundTruthSpread(c, "k", "v")
	prop := c.Propagation()

	tree := trace.Assemble("k", federateSpans(c))
	if tree == nil {
		t.Fatal("no spans recorded for k")
	}
	if len(tree.Orphans) != 0 {
		t.Errorf("orphans with every replica queried: %v", tree.Orphans)
	}
	if tree.Root == nil {
		t.Fatal("no origin span")
	}
	if tree.Root.Hop != 0 || tree.Root.At != origin {
		t.Errorf("root hop %d at %d, want 0 at %d", tree.Root.Hop, tree.Root.At, origin)
	}
	checkHops(t, tree.Root)

	if got, want := len(tree.Sites()), len(firstSeen); got != want {
		t.Fatalf("tree covers %d sites, ground truth %d", got, want)
	}
	if got, want := len(tree.Sites()), prop.InfectedCount("k"); got != want {
		t.Fatalf("tree covers %d sites, tracker %d", got, want)
	}

	// Exact agreement, not approximate: both sides measure integer ticks
	// from the same apply events.
	wantLast, _ := prop.TLast("k")
	if got := tree.TLastUnits(); float64(got) != wantLast {
		t.Errorf("t_last = %d ticks, tracker %v", got, wantLast)
	}
	wantAvg, _ := prop.TAvg("k")
	if got := tree.TAvgUnits(); got != wantAvg {
		t.Errorf("t_avg = %v ticks, tracker %v", got, wantAvg)
	}
	if got, want := tree.Residue(c.N()), prop.Residue("k", c.N()); got != want {
		t.Errorf("residue = %v, tracker %v", got, want)
	}

	// Every infection beyond the origin came over a rumor mechanism.
	mechs := tree.MechanismCounts()
	if mechs[trace.MechOrigin.String()] != 1 {
		t.Errorf("origin count = %d in %v", mechs[trace.MechOrigin.String()], mechs)
	}
	rumor := mechs[trace.MechRumorPush.String()] + mechs[trace.MechRumorPull.String()]
	if rumor != len(firstSeen)-1 {
		t.Errorf("rumor infections = %d, want %d (mechs %v)", rumor, len(firstSeen)-1, mechs)
	}
}

// TestClusterTraceAntiEntropy drives convergence purely by anti-entropy and
// checks the spans tag the right mechanism while still matching the tracker.
func TestClusterTraceAntiEntropy(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, func(cfg *ClusterConfig) {
		cfg.Registry = reg
		cfg.TraceRing = 1024
		cfg.Resolve = core.ResolveConfig{
			Mode: core.PushPull, Strategy: core.CompareRecent,
			Tau: 1 << 40, Tau1: 1 << 40,
		}
	})
	c.Node(0).Update("k", store.Value("v"))
	if _, ok := c.RunAntiEntropyToConsistency(200); !ok {
		t.Fatal("no convergence in 200 cycles")
	}

	tree := trace.Assemble("k", federateSpans(c))
	if tree == nil || tree.Root == nil {
		t.Fatalf("tree = %+v", tree)
	}
	if got := len(tree.Sites()); got != c.N() {
		t.Fatalf("tree covers %d sites, want %d", got, c.N())
	}
	checkHops(t, tree.Root)
	prop := c.Propagation()
	wantLast, _ := prop.TLast("k")
	if got := tree.TLastUnits(); float64(got) != wantLast {
		t.Errorf("t_last = %d ticks, tracker %v", got, wantLast)
	}
	wantAvg, _ := prop.TAvg("k")
	if got := tree.TAvgUnits(); got != wantAvg {
		t.Errorf("t_avg = %v ticks, tracker %v", got, wantAvg)
	}

	mechs := tree.MechanismCounts()
	if mechs[trace.MechAntiEntropy.String()] != c.N()-1 {
		t.Errorf("anti-entropy infections = %v, want %d", mechs, c.N()-1)
	}
}

// TestClusterTraceResidue repeats the feeble-rumor residue scenario and
// checks the trace-derived residue equals the tracker's exactly even when
// the epidemic dies out early.
func TestClusterTraceResidue(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		reg := obs.NewRegistry()
		c, err := NewCluster(ClusterConfig{
			N:         32,
			Rumor:     core.RumorConfig{K: 1, Counter: true, Feedback: true, Mode: core.Push},
			Seed:      seed,
			Registry:  reg,
			TraceRing: 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		groundTruthSpread(c, "k", "v")
		tree := trace.Assemble("k", federateSpans(c))
		if tree == nil {
			t.Fatalf("seed %d: no spans", seed)
		}
		prop := c.Propagation()
		if got, want := len(tree.Sites()), prop.InfectedCount("k"); got != want {
			t.Errorf("seed %d: tree covers %d sites, tracker %d", seed, got, want)
		}
		if got, want := tree.Residue(c.N()), prop.Residue("k", c.N()); got != want {
			t.Errorf("seed %d: residue = %v, tracker %v", seed, got, want)
		}
		wantLast, _ := prop.TLast("k")
		if got := tree.TLastUnits(); float64(got) != wantLast {
			t.Errorf("seed %d: t_last = %d ticks, tracker %v", seed, got, wantLast)
		}
	}
}
