// Package sim provides the database-level simulation harness: a Cluster of
// full node.Node replicas wired together in memory over a simulated clock,
// driven in deterministic synchronous cycles. It complements the abstract
// single-update spread engines in package core — where those regenerate the
// paper's tables, the Cluster exercises the complete stack (stores, death
// certificates, hot-rumor lists, redistribution) for the deletion and
// backup experiments of §1.5 and §2 and for the examples.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/node"
	"epidemic/internal/obs"
	"epidemic/internal/obs/cluster"
	"epidemic/internal/obs/history"
	"epidemic/internal/spatial"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
	"epidemic/internal/topology"
)

// ClusterConfig configures a simulated cluster.
type ClusterConfig struct {
	// N is the number of replicas.
	N int
	// Rumor, Resolve, Redistribution, Tau1, Tau2, RetentionCount and
	// DirectMailOnUpdate are forwarded to every node.
	Rumor              core.RumorConfig
	Resolve            core.ResolveConfig
	Redistribution     core.Redistribution
	Tau1, Tau2         int64
	RetentionCount     int
	DirectMailOnUpdate bool
	// MailLoss is the probability that any direct-mailed update is lost.
	MailLoss float64
	// OutboxWorkers, when > 0, runs every node's asynchronous outbound
	// mail engine with that many workers; tests must then FlushMail
	// before asserting on delivery. 0 (the default) keeps mail serial so
	// cycles stay deterministic under the simulated clock.
	OutboxWorkers int
	// Network, when set, places the replicas on a topology (it must have
	// exactly N sites) and weights every node's peer selection by the
	// spatial distribution SpatialForm with exponent SpatialA (§3) —
	// FormUniform/zero values keep selection uniform.
	Network     *topology.Network
	SpatialForm spatial.Form
	SpatialA    float64
	// StoreShards is forwarded to every node's replica store (lock-stripe
	// count, 0 = default).
	StoreShards int
	// TraceRing, when > 0, gives every node a hop-provenance tracer
	// retaining that many spans, so infection trees can be assembled from
	// the same run the Propagation tracker observes.
	TraceRing int
	// ClusterDigests, when true, gives every node a cluster digest
	// directory and wires the in-process peers to exchange digests on
	// anti-entropy and rumor-pull conversations — the observatory's
	// epidemic channel, testable against ground truth (every node IS the
	// cluster here). Digest stamps are simulated ticks.
	ClusterDigests bool
	// Seed makes runs reproducible.
	Seed int64
	// TickPerCycle advances the simulated clock this much each cycle
	// (default 1).
	TickPerCycle int64
	// Registry, when set, instruments every node into it: the per-site
	// epidemic_* counters and gauges, plus a shared propagation tracker
	// (one simulated tick = one second) whose t_last/t_avg/residue are
	// exposed through Propagation. Soak tests assert on these metrics
	// against cluster ground truth.
	Registry *obs.Registry
	// HistoryEvery, when > 0 (and Registry is set), samples every
	// registered metric into an on-node history.Sampler once per that many
	// cycles, stamped with the simulated clock — the deterministic twin of
	// the daemon's fixed-cadence sampler goroutine, so history-derived
	// trajectories can be checked against tracker ground truth exactly.
	HistoryEvery int
	// HistoryRetention bounds the history to that many samples per series
	// (default 1024).
	HistoryRetention int
}

// Cluster is a set of in-memory replicas plus the simulated clock they
// share.
type Cluster struct {
	cfg     ClusterConfig
	clock   *timestamp.Simulated
	nodes   []*node.Node
	peers   [][]*node.LocalPeer // peers[i] = peer objects owned by node i
	rng     *rand.Rand
	cycle   int
	prop    *obs.Propagation     // non-nil when cfg.Registry is set
	digests []*cluster.Directory // non-nil when cfg.ClusterDigests
	history *history.Sampler     // non-nil when cfg.HistoryEvery > 0
}

// NewCluster builds a fully connected cluster of n nodes.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("sim: cluster needs N >= 2, got %d", cfg.N)
	}
	if cfg.TickPerCycle <= 0 {
		cfg.TickPerCycle = 1
	}
	clock := timestamp.NewSimulated(1)
	c := &Cluster{
		cfg:   cfg,
		clock: clock,
		nodes: make([]*node.Node, cfg.N),
		peers: make([][]*node.LocalPeer, cfg.N),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.ClusterDigests {
		c.digests = make([]*cluster.Directory, cfg.N)
		for i := range c.digests {
			c.digests[i] = cluster.NewDirectory(int32(i), 0)
		}
	}
	outboxWorkers := cfg.OutboxWorkers
	if outboxWorkers <= 0 {
		outboxWorkers = -1 // serial mail: deterministic simulated cycles
	}
	for i := 0; i < cfg.N; i++ {
		site := timestamp.SiteID(i)
		var dir *cluster.Directory
		if c.digests != nil {
			dir = c.digests[i]
		}
		n, err := node.New(node.Config{
			Site:               site,
			Clock:              clock.ClockAt(site),
			Rumor:              cfg.Rumor,
			Resolve:            cfg.Resolve,
			Redistribution:     cfg.Redistribution,
			Tau1:               cfg.Tau1,
			Tau2:               cfg.Tau2,
			RetentionCount:     cfg.RetentionCount,
			DirectMailOnUpdate: cfg.DirectMailOnUpdate,
			Outbox:             node.OutboxConfig{Workers: outboxWorkers},
			StoreShards:        cfg.StoreShards,
			TraceRing:          cfg.TraceRing,
			Digests:            dir,
			Seed:               cfg.Seed + int64(i) + 1,
		})
		if err != nil {
			return nil, err
		}
		c.nodes[i] = n
	}
	if cfg.Registry != nil {
		// One simulated tick is treated as one second, so the propagation
		// histogram's t_last/t_avg read directly in cycles.
		hist := cfg.Registry.Histogram(obs.MetricUpdatePropagation,
			"Delay from an update's origination to its application at a replica, in seconds.", nil)
		c.prop = obs.NewPropagation(1, hist)
		for _, n := range c.nodes {
			n.SetOnEvent(obs.InstrumentNode(cfg.Registry, n, obs.ObserveOptions{
				Propagation:    c.prop,
				SecondsPerUnit: 1,
				SiteLabel:      true,
			}))
		}
	}
	if cfg.Registry != nil && cfg.HistoryEvery > 0 {
		retain := cfg.HistoryRetention
		if retain <= 0 {
			retain = 1024
		}
		// One simulated tick = one second, matching the propagation
		// tracker's SecondsPerUnit above; the Step only sizes the rings —
		// stepAllIndexed drives the cadence deterministically.
		step := time.Duration(cfg.TickPerCycle*int64(cfg.HistoryEvery)) * time.Second
		c.history = history.New(cfg.Registry, history.Config{
			Step:           step,
			Retention:      step * time.Duration(retain),
			SecondsPerUnit: 1,
		})
	}
	var sel spatial.Selector
	if cfg.Network != nil && cfg.SpatialForm != 0 && cfg.SpatialForm != spatial.FormUniform {
		if cfg.Network.NumSites() != cfg.N {
			return nil, fmt.Errorf("sim: network has %d sites, cluster has %d", cfg.Network.NumSites(), cfg.N)
		}
		var err error
		sel, err = spatial.New(cfg.Network, cfg.SpatialForm, cfg.SpatialA)
		if err != nil {
			return nil, err
		}
	}
	for i, n := range c.nodes {
		peerObjs := make([]*node.LocalPeer, 0, cfg.N-1)
		peerIfc := make([]node.Peer, 0, cfg.N-1)
		var weights []float64
		var probs []float64
		if sel != nil {
			probs = spatial.Probabilities(sel, i)
		}
		for j, target := range c.nodes {
			if j == i {
				continue
			}
			lp := node.NewLocalPeer(target, cfg.Seed+int64(i*cfg.N+j))
			lp.SetMailLoss(cfg.MailLoss)
			if c.digests != nil {
				lp.SetDigestDirectory(c.digests[i])
			}
			peerObjs = append(peerObjs, lp)
			peerIfc = append(peerIfc, lp)
			if probs != nil {
				weights = append(weights, probs[j])
			}
		}
		c.peers[i] = peerObjs
		if weights != nil {
			if err := n.SetPeersWeighted(peerIfc, weights); err != nil {
				return nil, fmt.Errorf("sim: weighting peers of site %d: %w", i, err)
			}
		} else {
			n.SetPeers(peerIfc)
		}
	}
	return c, nil
}

// Node returns replica i.
func (c *Cluster) Node(i int) *node.Node { return c.nodes[i] }

// N returns the cluster size.
func (c *Cluster) N() int { return c.cfg.N }

// Cycle returns the number of cycles stepped so far.
func (c *Cluster) Cycle() int { return c.cycle }

// Clock returns the shared simulated time source.
func (c *Cluster) Clock() *timestamp.Simulated { return c.clock }

// Propagation returns the cluster-wide update-propagation tracker, or nil
// when the cluster was built without a Registry.
func (c *Cluster) Propagation() *obs.Propagation { return c.prop }

// History returns the deterministic-clock metric sampler, or nil when the
// cluster was built without HistoryEvery.
func (c *Cluster) History() *history.Sampler { return c.history }

// DigestDirectory returns site i's digest directory (nil when the cluster
// was built without ClusterDigests).
func (c *Cluster) DigestDirectory(i int) *cluster.Directory {
	if c.digests == nil {
		return nil
	}
	return c.digests[i]
}

// RefreshDigests makes every node snapshot a fresh self digest at the
// current simulated time — the sim analogue of the daemon's periodic
// collector tick. Call between step cycles; the digests then spread on the
// next conversations.
func (c *Cluster) RefreshDigests() {
	if c.digests == nil {
		return
	}
	now := c.clock.Read()
	for i, n := range c.nodes {
		st := n.Store()
		s := n.Stats()
		c.digests[i].SetSelf(cluster.Digest{
			Stamp:     now,
			StoreKeys: int64(len(st.Keys())),
			Checksum:  st.Checksum(),
			HotRumors: int64(len(n.HotEntries())),
			Peers:     int64(len(n.Peers())),
			AERuns:    int64(s.AntiEntropyRuns),
			RumorRuns: int64(s.RumorRuns),
		})
	}
}

// SetPartition isolates site from the rest of the cluster (or heals the
// partition): nobody can converse with it and it can converse with nobody.
func (c *Cluster) SetPartition(site int, down bool) {
	for i, peerObjs := range c.peers {
		for _, p := range peerObjs {
			if i == site || p.ID() == timestamp.SiteID(site) {
				p.SetDown(down)
			}
		}
	}
}

// FlushMail drains every node's outbound mail engine, reporting whether
// all drains completed. A no-op (true) for the default serial
// configuration (OutboxWorkers == 0).
func (c *Cluster) FlushMail() bool {
	ok := true
	for _, n := range c.nodes {
		if !n.FlushMail(0) {
			ok = false
		}
	}
	return ok
}

// StepRumor runs one rumor-mongering cycle: every node executes StepRumor
// once, in random order, then the clock ticks.
func (c *Cluster) StepRumor() {
	c.stepAll(func(n *node.Node) { _ = n.StepRumor() })
}

// StepAntiEntropy runs one anti-entropy cycle.
func (c *Cluster) StepAntiEntropy() {
	c.stepAll(func(n *node.Node) { _ = n.StepAntiEntropy() })
}

// StepActivityExchange runs one §1.5 combined peel-back/rumor round:
// every node ships activity-ordered batches to one partner until checksum
// agreement. It returns the total entries shipped this cycle. Per-node
// counts land in a slice indexed by node, so the reduction is independent
// of the (randomized) step order.
func (c *Cluster) StepActivityExchange(batch int) int {
	sent := make([]int, len(c.nodes))
	c.stepAllIndexed(func(i int, n *node.Node) {
		sent[i], _ = n.StepActivityExchange(batch)
	})
	total := 0
	for _, s := range sent {
		total += s
	}
	return total
}

// StepGC runs death-certificate expiry at every node.
func (c *Cluster) StepGC() {
	for _, n := range c.nodes {
		n.StepGC()
	}
}

func (c *Cluster) stepAll(step func(*node.Node)) {
	c.stepAllIndexed(func(_ int, n *node.Node) { step(n) })
}

// stepAllIndexed steps every node once in random order, passing each node's
// index so callers can collect per-node results into an indexed slice
// rather than accumulating in visit order.
func (c *Cluster) stepAllIndexed(step func(int, *node.Node)) {
	order := c.rng.Perm(len(c.nodes))
	for _, i := range order {
		step(i, c.nodes[i])
	}
	c.clock.Advance(c.cfg.TickPerCycle)
	c.cycle++
	if c.history != nil && c.cycle%c.cfg.HistoryEvery == 0 {
		c.history.Sample(c.clock.Read())
	}
}

// RunRumorToQuiescence steps rumor cycles until no node holds hot rumors
// or maxCycles elapses, returning the cycles executed.
func (c *Cluster) RunRumorToQuiescence(maxCycles int) int {
	start := c.cycle
	for c.cycle-start < maxCycles {
		if !c.AnyHot() {
			break
		}
		c.StepRumor()
	}
	return c.cycle - start
}

// RunAntiEntropyToConsistency steps anti-entropy cycles until all replicas
// agree or maxCycles elapses.
func (c *Cluster) RunAntiEntropyToConsistency(maxCycles int) (cycles int, consistent bool) {
	start := c.cycle
	for c.cycle-start < maxCycles {
		if c.Consistent() {
			return c.cycle - start, true
		}
		c.StepAntiEntropy()
	}
	return c.cycle - start, c.Consistent()
}

// AnyHot reports whether any node still holds hot rumors.
func (c *Cluster) AnyHot() bool {
	for _, n := range c.nodes {
		if len(n.HotEntries()) > 0 {
			return true
		}
	}
	return false
}

// Consistent reports whether all replicas hold identical content.
func (c *Cluster) Consistent() bool {
	first := c.nodes[0].Store()
	for _, n := range c.nodes[1:] {
		if !store.ContentEqual(first, n.Store()) {
			return false
		}
	}
	return true
}

// CountWithValue returns how many replicas see the given value for key.
func (c *Cluster) CountWithValue(key string, want string) int {
	count := 0
	for _, n := range c.nodes {
		if v, ok := n.Lookup(key); ok && string(v) == want {
			count++
		}
	}
	return count
}

// CountDeleted returns how many replicas consider key deleted or absent.
func (c *Cluster) CountDeleted(key string) int {
	count := 0
	for _, n := range c.nodes {
		if _, ok := n.Lookup(key); !ok {
			count++
		}
	}
	return count
}

// TotalStats sums all node statistics.
func (c *Cluster) TotalStats() node.Stats {
	var total node.Stats
	for _, n := range c.nodes {
		s := n.Stats()
		total.UpdatesAccepted += s.UpdatesAccepted
		total.MailSent += s.MailSent
		total.MailFailed += s.MailFailed
		total.AntiEntropyRuns += s.AntiEntropyRuns
		total.RumorRuns += s.RumorRuns
		total.EntriesSent += s.EntriesSent
		total.EntriesReceived += s.EntriesReceived
		total.EntriesApplied += s.EntriesApplied
		total.FullCompares += s.FullCompares
		total.Redistributed += s.Redistributed
		total.CertificatesExpired += s.CertificatesExpired
		total.OutboxEnqueued += s.OutboxEnqueued
		total.OutboxCoalesced += s.OutboxCoalesced
		total.OutboxDropped += s.OutboxDropped
		total.OutboxBatches += s.OutboxBatches
		total.OutboxDepth += s.OutboxDepth
		total.MailBatchesReceived += s.MailBatchesReceived
	}
	return total
}
