package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"epidemic/internal/core"
	"epidemic/internal/obs"
	"epidemic/internal/store"
)

// groundTruthSpread updates key at node 0, steps rumor cycles to
// quiescence, and returns the origin time plus each site's first-infection
// tick observed from the outside: after every cycle, any node newly holding
// the value was infected at clock.Read()-tick (the clock advances after all
// nodes step).
func groundTruthSpread(c *Cluster, key, value string) (origin int64, firstSeen map[int]int64) {
	e := c.Node(0).Update(key, store.Value(value))
	origin = e.Stamp.Time
	firstSeen = map[int]int64{0: origin}
	for cycle := 0; cycle < 200 && c.AnyHot(); cycle++ {
		c.StepRumor()
		at := c.Clock().Read() - 1
		for i := 0; i < c.N(); i++ {
			if _, ok := firstSeen[i]; ok {
				continue
			}
			if v, ok := c.Node(i).Lookup(key); ok && string(v) == value {
				firstSeen[i] = at
			}
		}
	}
	return origin, firstSeen
}

func TestClusterPropagationMatchesGroundTruth(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, func(cfg *ClusterConfig) { cfg.Registry = reg })
	origin, firstSeen := groundTruthSpread(c, "k", "v")

	prop := c.Propagation()
	if prop == nil {
		t.Fatal("Propagation() is nil although a Registry was configured")
	}
	if got, want := prop.InfectedCount("k"), len(firstSeen); got != want {
		t.Fatalf("InfectedCount = %d, ground truth %d", got, want)
	}

	var wantLast, sum float64
	for _, at := range firstSeen {
		d := float64(at - origin)
		sum += d
		if d > wantLast {
			wantLast = d
		}
	}
	wantAvg := sum / float64(len(firstSeen))

	if got, ok := prop.TLast("k"); !ok || got != wantLast {
		t.Errorf("t_last = %v (tracked=%v), ground truth %v", got, ok, wantLast)
	}
	if got, ok := prop.TAvg("k"); !ok || math.Abs(got-wantAvg) > 1e-9 {
		t.Errorf("t_avg = %v (tracked=%v), ground truth %v", got, ok, wantAvg)
	}
	wantResidue := float64(c.N()-len(firstSeen)) / float64(c.N())
	if got := prop.Residue("k", c.N()); got != wantResidue {
		t.Errorf("residue = %v, ground truth %v", got, wantResidue)
	}

	// The shared histogram received exactly one observation per non-origin
	// infection, and its sum is the total delay in seconds (1 tick = 1 s).
	hist := reg.Histogram(obs.MetricUpdatePropagation, "", nil)
	if got, want := hist.Count(), uint64(len(firstSeen)-1); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := hist.Sum(); math.Abs(got-sum) > 1e-9 {
		t.Errorf("histogram sum = %v, want %v", got, sum)
	}
}

// TestClusterResidueNonZero drives a deliberately feeble rumor (Push, k=1,
// with feedback) on a larger cluster so the epidemic can die out before
// reaching everyone, and checks the tracked residue against the cluster's
// actual holdings. At least one of the seeds must leave survivors — the
// paper's Table 3 shows push/k=1 residue around 0.18.
func TestClusterResidueNonZero(t *testing.T) {
	sawResidue := false
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		reg := obs.NewRegistry()
		c, err := NewCluster(ClusterConfig{
			N:        32,
			Rumor:    core.RumorConfig{K: 1, Counter: true, Feedback: true, Mode: core.Push},
			Seed:     seed,
			Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, firstSeen := groundTruthSpread(c, "k", "v")
		if c.AnyHot() {
			t.Fatalf("seed %d: rumor still hot after 200 cycles", seed)
		}
		prop := c.Propagation()
		if got, want := prop.InfectedCount("k"), len(firstSeen); got != want {
			t.Errorf("seed %d: InfectedCount = %d, ground truth %d", seed, got, want)
		}
		wantResidue := float64(c.N()-len(firstSeen)) / float64(c.N())
		if got := prop.Residue("k", c.N()); got != wantResidue {
			t.Errorf("seed %d: residue = %v, ground truth %v", seed, got, wantResidue)
		}
		if wantResidue > 0 {
			sawResidue = true
		}
	}
	if !sawResidue {
		t.Error("no seed left residue; the scenario no longer exercises the residue path")
	}
}

// TestClusterExposition renders the shared registry after mixed rumor and
// anti-entropy traffic and checks both well-formedness and that the
// acceptance-criteria metric families are present.
func TestClusterExposition(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCluster(t, func(cfg *ClusterConfig) { cfg.Registry = reg })
	c.Node(0).Update("k", store.Value("v"))
	c.RunRumorToQuiescence(100)
	c.StepAntiEntropy()

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if err := obs.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, name := range []string{
		obs.MetricAntiEntropyRuns,
		obs.MetricRumorRounds,
		obs.MetricFullCompares,
		obs.MetricMailFailures,
		obs.MetricUpdatePropagation,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing metric family %s", name)
		}
	}
	// Per-site series carry the site label so all replicas share the
	// registry without colliding.
	if !strings.Contains(out, obs.MetricRumorRounds+`{site="0"}`) {
		t.Errorf("exposition missing site-labelled series:\n%s", out)
	}
}
