package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"epidemic/internal/core"
	"epidemic/internal/store"
)

// TestChaosSoak runs a cluster through an adversarial schedule — random
// updates and deletes, random partitions, random GC, mail loss — and then
// quiesces. The single postcondition is the paper's: with gossip allowed
// to finish, every replica converges to identical content and deleted
// items stay dead.
func TestChaosSoak(t *testing.T) {
	const (
		n      = 12
		cycles = 150
	)
	c, err := NewCluster(ClusterConfig{
		N:     n,
		Rumor: core.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: core.PushPull},
		Resolve: core.ResolveConfig{
			Mode:              core.PushPull,
			Strategy:          core.CompareFull,
			Tau1:              1 << 30, // certificates never dormant during the soak
			ReactivateDormant: true,
		},
		DirectMailOnUpdate: true,
		MailLoss:           0.3,
		Redistribution:     core.RedistributeRumor,
		Tau1:               1 << 30,
		Tau2:               1 << 30,
		RetentionCount:     3,
		Seed:               1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	partitioned := -1
	deleted := make(map[string]bool)

	for cycle := 0; cycle < cycles; cycle++ {
		// Random churn: a write or delete at a random reachable site.
		site := rng.Intn(n)
		if site == partitioned {
			site = (site + 1) % n
		}
		key := fmt.Sprintf("key%02d", rng.Intn(25))
		if rng.Float64() < 0.15 {
			c.Node(site).Delete(key)
			deleted[key] = true
		} else {
			c.Node(site).Update(key, store.Value(fmt.Sprintf("v%d", cycle)))
			delete(deleted, key)
		}

		// Random partition churn.
		switch {
		case partitioned < 0 && rng.Float64() < 0.1:
			partitioned = rng.Intn(n)
			c.SetPartition(partitioned, true)
		case partitioned >= 0 && rng.Float64() < 0.2:
			c.SetPartition(partitioned, false)
			partitioned = -1
		}

		c.StepRumor()
		c.StepAntiEntropy()
		if rng.Float64() < 0.2 {
			c.StepGC()
		}
	}

	// Heal and quiesce.
	if partitioned >= 0 {
		c.SetPartition(partitioned, false)
	}
	if _, ok := c.RunAntiEntropyToConsistency(300); !ok {
		t.Fatal("soak did not converge after quiescing")
	}
	// Deleted keys stay dead everywhere. (A later re-update removes the
	// key from `deleted`, so every remaining entry must be gone.)
	for key := range deleted {
		if got := c.CountDeleted(key); got != n {
			t.Errorf("key %s resurrected at %d replicas", key, n-got)
		}
	}
}
