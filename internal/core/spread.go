package core

import (
	"math/rand"
	"sync"

	"epidemic/internal/spatial"
	"epidemic/internal/topology"
)

// State is a site's status with respect to one update, in the terminology
// the paper borrows from epidemiology (§0).
type State uint8

const (
	// Susceptible : the site has not yet received the update.
	Susceptible State = iota
	// Infective : the site knows the update and is actively sharing it.
	Infective
	// Removed : the site knows the update but no longer spreads it.
	Removed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Susceptible:
		return "susceptible"
	case Infective:
		return "infective"
	case Removed:
		return "removed"
	}
	return "invalid"
}

// Knows reports whether the site has the update.
func (s State) Knows() bool { return s != Susceptible }

// SpreadResult reports how one update propagated through the population.
// The fields correspond directly to the paper's evaluation criteria
// (§1.4: residue, traffic, delay).
type SpreadResult struct {
	// N is the population size.
	N int
	// Cycles is the number of cycles executed before quiescence (rumor) or
	// full coverage (anti-entropy).
	Cycles int
	// Residue is s, the fraction of sites still susceptible at the end.
	Residue float64
	// Traffic is m, total updates sent divided by n.
	Traffic float64
	// TAve is the mean delay, in cycles, from injection to arrival,
	// averaged over the sites that received the update (the origin counts
	// with delay 0).
	TAve float64
	// TLast is the delay until the last site that will ever receive the
	// update received it.
	TLast int
	// Converged reports whether every site received the update.
	Converged bool
	// UpdatesSent is the absolute count behind Traffic.
	UpdatesSent int
	// Conversations counts established connections (anti-entropy compare
	// traffic, before multiplying along link paths).
	Conversations int
	// CompareLoad and UpdateLoad carry per-link charges when the spread
	// was run with link accounting (Tables 4 and 5); nil otherwise.
	CompareLoad, UpdateLoad *topology.LinkLoad
}

// spreadEnv is the shared machinery of the rumor and anti-entropy spread
// engines: partner selection, connection limits with hunting, per-cycle
// bookkeeping, and link accounting.
type spreadEnv struct {
	n       int
	sel     spatial.Selector
	rng     *rand.Rand
	state   []State
	counter []int
	// infectedAt[i] is the cycle at which i received the update, -1 if
	// never; the origin is 0.
	infectedAt []int32
	// newlyInfected marks sites infected during the current cycle, so that
	// sequential processing within a synchronous cycle sees them as
	// knowing the update but they do not act until the next cycle.
	newlyInfected []bool
	incoming      []int
	order         []int
	// reqFrom is pull-cycle scratch: reqFrom[src] lists the sites whose
	// request src accepted this cycle.
	reqFrom [][]int32

	connLimit int
	huntLimit int

	updatesSent   int
	conversations int
	compare       *topology.LinkLoad
	update        *topology.LinkLoad
}

// envPool recycles spreadEnv scratch between trials. A Monte Carlo sweep
// runs tens of thousands of spreads, each needing ~7 population-sized
// slices; reusing them removes the dominant per-trial allocations. The
// pool is concurrency-safe, so parallel trial workers share it.
var envPool sync.Pool

func newSpreadEnv(sel spatial.Selector, rng *rand.Rand, connLimit, huntLimit int) *spreadEnv {
	n := sel.NumSites()
	env, _ := envPool.Get().(*spreadEnv)
	if env == nil || cap(env.order) < n {
		env = &spreadEnv{
			state:         make([]State, n),
			counter:       make([]int, n),
			infectedAt:    make([]int32, n),
			newlyInfected: make([]bool, n),
			incoming:      make([]int, n),
			order:         make([]int, n),
			reqFrom:       make([][]int32, n),
		}
	} else {
		env.state = env.state[:n]
		env.counter = env.counter[:n]
		env.infectedAt = env.infectedAt[:n]
		env.newlyInfected = env.newlyInfected[:n]
		env.incoming = env.incoming[:n]
		env.order = env.order[:n]
		env.reqFrom = env.reqFrom[:n]
		for i := range env.state {
			env.state[i] = Susceptible
			env.counter[i] = 0
			env.newlyInfected[i] = false
			env.incoming[i] = 0
		}
	}
	env.n = n
	env.sel = sel
	env.rng = rng
	env.connLimit = connLimit
	env.huntLimit = huntLimit
	env.updatesSent = 0
	env.conversations = 0
	env.compare = nil
	env.update = nil
	for i := range env.infectedAt {
		env.infectedAt[i] = -1
	}
	for i := range env.order {
		env.order[i] = i
	}
	return env
}

// release returns the env's scratch to the pool. The caller must not
// touch the env afterwards; link-load accumulators escape into the
// SpreadResult and are detached before pooling.
func (e *spreadEnv) release() {
	e.sel = nil
	e.rng = nil
	e.compare = nil
	e.update = nil
	envPool.Put(e)
}

// withLinkAccounting attaches per-link charge accumulators.
func (e *spreadEnv) withLinkAccounting(nw *topology.Network) {
	e.compare = topology.NewLinkLoad(nw)
	e.update = topology.NewLinkLoad(nw)
}

// inject seeds the update at site origin before cycle 1.
func (e *spreadEnv) inject(origin int) {
	e.state[origin] = Infective
	e.infectedAt[origin] = 0
}

// beginCycle resets per-cycle connection bookkeeping and shuffles the
// order in which sites act.
func (e *spreadEnv) beginCycle() {
	for i := range e.incoming {
		e.incoming[i] = 0
	}
	e.rng.Shuffle(e.n, func(i, j int) { e.order[i], e.order[j] = e.order[j], e.order[i] })
}

// endCycle promotes newly infected sites to Infective.
func (e *spreadEnv) endCycle() {
	for i, fresh := range e.newlyInfected {
		if fresh {
			e.state[i] = Infective
			e.newlyInfected[i] = false
		}
	}
}

// knows reports whether site i has the update, counting infections that
// happened earlier in the current cycle.
func (e *spreadEnv) knows(i int) bool {
	return e.state[i].Knows() || e.newlyInfected[i]
}

// markInfected records that site i learned the update in the given cycle.
func (e *spreadEnv) markInfected(i, cycle int) {
	if !e.newlyInfected[i] && !e.state[i].Knows() {
		e.newlyInfected[i] = true
		e.infectedAt[i] = int32(cycle)
	}
}

// connect picks a partner for site from, honouring the connection limit by
// hunting for alternates. It reserves capacity at the partner and returns
// (partner, true), or (0, false) if every attempt was rejected.
func (e *spreadEnv) connect(from int) (int, bool) {
	attempts := 1 + e.huntLimit
	if e.huntLimit == HuntUnlimited {
		// Exhaustive hunting: bounded retry keeps a spatial selector's
		// distribution intact while failing with negligible probability
		// when capacity exists.
		attempts = 64 * e.n
	}
	for a := 0; a < attempts; a++ {
		to := e.sel.Pick(e.rng, from)
		if e.connLimit > 0 && e.incoming[to] >= e.connLimit {
			continue // rejected; hunt
		}
		e.incoming[to]++
		return to, true
	}
	return 0, false
}

// sendUpdate accounts for one transmission of the update from a to b.
func (e *spreadEnv) sendUpdate(a, b int) {
	e.updatesSent++
	if e.update != nil {
		e.update.Charge(a, b)
	}
}

// converse accounts for one established conversation between a and b.
func (e *spreadEnv) converse(a, b int) {
	e.conversations++
	if e.compare != nil {
		e.compare.Charge(a, b)
	}
}

// anyInfective reports whether any site is still actively spreading.
func (e *spreadEnv) anyInfective() bool {
	for _, s := range e.state {
		if s == Infective {
			return true
		}
	}
	return false
}

// result assembles the SpreadResult after the run ended at the given cycle
// count.
func (e *spreadEnv) result(cycles int) SpreadResult {
	res := SpreadResult{
		N:             e.n,
		Cycles:        cycles,
		UpdatesSent:   e.updatesSent,
		Conversations: e.conversations,
		Traffic:       float64(e.updatesSent) / float64(e.n),
		CompareLoad:   e.compare,
		UpdateLoad:    e.update,
	}
	var knowers, susceptible int
	var sumDelay float64
	for i := range e.state {
		if e.infectedAt[i] >= 0 {
			knowers++
			sumDelay += float64(e.infectedAt[i])
			if int(e.infectedAt[i]) > res.TLast {
				res.TLast = int(e.infectedAt[i])
			}
		} else {
			susceptible++
		}
	}
	res.Residue = float64(susceptible) / float64(e.n)
	if knowers > 0 {
		res.TAve = sumDelay / float64(knowers)
	}
	res.Converged = susceptible == 0
	return res
}
