package core

import (
	"fmt"
	"testing"

	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

func shardedPair(t *testing.T, aShards, bShards int) (*store.Store, *store.Store, *timestamp.Simulated) {
	t.Helper()
	src := timestamp.NewSimulated(1 << 20)
	return store.NewSharded(1, src.ClockAt(1), aShards),
		store.NewSharded(2, src.ClockAt(2), bShards), src
}

func TestResolveShardVectorIdenticalStores(t *testing.T) {
	a, b, _ := shardedPair(t, 16, 16)
	e := a.Update("k", store.Value("v"))
	b.Apply(e)
	cfg := ResolveConfig{Mode: PushPull, Strategy: CompareShardVector}
	st, err := ResolveDifference(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Transferred() != 0 || st.ShardsRepaired != 0 {
		t.Errorf("identical stores moved %d entries, repaired %d shards", st.Transferred(), st.ShardsRepaired)
	}
}

// TestResolveShardVectorLocalizesDeepDivergence buries one private entry
// under hundreds of shared newer ones: the vector compare must confine the
// walk to the single diverged shard instead of peeling the whole store.
func TestResolveShardVectorLocalizesDeepDivergence(t *testing.T) {
	a, b, src := shardedPair(t, 16, 16)
	a.Update("buried", store.Value("deep"))
	src.Advance(1)
	for i := 0; i < 400; i++ {
		e := a.Update(fmt.Sprintf("hist%03d", i), store.Value("v"))
		b.Apply(e)
		src.Advance(1)
	}
	cfg := ResolveConfig{Mode: PushPull, Strategy: CompareShardVector, BatchSize: 16}
	st, err := ResolveDifference(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !store.ContentEqual(a, b) {
		t.Fatal("stores differ after shard-vector resolve")
	}
	if _, ok := b.Lookup("buried"); !ok {
		t.Fatal("buried entry not delivered")
	}
	if st.ShardsRepaired != 1 {
		t.Errorf("ShardsRepaired = %d, want 1", st.ShardsRepaired)
	}
	// One shard holds ~25 of the 400 shared entries; a global peel-back
	// of the same scenario walks everything (~800 transfers).
	if st.Transferred() > 120 {
		t.Errorf("shard-vector moved %d entries; divergence not localized", st.Transferred())
	}
	if st.FullCompare {
		t.Error("shard-vector fell back to a full compare")
	}
}

// TestResolveShardVectorMatchesPeelBack runs the same divergence through
// both strategies and checks they repair the identical entry set.
func TestResolveShardVectorMatchesPeelBack(t *testing.T) {
	build := func() (*store.Store, *store.Store) {
		a, b, src := shardedPair(t, 16, 16)
		for i := 0; i < 120; i++ {
			e := a.Update(fmt.Sprintf("hist%03d", i), store.Value("v"))
			if i%10 != 0 { // every 10th entry is missing at b
				b.Apply(e)
			}
			src.Advance(1)
		}
		b.Update("bonly", store.Value("late"))
		return a, b
	}

	applied := func(strategy CompareStrategy) (map[string]bool, *store.Store, *store.Store, ExchangeStats) {
		a, b := build()
		cfg := ResolveConfig{Mode: PushPull, Strategy: strategy, BatchSize: 8}
		st, err := ResolveDifference(cfg, a, b)
		if err != nil {
			t.Fatal(err)
		}
		keys := map[string]bool{}
		for _, k := range st.AppliedKeys {
			keys[k] = true
		}
		return keys, a, b, st
	}

	sv, sa, sb, svStats := applied(CompareShardVector)
	pb, pa, pbStore, _ := applied(ComparePeelBack)

	if !store.ContentEqual(sa, sb) || !store.ContentEqual(pa, pbStore) {
		t.Fatal("a strategy failed to converge")
	}
	if !store.ContentEqual(sa, pa) {
		t.Fatal("strategies converged to different content")
	}
	if len(sv) != len(pb) {
		t.Fatalf("shard-vector repaired %d keys, peel-back %d", len(sv), len(pb))
	}
	for k := range pb {
		if !sv[k] {
			t.Errorf("key %q repaired by peel-back but not shard-vector", k)
		}
	}
	if svStats.ShardsRepaired == 0 {
		t.Error("shard-vector path not exercised")
	}
}

// TestResolveShardVectorMismatchedCountsDowngrades pairs stores whose
// key→shard maps are incomparable: the resolver must fall back to the
// global walk and still converge.
func TestResolveShardVectorMismatchedCountsDowngrades(t *testing.T) {
	a, b, src := shardedPair(t, 8, 32)
	a.Update("buried", store.Value("deep"))
	src.Advance(1)
	for i := 0; i < 100; i++ {
		e := a.Update(fmt.Sprintf("hist%03d", i), store.Value("v"))
		b.Apply(e)
		src.Advance(1)
	}
	cfg := ResolveConfig{Mode: PushPull, Strategy: CompareShardVector, BatchSize: 16}
	st, err := ResolveDifference(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !store.ContentEqual(a, b) {
		t.Fatal("mismatched shard counts did not converge")
	}
	if st.ShardsRepaired != 0 {
		t.Errorf("ShardsRepaired = %d on incomparable shard maps, want 0", st.ShardsRepaired)
	}
}

// TestResolveShardVectorDormantSkew: divergence consisting only of a
// dormancy-skewed death certificate must still terminate (the global
// recompare and peel-back fallback own that case).
func TestResolveShardVectorDormantSkew(t *testing.T) {
	const tau1 = 100
	a, b, src := shardedPair(t, 16, 16)
	for i := 0; i < 40; i++ {
		e := a.Update(fmt.Sprintf("hist%03d", i), store.Value("v"))
		b.Apply(e)
		src.Advance(1)
	}
	a.Delete("hist000", []timestamp.SiteID{1})
	src.Advance(tau1 + 10) // dormant at a, absent divergence is invisible live

	cfg := ResolveConfig{Mode: PushPull, Strategy: CompareShardVector, Tau1: tau1, BatchSize: 8}
	st, err := ResolveDifference(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// The dormant certificate must not propagate (§2.2); the exchange just
	// has to terminate, shipping at most the shared history once.
	if e, ok := b.Get("hist000"); !ok || e.IsDeath() {
		t.Error("dormant certificate propagated to b")
	}
	if st.FullCompare {
		t.Error("dormant-only divergence triggered a full compare")
	}
}
