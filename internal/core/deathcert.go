package core

import (
	"math/rand"

	"epidemic/internal/timestamp"
)

// ChooseRetention picks r distinct retention sites uniformly at random
// from sites — the sites that will hold a dormant copy of a death
// certificate after τ1 (§2.1). If r >= len(sites), all sites are returned.
func ChooseRetention(rng *rand.Rand, sites []timestamp.SiteID, r int) []timestamp.SiteID {
	if r <= 0 {
		return nil
	}
	if r >= len(sites) {
		out := make([]timestamp.SiteID, len(sites))
		copy(out, sites)
		return out
	}
	// Partial Fisher-Yates over a copy.
	pool := make([]timestamp.SiteID, len(sites))
	copy(pool, sites)
	out := make([]timestamp.SiteID, 0, r)
	for i := 0; i < r; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		out = append(out, pool[i])
	}
	return out
}

// Tau2ForEqualSpace returns the dormant threshold τ2 that gives the same
// expected death-certificate space usage as a single fixed threshold τ,
// assuming a steady deletion rate: τ2 = (τ − τ1)·n/r (§2.1). This is the
// O(n) history improvement of dormant certificates: with n sites and r
// retention copies, history extends from 30 days to years at equal cost.
func Tau2ForEqualSpace(tau, tau1 int64, n, r int) int64 {
	if r <= 0 || n <= 0 || tau <= tau1 {
		return 0
	}
	return (tau - tau1) * int64(n) / int64(r)
}

// RetentionLossProbability returns the probability that all r retention
// sites holding a dormant certificate have failed permanently after one
// server half-life: 2^-r (§2.1).
func RetentionLossProbability(r int) float64 {
	if r <= 0 {
		return 1
	}
	p := 1.0
	for i := 0; i < r; i++ {
		p /= 2
	}
	return p
}
