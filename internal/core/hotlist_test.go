package core

import (
	"math/rand"
	"testing"

	"epidemic/internal/timestamp"
)

func newTestHotList(cfg RumorConfig) *HotList {
	return NewHotList(cfg, rand.New(rand.NewSource(1)))
}

func TestHotListAddRemove(t *testing.T) {
	h := newTestHotList(RumorConfig{K: 2, Counter: true, Feedback: true, Mode: Push})
	ts := timestamp.T{Time: 1, Site: 1}
	h.Add("k", ts)
	if !h.IsHot("k", ts) || h.Len() != 1 {
		t.Fatal("Add failed")
	}
	if got, ok := h.Stamp("k"); !ok || got != ts {
		t.Fatalf("Stamp = %v, %v", got, ok)
	}
	h.Remove("k")
	if h.IsHot("k", ts) || h.Len() != 0 {
		t.Fatal("Remove failed")
	}
	if _, ok := h.Stamp("k"); ok {
		t.Fatal("Stamp after remove")
	}
}

func TestHotListAddNewerStampResets(t *testing.T) {
	h := newTestHotList(RumorConfig{K: 2, Counter: true, Feedback: true, Mode: Push})
	h.Add("k", timestamp.T{Time: 1})
	h.Feedback("k", false) // counter 1 of 2
	h.Add("k", timestamp.T{Time: 5})
	// Fresh stamp resets the counter: two more unnecessary shares needed.
	h.Feedback("k", false)
	if !h.IsHot("k", timestamp.T{Time: 5}) {
		t.Fatal("rumor removed after one unnecessary share post-refresh")
	}
	h.Feedback("k", false)
	if h.IsHot("k", timestamp.T{Time: 5}) {
		t.Fatal("counter exhaustion did not remove rumor")
	}
}

func TestHotListAddOlderStampKeepsState(t *testing.T) {
	h := newTestHotList(RumorConfig{K: 2, Counter: true, Feedback: true, Mode: Push})
	h.Add("k", timestamp.T{Time: 5})
	h.Feedback("k", false)
	h.Add("k", timestamp.T{Time: 1}) // older: ignored
	if got, _ := h.Stamp("k"); got != (timestamp.T{Time: 5}) {
		t.Fatalf("stamp regressed: %v", got)
	}
	h.Feedback("k", false)
	if h.IsHot("k", timestamp.T{Time: 5}) {
		t.Fatal("counter should have carried over")
	}
}

func TestHotListCounterFeedbackResets(t *testing.T) {
	h := newTestHotList(RumorConfig{K: 2, Counter: true, Feedback: true, Mode: Push})
	h.Add("k", timestamp.T{Time: 1})
	h.Feedback("k", false) // unnecessary: 1
	h.Feedback("k", true)  // useful: reset
	h.Feedback("k", false) // unnecessary: 1
	if !h.IsHot("k", timestamp.T{Time: 1}) {
		t.Fatal("reset did not happen")
	}
	h.Feedback("k", false) // unnecessary: 2 => removed
	if h.IsHot("k", timestamp.T{Time: 1}) {
		t.Fatal("not removed at k")
	}
}

func TestHotListNoCounterReset(t *testing.T) {
	h := newTestHotList(RumorConfig{K: 2, Counter: true, Feedback: true, Mode: Push, NoCounterReset: true})
	h.Add("k", timestamp.T{Time: 1})
	h.Feedback("k", false)
	h.Feedback("k", true) // useful, but cumulative counter keeps its value
	h.Feedback("k", false)
	if h.IsHot("k", timestamp.T{Time: 1}) {
		t.Fatal("cumulative counter should have removed rumor")
	}
}

func TestHotListBlindIgnoresNeeded(t *testing.T) {
	h := newTestHotList(RumorConfig{K: 2, Counter: true, Feedback: false, Mode: Push})
	h.Add("k", timestamp.T{Time: 1})
	h.Feedback("k", true) // blind: counts regardless
	h.Feedback("k", true)
	if h.IsHot("k", timestamp.T{Time: 1}) {
		t.Fatal("blind counter did not remove after k shares")
	}
}

func TestHotListCoin(t *testing.T) {
	// Coin with K=1 removes on first unnecessary share.
	h := newTestHotList(RumorConfig{K: 1, Feedback: true, Mode: Push})
	h.Add("k", timestamp.T{Time: 1})
	h.Feedback("k", true) // useful: never removes with feedback
	if !h.IsHot("k", timestamp.T{Time: 1}) {
		t.Fatal("useful share removed coin rumor")
	}
	h.Feedback("k", false)
	if h.IsHot("k", timestamp.T{Time: 1}) {
		t.Fatal("coin k=1 must remove on unnecessary share")
	}
}

// TestHotListIsHotHonorsStamp is the regression test for the documented
// contract: IsHot(key, stamp) is true only when the rumor is hot with that
// stamp or a newer one.
func TestHotListIsHotHonorsStamp(t *testing.T) {
	h := newTestHotList(DefaultRumorConfig())
	h.Add("k", timestamp.T{Time: 5, Site: 1})
	if !h.IsHot("k", timestamp.T{Time: 5, Site: 1}) {
		t.Fatal("exact stamp must count as hot")
	}
	if !h.IsHot("k", timestamp.T{Time: 3}) {
		t.Fatal("a rumor hot with a newer stamp satisfies an older query")
	}
	if h.IsHot("k", timestamp.T{Time: 7}) {
		t.Fatal("a rumor hot with an older stamp must not satisfy a newer query")
	}
	if !h.IsHot("k", timestamp.Zero) {
		t.Fatal("the zero stamp asks for any-stamp hotness")
	}
	if h.IsHot("missing", timestamp.Zero) {
		t.Fatal("unknown key reported hot")
	}
}

func TestHotListKeysSorted(t *testing.T) {
	h := newTestHotList(DefaultRumorConfig())
	h.Add("b", timestamp.T{Time: 1})
	h.Add("a", timestamp.T{Time: 2})
	keys := h.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestHotListFeedbackUnknownKey(t *testing.T) {
	h := newTestHotList(DefaultRumorConfig())
	h.Feedback("missing", false) // must not panic
	h.CycleFeedback("missing", 3, false)
}

func TestHotListCycleFeedback(t *testing.T) {
	h := newTestHotList(RumorConfig{K: 1, Counter: true, Feedback: true, Mode: Pull})
	h.Add("k", timestamp.T{Time: 1})
	h.CycleFeedback("k", 0, false) // served nobody: unchanged
	if !h.IsHot("k", timestamp.T{Time: 1}) {
		t.Fatal("no-op cycle removed rumor")
	}
	h.CycleFeedback("k", 2, true) // someone needed it: reset
	if !h.IsHot("k", timestamp.T{Time: 1}) {
		t.Fatal("useful cycle removed rumor")
	}
	h.CycleFeedback("k", 2, false) // all unnecessary: +1 => removed at k=1
	if h.IsHot("k", timestamp.T{Time: 1}) {
		t.Fatal("unnecessary cycle did not remove rumor")
	}
}
