package core

import (
	"math/rand"
	"sort"

	"epidemic/internal/timestamp"
)

// HotList tracks the hot rumors at one site for database-level rumor
// mongering: the set of updates the site is still actively sharing,
// together with the per-rumor loss state (counter or coin). "The sender
// keeps a list of infective updates, and the recipient tries to insert
// each update into its own database and adds all new updates to its
// infective list" (§1.4).
//
// HotList is not safe for concurrent use; the owning node synchronises.
type HotList struct {
	cfg   RumorConfig
	rng   *rand.Rand
	items map[string]*hotItem
}

type hotItem struct {
	stamp   timestamp.T
	counter int
}

// NewHotList returns an empty hot-rumor list using cfg's K /
// counter-vs-coin / feedback semantics.
func NewHotList(cfg RumorConfig, rng *rand.Rand) *HotList {
	return &HotList{cfg: cfg, rng: rng, items: make(map[string]*hotItem)}
}

// Add makes the update for key (with the given timestamp) a hot rumor,
// resetting its loss state. Adding a key that is already hot with an older
// stamp refreshes it.
func (h *HotList) Add(key string, stamp timestamp.T) {
	if it, ok := h.items[key]; ok {
		if it.stamp.Less(stamp) {
			it.stamp = stamp
			it.counter = 0
		}
		return
	}
	h.items[key] = &hotItem{stamp: stamp}
}

// Remove deactivates the rumor for key.
func (h *HotList) Remove(key string) { delete(h.items, key) }

// Len returns the number of hot rumors.
func (h *HotList) Len() int { return len(h.items) }

// IsHot reports whether key is currently a hot rumor with the given stamp
// or newer. A rumor hot for an older stamp does not count — the list would
// be spreading a version the caller already knows to be superseded. Pass
// timestamp.Zero to ask whether key is hot for any stamp.
func (h *HotList) IsHot(key string, stamp timestamp.T) bool {
	it, ok := h.items[key]
	return ok && !it.stamp.Less(stamp)
}

// Keys returns the hot keys, sorted for determinism.
func (h *HotList) Keys() []string {
	out := make([]string, 0, len(h.items))
	for k := range h.items {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stamp returns the timestamp the rumor was hot for, if hot.
func (h *HotList) Stamp(key string) (timestamp.T, bool) {
	it, ok := h.items[key]
	if !ok {
		return timestamp.T{}, false
	}
	return it.stamp, true
}

// Feedback applies the outcome of sharing the rumor for key with one
// partner: needed reports whether the partner lacked the update. Blind
// variants ignore needed and treat every share as unnecessary. The rumor
// may cease to be hot as a result (counter exhaustion or coin flip).
func (h *HotList) Feedback(key string, needed bool) {
	it, ok := h.items[key]
	if !ok {
		return
	}
	unnecessary := !needed || !h.cfg.Feedback
	if !unnecessary {
		if h.cfg.Counter && !h.cfg.NoCounterReset {
			it.counter = 0
		}
		return
	}
	if h.cfg.Counter {
		it.counter++
		if it.counter >= h.cfg.K {
			delete(h.items, key)
		}
		return
	}
	if h.rng.Float64() < 1/float64(h.cfg.K) {
		delete(h.items, key)
	}
}

// CycleFeedback applies the pull footnote semantics for one cycle in which
// the rumor was shared with several partners at once: the counter is reset
// if any partner needed it, and incremented once if none did.
func (h *HotList) CycleFeedback(key string, served int, anyNeeded bool) {
	if served <= 0 {
		return
	}
	h.Feedback(key, anyNeeded)
}
