// Package core implements the paper's epidemic update-distribution
// protocols: direct mail (§1.2), anti-entropy as a simple epidemic (§1.3),
// rumor mongering with all of §1.4's design variations, anti-entropy backup
// and the combined peel-back/rumor scheme (§1.5), and the death-certificate
// lifecycle (§2).
//
// Two levels are provided. The *spread engines* (SpreadRumor,
// SpreadAntiEntropy) simulate the propagation of a single update through n
// sites in synchronous cycles, exactly the model behind every table and
// figure in the paper's evaluation. The *database operations*
// (ResolveDifference, DirectMail, the compare strategies) operate on real
// store.Store replicas and back the runtime in package node.
package core

import "fmt"

// Mode selects the direction of an exchange: who sends database state to
// whom (§1.3's three ResolveDifference variants, reused by rumor
// mongering's push/pull distinction in §1.4).
type Mode int

const (
	// Push : the initiating site sends its newer state to its partner.
	Push Mode = iota + 1
	// Pull : the initiating site asks its partner for newer state.
	Pull
	// PushPull : both directions in one conversation.
	PushPull
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case PushPull:
		return "push-pull"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Valid reports whether m is one of the defined modes.
func (m Mode) Valid() bool { return m == Push || m == Pull || m == PushPull }

// RumorConfig selects a complex-epidemic variant along the axes of §1.4.
// The zero value is invalid; use the fields explicitly or start from
// DefaultRumorConfig.
type RumorConfig struct {
	// K is the loss parameter: with Counter, an infective site becomes
	// removed after K unnecessary contacts; with coin, each unnecessary
	// contact removes it with probability 1/K.
	K int
	// Counter selects the counter variant; false selects coin.
	Counter bool
	// Feedback selects recipient feedback (a sender counts only contacts
	// whose recipient already knew the rumor); false selects blind (every
	// contact counts regardless of the recipient).
	Feedback bool
	// Mode is the exchange direction.
	Mode Mode
	// ConnLimit caps how many incoming conversations a site accepts per
	// cycle; 0 means unlimited. The paper's "most pessimistic assumption"
	// is ConnLimit 1, HuntLimit 0.
	ConnLimit int
	// HuntLimit is how many alternate partners a site tries after a
	// rejected connection. HuntUnlimited hunts until an open partner is
	// found.
	HuntLimit int
	// Minimization applies §1.4's counter-minimization rule in push-pull
	// exchanges where both parties already know the update: only the site
	// with the smaller counter is incremented (both on a tie).
	Minimization bool
	// NoCounterReset disables resetting a feedback counter to zero when a
	// contact turns out useful. By default counters count *consecutive*
	// unnecessary contacts: Table 3's footnote specifies the reset for
	// pull, and calibration against Table 1 shows the paper's push
	// simulations used the same semantics (without the reset, measured
	// traffic falls ~0.4/site short of every Table 1 row; with it, all
	// rows match). Setting NoCounterReset gives the plain cumulative
	// counter as an ablation.
	NoCounterReset bool
	// MaxCycles bounds the simulation; 0 uses a generous default. The
	// rumor process is self-terminating, so the bound only guards against
	// misconfiguration.
	MaxCycles int
	// MaxBatch caps how many hot rumors one push round ships; 0 means all.
	// Beyond limiting work per contact, a small cap keeps rumor pushes
	// inside the transport's single-datagram budget so they ride the UDP
	// fast path instead of falling back to TCP. Entries over the cap stay
	// hot and go out on later rounds.
	MaxBatch int
}

// HuntUnlimited as HuntLimit makes a sender hunt until it finds a partner
// with connection capacity (§1.4: "a connection limit of 1 with infinite
// hunt limit results in a complete permutation").
const HuntUnlimited = -1

// DefaultRumorConfig is the paper's baseline: push, feedback, counter k=2.
func DefaultRumorConfig() RumorConfig {
	return RumorConfig{K: 2, Counter: true, Feedback: true, Mode: Push}
}

// Validate reports configuration errors.
func (c RumorConfig) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("core: rumor K must be >= 1, got %d", c.K)
	}
	if !c.Mode.Valid() {
		return fmt.Errorf("core: invalid mode %v", c.Mode)
	}
	if c.ConnLimit < 0 {
		return fmt.Errorf("core: ConnLimit must be >= 0, got %d", c.ConnLimit)
	}
	if c.HuntLimit < HuntUnlimited {
		return fmt.Errorf("core: HuntLimit must be >= -1, got %d", c.HuntLimit)
	}
	if c.Minimization && c.Mode != PushPull {
		return fmt.Errorf("core: Minimization requires PushPull mode")
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("core: MaxBatch must be >= 0, got %d", c.MaxBatch)
	}
	return nil
}

// String renders the variant the way the paper names them, e.g.
// "(Feedback, Counter, push, Connection Limit 1)".
func (c RumorConfig) String() string {
	fb := "Blind"
	if c.Feedback {
		fb = "Feedback"
	}
	cc := "Coin"
	if c.Counter {
		cc = "Counter"
	}
	lim := "No Connection Limit"
	if c.ConnLimit > 0 {
		lim = fmt.Sprintf("Connection Limit %d", c.ConnLimit)
	}
	return fmt.Sprintf("(%s, %s k=%d, %s, %s)", fb, cc, c.K, c.Mode, lim)
}

// AntiEntropyConfig selects an anti-entropy variant for the spread
// simulation behind Tables 4 and 5.
type AntiEntropyConfig struct {
	// Mode is the ResolveDifference direction; the paper's CIN experiments
	// use PushPull.
	Mode Mode
	// ConnLimit caps incoming conversations per site per cycle; 0 means
	// unlimited.
	ConnLimit int
	// HuntLimit is the number of alternate partners tried after rejection
	// (HuntUnlimited for exhaustive hunting).
	HuntLimit int
	// MaxCycles bounds the simulation; 0 uses a generous default.
	MaxCycles int
}

// Validate reports configuration errors.
func (c AntiEntropyConfig) Validate() error {
	if !c.Mode.Valid() {
		return fmt.Errorf("core: invalid mode %v", c.Mode)
	}
	if c.ConnLimit < 0 {
		return fmt.Errorf("core: ConnLimit must be >= 0, got %d", c.ConnLimit)
	}
	if c.HuntLimit < HuntUnlimited {
		return fmt.Errorf("core: HuntLimit must be >= -1, got %d", c.HuntLimit)
	}
	return nil
}
