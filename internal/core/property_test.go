package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"epidemic/internal/spatial"
)

// randomRumorConfig derives a valid RumorConfig from fuzz inputs.
func randomRumorConfig(k uint8, counter, feedback bool, mode uint8, connLimit, hunt uint8) RumorConfig {
	cfg := RumorConfig{
		K:        int(k%5) + 1,
		Counter:  counter,
		Feedback: feedback,
		Mode:     Mode(int(mode%3) + 1),
	}
	if connLimit%3 == 0 {
		cfg.ConnLimit = int(connLimit%2) + 1
		cfg.HuntLimit = int(hunt % 4)
	}
	return cfg
}

// Property: every rumor spread satisfies the structural invariants of the
// metric definitions, for arbitrary variants.
func TestSpreadRumorInvariantsProperty(t *testing.T) {
	f := func(seed int64, k uint8, counter, feedback bool, mode uint8, connLimit, hunt uint8) bool {
		cfg := randomRumorConfig(k, counter, feedback, mode, connLimit, hunt)
		n := 50 + int(uint16(seed)%200)
		sel := spatial.Uniform(n)
		rng := rand.New(rand.NewSource(seed))
		r, err := SpreadRumor(cfg, sel, int(uint(seed)%uint(n)), rng)
		if err != nil {
			return false
		}
		infected := int(float64(r.N)*(1-r.Residue) + 0.5)
		switch {
		case r.Residue < 0 || r.Residue > 1:
			return false
		case r.Converged != (r.Residue == 0):
			return false
		case infected < 1: // the origin always has it
			return false
		case r.UpdatesSent < infected-1: // every infection costs >= 1 send
			return false
		case r.TLast > r.Cycles:
			return false
		case r.TAve > float64(r.TLast):
			return false
		case r.Traffic != float64(r.UpdatesSent)/float64(r.N):
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: anti-entropy always converges and its metrics are consistent,
// for arbitrary modes and connection limits.
func TestSpreadAntiEntropyInvariantsProperty(t *testing.T) {
	f := func(seed int64, mode uint8, limited bool) bool {
		cfg := AntiEntropyConfig{Mode: Mode(int(mode%3) + 1)}
		if limited {
			cfg.ConnLimit = 1
		}
		n := 30 + int(uint16(seed)%100)
		sel := spatial.Uniform(n)
		rng := rand.New(rand.NewSource(seed))
		r, err := SpreadAntiEntropy(cfg, sel, int(uint(seed)%uint(n)), rng)
		if err != nil {
			return false
		}
		return r.Converged && r.Residue == 0 &&
			r.UpdatesSent == n-1 && // exactly one transfer per site infected
			r.TLast <= r.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with link accounting, total conversations equal the sum of
// nothing less than the per-cycle participation bound, and update charges
// never exceed compare charges per conversation counts.
func TestSpreadAccountingConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 16
		sel := spatial.Uniform(n)
		rng := rand.New(rand.NewSource(seed))
		r, err := SpreadAntiEntropy(AntiEntropyConfig{Mode: PushPull}, sel, 0, rng)
		if err != nil {
			return false
		}
		// Every cycle, every site initiates exactly one conversation (no
		// connection limit => all succeed).
		return r.Conversations == r.Cycles*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
