package core

import (
	"math"
	"math/rand"
	"testing"

	"epidemic/internal/spatial"
	"epidemic/internal/topology"
)

func runAE(t *testing.T, cfg AntiEntropyConfig, n, trials int, seed int64) (tlast, tave, traffic float64) {
	t.Helper()
	sel := spatial.Uniform(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		r, err := SpreadAntiEntropy(cfg, sel, rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Converged {
			t.Fatalf("anti-entropy failed to converge: %+v", r)
		}
		tlast += float64(r.TLast)
		tave += r.TAve
		traffic += r.Traffic
	}
	f := float64(trials)
	return tlast / f, tave / f, traffic / f
}

// Anti-entropy is a simple epidemic: it always infects the entire
// population, in O(log n) expected cycles (§1.3).
func TestAntiEntropyAlwaysConverges(t *testing.T) {
	for _, mode := range []Mode{Push, Pull, PushPull} {
		cfg := AntiEntropyConfig{Mode: mode}
		tlast, _, _ := runAE(t, cfg, 256, 5, int64(mode))
		// log2(256)=8; allow generous slack, but catch pathologies.
		if tlast > 40 {
			t.Errorf("%v: tlast %.1f too slow for n=256", mode, tlast)
		}
	}
}

// Push convergence time is log2(n) + ln(n) + O(1) (§1.3, citing Pittel).
func TestPushConvergenceMatchesTheory(t *testing.T) {
	const n = 1024
	cfg := AntiEntropyConfig{Mode: Push}
	tlast, _, _ := runAE(t, cfg, n, 10, 7)
	want := math.Log2(n) + math.Log(n) // ≈ 16.9
	if math.Abs(tlast-want) > 4 {
		t.Errorf("push tlast %.1f, theory %.1f ± O(1)", tlast, want)
	}
}

// Push-pull converges faster than push (pull's p² recurrence dominates the
// endgame, §1.3).
func TestPushPullFasterThanPush(t *testing.T) {
	const n = 1024
	push, _, _ := runAE(t, AntiEntropyConfig{Mode: Push}, n, 10, 9)
	pp, _, _ := runAE(t, AntiEntropyConfig{Mode: PushPull}, n, 10, 10)
	if pp >= push {
		t.Errorf("push-pull tlast %.1f should beat push %.1f", pp, push)
	}
}

func TestAntiEntropyValidation(t *testing.T) {
	sel := spatial.Uniform(8)
	rng := rand.New(rand.NewSource(1))
	if _, err := SpreadAntiEntropy(AntiEntropyConfig{}, sel, 0, rng); err == nil {
		t.Error("invalid mode accepted")
	}
	if _, err := SpreadAntiEntropy(AntiEntropyConfig{Mode: Push}, sel, 8, rng); err == nil {
		t.Error("bad origin accepted")
	}
}

// Connection limit 1 slows distribution but does not change total compare
// traffic much (§3.1 note 4: the per-cycle traffic drops while the number
// of cycles rises).
func TestConnectionLimitSlowsButSameTotalTraffic(t *testing.T) {
	nw, err := topology.Mesh(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := spatial.New(nw, spatial.FormPaper, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg AntiEntropyConfig, seed int64) (tlast float64, totalCompare float64) {
		rng := rand.New(rand.NewSource(seed))
		const trials = 10
		for i := 0; i < trials; i++ {
			r, err := SpreadAntiEntropy(cfg, sel, rng.Intn(64), rng, WithLinkAccounting(nw))
			if err != nil {
				t.Fatal(err)
			}
			tlast += float64(r.TLast)
			totalCompare += r.CompareLoad.Total()
		}
		return tlast / trials, totalCompare / trials
	}
	tFree, cFree := run(AntiEntropyConfig{Mode: PushPull}, 3)
	tLim, cLim := run(AntiEntropyConfig{Mode: PushPull, ConnLimit: 1}, 4)
	if tLim <= tFree {
		t.Errorf("connection limit should slow convergence: free %.1f, limited %.1f", tFree, tLim)
	}
	// Total compare traffic (per-cycle × cycles) should be within ~2.5x.
	// The limited runs execute fewer conversations per cycle.
	ratio := (cLim / tLim) / (cFree / tFree)
	if ratio > 1.0 {
		t.Errorf("per-cycle compare traffic should drop under connection limit, ratio %.2f", ratio)
	}
}

func TestAntiEntropyLinkAccountingOnCIN(t *testing.T) {
	cin, err := topology.NewCINFromConfig(topology.CINConfig{
		GridW: 3, GridH: 3, NASitesPerCluster: 4,
		Chains: 1, ChainLen: 1,
		EUClusters: 2, EUSitesPerCluster: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	uniform := spatial.Uniform(cin.NumSites())
	spatialSel, err := spatial.New(cin.Network, spatial.FormPaper, 2)
	if err != nil {
		t.Fatal(err)
	}
	busheyLoad := func(sel spatial.Selector, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var total float64
		const trials = 20
		for i := 0; i < trials; i++ {
			r, err := SpreadAntiEntropy(AntiEntropyConfig{Mode: PushPull}, sel, rng.Intn(cin.NumSites()), rng, WithLinkAccounting(cin.Network))
			if err != nil {
				t.Fatal(err)
			}
			total += r.CompareLoad.Get(cin.BusheyLink) / float64(r.Cycles)
		}
		return total / trials
	}
	u := busheyLoad(uniform, 1)
	s := busheyLoad(spatialSel, 2)
	if s >= u {
		t.Errorf("spatial distribution should unload the transatlantic link: uniform %.2f, spatial %.2f", u, s)
	}
}

func TestAntiEntropyDeterministic(t *testing.T) {
	sel := spatial.Uniform(128)
	cfg := AntiEntropyConfig{Mode: PushPull, ConnLimit: 1}
	r1, err := SpreadAntiEntropy(cfg, sel, 3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SpreadAntiEntropy(cfg, sel, 3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("same seed, different results")
	}
}

// §1.3's residual-susceptible model: pull clears a small susceptible
// population far faster than push. We start anti-entropy with 90% already
// infected by injecting and running push-pull first, then measure modes on
// the residual directly via the recurrences — here we simply verify the
// full-run ordering tlast(pull) <= tlast(push) for large n.
func TestPullBeatsPushOnResiduals(t *testing.T) {
	const n = 2048
	push, _, _ := runAE(t, AntiEntropyConfig{Mode: Push}, n, 6, 13)
	pull, _, _ := runAE(t, AntiEntropyConfig{Mode: Pull}, n, 6, 14)
	if pull > push+1 {
		t.Errorf("pull tlast %.1f should not exceed push %.1f", pull, push)
	}
}

func TestSpreadRumorWithBackup(t *testing.T) {
	sel := spatial.Uniform(500)
	rng := rand.New(rand.NewSource(7))
	rumorCfg := RumorConfig{K: 1, Counter: true, Feedback: true, Mode: Push} // leaves residue
	aeCfg := AntiEntropyConfig{Mode: PushPull}
	sawBackup := false
	for i := 0; i < 10; i++ {
		res, err := SpreadRumorWithBackup(rumorCfg, aeCfg, sel, rng.Intn(500), rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rumor.Converged && res.BackupCycles != 0 {
			t.Error("no backup needed but cycles recorded")
		}
		if !res.Rumor.Converged {
			sawBackup = true
			if res.BackupCycles < 1 {
				t.Error("residue left but no backup ran")
			}
			if res.BackupUpdates < 1 {
				t.Error("backup transferred nothing")
			}
			if res.TotalTLast < res.Rumor.TLast {
				t.Error("total delay shrank")
			}
		}
	}
	if !sawBackup {
		t.Error("k=1 rumor never left residue in 10 trials; test ineffective")
	}
}

func TestSpreadRumorWithBackupValidation(t *testing.T) {
	sel := spatial.Uniform(10)
	rng := rand.New(rand.NewSource(1))
	if _, err := SpreadRumorWithBackup(DefaultRumorConfig(), AntiEntropyConfig{}, sel, 0, rng); err == nil {
		t.Error("invalid backup config accepted")
	}
	if _, err := SpreadRumorWithBackup(RumorConfig{}, AntiEntropyConfig{Mode: Push}, sel, 0, rng); err == nil {
		t.Error("invalid rumor config accepted")
	}
}
