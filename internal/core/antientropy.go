package core

import (
	"fmt"
	"math/rand"

	"epidemic/internal/spatial"
)

// SpreadAntiEntropy simulates anti-entropy (§1.3) distributing a single
// update injected at origin. Anti-entropy is a simple epidemic: sites are
// only ever susceptible or infective, every site starts a conversation
// every cycle regardless of state, and the process runs until every site
// has the update (or MaxCycles elapses, which indicates a pathological
// configuration).
//
// Every established conversation counts as compare traffic; conversations
// in which the update actually moves additionally count as update traffic.
// These are exactly the two quantities of Tables 4 and 5.
func SpreadAntiEntropy(cfg AntiEntropyConfig, sel spatial.Selector, origin int, rng *rand.Rand, opts ...SpreadOption) (SpreadResult, error) {
	if err := cfg.Validate(); err != nil {
		return SpreadResult{}, err
	}
	n := sel.NumSites()
	if origin < 0 || origin >= n {
		return SpreadResult{}, fmt.Errorf("core: origin %d out of range [0,%d)", origin, n)
	}
	env := newSpreadEnv(sel, rng, cfg.ConnLimit, cfg.HuntLimit)
	for _, opt := range opts {
		opt(env)
	}
	env.inject(origin)

	maxCycles := cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = defaultMaxCycles
	}

	infected := 1
	cycle := 0
	for infected < n && cycle < maxCycles {
		cycle++
		env.beginCycle()
		for _, j := range env.order {
			i, ok := env.connect(j)
			if !ok {
				continue
			}
			env.converse(j, i)
			// ResolveDifference on a single update degenerates to moving
			// it toward whichever party lacks it, in the direction(s) the
			// mode allows. Cycles are strictly synchronous, matching the
			// paper's "once per period" model: a site only hands on state
			// it held at the start of the cycle (state[x]), while the
			// recipient check (env.knows) also sees infections from
			// earlier in this cycle so no site is infected twice.
			jHad, iHad := env.state[j].Knows(), env.state[i].Knows()
			switch cfg.Mode {
			case Push: // initiator pushes its state to the partner
				if jHad && !env.knows(i) {
					env.sendUpdate(j, i)
					env.markInfected(i, cycle)
					infected++
				}
			case Pull: // initiator pulls the partner's state
				if iHad && !env.knows(j) {
					env.sendUpdate(i, j)
					env.markInfected(j, cycle)
					infected++
				}
			case PushPull:
				switch {
				case jHad && !env.knows(i):
					env.sendUpdate(j, i)
					env.markInfected(i, cycle)
					infected++
				case iHad && !env.knows(j):
					env.sendUpdate(i, j)
					env.markInfected(j, cycle)
					infected++
				}
			}
		}
		env.endCycle()
	}
	res := env.result(cycle)
	env.release()
	return res, nil
}
