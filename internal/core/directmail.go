package core

import (
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// Mailer abstracts the PostMail operation of §1.2: queued, nearly — but
// not completely — reliable delivery of an update to one site. PostMail
// returns an error when the message was discarded immediately (queue
// overflow); silent later loss is also permitted by the model.
type Mailer interface {
	PostMail(to timestamp.SiteID, e store.Entry) error
}

// MailReport summarises a direct-mail distribution.
type MailReport struct {
	// Posted counts messages accepted by the mail system.
	Posted int
	// Failed lists destinations whose PostMail failed outright.
	Failed []timestamp.SiteID
}

// DirectMail implements §1.2: the site where an update was accepted mails
// it to every other site it knows of. It is timely and reasonably
// efficient — O(n) messages per update — but unreliable: messages can be
// lost and the sender's view of S can be incomplete, which is why
// anti-entropy exists.
func DirectMail(m Mailer, self timestamp.SiteID, sites []timestamp.SiteID, e store.Entry) MailReport {
	var rep MailReport
	for _, to := range sites {
		if to == self {
			continue
		}
		if err := m.PostMail(to, e); err != nil {
			rep.Failed = append(rep.Failed, to)
			continue
		}
		rep.Posted++
	}
	return rep
}

// Redistribution is the policy applied when anti-entropy discovers an
// update missing at a partner (§1.5): do nothing beyond the repair, remail
// it to everyone, or make it a hot rumor again.
type Redistribution int

const (
	// RedistributeNone relies on anti-entropy alone to finish the spread —
	// the conservative response, adequate when only a few sites are
	// missing the update.
	RedistributeNone Redistribution = iota + 1
	// RedistributeMail remails the repaired update to all sites. The paper
	// implemented this in the Clearinghouse and had to remove it: with
	// half the sites missing an update it generates O(n²) messages.
	RedistributeMail
	// RedistributeRumor makes the repaired update a hot rumor again. A
	// rumor already known nearly everywhere dies out quickly, so this is
	// cheap in the common case and still effective in the worst case.
	RedistributeRumor
)

// String names the policy.
func (r Redistribution) String() string {
	switch r {
	case RedistributeNone:
		return "none"
	case RedistributeMail:
		return "mail"
	case RedistributeRumor:
		return "rumor"
	default:
		return "invalid"
	}
}
