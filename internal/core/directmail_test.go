package core

import (
	"errors"
	"math/rand"
	"testing"

	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// fakeMailer records posted mail and fails for destinations in failTo.
type fakeMailer struct {
	posted map[timestamp.SiteID][]store.Entry
	failTo map[timestamp.SiteID]bool
}

func newFakeMailer() *fakeMailer {
	return &fakeMailer{
		posted: make(map[timestamp.SiteID][]store.Entry),
		failTo: make(map[timestamp.SiteID]bool),
	}
}

func (f *fakeMailer) PostMail(to timestamp.SiteID, e store.Entry) error {
	if f.failTo[to] {
		return errors.New("queue overflow")
	}
	f.posted[to] = append(f.posted[to], e)
	return nil
}

func TestDirectMailPostsToAllOthers(t *testing.T) {
	m := newFakeMailer()
	sites := []timestamp.SiteID{1, 2, 3, 4}
	e := store.Entry{Key: "k", Value: store.Value("v"), Stamp: timestamp.T{Time: 1, Site: 2}}
	rep := DirectMail(m, 2, sites, e)
	if rep.Posted != 3 {
		t.Errorf("Posted = %d, want 3", rep.Posted)
	}
	if len(rep.Failed) != 0 {
		t.Errorf("Failed = %v", rep.Failed)
	}
	if _, ok := m.posted[2]; ok {
		t.Error("mailed to self")
	}
	for _, to := range []timestamp.SiteID{1, 3, 4} {
		if len(m.posted[to]) != 1 {
			t.Errorf("site %d got %d messages", to, len(m.posted[to]))
		}
	}
}

func TestDirectMailReportsFailures(t *testing.T) {
	m := newFakeMailer()
	m.failTo[3] = true
	sites := []timestamp.SiteID{1, 2, 3}
	rep := DirectMail(m, 1, sites, store.Entry{Key: "k"})
	if rep.Posted != 1 {
		t.Errorf("Posted = %d, want 1", rep.Posted)
	}
	if len(rep.Failed) != 1 || rep.Failed[0] != 3 {
		t.Errorf("Failed = %v, want [3]", rep.Failed)
	}
}

func TestChooseRetention(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sites := []timestamp.SiteID{1, 2, 3, 4, 5, 6, 7, 8}
	got := ChooseRetention(rng, sites, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	seen := make(map[timestamp.SiteID]bool)
	for _, s := range got {
		if seen[s] {
			t.Fatalf("duplicate retention site %d", s)
		}
		seen[s] = true
	}
	if got := ChooseRetention(rng, sites, 0); got != nil {
		t.Errorf("r=0 should return nil, got %v", got)
	}
	if got := ChooseRetention(rng, sites, 99); len(got) != len(sites) {
		t.Errorf("r>n should return all sites, got %d", len(got))
	}
	// Original slice must not be reordered.
	for i, s := range sites {
		if s != timestamp.SiteID(i+1) {
			t.Fatal("input slice mutated")
		}
	}
}

func TestChooseRetentionCoversAllSites(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sites := []timestamp.SiteID{1, 2, 3, 4}
	hits := make(map[timestamp.SiteID]int)
	for i := 0; i < 4000; i++ {
		for _, s := range ChooseRetention(rng, sites, 2) {
			hits[s]++
		}
	}
	for _, s := range sites {
		// Expect ~2000 each; sanity band.
		if hits[s] < 1600 || hits[s] > 2400 {
			t.Errorf("site %d chosen %d times, want ~2000", s, hits[s])
		}
	}
}

func TestTau2ForEqualSpace(t *testing.T) {
	// τ2 = (τ-τ1)·n/r: the paper's example, 30 days of history extended by
	// a factor of n/r.
	if got := Tau2ForEqualSpace(30, 10, 300, 4); got != (30-10)*300/4 {
		t.Errorf("Tau2 = %d", got)
	}
	if Tau2ForEqualSpace(10, 30, 300, 4) != 0 {
		t.Error("tau <= tau1 should yield 0")
	}
	if Tau2ForEqualSpace(30, 10, 0, 4) != 0 || Tau2ForEqualSpace(30, 10, 300, 0) != 0 {
		t.Error("degenerate n/r should yield 0")
	}
}

func TestRetentionLossProbability(t *testing.T) {
	if got := RetentionLossProbability(1); got != 0.5 {
		t.Errorf("r=1: %v", got)
	}
	if got := RetentionLossProbability(4); got != 0.0625 {
		t.Errorf("r=4: %v", got)
	}
	if got := RetentionLossProbability(0); got != 1 {
		t.Errorf("r=0: %v", got)
	}
}
