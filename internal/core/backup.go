package core

import (
	"fmt"
	"math/rand"

	"epidemic/internal/spatial"
)

// BackupResult reports a rumor-mongering spread followed by the
// anti-entropy backup of §1.5 on the same population.
type BackupResult struct {
	// Rumor is the initial complex-epidemic phase.
	Rumor SpreadResult
	// BackupCycles is how many anti-entropy cycles the mop-up needed
	// (0 when the rumor already reached everyone).
	BackupCycles int
	// BackupUpdates counts update transfers during the backup.
	BackupUpdates int
	// BackupConversations counts backup anti-entropy conversations (each
	// examines database state, unlike the cheap rumor exchanges).
	BackupConversations int
	// TotalTLast is the delay until the last site received the update,
	// across both phases.
	TotalTLast int
}

// SpreadRumorWithBackup runs rumor mongering to quiescence and then
// anti-entropy until every site has the update — the paper's recommended
// deployment (§1.5: "anti-entropy can be run infrequently to back up a
// complex epidemic ... this ensures with probability 1 that every update
// eventually reaches every site").
func SpreadRumorWithBackup(rumorCfg RumorConfig, backupCfg AntiEntropyConfig, sel spatial.Selector, origin int, rng *rand.Rand) (BackupResult, error) {
	if err := backupCfg.Validate(); err != nil {
		return BackupResult{}, err
	}
	rumor, err := SpreadRumor(rumorCfg, sel, origin, rng)
	if err != nil {
		return BackupResult{}, err
	}
	res := BackupResult{Rumor: rumor, TotalTLast: rumor.TLast}
	if rumor.Converged {
		return res, nil
	}

	// Continue as a simple epidemic from the rumor's coverage. Rebuild the
	// know-set: residue·n sites are susceptible; which ones is not part of
	// SpreadResult, so we re-run the backup over an equivalent random
	// know-set of the same size — exchangeable under a uniform selector,
	// and an accurate approximation for spatial ones.
	n := sel.NumSites()
	susceptible := int(rumor.Residue*float64(n) + 0.5)
	if susceptible <= 0 {
		return res, nil
	}
	env := newSpreadEnv(sel, rng, backupCfg.ConnLimit, backupCfg.HuntLimit)
	perm := rng.Perm(n)
	for _, i := range perm[susceptible:] {
		env.inject(i)
	}
	maxCycles := backupCfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = defaultMaxCycles
	}
	infected := n - susceptible
	cycle := 0
	for infected < n && cycle < maxCycles {
		cycle++
		env.beginCycle()
		for _, j := range env.order {
			i, ok := env.connect(j)
			if !ok {
				continue
			}
			env.converse(j, i)
			jHad, iHad := env.state[j].Knows(), env.state[i].Knows()
			switch backupCfg.Mode {
			case Push:
				if jHad && !env.knows(i) {
					env.sendUpdate(j, i)
					env.markInfected(i, cycle)
					infected++
				}
			case Pull:
				if iHad && !env.knows(j) {
					env.sendUpdate(i, j)
					env.markInfected(j, cycle)
					infected++
				}
			case PushPull:
				switch {
				case jHad && !env.knows(i):
					env.sendUpdate(j, i)
					env.markInfected(i, cycle)
					infected++
				case iHad && !env.knows(j):
					env.sendUpdate(i, j)
					env.markInfected(j, cycle)
					infected++
				}
			}
		}
		env.endCycle()
	}
	res.BackupCycles = cycle
	res.BackupUpdates = env.updatesSent
	res.BackupConversations = env.conversations
	res.TotalTLast = rumor.TLast + cycle
	env.release()
	if infected < n {
		return res, fmt.Errorf("core: backup did not converge in %d cycles", maxCycles)
	}
	return res, nil
}
