package core

import (
	"math"
	"math/rand"
	"testing"

	"epidemic/internal/spatial"
	"epidemic/internal/topology"
)

func avgRumor(t *testing.T, cfg RumorConfig, n, trials int, seed int64) (residue, traffic, tave, tlast float64) {
	t.Helper()
	sel := spatial.Uniform(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		r, err := SpreadRumor(cfg, sel, rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		residue += r.Residue
		traffic += r.Traffic
		tave += r.TAve
		tlast += float64(r.TLast)
	}
	f := float64(trials)
	return residue / f, traffic / f, tave / f, tlast / f
}

// Table 1 of the paper: push, feedback, counter, n=1000. Residue and
// traffic should land near the published rows.
func TestRumorMatchesTable1(t *testing.T) {
	rows := []struct {
		k          int
		wantS      float64
		wantM      float64
		tolS, tolM float64
	}{
		{k: 1, wantS: 0.18, wantM: 1.7, tolS: 0.05, tolM: 0.3},
		{k: 2, wantS: 0.037, wantM: 3.3, tolS: 0.02, tolM: 0.4},
		{k: 3, wantS: 0.011, wantM: 4.5, tolS: 0.008, tolM: 0.4},
	}
	for _, row := range rows {
		cfg := RumorConfig{K: row.k, Counter: true, Feedback: true, Mode: Push}
		s, m, _, _ := avgRumor(t, cfg, 1000, 12, int64(row.k))
		if math.Abs(s-row.wantS) > row.tolS {
			t.Errorf("k=%d residue %.4f, paper %.4f", row.k, s, row.wantS)
		}
		if math.Abs(m-row.wantM) > row.tolM {
			t.Errorf("k=%d traffic %.2f, paper %.2f", row.k, m, row.wantM)
		}
	}
}

// Table 2: blind, coin. Notably k=1 dies almost immediately (s≈0.96).
func TestRumorMatchesTable2(t *testing.T) {
	cfg := RumorConfig{K: 1, Mode: Push}
	s, m, _, _ := avgRumor(t, cfg, 1000, 12, 2)
	if s < 0.90 || s > 0.995 {
		t.Errorf("blind coin k=1 residue %.3f, paper 0.96", s)
	}
	if m > 0.1 {
		t.Errorf("blind coin k=1 traffic %.3f, paper 0.04", m)
	}
	cfg.K = 3
	s, m, _, _ = avgRumor(t, cfg, 1000, 12, 3)
	if math.Abs(s-0.06) > 0.03 {
		t.Errorf("blind coin k=3 residue %.3f, paper 0.060", s)
	}
	if math.Abs(m-2.8) > 0.4 {
		t.Errorf("blind coin k=3 traffic %.2f, paper 2.8", m)
	}
}

// Table 3: pull with feedback and counter is dramatically better than push
// (s = e^{-Θ(m³)} rather than e^{-m}).
func TestRumorMatchesTable3(t *testing.T) {
	cfg := RumorConfig{K: 1, Counter: true, Feedback: true, Mode: Pull}
	s, m, _, _ := avgRumor(t, cfg, 1000, 12, 4)
	if math.Abs(s-0.031) > 0.02 {
		t.Errorf("pull k=1 residue %.4f, paper 0.031", s)
	}
	if math.Abs(m-2.7) > 0.4 {
		t.Errorf("pull k=1 traffic %.2f, paper 2.7", m)
	}
	cfg.K = 2
	s, _, _, _ = avgRumor(t, cfg, 1000, 12, 5)
	if s > 0.005 {
		t.Errorf("pull k=2 residue %.5f, paper 5.8e-4", s)
	}
}

// The s = e^{-m} law (§1.4) holds across push variants.
func TestResidueTrafficLaw(t *testing.T) {
	variants := []RumorConfig{
		{K: 2, Counter: true, Feedback: true, Mode: Push},
		{K: 2, Counter: true, Mode: Push},  // blind counter
		{K: 3, Feedback: true, Mode: Push}, // feedback coin
		{K: 3, Mode: Push},                 // blind coin
		{K: 2, Counter: true, Feedback: true, Mode: Push, NoCounterReset: true},
	}
	for _, cfg := range variants {
		s, m, _, _ := avgRumor(t, cfg, 1000, 10, 99)
		if s <= 0 {
			continue // fully converged; law trivially satisfied
		}
		want := math.Exp(-m)
		if s < want/2.5 || s > want*2.5 {
			t.Errorf("%v: residue %.4g vs e^-m %.4g — law violated", cfg, s, want)
		}
	}
}

func TestRumorValidation(t *testing.T) {
	sel := spatial.Uniform(10)
	rng := rand.New(rand.NewSource(1))
	if _, err := SpreadRumor(RumorConfig{K: 0, Mode: Push}, sel, 0, rng); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := SpreadRumor(DefaultRumorConfig(), sel, -1, rng); err == nil {
		t.Error("bad origin accepted")
	}
	if _, err := SpreadRumor(DefaultRumorConfig(), sel, 10, rng); err == nil {
		t.Error("bad origin accepted")
	}
	// Minimization with coin is invalid.
	bad := RumorConfig{K: 2, Mode: PushPull, Minimization: true}
	if _, err := SpreadRumor(bad, sel, 0, rng); err == nil {
		t.Error("minimization+coin accepted")
	}
}

func TestRumorQuiescenceInvariants(t *testing.T) {
	sel := spatial.Uniform(200)
	rng := rand.New(rand.NewSource(5))
	for _, cfg := range []RumorConfig{
		{K: 2, Counter: true, Feedback: true, Mode: Push},
		{K: 2, Counter: true, Feedback: true, Mode: Pull},
		{K: 2, Counter: true, Feedback: true, Mode: PushPull},
		{K: 2, Mode: Push},
		{K: 2, Counter: true, Feedback: true, Mode: PushPull, Minimization: true},
		{K: 2, Counter: true, Feedback: true, Mode: Push, ConnLimit: 1},
		{K: 2, Counter: true, Feedback: true, Mode: Push, ConnLimit: 1, HuntLimit: 2},
	} {
		r, err := SpreadRumor(cfg, sel, 0, rng)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if r.N != 200 {
			t.Errorf("%v: N = %d", cfg, r.N)
		}
		if r.Residue < 0 || r.Residue > 1 {
			t.Errorf("%v: residue %v out of range", cfg, r.Residue)
		}
		if r.Converged != (r.Residue == 0) {
			t.Errorf("%v: Converged inconsistent with residue", cfg)
		}
		if r.TLast > r.Cycles {
			t.Errorf("%v: TLast %d > Cycles %d", cfg, r.TLast, r.Cycles)
		}
		if r.TAve > float64(r.TLast) {
			t.Errorf("%v: TAve %v > TLast %d", cfg, r.TAve, r.TLast)
		}
		if r.Traffic != float64(r.UpdatesSent)/float64(r.N) {
			t.Errorf("%v: traffic inconsistent", cfg)
		}
	}
}

// Push with connection limit 1 does *better* than s=e^{-m}: rejected
// connections save traffic without losing coverage (§1.4).
func TestPushConnectionLimitImprovesTrafficEfficiency(t *testing.T) {
	base := RumorConfig{K: 4, Counter: true, Feedback: true, Mode: Push}
	limited := base
	limited.ConnLimit = 1

	sBase, mBase, _, _ := avgRumor(t, base, 1000, 12, 11)
	sLim, mLim, _, _ := avgRumor(t, limited, 1000, 12, 12)

	// λ = 1/(1-1/e): at equal residue the limited variant needs less
	// traffic. Compare efficiency -ln(s)/m, which should be >= ~1 for the
	// unlimited variant and clearly larger with the limit.
	if sLim <= 0 || sBase <= 0 {
		t.Skip("residue hit zero; increase n for this comparison")
	}
	effBase := -math.Log(sBase) / mBase
	effLim := -math.Log(sLim) / mLim
	if effLim <= effBase {
		t.Errorf("connection limit should improve efficiency: base %.3f, limited %.3f", effBase, effLim)
	}
}

// Pull gets significantly worse with a connection limit (§1.4).
func TestPullConnectionLimitHurts(t *testing.T) {
	base := RumorConfig{K: 2, Counter: true, Feedback: true, Mode: Pull}
	limited := base
	limited.ConnLimit = 1
	sBase, _, _, _ := avgRumor(t, base, 1000, 15, 21)
	sLim, _, _, _ := avgRumor(t, limited, 1000, 15, 22)
	if sLim <= sBase {
		t.Errorf("pull with connection limit should have higher residue: base %.5f, limited %.5f", sBase, sLim)
	}
}

// Connection limit 1 with unlimited hunting approaches a permutation:
// push and pull become equivalent and the residue is very small (§1.4).
func TestInfiniteHuntTinyResidue(t *testing.T) {
	cfg := RumorConfig{K: 3, Counter: true, Feedback: true, Mode: Push, ConnLimit: 1, HuntLimit: HuntUnlimited}
	s, _, _, _ := avgRumor(t, cfg, 500, 15, 31)
	if s > 0.005 {
		t.Errorf("infinite hunt residue %.5f, want very small", s)
	}
}

// Minimization produces the smallest residue of the push-pull counter
// variants (§1.4).
func TestMinimizationReducesResidue(t *testing.T) {
	// k=1 is degenerate (counters are always equal when both parties
	// know), so compare at k=2 where the asymmetric increment matters.
	base := RumorConfig{K: 2, Counter: true, Feedback: true, Mode: PushPull}
	min := base
	min.Minimization = true
	sBase, _, _, _ := avgRumor(t, base, 1000, 40, 41)
	sMin, _, _, _ := avgRumor(t, min, 1000, 40, 41)
	if sMin >= sBase {
		t.Errorf("minimization residue %.5f should be below base %.5f", sMin, sBase)
	}
}

// Increasing k monotonically improves residue (the paper: "increasing k is
// an effective way of insuring that almost everybody hears the rumor").
func TestResidueDecreasesWithK(t *testing.T) {
	var prev float64 = 1.1
	for k := 1; k <= 4; k++ {
		cfg := RumorConfig{K: k, Counter: true, Feedback: true, Mode: Push}
		s, _, _, _ := avgRumor(t, cfg, 1000, 10, int64(50+k))
		if s > prev {
			t.Errorf("k=%d residue %.4f worse than k-1 %.4f", k, s, prev)
		}
		prev = s
	}
}

func TestRumorWithLinkAccounting(t *testing.T) {
	nw, err := topology.Mesh(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := spatial.New(nw, spatial.FormPaper, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cfg := RumorConfig{K: 4, Counter: true, Feedback: true, Mode: PushPull}
	r, err := SpreadRumor(cfg, sel, 0, rng, WithLinkAccounting(nw))
	if err != nil {
		t.Fatal(err)
	}
	if r.CompareLoad == nil || r.UpdateLoad == nil {
		t.Fatal("link loads missing")
	}
	if r.CompareLoad.Total() <= 0 {
		t.Error("no compare traffic charged")
	}
	if r.UpdateLoad.Total() <= 0 {
		t.Error("no update traffic charged")
	}
	// Updates sent can't exceed... each conversation sends at most 2.
	if r.UpdatesSent > 2*r.Conversations {
		t.Errorf("updates %d > 2x conversations %d", r.UpdatesSent, r.Conversations)
	}
}

func TestRumorDeterministicWithSeed(t *testing.T) {
	sel := spatial.Uniform(300)
	cfg := DefaultRumorConfig()
	r1, err := SpreadRumor(cfg, sel, 7, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SpreadRumor(cfg, sel, 7, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("same seed, different results: %+v vs %+v", r1, r2)
	}
}

func TestRumorTwoSites(t *testing.T) {
	sel := spatial.Uniform(2)
	cfg := RumorConfig{K: 1, Counter: true, Feedback: true, Mode: Push}
	r, err := SpreadRumor(cfg, sel, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged || r.TLast != 1 {
		t.Errorf("two-site spread: %+v", r)
	}
}
