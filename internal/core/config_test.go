package core

import (
	"strings"
	"testing"
)

func TestModeString(t *testing.T) {
	tests := []struct {
		mode Mode
		want string
	}{
		{Push, "push"},
		{Pull, "pull"},
		{PushPull, "push-pull"},
		{Mode(9), "Mode(9)"},
	}
	for _, tt := range tests {
		if got := tt.mode.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.mode), got, tt.want)
		}
	}
	if Mode(0).Valid() || !Push.Valid() {
		t.Error("Valid() wrong")
	}
}

func TestRumorConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     RumorConfig
		wantErr bool
	}{
		{name: "default ok", cfg: DefaultRumorConfig()},
		{name: "k zero", cfg: RumorConfig{K: 0, Mode: Push}, wantErr: true},
		{name: "bad mode", cfg: RumorConfig{K: 1}, wantErr: true},
		{name: "negative connlimit", cfg: RumorConfig{K: 1, Mode: Push, ConnLimit: -1}, wantErr: true},
		{name: "bad huntlimit", cfg: RumorConfig{K: 1, Mode: Push, HuntLimit: -2}, wantErr: true},
		{name: "hunt unlimited ok", cfg: RumorConfig{K: 1, Mode: Push, ConnLimit: 1, HuntLimit: HuntUnlimited}},
		{name: "minimization needs pushpull", cfg: RumorConfig{K: 1, Counter: true, Mode: Push, Minimization: true}, wantErr: true},
		{name: "minimization pushpull ok", cfg: RumorConfig{K: 1, Counter: true, Mode: PushPull, Minimization: true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRumorConfigString(t *testing.T) {
	s := RumorConfig{K: 3, Counter: true, Feedback: true, Mode: Push, ConnLimit: 1}.String()
	for _, want := range []string{"Feedback", "Counter", "k=3", "push", "Connection Limit 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	s = RumorConfig{K: 1, Mode: Pull}.String()
	for _, want := range []string{"Blind", "Coin", "pull", "No Connection Limit"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestAntiEntropyConfigValidate(t *testing.T) {
	if err := (AntiEntropyConfig{Mode: PushPull}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (AntiEntropyConfig{}).Validate(); err == nil {
		t.Error("zero mode accepted")
	}
	if err := (AntiEntropyConfig{Mode: Push, ConnLimit: -1}).Validate(); err == nil {
		t.Error("negative ConnLimit accepted")
	}
	if err := (AntiEntropyConfig{Mode: Push, HuntLimit: -3}).Validate(); err == nil {
		t.Error("bad HuntLimit accepted")
	}
}

func TestStateString(t *testing.T) {
	if Susceptible.String() != "susceptible" || Infective.String() != "infective" ||
		Removed.String() != "removed" || State(9).String() != "invalid" {
		t.Error("State.String wrong")
	}
	if Susceptible.Knows() || !Infective.Knows() || !Removed.Knows() {
		t.Error("State.Knows wrong")
	}
}

func TestCompareStrategyString(t *testing.T) {
	for _, s := range []CompareStrategy{CompareFull, CompareChecksum, CompareRecent, ComparePeelBack} {
		if strings.HasPrefix(s.String(), "CompareStrategy(") {
			t.Errorf("missing name for %d", int(s))
		}
	}
	if CompareStrategy(9).String() != "CompareStrategy(9)" {
		t.Error("fallback name wrong")
	}
}

func TestRedistributionString(t *testing.T) {
	if RedistributeNone.String() != "none" || RedistributeMail.String() != "mail" ||
		RedistributeRumor.String() != "rumor" || Redistribution(0).String() != "invalid" {
		t.Error("Redistribution.String wrong")
	}
}

func TestResolveConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     ResolveConfig
		wantErr bool
	}{
		{name: "full push ok", cfg: ResolveConfig{Mode: Push, Strategy: CompareFull}},
		{name: "checksum needs pushpull", cfg: ResolveConfig{Mode: Push, Strategy: CompareChecksum}, wantErr: true},
		{name: "recent pushpull ok", cfg: ResolveConfig{Mode: PushPull, Strategy: CompareRecent}},
		{name: "peelback pull bad", cfg: ResolveConfig{Mode: Pull, Strategy: ComparePeelBack}, wantErr: true},
		{name: "bad strategy", cfg: ResolveConfig{Mode: Push, Strategy: 0}, wantErr: true},
		{name: "bad mode", cfg: ResolveConfig{Strategy: CompareFull}, wantErr: true},
		{name: "negative batch", cfg: ResolveConfig{Mode: PushPull, Strategy: ComparePeelBack, BatchSize: -1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}
