package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

func pairStores(t *testing.T) (*store.Store, *store.Store, *timestamp.Simulated) {
	t.Helper()
	src := timestamp.NewSimulated(1 << 20)
	return store.New(1, src.ClockAt(1)), store.New(2, src.ClockAt(2)), src
}

func TestResolvePushPullFullConverges(t *testing.T) {
	a, b, src := pairStores(t)
	a.Update("x", store.Value("ax"))
	src.Advance(1)
	b.Update("y", store.Value("by"))
	src.Advance(1)
	b.Update("x", store.Value("bx")) // newer than a's x

	cfg := ResolveConfig{Mode: PushPull, Strategy: CompareFull}
	st, err := ResolveDifference(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !store.ContentEqual(a, b) {
		t.Fatal("stores differ after push-pull")
	}
	if v, _ := a.Lookup("x"); string(v) != "bx" {
		t.Errorf("newer value lost: %q", v)
	}
	if st.EntriesSent == 0 || st.EntriesApplied == 0 {
		t.Errorf("stats empty: %+v", st)
	}
}

func TestResolvePushOnlyOneDirection(t *testing.T) {
	a, b, src := pairStores(t)
	a.Update("mine", store.Value("1"))
	src.Advance(1)
	b.Update("theirs", store.Value("2"))

	cfg := ResolveConfig{Mode: Push, Strategy: CompareFull}
	if _, err := ResolveDifference(cfg, a, b); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup("mine"); !ok {
		t.Error("push did not deliver initiator's entry")
	}
	if _, ok := a.Lookup("theirs"); ok {
		t.Error("push must not pull partner's entry")
	}

	cfgPull := ResolveConfig{Mode: Pull, Strategy: CompareFull}
	if _, err := ResolveDifference(cfgPull, a, b); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Lookup("theirs"); !ok {
		t.Error("pull did not fetch partner's entry")
	}
}

func TestResolveChecksumShortCircuits(t *testing.T) {
	a, b, _ := pairStores(t)
	e := a.Update("k", store.Value("v"))
	b.Apply(e)

	cfg := ResolveConfig{Mode: PushPull, Strategy: CompareChecksum}
	st, err := ResolveDifference(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Transferred() != 0 || st.FullCompare {
		t.Errorf("equal stores should exchange nothing: %+v", st)
	}
	if st.ChecksumsCompared != 1 {
		t.Errorf("ChecksumsCompared = %d", st.ChecksumsCompared)
	}

	// Diverge: falls back to full compare.
	b.Update("extra", store.Value("x"))
	st, err = ResolveDifference(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullCompare || !store.ContentEqual(a, b) {
		t.Errorf("mismatch not repaired: %+v", st)
	}
}

func TestResolveRecentWindowAvoidsFullCompare(t *testing.T) {
	a, b, src := pairStores(t)
	// Shared old history.
	for i := 0; i < 20; i++ {
		e := a.Update(fmt.Sprintf("old%d", i), store.Value("v"))
		b.Apply(e)
	}
	src.Advance(1000)
	// One fresh update known only to a.
	a.Update("fresh", store.Value("new"))

	cfg := ResolveConfig{Mode: PushPull, Strategy: CompareRecent, Tau: 100}
	st, err := ResolveDifference(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.FullCompare {
		t.Errorf("recent-list exchange should have sufficed: %+v", st)
	}
	if !store.ContentEqual(a, b) {
		t.Fatal("stores differ")
	}
	// Only the fresh entry should have crossed the wire.
	if st.Transferred() > 2 {
		t.Errorf("Transferred = %d, want <= 2", st.Transferred())
	}
}

func TestResolveRecentFallsBackWhenTauTooSmall(t *testing.T) {
	a, b, src := pairStores(t)
	a.Update("stale", store.Value("missed"))
	src.Advance(1000) // now older than any reasonable tau

	cfg := ResolveConfig{Mode: PushPull, Strategy: CompareRecent, Tau: 10}
	st, err := ResolveDifference(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullCompare {
		t.Error("expected fallback to full compare")
	}
	if !store.ContentEqual(a, b) {
		t.Fatal("stores differ")
	}
}

func TestResolvePeelBackStopsEarly(t *testing.T) {
	a, b, src := pairStores(t)
	for i := 0; i < 200; i++ {
		e := a.Update(fmt.Sprintf("hist%03d", i), store.Value("v"))
		b.Apply(e)
		src.Advance(1)
	}
	a.Update("fresh", store.Value("new"))

	cfg := ResolveConfig{Mode: PushPull, Strategy: ComparePeelBack, BatchSize: 8}
	st, err := ResolveDifference(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !store.ContentEqual(a, b) {
		t.Fatal("stores differ")
	}
	// One batch from each side should settle it: ~16 entries, not 201+.
	if st.Transferred() > 40 {
		t.Errorf("peel-back moved %d entries; should stop after the first batches", st.Transferred())
	}
}

func TestResolvePeelBackIdenticalStores(t *testing.T) {
	a, b, _ := pairStores(t)
	e := a.Update("k", store.Value("v"))
	b.Apply(e)
	cfg := ResolveConfig{Mode: PushPull, Strategy: ComparePeelBack}
	st, err := ResolveDifference(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Transferred() != 0 {
		t.Errorf("identical stores moved %d entries", st.Transferred())
	}
}

func TestResolvePeelBackDeepDivergence(t *testing.T) {
	a, b, src := pairStores(t)
	// a has an old private entry below 200 shared ones.
	a.Update("buried", store.Value("deep"))
	src.Advance(1)
	for i := 0; i < 200; i++ {
		e := a.Update(fmt.Sprintf("hist%03d", i), store.Value("v"))
		b.Apply(e)
		src.Advance(1)
	}
	cfg := ResolveConfig{Mode: PushPull, Strategy: ComparePeelBack, BatchSize: 16}
	if _, err := ResolveDifference(cfg, a, b); err != nil {
		t.Fatal(err)
	}
	if !store.ContentEqual(a, b) {
		t.Fatal("deep divergence not repaired")
	}
	if _, ok := b.Lookup("buried"); !ok {
		t.Fatal("buried entry not delivered")
	}
}

func TestResolveValidation(t *testing.T) {
	a, b, _ := pairStores(t)
	if _, err := ResolveDifference(ResolveConfig{Mode: Push, Strategy: CompareChecksum}, a, b); err == nil {
		t.Error("checksum+push accepted")
	}
	if _, err := ResolveDifference(ResolveConfig{}, a, b); err == nil {
		t.Error("zero config accepted")
	}
}

func TestResolveDormantCertificatesNotPropagated(t *testing.T) {
	const tau1 = 100
	a, b, src := pairStores(t)
	a.Delete("gone", []timestamp.SiteID{1})
	src.Advance(tau1 + 10) // certificate is now dormant at a

	cfg := ResolveConfig{Mode: PushPull, Strategy: CompareFull, Tau1: tau1}
	if _, err := ResolveDifference(cfg, a, b); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get("gone"); ok {
		t.Error("dormant certificate propagated")
	}
}

func TestResolveReactivatesDormantCertificateOnObsoleteItem(t *testing.T) {
	const tau1 = 100
	a, b, src := pairStores(t)
	// b holds an obsolete copy of the item; a deleted it.
	old := b.Update("item", store.Value("obsolete"))
	_ = old
	src.Advance(1)
	a.Delete("item", []timestamp.SiteID{1})
	src.Advance(tau1 + 50) // dormant at a; b still has the obsolete item

	cfg := ResolveConfig{Mode: PushPull, Strategy: CompareFull, Tau1: tau1, ReactivateDormant: true}
	st, err := ResolveDifference(cfg, b, a) // b pushes its obsolete item at a
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Reactivated) != 1 || st.Reactivated[0] != "item" {
		t.Fatalf("Reactivated = %v", st.Reactivated)
	}
	// The awakened certificate must have cancelled b's obsolete copy.
	if _, ok := b.Lookup("item"); ok {
		t.Fatal("obsolete item survived at b")
	}
	got, ok := b.Get("item")
	if !ok || !got.IsDeath() {
		t.Fatal("b did not receive the awakened certificate")
	}
	// And it is no longer dormant (fresh activation).
	if store.IsDormant(got, a.Now(), tau1) {
		t.Fatal("awakened certificate still dormant")
	}
}

func TestResolveWithoutReactivationLeavesObsoleteCopy(t *testing.T) {
	const tau1 = 100
	a, b, src := pairStores(t)
	b.Update("item", store.Value("obsolete"))
	src.Advance(1)
	a.Delete("item", nil)
	src.Advance(tau1 + 50)

	cfg := ResolveConfig{Mode: PushPull, Strategy: CompareFull, Tau1: tau1}
	st, err := ResolveDifference(cfg, b, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Reactivated) != 0 {
		t.Fatalf("unexpected reactivation: %v", st.Reactivated)
	}
	// The dormant certificate stays put; b keeps its obsolete copy (this
	// is exactly the failure mode dormant reactivation exists to fix).
	if _, ok := b.Lookup("item"); !ok {
		t.Fatal("expected obsolete copy to survive without reactivation")
	}
}

// Property: for random divergent store pairs, one push-pull
// ResolveDifference conversation makes the replicas identical, for every
// comparison strategy.
func TestResolveConvergenceProperty(t *testing.T) {
	strategies := []CompareStrategy{CompareFull, CompareChecksum, CompareRecent, ComparePeelBack}
	f := func(seed int64, stratIdx uint8) bool {
		strategy := strategies[int(stratIdx)%len(strategies)]
		rng := rand.New(rand.NewSource(seed))
		src := timestamp.NewSimulated(1 << 20)
		a := store.New(1, src.ClockAt(1))
		b := store.New(2, src.ClockAt(2))
		keys := []string{"k0", "k1", "k2", "k3", "k4", "k5"}
		for i := 0; i < 30; i++ {
			s := a
			if rng.Intn(2) == 1 {
				s = b
			}
			k := keys[rng.Intn(len(keys))]
			if rng.Intn(5) == 0 {
				s.Delete(k, nil)
			} else {
				s.Update(k, store.Value{byte(i)})
			}
			// Occasionally sync a random entry to create shared history.
			if rng.Intn(3) == 0 {
				if e, ok := a.Get(keys[rng.Intn(len(keys))]); ok {
					b.Apply(e)
				}
			}
			src.Advance(int64(rng.Intn(4)))
		}
		// Tau1 large: certificates stay active, so they must propagate.
		cfg := ResolveConfig{Mode: PushPull, Strategy: strategy, Tau: 10, Tau1: 1 << 40, BatchSize: 4}
		if _, err := ResolveDifference(cfg, a, b); err != nil {
			return false
		}
		return store.ContentEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
