package core

import (
	"fmt"

	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// CompareStrategy selects how two sites performing anti-entropy detect the
// differences between their databases (§1.3).
type CompareStrategy int

const (
	// CompareFull ships the entire database contents.
	CompareFull CompareStrategy = iota + 1
	// CompareChecksum exchanges database checksums first and ships the
	// full contents only on mismatch.
	CompareChecksum
	// CompareRecent exchanges recent update lists (entries younger than
	// Tau), applies them, then compares checksums and falls back to a full
	// compare on mismatch.
	CompareRecent
	// ComparePeelBack exchanges updates in reverse timestamp order,
	// batch by batch, until the checksums agree (§1.3's "peel back").
	ComparePeelBack
	// CompareShardVector exchanges the per-shard checksum vectors after a
	// global-checksum mismatch and peels back only the diverged shards'
	// timestamp indexes, keeping examined work proportional to the
	// divergence rather than the database. Stores with differing shard
	// counts (whose key→shard maps are incomparable) fall back to the
	// global peel-back walk.
	CompareShardVector
)

// String names the strategy.
func (s CompareStrategy) String() string {
	switch s {
	case CompareFull:
		return "full"
	case CompareChecksum:
		return "checksum"
	case CompareRecent:
		return "recent-update-list"
	case ComparePeelBack:
		return "peel-back"
	case CompareShardVector:
		return "shard-vector"
	default:
		return fmt.Sprintf("CompareStrategy(%d)", int(s))
	}
}

// DefaultPeelBatch is the peel-back batch size used when BatchSize is 0,
// both in-process and on the wire.
const DefaultPeelBatch = 16

// ResolveConfig configures a database-level ResolveDifference exchange.
type ResolveConfig struct {
	// Mode is push, pull, or push-pull. Strategies other than CompareFull
	// are inherently bidirectional and require PushPull.
	Mode Mode
	// Strategy picks the difference-detection scheme.
	Strategy CompareStrategy
	// Tau is the recent-update window for CompareRecent: updates are
	// expected to reach all sites within Tau (§1.3). Poorly chosen Tau
	// degrades to full comparisons, exactly as the paper warns.
	Tau int64
	// Tau1 is the death-certificate dormancy threshold: dormant
	// certificates do not propagate during anti-entropy (§2.2) and are
	// excluded from live checksums.
	Tau1 int64
	// BatchSize is the peel-back batch; 0 means 16.
	BatchSize int
	// ReactivateDormant awakens a dormant death certificate when it
	// rejects an incoming obsolete item, advancing its activation
	// timestamp so it spreads again (§2.2).
	ReactivateDormant bool
}

// Validate reports configuration errors.
func (c ResolveConfig) Validate() error {
	if !c.Mode.Valid() {
		return fmt.Errorf("core: invalid mode %v", c.Mode)
	}
	switch c.Strategy {
	case CompareFull:
	case CompareChecksum, CompareRecent, ComparePeelBack, CompareShardVector:
		if c.Mode != PushPull {
			return fmt.Errorf("core: %v comparison requires PushPull mode", c.Strategy)
		}
	default:
		return fmt.Errorf("core: invalid strategy %v", c.Strategy)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("core: BatchSize must be >= 0")
	}
	return nil
}

// ExchangeStats reports what one ResolveDifference conversation did. All
// directions are from the initiator's point of view: EntriesSent travelled
// initiator→partner, EntriesReceived travelled partner→initiator, so
// Tables-4/5-style compare-vs-update traffic is attributable per direction.
type ExchangeStats struct {
	// EntriesSent counts entries the initiator transmitted to its partner.
	EntriesSent int
	// EntriesReceived counts entries the partner transmitted back to the
	// initiator.
	EntriesReceived int
	// EntriesApplied counts transmissions that changed a replica.
	EntriesApplied int
	// ChecksumsCompared counts checksum exchanges.
	ChecksumsCompared int
	// FullCompare reports whether the conversation fell back to shipping
	// complete databases.
	FullCompare bool
	// ShardsRepaired counts the diverged shards the shard-vector strategy
	// localized and peeled individually (zero for other strategies or when
	// the vector compare downgraded to a global walk).
	ShardsRepaired int
	// AppliedKeys lists the keys whose entries changed either replica —
	// the updates anti-entropy "repaired", which §1.5's redistribution
	// policies act on.
	AppliedKeys []string
	// AppliedBySite splits AppliedKeys by the replica each repair landed
	// on, keyed by site ID — the attribution observability needs to turn
	// repairs into per-site infection timestamps.
	AppliedBySite map[timestamp.SiteID][]string
	// Repairs records each applied entry with full provenance: which site
	// it landed on, which site shipped it, the exact version, and the
	// anti-entropy sub-mechanism (recent/full compare vs peel-back batch).
	// SenderHop starts at trace.HopUnknown; transports that carry hop
	// envelopes overwrite it so receivers can stamp causal hop counts.
	Repairs []Repair
	// Reactivated lists death certificates awakened by obsolete items.
	Reactivated []string
}

// RepairedKeys returns the deduplicated union of AppliedKeys and
// Reactivated, preserving first-seen order — the key set §1.5's
// redistribution policies act on after a conversation.
func (st ExchangeStats) RepairedKeys() []string {
	if len(st.AppliedKeys)+len(st.Reactivated) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(st.AppliedKeys)+len(st.Reactivated))
	keys := make([]string, 0, len(st.AppliedKeys)+len(st.Reactivated))
	for _, group := range [][]string{st.AppliedKeys, st.Reactivated} {
		for _, k := range group {
			if seen[k] {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// Repair is one applied entry's provenance within an anti-entropy
// conversation: the version Stamp landed on Site, shipped by Parent via
// Mech. SenderHop is the hop count the version had at the sender
// (trace.HopUnknown when no envelope established it).
type Repair struct {
	Site      timestamp.SiteID
	Parent    timestamp.SiteID
	Key       string
	Stamp     timestamp.T
	Mech      trace.Mechanism
	SenderHop int32
}

// Transferred returns the total entries moved in either direction — the
// network cost of the conversation.
func (st ExchangeStats) Transferred() int { return st.EntriesSent + st.EntriesReceived }

// countTransfer attributes one shipped entry to the right direction:
// entries leaving the initiator are sent, entries arriving at it received.
func (st *ExchangeStats) countTransfer(from, initiator *store.Store) {
	if from == initiator {
		st.EntriesSent++
	} else {
		st.EntriesReceived++
	}
}

// ResolveDifference carries out one anti-entropy conversation between the
// initiator s and its partner p, per §1.3's three variants. It returns
// statistics about the exchange. Dormant death certificates never
// propagate; when ReactivateDormant is set they are awakened if they meet
// an obsolete item.
func ResolveDifference(cfg ResolveConfig, s, p *store.Store) (ExchangeStats, error) {
	if err := cfg.Validate(); err != nil {
		return ExchangeStats{}, err
	}
	var st ExchangeStats
	switch cfg.Strategy {
	case CompareFull:
		resolveFull(cfg, s, p, &st)
	case CompareChecksum:
		st.ChecksumsCompared++
		if !liveChecksumEqual(cfg, s, p) {
			resolveFull(cfg, s, p, &st)
		}
	case CompareRecent:
		now := maxNow(s, p)
		sendEntries(cfg, s.RecentUpdates(now, cfg.Tau), s, p, s, trace.MechAntiEntropy, &st)
		sendEntries(cfg, p.RecentUpdates(now, cfg.Tau), p, s, s, trace.MechAntiEntropy, &st)
		st.ChecksumsCompared++
		if !liveChecksumEqual(cfg, s, p) {
			resolveFull(cfg, s, p, &st)
		}
	case ComparePeelBack:
		resolvePeelBack(cfg, s, p, &st)
	case CompareShardVector:
		resolveShardVector(cfg, s, p, &st)
	}
	return st, nil
}

// resolveFull ships complete (non-dormant) databases in the direction(s)
// the mode allows.
func resolveFull(cfg ResolveConfig, s, p *store.Store, st *ExchangeStats) {
	st.FullCompare = true
	if cfg.Mode == Push || cfg.Mode == PushPull {
		sendEntries(cfg, s.Snapshot(), s, p, s, trace.MechAntiEntropy, st)
	}
	if cfg.Mode == Pull || cfg.Mode == PushPull {
		sendEntries(cfg, p.Snapshot(), p, s, s, trace.MechAntiEntropy, st)
	}
}

// sendEntries transmits from's entries to to, skipping dormant death
// certificates, applying each and accounting for reactivations. initiator
// identifies the conversation's initiating store so traffic is attributed
// to the right direction; mech tags the resulting Repairs with the
// anti-entropy sub-mechanism that shipped them.
func sendEntries(cfg ResolveConfig, entries []store.Entry, from, to, initiator *store.Store, mech trace.Mechanism, st *ExchangeStats) {
	now := maxNow(from, to)
	for _, e := range entries {
		if store.IsDormant(e, now, cfg.Tau1) {
			continue // dormant certificates are not propagated (§2.2)
		}
		st.countTransfer(from, initiator)
		res := to.Apply(e)
		if res.Changed() {
			st.EntriesApplied++
			st.AppliedKeys = append(st.AppliedKeys, e.Key)
			if st.AppliedBySite == nil {
				st.AppliedBySite = make(map[timestamp.SiteID][]string)
			}
			st.AppliedBySite[to.Site()] = append(st.AppliedBySite[to.Site()], e.Key)
			st.Repairs = append(st.Repairs, Repair{
				Site: to.Site(), Parent: from.Site(),
				Key: e.Key, Stamp: e.Stamp,
				Mech: mech, SenderHop: trace.HopUnknown,
			})
		}
		if res == store.RejectedByDeath && cfg.ReactivateDormant {
			reactivateIfDormant(cfg, to, from, initiator, e.Key, st)
		}
	}
}

// reactivateIfDormant awakens holder's death certificate for key if it is
// dormant, and hands the awakened certificate straight back to the peer so
// it starts spreading.
func reactivateIfDormant(cfg ResolveConfig, holder, peer, initiator *store.Store, key string, st *ExchangeStats) {
	cur, ok := holder.Get(key)
	if !ok || !store.IsDormant(cur, holder.Now(), cfg.Tau1) {
		return
	}
	re, ok := holder.Reactivate(key)
	if !ok {
		return
	}
	st.Reactivated = append(st.Reactivated, key)
	st.countTransfer(holder, initiator)
	if peer.Apply(re).Changed() {
		st.EntriesApplied++
	}
}

// resolvePeelBack exchanges updates newest-first in batches until the live
// checksums agree (§1.3, §1.5). Both stores walk their own timestamp
// indexes; agreement is guaranteed once all differing entries have been
// shipped, and typically happens after the first batch.
func resolvePeelBack(cfg ResolveConfig, s, p *store.Store, st *ExchangeStats) {
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultPeelBatch
	}
	st.ChecksumsCompared++
	if liveChecksumEqual(cfg, s, p) {
		return
	}
	sNext := s.NewestFirst(batch)
	pNext := p.NewestFirst(batch)
	for {
		sendEntries(cfg, sNext, s, p, s, trace.MechPeelBack, st)
		sendEntries(cfg, pNext, p, s, s, trace.MechPeelBack, st)
		st.ChecksumsCompared++
		if liveChecksumEqual(cfg, s, p) {
			return
		}
		if len(sNext) == 0 && len(pNext) == 0 {
			// Indexes exhausted; databases agree on everything that can
			// propagate (remaining differences are dormant certificates).
			return
		}
		if len(sNext) > 0 {
			sNext = s.OlderThan(sNext[len(sNext)-1].Stamp, batch)
		}
		if len(pNext) > 0 {
			pNext = p.OlderThan(pNext[len(pNext)-1].Stamp, batch)
		}
	}
}

// resolveShardVector compares the per-shard live-checksum vectors after a
// global mismatch and peels back only the diverged shards, each walked to
// per-shard checksum agreement or exhaustion. A final global recompare
// (which also catches dormancy skew between the two vector reads) falls
// back to the global peel-back walk, so convergence is never weaker than
// ComparePeelBack. In-process both stores are walked directly; the wire
// transport runs the same shape with the diverged shards repaired
// concurrently.
func resolveShardVector(cfg ResolveConfig, s, p *store.Store, st *ExchangeStats) {
	st.ChecksumsCompared++
	if liveChecksumEqual(cfg, s, p) {
		return
	}
	if s.ShardCount() != p.ShardCount() {
		// Incomparable key→shard maps: the vectors cannot localize
		// anything. Global peel-back handles it.
		resolvePeelBack(cfg, s, p, st)
		return
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultPeelBatch
	}
	now := maxNow(s, p)
	sv := s.ChecksumVector(now, cfg.Tau1)
	pv := p.ChecksumVector(now, cfg.Tau1)
	st.ChecksumsCompared++ // the vector swap is one compare round trip
	for i := range sv {
		if sv[i] == pv[i] {
			continue
		}
		st.ShardsRepaired++
		repairShardInProcess(cfg, s, p, i, now, batch, st)
	}
	// Terminal global recompare; residual mismatch (e.g. a dormancy
	// transition racing the vector reads) downgrades to the global walk.
	resolvePeelBack(cfg, s, p, st)
}

// repairShardInProcess peels shard i of both stores newest-first until
// their per-shard live checksums agree or both walks are exhausted.
func repairShardInProcess(cfg ResolveConfig, s, p *store.Store, i int, now int64, batch int, st *ExchangeStats) {
	sBound, pBound := store.PeelStart, store.PeelStart
	sMore, pMore := true, true
	for {
		var sb, pb []store.Entry
		if sMore {
			sb, sBound, sMore = s.PeelBatchShard(i, sBound, batch, now, cfg.Tau1)
		}
		if pMore {
			pb, pBound, pMore = p.PeelBatchShard(i, pBound, batch, now, cfg.Tau1)
		}
		sendEntries(cfg, sb, s, p, s, trace.MechPeelBack, st)
		sendEntries(cfg, pb, p, s, s, trace.MechPeelBack, st)
		st.ChecksumsCompared++
		if s.ChecksumShard(i, now, cfg.Tau1) == p.ChecksumShard(i, now, cfg.Tau1) {
			return
		}
		if !sMore && !pMore {
			return
		}
	}
}

func liveChecksumEqual(cfg ResolveConfig, s, p *store.Store) bool {
	now := maxNow(s, p)
	return s.ChecksumLive(now, cfg.Tau1) == p.ChecksumLive(now, cfg.Tau1)
}

// maxNow returns the later of the two sites' clock readings; using one
// consistent "now" for both sides keeps dormancy decisions coherent within
// a conversation (the paper assumes clock skew ε ≪ τ1).
func maxNow(a, b *store.Store) int64 {
	na, nb := a.Now(), b.Now()
	if na > nb {
		return na
	}
	return nb
}
