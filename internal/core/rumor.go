package core

import (
	"fmt"
	"math/rand"

	"epidemic/internal/spatial"
	"epidemic/internal/topology"
)

// SpreadOption configures a spread simulation.
type SpreadOption func(*spreadEnv)

// WithLinkAccounting charges every conversation and update transfer to the
// links on the shortest path between the two sites, producing the per-link
// compare/update traffic of Tables 4 and 5. The network must be the one the
// selector was built from.
func WithLinkAccounting(nw *topology.Network) SpreadOption {
	return func(e *spreadEnv) { e.withLinkAccounting(nw) }
}

// WithInitialInfectives seeds additional sites as infective at time 0
// (besides the origin) — the §1.5 redistribution scenario, where an
// update already known at many sites is made a hot rumor everywhere it is
// known.
func WithInitialInfectives(sites []int) SpreadOption {
	return func(e *spreadEnv) {
		for _, s := range sites {
			if s >= 0 && s < e.n {
				e.inject(s)
			}
		}
	}
}

const defaultMaxCycles = 10_000

// SpreadRumor simulates rumor mongering (§1.4) for a single update injected
// at origin, running synchronous cycles until no site remains infective.
// The update states evolve susceptible → infective → removed; the result
// reports the paper's residue/traffic/delay criteria.
func SpreadRumor(cfg RumorConfig, sel spatial.Selector, origin int, rng *rand.Rand, opts ...SpreadOption) (SpreadResult, error) {
	if err := cfg.Validate(); err != nil {
		return SpreadResult{}, err
	}
	if cfg.Minimization && !cfg.Counter {
		return SpreadResult{}, fmt.Errorf("core: Minimization requires the Counter variant")
	}
	n := sel.NumSites()
	if origin < 0 || origin >= n {
		return SpreadResult{}, fmt.Errorf("core: origin %d out of range [0,%d)", origin, n)
	}
	env := newSpreadEnv(sel, rng, cfg.ConnLimit, cfg.HuntLimit)
	for _, opt := range opts {
		opt(env)
	}
	env.inject(origin)

	maxCycles := cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = defaultMaxCycles
	}

	r := &rumorRun{cfg: cfg, env: env}
	cycle := 0
	for env.anyInfective() && cycle < maxCycles {
		cycle++
		env.beginCycle()
		switch cfg.Mode {
		case Push:
			r.pushCycle(cycle)
		case Pull:
			r.pullCycle(cycle)
		case PushPull:
			r.pushPullCycle(cycle)
		}
		env.endCycle()
	}
	res := env.result(cycle)
	env.release()
	return res, nil
}

type rumorRun struct {
	cfg RumorConfig
	env *spreadEnv
}

// bump applies one unnecessary contact to infective site i and possibly
// removes it: counter variants remove after K unnecessary contacts, coin
// variants remove with probability 1/K per contact.
func (r *rumorRun) bump(i int) {
	if r.cfg.Counter {
		r.env.counter[i]++
		if r.env.counter[i] >= r.cfg.K {
			r.env.state[i] = Removed
		}
		return
	}
	if r.env.rng.Float64() < 1/float64(r.cfg.K) {
		r.env.state[i] = Removed
	}
}

// useful notes a contact that the recipient needed: by default it resets
// the sender's run of unnecessary contacts.
func (r *rumorRun) useful(i int) {
	if r.cfg.Counter && !r.cfg.NoCounterReset {
		r.env.counter[i] = 0
	}
}

// pushCycle: every infective site phones one partner and pushes the rumor.
func (r *rumorRun) pushCycle(cycle int) {
	env := r.env
	for _, sender := range env.order {
		if env.state[sender] != Infective {
			continue
		}
		to, ok := env.connect(sender)
		if !ok {
			continue // all attempts rejected; no contact this cycle
		}
		env.converse(sender, to)
		knew := env.state[to].Knows() // start-of-cycle knowledge
		env.sendUpdate(sender, to)
		if !knew {
			env.markInfected(to, cycle)
		}
		// Feedback senders lose interest only on contacts whose recipient
		// already knew; blind senders lose interest on every contact.
		switch {
		case !r.cfg.Feedback:
			r.bump(sender)
		case knew:
			r.bump(sender)
		default:
			r.useful(sender)
		}
	}
}

// pullCycle: every site phones one partner and asks for hot rumors. An
// infective source sends the update to each requester it serves; per the
// footnote to Table 3, the per-cycle effect on the source's counter is:
// reset if any recipient needed the update, +1 if it served recipients and
// none needed it.
func (r *rumorRun) pullCycle(cycle int) {
	env := r.env
	// Collect accepted requests; the connection limit applies to how many
	// requests a source serves in one cycle. The per-source lists live in
	// pooled scratch: truncate, don't reallocate.
	reqFrom := env.reqFrom
	for i := range reqFrom {
		reqFrom[i] = reqFrom[i][:0]
	}
	for _, j := range env.order {
		src, ok := env.connect(j)
		if !ok {
			continue
		}
		env.converse(j, src)
		reqFrom[src] = append(reqFrom[src], int32(j))
	}
	for src, reqs := range reqFrom {
		if env.state[src] != Infective || len(reqs) == 0 {
			continue
		}
		needed := false
		for _, j32 := range reqs {
			j := int(j32)
			env.sendUpdate(src, j)
			if !env.knows(j) {
				env.markInfected(j, cycle)
				needed = true
			}
		}
		switch {
		case !r.cfg.Feedback:
			r.bump(src)
		case needed:
			r.useful(src)
		default:
			r.bump(src)
		}
	}
}

// pushPullCycle: every site phones one partner and the pair exchange in
// both directions. A newly infected site shares from the next cycle on.
func (r *rumorRun) pushPullCycle(cycle int) {
	env := r.env
	for _, j := range env.order {
		i, ok := env.connect(j)
		if !ok {
			continue
		}
		env.converse(j, i)
		jKnew, iKnew := env.knows(j), env.knows(i)
		jHot := env.state[j] == Infective
		iHot := env.state[i] == Infective
		if iHot {
			env.sendUpdate(i, j)
			if !jKnew {
				env.markInfected(j, cycle)
			}
		}
		if jHot {
			env.sendUpdate(j, i)
			if !iKnew {
				env.markInfected(i, cycle)
			}
		}

		jUnnecessary := jHot && iKnew
		iUnnecessary := iHot && jKnew
		if r.cfg.Minimization && jUnnecessary && iUnnecessary {
			// Only the smaller counter is incremented; both on equality.
			switch {
			case env.counter[j] < env.counter[i]:
				r.bump(j)
			case env.counter[i] < env.counter[j]:
				r.bump(i)
			default:
				r.bump(j)
				r.bump(i)
			}
			continue
		}
		if jHot {
			if !r.cfg.Feedback || jUnnecessary {
				r.bump(j)
			} else {
				r.useful(j)
			}
		}
		if iHot {
			if !r.cfg.Feedback || iUnnecessary {
				r.bump(i)
			} else {
				r.useful(i)
			}
		}
	}
}
