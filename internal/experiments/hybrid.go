package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"epidemic/internal/core"
	"epidemic/internal/parallel"
	"epidemic/internal/spatial"
)

// HybridRow compares deployment strategies for complete distribution of
// one update.
type HybridRow struct {
	Strategy string
	// ExpensiveConversations counts anti-entropy conversations, each of
	// which examines database state (checksums / recent lists / full
	// compares). Rumor exchanges are excluded: they only touch the hot
	// rumor list, which is why "rumor cycles can be more frequent than
	// anti-entropy cycles" (§0).
	ExpensiveConversations float64
	// UpdatesSent counts actual update transmissions.
	UpdatesSent float64
	// TLast is the delay until the last site has the update.
	TLast float64
}

// HybridCost quantifies §1.5's recommendation: rumor mongering for initial
// distribution with infrequent anti-entropy backup costs a small fraction
// of the database-examining conversations that pure anti-entropy needs,
// at comparable delay.
func HybridCost(n, trials int, seed int64) ([]HybridRow, error) {
	sel := spatial.Uniform(n)
	aeCfg := core.AntiEntropyConfig{Mode: core.PushPull}

	var pure HybridRow
	pure.Strategy = "anti-entropy only"
	pureResults, err := parallel.Run(trials, seed, func(_ int, rng *rand.Rand) (core.SpreadResult, error) {
		return core.SpreadAntiEntropy(aeCfg, sel, rng.Intn(n), rng)
	})
	if err != nil {
		return nil, err
	}
	for _, r := range pureResults {
		pure.ExpensiveConversations += float64(r.Conversations)
		pure.UpdatesSent += float64(r.UpdatesSent)
		pure.TLast += float64(r.TLast)
	}
	f := float64(trials)
	pure.ExpensiveConversations /= f
	pure.UpdatesSent /= f
	pure.TLast /= f

	var hybrid HybridRow
	hybrid.Strategy = "rumors + anti-entropy backup"
	rumorCfg := core.RumorConfig{K: 2, Counter: true, Feedback: true, Mode: core.PushPull}
	hybridResults, err := parallel.Run(trials, seed+1, func(_ int, rng *rand.Rand) (core.BackupResult, error) {
		return core.SpreadRumorWithBackup(rumorCfg, aeCfg, sel, rng.Intn(n), rng)
	})
	if err != nil {
		return nil, err
	}
	for _, r := range hybridResults {
		hybrid.ExpensiveConversations += float64(r.BackupConversations)
		hybrid.UpdatesSent += float64(r.Rumor.UpdatesSent + r.BackupUpdates)
		hybrid.TLast += float64(r.TotalTLast)
	}
	hybrid.ExpensiveConversations /= f
	hybrid.UpdatesSent /= f
	hybrid.TLast /= f

	return []HybridRow{pure, hybrid}, nil
}

// FormatHybridRows renders the deployment comparison.
func FormatHybridRows(n int, rows []HybridRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "complete distribution of one update to %d sites (§1.5)\n", n)
	fmt.Fprintf(&b, "%-30s  %22s  %12s  %8s\n", "strategy", "db-examining convs", "updates sent", "t_last")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s  %22.0f  %12.0f  %8.1f\n", r.Strategy, r.ExpensiveConversations, r.UpdatesSent, r.TLast)
	}
	return b.String()
}
