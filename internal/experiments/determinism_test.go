package experiments

import (
	"reflect"
	"testing"

	"epidemic/internal/core"
	"epidemic/internal/parallel"
)

// withWorkers runs f under a fixed parallel worker cap and restores the
// previous cap afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := parallel.SetMaxWorkers(n)
	defer parallel.SetMaxWorkers(prev)
	f()
}

// Every experiment must produce bit-identical rows for a given seed no
// matter how many workers execute its trials. Table1 covers the rumor
// spread path, RunCINTable the anti-entropy + link-accounting path, and
// DeathCertificates the full-cluster path.
func TestExperimentsIdenticalAcrossWorkerCounts(t *testing.T) {
	const seed = 123
	type result struct {
		table1 []RumorRow
		cin    []CINRow
		dc     []DeathCertRow
	}
	runAll := func() result {
		t1, err := Table1(60, 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := NewCINSpec()
		if err != nil {
			t.Fatal(err)
		}
		spec.Selectors = spec.Selectors[:2] // keep the test quick
		cin, err := spec.RunCINTable(core.AntiEntropyConfig{Mode: core.PushPull}, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		dc, err := DeathCertificates(8, seed)
		if err != nil {
			t.Fatal(err)
		}
		return result{t1, cin, dc}
	}

	var base result
	withWorkers(t, 1, func() { base = runAll() })
	for _, workers := range []int{2, 4} {
		withWorkers(t, workers, func() {
			got := runAll()
			if !reflect.DeepEqual(base.table1, got.table1) {
				t.Errorf("workers=%d: Table1 rows differ from sequential", workers)
			}
			if !reflect.DeepEqual(base.cin, got.cin) {
				t.Errorf("workers=%d: CIN rows differ from sequential", workers)
			}
			if !reflect.DeepEqual(base.dc, got.dc) {
				t.Errorf("workers=%d: death-certificate rows differ from sequential", workers)
			}
		})
	}
}
