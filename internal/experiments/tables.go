// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the analytical claims of §1.3–§3. Each experiment
// returns structured rows so the CLI, the benchmarks, and EXPERIMENTS.md
// can share one source of truth.
//
// All Monte Carlo trial loops run on the internal/parallel engine: each
// trial draws from an RNG derived from (seed, trialIndex), trials fan
// out across GOMAXPROCS workers, and per-trial results are reduced in
// trial order — so every experiment returns bit-identical rows for a
// given seed regardless of the worker count.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"epidemic/internal/core"
	"epidemic/internal/parallel"
	"epidemic/internal/spatial"
)

// RumorRow is one row of Tables 1–3: a rumor-mongering variant at one k.
type RumorRow struct {
	K       int
	Residue float64
	Traffic float64
	TAve    float64
	TLast   float64
}

// runRumorRows averages `trials` single-update spreads per k, fanning
// the trials out over the parallel engine.
func runRumorRows(cfg core.RumorConfig, ks []int, n, trials int, seed int64) ([]RumorRow, error) {
	sel := spatial.Uniform(n)
	rows := make([]RumorRow, 0, len(ks))
	for _, k := range ks {
		kcfg := cfg
		kcfg.K = k
		results, err := parallel.Run(trials, seed+int64(k), func(_ int, rng *rand.Rand) (core.SpreadResult, error) {
			return core.SpreadRumor(kcfg, sel, rng.Intn(n), rng)
		})
		if err != nil {
			return nil, err
		}
		var row RumorRow
		row.K = k
		for _, r := range results {
			row.Residue += r.Residue
			row.Traffic += r.Traffic
			row.TAve += r.TAve
			row.TLast += float64(r.TLast)
		}
		f := float64(trials)
		row.Residue /= f
		row.Traffic /= f
		row.TAve /= f
		row.TLast /= f
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1 reproduces Table 1: push rumor mongering with feedback and
// counters on n sites (the paper uses n=1000), k = 1..5.
func Table1(n, trials int, seed int64) ([]RumorRow, error) {
	cfg := core.RumorConfig{Counter: true, Feedback: true, Mode: core.Push}
	return runRumorRows(cfg, []int{1, 2, 3, 4, 5}, n, trials, seed)
}

// Table2 reproduces Table 2: push rumor mongering, blind with coins.
func Table2(n, trials int, seed int64) ([]RumorRow, error) {
	cfg := core.RumorConfig{Mode: core.Push}
	return runRumorRows(cfg, []int{1, 2, 3, 4, 5}, n, trials, seed)
}

// Table3 reproduces Table 3: pull rumor mongering with feedback and
// counters (per-cycle counter semantics per the table's footnote).
func Table3(n, trials int, seed int64) ([]RumorRow, error) {
	cfg := core.RumorConfig{Counter: true, Feedback: true, Mode: core.Pull}
	return runRumorRows(cfg, []int{1, 2, 3}, n, trials, seed)
}

// FormatRumorRows renders rows the way the paper prints Tables 1–3.
func FormatRumorRows(title string, rows []RumorRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%3s  %10s  %8s  %7s  %7s\n", "k", "Residue s", "Traffic", "t_ave", "t_last")
	for _, r := range rows {
		fmt.Fprintf(&b, "%3d  %10.2g  %8.2f  %7.2f  %7.2f\n", r.K, r.Residue, r.Traffic, r.TAve, r.TLast)
	}
	return b.String()
}
