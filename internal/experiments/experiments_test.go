package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"epidemic/internal/core"
	"epidemic/internal/spatial"
	"epidemic/internal/topology"
)

// Small-scale runs keep the test suite fast; the benchmarks run the
// paper-scale versions.

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(500, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Residue > rows[i-1].Residue {
			t.Errorf("residue not decreasing at k=%d", rows[i].K)
		}
		if rows[i].Traffic < rows[i-1].Traffic {
			t.Errorf("traffic not increasing at k=%d", rows[i].K)
		}
	}
	out := FormatRumorRows("Table 1", rows)
	if !strings.Contains(out, "Residue") || len(strings.Split(out, "\n")) < 7 {
		t.Errorf("format output wrong:\n%s", out)
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(500, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Blind+coin k=1: the rumor dies almost immediately.
	if rows[0].Residue < 0.85 {
		t.Errorf("k=1 blind+coin residue %.3f, want ~0.96", rows[0].Residue)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(500, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Pull beats push dramatically: k=2 residue should already be tiny.
	if rows[1].Residue > 0.01 {
		t.Errorf("pull k=2 residue %.4f, want < 0.01", rows[1].Residue)
	}
}

func TestCINTablesShape(t *testing.T) {
	spec, err := NewCINSpec()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := spec.RunCINTable(core.AntiEntropyConfig{Mode: core.PushPull}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	uniform, tightest := rows[0], rows[len(rows)-1]
	if uniform.Label != "uniform" {
		t.Fatalf("first row = %q", uniform.Label)
	}
	// The paper's headline claims: spatial distribution cuts average
	// traffic several-fold and the Bushey link by a large factor, at the
	// cost of <~2.5x slower convergence.
	if tightest.CompareBushey > uniform.CompareBushey/10 {
		t.Errorf("Bushey compare traffic: uniform %.1f, a=2 %.1f — want >10x reduction",
			uniform.CompareBushey, tightest.CompareBushey)
	}
	if tightest.CompareAvg > uniform.CompareAvg/2 {
		t.Errorf("average compare traffic: uniform %.1f, a=2 %.1f — want >2x reduction",
			uniform.CompareAvg, tightest.CompareAvg)
	}
	if tightest.TLast < uniform.TLast {
		t.Errorf("tighter distribution should converge slower")
	}
	out := FormatCINRows("Table 4", rows)
	if !strings.Contains(out, "Bushey") {
		t.Error("format missing Bushey column")
	}
}

func TestTable5ConnectionLimitSlower(t *testing.T) {
	spec, err := NewCINSpec()
	if err != nil {
		t.Fatal(err)
	}
	free, err := spec.RunCINTable(core.AntiEntropyConfig{Mode: core.PushPull}, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := spec.RunCINTable(core.AntiEntropyConfig{Mode: core.PushPull, ConnLimit: 1}, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Note 3 of §3.1: convergence times higher, compare traffic lower.
	if limited[0].TLast <= free[0].TLast {
		t.Errorf("uniform: connection limit should slow convergence (%v vs %v)", limited[0].TLast, free[0].TLast)
	}
	if limited[0].CompareAvg >= free[0].CompareAvg {
		t.Errorf("uniform: connection limit should cut per-cycle compare traffic")
	}
}

func TestFigure1FailsAtSmallK(t *testing.T) {
	rows, err := Figure1(20, 3, 60, []int{1, 2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].FailureRate == 0 {
		t.Error("k=1 on the Figure 1 topology should fail sometimes")
	}
	last := rows[len(rows)-1]
	if last.FailureRate > rows[0].FailureRate {
		t.Error("failure rate should not increase with k")
	}
	out := FormatFigureRows("Figure 1", rows)
	if !strings.Contains(out, "P(failure)") {
		t.Error("format wrong")
	}
}

func TestFigure2SatelliteMisses(t *testing.T) {
	rows, err := Figure2(5, 40, []int{1, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].FailureRate == 0 {
		t.Error("k=1 on the Figure 2 topology should fail sometimes")
	}
}

func TestKForFullDistribution(t *testing.T) {
	nw, err := topology.Mesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := spatial.New(nw, spatial.FormPaper, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.RumorConfig{Counter: true, Feedback: true, Mode: core.PushPull}
	k, err := KForFullDistribution(cfg, sel, 20, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 || k > 12 {
		t.Errorf("k = %d, want a small finite value", k)
	}
}

func TestPushPullConvergenceRows(t *testing.T) {
	rows := PushPullConvergence(1000, 0.1, 8, 5, 1)
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	// Pull model collapses double-exponentially; push lags far behind.
	if last.PullModel >= last.PushModel {
		t.Error("pull model should be far below push model")
	}
	if last.PullSim > last.PushSim+0.01 {
		t.Errorf("pull sim %.4f should not exceed push sim %.4f", last.PullSim, last.PushSim)
	}
	// Simulation should track the models loosely at cycle 3.
	mid := rows[3]
	if math.Abs(mid.PushSim-mid.PushModel) > 0.05 {
		t.Errorf("push sim %.4f vs model %.4f diverged", mid.PushSim, mid.PushModel)
	}
	if !strings.Contains(FormatConvergenceRows(rows), "push model") {
		t.Error("format wrong")
	}
}

func TestResidueTrafficLawRows(t *testing.T) {
	rows, err := ResidueTrafficLaw(600, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.Lambda) {
			continue // residue hit zero at small n
		}
		if r.Lambda < 0.6 || r.Lambda > 1.9 {
			t.Errorf("%s k=%d lambda %.2f outside the e^-m regime", r.Variant, r.K, r.Lambda)
		}
	}
	if !strings.Contains(FormatLawRows("law", rows), "lambda") {
		t.Error("format wrong")
	}
}

func TestConnectionLimitLawRows(t *testing.T) {
	rows, err := ConnectionLimitLaw(600, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := func(name string, k int) LawRow {
		for _, r := range rows {
			if r.Variant == name && r.K == k {
				return r
			}
		}
		t.Fatalf("row %q k=%d missing", name, k)
		return LawRow{}
	}
	// Pull degrades with the limit.
	if byName("pull climit=1", 2).Residue < byName("pull unlimited", 2).Residue {
		t.Error("pull should degrade under connection limit")
	}
	// Hunting repairs pull.
	if byName("pull climit=1 hunt=4", 2).Residue > byName("pull climit=1", 2).Residue {
		t.Error("hunting should repair pull")
	}
}

func TestMinimizationComparisonRows(t *testing.T) {
	rows, err := MinimizationComparison(800, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At k=2 minimization should not be worse.
	var base, min LawRow
	for _, r := range rows {
		if r.K != 2 {
			continue
		}
		if strings.Contains(r.Variant, "minimization") {
			min = r
		} else {
			base = r
		}
	}
	if min.Residue > base.Residue*1.5 {
		t.Errorf("minimization residue %.4g much worse than base %.4g", min.Residue, base.Residue)
	}
}

func TestLineScalingRows(t *testing.T) {
	rows, err := LineScaling([]int{64, 128}, []float64{0, 2}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(n int, a float64) LineScalingRow {
		for _, r := range rows {
			if r.N == n && r.A == a {
				return r
			}
		}
		t.Fatalf("row n=%d a=%v missing", n, a)
		return LineScalingRow{}
	}
	// Uniform traffic per link grows ~linearly with n; a=2 stays near
	// flat. Compare growth factors when n doubles.
	uniformGrowth := get(128, 0).TrafficPerLink / get(64, 0).TrafficPerLink
	tightGrowth := get(128, 2).TrafficPerLink / get(64, 2).TrafficPerLink
	if uniformGrowth < 1.5 {
		t.Errorf("uniform per-link traffic growth %.2f, want ~2 (O(n))", uniformGrowth)
	}
	if tightGrowth > 1.4 {
		t.Errorf("a=2 per-link traffic growth %.2f, want ~1 (O(log n))", tightGrowth)
	}
	// Uniform converges in O(log n); a=2 is slower on a line but far from
	// O(n).
	if get(128, 2).TLast > float64(128) {
		t.Error("a=2 convergence degenerated to O(n)")
	}
	if !strings.Contains(FormatLineScalingRows(rows), "t_last") {
		t.Error("format wrong")
	}
}

func TestDeathCertificateScenarios(t *testing.T) {
	rows, err := DeathCertificates(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].ResurrectedReplicas == 0 {
		t.Error("scenario 1 (expired certificates) should resurrect the item")
	}
	if rows[1].ResurrectedReplicas != 0 {
		t.Errorf("scenario 2 (retained certificates) resurrected %d replicas", rows[1].ResurrectedReplicas)
	}
	if rows[2].ResurrectedReplicas != 0 {
		t.Errorf("scenario 3 (dormant awakening) resurrected %d replicas", rows[2].ResurrectedReplicas)
	}
	if !strings.Contains(FormatDeathCertRows(rows), "resurrected") {
		t.Error("format wrong")
	}
}

func TestBackupAntiEntropyAlwaysFinishes(t *testing.T) {
	row, err := BackupAntiEntropy(16, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.AfterBackupFailures != 0 {
		t.Errorf("backup failed %d/%d trials", row.AfterBackupFailures, row.Trials)
	}
	if !strings.Contains(FormatBackupRow(row), "backup") {
		t.Error("format wrong")
	}
}

func TestKAdjustmentOrdering(t *testing.T) {
	rows, err := KAdjustment(20, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Push-pull needs a small finite k at every spatial tightness; push
	// never needs a *smaller* k than push-pull at the same distribution.
	byKey := make(map[string]KAdjustRow, len(rows))
	for _, r := range rows {
		byKey[fmt.Sprintf("%v/%.1f", r.Mode, r.A)] = r
	}
	for _, a := range []float64{0, 1.2, 2.0} {
		pp := byKey[fmt.Sprintf("push-pull/%.1f", a)]
		if !pp.Found {
			t.Errorf("push-pull a=%.1f: no k <= %d sufficed", a, pp.MaxK)
		}
		push := byKey[fmt.Sprintf("push/%.1f", a)]
		if push.Found && push.K < pp.K {
			t.Errorf("a=%.1f: push k=%d smaller than push-pull k=%d", a, push.K, pp.K)
		}
	}
	if !strings.Contains(FormatKAdjustRows(rows), "100%") {
		t.Error("format wrong")
	}
}

func TestTauWindowTradeoff(t *testing.T) {
	rows, err := TauWindow(10, []int64{1, 5, 60}, 50, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tiny, good, huge := rows[0], rows[1], rows[2]
	// Too-small tau: checksum comparisons usually fail.
	if tiny.FullCompareRate < 0.2 {
		t.Errorf("tau=1 full-compare rate %.2f, want substantial", tiny.FullCompareRate)
	}
	// Well-chosen tau: almost no full compares, cheapest exchanges.
	if good.FullCompareRate > 0.05 {
		t.Errorf("tau=5 full-compare rate %.2f, want ~0", good.FullCompareRate)
	}
	if good.EntriesPerExchange >= tiny.EntriesPerExchange {
		t.Error("well-chosen tau should beat too-small tau on traffic")
	}
	// Oversized tau: recent lists bloat.
	if huge.EntriesPerExchange <= good.EntriesPerExchange {
		t.Error("oversized tau should cost more than well-chosen tau")
	}
	if !strings.Contains(FormatTauWindowRows(rows), "tau") {
		t.Error("format wrong")
	}
}

func TestAsyncRobustnessRows(t *testing.T) {
	rows, err := AsyncRobustness(500, 8, []int{2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Asynchrony must not change the character of the results.
		if r.AsyncTraffic < r.SyncTraffic*0.6 || r.AsyncTraffic > r.SyncTraffic*1.4 {
			t.Errorf("k=%d traffic diverged: sync %.2f async %.2f", r.K, r.SyncTraffic, r.AsyncTraffic)
		}
		if r.AsyncTLast > r.SyncTLast*1.6 {
			t.Errorf("k=%d delay diverged: sync %.1f async %.1f", r.K, r.SyncTLast, r.AsyncTLast)
		}
	}
	if !strings.Contains(FormatAsyncRows(rows), "async") {
		t.Error("format wrong")
	}
}

func TestStalenessRelaxedConsistency(t *testing.T) {
	rows, err := Staleness(10, []float64{0.5, 16}, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	low, high := rows[0], rows[1]
	// Currency stays high even under heavy load...
	if high.Currency < 0.9 {
		t.Errorf("currency %.3f under load, want > 0.9", high.Currency)
	}
	// ...and degrades monotonically with rate.
	if high.Currency > low.Currency {
		t.Errorf("currency should not improve with load: %.4f vs %.4f", high.Currency, low.Currency)
	}
	// Full consistency becomes rare as the update rate rises.
	if high.FullyConsistentFraction > low.FullyConsistentFraction {
		t.Error("full consistency should be rarer under load")
	}
	if !strings.Contains(FormatStalenessRows(rows), "currency") {
		t.Error("format wrong")
	}
}

func TestMethodComparison(t *testing.T) {
	rows, err := MethodComparison(500, 10, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	mail, ae, rm := rows[0], rows[1], rows[2]
	// Direct mail: residue ~ loss rate, one cycle, ~1 message/site.
	if math.Abs(mail.Residue-0.05) > 0.02 || mail.TLast != 1 {
		t.Errorf("mail row: %+v", mail)
	}
	// Anti-entropy: guaranteed, residue 0.
	if !ae.Reliable || ae.Residue != 0 {
		t.Errorf("ae row: %+v", ae)
	}
	// Rumors: tiny residue, bounded traffic, log-time delay.
	if rm.Residue > 0.05 {
		t.Errorf("rumor residue %.4f", rm.Residue)
	}
	if rm.TLast <= 1 || rm.TLast > 40 {
		t.Errorf("rumor t_last %.1f", rm.TLast)
	}
	if !strings.Contains(FormatMethodRows(rows), "guaranteed") {
		t.Error("format wrong")
	}
}

func TestDormantSpace(t *testing.T) {
	rows := DormantSpace(300, 30, 15, []int{1, 4})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// r=1: tau2 = (30-15)*300 = 4500 days ≈ 12 years.
	if rows[0].Tau2Days != 4500 || rows[0].LossProbability != 0.5 {
		t.Errorf("r=1 row: %+v", rows[0])
	}
	// Larger r trades history for durability.
	if rows[1].Tau2Days >= rows[0].Tau2Days {
		t.Error("tau2 should shrink with r")
	}
	if rows[1].LossProbability >= rows[0].LossProbability {
		t.Error("loss probability should shrink with r")
	}
	out := FormatDormantSpaceRows(300, 30, 15, rows)
	if !strings.Contains(out, "history") {
		t.Error("format wrong")
	}
}

func TestRedistributionCost(t *testing.T) {
	const n = 100
	rows, err := RedistributionCost(n, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	mail, rumorHalf, rumorOne := rows[0], rows[1], rows[2]
	// The storm: ~n/2 disagreeing exchanges x (n-1) mails = O(n^2).
	if mail.Messages < float64(n*n)/4 {
		t.Errorf("mail storm = %.0f messages, want O(n^2)", mail.Messages)
	}
	// Rumor redistribution is orders of magnitude cheaper...
	if rumorHalf.Messages > mail.Messages/5 {
		t.Errorf("rumor redistribution %.0f vs mail %.0f", rumorHalf.Messages, mail.Messages)
	}
	// ...and no more expensive than a single-origin rumor (the paper:
	// "actually generates less network traffic").
	if rumorHalf.Messages > rumorOne.Messages*1.2 {
		t.Errorf("rumor from n/2 (%.0f) should not exceed single-origin (%.0f)",
			rumorHalf.Messages, rumorOne.Messages)
	}
	if !strings.Contains(FormatRedistributionRows(n, rows), "policy") {
		t.Error("format wrong")
	}
}

func TestMailLinkTraffic(t *testing.T) {
	rows, err := MailLinkTraffic(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	mail, uniform, spatialAE := rows[0], rows[1], rows[2]
	// Direct mail concentrates load near the origin: the max link far
	// exceeds the average.
	if mail.MaxLink < mail.AvgPerLink*5 {
		t.Errorf("mail hot spot missing: max %.1f avg %.1f", mail.MaxLink, mail.AvgPerLink)
	}
	// The spatial distribution unloads the transatlantic link vs both.
	if spatialAE.Bushey >= uniform.Bushey/3 {
		t.Errorf("spatial Bushey %.1f vs uniform %.1f", spatialAE.Bushey, uniform.Bushey)
	}
	if spatialAE.Bushey >= mail.Bushey/2 {
		t.Errorf("spatial Bushey %.1f vs mail %.1f", spatialAE.Bushey, mail.Bushey)
	}
	if !strings.Contains(FormatLinkTrafficRows(rows), "Bushey") {
		t.Error("format wrong")
	}
}

func TestHybridCost(t *testing.T) {
	rows, err := HybridCost(500, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	pure, hybrid := rows[0], rows[1]
	// The point of §1.5: the hybrid needs far fewer database-examining
	// conversations.
	if hybrid.ExpensiveConversations > pure.ExpensiveConversations/3 {
		t.Errorf("hybrid convs %.0f vs pure %.0f — expected a big saving",
			hybrid.ExpensiveConversations, pure.ExpensiveConversations)
	}
	if hybrid.TLast > pure.TLast*4 {
		t.Errorf("hybrid delay %.1f vs pure %.1f", hybrid.TLast, pure.TLast)
	}
	if !strings.Contains(FormatHybridRows(500, rows), "strategy") {
		t.Error("format wrong")
	}
}

func TestRumorMongeringOnCINMatchesTable4(t *testing.T) {
	rumorRows, err := RumorMongeringOnCIN(30, 16, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewCINSpec()
	if err != nil {
		t.Fatal(err)
	}
	aeRows, err := spec.RunCINTable(core.AntiEntropyConfig{Mode: core.PushPull}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rumorRows) != len(aeRows) {
		t.Fatalf("row counts differ: %d vs %d", len(rumorRows), len(aeRows))
	}
	for i, rr := range rumorRows {
		ae := aeRows[i]
		// §3.2: "the traffic and convergence times were nearly identical
		// to the results in Table 4" (conversation traffic; rumor update
		// counts differ by construction).
		if rr.K < 1 || rr.K > 16 {
			t.Errorf("%s: k = %d not small finite", rr.Label, rr.K)
		}
		if math.Abs(rr.TLast-ae.TLast) > ae.TLast*0.35 {
			t.Errorf("%s: rumor t_last %.1f vs anti-entropy %.1f", rr.Label, rr.TLast, ae.TLast)
		}
		if math.Abs(rr.CompareAvg-ae.CompareAvg) > ae.CompareAvg*0.25 {
			t.Errorf("%s: rumor CmpAvg %.2f vs anti-entropy %.2f", rr.Label, rr.CompareAvg, ae.CompareAvg)
		}
	}
	if !strings.Contains(FormatRumorCINRows(rumorRows), "100%") {
		t.Error("format wrong")
	}
}
