package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"epidemic/internal/core"
	"epidemic/internal/parallel"
	"epidemic/internal/spatial"
	"epidemic/internal/topology"
)

// FigureRow reports rumor-mongering failure statistics on one pathological
// topology at one k.
type FigureRow struct {
	K int
	// FailureRate is the fraction of trials in which at least one site
	// never received the update.
	FailureRate float64
	// MeanResidue is the mean fraction of sites missed.
	MeanResidue float64
	Trials      int
}

// Figure1 reproduces the paper's Figure 1 scenario: sites s and t near
// each other, m sites u_1..u_m equidistant and slightly farther away. With
// push rumor mongering and a Q_s(d)^{-2} distribution, s and t have a
// significant probability of talking only to each other for k consecutive
// cycles, killing the rumor before it escapes. The update is injected at
// s; failure probability decreases with k but stays material while m > k.
func Figure1(m, far, trials int, ks []int, seed int64) ([]FigureRow, error) {
	nw, err := topology.PairFan(m, far)
	if err != nil {
		return nil, err
	}
	sel, err := spatial.New(nw, spatial.FormPaper, 2)
	if err != nil {
		return nil, err
	}
	return failureRows(sel, 0 /* inject at s */, trials, ks, seed)
}

// Figure2 reproduces the paper's Figure 2 scenario: a complete binary tree
// of sites plus a satellite site s whose distance to the root exceeds the
// tree height. With push rumor mongering and Q_s(d)^{-2}, an update
// introduced inside the tree can die out before any tree site contacts s.
// The update is injected at a random tree leaf.
func Figure2(depth, trials int, ks []int, seed int64) ([]FigureRow, error) {
	nw, err := topology.TreeWithSatellite(depth)
	if err != nil {
		return nil, err
	}
	sel, err := spatial.New(nw, spatial.FormPaper, 2)
	if err != nil {
		return nil, err
	}
	// Inject at the last leaf (deep in the tree, far from the satellite).
	return failureRows(sel, nw.NumSites()-1, trials, ks, seed)
}

func failureRows(sel spatial.Selector, origin, trials int, ks []int, seed int64) ([]FigureRow, error) {
	rows := make([]FigureRow, 0, len(ks))
	for _, k := range ks {
		cfg := core.RumorConfig{K: k, Counter: true, Feedback: true, Mode: core.Push}
		results, err := parallel.Run(trials, seed+int64(k), func(_ int, rng *rand.Rand) (core.SpreadResult, error) {
			return core.SpreadRumor(cfg, sel, origin, rng)
		})
		if err != nil {
			return nil, err
		}
		failures := 0
		var residue float64
		for _, r := range results {
			if !r.Converged {
				failures++
			}
			residue += r.Residue
		}
		rows = append(rows, FigureRow{
			K:           k,
			FailureRate: float64(failures) / float64(trials),
			MeanResidue: residue / float64(trials),
			Trials:      trials,
		})
	}
	return rows, nil
}

// KForFullDistribution searches for the smallest k at which the given
// variant achieves 100% distribution in every one of `trials` runs — the
// paper's methodology in §3.2 ("once k was adjusted to give 100%
// distribution in each of 200 trials"). It returns maxK+1 if no k ≤ maxK
// suffices.
func KForFullDistribution(cfg core.RumorConfig, sel spatial.Selector, trials, maxK int, seed int64) (int, error) {
	n := sel.NumSites()
	for k := 1; k <= maxK; k++ {
		kcfg := cfg
		kcfg.K = k
		allOK, err := parallel.All(trials, seed+int64(k)*104729, func(_ int, rng *rand.Rand) (bool, error) {
			r, err := core.SpreadRumor(kcfg, sel, rng.Intn(n), rng)
			return r.Converged, err
		})
		if err != nil {
			return 0, err
		}
		if allOK {
			return k, nil
		}
	}
	return maxK + 1, nil
}

// FormatFigureRows renders figure-scenario rows.
func FormatFigureRows(title string, rows []FigureRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%3s  %12s  %12s  %7s\n", "k", "P(failure)", "mean residue", "trials")
	for _, r := range rows {
		fmt.Fprintf(&b, "%3d  %12.3f  %12.4f  %7d\n", r.K, r.FailureRate, r.MeanResidue, r.Trials)
	}
	return b.String()
}
