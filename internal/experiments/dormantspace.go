package experiments

import (
	"fmt"
	"strings"

	"epidemic/internal/core"
)

// DormantSpaceRow quantifies §2.1's space/history tradeoff for one
// retention count r.
type DormantSpaceRow struct {
	// R is the number of retention sites per certificate.
	R int
	// Tau2Days is the dormant window achievable at the same space budget
	// as a single fixed threshold of TauDays: τ2 = (τ−τ1)·n/r.
	Tau2Days int64
	// HistoryDays is the total effective history τ1 + τ2.
	HistoryDays int64
	// LossProbability is 2^-r, the chance a certificate's dormant copies
	// are all lost after one server half-life.
	LossProbability float64
}

// DormantSpace reproduces §2.1's arithmetic for a network of n servers
// whose fixed-threshold scheme kept certificates tauDays (the paper's 30),
// with an active window tau1Days: holding dormant copies at r random
// sites extends the effective history by a factor of n/r at equal space —
// "this would enable us to increase the effective history from 30 days to
// several years".
func DormantSpace(n int, tauDays, tau1Days int64, rs []int) []DormantSpaceRow {
	rows := make([]DormantSpaceRow, 0, len(rs))
	for _, r := range rs {
		tau2 := core.Tau2ForEqualSpace(tauDays, tau1Days, n, r)
		rows = append(rows, DormantSpaceRow{
			R:               r,
			Tau2Days:        tau2,
			HistoryDays:     tau1Days + tau2,
			LossProbability: core.RetentionLossProbability(r),
		})
	}
	return rows
}

// FormatDormantSpaceRows renders the tradeoff table.
func FormatDormantSpaceRows(n int, tauDays, tau1Days int64, rows []DormantSpaceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "dormant death certificates: equal-space history extension (§2.1)\n")
	fmt.Fprintf(&b, "n=%d servers, fixed threshold tau=%dd, active window tau1=%dd\n", n, tauDays, tau1Days)
	fmt.Fprintf(&b, "%3s  %10s  %14s  %12s\n", "r", "tau2", "total history", "P(all lost)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%3d  %8dd  %11.1fyr  %12.2g\n",
			r.R, r.Tau2Days, float64(r.HistoryDays)/365, r.LossProbability)
	}
	return b.String()
}
