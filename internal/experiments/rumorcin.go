package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"epidemic/internal/core"
	"epidemic/internal/parallel"
)

// RumorCINRow is one row of the §3.2 rumor-on-CIN experiment: push-pull
// rumor mongering with k adjusted for 100% distribution, under one spatial
// distribution.
type RumorCINRow struct {
	Label string
	// K is the smallest counter value reaching every site in all trials.
	K int
	// TLast, TAve in cycles; Compare/Update traffic as in Tables 4–5.
	TLast, TAve               float64
	CompareAvg, CompareBushey float64
	UpdateAvg, UpdateBushey   float64
}

// RumorMongeringOnCIN reproduces §3.2's headline: simulating (Feedback,
// Counter, push-pull, No Connection Limit) rumor mongering on the CIN
// topology with increasingly nonuniform spatial distributions, k adjusted
// until every one of kTrials runs achieves 100% distribution — "we found
// that ... the traffic and convergence times were nearly identical to the
// results in Table 4", with the added benefit that rumor comparisons only
// examine hot-rumor lists.
func RumorMongeringOnCIN(kTrials, maxK, trials int, seed int64) ([]RumorCINRow, error) {
	spec, err := NewCINSpec()
	if err != nil {
		return nil, err
	}
	n := spec.CIN.NumSites()
	nLinks := float64(spec.CIN.Graph().NumLinks())
	base := core.RumorConfig{Counter: true, Feedback: true, Mode: core.PushPull}

	rows := make([]RumorCINRow, 0, len(spec.Selectors))
	for si, ls := range spec.Selectors {
		k, err := KForFullDistribution(base, ls.Selector, kTrials, maxK, seed+int64(si))
		if err != nil {
			return nil, err
		}
		if k > maxK {
			return nil, fmt.Errorf("no k <= %d achieves full distribution for %s", maxK, ls.Label)
		}
		cfg := base
		cfg.K = k
		row := RumorCINRow{Label: ls.Label, K: k}
		sel := ls.Selector
		results, err := parallel.Run(trials, seed+int64(si)*104729+7, func(_ int, rng *rand.Rand) (core.SpreadResult, error) {
			return core.SpreadRumor(cfg, sel, rng.Intn(n), rng,
				core.WithLinkAccounting(spec.CIN.Network))
		})
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			cycles := float64(r.Cycles)
			if cycles == 0 {
				cycles = 1
			}
			row.TLast += float64(r.TLast)
			row.TAve += r.TAve
			row.CompareAvg += r.CompareLoad.Total() / nLinks / cycles
			row.CompareBushey += r.CompareLoad.Get(spec.CIN.BusheyLink) / cycles
			row.UpdateAvg += r.UpdateLoad.Total() / nLinks
			row.UpdateBushey += r.UpdateLoad.Get(spec.CIN.BusheyLink)
		}
		f := float64(trials)
		row.TLast /= f
		row.TAve /= f
		row.CompareAvg /= f
		row.CompareBushey /= f
		row.UpdateAvg /= f
		row.UpdateBushey /= f
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatRumorCINRows renders the §3.2 table in Table 4's layout plus the
// adjusted k.
func FormatRumorCINRows(rows []RumorCINRow) string {
	var b strings.Builder
	b.WriteString("push-pull rumor mongering on the synthetic CIN, k adjusted for 100% distribution (§3.2)\n")
	fmt.Fprintf(&b, "%-12s %3s %7s %7s | %9s %9s | %9s %9s\n",
		"Distribution", "k", "t_last", "t_ave", "CmpAvg", "CmpBushey", "UpdAvg", "UpdBushey")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %3d %7.1f %7.1f | %9.1f %9.1f | %9.1f %9.1f\n",
			r.Label, r.K, r.TLast, r.TAve, r.CompareAvg, r.CompareBushey, r.UpdateAvg, r.UpdateBushey)
	}
	return b.String()
}
