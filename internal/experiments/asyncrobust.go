package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"epidemic/internal/async"
	"epidemic/internal/core"
	"epidemic/internal/parallel"
	"epidemic/internal/spatial"
)

// AsyncRow compares one rumor variant under the paper's synchronous-cycle
// model against the event-driven asynchronous simulator.
type AsyncRow struct {
	K            int
	SyncResidue  float64
	AsyncResidue float64
	SyncTraffic  float64
	AsyncTraffic float64
	SyncTLast    float64
	AsyncTLast   float64
}

// AsyncRobustness checks that Tables 1-style results survive asynchrony:
// push rumor mongering with feedback and counters, n sites, comparing the
// synchronous simulator against event-driven execution with 30% period
// jitter and 0.1-period message latency. Delays are in mean periods
// (= synchronous cycles).
func AsyncRobustness(n, trials int, ks []int, seed int64) ([]AsyncRow, error) {
	sel := spatial.Uniform(n)
	rows := make([]AsyncRow, 0, len(ks))
	for _, k := range ks {
		row := AsyncRow{K: k}
		syncCfg := core.RumorConfig{K: k, Counter: true, Feedback: true, Mode: core.Push}
		asyncCfg := async.Config{Rumor: syncCfg, MeanPeriod: 1, Jitter: 0.3, Latency: 0.1}

		type pair struct {
			sync  core.SpreadResult
			async async.Result
		}
		results, err := parallel.Run(trials, seed+int64(k), func(_ int, rng *rand.Rand) (pair, error) {
			sr, err := core.SpreadRumor(syncCfg, sel, rng.Intn(n), rng)
			if err != nil {
				return pair{}, err
			}
			ar, err := async.SpreadRumorAsync(asyncCfg, sel, rng.Intn(n), rng)
			if err != nil {
				return pair{}, err
			}
			return pair{sr, ar}, nil
		})
		if err != nil {
			return nil, err
		}
		for _, p := range results {
			row.SyncResidue += p.sync.Residue
			row.AsyncResidue += p.async.Residue
			row.SyncTraffic += p.sync.Traffic
			row.AsyncTraffic += p.async.Traffic
			row.SyncTLast += float64(p.sync.TLast)
			row.AsyncTLast += p.async.TLast
		}
		f := float64(trials)
		row.SyncResidue /= f
		row.AsyncResidue /= f
		row.SyncTraffic /= f
		row.AsyncTraffic /= f
		row.SyncTLast /= f
		row.AsyncTLast /= f
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAsyncRows renders the synchronous/asynchronous comparison.
func FormatAsyncRows(rows []AsyncRow) string {
	var b strings.Builder
	b.WriteString("synchronous cycles vs event-driven asynchrony (push, feedback+counter)\n")
	fmt.Fprintf(&b, "%3s  %10s %10s  %8s %8s  %8s %8s\n",
		"k", "s sync", "s async", "m sync", "m async", "tl sync", "tl async")
	for _, r := range rows {
		fmt.Fprintf(&b, "%3d  %10.2e %10.2e  %8.2f %8.2f  %8.1f %8.1f\n",
			r.K, r.SyncResidue, r.AsyncResidue, r.SyncTraffic, r.AsyncTraffic, r.SyncTLast, r.AsyncTLast)
	}
	return b.String()
}
