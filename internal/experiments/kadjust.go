package experiments

import (
	"fmt"
	"strings"

	"epidemic/internal/core"
	"epidemic/internal/spatial"
	"epidemic/internal/topology"
)

// KAdjustRow reports §3.2's methodology: the smallest k at which a rumor
// variant achieves 100% distribution in every trial on the CIN topology
// under a given spatial distribution.
type KAdjustRow struct {
	Mode  core.Mode
	A     float64 // 0 = uniform
	K     int     // smallest sufficient k; MaxK+1 if none was
	MaxK  int
	Found bool
}

// KAdjustment reproduces §3.2: for push-pull rumor mongering, a small
// finite k compensates for increasingly nonuniform spatial distributions;
// for pure push, the required k explodes (the paper measured k=36 at
// a=1.2 and gave up beyond). A reduced CIN keeps the search tractable;
// maxK caps the push search the way the paper's overnight runs did.
func KAdjustment(trials, maxK int, seed int64) ([]KAdjustRow, error) {
	cin, err := topology.NewCINFromConfig(topology.CINConfig{
		GridW: 4, GridH: 4, NASitesPerCluster: 5,
		Chains: 1, ChainLen: 2,
		EUClusters: 2, EUSitesPerCluster: 5,
	})
	if err != nil {
		return nil, err
	}
	var rows []KAdjustRow
	for _, mode := range []core.Mode{core.PushPull, core.Push} {
		for _, a := range []float64{0, 1.2, 2.0} {
			var sel spatial.Selector
			if a == 0 {
				sel = spatial.Uniform(cin.NumSites())
			} else {
				sel, err = spatial.New(cin.Network, spatial.FormPaper, a)
				if err != nil {
					return nil, err
				}
			}
			cfg := core.RumorConfig{Counter: true, Feedback: true, Mode: mode}
			k, err := KForFullDistribution(cfg, sel, trials, maxK, seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, KAdjustRow{Mode: mode, A: a, K: k, MaxK: maxK, Found: k <= maxK})
		}
	}
	return rows, nil
}

// FormatKAdjustRows renders the k-adjustment table.
func FormatKAdjustRows(rows []KAdjustRow) string {
	var b strings.Builder
	b.WriteString("k adjusted for 100% distribution on the CIN (§3.2)\n")
	fmt.Fprintf(&b, "%-10s %8s  %s\n", "mode", "spatial", "smallest sufficient k")
	for _, r := range rows {
		label := "uniform"
		if r.A > 0 {
			label = fmt.Sprintf("a = %.1f", r.A)
		}
		kStr := fmt.Sprintf("%d", r.K)
		if !r.Found {
			kStr = fmt.Sprintf("> %d (abandoned)", r.MaxK)
		}
		fmt.Fprintf(&b, "%-10s %8s  %s\n", r.Mode, label, kStr)
	}
	return b.String()
}
