package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"epidemic/internal/core"
	"epidemic/internal/parallel"
	"epidemic/internal/spatial"
)

// MethodRow compares one update-distribution method from §1.
type MethodRow struct {
	Method string
	// Residue is the mean fraction of sites left without the update when
	// the method finishes (before any backup runs).
	Residue float64
	// Traffic is messages per site.
	Traffic float64
	// TLast is the delay until the last delivery, in cycles.
	TLast float64
	// Reliable marks methods that guarantee eventual full coverage.
	Reliable bool
}

// MethodComparison runs the paper's three basic mechanisms side by side
// on n sites for a single update: direct mail over a mail system losing
// mailLoss of messages (§1.2), anti-entropy (§1.3), and rumor mongering
// (§1.4). It makes §1's tradeoff concrete: mail is fast and O(n) but
// unreliable; anti-entropy is reliable but examines whole databases every
// cycle; rumors are nearly as fast as mail with bounded traffic and a
// small, tunable failure probability.
func MethodComparison(n, trials int, mailLoss float64, seed int64) ([]MethodRow, error) {
	sel := spatial.Uniform(n)

	// Direct mail: the entry site posts n-1 messages; each is lost
	// independently with probability mailLoss; all survivors arrive in
	// one cycle.
	mail := MethodRow{Method: fmt.Sprintf("direct mail (%.0f%% loss)", mailLoss*100), TLast: 1}
	missed, err := parallel.Run(trials, seed, func(_ int, rng *rand.Rand) (int, error) {
		m := 0
		for i := 0; i < n-1; i++ {
			if rng.Float64() < mailLoss {
				m++
			}
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	for _, m := range missed {
		mail.Residue += float64(m) / float64(n)
		mail.Traffic += float64(n-1) / float64(n)
	}
	mail.Residue /= float64(trials)
	mail.Traffic /= float64(trials)

	// Anti-entropy push-pull. Conversations examine the whole database;
	// Traffic here counts only update transfers (n-1 per run), matching
	// the tables' update-traffic metric.
	ae := MethodRow{Method: "anti-entropy (push-pull)", Reliable: true}
	aeResults, err := parallel.Run(trials, seed+1, func(_ int, rng *rand.Rand) (core.SpreadResult, error) {
		return core.SpreadAntiEntropy(core.AntiEntropyConfig{Mode: core.PushPull}, sel, rng.Intn(n), rng)
	})
	if err != nil {
		return nil, err
	}
	for _, r := range aeResults {
		ae.Traffic += r.Traffic
		ae.TLast += float64(r.TLast)
	}
	ae.Traffic /= float64(trials)
	ae.TLast /= float64(trials)

	// Rumor mongering, the paper's recommended push-pull feedback counter
	// k=3.
	rm := MethodRow{Method: "rumor mongering (push-pull, k=3)"}
	cfg := core.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: core.PushPull}
	rmResults, err := parallel.Run(trials, seed+2, func(_ int, rng *rand.Rand) (core.SpreadResult, error) {
		return core.SpreadRumor(cfg, sel, rng.Intn(n), rng)
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rmResults {
		rm.Residue += r.Residue
		rm.Traffic += r.Traffic
		rm.TLast += float64(r.TLast)
	}
	rm.Residue /= float64(trials)
	rm.Traffic /= float64(trials)
	rm.TLast /= float64(trials)

	return []MethodRow{mail, ae, rm}, nil
}

// FormatMethodRows renders the comparison.
func FormatMethodRows(rows []MethodRow) string {
	var b strings.Builder
	b.WriteString("the three basic mechanisms on one update (§1)\n")
	fmt.Fprintf(&b, "%-34s %10s %9s %8s  %s\n", "method", "residue", "traffic", "t_last", "eventual coverage")
	for _, r := range rows {
		rel := "needs backup"
		if r.Reliable {
			rel = "guaranteed"
		}
		fmt.Fprintf(&b, "%-34s %10.2e %9.2f %8.1f  %s\n", r.Method, r.Residue, r.Traffic, r.TLast, rel)
	}
	return b.String()
}
