package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"epidemic/internal/core"
	"epidemic/internal/parallel"
	"epidemic/internal/spatial"
	"epidemic/internal/topology"
)

// CINRow is one row of Tables 4 and 5: anti-entropy on the (synthetic)
// CIN topology under one spatial distribution.
type CINRow struct {
	// Label names the distribution: "uniform" or "a = 1.2" etc.
	Label string
	TLast float64
	TAve  float64
	// CompareAvg and CompareBushey are anti-entropy conversations per
	// cycle, averaged over all links / on the transatlantic Bushey link.
	CompareAvg, CompareBushey float64
	// UpdateAvg and UpdateBushey count the conversations in which the
	// update had to be sent, per link, totalled over the whole run.
	UpdateAvg, UpdateBushey float64
}

// CINSpec bundles the prepared selectors for the CIN experiments so Table4
// and Table5 can share the (expensive) topology and table construction.
type CINSpec struct {
	CIN       *topology.CIN
	Selectors []LabeledSelector
}

// LabeledSelector pairs a partner-selection distribution with its table
// label.
type LabeledSelector struct {
	Label    string
	Selector spatial.Selector
}

// NewCINSpec builds the synthetic CIN and the six distributions of
// Tables 4–5: uniform plus equation (3.1.1) with a = 1.2 .. 2.0.
func NewCINSpec() (*CINSpec, error) {
	cin, err := topology.NewCIN()
	if err != nil {
		return nil, err
	}
	spec := &CINSpec{CIN: cin}
	spec.Selectors = append(spec.Selectors, LabeledSelector{
		Label:    "uniform",
		Selector: spatial.Uniform(cin.NumSites()),
	})
	for _, a := range []float64{1.2, 1.4, 1.6, 1.8, 2.0} {
		sel, err := spatial.New(cin.Network, spatial.FormPaper, a)
		if err != nil {
			return nil, err
		}
		spec.Selectors = append(spec.Selectors, LabeledSelector{
			Label:    fmt.Sprintf("a = %.1f", a),
			Selector: sel,
		})
	}
	return spec, nil
}

// RunCINTable runs `trials` single-update anti-entropy spreads per
// distribution, each injected at a random site, and averages the Table 4/5
// quantities. This is the engine behind Table4 and Table5. Trials run on
// the parallel engine; per-trial link loads are reduced in trial order.
func (spec *CINSpec) RunCINTable(cfg core.AntiEntropyConfig, trials int, seed int64) ([]CINRow, error) {
	nLinks := float64(spec.CIN.Graph().NumLinks())
	n := spec.CIN.NumSites()
	rows := make([]CINRow, 0, len(spec.Selectors))
	for si, ls := range spec.Selectors {
		sel := ls.Selector
		results, err := parallel.Run(trials, seed+int64(si)*7919, func(_ int, rng *rand.Rand) (core.SpreadResult, error) {
			return core.SpreadAntiEntropy(cfg, sel, rng.Intn(n), rng,
				core.WithLinkAccounting(spec.CIN.Network))
		})
		if err != nil {
			return nil, err
		}
		var row CINRow
		row.Label = ls.Label
		for _, r := range results {
			cycles := float64(r.Cycles)
			if cycles == 0 {
				cycles = 1
			}
			row.TLast += float64(r.TLast)
			row.TAve += r.TAve
			row.CompareAvg += r.CompareLoad.Total() / nLinks / cycles
			row.CompareBushey += r.CompareLoad.Get(spec.CIN.BusheyLink) / cycles
			row.UpdateAvg += r.UpdateLoad.Total() / nLinks
			row.UpdateBushey += r.UpdateLoad.Get(spec.CIN.BusheyLink)
		}
		f := float64(trials)
		row.TLast /= f
		row.TAve /= f
		row.CompareAvg /= f
		row.CompareBushey /= f
		row.UpdateAvg /= f
		row.UpdateBushey /= f
		rows = append(rows, row)
	}
	return rows, nil
}

// Table4 reproduces Table 4: push-pull anti-entropy, no connection limit,
// on the synthetic CIN. The paper averages 250 runs.
func Table4(trials int, seed int64) ([]CINRow, error) {
	spec, err := NewCINSpec()
	if err != nil {
		return nil, err
	}
	return spec.RunCINTable(core.AntiEntropyConfig{Mode: core.PushPull}, trials, seed)
}

// Table5 reproduces Table 5: the same experiment under the most
// pessimistic connection assumption, connection limit 1 and hunt limit 0.
func Table5(trials int, seed int64) ([]CINRow, error) {
	spec, err := NewCINSpec()
	if err != nil {
		return nil, err
	}
	cfg := core.AntiEntropyConfig{Mode: core.PushPull, ConnLimit: 1, HuntLimit: 0}
	return spec.RunCINTable(cfg, trials, seed)
}

// FormatCINRows renders rows the way the paper prints Tables 4–5.
func FormatCINRows(title string, rows []CINRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %7s %7s | %9s %9s | %9s %9s\n",
		"Distribution", "t_last", "t_ave", "CmpAvg", "CmpBushey", "UpdAvg", "UpdBushey")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %7.1f %7.1f | %9.1f %9.1f | %9.1f %9.1f\n",
			r.Label, r.TLast, r.TAve, r.CompareAvg, r.CompareBushey, r.UpdateAvg, r.UpdateBushey)
	}
	return b.String()
}
