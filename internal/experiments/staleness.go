package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"epidemic/internal/core"
	"epidemic/internal/parallel"
	"epidemic/internal/sim"
	"epidemic/internal/store"
	"epidemic/internal/workload"
)

// StalenessRow measures replica currency at one update rate.
type StalenessRow struct {
	// UpdatesPerCycle is the injected load.
	UpdatesPerCycle float64
	// Currency is the fraction of (replica, key) pairs holding the
	// globally newest value, averaged over the measurement cycles.
	Currency float64
	// FullyConsistentFraction is the fraction of measurement cycles in
	// which every replica agreed on everything.
	FullyConsistentFraction float64
}

// Staleness quantifies the paper's §0 claim that under "a reasonable
// update rate, most information at any given site is current": a cluster
// under continuous load, measured each cycle for the fraction of replica
// entries that already hold the newest value of their key.
func Staleness(n int, rates []float64, cycles int, seed int64) ([]StalenessRow, error) {
	// Each rate runs its own cluster; the rates fan out as parallel
	// "trials" while every cluster keeps its historical seed derivation.
	return parallel.Run(len(rates), seed, func(ri int, _ *rand.Rand) (StalenessRow, error) {
		rate := rates[ri]
		c, err := sim.NewCluster(sim.ClusterConfig{
			N:              n,
			Rumor:          core.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: core.PushPull},
			Redistribution: core.RedistributeNone,
			Seed:           seed,
		})
		if err != nil {
			return StalenessRow{}, err
		}
		gen, err := workload.NewGenerator(workload.Config{
			KeySpace:        100,
			UpdatesPerCycle: rate,
			Seed:            seed + int64(rate*1000),
		})
		if err != nil {
			return StalenessRow{}, err
		}
		// newest tracks the globally newest entry per key.
		newest := make(map[string]store.Entry)
		inject := func() {
			for _, e := range gen.Step(c) {
				if cur, ok := newest[e.Key]; !ok || cur.Stamp.Less(e.Stamp) {
					newest[e.Key] = e
				}
			}
		}
		// Warm-up.
		for i := 0; i < 15; i++ {
			inject()
			c.StepRumor()
			c.StepAntiEntropy()
		}
		var currencySum float64
		consistent := 0
		for i := 0; i < cycles; i++ {
			inject()
			c.StepRumor()
			c.StepAntiEntropy()
			currencySum += measureCurrency(c, newest)
			if c.Consistent() {
				consistent++
			}
		}
		return StalenessRow{
			UpdatesPerCycle:         rate,
			Currency:                currencySum / float64(cycles),
			FullyConsistentFraction: float64(consistent) / float64(cycles),
		}, nil
	})
}

// measureCurrency returns the fraction of (replica, key) pairs whose entry
// equals the globally newest entry for that key.
func measureCurrency(c *sim.Cluster, newest map[string]store.Entry) float64 {
	if len(newest) == 0 {
		return 1
	}
	total := c.N() * len(newest)
	current := 0
	for key, want := range newest {
		for i := 0; i < c.N(); i++ {
			got, ok := c.Node(i).Store().Get(key)
			if ok && got.Stamp == want.Stamp {
				current++
			}
		}
	}
	return float64(current) / float64(total)
}

// FormatStalenessRows renders the staleness sweep.
func FormatStalenessRows(rows []StalenessRow) string {
	var b strings.Builder
	b.WriteString("replica currency under continuous load (§0's relaxed consistency)\n")
	fmt.Fprintf(&b, "%14s  %10s  %22s\n", "updates/cycle", "currency", "fully-consistent frac")
	for _, r := range rows {
		fmt.Fprintf(&b, "%14.1f  %10.4f  %22.2f\n", r.UpdatesPerCycle, r.Currency, r.FullyConsistentFraction)
	}
	return b.String()
}
