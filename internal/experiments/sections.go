package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"epidemic/internal/analytic"
	"epidemic/internal/core"
	"epidemic/internal/parallel"
	"epidemic/internal/spatial"
	"epidemic/internal/topology"
)

// ConvergenceRow compares §1.3's push and pull residual recurrences with
// simulation at one cycle index.
type ConvergenceRow struct {
	Cycle              int
	PushModel, PushSim float64
	PullModel, PullSim float64
}

// PushPullConvergence reproduces §1.3's residual analysis: starting with a
// fraction p0 of sites susceptible, pull converges as p² while push decays
// only as e^{-1} per cycle. Simulated curves are averaged over trials.
func PushPullConvergence(n int, p0 float64, cycles, trials int, seed int64) []ConvergenceRow {
	pushSim := simulateResidualDecay(n, p0, cycles, trials, seed, true)
	pullSim := simulateResidualDecay(n, p0, cycles, trials, seed+1, false)

	rows := make([]ConvergenceRow, 0, cycles+1)
	pushP, pullP := p0, p0
	for c := 0; c <= cycles; c++ {
		rows = append(rows, ConvergenceRow{
			Cycle:     c,
			PushModel: pushP,
			PushSim:   pushSim[c],
			PullModel: pullP,
			PullSim:   pullSim[c],
		})
		pushP = analytic.PushStep(pushP, n)
		pullP = analytic.PullStep(pullP)
	}
	return rows
}

// simulateResidualDecay runs uniform anti-entropy cycles on n sites of
// which ceil(p0·n) start susceptible, recording the susceptible fraction
// after each cycle. Each trial produces its own decay curve; curves are
// averaged in trial order.
func simulateResidualDecay(n int, p0 float64, cycles, trials int, seed int64, push bool) []float64 {
	curves, _ := parallel.Run(trials, seed, func(_ int, rng *rand.Rand) ([]float64, error) {
		curve := make([]float64, cycles+1)
		knows := make([]bool, n)
		susceptible := int(math.Ceil(p0 * float64(n)))
		for i := susceptible; i < n; i++ {
			knows[i] = true
		}
		rng.Shuffle(n, func(i, j int) { knows[i], knows[j] = knows[j], knows[i] })
		count := 0
		for _, k := range knows {
			if !k {
				count++
			}
		}
		curve[0] = float64(count) / float64(n)
		next := make([]bool, n)
		for c := 1; c <= cycles; c++ {
			copy(next, knows)
			for i := 0; i < n; i++ {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				if push && knows[i] && !knows[j] {
					next[j] = true
				}
				if !push && knows[j] && !knows[i] {
					next[i] = true
				}
			}
			copy(knows, next)
			count = 0
			for _, k := range knows {
				if !k {
					count++
				}
			}
			curve[c] = float64(count) / float64(n)
		}
		return curve, nil
	})
	out := make([]float64, cycles+1)
	for _, curve := range curves {
		for i, v := range curve {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(trials)
	}
	return out
}

// FormatConvergenceRows renders the §1.3 recurrence comparison.
func FormatConvergenceRows(rows []ConvergenceRow) string {
	var b strings.Builder
	b.WriteString("push vs pull residual convergence (§1.3)\n")
	fmt.Fprintf(&b, "%5s  %10s %10s  %10s %10s\n", "cycle", "push model", "push sim", "pull model", "pull sim")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5d  %10.2e %10.2e  %10.2e %10.2e\n", r.Cycle, r.PushModel, r.PushSim, r.PullModel, r.PullSim)
	}
	return b.String()
}

// LawRow is one point of the s = e^{-m} residue/traffic law (§1.4).
type LawRow struct {
	Variant string
	K       int
	Residue float64
	Traffic float64
	// Lambda is the fitted exponent -ln(s)/m; 1.0 is the push law,
	// 1/(1−e^{-1}) ≈ 1.58 the connection-limited push law.
	Lambda float64
}

// meanRumorStats averages residue and traffic over parallel trials of
// one rumor variant, injecting each update at a random site.
func meanRumorStats(cfg core.RumorConfig, sel spatial.Selector, trials int, seed int64) (s, m float64, err error) {
	n := sel.NumSites()
	results, err := parallel.Run(trials, seed, func(_ int, rng *rand.Rand) (core.SpreadResult, error) {
		return core.SpreadRumor(cfg, sel, rng.Intn(n), rng)
	})
	if err != nil {
		return 0, 0, err
	}
	for _, r := range results {
		s += r.Residue
		m += r.Traffic
	}
	f := float64(trials)
	return s / f, m / f, nil
}

// ResidueTrafficLaw measures residue against traffic across the §1.4 push
// variants, demonstrating that they share s = e^{-m}.
func ResidueTrafficLaw(n, trials int, seed int64) ([]LawRow, error) {
	variants := []struct {
		name string
		cfg  core.RumorConfig
	}{
		{"feedback+counter", core.RumorConfig{Counter: true, Feedback: true, Mode: core.Push}},
		{"blind+counter", core.RumorConfig{Counter: true, Mode: core.Push}},
		{"feedback+coin", core.RumorConfig{Feedback: true, Mode: core.Push}},
		{"blind+coin", core.RumorConfig{Mode: core.Push}},
	}
	sel := spatial.Uniform(n)
	var rows []LawRow
	for vi, v := range variants {
		for _, k := range []int{2, 3, 4} {
			cfg := v.cfg
			cfg.K = k
			s, m, err := meanRumorStats(cfg, sel, trials, seed+int64(vi*10+k))
			if err != nil {
				return nil, err
			}
			lambda := math.NaN()
			if s > 0 && m > 0 {
				lambda = -math.Log(s) / m
			}
			rows = append(rows, LawRow{Variant: v.name, K: k, Residue: s, Traffic: m, Lambda: lambda})
		}
	}
	return rows, nil
}

// ConnectionLimitLaw measures the §1.4 connection-limit effects: push with
// connection limit 1 beats s=e^{-m} (λ → 1/(1−e^{-1})), pull with a limit
// degrades, and hunting repairs it.
func ConnectionLimitLaw(n, trials int, seed int64) ([]LawRow, error) {
	variants := []struct {
		name string
		cfg  core.RumorConfig
	}{
		{"push unlimited", core.RumorConfig{Counter: true, Feedback: true, Mode: core.Push}},
		{"push climit=1", core.RumorConfig{Counter: true, Feedback: true, Mode: core.Push, ConnLimit: 1}},
		{"push climit=1 hunt=4", core.RumorConfig{Counter: true, Feedback: true, Mode: core.Push, ConnLimit: 1, HuntLimit: 4}},
		{"push climit=1 hunt=inf", core.RumorConfig{Counter: true, Feedback: true, Mode: core.Push, ConnLimit: 1, HuntLimit: core.HuntUnlimited}},
		{"pull unlimited", core.RumorConfig{Counter: true, Feedback: true, Mode: core.Pull}},
		{"pull climit=1", core.RumorConfig{Counter: true, Feedback: true, Mode: core.Pull, ConnLimit: 1}},
		{"pull climit=1 hunt=4", core.RumorConfig{Counter: true, Feedback: true, Mode: core.Pull, ConnLimit: 1, HuntLimit: 4}},
	}
	sel := spatial.Uniform(n)
	var rows []LawRow
	for vi, v := range variants {
		for _, k := range []int{2, 3} {
			cfg := v.cfg
			cfg.K = k
			s, m, err := meanRumorStats(cfg, sel, trials, seed+int64(vi*10+k))
			if err != nil {
				return nil, err
			}
			lambda := math.NaN()
			if s > 0 && m > 0 {
				lambda = -math.Log(s) / m
			}
			rows = append(rows, LawRow{Variant: v.name, K: k, Residue: s, Traffic: m, Lambda: lambda})
		}
	}
	return rows, nil
}

// MinimizationComparison compares push-pull counters with and without
// §1.4's counter minimization ("it results in the smallest residue we have
// seen so far").
func MinimizationComparison(n, trials int, seed int64) ([]LawRow, error) {
	variants := []struct {
		name string
		cfg  core.RumorConfig
	}{
		{"push-pull counter", core.RumorConfig{Counter: true, Feedback: true, Mode: core.PushPull}},
		{"push-pull minimization", core.RumorConfig{Counter: true, Feedback: true, Mode: core.PushPull, Minimization: true}},
	}
	sel := spatial.Uniform(n)
	var rows []LawRow
	for vi, v := range variants {
		for _, k := range []int{2, 3} {
			cfg := v.cfg
			cfg.K = k
			s, m, err := meanRumorStats(cfg, sel, trials, seed+int64(vi+1))
			if err != nil {
				return nil, err
			}
			rows = append(rows, LawRow{Variant: v.name, K: k, Residue: s, Traffic: m})
		}
	}
	return rows, nil
}

// FormatLawRows renders residue/traffic law rows.
func FormatLawRows(title string, rows []LawRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-24s %3s  %10s  %8s  %8s\n", "variant", "k", "residue", "traffic", "lambda")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %3d  %10.2e  %8.2f  %8.2f\n", r.Variant, r.K, r.Residue, r.Traffic, r.Lambda)
	}
	return b.String()
}

// LineScalingRow measures §3's traffic/convergence tradeoff for a d^{-a}
// distribution on a line of n sites.
type LineScalingRow struct {
	N int
	A float64
	// TrafficPerLink is the average per-link per-cycle conversation load.
	TrafficPerLink float64
	// TLast is the convergence time in cycles.
	TLast float64
	// PredictedOrder is the paper's T(n) class for this a.
	PredictedOrder string
}

// LineScaling sweeps n and a on a linear network with anti-entropy
// (push-pull) and d^{-a} partner selection, reproducing §3's T(n) table
// empirically: tight distributions (a=2) keep per-link traffic ~O(log n)
// while convergence stays polylogarithmic; uniform (a=0) burns O(n) per
// link.
func LineScaling(ns []int, as []float64, trials int, seed int64) ([]LineScalingRow, error) {
	var rows []LineScalingRow
	for _, n := range ns {
		nw, err := topology.Line(n)
		if err != nil {
			return nil, err
		}
		for _, a := range as {
			var sel spatial.Selector
			if a == 0 {
				sel = spatial.Uniform(n)
			} else {
				sel, err = spatial.New(nw, spatial.FormDistance, a)
				if err != nil {
					return nil, err
				}
			}
			order, _ := analytic.LineTrafficExponent(a)
			if a == 0 {
				order = "O(n)"
			}
			lsel := sel
			results, err := parallel.Run(trials, seed+int64(n)*31+int64(a*100), func(_ int, rng *rand.Rand) (core.SpreadResult, error) {
				return core.SpreadAntiEntropy(core.AntiEntropyConfig{Mode: core.PushPull}, lsel,
					rng.Intn(n), rng, core.WithLinkAccounting(nw))
			})
			if err != nil {
				return nil, err
			}
			var traffic, tlast float64
			for _, r := range results {
				cycles := float64(r.Cycles)
				if cycles == 0 {
					cycles = 1
				}
				traffic += r.CompareLoad.Total() / float64(nw.Graph().NumLinks()) / cycles
				tlast += float64(r.TLast)
			}
			rows = append(rows, LineScalingRow{
				N: n, A: a,
				TrafficPerLink: traffic / float64(trials),
				TLast:          tlast / float64(trials),
				PredictedOrder: order,
			})
		}
	}
	return rows, nil
}

// FormatLineScalingRows renders the line-topology sweep.
func FormatLineScalingRows(rows []LineScalingRow) string {
	var b strings.Builder
	b.WriteString("spatial distributions on a line (§3): per-link traffic and convergence\n")
	fmt.Fprintf(&b, "%6s  %5s  %14s  %8s  %s\n", "n", "a", "traffic/link", "t_last", "paper T(n)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d  %5.1f  %14.2f  %8.1f  %s\n", r.N, r.A, r.TrafficPerLink, r.TLast, r.PredictedOrder)
	}
	return b.String()
}
