package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"epidemic/internal/core"
	"epidemic/internal/parallel"
	"epidemic/internal/spatial"
)

// RedistributionRow measures the network cost of one §1.5 redistribution
// policy when an update is already known at half the sites.
type RedistributionRow struct {
	Policy string
	// Messages is mail posted (mail policy) or rumor updates sent (rumor
	// policies).
	Messages float64
	// Residue is the fraction of sites left without the update when the
	// mechanism finishes (anti-entropy would mop up afterwards).
	Residue float64
}

// RedistributionCost reproduces the Clearinghouse remail disaster (§0.1,
// §1.5). The nightly anti-entropy pass finds an update known at n/2
// sites; every exchange that discovers a disagreement triggers the
// redistribution policy:
//
//   - remail: each of the O(n) disagreeing exchanges mails the value to
//     all n sites — "for a domain stored at 300 sites, 90,000 mail
//     messages might be introduced each night". Mail is queued overnight,
//     so the storm is not suppressed by repairs landing early.
//   - rumor: the update becomes a hot rumor at every site that knows it.
//     O(n) initial copies generate *less* traffic than a single-origin
//     rumor, because most pushes immediately hit knowers and the counters
//     kill the rumor fast.
//
// The single-origin rumor row is the reference the paper compares against.
func RedistributionCost(n, trials int, seed int64) ([]RedistributionRow, error) {
	sel := spatial.Uniform(n)
	cfg := core.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: core.PushPull}

	var mailRow RedistributionRow
	mailRow.Policy = "remail"
	mailCounts, err := parallel.Run(trials, seed, func(_ int, rng *rand.Rand) (int, error) {
		// One synchronous anti-entropy round with the update at n/2
		// random sites; every disagreeing exchange queues n-1 mails.
		know := make([]bool, n)
		perm := rng.Perm(n)
		for _, i := range perm[:n/2] {
			know[i] = true
		}
		disagreements := 0
		for i := 0; i < n; i++ {
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			if know[i] != know[j] {
				disagreements++
			}
		}
		// The mail itself reaches everyone; residue 0.
		return disagreements * (n - 1), nil
	})
	if err != nil {
		return nil, err
	}
	for _, d := range mailCounts {
		mailRow.Messages += float64(d)
	}
	mailRow.Messages /= float64(trials)

	var rumorHalf RedistributionRow
	rumorHalf.Policy = "rumor from n/2 sites"
	halfResults, err := parallel.Run(trials, seed+1, func(_ int, rng *rand.Rand) (core.SpreadResult, error) {
		perm := rng.Perm(n)
		infectives := perm[:n/2-1] // plus the origin passed separately
		return core.SpreadRumor(cfg, sel, rng.Intn(n), rng,
			core.WithInitialInfectives(infectives))
	})
	if err != nil {
		return nil, err
	}
	for _, r := range halfResults {
		rumorHalf.Messages += float64(r.UpdatesSent)
		rumorHalf.Residue += r.Residue
	}
	rumorHalf.Messages /= float64(trials)
	rumorHalf.Residue /= float64(trials)

	var rumorOne RedistributionRow
	rumorOne.Policy = "rumor from 1 site (ref)"
	oneResults, err := parallel.Run(trials, seed+2, func(_ int, rng *rand.Rand) (core.SpreadResult, error) {
		return core.SpreadRumor(cfg, sel, rng.Intn(n), rng)
	})
	if err != nil {
		return nil, err
	}
	for _, r := range oneResults {
		rumorOne.Messages += float64(r.UpdatesSent)
		rumorOne.Residue += r.Residue
	}
	rumorOne.Messages /= float64(trials)
	rumorOne.Residue /= float64(trials)

	return []RedistributionRow{mailRow, rumorHalf, rumorOne}, nil
}

// FormatRedistributionRows renders the comparison.
func FormatRedistributionRows(n int, rows []RedistributionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "redistributing an update known at n/2 of %d sites (§0.1, §1.5)\n", n)
	fmt.Fprintf(&b, "%-26s  %12s  %10s\n", "policy", "messages", "residue")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s  %12.0f  %10.2e\n", r.Policy, r.Messages, r.Residue)
	}
	return b.String()
}
