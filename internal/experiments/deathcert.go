package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"epidemic/internal/core"
	"epidemic/internal/parallel"
	"epidemic/internal/sim"
	"epidemic/internal/store"
)

// DeathCertRow reports one deletion scenario of §2.
type DeathCertRow struct {
	Scenario string
	// ResurrectedReplicas counts replicas showing the deleted item alive
	// at the end of the scenario (0 is the goal).
	ResurrectedReplicas int
	// Replicas is the cluster size.
	Replicas int
	// Note carries scenario-specific detail.
	Note string
}

// DeathCertificates reproduces §2's deletion semantics on a full cluster:
//
//  1. Deleting with certificates discarded immediately lets an obsolete
//     copy resurrect the item ("old copies ... spread back").
//  2. Death certificates held past the obsolete copy's reappearance cancel
//     it.
//  3. Dormant certificates with activation timestamps (§2.1–2.3) cancel a
//     very old obsolete copy even after most sites discarded the
//     certificate, by awakening at a retention site.
func DeathCertificates(n int, seed int64) ([]DeathCertRow, error) {
	// The three scenarios are independent clusters, so they run as three
	// "trials" on the parallel engine (row order is still scenario order).
	return parallel.Run(3, seed, func(scenario int, _ *rand.Rand) (DeathCertRow, error) {
		return deletionScenario(scenario, n, seed)
	})
}

// deletionScenario runs one of the three §2 scenarios on its own cluster.
func deletionScenario(scenario, n int, seed int64) (DeathCertRow, error) {
	var c *sim.Cluster
	var err error
	switch scenario {
	case 0:
		// Certificates expire before the stale copy returns.
		c, err = newDeletionCluster(n, seed, 5 /* tau1 */, 0 /* tau2 */, 0 /* retention */, false)
	case 1:
		// Certificates still held when the stale copy returns.
		c, err = newDeletionCluster(n, seed+1, 1_000_000, 0, 0, false)
	default:
		// Dormant certificates + activation timestamps.
		c, err = newDeletionCluster(n, seed+2, 20 /* tau1 */, 1_000_000 /* tau2 */, 3 /* retention */, true)
	}
	if err != nil {
		return DeathCertRow{}, err
	}
	staleHolder := runDeletionPreamble(c)
	switch scenario {
	case 0:
		// Let every certificate expire everywhere, then heal the partition.
		c.Clock().Advance(50)
		c.StepGC()
		c.SetPartition(staleHolder, false)
		c.RunAntiEntropyToConsistency(60)
		return DeathCertRow{
			Scenario:            "certificates expired early (tau too small)",
			ResurrectedReplicas: c.N() - c.CountDeleted("item"),
			Replicas:            c.N(),
			Note:                "obsolete copy resurrects the item",
		}, nil
	case 1:
		c.Clock().Advance(50)
		c.StepGC()
		c.SetPartition(staleHolder, false)
		c.RunAntiEntropyToConsistency(60)
		return DeathCertRow{
			Scenario:            "certificates retained (large tau)",
			ResurrectedReplicas: c.N() - c.CountDeleted("item"),
			Replicas:            c.N(),
			Note:                "certificate cancels the obsolete copy",
		}, nil
	default:
		// Move far past tau1 so non-retention sites drop their copies.
		c.Clock().Advance(500)
		c.StepGC()
		c.SetPartition(staleHolder, false)
		c.RunAntiEntropyToConsistency(120)
		return DeathCertRow{
			Scenario:            "dormant certificates awaken (tau1+tau2, activation timestamps)",
			ResurrectedReplicas: c.N() - c.CountDeleted("item"),
			Replicas:            c.N(),
			Note:                "retention site reactivates; certificate respreads",
		}, nil
	}
}

// newDeletionCluster builds a cluster configured for the §2 scenarios.
func newDeletionCluster(n int, seed, tau1, tau2 int64, retention int, reactivate bool) (*sim.Cluster, error) {
	return sim.NewCluster(sim.ClusterConfig{
		N:     n,
		Rumor: core.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: core.PushPull},
		Resolve: core.ResolveConfig{
			Mode:              core.PushPull,
			Strategy:          core.CompareFull,
			Tau1:              tau1,
			ReactivateDormant: reactivate,
		},
		Redistribution: core.RedistributeRumor,
		Tau1:           tau1,
		Tau2:           tau2,
		RetentionCount: retention,
		Seed:           seed,
	})
}

// runDeletionPreamble spreads an item everywhere, partitions one stale
// holder away, deletes the item, spreads the certificate to the reachable
// sites, and returns the stale holder's index.
func runDeletionPreamble(c *sim.Cluster) int {
	const staleHolder = 1
	c.Node(0).Update("item", store.Value("v1"))
	c.RunAntiEntropyToConsistency(60)
	c.SetPartition(staleHolder, true)
	c.Node(0).Delete("item")
	c.RunAntiEntropyToConsistency(60)
	return staleHolder
}

// FormatDeathCertRows renders the deletion scenarios.
func FormatDeathCertRows(rows []DeathCertRow) string {
	var b strings.Builder
	b.WriteString("death certificates (§2)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-62s resurrected %d/%d (%s)\n", r.Scenario, r.ResurrectedReplicas, r.Replicas, r.Note)
	}
	return b.String()
}

// BackupRow reports §1.5's anti-entropy backup behaviour.
type BackupRow struct {
	Variant string
	// RumorFailures counts trials where rumor mongering alone left
	// susceptible sites.
	RumorFailures int
	// AfterBackupFailures counts trials still inconsistent after the
	// anti-entropy backup rounds.
	AfterBackupFailures int
	Trials              int
	// MeanBackupCycles is the average number of anti-entropy cycles the
	// backup needed.
	MeanBackupCycles float64
}

// BackupAntiEntropy demonstrates §1.5: an aggressive rumor variant (k=1)
// frequently fails to reach everyone, and a few backup anti-entropy cycles
// always finish the job.
func BackupAntiEntropy(n, trials int, seed int64) (BackupRow, error) {
	row := BackupRow{Variant: "push rumor k=1 + push-pull anti-entropy backup", Trials: trials}
	type trialOut struct {
		rumorFailed  bool
		backupFailed bool
		cycles       float64
	}
	// Each trial builds its own cluster seeded by the trial index (matching
	// the historical seed+t derivation), so trials are independent and
	// parallel-safe.
	results, err := parallel.Run(trials, seed, func(t int, _ *rand.Rand) (trialOut, error) {
		c, err := sim.NewCluster(sim.ClusterConfig{
			N:     n,
			Rumor: core.RumorConfig{K: 1, Counter: true, Feedback: true, Mode: core.Push},
			Seed:  seed + int64(t),
		})
		if err != nil {
			return trialOut{}, err
		}
		var out trialOut
		c.Node(t%n).Update("k", store.Value("v"))
		c.RunRumorToQuiescence(80)
		out.rumorFailed = c.CountWithValue("k", "v") < n
		cycles, ok := c.RunAntiEntropyToConsistency(80)
		out.cycles = float64(cycles)
		out.backupFailed = !ok || c.CountWithValue("k", "v") != n
		return out, nil
	})
	if err != nil {
		return BackupRow{}, err
	}
	var backupCycles float64
	for _, out := range results {
		if out.rumorFailed {
			row.RumorFailures++
		}
		if out.backupFailed {
			row.AfterBackupFailures++
		}
		backupCycles += out.cycles
	}
	row.MeanBackupCycles = backupCycles / float64(trials)
	return row, nil
}

// FormatBackupRow renders the backup experiment.
func FormatBackupRow(r BackupRow) string {
	return fmt.Sprintf(
		"anti-entropy backup (§1.5): %s\n  rumor alone failed %d/%d trials; after backup %d/%d failed; mean backup cycles %.1f\n",
		r.Variant, r.RumorFailures, r.Trials, r.AfterBackupFailures, r.Trials, r.MeanBackupCycles)
}
