package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"epidemic/internal/core"
	"epidemic/internal/parallel"
	"epidemic/internal/spatial"
	"epidemic/internal/topology"
)

// LinkTrafficRow reports the per-link cost of distributing one update to
// every site with one mechanism, in the paper's (links·messages) unit
// (§1.2: "the traffic is proportional to the number of sites times the
// average distance between sites").
type LinkTrafficRow struct {
	Method string
	// AvgPerLink is the total link-messages divided by the number of
	// links.
	AvgPerLink float64
	// Bushey is the load on the primary transatlantic link.
	Bushey float64
	// MaxLink is the most loaded link anywhere.
	MaxLink float64
}

// MailLinkTraffic distributes one update to all sites of the synthetic
// CIN three ways and charges every message to the links it traverses:
// direct mail (each copy travels origin→destination), uniform
// anti-entropy, and spatially distributed anti-entropy. Direct mail and
// uniform anti-entropy pound the transatlantic link with every copy bound
// for the other continent; the spatial distribution routes almost all
// transfer distance over local links.
func MailLinkTraffic(trials int, seed int64) ([]LinkTrafficRow, error) {
	cin, err := topology.NewCIN()
	if err != nil {
		return nil, err
	}
	n := cin.NumSites()
	nLinks := float64(cin.Graph().NumLinks())

	type loadStats struct{ avg, bushey, max float64 }

	var mail LinkTrafficRow
	mail.Method = "direct mail"
	// Each trial charges its own LinkLoad so trials stay independent.
	mailStats, err := parallel.Run(trials, seed, func(_ int, rng *rand.Rand) (loadStats, error) {
		load := topology.NewLinkLoad(cin.Network)
		origin := rng.Intn(n)
		for j := 0; j < n; j++ {
			if j != origin {
				load.Charge(origin, j)
			}
		}
		return loadStats{load.Total() / nLinks, load.Get(cin.BusheyLink), load.Max()}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, s := range mailStats {
		mail.AvgPerLink += s.avg
		mail.Bushey += s.bushey
		mail.MaxLink += s.max
	}
	mail.AvgPerLink /= float64(trials)
	mail.Bushey /= float64(trials)
	mail.MaxLink /= float64(trials)

	aeRow := func(label string, sel spatial.Selector, seed int64) (LinkTrafficRow, error) {
		row := LinkTrafficRow{Method: label}
		results, err := parallel.Run(trials, seed, func(_ int, rng *rand.Rand) (core.SpreadResult, error) {
			return core.SpreadAntiEntropy(core.AntiEntropyConfig{Mode: core.PushPull}, sel,
				rng.Intn(n), rng, core.WithLinkAccounting(cin.Network))
		})
		if err != nil {
			return row, err
		}
		for _, r := range results {
			row.AvgPerLink += r.UpdateLoad.Total() / nLinks
			row.Bushey += r.UpdateLoad.Get(cin.BusheyLink)
			row.MaxLink += r.UpdateLoad.Max()
		}
		row.AvgPerLink /= float64(trials)
		row.Bushey /= float64(trials)
		row.MaxLink /= float64(trials)
		return row, nil
	}

	uniform, err := aeRow("anti-entropy, uniform", spatial.Uniform(n), seed+1)
	if err != nil {
		return nil, err
	}
	sel, err := spatial.New(cin.Network, spatial.FormPaper, 2)
	if err != nil {
		return nil, err
	}
	spatialRow, err := aeRow("anti-entropy, eq(3.1.1) a=2", sel, seed+2)
	if err != nil {
		return nil, err
	}
	return []LinkTrafficRow{mail, uniform, spatialRow}, nil
}

// FormatLinkTrafficRows renders the per-link comparison.
func FormatLinkTrafficRows(rows []LinkTrafficRow) string {
	var b strings.Builder
	b.WriteString("per-link cost of delivering one update everywhere, synthetic CIN (§1.2, §3.1)\n")
	fmt.Fprintf(&b, "%-28s  %12s  %10s  %10s\n", "method", "avg/link", "Bushey", "max link")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s  %12.1f  %10.1f  %10.1f\n", r.Method, r.AvgPerLink, r.Bushey, r.MaxLink)
	}
	return b.String()
}
