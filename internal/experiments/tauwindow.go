package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"epidemic/internal/core"
	"epidemic/internal/parallel"
	"epidemic/internal/sim"
	"epidemic/internal/workload"
)

// TauWindowRow measures the recent-update-list anti-entropy scheme at one
// window size τ under a continuous update load (§1.3).
type TauWindowRow struct {
	// Tau is the recent-update window, in cycles.
	Tau int64
	// FullCompareRate is the fraction of anti-entropy conversations that
	// fell back to shipping full databases.
	FullCompareRate float64
	// EntriesPerExchange is the mean entries shipped per conversation.
	EntriesPerExchange float64
}

// TauWindow reproduces §1.3's window tradeoff: with τ comfortably above
// the update distribution time, checksum comparisons almost always
// succeed and an exchange costs roughly the recent-update list; "if τ is
// chosen poorly ... checksum comparisons will usually fail and network
// traffic will rise to a level slightly higher than what would be
// produced by anti-entropy without checksums".
func TauWindow(n int, taus []int64, cycles int, rate float64, seed int64) ([]TauWindowRow, error) {
	// Each τ runs its own cluster; the sweep fans out as parallel "trials"
	// while every cluster keeps its historical seed derivation.
	return parallel.Run(len(taus), seed, func(ti int, _ *rand.Rand) (TauWindowRow, error) {
		tau := taus[ti]
		c, err := sim.NewCluster(sim.ClusterConfig{
			N:     n,
			Rumor: core.RumorConfig{K: 3, Counter: true, Feedback: true, Mode: core.PushPull},
			Resolve: core.ResolveConfig{
				Mode:     core.PushPull,
				Strategy: core.CompareRecent,
				Tau:      tau,
			},
			Redistribution: core.RedistributeNone,
			Seed:           seed,
		})
		if err != nil {
			return TauWindowRow{}, err
		}
		gen, err := workload.NewGenerator(workload.Config{
			KeySpace:        200,
			UpdatesPerCycle: rate,
			Seed:            seed + tau,
		})
		if err != nil {
			return TauWindowRow{}, err
		}
		// Warm-up: build some shared history.
		for i := 0; i < 20; i++ {
			gen.Step(c)
			c.StepAntiEntropy()
		}
		before := c.TotalStats()
		for i := 0; i < cycles; i++ {
			gen.Step(c)
			c.StepAntiEntropy()
		}
		after := c.TotalStats()
		runs := after.AntiEntropyRuns - before.AntiEntropyRuns
		if runs == 0 {
			runs = 1
		}
		return TauWindowRow{
			Tau:                tau,
			FullCompareRate:    float64(after.FullCompares-before.FullCompares) / float64(runs),
			EntriesPerExchange: float64(after.EntriesSent-before.EntriesSent) / float64(runs),
		}, nil
	})
}

// FormatTauWindowRows renders the τ sweep.
func FormatTauWindowRows(rows []TauWindowRow) string {
	var b strings.Builder
	b.WriteString("recent-update-list window tau under continuous load (§1.3)\n")
	fmt.Fprintf(&b, "%6s  %16s  %20s\n", "tau", "full-compare rate", "entries per exchange")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d  %16.2f  %20.1f\n", r.Tau, r.FullCompareRate, r.EntriesPerExchange)
	}
	return b.String()
}
