package analytic

import "errors"

// RumorODEPoint is one state of the §1.4 rumor-spreading differential
// equations.
type RumorODEPoint struct {
	T       float64
	S, I, R float64
}

// IntegrateRumorODE numerically integrates the deterministic rumor model
// of §1.4,
//
//	ds/dt = −s·i
//	di/dt = +s·i − (1/k)(1−s)·i
//
// from s(0) = 1−eps, i(0) = eps, using RK4 with the given step, until the
// infective fraction falls below iMin or maxT is reached. It returns the
// trajectory sampled every `every` steps (always including the final
// point).
func IntegrateRumorODE(k int, eps, step, maxT, iMin float64, every int) ([]RumorODEPoint, error) {
	if k < 1 {
		return nil, errors.New("analytic: k must be >= 1")
	}
	if eps <= 0 || eps >= 1 {
		return nil, errors.New("analytic: eps must be in (0,1)")
	}
	if step <= 0 || maxT <= 0 {
		return nil, errors.New("analytic: step and maxT must be positive")
	}
	if every < 1 {
		every = 1
	}
	kk := float64(k)
	ds := func(s, i float64) float64 { return -s * i }
	di := func(s, i float64) float64 { return s*i - (1-s)*i/kk }

	s, i, t := 1-eps, eps, 0.0
	out := []RumorODEPoint{{T: 0, S: s, I: i, R: 1 - s - i}}
	for n := 1; t < maxT && i > iMin; n++ {
		// Classical RK4 on the (s, i) system.
		k1s, k1i := ds(s, i), di(s, i)
		k2s, k2i := ds(s+step/2*k1s, i+step/2*k1i), di(s+step/2*k1s, i+step/2*k1i)
		k3s, k3i := ds(s+step/2*k2s, i+step/2*k2i), di(s+step/2*k2s, i+step/2*k2i)
		k4s, k4i := ds(s+step*k3s, i+step*k3i), di(s+step*k3s, i+step*k3i)
		s += step / 6 * (k1s + 2*k2s + 2*k3s + k4s)
		i += step / 6 * (k1i + 2*k2i + 2*k3i + k4i)
		t += step
		if i < 0 {
			i = 0
		}
		if n%every == 0 || i <= iMin || t >= maxT {
			out = append(out, RumorODEPoint{T: t, S: s, I: i, R: 1 - s - i})
		}
	}
	return out, nil
}
