// Package analytic implements the paper's closed-form models, used both to
// sanity-check the simulators and to regenerate the analytical claims of
// §1.3, §1.4, §2.1 and §3.
package analytic

import (
	"errors"
	"math"
)

// PushStep applies §1.3's push recurrence for the probability of a site
// remaining susceptible after one more anti-entropy cycle:
//
//	p_{i+1} = p_i · (1 − 1/n)^{n(1−p_i)}
func PushStep(p float64, n int) float64 {
	if p <= 0 {
		return 0
	}
	return p * math.Pow(1-1/float64(n), float64(n)*(1-p))
}

// PullStep applies §1.3's pull recurrence:
//
//	p_{i+1} = p_i²
func PullStep(p float64) float64 { return p * p }

// CyclesToThreshold iterates step from p0 until p < eps, returning the
// number of cycles taken (capped at maxCycles).
func CyclesToThreshold(p0, eps float64, maxCycles int, step func(float64) float64) int {
	p := p0
	for i := 0; i < maxCycles; i++ {
		if p < eps {
			return i
		}
		p = step(p)
	}
	return maxCycles
}

// ExpectedPushCycles returns the expected time for push anti-entropy to
// infect everybody starting from one site: log₂(n) + ln(n) + O(1) (§1.3,
// citing Pittel).
func ExpectedPushCycles(n int) float64 {
	if n < 2 {
		return 0
	}
	fn := float64(n)
	return math.Log2(fn) + math.Log(fn)
}

// RumorInfective evaluates i(s) for the rumor-spreading ODE of §1.4 with
// loss parameter k:
//
//	i(s) = (k+1)/k · (1−s) + 1/k · ln s
func RumorInfective(s float64, k int) float64 {
	kk := float64(k)
	return (kk+1)/kk*(1-s) + math.Log(s)/kk
}

// RumorResidue solves the implicit residue equation of §1.4,
//
//	s = e^{−(k+1)(1−s)}
//
// for the nontrivial root s ∈ (0, 1). The paper quotes s(k=1) ≈ 20% and
// s(k=2) ≈ 6%.
func RumorResidue(k int) (float64, error) {
	if k < 1 {
		return 0, errors.New("analytic: k must be >= 1")
	}
	// Fixed-point iteration converges for the stable small root; start
	// from s=0 side.
	s := 1e-12
	for i := 0; i < 10_000; i++ {
		next := math.Exp(-float64(k+1) * (1 - s))
		if math.Abs(next-s) < 1e-15 {
			return next, nil
		}
		s = next
	}
	return s, nil
}

// ResidueFromTraffic returns the §1.4 fundamental push relationship
// s = e^{−m}.
func ResidueFromTraffic(m float64) float64 { return math.Exp(-m) }

// PushConnectionLimitLambda is λ = 1/(1−e^{−1}), the residue exponent for
// push with connection limit 1: s = e^{−λm} (§1.4).
func PushConnectionLimitLambda() float64 { return 1 / (1 - math.Exp(-1)) }

// PullConnectionLimitLambda is λ = −ln δ for pull with connection-failure
// probability δ: s = δ^m = e^{−λm} (§1.4).
func PullConnectionLimitLambda(delta float64) (float64, error) {
	if delta <= 0 || delta >= 1 {
		return 0, errors.New("analytic: delta must be in (0,1)")
	}
	return -math.Log(delta), nil
}

// ConnectionBusyProbability returns e^{−1}/j!, the probability that a site
// receives exactly j connections in one cycle when every site contacts one
// uniformly random partner (§1.4).
func ConnectionBusyProbability(j int) float64 {
	if j < 0 {
		return 0
	}
	f := 1.0
	for i := 2; i <= j; i++ {
		f *= float64(i)
	}
	return math.Exp(-1) / f
}

// LineTrafficExponent classifies §3's expected per-link traffic T(n) on a
// linear network when partners are chosen with probability ∝ d^{−a}:
//
//	a < 1:      O(n)
//	a = 1:      O(n/log n)
//	1 < a < 2:  O(n^{2−a})
//	a = 2:      O(log n)
//	a > 2:      O(1)
//
// It returns the predicted growth of T(n) as a human-readable class and a
// function evaluating the predicted order (up to constants).
func LineTrafficExponent(a float64) (string, func(n int) float64) {
	switch {
	case a < 1:
		return "O(n)", func(n int) float64 { return float64(n) }
	case a == 1:
		return "O(n/log n)", func(n int) float64 { return float64(n) / math.Log(float64(n)) }
	case a < 2:
		return "O(n^(2-a))", func(n int) float64 { return math.Pow(float64(n), 2-a) }
	case a == 2:
		return "O(log n)", func(n int) float64 { return math.Log(float64(n)) }
	default:
		return "O(1)", func(n int) float64 { return 1 }
	}
}

// UniformCriticalLinkLoad returns 2·n1·n2/(n1+n2): the expected number of
// conversations per cycle crossing a cut that separates n1 sites from n2
// sites under uniform partner selection (§3.1's transatlantic-link
// estimate).
func UniformCriticalLinkLoad(n1, n2 int) float64 {
	if n1+n2 == 0 {
		return 0
	}
	return 2 * float64(n1) * float64(n2) / float64(n1+n2)
}

// ExpectedMailMessages is direct mail's message count per update: n−1
// messages from the originating site (§1.2).
func ExpectedMailMessages(n int) int {
	if n < 1 {
		return 0
	}
	return n - 1
}

// AntiEntropyRemailWorstCase is the worst-case message count when
// anti-entropy triggers redistribution by mail: O(n²) when half the sites
// missed the update (§1.5).
func AntiEntropyRemailWorstCase(n int) int { return n * n / 2 }
