package analytic

import (
	"math"
	"testing"
)

func TestIntegrateRumorODEValidation(t *testing.T) {
	if _, err := IntegrateRumorODE(0, 1e-3, 0.01, 100, 1e-8, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := IntegrateRumorODE(1, 0, 0.01, 100, 1e-8, 10); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := IntegrateRumorODE(1, 1e-3, 0, 100, 1e-8, 10); err == nil {
		t.Error("step=0 accepted")
	}
	if _, err := IntegrateRumorODE(1, 1e-3, 0.01, 0, 1e-8, 10); err == nil {
		t.Error("maxT=0 accepted")
	}
}

// The ODE's terminal susceptible fraction must match the closed-form
// fixed point s = e^{-(k+1)(1-s)}.
func TestODEFinalResidueMatchesClosedForm(t *testing.T) {
	for k := 1; k <= 3; k++ {
		pts, err := IntegrateRumorODE(k, 1e-6, 0.005, 500, 1e-10, 100)
		if err != nil {
			t.Fatal(err)
		}
		final := pts[len(pts)-1]
		want, err := RumorResidue(k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(final.S-want) > 0.01 {
			t.Errorf("k=%d: ODE residue %.4f, closed form %.4f", k, final.S, want)
		}
	}
}

// Along the trajectory, i must match the closed-form phase curve
// i(s) = (k+1)/k (1−s) + ln(s)/k.
func TestODETracksPhaseCurve(t *testing.T) {
	const k = 2
	pts, err := IntegrateRumorODE(k, 1e-6, 0.005, 500, 1e-10, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.S <= 0.01 {
			continue
		}
		want := RumorInfective(p.S, k)
		if want < 0 {
			continue // past quiescence in the closed form
		}
		if math.Abs(p.I-want) > 0.01 {
			t.Errorf("t=%.2f s=%.4f: i=%.4f, phase curve %.4f", p.T, p.S, p.I, want)
		}
	}
}

// Conservation: s + i + r = 1 at every point, and s is non-increasing.
func TestODEInvariants(t *testing.T) {
	pts, err := IntegrateRumorODE(3, 1e-4, 0.01, 200, 1e-9, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("too few points: %d", len(pts))
	}
	prevS := 2.0
	for _, p := range pts {
		if math.Abs(p.S+p.I+p.R-1) > 1e-9 {
			t.Errorf("t=%.2f: s+i+r = %v", p.T, p.S+p.I+p.R)
		}
		if p.S > prevS+1e-12 {
			t.Errorf("t=%.2f: s increased", p.T)
		}
		prevS = p.S
	}
}
