package analytic

import (
	"math"
	"testing"
)

func TestPullStepConvergesFasterThanPush(t *testing.T) {
	const n = 1000
	p := 0.1 // 10% susceptible after initial distribution
	pullCycles := CyclesToThreshold(p, 1e-9, 1000, PullStep)
	pushCycles := CyclesToThreshold(p, 1e-9, 1000, func(x float64) float64 { return PushStep(x, n) })
	if pullCycles >= pushCycles {
		t.Errorf("pull %d cycles should beat push %d cycles", pullCycles, pushCycles)
	}
	// p² from 0.1 reaches 1e-9 in ~5 doublings of the exponent.
	if pullCycles > 6 {
		t.Errorf("pull cycles = %d, want <= 6", pullCycles)
	}
}

// For very small p, push decreases by ~e^{-1} per cycle (§1.3).
func TestPushStepApproachesExpDecay(t *testing.T) {
	const n = 100000
	p := 1e-6
	next := PushStep(p, n)
	ratio := next / p
	if math.Abs(ratio-math.Exp(-1)) > 0.01 {
		t.Errorf("push decay ratio %.4f, want ~e^-1=%.4f", ratio, math.Exp(-1))
	}
}

func TestPushStepEdgeCases(t *testing.T) {
	if PushStep(0, 100) != 0 {
		t.Error("PushStep(0) != 0")
	}
	if got := PushStep(1, 100); got != 1 {
		t.Errorf("PushStep(1) = %v, want 1 (nobody infected, nobody pushes)", got)
	}
}

func TestCyclesToThresholdCap(t *testing.T) {
	// A step that never decreases hits the cap.
	got := CyclesToThreshold(0.5, 1e-9, 17, func(p float64) float64 { return p })
	if got != 17 {
		t.Errorf("cap = %d, want 17", got)
	}
	if got := CyclesToThreshold(1e-12, 1e-9, 100, PullStep); got != 0 {
		t.Errorf("already-below threshold = %d, want 0", got)
	}
}

func TestExpectedPushCycles(t *testing.T) {
	got := ExpectedPushCycles(1024)
	want := 10 + math.Log(1024)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedPushCycles(1024) = %v, want %v", got, want)
	}
	if ExpectedPushCycles(1) != 0 {
		t.Error("n=1 should be 0")
	}
}

// The paper: "at k=1 this formula suggests that 20% will miss the rumor,
// while at k=2 only 6% will miss it."
func TestRumorResidueMatchesPaper(t *testing.T) {
	s1, err := RumorResidue(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1-0.20) > 0.01 {
		t.Errorf("s(k=1) = %.4f, want ~0.20", s1)
	}
	s2, err := RumorResidue(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2-0.06) > 0.01 {
		t.Errorf("s(k=2) = %.4f, want ~0.06", s2)
	}
	if _, err := RumorResidue(0); err == nil {
		t.Error("k=0 accepted")
	}
	// Residue decreases exponentially with k.
	prev := 1.0
	for k := 1; k <= 6; k++ {
		s, err := RumorResidue(k)
		if err != nil {
			t.Fatal(err)
		}
		if s >= prev {
			t.Errorf("residue not decreasing at k=%d", k)
		}
		prev = s
	}
}

// The solved residue is a root of i(s) = 0.
func TestRumorResidueIsRootOfInfective(t *testing.T) {
	for k := 1; k <= 5; k++ {
		s, err := RumorResidue(k)
		if err != nil {
			t.Fatal(err)
		}
		if got := RumorInfective(s, k); math.Abs(got) > 1e-6 {
			t.Errorf("i(s*) = %v at k=%d, want 0", got, k)
		}
	}
}

func TestRumorInfectiveInitialCondition(t *testing.T) {
	// i(1) = 0: at the start everyone is susceptible and nobody infective
	// (in the large-n limit).
	for k := 1; k <= 4; k++ {
		if got := RumorInfective(1, k); math.Abs(got) > 1e-12 {
			t.Errorf("i(1) = %v at k=%d", got, k)
		}
	}
}

func TestResidueFromTraffic(t *testing.T) {
	if got := ResidueFromTraffic(0); got != 1 {
		t.Errorf("m=0: %v", got)
	}
	if got := ResidueFromTraffic(math.Log(4)); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("m=ln4: %v", got)
	}
}

func TestConnectionLimitLambdas(t *testing.T) {
	l := PushConnectionLimitLambda()
	if math.Abs(l-1.582) > 0.001 {
		t.Errorf("push lambda = %v, want ~1.582", l)
	}
	pl, err := PullConnectionLimitLambda(math.Exp(-2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pl-2) > 1e-12 {
		t.Errorf("pull lambda = %v, want 2", pl)
	}
	if _, err := PullConnectionLimitLambda(0); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := PullConnectionLimitLambda(1); err == nil {
		t.Error("delta=1 accepted")
	}
}

func TestConnectionBusyProbability(t *testing.T) {
	// Sum over j of e^-1/j! = 1.
	var sum float64
	for j := 0; j < 20; j++ {
		sum += ConnectionBusyProbability(j)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if ConnectionBusyProbability(-1) != 0 {
		t.Error("negative j")
	}
	if got := ConnectionBusyProbability(1); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Errorf("j=1: %v", got)
	}
}

func TestLineTrafficExponent(t *testing.T) {
	tests := []struct {
		a    float64
		want string
	}{
		{0.5, "O(n)"},
		{1, "O(n/log n)"},
		{1.5, "O(n^(2-a))"},
		{2, "O(log n)"},
		{3, "O(1)"},
	}
	for _, tt := range tests {
		name, fn := LineTrafficExponent(tt.a)
		if name != tt.want {
			t.Errorf("a=%v: %q, want %q", tt.a, name, tt.want)
		}
		if fn(100) <= 0 {
			t.Errorf("a=%v: non-positive order", tt.a)
		}
		// Predicted order is non-decreasing in n for a <= 2.
		if tt.a <= 2 && fn(10000) < fn(100) {
			t.Errorf("a=%v: order decreasing", tt.a)
		}
	}
}

func TestUniformCriticalLinkLoad(t *testing.T) {
	// The paper's estimate: n1 a few tens, n2 several hundred ⇒ ~80
	// conversations across the transatlantic cut.
	got := UniformCriticalLinkLoad(45, 400)
	if math.Abs(got-80.9) > 0.1 {
		t.Errorf("load = %v, want ~80.9", got)
	}
	if UniformCriticalLinkLoad(0, 0) != 0 {
		t.Error("0/0 case")
	}
}

func TestMailCounts(t *testing.T) {
	if ExpectedMailMessages(300) != 299 {
		t.Error("mail messages")
	}
	if ExpectedMailMessages(0) != 0 {
		t.Error("mail messages n=0")
	}
	if AntiEntropyRemailWorstCase(300) != 45000 {
		t.Error("remail worst case")
	}
}
