package store

import (
	"fmt"
	"sync"
	"testing"

	"epidemic/internal/timestamp"
)

// Hammer the store from many goroutines; run with -race. The assertions
// are deliberately weak — the point is the absence of data races and of
// internal-state corruption (checksum/index divergence).
func TestStoreConcurrentAccess(t *testing.T) {
	src := timestamp.NewSimulated(1)
	s := New(1, src.ClockAt(1))
	producer := New(2, src.ClockAt(2))

	var entries []Entry
	for i := 0; i < 50; i++ {
		entries = append(entries, producer.Update(fmt.Sprintf("k%02d", i%10), Value{byte(i)}))
		src.Advance(1)
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch (w + i) % 6 {
				case 0:
					s.Apply(entries[(w*7+i)%len(entries)])
				case 1:
					s.Update(fmt.Sprintf("w%d", w), Value{byte(i)})
				case 2:
					s.Lookup("k00")
					s.Checksum()
				case 3:
					s.Snapshot()
					s.RecentUpdates(s.Now(), 100)
				case 4:
					s.Delete(fmt.Sprintf("d%d", w), []timestamp.SiteID{1})
					s.DeathCertificates()
				case 5:
					s.NewestFirst(5)
					s.ExpireDeathCertificates(s.Now(), 1<<40, 1<<40)
				}
			}
		}(w)
	}
	wg.Wait()

	// Internal consistency after the storm: incremental checksum matches
	// recomputation, index covers exactly the entries.
	var sum uint64
	snap := s.Snapshot()
	for _, e := range snap {
		sum ^= e.hash()
	}
	if sum != s.Checksum() {
		t.Error("checksum diverged from content")
	}
	if got := len(s.NewestFirst(0)); got != len(snap) {
		t.Errorf("index has %d entries, store has %d", got, len(snap))
	}
}

// assertReverseStamped fails the test if entries are not strictly
// descending by ordinary timestamp (the merged-ordering invariant every
// reverse-timestamp read must uphold, storm or no storm).
func assertReverseStamped(t *testing.T, where string, entries []Entry) {
	t.Helper()
	for i := 1; i < len(entries); i++ {
		if !entries[i].Stamp.Less(entries[i-1].Stamp) {
			t.Errorf("%s: entries[%d]=%v not strictly older than entries[%d]=%v",
				where, i, entries[i].Stamp, i-1, entries[i-1].Stamp)
			return
		}
	}
}

// TestStoreConcurrentMergedReads hammers the k-way-merged read paths —
// RecentUpdates, NewestFirst, and the PeelBatch walk — while writers churn
// every shard. Run with -race. Each merged result must be strictly
// reverse-timestamp ordered even mid-storm, and after the storm the folded
// per-shard checksum must match a full recomputation.
func TestStoreConcurrentMergedReads(t *testing.T) {
	src := timestamp.NewSimulated(1)
	s := New(1, src.ClockAt(1))
	for i := 0; i < 200; i++ {
		s.Update(fmt.Sprintf("seed%03d", i), Value{byte(i)})
		src.Advance(1)
	}

	const writers, readers, iters = 4, 4, 300
	var wgW, wgR sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					s.Update(fmt.Sprintf("w%d-%03d", w, i), Value{byte(i)})
				case 1:
					s.Update(fmt.Sprintf("seed%03d", (w*31+i)%200), Value{byte(w)})
				case 2:
					s.Delete(fmt.Sprintf("d%d-%03d", w, i), []timestamp.SiteID{1})
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wgR.Add(1)
		go func(r int) {
			defer wgR.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (r + i) % 3 {
				case 0:
					assertReverseStamped(t, "RecentUpdates", s.RecentUpdates(s.Now(), 1<<40))
				case 1:
					assertReverseStamped(t, "NewestFirst", s.NewestFirst(32))
				case 2:
					// One full peel walk; each batch must be ordered and the
					// resume bound must strictly decrease, so the walk
					// terminates even while writers insert behind it.
					bound := PeelStart
					for {
						batch, next, more := s.PeelBatch(bound, 16, s.Now(), 1<<40)
						assertReverseStamped(t, "PeelBatch", batch)
						if !more {
							break
						}
						if !next.Less(bound) {
							t.Errorf("PeelBatch bound did not advance: %v -> %v", bound, next)
							return
						}
						bound = next
					}
				}
			}
		}(r)
	}
	// Readers keep merging until every writer has finished, so the merged
	// paths are exercised against live mutation for the whole storm.
	wgW.Wait()
	close(stop)
	wgR.Wait()

	// Folded checksum matches a full recomputation after the storm.
	var sum uint64
	snap := s.Snapshot()
	for _, e := range snap {
		sum ^= e.hash()
	}
	if sum != s.Checksum() {
		t.Error("folded checksum diverged from full recomputation")
	}
	// The quiescent merged walk is exactly the store, strictly ordered.
	all := s.NewestFirst(0)
	if len(all) != len(snap) {
		t.Errorf("NewestFirst(0) has %d entries, store has %d", len(all), len(snap))
	}
	assertReverseStamped(t, "NewestFirst(0) quiescent", all)
}

// Two stores resolving against each other from multiple goroutines must
// stay internally consistent (ResolveDifference locks per-operation, not
// globally, so interleavings are real).
func TestConcurrentResolve(t *testing.T) {
	src := timestamp.NewSimulated(1)
	a := New(1, src.ClockAt(1))
	b := New(2, src.ClockAt(2))
	for i := 0; i < 20; i++ {
		a.Update(fmt.Sprintf("a%d", i), Value("x"))
		b.Update(fmt.Sprintf("b%d", i), Value("y"))
		src.Advance(1)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w%2 == 0 {
					a.Update(fmt.Sprintf("hot%d", w), Value{byte(i)})
				}
				// Direct full push both ways exercises concurrent Apply.
				for _, e := range a.Snapshot() {
					b.Apply(e)
				}
				for _, e := range b.Snapshot() {
					a.Apply(e)
				}
			}
		}(w)
	}
	wg.Wait()
	// One final sweep makes them equal.
	for _, e := range a.Snapshot() {
		b.Apply(e)
	}
	for _, e := range b.Snapshot() {
		a.Apply(e)
	}
	if !ContentEqual(a, b) {
		t.Error("stores diverged")
	}
}
