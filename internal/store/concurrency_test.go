package store

import (
	"fmt"
	"sync"
	"testing"

	"epidemic/internal/timestamp"
)

// Hammer the store from many goroutines; run with -race. The assertions
// are deliberately weak — the point is the absence of data races and of
// internal-state corruption (checksum/index divergence).
func TestStoreConcurrentAccess(t *testing.T) {
	src := timestamp.NewSimulated(1)
	s := New(1, src.ClockAt(1))
	producer := New(2, src.ClockAt(2))

	var entries []Entry
	for i := 0; i < 50; i++ {
		entries = append(entries, producer.Update(fmt.Sprintf("k%02d", i%10), Value{byte(i)}))
		src.Advance(1)
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch (w + i) % 6 {
				case 0:
					s.Apply(entries[(w*7+i)%len(entries)])
				case 1:
					s.Update(fmt.Sprintf("w%d", w), Value{byte(i)})
				case 2:
					s.Lookup("k00")
					s.Checksum()
				case 3:
					s.Snapshot()
					s.RecentUpdates(s.Now(), 100)
				case 4:
					s.Delete(fmt.Sprintf("d%d", w), []timestamp.SiteID{1})
					s.DeathCertificates()
				case 5:
					s.NewestFirst(5)
					s.ExpireDeathCertificates(s.Now(), 1<<40, 1<<40)
				}
			}
		}(w)
	}
	wg.Wait()

	// Internal consistency after the storm: incremental checksum matches
	// recomputation, index covers exactly the entries.
	var sum uint64
	snap := s.Snapshot()
	for _, e := range snap {
		sum ^= e.hash()
	}
	if sum != s.Checksum() {
		t.Error("checksum diverged from content")
	}
	if got := len(s.NewestFirst(0)); got != len(snap) {
		t.Errorf("index has %d entries, store has %d", got, len(snap))
	}
}

// Two stores resolving against each other from multiple goroutines must
// stay internally consistent (ResolveDifference locks per-operation, not
// globally, so interleavings are real).
func TestConcurrentResolve(t *testing.T) {
	src := timestamp.NewSimulated(1)
	a := New(1, src.ClockAt(1))
	b := New(2, src.ClockAt(2))
	for i := 0; i < 20; i++ {
		a.Update(fmt.Sprintf("a%d", i), Value("x"))
		b.Update(fmt.Sprintf("b%d", i), Value("y"))
		src.Advance(1)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w%2 == 0 {
					a.Update(fmt.Sprintf("hot%d", w), Value{byte(i)})
				}
				// Direct full push both ways exercises concurrent Apply.
				for _, e := range a.Snapshot() {
					b.Apply(e)
				}
				for _, e := range b.Snapshot() {
					a.Apply(e)
				}
			}
		}(w)
	}
	wg.Wait()
	// One final sweep makes them equal.
	for _, e := range a.Snapshot() {
		b.Apply(e)
	}
	for _, e := range b.Snapshot() {
		a.Apply(e)
	}
	if !ContentEqual(a, b) {
		t.Error("stores diverged")
	}
}
