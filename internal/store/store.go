package store

import (
	"sort"
	"strings"
	"sync"

	"epidemic/internal/timestamp"
)

// ApplyResult describes the outcome of merging a remote entry into a local
// store.
type ApplyResult int

const (
	// Unchanged: the incoming entry is identical to or older than the local
	// entry; nothing happened.
	Unchanged ApplyResult = iota + 1
	// Applied: the incoming entry superseded the local state.
	Applied
	// ActivationAdvanced: same ordinary timestamp, but the incoming death
	// certificate carries a newer activation timestamp, which was adopted.
	ActivationAdvanced
	// RejectedByDeath: the incoming ordinary entry is older than a local
	// death certificate — an obsolete copy trying to "resurrect" the item
	// (§2). The protocol layer should reactivate the certificate if it is
	// dormant.
	RejectedByDeath
)

// String names the result for logs and tests.
func (r ApplyResult) String() string {
	switch r {
	case Unchanged:
		return "unchanged"
	case Applied:
		return "applied"
	case ActivationAdvanced:
		return "activation-advanced"
	case RejectedByDeath:
		return "rejected-by-death"
	default:
		return "invalid"
	}
}

// Changed reports whether the merge modified local state (i.e. the sender's
// entry was "needed" in the rumor-mongering feedback sense).
func (r ApplyResult) Changed() bool { return r == Applied || r == ActivationAdvanced }

// Store is one site's replica of the database. It is safe for concurrent
// use.
type Store struct {
	mu      sync.Mutex
	site    timestamp.SiteID
	clock   timestamp.Clock
	entries map[string]Entry
	deaths  map[string]struct{} // keys whose entry is a death certificate
	sum     uint64              // incremental XOR checksum of all entries
	index   timeIndex           // entries ordered by ordinary timestamp
}

// New returns an empty store for the given site.
func New(site timestamp.SiteID, clock timestamp.Clock) *Store {
	return &Store{
		site:    site,
		clock:   clock,
		entries: make(map[string]Entry),
		deaths:  make(map[string]struct{}),
	}
}

// Site returns the owning site's ID.
func (s *Store) Site() timestamp.SiteID { return s.site }

// Now exposes the site clock's current reading (for age computations by
// protocol layers).
func (s *Store) Now() int64 { return s.clock.Read() }

// Len returns the number of entries, including death certificates.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// LiveLen returns the number of non-deleted items.
func (s *Store) LiveLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries) - len(s.deaths)
}

// Update performs the client Update operation of §1.1: it writes value
// under key with a fresh timestamp and returns the new entry.
func (s *Store) Update(key string, value Value) Entry {
	// Copy and never store nil: a nil Value means deletion, and an
	// explicit empty value is not a deletion.
	v := make(Value, len(value))
	copy(v, value)
	ts := s.clock.Now()
	e := Entry{Key: key, Value: v, Stamp: ts, Activation: ts}
	s.mu.Lock()
	s.put(e)
	s.mu.Unlock()
	return e.clone()
}

// Delete replaces the item with a death certificate (§2) whose retention
// sites are given by retention (may be nil). It returns the certificate.
func (s *Store) Delete(key string, retention []timestamp.SiteID) Entry {
	ts := s.clock.Now()
	e := Entry{
		Key:        key,
		Stamp:      ts,
		Activation: ts,
		Retention:  append([]timestamp.SiteID(nil), retention...),
	}
	s.mu.Lock()
	s.put(e)
	s.mu.Unlock()
	return e.clone()
}

// Lookup returns the current value for key from a client's perspective:
// deleted or absent items return ok=false, as the paper specifies that
// ValueOf[k] = (NIL, t) "is the same as undefined".
func (s *Store) Lookup(key string) (Value, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.IsDeath() {
		return nil, false
	}
	return append(Value(nil), e.Value...), true
}

// Get returns the raw entry for key, including death certificates.
func (s *Store) Get(key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return Entry{}, false
	}
	return e.clone(), true
}

// Apply merges a remote entry into the store and reports what happened.
// The merge is the paper's timestamp rule: a larger ordinary timestamp
// always supersedes a smaller one; equal ordinary timestamps adopt the
// larger activation timestamp (reactivated death certificates).
func (s *Store) Apply(e Entry) ApplyResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.entries[e.Key]
	if !ok {
		s.put(e.clone())
		return Applied
	}
	switch {
	case cur.Stamp.Less(e.Stamp):
		s.put(e.clone())
		return Applied
	case e.Stamp.Less(cur.Stamp):
		if cur.IsDeath() && !e.IsDeath() {
			return RejectedByDeath
		}
		return Unchanged
	default: // same ordinary timestamp
		if cur.Activation.Less(e.Activation) {
			cur.Activation = e.Activation
			s.entries[e.Key] = cur
			return ActivationAdvanced
		}
		return Unchanged
	}
}

// put installs e, maintaining the checksum, death set, and time index.
// Caller holds s.mu; e must not alias caller-retained slices.
func (s *Store) put(e Entry) {
	if old, ok := s.entries[e.Key]; ok {
		s.sum ^= old.hash()
		s.index.remove(old.Stamp, e.Key)
		delete(s.deaths, e.Key)
	}
	s.entries[e.Key] = e
	s.sum ^= e.hash()
	s.index.insert(e.Stamp, e.Key)
	if e.IsDeath() {
		s.deaths[e.Key] = struct{}{}
	}
}

// drop removes the entry for key entirely (death-certificate expiry).
// Caller holds s.mu.
func (s *Store) drop(key string) {
	old, ok := s.entries[key]
	if !ok {
		return
	}
	s.sum ^= old.hash()
	s.index.remove(old.Stamp, key)
	delete(s.entries, key)
	delete(s.deaths, key)
}

// Checksum returns the incremental checksum over all entries.
func (s *Store) Checksum() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum
}

// ChecksumLive returns the checksum excluding dormant death certificates
// (activation older than tau1 at time now). Sites at different points of a
// certificate's dormancy would otherwise permanently disagree even with
// identical live content.
func (s *Store) ChecksumLive(now, tau1 int64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := s.sum
	for key := range s.deaths {
		e := s.entries[key]
		if now-e.Activation.Time > tau1 {
			sum ^= e.hash()
		}
	}
	return sum
}

// Reactivate awakens the death certificate for key: its activation
// timestamp is advanced to the current time (its ordinary timestamp is
// unchanged, so updates between the two are not cancelled, §2.2). It
// returns the updated certificate and true, or false if key does not hold
// a death certificate.
func (s *Store) Reactivate(key string) (Entry, bool) {
	// Take the clock reading outside the lock ordering of put (clock has
	// its own mutex; order is store→clock everywhere).
	act := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || !e.IsDeath() {
		return Entry{}, false
	}
	if e.Activation.Less(act) {
		e.Activation = act
		s.entries[key] = e
	}
	return e.clone(), true
}

// IsDormant reports whether the entry's activation timestamp is older than
// tau1 at time now (dormant death certificates are not propagated by
// anti-entropy, §2.2).
func IsDormant(e Entry, now, tau1 int64) bool {
	return e.IsDeath() && now-e.Activation.Time > tau1
}

// ExpireDeathCertificates applies §2.1's retention policy at time now:
// certificates with activation age in (tau1, tau1+tau2] survive only at
// their retention sites; older than tau1+tau2 they are discarded
// everywhere. It returns how many certificates were dropped.
func (s *Store) ExpireDeathCertificates(now, tau1, tau2 int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var doomed []string
	for key := range s.deaths {
		e := s.entries[key]
		age := now - e.Activation.Time
		switch {
		case age > tau1+tau2:
			doomed = append(doomed, key)
		case age > tau1 && !e.RetainedBy(s.site):
			doomed = append(doomed, key)
		}
	}
	for _, key := range doomed {
		s.drop(key)
	}
	return len(doomed)
}

// DeathCertificates returns all death certificates currently held.
func (s *Store) DeathCertificates() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.deaths))
	for key := range s.deaths {
		out = append(out, s.entries[key].clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// RecentUpdates returns all entries whose ordinary timestamp is within tau
// of now, newest first — the paper's "recent update list" (§1.3).
func (s *Store) RecentUpdates(now, tau int64) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for i := len(s.index.keys) - 1; i >= 0; i-- {
		rec := s.index.keys[i]
		if now-rec.stamp.Time >= tau { // ages strictly less than tau qualify
			break
		}
		out = append(out, s.entries[rec.key].clone())
	}
	return out
}

// NewestFirst returns up to limit entries in reverse timestamp order
// starting after the given exclusive upper bound (pass timestamp.T{Time:
// math.MaxInt64} semantics via After). It powers the peel-back exchange
// (§1.3). A zero limit returns all.
func (s *Store) NewestFirst(limit int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.index.keys)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Entry, 0, limit)
	for i := n - 1; i >= n-limit; i-- {
		out = append(out, s.entries[s.index.keys[i].key].clone())
	}
	return out
}

// OlderThan returns up to limit entries strictly older than bound, newest
// first. Peel-back uses it to fetch the next batch.
func (s *Store) OlderThan(bound timestamp.T, limit int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.index.searchBefore(bound)
	if limit <= 0 || limit > i {
		limit = i
	}
	out := make([]Entry, 0, limit)
	for k := i - 1; k >= i-limit; k-- {
		out = append(out, s.entries[s.index.keys[k].key].clone())
	}
	return out
}

// Snapshot returns a copy of all entries, sorted by key.
func (s *Store) Snapshot() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ScanPrefix returns the live (non-deleted) entries whose keys start with
// prefix, sorted by key.
func (s *Store) ScanPrefix(prefix string) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for k, e := range s.entries {
		if e.IsDeath() || !strings.HasPrefix(k, prefix) {
			continue
		}
		out = append(out, e.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Keys returns all keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ContentEqual reports whether two stores hold identical database content.
func ContentEqual(a, b *Store) bool {
	as, bs := a.Snapshot(), b.Snapshot()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if !as[i].Equal(bs[i]) {
			return false
		}
	}
	return true
}
