package store

import (
	"sort"
	"strings"

	"epidemic/internal/timestamp"
)

// ApplyResult describes the outcome of merging a remote entry into a local
// store.
type ApplyResult int

const (
	// Unchanged: the incoming entry is identical to or older than the local
	// entry; nothing happened.
	Unchanged ApplyResult = iota + 1
	// Applied: the incoming entry superseded the local state.
	Applied
	// ActivationAdvanced: same ordinary timestamp, but the incoming death
	// certificate carries a newer activation timestamp, which was adopted.
	ActivationAdvanced
	// RejectedByDeath: the incoming ordinary entry is older than a local
	// death certificate — an obsolete copy trying to "resurrect" the item
	// (§2). The protocol layer should reactivate the certificate if it is
	// dormant.
	RejectedByDeath
)

// String names the result for logs and tests.
func (r ApplyResult) String() string {
	switch r {
	case Unchanged:
		return "unchanged"
	case Applied:
		return "applied"
	case ActivationAdvanced:
		return "activation-advanced"
	case RejectedByDeath:
		return "rejected-by-death"
	default:
		return "invalid"
	}
}

// Changed reports whether the merge modified local state (i.e. the sender's
// entry was "needed" in the rumor-mongering feedback sense).
func (r ApplyResult) Changed() bool { return r == Applied || r == ActivationAdvanced }

// Store is one site's replica of the database. It is safe for concurrent
// use.
//
// Internally the replica is a sharded map: keys hash onto power-of-two
// lock stripes, each with its own entry map, death set, incremental XOR
// checksum, and timestamp index. Point operations (Update, Get, Apply)
// touch one shard; the global checksum is an XOR fold of per-shard sums
// under read locks; the timestamp-ordered reads (RecentUpdates,
// NewestFirst, PeelBatch, LiveSnapshot) k-way merge the per-shard indexes,
// reproducing the single-index order exactly because timestamps are
// globally unique.
type Store struct {
	site   timestamp.SiteID
	clock  timestamp.Clock
	mask   uint32
	shards []shard
}

// New returns an empty store for the given site with DefaultShards lock
// stripes.
func New(site timestamp.SiteID, clock timestamp.Clock) *Store {
	return NewSharded(site, clock, DefaultShards)
}

// NewSharded returns an empty store with the given shard count, rounded up
// to the next power of two (<= 0 selects DefaultShards). One shard degrades
// gracefully to the seed's single-lock store.
func NewSharded(site timestamp.SiteID, clock timestamp.Clock, shards int) *Store {
	n := 1
	if shards <= 0 {
		n = DefaultShards
	} else {
		for n < shards && n < maxShards {
			n <<= 1
		}
	}
	s := &Store{
		site:   site,
		clock:  clock,
		mask:   uint32(n - 1),
		shards: make([]shard, n),
	}
	for i := range s.shards {
		s.shards[i].entries = make(map[string]Entry)
		s.shards[i].deaths = make(map[string]struct{})
	}
	return s
}

// shardFor hashes key onto its lock stripe (FNV-1a, masked to the
// power-of-two shard count).
func (s *Store) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &s.shards[h&s.mask]
}

// ShardCount returns the number of lock stripes.
func (s *Store) ShardCount() int { return len(s.shards) }

// Site returns the owning site's ID.
func (s *Store) Site() timestamp.SiteID { return s.site }

// Now exposes the site clock's current reading (for age computations by
// protocol layers).
func (s *Store) Now() int64 { return s.clock.Read() }

// Len returns the number of entries, including death certificates.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// LiveLen returns the number of non-deleted items.
func (s *Store) LiveLen() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.entries) - len(sh.deaths)
		sh.mu.RUnlock()
	}
	return n
}

// Update performs the client Update operation of §1.1: it writes value
// under key with a fresh timestamp and returns the new entry.
func (s *Store) Update(key string, value Value) Entry {
	// Copy and never store nil: a nil Value means deletion, and an
	// explicit empty value is not a deletion.
	v := make(Value, len(value))
	copy(v, value)
	ts := s.clock.Now()
	e := Entry{Key: key, Value: v, Stamp: ts, Activation: ts}
	sh := s.shardFor(key)
	sh.mu.Lock()
	sh.put(e)
	sh.mu.Unlock()
	return e.clone()
}

// Delete replaces the item with a death certificate (§2) whose retention
// sites are given by retention (may be nil). It returns the certificate.
func (s *Store) Delete(key string, retention []timestamp.SiteID) Entry {
	ts := s.clock.Now()
	e := Entry{
		Key:        key,
		Stamp:      ts,
		Activation: ts,
		Retention:  append([]timestamp.SiteID(nil), retention...),
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	sh.put(e)
	sh.mu.Unlock()
	return e.clone()
}

// Lookup returns the current value for key from a client's perspective:
// deleted or absent items return ok=false, as the paper specifies that
// ValueOf[k] = (NIL, t) "is the same as undefined".
func (s *Store) Lookup(key string) (Value, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entries[key]
	if !ok || e.IsDeath() {
		return nil, false
	}
	return append(Value(nil), e.Value...), true
}

// Get returns the raw entry for key, including death certificates.
func (s *Store) Get(key string) (Entry, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entries[key]
	if !ok {
		return Entry{}, false
	}
	return e.clone(), true
}

// Apply merges a remote entry into the store and reports what happened.
// The merge is the paper's timestamp rule: a larger ordinary timestamp
// always supersedes a smaller one; equal ordinary timestamps adopt the
// larger activation timestamp (reactivated death certificates).
func (s *Store) Apply(e Entry) ApplyResult {
	sh := s.shardFor(e.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, ok := sh.entries[e.Key]
	if !ok {
		sh.put(e.clone())
		return Applied
	}
	switch {
	case cur.Stamp.Less(e.Stamp):
		sh.put(e.clone())
		return Applied
	case e.Stamp.Less(cur.Stamp):
		if cur.IsDeath() && !e.IsDeath() {
			return RejectedByDeath
		}
		return Unchanged
	default: // same ordinary timestamp
		if cur.Activation.Less(e.Activation) {
			cur.Activation = e.Activation
			sh.entries[e.Key] = cur
			return ActivationAdvanced
		}
		return Unchanged
	}
}

// Checksum returns the incremental checksum over all entries: the XOR fold
// of the per-shard sums, taken under shard read locks only — no
// stop-the-world. Concurrent writers on other shards are free to proceed;
// as with any gossip checksum, a fold racing a writer reflects some
// interleaving of the writes, and anti-entropy's next round absorbs it.
func (s *Store) Checksum() uint64 {
	var sum uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sum ^= sh.sum
		sh.mu.RUnlock()
	}
	return sum
}

// ChecksumLive returns the checksum excluding dormant death certificates
// (activation older than tau1 at time now). Sites at different points of a
// certificate's dormancy would otherwise permanently disagree even with
// identical live content.
func (s *Store) ChecksumLive(now, tau1 int64) uint64 {
	var sum uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sum ^= sh.liveSum(now, tau1)
		sh.mu.RUnlock()
	}
	return sum
}

// Reactivate awakens the death certificate for key: its activation
// timestamp is advanced to the current time (its ordinary timestamp is
// unchanged, so updates between the two are not cancelled, §2.2). It
// returns the updated certificate and true, or false if key does not hold
// a death certificate.
func (s *Store) Reactivate(key string) (Entry, bool) {
	// Take the clock reading outside the lock ordering of put (clock has
	// its own mutex; order is store→clock everywhere).
	act := s.clock.Now()
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok || !e.IsDeath() {
		return Entry{}, false
	}
	if e.Activation.Less(act) {
		e.Activation = act
		sh.entries[key] = e
	}
	return e.clone(), true
}

// IsDormant reports whether the entry's activation timestamp is older than
// tau1 at time now (dormant death certificates are not propagated by
// anti-entropy, §2.2).
func IsDormant(e Entry, now, tau1 int64) bool {
	return e.IsDeath() && now-e.Activation.Time > tau1
}

// ExpireDeathCertificates applies §2.1's retention policy at time now:
// certificates with activation age in (tau1, tau1+tau2] survive only at
// their retention sites; older than tau1+tau2 they are discarded
// everywhere. It returns how many certificates were dropped.
func (s *Store) ExpireDeathCertificates(now, tau1, tau2 int64) int {
	dropped := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		var doomed []string
		for key := range sh.deaths {
			e := sh.entries[key]
			age := now - e.Activation.Time
			switch {
			case age > tau1+tau2:
				doomed = append(doomed, key)
			case age > tau1 && !e.RetainedBy(s.site):
				doomed = append(doomed, key)
			}
		}
		for _, key := range doomed {
			sh.drop(key)
		}
		sh.mu.Unlock()
		dropped += len(doomed)
	}
	return dropped
}

// DeathCertificates returns all death certificates currently held.
func (s *Store) DeathCertificates() []Entry {
	var out []Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for key := range sh.deaths {
			out = append(out, sh.entries[key].clone())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// RecentUpdates returns all entries whose ordinary timestamp is within tau
// of now, newest first — the paper's "recent update list" (§1.3). The
// per-shard index suffixes are merged by timestamp.
func (s *Store) RecentUpdates(now, tau int64) []Entry {
	// Count first: the steady-state in-sync exchange has an empty window,
	// and the per-shard scratch would be its only allocation.
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += sh.recentCount(now, tau)
		sh.mu.RUnlock()
	}
	if total == 0 {
		return nil
	}
	per := make([][]Entry, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		per[i] = sh.collectRecent(now, tau)
		sh.mu.RUnlock()
	}
	merged := mergeDesc(per, nil, 0)
	if len(merged) == 0 {
		return nil
	}
	return merged
}

// NewestFirst returns up to limit entries in reverse timestamp order
// (a zero limit returns all), merging the per-shard indexes. It powers the
// peel-back exchange (§1.3).
func (s *Store) NewestFirst(limit int) []Entry {
	merged, _ := s.collectMerged(PeelStart, limit)
	return merged
}

// OlderThan returns up to limit entries strictly older than bound, newest
// first. Peel-back uses it to fetch the next batch.
func (s *Store) OlderThan(bound timestamp.T, limit int) []Entry {
	merged, _ := s.collectMerged(bound, limit)
	return merged
}

// collectMerged gathers up to limit records strictly older than bound from
// every shard (limit <= 0 means all) and merges them newest first. total is
// the store-wide number of records older than bound, which may exceed
// len(merged). Each shard contributes at most limit records — a superset of
// any global top-limit — so the merge result equals the seed's walk of one
// global index.
//
// The per-shard slices and merge cursors come from a sync.Pool: peel-back
// runs this once per wire round, and the scratch heap was the dominant
// per-round allocation. Only the returned merged slice escapes.
func (s *Store) collectMerged(bound timestamp.T, limit int) (merged []Entry, total int) {
	sc := getMergeScratch(len(s.shards))
	defer putMergeScratch(sc)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		var n int
		sc.per[i], n = sh.appendOlder(sc.per[i], bound, limit)
		sh.mu.RUnlock()
		total += n
	}
	return mergeDesc(sc.per, sc.cursor, limit), total
}

// Snapshot returns a copy of all entries, sorted by key.
func (s *Store) Snapshot() []Entry {
	out := make([]Entry, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			out = append(out, e.clone())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ScanPrefix returns the live (non-deleted) entries whose keys start with
// prefix, sorted by key.
func (s *Store) ScanPrefix(prefix string) []Entry {
	var out []Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, e := range sh.entries {
			if e.IsDeath() || !strings.HasPrefix(k, prefix) {
				continue
			}
			out = append(out, e.clone())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Keys returns all keys, sorted.
func (s *Store) Keys() []string {
	out := make([]string, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.entries {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// ContentEqual reports whether two stores hold identical database content.
func ContentEqual(a, b *Store) bool {
	as, bs := a.Snapshot(), b.Snapshot()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if !as[i].Equal(bs[i]) {
			return false
		}
	}
	return true
}
