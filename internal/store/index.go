package store

import (
	"sort"

	"epidemic/internal/timestamp"
)

// timeIndex keeps (timestamp, key) records sorted ascending by timestamp.
// It is the inverted index by timestamp that peel-back anti-entropy and
// recent-update lists require (§1.3). Insertion and removal are O(n) in the
// number of entries, which is adequate for the database sizes the paper
// targets (a name-service domain); the structure isolates the policy so a
// tree could be substituted without touching callers.
type timeIndex struct {
	keys []timeRec
}

type timeRec struct {
	stamp timestamp.T
	key   string
}

// searchBefore returns the number of records with stamp strictly less than
// bound.
func (ti *timeIndex) searchBefore(bound timestamp.T) int {
	return sort.Search(len(ti.keys), func(i int) bool {
		return !ti.keys[i].stamp.Less(bound)
	})
}

func (ti *timeIndex) insert(stamp timestamp.T, key string) {
	i := ti.searchBefore(stamp)
	ti.keys = append(ti.keys, timeRec{})
	copy(ti.keys[i+1:], ti.keys[i:])
	ti.keys[i] = timeRec{stamp: stamp, key: key}
}

func (ti *timeIndex) remove(stamp timestamp.T, key string) {
	i := ti.searchBefore(stamp)
	// Timestamps are globally unique, so at most one record matches; scan
	// forward over equal stamps defensively.
	for ; i < len(ti.keys) && ti.keys[i].stamp == stamp; i++ {
		if ti.keys[i].key == key {
			ti.keys = append(ti.keys[:i], ti.keys[i+1:]...)
			return
		}
	}
}

func (ti *timeIndex) len() int { return len(ti.keys) }
