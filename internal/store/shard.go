package store

import (
	"sync"

	"epidemic/internal/timestamp"
)

// DefaultShards is the shard count New uses. Sixteen shards keep the
// striped-lock win (writers on different shards never contend) while the
// k-way merges over per-shard time indexes stay cheap.
const DefaultShards = 16

// maxShards bounds NewSharded against absurd requests; beyond this the
// per-shard maps are so small that merge overhead dominates.
const maxShards = 1 << 10

// shard is one lock stripe of the store: a private entry map, death set,
// incremental XOR checksum, and time index, all guarded by one RWMutex.
// A key lives in exactly one shard (chosen by hash), so every per-shard
// invariant of the seed's single-mutex store holds per shard, and global
// reads are folds or k-way merges over the shards.
type shard struct {
	mu      sync.RWMutex
	entries map[string]Entry
	deaths  map[string]struct{} // keys whose entry is a death certificate
	sum     uint64              // incremental XOR checksum of this shard's entries
	index   timeIndex           // this shard's entries ordered by ordinary timestamp
}

// put installs e, maintaining the shard checksum, death set, and time
// index. Caller holds sh.mu; e must not alias caller-retained slices.
func (sh *shard) put(e Entry) {
	if old, ok := sh.entries[e.Key]; ok {
		sh.sum ^= old.hash()
		sh.index.remove(old.Stamp, e.Key)
		delete(sh.deaths, e.Key)
	}
	sh.entries[e.Key] = e
	sh.sum ^= e.hash()
	sh.index.insert(e.Stamp, e.Key)
	if e.IsDeath() {
		sh.deaths[e.Key] = struct{}{}
	}
}

// drop removes the entry for key entirely (death-certificate expiry).
// Caller holds sh.mu.
func (sh *shard) drop(key string) {
	old, ok := sh.entries[key]
	if !ok {
		return
	}
	sh.sum ^= old.hash()
	sh.index.remove(old.Stamp, key)
	delete(sh.entries, key)
	delete(sh.deaths, key)
}

// Cross-shard merges work on cloned entries directly: an entry's Stamp is
// exactly its index stamp (put keeps them in lockstep), so no separate
// merge record is needed.

// collectOlder returns this shard's entries strictly older than bound,
// newest first, cloned, capped at limit (limit <= 0 means all), plus the
// total number of such records (which may exceed len of the returned
// slice). Caller holds sh.mu (read suffices).
func (sh *shard) collectOlder(bound timestamp.T, limit int) (recs []Entry, total int) {
	total = sh.index.searchBefore(bound)
	n := total
	if limit > 0 && limit < n {
		n = limit
	}
	if n == 0 {
		return nil, total
	}
	recs = make([]Entry, 0, n)
	for k := total - 1; k >= total-n; k-- {
		recs = append(recs, sh.entries[sh.index.keys[k].key].clone())
	}
	return recs, total
}

// recentCount returns how many of this shard's entries have age strictly
// less than tau at time now. Caller holds sh.mu.
func (sh *shard) recentCount(now, tau int64) int {
	n := 0
	for k := len(sh.index.keys) - 1; k >= 0; k-- {
		if now-sh.index.keys[k].stamp.Time >= tau { // ages strictly less than tau qualify
			break
		}
		n++
	}
	return n
}

// collectRecent returns this shard's entries with age strictly less than
// tau at time now, newest first, cloned. Caller holds sh.mu.
func (sh *shard) collectRecent(now, tau int64) []Entry {
	n := sh.recentCount(now, tau)
	if n == 0 {
		return nil
	}
	recs := make([]Entry, 0, n)
	for k := len(sh.index.keys) - 1; k >= len(sh.index.keys)-n; k-- {
		recs = append(recs, sh.entries[sh.index.keys[k].key].clone())
	}
	return recs
}

// mergeDesc k-way merges per-shard entry slices (each already newest
// first) into one newest-first slice, stopping after limit records
// (limit <= 0 means all). Timestamps are globally unique, so the merged
// order is total and identical to the seed's single global index walk.
func mergeDesc(per [][]Entry, limit int) []Entry {
	total := 0
	for _, p := range per {
		total += len(p)
	}
	if limit <= 0 || limit > total {
		limit = total
	}
	out := make([]Entry, 0, limit)
	cursor := make([]int, len(per))
	for len(out) < limit {
		best := -1
		for i, p := range per {
			if cursor[i] >= len(p) {
				continue
			}
			if best < 0 || per[best][cursor[best]].Stamp.Less(p[cursor[i]].Stamp) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, per[best][cursor[best]])
		cursor[best]++
	}
	return out
}

// mergeAsc k-way merges per-shard entry slices (each oldest first) into
// one oldest-first slice.
func mergeAsc(per [][]Entry) []Entry {
	total := 0
	for _, p := range per {
		total += len(p)
	}
	out := make([]Entry, 0, total)
	cursor := make([]int, len(per))
	for len(out) < total {
		best := -1
		for i, p := range per {
			if cursor[i] >= len(p) {
				continue
			}
			if best < 0 || p[cursor[i]].Stamp.Less(per[best][cursor[best]].Stamp) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, per[best][cursor[best]])
		cursor[best]++
	}
	return out
}
