package store

import (
	"slices"
	"sync"

	"epidemic/internal/timestamp"
)

// DefaultShards is the shard count New uses. Sixteen shards keep the
// striped-lock win (writers on different shards never contend) while the
// k-way merges over per-shard time indexes stay cheap.
const DefaultShards = 16

// maxShards bounds NewSharded against absurd requests; beyond this the
// per-shard maps are so small that merge overhead dominates.
const maxShards = 1 << 10

// shard is one lock stripe of the store: a private entry map, death set,
// incremental XOR checksum, and time index, all guarded by one RWMutex.
// A key lives in exactly one shard (chosen by hash), so every per-shard
// invariant of the seed's single-mutex store holds per shard, and global
// reads are folds or k-way merges over the shards.
type shard struct {
	mu      sync.RWMutex
	entries map[string]Entry
	deaths  map[string]struct{} // keys whose entry is a death certificate
	sum     uint64              // incremental XOR checksum of this shard's entries
	index   timeIndex           // this shard's entries ordered by ordinary timestamp
}

// put installs e, maintaining the shard checksum, death set, and time
// index. Caller holds sh.mu; e must not alias caller-retained slices.
func (sh *shard) put(e Entry) {
	if old, ok := sh.entries[e.Key]; ok {
		sh.sum ^= old.hash()
		sh.index.remove(old.Stamp, e.Key)
		delete(sh.deaths, e.Key)
	}
	sh.entries[e.Key] = e
	sh.sum ^= e.hash()
	sh.index.insert(e.Stamp, e.Key)
	if e.IsDeath() {
		sh.deaths[e.Key] = struct{}{}
	}
}

// drop removes the entry for key entirely (death-certificate expiry).
// Caller holds sh.mu.
func (sh *shard) drop(key string) {
	old, ok := sh.entries[key]
	if !ok {
		return
	}
	sh.sum ^= old.hash()
	sh.index.remove(old.Stamp, key)
	delete(sh.entries, key)
	delete(sh.deaths, key)
}

// Cross-shard merges work on cloned entries directly: an entry's Stamp is
// exactly its index stamp (put keeps them in lockstep), so no separate
// merge record is needed.

// collectOlder returns this shard's entries strictly older than bound,
// newest first, cloned, capped at limit (limit <= 0 means all), plus the
// total number of such records (which may exceed len of the returned
// slice). Caller holds sh.mu (read suffices).
func (sh *shard) collectOlder(bound timestamp.T, limit int) (recs []Entry, total int) {
	return sh.appendOlder(nil, bound, limit)
}

// appendOlder is collectOlder appending into dst (reusing its backing
// array), for callers that pool their per-shard scratch. Caller holds
// sh.mu (read suffices).
func (sh *shard) appendOlder(dst []Entry, bound timestamp.T, limit int) ([]Entry, int) {
	total := sh.index.searchBefore(bound)
	n := total
	if limit > 0 && limit < n {
		n = limit
	}
	if n == 0 {
		return dst, total
	}
	dst = slices.Grow(dst, n)
	for k := total - 1; k >= total-n; k-- {
		dst = append(dst, sh.entries[sh.index.keys[k].key].clone())
	}
	return dst, total
}

// recentCount returns how many of this shard's entries have age strictly
// less than tau at time now. Caller holds sh.mu.
func (sh *shard) recentCount(now, tau int64) int {
	n := 0
	for k := len(sh.index.keys) - 1; k >= 0; k-- {
		if now-sh.index.keys[k].stamp.Time >= tau { // ages strictly less than tau qualify
			break
		}
		n++
	}
	return n
}

// collectRecent returns this shard's entries with age strictly less than
// tau at time now, newest first, cloned. Caller holds sh.mu.
func (sh *shard) collectRecent(now, tau int64) []Entry {
	n := sh.recentCount(now, tau)
	if n == 0 {
		return nil
	}
	recs := make([]Entry, 0, n)
	for k := len(sh.index.keys) - 1; k >= len(sh.index.keys)-n; k-- {
		recs = append(recs, sh.entries[sh.index.keys[k].key].clone())
	}
	return recs
}

// mergeScratch is the reusable workspace for collectMerged: the per-shard
// record slices plus the merge cursors. Pooled (mirroring transport's
// wireCall pool) because every peel round of every concurrent exchange
// would otherwise allocate a fresh heap of slices.
type mergeScratch struct {
	per    [][]Entry
	cursor []int
}

var mergeScratchPool = sync.Pool{New: func() any { return new(mergeScratch) }}

func getMergeScratch(n int) *mergeScratch {
	sc := mergeScratchPool.Get().(*mergeScratch)
	if cap(sc.per) < n {
		sc.per = make([][]Entry, n)
		sc.cursor = make([]int, n)
	}
	sc.per = sc.per[:n]
	sc.cursor = sc.cursor[:n]
	return sc
}

// putMergeScratch zeroes the Entry values before pooling — they hold
// caller data (keys, values, retention slices) that the pool must not pin
// — but keeps the backing arrays for reuse.
func putMergeScratch(sc *mergeScratch) {
	for i := range sc.per {
		clear(sc.per[i])
		sc.per[i] = sc.per[i][:0]
	}
	mergeScratchPool.Put(sc)
}

// mergeDesc k-way merges per-shard entry slices (each already newest
// first) into one newest-first slice, stopping after limit records
// (limit <= 0 means all). Timestamps are globally unique, so the merged
// order is total and identical to the seed's single global index walk.
// cursor is optional scratch of len(per) (nil allocates).
func mergeDesc(per [][]Entry, cursor []int, limit int) []Entry {
	total := 0
	for _, p := range per {
		total += len(p)
	}
	if limit <= 0 || limit > total {
		limit = total
	}
	out := make([]Entry, 0, limit)
	if cursor == nil {
		cursor = make([]int, len(per))
	} else {
		clear(cursor)
	}
	for len(out) < limit {
		best := -1
		for i, p := range per {
			if cursor[i] >= len(p) {
				continue
			}
			if best < 0 || per[best][cursor[best]].Stamp.Less(p[cursor[i]].Stamp) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, per[best][cursor[best]])
		cursor[best]++
	}
	return out
}

// mergeAsc k-way merges per-shard entry slices (each oldest first) into
// one oldest-first slice.
func mergeAsc(per [][]Entry) []Entry {
	total := 0
	for _, p := range per {
		total += len(p)
	}
	out := make([]Entry, 0, total)
	cursor := make([]int, len(per))
	for len(out) < total {
		best := -1
		for i, p := range per {
			if cursor[i] >= len(p) {
				continue
			}
			if best < 0 || p[cursor[i]].Stamp.Less(per[best][cursor[best]].Stamp) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, per[best][cursor[best]])
		cursor[best]++
	}
	return out
}
