package store

import (
	"epidemic/internal/timestamp"
)

// liveSum returns this shard's checksum excluding dormant death
// certificates (activation older than tau1 at time now). Caller holds
// sh.mu (read suffices).
func (sh *shard) liveSum(now, tau1 int64) uint64 {
	sum := sh.sum
	for key := range sh.deaths {
		e := sh.entries[key]
		if now-e.Activation.Time > tau1 {
			sum ^= e.hash()
		}
	}
	return sum
}

// ChecksumVector returns the per-shard live checksums (dormant death
// certificates excluded, exactly as ChecksumLive) as one slice indexed by
// shard. Each shard is read under its own lock with no merge, so the
// vector costs O(S + deaths) regardless of database size, and XOR-folding
// it reproduces ChecksumLive. Two stores with the same shard count place
// every key in the same stripe (FNV-1a masked to the power-of-two count),
// which is what lets anti-entropy compare vectors across replicas and
// localize divergence to stripes.
func (s *Store) ChecksumVector(now, tau1 int64) []uint64 {
	return s.AppendChecksumVector(nil, now, tau1)
}

// AppendChecksumVector appends the per-shard live checksums to dst and
// returns the extended slice, so wire-path callers can reuse a pooled
// backing array instead of allocating a fresh vector per exchange.
func (s *Store) AppendChecksumVector(dst []uint64, now, tau1 int64) []uint64 {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		dst = append(dst, sh.liveSum(now, tau1))
		sh.mu.RUnlock()
	}
	return dst
}

// ChecksumShard returns the live checksum of shard i alone. Like slice
// indexing, i must be in [0, ShardCount()).
func (s *Store) ChecksumShard(i int, now, tau1 int64) uint64 {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.liveSum(now, tau1)
}

// PeelBatchShard is PeelBatch restricted to shard i: up to limit of that
// shard's index records strictly older than bound are examined newest
// first and the non-dormant ones returned, with the same
// examined-versus-returned resume semantics (next is the oldest record
// examined, more reports whether older records remain). Shard-vector
// anti-entropy walks only the diverged stripes this way, so a δ-entry
// divergence under a deep database examines O(δ + N/S) records per
// diverged stripe instead of O(N) for the whole store.
func (s *Store) PeelBatchShard(i int, bound timestamp.T, limit int, now, tau1 int64) (batch []Entry, next timestamp.T, more bool) {
	sh := &s.shards[i]
	sh.mu.RLock()
	recs, total := sh.collectOlder(bound, limit)
	sh.mu.RUnlock()
	if len(recs) == 0 {
		return nil, bound, false
	}
	batch = make([]Entry, 0, len(recs))
	for _, e := range recs {
		if !IsDormant(e, now, tau1) {
			batch = append(batch, e)
		}
		next = e.Stamp
	}
	return batch, next, total > len(recs)
}

// RecentUpdatesShard returns shard i's entries with ordinary-timestamp age
// strictly less than tau at time now, newest first — the per-stripe slice
// of the paper's recent update list (§1.3), for callers that keep
// per-shard sync state (partial replication hangs per-replica-set windows
// on this).
func (s *Store) RecentUpdatesShard(i int, now, tau int64) []Entry {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.collectRecent(now, tau)
}
