package store

import (
	"testing"

	"epidemic/internal/timestamp"
)

// testPair returns two stores sharing one simulated time source.
func testPair(t *testing.T) (*Store, *Store, *timestamp.Simulated) {
	t.Helper()
	src := timestamp.NewSimulated(1000)
	return New(1, src.ClockAt(1)), New(2, src.ClockAt(2)), src
}

func TestUpdateLookup(t *testing.T) {
	s, _, _ := testPair(t)
	if _, ok := s.Lookup("k"); ok {
		t.Fatal("lookup on empty store succeeded")
	}
	e := s.Update("k", Value("v1"))
	if e.Key != "k" || string(e.Value) != "v1" || e.IsDeath() {
		t.Fatalf("bad entry %+v", e)
	}
	v, ok := s.Lookup("k")
	if !ok || string(v) != "v1" {
		t.Fatalf("Lookup = %q, %v", v, ok)
	}
	e2 := s.Update("k", Value("v2"))
	if !e.Stamp.Less(e2.Stamp) {
		t.Fatal("second update must have later stamp")
	}
	v, _ = s.Lookup("k")
	if string(v) != "v2" {
		t.Fatalf("Lookup after update = %q", v)
	}
	if s.Len() != 1 || s.LiveLen() != 1 {
		t.Fatalf("Len=%d LiveLen=%d", s.Len(), s.LiveLen())
	}
}

func TestUpdateNilValueIsNotDeletion(t *testing.T) {
	s, _, _ := testPair(t)
	e := s.Update("k", nil)
	if e.IsDeath() {
		t.Fatal("Update(nil) must store an empty value, not a death certificate")
	}
	if _, ok := s.Lookup("k"); !ok {
		t.Fatal("empty value should be visible")
	}
}

func TestDeleteHidesItem(t *testing.T) {
	s, _, _ := testPair(t)
	s.Update("k", Value("v"))
	dc := s.Delete("k", []timestamp.SiteID{1, 5})
	if !dc.IsDeath() {
		t.Fatal("Delete must produce a death certificate")
	}
	if !dc.RetainedBy(5) || dc.RetainedBy(7) {
		t.Fatal("retention list wrong")
	}
	if _, ok := s.Lookup("k"); ok {
		t.Fatal("deleted item visible")
	}
	if _, ok := s.Get("k"); !ok {
		t.Fatal("raw Get must still see the certificate")
	}
	if s.Len() != 1 || s.LiveLen() != 0 {
		t.Fatalf("Len=%d LiveLen=%d", s.Len(), s.LiveLen())
	}
}

func TestApplyNewerWins(t *testing.T) {
	a, b, _ := testPair(t)
	e1 := a.Update("k", Value("old"))
	e2 := b.Update("k", Value("new")) // later stamp (same sim time, higher site breaks tie)
	if !e1.Stamp.Less(e2.Stamp) {
		t.Fatal("test setup: e2 must be newer")
	}
	if got := a.Apply(e2); got != Applied {
		t.Fatalf("Apply newer = %v", got)
	}
	if got := a.Apply(e1); got != Unchanged {
		t.Fatalf("Apply older = %v", got)
	}
	if got := a.Apply(e2); got != Unchanged {
		t.Fatalf("Apply duplicate = %v", got)
	}
	v, _ := a.Lookup("k")
	if string(v) != "new" {
		t.Fatalf("value = %q", v)
	}
}

func TestApplyResultChanged(t *testing.T) {
	if !Applied.Changed() || !ActivationAdvanced.Changed() {
		t.Error("Applied/ActivationAdvanced must report Changed")
	}
	if Unchanged.Changed() || RejectedByDeath.Changed() {
		t.Error("Unchanged/RejectedByDeath must not report Changed")
	}
	for _, r := range []ApplyResult{Unchanged, Applied, ActivationAdvanced, RejectedByDeath, ApplyResult(0)} {
		if r.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestDeathCertificateCancelsOldCopy(t *testing.T) {
	a, b, src := testPair(t)
	old := a.Update("k", Value("stale"))
	src.Advance(10)
	dc := b.Delete("k", nil)

	// Death certificate arrives at a site holding the old item.
	if got := a.Apply(dc); got != Applied {
		t.Fatalf("Apply(dc) = %v", got)
	}
	if _, ok := a.Lookup("k"); ok {
		t.Fatal("item should be cancelled")
	}
	// Old copy arriving later must be rejected, not resurrected.
	if got := a.Apply(old); got != RejectedByDeath {
		t.Fatalf("Apply(old) = %v", got)
	}
	if _, ok := a.Lookup("k"); ok {
		t.Fatal("item resurrected")
	}
}

func TestUpdateAfterDeleteReinstates(t *testing.T) {
	a, _, src := testPair(t)
	a.Update("k", Value("v1"))
	src.Advance(1)
	a.Delete("k", nil)
	src.Advance(1)
	a.Update("k", Value("v2"))
	v, ok := a.Lookup("k")
	if !ok || string(v) != "v2" {
		t.Fatalf("reinstated Lookup = %q, %v", v, ok)
	}
	if len(a.DeathCertificates()) != 0 {
		t.Fatal("death certificate should be superseded")
	}
}

func TestChecksumTracksContent(t *testing.T) {
	a, b, _ := testPair(t)
	if a.Checksum() != 0 {
		t.Fatal("empty checksum not 0")
	}
	e1 := a.Update("x", Value("1"))
	e2 := a.Update("y", Value("2"))
	if a.Checksum() == 0 {
		t.Fatal("checksum did not change")
	}
	// Same content on another store => same checksum regardless of order.
	b.Apply(e2)
	b.Apply(e1)
	if a.Checksum() != b.Checksum() {
		t.Fatal("equal content, unequal checksum")
	}
	// Divergence changes it.
	b.Update("z", Value("3"))
	if a.Checksum() == b.Checksum() {
		t.Fatal("different content, equal checksum")
	}
}

func TestChecksumRemovalRestores(t *testing.T) {
	a, _, _ := testPair(t)
	before := a.Checksum()
	a.Update("k", Value("v"))
	sh := a.shardFor("k")
	sh.mu.Lock()
	sh.drop("k")
	sh.mu.Unlock()
	if a.Checksum() != before {
		t.Fatal("checksum not restored after drop")
	}
	if a.Len() != 0 {
		t.Fatal("entry not dropped")
	}
}

func TestReactivate(t *testing.T) {
	a, _, src := testPair(t)
	a.Delete("k", nil)
	dc, _ := a.Get("k")
	src.Advance(100)
	re, ok := a.Reactivate("k")
	if !ok {
		t.Fatal("Reactivate failed")
	}
	if re.Stamp != dc.Stamp {
		t.Fatal("ordinary timestamp must not move on reactivation")
	}
	if !dc.Activation.Less(re.Activation) {
		t.Fatal("activation timestamp must advance")
	}
	// Reactivating a live item fails.
	a.Update("live", Value("v"))
	if _, ok := a.Reactivate("live"); ok {
		t.Fatal("reactivated a live entry")
	}
	if _, ok := a.Reactivate("absent"); ok {
		t.Fatal("reactivated an absent key")
	}
}

func TestReactivatedCertificateDoesNotCancelNewerUpdate(t *testing.T) {
	// §2.2: somewhere in the network there is a legitimate update with a
	// timestamp between the original and revised timestamps of the death
	// certificate; it must survive.
	a, b, src := testPair(t)
	a.Delete("k", nil)
	src.Advance(10)
	reinstate := b.Update("k", Value("back")) // newer than the certificate
	src.Advance(10)
	re, _ := a.Reactivate("k")

	// The reinstating update meets the reactivated certificate.
	if got := b.Apply(re); got != Unchanged {
		t.Fatalf("newer update overwritten by reactivated certificate: %v", got)
	}
	if v, ok := b.Lookup("k"); !ok || string(v) != "back" {
		t.Fatalf("reinstated value lost: %q %v", v, ok)
	}
	// And the certificate holder accepts the newer update.
	if got := a.Apply(reinstate); got != Applied {
		t.Fatalf("certificate holder rejected newer update: %v", got)
	}
}

func TestActivationAdvancedMerge(t *testing.T) {
	a, b, src := testPair(t)
	dc := a.Delete("k", nil)
	b.Apply(dc)
	src.Advance(50)
	re, _ := a.Reactivate("k")
	if got := b.Apply(re); got != ActivationAdvanced {
		t.Fatalf("Apply(reactivated) = %v", got)
	}
	got, _ := b.Get("k")
	if got.Activation != re.Activation {
		t.Fatal("activation not adopted")
	}
	// Applying the stale original again changes nothing.
	if res := b.Apply(dc); res != Unchanged {
		t.Fatalf("Apply(stale dc) = %v", res)
	}
}

func TestExpireDeathCertificates(t *testing.T) {
	const tau1, tau2 = 100, 1000
	src := timestamp.NewSimulated(0)
	retSite := New(5, src.ClockAt(5))
	other := New(6, src.ClockAt(6))

	dc := retSite.Delete("k", []timestamp.SiteID{5})
	other.Apply(dc)

	// Before tau1: both keep it.
	src.Advance(tau1)
	if n := other.ExpireDeathCertificates(src.Read(), tau1, tau2); n != 0 {
		t.Fatalf("dropped %d before tau1", n)
	}
	// After tau1: only the retention site keeps it.
	src.Advance(1)
	if n := other.ExpireDeathCertificates(src.Read(), tau1, tau2); n != 1 {
		t.Fatalf("non-retention drop = %d, want 1", n)
	}
	if n := retSite.ExpireDeathCertificates(src.Read(), tau1, tau2); n != 0 {
		t.Fatalf("retention site dropped %d", n)
	}
	if _, ok := retSite.Get("k"); !ok {
		t.Fatal("retention site lost the dormant certificate")
	}
	// After tau1+tau2: everyone drops it.
	src.Advance(tau2)
	if n := retSite.ExpireDeathCertificates(src.Read(), tau1, tau2); n != 1 {
		t.Fatalf("retention site final drop = %d, want 1", n)
	}
	if retSite.Len() != 0 {
		t.Fatal("certificate not fully dropped")
	}
}

func TestIsDormant(t *testing.T) {
	src := timestamp.NewSimulated(0)
	s := New(1, src.ClockAt(1))
	dc := s.Delete("k", nil)
	if IsDormant(dc, src.Read(), 100) {
		t.Fatal("fresh certificate dormant")
	}
	if !IsDormant(dc, src.Read()+101, 100) {
		t.Fatal("old certificate not dormant")
	}
	live := s.Update("x", Value("v"))
	if IsDormant(live, src.Read()+1000, 1) {
		t.Fatal("live entry reported dormant")
	}
}

func TestChecksumLiveIgnoresDormant(t *testing.T) {
	const tau1 = 100
	src := timestamp.NewSimulated(0)
	a := New(1, src.ClockAt(1))
	b := New(2, src.ClockAt(2))
	e := a.Update("x", Value("v"))
	b.Apply(e)
	dc := a.Delete("gone", nil)
	b.Apply(dc)
	src.Advance(tau1 + 1)
	// b expires the certificate (not a retention site); a retains it
	// (simulate by not expiring). Their full checksums now differ but the
	// live checksums agree.
	b.ExpireDeathCertificates(src.Read(), tau1, 1<<40)
	if a.Checksum() == b.Checksum() {
		t.Fatal("full checksums should differ")
	}
	if a.ChecksumLive(src.Read(), tau1) != b.ChecksumLive(src.Read(), tau1) {
		t.Fatal("live checksums should agree")
	}
}

func TestRecentUpdates(t *testing.T) {
	src := timestamp.NewSimulated(0)
	s := New(1, src.ClockAt(1))
	s.Update("old", Value("1"))
	src.Advance(100)
	s.Update("mid", Value("2"))
	src.Advance(100)
	s.Update("new", Value("3"))

	got := s.RecentUpdates(src.Read(), 150)
	if len(got) != 2 {
		t.Fatalf("recent = %d entries, want 2", len(got))
	}
	if got[0].Key != "new" || got[1].Key != "mid" {
		t.Fatalf("order wrong: %v %v", got[0].Key, got[1].Key)
	}
	if n := len(s.RecentUpdates(src.Read(), 1<<40)); n != 3 {
		t.Fatalf("all-window recent = %d", n)
	}
	if n := len(s.RecentUpdates(src.Read(), 0)); n != 0 {
		t.Fatalf("zero-window recent = %d", n)
	}
}

func TestNewestFirstAndOlderThan(t *testing.T) {
	src := timestamp.NewSimulated(0)
	s := New(1, src.ClockAt(1))
	keys := []string{"a", "b", "c", "d"}
	for _, k := range keys {
		s.Update(k, Value(k))
		src.Advance(10)
	}
	got := s.NewestFirst(2)
	if len(got) != 2 || got[0].Key != "d" || got[1].Key != "c" {
		t.Fatalf("NewestFirst(2) = %v", got)
	}
	all := s.NewestFirst(0)
	if len(all) != 4 || all[3].Key != "a" {
		t.Fatalf("NewestFirst(0) = %v", all)
	}
	older := s.OlderThan(got[1].Stamp, 0)
	if len(older) != 2 || older[0].Key != "b" || older[1].Key != "a" {
		t.Fatalf("OlderThan = %v", older)
	}
	if n := len(s.OlderThan(all[3].Stamp, 0)); n != 0 {
		t.Fatalf("OlderThan(oldest) = %d entries", n)
	}
	limited := s.OlderThan(got[0].Stamp, 1)
	if len(limited) != 1 || limited[0].Key != "c" {
		t.Fatalf("OlderThan limit = %v", limited)
	}
}

func TestSnapshotAndKeysSorted(t *testing.T) {
	s, _, _ := testPair(t)
	s.Update("b", Value("2"))
	s.Update("a", Value("1"))
	s.Delete("c", nil)
	snap := s.Snapshot()
	if len(snap) != 3 || snap[0].Key != "a" || snap[2].Key != "c" {
		t.Fatalf("Snapshot = %v", snap)
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
	// Mutating the snapshot must not affect the store.
	snap[0].Value[0] = 'X'
	if v, _ := s.Lookup("a"); string(v) != "1" {
		t.Fatal("snapshot aliases store memory")
	}
}

func TestContentEqual(t *testing.T) {
	a, b, _ := testPair(t)
	if !ContentEqual(a, b) {
		t.Fatal("empty stores unequal")
	}
	e := a.Update("k", Value("v"))
	if ContentEqual(a, b) {
		t.Fatal("diverged stores equal")
	}
	b.Apply(e)
	if !ContentEqual(a, b) {
		t.Fatal("synced stores unequal")
	}
}

func TestEntryEqualIgnoresMetadata(t *testing.T) {
	a, _, src := testPair(t)
	dc := a.Delete("k", []timestamp.SiteID{1})
	src.Advance(10)
	re, _ := a.Reactivate("k")
	if !dc.Equal(re) {
		t.Fatal("activation advance must not change content equality")
	}
	if dc.hash() != re.hash() {
		t.Fatal("hash must ignore activation")
	}
}

func TestScanPrefix(t *testing.T) {
	s, _, _ := testPair(t)
	s.Update("app/a", Value("1"))
	s.Update("app/b", Value("2"))
	s.Update("other", Value("3"))
	s.Delete("app/dead", nil)

	got := s.ScanPrefix("app/")
	if len(got) != 2 || got[0].Key != "app/a" || got[1].Key != "app/b" {
		t.Fatalf("ScanPrefix = %v", got)
	}
	if len(s.ScanPrefix("none/")) != 0 {
		t.Error("unexpected matches")
	}
	all := s.ScanPrefix("")
	if len(all) != 3 { // death certificate excluded
		t.Errorf("empty prefix = %d entries, want 3", len(all))
	}
}
