// Package store implements the replicated database each site maintains: a
// partial map from keys to (value, timestamp) pairs (§1.1 of the paper),
// including deletion via death certificates with activation timestamps and
// dormant retention (§2), incremental checksums, recent-update lists, and
// the reverse-timestamp index used by the peel-back variant of anti-entropy
// (§1.3).
package store

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"

	"epidemic/internal/timestamp"
)

// Value is a database value. A nil Value is the paper's distinguished NIL:
// the item has been deleted and the entry is a death certificate.
type Value []byte

// Entry is one (key, value, timestamp) triple. The zero Entry is invalid.
type Entry struct {
	Key   string
	Value Value
	// Stamp is the ordinary timestamp: a pair with a larger Stamp always
	// supersedes one with a smaller Stamp.
	Stamp timestamp.T
	// Activation is the activation timestamp of §2.2. For ordinary entries
	// and freshly created death certificates it equals Stamp; reactivating
	// a dormant death certificate advances Activation (never Stamp), so the
	// certificate propagates again without cancelling newer updates.
	Activation timestamp.T
	// Retention lists the sites that keep a dormant copy of this death
	// certificate after τ1 (§2.1). Empty for ordinary entries.
	Retention []timestamp.SiteID
}

// IsDeath reports whether the entry is a death certificate.
func (e Entry) IsDeath() bool { return e.Value == nil }

// RetainedBy reports whether site is on the entry's retention list.
func (e Entry) RetainedBy(site timestamp.SiteID) bool {
	for _, s := range e.Retention {
		if s == site {
			return true
		}
	}
	return false
}

// Supersedes reports whether e supersedes other (strictly newer ordinary
// timestamp for the same key).
func (e Entry) Supersedes(other Entry) bool { return other.Stamp.Less(e.Stamp) }

// Equal reports whether two entries carry identical database content
// (key, value, ordinary timestamp). Activation and retention metadata are
// not content.
func (e Entry) Equal(other Entry) bool {
	return e.Key == other.Key && e.Stamp == other.Stamp && bytes.Equal(e.Value, other.Value)
}

// hash returns a 64-bit content hash of the entry. Database checksums are
// the XOR of entry hashes, so they can be maintained incrementally and are
// independent of iteration order. Activation and retention metadata are
// excluded: two databases agreeing on content must agree on checksum.
func (e Entry) hash() uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(e.Key))
	_, _ = h.Write([]byte{0})
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(e.Stamp.Time))
	_, _ = h.Write(b[:])
	binary.LittleEndian.PutUint32(b[:4], uint32(e.Stamp.Site))
	_, _ = h.Write(b[:4])
	binary.LittleEndian.PutUint32(b[:4], e.Stamp.Seq)
	_, _ = h.Write(b[:4])
	if e.IsDeath() {
		_, _ = h.Write([]byte{0})
	} else {
		_, _ = h.Write([]byte{1})
		_, _ = h.Write(e.Value)
	}
	return h.Sum64()
}

// clone returns a deep copy of the entry so callers cannot alias internal
// state.
func (e Entry) clone() Entry {
	out := e
	if e.Value != nil {
		// Preserve non-nilness even for empty values: nil means deletion.
		v := make(Value, len(e.Value))
		copy(v, e.Value)
		out.Value = v
	}
	if e.Retention != nil {
		out.Retention = append([]timestamp.SiteID(nil), e.Retention...)
	}
	return out
}
