package store

import (
	"fmt"
	"testing"

	"epidemic/internal/timestamp"
)

// buildShardVecStore writes n entries plus some deletions so the vector
// tests see live entries, fresh death certificates, and dormant ones.
func buildShardVecStore(t *testing.T, shards, n int) (*Store, *timestamp.Simulated) {
	t.Helper()
	src := timestamp.NewSimulated(1)
	st := NewSharded(1, src.ClockAt(1), shards)
	for i := 0; i < n; i++ {
		st.Update(fmt.Sprintf("sv%04d", i), Value("v"))
		src.Advance(1)
	}
	// Every 7th key becomes a death certificate; the early ones will be
	// dormant by the time the tests read "now".
	for i := 0; i < n; i += 7 {
		st.Delete(fmt.Sprintf("sv%04d", i), nil)
		src.Advance(1)
	}
	src.Advance(50)
	return st, src
}

func TestChecksumVectorFoldsToLive(t *testing.T) {
	st, _ := buildShardVecStore(t, 8, 200)
	now := st.Now()
	for _, tau1 := range []int64{0, 40, 1 << 40} {
		vec := st.ChecksumVector(now, tau1)
		if len(vec) != st.ShardCount() {
			t.Fatalf("vector len = %d, want %d", len(vec), st.ShardCount())
		}
		var fold uint64
		for i, v := range vec {
			fold ^= v
			if got := st.ChecksumShard(i, now, tau1); got != v {
				t.Errorf("tau1=%d shard %d: ChecksumShard = %#x, vector = %#x", tau1, i, got, v)
			}
		}
		if live := st.ChecksumLive(now, tau1); fold != live {
			t.Errorf("tau1=%d: vector fold = %#x, ChecksumLive = %#x", tau1, fold, live)
		}
	}
}

func TestAppendChecksumVectorReusesBacking(t *testing.T) {
	st, _ := buildShardVecStore(t, 4, 40)
	now := st.Now()
	buf := make([]uint64, 0, st.ShardCount())
	got := st.AppendChecksumVector(buf, now, 1<<40)
	if &got[0] != &buf[:1][0] {
		t.Error("AppendChecksumVector reallocated despite sufficient capacity")
	}
	want := st.ChecksumVector(now, 1<<40)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard %d: append = %#x, fresh = %#x", i, got[i], want[i])
		}
	}
}

// TestPeelBatchShardMatchesGlobalWalk checks that walking every shard to
// exhaustion visits exactly the entries a global peel walk visits, with
// per-shard newest-first order and no duplicates.
func TestPeelBatchShardMatchesGlobalWalk(t *testing.T) {
	st, _ := buildShardVecStore(t, 8, 300)
	now := st.Now()
	const tau1 = 40 // early deletions are dormant, late ones live

	want := map[string]Entry{}
	bound, more := PeelStart, true
	for more {
		var batch []Entry
		batch, bound, more = st.PeelBatch(bound, 16, now, tau1)
		for _, e := range batch {
			want[e.Key] = e
		}
	}

	got := map[string]Entry{}
	for i := 0; i < st.ShardCount(); i++ {
		bound, more := PeelStart, true
		var prev timestamp.T
		first := true
		for more {
			var batch []Entry
			batch, bound, more = st.PeelBatchShard(i, bound, 16, now, tau1)
			for _, e := range batch {
				if sh := st.shardFor(e.Key); sh != &st.shards[i] {
					t.Fatalf("shard %d returned foreign key %q", i, e.Key)
				}
				if !first && prev.Less(e.Stamp) {
					t.Fatalf("shard %d walk not newest-first: %v then %v", i, prev, e.Stamp)
				}
				prev, first = e.Stamp, false
				if _, dup := got[e.Key]; dup {
					t.Fatalf("key %q returned twice", e.Key)
				}
				got[e.Key] = e
			}
		}
		// An exhausted shard walk stays exhausted.
		if batch, _, more := st.PeelBatchShard(i, bound, 16, now, tau1); len(batch) != 0 || more {
			t.Fatalf("shard %d walk past the end returned %d entries, more=%v", i, len(batch), more)
		}
	}

	if len(got) != len(want) {
		t.Fatalf("shard walks visited %d entries, global walk %d", len(got), len(want))
	}
	for k, e := range want {
		if g, ok := got[k]; !ok || !g.Equal(e) {
			t.Errorf("key %q differs between shard and global walks", k)
		}
	}
}

func TestRecentUpdatesShardUnionMatchesGlobal(t *testing.T) {
	st, _ := buildShardVecStore(t, 8, 120)
	now := st.Now()
	const tau = 100

	want := map[string]bool{}
	for _, e := range st.RecentUpdates(now, tau) {
		want[e.Key] = true
	}
	got := map[string]bool{}
	for i := 0; i < st.ShardCount(); i++ {
		var prev timestamp.T
		for j, e := range st.RecentUpdatesShard(i, now, tau) {
			if j > 0 && prev.Less(e.Stamp) {
				t.Fatalf("shard %d recents not newest-first", i)
			}
			prev = e.Stamp
			if got[e.Key] {
				t.Fatalf("key %q in two shard windows", e.Key)
			}
			got[e.Key] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("shard windows union = %d keys, global window = %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("key %q missing from shard windows", k)
		}
	}
}

// TestCollectMergedScratchPooled pins the satellite win: a peel round's
// scratch (per-shard slice heap + merge cursors) comes from the pool. The
// returned entries are clones that must escape, so the pooling is
// observable on an empty walk — before pooling it cost the [][]Entry heap
// plus the cursor slice; now it is allocation-free.
func TestCollectMergedScratchPooled(t *testing.T) {
	st, _ := buildShardVecStore(t, 16, 400)
	exhausted := timestamp.T{} // nothing is older than the zero stamp
	// Warm the pool.
	for i := 0; i < 4; i++ {
		st.OlderThan(exhausted, 64)
	}
	avg := testing.AllocsPerRun(100, func() {
		st.OlderThan(exhausted, 64)
	})
	if avg > 0 {
		t.Errorf("empty OlderThan allocates %.1f/op with pooled scratch, want 0", avg)
	}
}
