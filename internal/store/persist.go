package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The paper assumes replicas and mail queues live on stable storage (§1.2:
// "the queues are kept in stable storage at the mail server so they are
// unaffected by server crashes"). Save/Load give a Store the same
// property: a flat gob snapshot of all entries (including death
// certificates and their activation/retention metadata). Timestamps are
// preserved verbatim, so a reloaded replica re-enters the epidemic exactly
// where it left off and anti-entropy repairs whatever it missed while
// down.

// snapshotHeader versions the on-disk format.
type snapshotHeader struct {
	Magic   string
	Version int
	Entries int
}

const (
	snapshotMagic   = "epidemic-store"
	snapshotVersion = 1
)

// Save writes a snapshot of the store to w.
func (s *Store) Save(w io.Writer) error {
	entries := s.Snapshot()
	enc := gob.NewEncoder(w)
	if err := enc.Encode(snapshotHeader{Magic: snapshotMagic, Version: snapshotVersion, Entries: len(entries)}); err != nil {
		return fmt.Errorf("store: encode header: %w", err)
	}
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("store: encode entry %q: %w", e.Key, err)
		}
	}
	return nil
}

// Load merges a snapshot from r into the store via the ordinary timestamp
// merge rules, so loading is safe even over a non-empty replica (newer
// local state wins). It returns the number of entries read.
func (s *Store) Load(r io.Reader) (int, error) {
	dec := gob.NewDecoder(r)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return 0, fmt.Errorf("store: decode header: %w", err)
	}
	if hdr.Magic != snapshotMagic {
		return 0, fmt.Errorf("store: not a store snapshot (magic %q)", hdr.Magic)
	}
	if hdr.Version != snapshotVersion {
		return 0, fmt.Errorf("store: unsupported snapshot version %d", hdr.Version)
	}
	for i := 0; i < hdr.Entries; i++ {
		var e Entry
		if err := dec.Decode(&e); err != nil {
			return i, fmt.Errorf("store: decode entry %d/%d: %w", i, hdr.Entries, err)
		}
		s.Apply(e)
	}
	return hdr.Entries, nil
}

// SaveFile atomically writes a snapshot to path (write temp + rename).
func (s *Store) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".store-*.tmp")
	if err != nil {
		return fmt.Errorf("store: create temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := s.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: rename: %w", err)
	}
	return nil
}

// LoadFile merges a snapshot file into the store. A missing file is not
// an error (fresh replica); it returns (0, nil).
func (s *Store) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: open snapshot: %w", err)
	}
	defer f.Close()
	return s.Load(f)
}
