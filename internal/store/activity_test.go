package store

import "testing"

func TestActivityTouchOrdering(t *testing.T) {
	a := NewActivityList()
	a.Touch("x")
	a.Touch("y")
	a.Touch("z")
	got := a.Front(0)
	want := []string{"z", "y", "x"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Front = %v, want %v", got, want)
		}
	}
	a.Touch("x") // useful again: to front
	if got := a.Front(1); got[0] != "x" {
		t.Fatalf("after Touch, front = %v", got)
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestActivityFrontLimit(t *testing.T) {
	a := NewActivityList()
	for _, k := range []string{"a", "b", "c", "d"} {
		a.Touch(k)
	}
	if got := a.Front(2); len(got) != 2 || got[0] != "d" || got[1] != "c" {
		t.Fatalf("Front(2) = %v", got)
	}
	if got := a.Front(99); len(got) != 4 {
		t.Fatalf("Front(99) = %v", got)
	}
}

func TestActivityDemote(t *testing.T) {
	a := NewActivityList()
	a.Touch("x")
	a.Touch("y") // order: y x
	a.Demote("y")
	if got := a.Front(0); got[0] != "x" || got[1] != "y" {
		t.Fatalf("after Demote = %v", got)
	}
	a.Demote("y") // already last: no-op
	if got := a.Front(0); got[1] != "y" {
		t.Fatalf("Demote at tail moved: %v", got)
	}
	a.Demote("missing") // ignored
}

func TestActivityAppendAndRemove(t *testing.T) {
	a := NewActivityList()
	a.Touch("hot")
	a.Append("cold")
	a.Append("cold") // duplicate ignored
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	if got := a.Front(0); got[0] != "hot" || got[1] != "cold" {
		t.Fatalf("order = %v", got)
	}
	a.Append("hot") // existing key keeps its position
	if got := a.Front(1); got[0] != "hot" {
		t.Fatal("Append must not move existing keys")
	}
	a.Remove("hot")
	if a.Len() != 1 || a.Rank("hot") != -1 {
		t.Fatal("Remove failed")
	}
	a.Remove("hot") // double remove is fine
}

func TestActivityAfter(t *testing.T) {
	a := NewActivityList()
	for _, k := range []string{"c", "b", "a"} { // order after: a b c
		a.Touch(k)
	}
	got := a.After("a", 2)
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("After(a,2) = %v", got)
	}
	if got := a.After("c", 5); len(got) != 0 {
		t.Fatalf("After(last) = %v", got)
	}
	if got := a.After("zz", 1); len(got) != 1 || got[0] != "a" {
		t.Fatalf("After(unknown) = %v", got)
	}
	if got := a.After("a", 0); len(got) != 2 {
		t.Fatalf("After(a,0) = %v", got)
	}
}

func TestActivityRank(t *testing.T) {
	a := NewActivityList()
	a.Touch("x")
	a.Touch("y")
	if a.Rank("y") != 0 || a.Rank("x") != 1 {
		t.Fatalf("ranks: y=%d x=%d", a.Rank("y"), a.Rank("x"))
	}
	if a.Rank("none") != -1 {
		t.Fatal("unknown rank should be -1")
	}
}
