package store

import "container/list"

// ActivityList is the doubly-linked list of §1.5's combined peel-back /
// rumor-mongering scheme. Sites send updates in local activity order;
// rumor feedback moves useful updates to the front while useless ones slip
// gradually deeper. Unlike a hot-rumor list, membership is not binary: any
// update in the database can become "hot" again simply by moving forward.
//
// ActivityList is not safe for concurrent use; callers synchronise.
type ActivityList struct {
	ll  *list.List // front = most active; values are keys (string)
	pos map[string]*list.Element
}

// NewActivityList returns an empty list.
func NewActivityList() *ActivityList {
	return &ActivityList{ll: list.New(), pos: make(map[string]*list.Element)}
}

// Len returns the number of tracked keys.
func (a *ActivityList) Len() int { return a.ll.Len() }

// Touch moves key to the front, inserting it if absent. Call it when a key
// is updated locally, when a received update was useful, or when feedback
// says the partner needed it.
func (a *ActivityList) Touch(key string) {
	if el, ok := a.pos[key]; ok {
		a.ll.MoveToFront(el)
		return
	}
	a.pos[key] = a.ll.PushFront(key)
}

// Demote moves key one position toward the back (useless sends slip
// gradually deeper). Unknown keys are ignored.
func (a *ActivityList) Demote(key string) {
	el, ok := a.pos[key]
	if !ok {
		return
	}
	if next := el.Next(); next != nil {
		a.ll.MoveAfter(el, next)
	}
}

// Append adds key at the back if absent (cold history, e.g. on initial
// load), leaving existing positions alone.
func (a *ActivityList) Append(key string) {
	if _, ok := a.pos[key]; ok {
		return
	}
	a.pos[key] = a.ll.PushBack(key)
}

// Remove deletes key from the list (entry expired).
func (a *ActivityList) Remove(key string) {
	if el, ok := a.pos[key]; ok {
		a.ll.Remove(el)
		delete(a.pos, key)
	}
}

// Front returns up to n keys from the front — the batch "analogous to the
// hot rumor list". n <= 0 returns all keys in order.
func (a *ActivityList) Front(n int) []string {
	if n <= 0 || n > a.ll.Len() {
		n = a.ll.Len()
	}
	out := make([]string, 0, n)
	for el := a.ll.Front(); el != nil && len(out) < n; el = el.Next() {
		out = append(out, el.Value.(string))
	}
	return out
}

// After returns up to n keys following the position of key (the next
// batch when the first batch failed to reach checksum agreement). If key
// is unknown it behaves like Front(n).
func (a *ActivityList) After(key string, n int) []string {
	el, ok := a.pos[key]
	if !ok {
		return a.Front(n)
	}
	if n <= 0 {
		n = a.ll.Len()
	}
	out := make([]string, 0, n)
	for el = el.Next(); el != nil && len(out) < n; el = el.Next() {
		out = append(out, el.Value.(string))
	}
	return out
}

// Rank returns key's current 0-based position from the front, or -1.
func (a *ActivityList) Rank(key string) int {
	el, ok := a.pos[key]
	if !ok {
		return -1
	}
	rank := 0
	for e := a.ll.Front(); e != nil; e = e.Next() {
		if e == el {
			return rank
		}
		rank++
	}
	return -1
}
