package store

import (
	"testing"

	"epidemic/internal/timestamp"
)

// buildPeelStore writes n entries at distinct ticks and returns the store
// plus its shared clock source.
func buildPeelStore(t *testing.T, site timestamp.SiteID, n int) (*Store, *timestamp.Simulated) {
	t.Helper()
	src := timestamp.NewSimulated(1)
	st := New(site, src.ClockAt(site))
	for i := 0; i < n; i++ {
		st.Update(key(i), Value("v"))
		src.Advance(1)
	}
	return st, src
}

func key(i int) string {
	return "k" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}

func TestPeelBatchWalksNewestFirst(t *testing.T) {
	st, _ := buildPeelStore(t, 1, 10)
	now := st.Now()

	batch, next, more := st.PeelBatch(PeelStart, 4, now, 1<<40)
	if len(batch) != 4 || !more {
		t.Fatalf("first batch = %d entries, more=%v", len(batch), more)
	}
	if batch[0].Stamp.Less(batch[3].Stamp) {
		t.Errorf("batch not newest-first: %v then %v", batch[0].Stamp, batch[3].Stamp)
	}

	// Resuming from next yields strictly older entries, no overlap.
	seen := map[string]bool{}
	for _, e := range batch {
		seen[e.Key] = true
	}
	total := len(batch)
	for more {
		batch, next, more = st.PeelBatch(next, 4, now, 1<<40)
		for _, e := range batch {
			if seen[e.Key] {
				t.Fatalf("key %q returned twice", e.Key)
			}
			seen[e.Key] = true
		}
		total += len(batch)
	}
	if total != 10 {
		t.Errorf("walk returned %d entries, want 10", total)
	}

	// An exhausted walk stays exhausted.
	if batch, _, more := st.PeelBatch(next, 4, now, 1<<40); len(batch) != 0 || more {
		t.Errorf("walk past the end returned %d entries, more=%v", len(batch), more)
	}
}

func TestPeelBatchSkipsDormantButAdvances(t *testing.T) {
	src := timestamp.NewSimulated(1)
	st := New(1, src.ClockAt(1))
	// Three old deletions, then one fresh update. With tau1=10 the
	// certificates are dormant by the time we peel.
	for i := 0; i < 3; i++ {
		st.Update(key(i), Value("v"))
		st.Delete(key(i), nil)
		src.Advance(100)
	}
	st.Update("fresh", Value("v"))
	now := st.Now()

	batch, next, more := st.PeelBatch(PeelStart, 2, now, 10)
	if len(batch) != 1 || batch[0].Key != "fresh" {
		t.Fatalf("first batch = %+v, want only the fresh entry", batch)
	}
	if !more {
		t.Fatal("walk should continue past the first two records")
	}
	// The rest of the walk must terminate despite every record being
	// dormant, with the bound advancing through them.
	for more {
		batch, next, more = st.PeelBatch(next, 2, now, 10)
		if len(batch) != 0 {
			t.Fatalf("dormant batch returned entries: %+v", batch)
		}
	}
}

func TestPeelBatchZeroLimitReturnsAll(t *testing.T) {
	st, _ := buildPeelStore(t, 1, 7)
	batch, _, more := st.PeelBatch(PeelStart, 0, st.Now(), 1<<40)
	if len(batch) != 7 || more {
		t.Errorf("limit 0 returned %d entries, more=%v", len(batch), more)
	}
}

func TestLiveSnapshotExcludesDormant(t *testing.T) {
	src := timestamp.NewSimulated(1)
	st := New(1, src.ClockAt(1))
	st.Update("keep", Value("v"))
	st.Update("doomed", Value("v"))
	st.Delete("doomed", nil)
	src.Advance(100)
	st.Update("late", Value("v"))

	live := st.LiveSnapshot(st.Now(), 10)
	if len(live) != 2 {
		t.Fatalf("live snapshot = %d entries, want 2: %+v", len(live), live)
	}
	for _, e := range live {
		if e.Key == "doomed" {
			t.Error("dormant certificate leaked into live snapshot")
		}
	}
	// With a generous tau1 the certificate is still live and included.
	if live := st.LiveSnapshot(st.Now(), 1<<40); len(live) != 3 {
		t.Errorf("all-live snapshot = %d entries, want 3", len(live))
	}
}
