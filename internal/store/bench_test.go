package store

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"epidemic/internal/timestamp"
)

// The store benchmarks compare the sharded store against a single-mutex
// reference replica (the seed's design) on mixed workloads, at -cpu 1, 4
// and 8. The reference implements the same semantics for the benched
// operations — incremental checksum, time-index recent list, cloned reads
// — behind one sync.Mutex, so the comparison isolates the locking scheme.

// benchStore is the operation surface the mixed workloads exercise; both
// *Store and *mutexStore satisfy it.
type benchStore interface {
	Update(key string, value Value) Entry
	Get(key string) (Entry, bool)
	Checksum() uint64
	RecentUpdates(now, tau int64) []Entry
	Now() int64
}

// mutexStore is the seed's store for the benched operations: one map, one
// incremental checksum, one time index, one mutex.
type mutexStore struct {
	mu      sync.Mutex
	clock   timestamp.Clock
	entries map[string]Entry
	sum     uint64
	index   timeIndex
}

func newMutexStore(clock timestamp.Clock) *mutexStore {
	return &mutexStore{clock: clock, entries: make(map[string]Entry)}
}

func (m *mutexStore) Update(key string, value Value) Entry {
	v := make(Value, len(value))
	copy(v, value)
	ts := m.clock.Now()
	e := Entry{Key: key, Value: v, Stamp: ts, Activation: ts}
	m.mu.Lock()
	if old, ok := m.entries[key]; ok {
		m.sum ^= old.hash()
		m.index.remove(old.Stamp, key)
	}
	m.entries[key] = e
	m.sum ^= e.hash()
	m.index.insert(e.Stamp, key)
	m.mu.Unlock()
	return e.clone()
}

func (m *mutexStore) Get(key string) (Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		return Entry{}, false
	}
	return e.clone(), true
}

func (m *mutexStore) Checksum() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sum
}

func (m *mutexStore) RecentUpdates(now, tau int64) []Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Entry
	for k := len(m.index.keys) - 1; k >= 0; k-- {
		rec := m.index.keys[k]
		if now-rec.stamp.Time >= tau {
			break
		}
		out = append(out, m.entries[rec.key].clone())
	}
	return out
}

func (m *mutexStore) Now() int64 { return m.clock.Read() }

const (
	benchKeys    = 32768 // keyspace both reads and writes span
	benchHotKeys = 64    // rewritten after aging: the fixed recent set for the pure recent-list benchmark
	benchTau     = 32    // recency window in simulated time units
)

// benchVariants pairs each store construction with its subbenchmark name.
var benchVariants = []struct {
	name string
	mk   func(timestamp.Clock) benchStore
}{
	{"sharded", func(c timestamp.Clock) benchStore { return NewSharded(1, c, DefaultShards) }},
	{"mutex", func(c timestamp.Clock) benchStore { return newMutexStore(c) }},
}

// benchSetup preloads the keyspace, ages it past the recency window, then
// rewrites the hot prefix so a run that performs no updates still has a
// fixed recent set for RecentUpdates to return.
func benchSetup(mk func(timestamp.Clock) benchStore) (benchStore, []string, *timestamp.Simulated) {
	src := timestamp.NewSimulated(1)
	s := mk(src.ClockAt(1))
	keys := make([]string, benchKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
		s.Update(keys[i], Value("0123456789abcdef"))
	}
	src.Advance(2 * benchTau)
	for i := 0; i < benchHotKeys; i++ {
		s.Update(keys[i], Value("0123456789abcdef"))
	}
	return s, keys, src
}

// benchMixed drives a randomized operation mix from every parallel worker.
// pUpdate/pChecksum/pRecent are percentages; the remainder is Get. Updates
// hit uniformly random keys — the store-wide behavior anti-entropy Apply
// traffic produces — and advance simulated time by one unit each, so the
// recency window slides and RecentUpdates stays bounded at ~tau entries.
func benchMixed(b *testing.B, mk func(timestamp.Clock) benchStore, pUpdate, pChecksum, pRecent int) {
	s, keys, src := benchSetup(mk)
	var seed int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(atomic.AddInt64(&seed, 1)))
		for pb.Next() {
			r := rng.Intn(100)
			switch {
			case r < pUpdate:
				s.Update(keys[rng.Intn(len(keys))], Value("fedcba9876543210"))
				src.Advance(1)
			case r < pUpdate+pChecksum:
				s.Checksum()
			case r < pUpdate+pChecksum+pRecent:
				s.RecentUpdates(s.Now(), benchTau)
			default:
				s.Get(keys[rng.Intn(len(keys))])
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkStoreGetHeavy is the read-dominated mix a serving replica sees
// between gossip rounds: 88% Get, 10% Update, 1% Checksum, 1% RecentUpdates.
func BenchmarkStoreGetHeavy(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) { benchMixed(b, v.mk, 10, 1, 1) })
	}
}

// BenchmarkStoreWriteHeavy skews toward mutation: 50% Update, 44% Get,
// 5% Checksum, 1% RecentUpdates.
func BenchmarkStoreWriteHeavy(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) { benchMixed(b, v.mk, 50, 5, 1) })
	}
}

// BenchmarkStoreChecksum measures the anti-entropy comparison primitive
// alone: the per-shard fold vs the single-mutex read.
func BenchmarkStoreChecksum(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) { benchMixed(b, v.mk, 0, 100, 0) })
	}
}

// BenchmarkStoreRecentUpdates measures the merged recent-update list alone
// (the hot set stays at benchHotKeys entries throughout).
func BenchmarkStoreRecentUpdates(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) { benchMixed(b, v.mk, 0, 0, 100) })
	}
}
