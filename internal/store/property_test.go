package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"epidemic/internal/timestamp"
)

// genEntries produces a deterministic stream of updates/deletes spread
// across a handful of keys and sites.
func genEntries(seed int64, n int) []Entry {
	rng := rand.New(rand.NewSource(seed))
	src := timestamp.NewSimulated(0)
	stores := make([]*Store, 4)
	for i := range stores {
		stores[i] = New(timestamp.SiteID(i), src.ClockAt(timestamp.SiteID(i)))
	}
	keys := []string{"a", "b", "c", "d", "e"}
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		s := stores[rng.Intn(len(stores))]
		k := keys[rng.Intn(len(keys))]
		if rng.Intn(4) == 0 {
			out = append(out, s.Delete(k, nil))
		} else {
			out = append(out, s.Update(k, Value{byte(rng.Intn(256))}))
		}
		src.Advance(int64(rng.Intn(3)))
	}
	return out
}

func freshStore(site timestamp.SiteID) *Store {
	return New(site, timestamp.NewSimulated(0).ClockAt(site))
}

// Property: applying the same set of entries in any order yields identical
// content (merge is order-independent), the heart of eventual consistency.
func TestApplyOrderIndependenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		entries := genEntries(seed, 40)
		a := freshStore(100)
		for _, e := range entries {
			a.Apply(e)
		}
		b := freshStore(101)
		perm := rand.New(rand.NewSource(seed ^ 0x5eed)).Perm(len(entries))
		for _, i := range perm {
			b.Apply(entries[i])
		}
		return ContentEqual(a, b) && a.Checksum() == b.Checksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Apply is idempotent — replaying every entry a second time
// changes nothing.
func TestApplyIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		entries := genEntries(seed, 30)
		s := freshStore(100)
		for _, e := range entries {
			s.Apply(e)
		}
		sum := s.Checksum()
		for _, e := range entries {
			if res := s.Apply(e); res.Changed() {
				return false
			}
		}
		return s.Checksum() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: after applying all entries, every key holds the entry with the
// largest timestamp among those generated for it (unless a newer death
// certificate for the key is present, in which case that wins — which is
// the same statement, since certificates are entries).
func TestNewestEntryWinsProperty(t *testing.T) {
	f := func(seed int64) bool {
		entries := genEntries(seed, 50)
		s := freshStore(100)
		newest := make(map[string]Entry)
		for _, e := range entries {
			s.Apply(e)
			if cur, ok := newest[e.Key]; !ok || cur.Stamp.Less(e.Stamp) {
				newest[e.Key] = e
			}
		}
		for k, want := range newest {
			got, ok := s.Get(k)
			if !ok || !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the incremental checksum always equals a from-scratch checksum
// of the snapshot.
func TestChecksumMatchesRecomputationProperty(t *testing.T) {
	f := func(seed int64) bool {
		entries := genEntries(seed, 40)
		s := freshStore(100)
		for _, e := range entries {
			s.Apply(e)
		}
		var sum uint64
		for _, e := range s.Snapshot() {
			sum ^= e.hash()
		}
		return sum == s.Checksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the time index stays consistent — NewestFirst(0) is sorted
// strictly descending and covers exactly the store's keys.
func TestTimeIndexConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		entries := genEntries(seed, 60)
		s := freshStore(100)
		for _, e := range entries {
			s.Apply(e)
		}
		list := s.NewestFirst(0)
		if len(list) != s.Len() {
			return false
		}
		seen := make(map[string]bool, len(list))
		for i, e := range list {
			if seen[e.Key] {
				return false
			}
			seen[e.Key] = true
			if i > 0 && list[i-1].Stamp.Less(e.Stamp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimeIndexLen(t *testing.T) {
	s := freshStore(1)
	s.Update("a", Value("1"))
	s.Update("b", Value("2"))
	s.Update("a", Value("3"))
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.index.len()
		sh.mu.Unlock()
	}
	if n != 2 {
		t.Fatalf("index len = %d, want 2", n)
	}
}
