package store

import (
	"bytes"
	"testing"

	"epidemic/internal/timestamp"
)

// FuzzApply feeds arbitrary entries into a store and checks the
// invariants that every merge must preserve: the incremental checksum
// matches recomputation, the time index covers exactly the entries, and
// re-applying is a no-op.
func FuzzApply(f *testing.F) {
	f.Add("key", []byte("value"), int64(5), int32(1), uint32(0), false)
	f.Add("", []byte(nil), int64(0), int32(0), uint32(0), true)
	f.Add("k", []byte{}, int64(-3), int32(7), uint32(9), true)
	f.Fuzz(func(t *testing.T, key string, value []byte, tm int64, site int32, seq uint32, death bool) {
		src := timestamp.NewSimulated(1)
		s := New(1, src.ClockAt(1))
		s.Update("existing", Value("x"))

		e := Entry{
			Key:        key,
			Stamp:      timestamp.T{Time: tm, Site: timestamp.SiteID(site), Seq: seq},
			Activation: timestamp.T{Time: tm, Site: timestamp.SiteID(site), Seq: seq},
		}
		if !death {
			e.Value = value
			if e.Value == nil {
				e.Value = Value{}
			}
		}
		res := s.Apply(e)
		if res != Applied && res != Unchanged && res != RejectedByDeath && res != ActivationAdvanced {
			t.Fatalf("unexpected result %v", res)
		}
		// Checksum must match recomputation.
		var sum uint64
		for _, se := range s.Snapshot() {
			sum ^= se.hash()
		}
		if sum != s.Checksum() {
			t.Fatal("checksum diverged")
		}
		// Index covers exactly the entries.
		if len(s.NewestFirst(0)) != s.Len() {
			t.Fatal("index size mismatch")
		}
		// The global checksum is exactly the XOR fold of per-shard sums,
		// and every shard sum matches its own content.
		var fold uint64
		for i := range s.shards {
			sh := &s.shards[i]
			var shardSum uint64
			for _, se := range sh.entries {
				shardSum ^= se.hash()
			}
			if shardSum != sh.sum {
				t.Fatalf("shard %d sum diverged from its entries", i)
			}
			fold ^= sh.sum
		}
		if fold != s.Checksum() {
			t.Fatal("per-shard fold diverged from Checksum")
		}
		// Snapshot is exactly the union of the shard snapshots: same size,
		// and every shard entry appears under its own key.
		snap := s.Snapshot()
		byKey := make(map[string]Entry, len(snap))
		for _, se := range snap {
			byKey[se.Key] = se
		}
		perShard := 0
		for i := range s.shards {
			sh := &s.shards[i]
			perShard += len(sh.entries)
			for k, se := range sh.entries {
				got, ok := byKey[k]
				if !ok || got.Stamp != se.Stamp {
					t.Fatalf("shard %d entry %q missing or stale in Snapshot", i, k)
				}
			}
		}
		if perShard != len(snap) {
			t.Fatalf("Snapshot has %d entries, shards hold %d", len(snap), perShard)
		}
		// Idempotence.
		if res2 := s.Apply(e); res2.Changed() && res == Applied {
			t.Fatal("re-apply changed state")
		}
	})
}

// FuzzLoad feeds arbitrary bytes to the snapshot loader, which must fail
// cleanly rather than panic or corrupt the store.
func FuzzLoad(f *testing.F) {
	// Seed with a valid snapshot and mutations of it.
	src := timestamp.NewSimulated(1)
	s := New(1, src.ClockAt(1))
	s.Update("k", Value("v"))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		target := New(2, timestamp.NewSimulated(1).ClockAt(2))
		target.Update("pre", Value("p"))
		_, _ = target.Load(bytes.NewReader(data)) // must not panic
		// Whatever happened, internal consistency holds.
		var sum uint64
		for _, se := range target.Snapshot() {
			sum ^= se.hash()
		}
		if sum != target.Checksum() {
			t.Fatal("checksum diverged after Load")
		}
	})
}
