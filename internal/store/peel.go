package store

import (
	"math"

	"epidemic/internal/timestamp"
)

// PeelStart is the exclusive upper bound that makes PeelBatch begin at the
// newest entry: it orders after every timestamp a clock can issue.
var PeelStart = timestamp.T{Time: math.MaxInt64, Site: math.MaxInt32, Seq: math.MaxUint32}

// PeelBatch returns one batch of the reverse-timestamp walk that wire-level
// peel-back anti-entropy performs (§1.3/§1.5): up to limit index records
// strictly older than bound are examined newest-first, and the non-dormant
// ones among them are returned. next is the timestamp of the oldest record
// examined — pass it back as the bound of the following call to resume the
// walk — and more reports whether records older than next remain. Pass
// PeelStart to begin at the newest entry; limit <= 0 examines everything at
// once.
//
// Examined-versus-returned matters: dormant death certificates are skipped
// on the wire (§2.2) but still advance the walk, so the resume bound stays
// well-defined even when a whole batch is dormant.
//
// The walk is a k-way merge over the per-shard timestamp indexes; because
// timestamps are globally unique the merged order, the resume bounds, and
// the examined counts are identical to a walk of one global index, so the
// wire protocol sees the same batches the single-mutex store produced.
func (s *Store) PeelBatch(bound timestamp.T, limit int, now, tau1 int64) (batch []Entry, next timestamp.T, more bool) {
	merged, total := s.collectMerged(bound, limit)
	if len(merged) == 0 {
		return nil, bound, false
	}
	batch = make([]Entry, 0, len(merged))
	for _, e := range merged {
		if !IsDormant(e, now, tau1) {
			batch = append(batch, e)
		}
		next = e.Stamp
	}
	return batch, next, total > len(merged)
}

// LiveSnapshot returns a copy of every non-dormant entry — the payload of
// a full-database exchange, which excludes dormant death certificates
// (§2.2). Entries are in global timestamp order, oldest first, merged from
// the per-shard indexes.
func (s *Store) LiveSnapshot(now, tau1 int64) []Entry {
	per := make([][]Entry, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		recs := make([]Entry, 0, len(sh.index.keys))
		for _, rec := range sh.index.keys {
			e := sh.entries[rec.key]
			if !IsDormant(e, now, tau1) {
				recs = append(recs, e.clone())
			}
		}
		sh.mu.RUnlock()
		per[i] = recs
	}
	return mergeAsc(per)
}
