package store

import (
	"math"

	"epidemic/internal/timestamp"
)

// PeelStart is the exclusive upper bound that makes PeelBatch begin at the
// newest entry: it orders after every timestamp a clock can issue.
var PeelStart = timestamp.T{Time: math.MaxInt64, Site: math.MaxInt32, Seq: math.MaxUint32}

// PeelBatch returns one batch of the reverse-timestamp walk that wire-level
// peel-back anti-entropy performs (§1.3/§1.5): up to limit index records
// strictly older than bound are examined newest-first, and the non-dormant
// ones among them are returned. next is the timestamp of the oldest record
// examined — pass it back as the bound of the following call to resume the
// walk — and more reports whether records older than next remain. Pass
// PeelStart to begin at the newest entry; limit <= 0 examines everything at
// once.
//
// Examined-versus-returned matters: dormant death certificates are skipped
// on the wire (§2.2) but still advance the walk, so the resume bound stays
// well-defined even when a whole batch is dormant.
func (s *Store) PeelBatch(bound timestamp.T, limit int, now, tau1 int64) (batch []Entry, next timestamp.T, more bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.index.searchBefore(bound) // records [0, i) are older than bound
	if i == 0 {
		return nil, bound, false
	}
	if limit <= 0 || limit > i {
		limit = i
	}
	batch = make([]Entry, 0, limit)
	for k := i - 1; k >= i-limit; k-- {
		rec := s.index.keys[k]
		e := s.entries[rec.key]
		if !IsDormant(e, now, tau1) {
			batch = append(batch, e.clone())
		}
		next = rec.stamp
	}
	return batch, next, i-limit > 0
}

// LiveSnapshot returns a copy of every non-dormant entry — the payload of
// a full-database exchange, which excludes dormant death certificates
// (§2.2). Entries are in index (timestamp) order.
func (s *Store) LiveSnapshot(now, tau1 int64) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.entries))
	for _, rec := range s.index.keys {
		e := s.entries[rec.key]
		if !IsDormant(e, now, tau1) {
			out = append(out, e.clone())
		}
	}
	return out
}
