package store

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"testing"

	"epidemic/internal/timestamp"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	src := timestamp.NewSimulated(1)
	s := New(1, src.ClockAt(1))
	s.Update("a", Value("1"))
	src.Advance(1)
	s.Update("b", Value("2"))
	src.Advance(1)
	s.Delete("c", []timestamp.SiteID{1, 4})

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(1, src.ClockAt(1))
	n, err := restored.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("loaded %d entries, want 3", n)
	}
	if !ContentEqual(s, restored) {
		t.Fatal("restored content differs")
	}
	if s.Checksum() != restored.Checksum() {
		t.Fatal("restored checksum differs")
	}
	// Death-certificate metadata survives.
	dc, ok := restored.Get("c")
	if !ok || !dc.IsDeath() || !dc.RetainedBy(4) {
		t.Fatalf("certificate metadata lost: %+v", dc)
	}
}

func TestLoadMergesNotOverwrites(t *testing.T) {
	src := timestamp.NewSimulated(1)
	s := New(1, src.ClockAt(1))
	s.Update("k", Value("old"))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// The live replica has moved on since the snapshot.
	src.Advance(10)
	s.Update("k", Value("newer"))
	if _, err := s.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Lookup("k"); string(v) != "newer" {
		t.Fatalf("stale snapshot overwrote newer state: %q", v)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	s := New(1, timestamp.NewSimulated(1).ClockAt(1))
	if _, err := s.Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	other := snapshotHeader{Magic: "wrong", Version: 1}
	encodeHeader(t, &buf, other)
	if _, err := s.Load(&buf); err == nil {
		t.Error("wrong magic accepted")
	}
	buf.Reset()
	encodeHeader(t, &buf, snapshotHeader{Magic: snapshotMagic, Version: 99})
	if _, err := s.Load(&buf); err == nil {
		t.Error("future version accepted")
	}
	buf.Reset()
	encodeHeader(t, &buf, snapshotHeader{Magic: snapshotMagic, Version: snapshotVersion, Entries: 5})
	if _, err := s.Load(&buf); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func encodeHeader(t *testing.T, buf *bytes.Buffer, hdr snapshotHeader) {
	t.Helper()
	if err := gob.NewEncoder(buf).Encode(hdr); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "replica.snap")
	src := timestamp.NewSimulated(1)
	s := New(1, src.ClockAt(1))
	s.Update("k", Value("v"))

	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored := New(1, src.ClockAt(1))
	n, err := restored.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !ContentEqual(s, restored) {
		t.Fatal("file round trip failed")
	}
	// Missing file is a fresh replica, not an error.
	fresh := New(2, src.ClockAt(2))
	if n, err := fresh.LoadFile(filepath.Join(dir, "missing.snap")); err != nil || n != 0 {
		t.Errorf("missing file: n=%d err=%v", n, err)
	}
	// SaveFile into a nonexistent directory fails cleanly.
	if err := s.SaveFile(filepath.Join(dir, "nope", "x.snap")); err == nil {
		t.Error("expected error for bad directory")
	}
}
