package node

import (
	"testing"

	"epidemic/internal/core"
	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// countingPeer counts how often it is contacted.
type countingPeer struct {
	id    timestamp.SiteID
	calls int
}

func (p *countingPeer) ID() timestamp.SiteID { return p.id }

func (p *countingPeer) AntiEntropy(core.ResolveConfig, *store.Store, *trace.Tracer) (core.ExchangeStats, error) {
	p.calls++
	return core.ExchangeStats{}, nil
}

func (p *countingPeer) PushRumors(entries []store.Entry, _ []trace.Hop) ([]bool, error) {
	p.calls++
	return make([]bool, len(entries)), nil
}

func (p *countingPeer) PullRumors() ([]store.Entry, []trace.Hop, error) {
	p.calls++
	return nil, nil, nil
}

func (p *countingPeer) Checksum(int64) (uint64, error) { return 0, nil }

func (p *countingPeer) Mail(store.Entry, trace.Hop) error { return nil }

func TestSetPeersWeightedValidation(t *testing.T) {
	n, err := New(Config{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := &countingPeer{id: 2}
	if err := n.SetPeersWeighted([]Peer{p}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := n.SetPeersWeighted([]Peer{p}, []float64{0}); err == nil {
		t.Error("zero weight accepted")
	}
	if err := n.SetPeersWeighted([]Peer{p}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if err := n.SetPeersWeighted([]Peer{p}, []float64{3}); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
}

func TestWeightedPeerSelectionBias(t *testing.T) {
	n, err := New(Config{Site: 1, Seed: 9,
		Redistribution: core.RedistributeNone})
	if err != nil {
		t.Fatal(err)
	}
	near := &countingPeer{id: 2}
	far := &countingPeer{id: 3}
	// 9:1 bias toward the near peer, as a spatial distribution would give.
	if err := n.SetPeersWeighted([]Peer{near, far}, []float64{9, 1}); err != nil {
		t.Fatal(err)
	}
	const rounds = 3000
	for i := 0; i < rounds; i++ {
		if err := n.StepAntiEntropy(); err != nil {
			t.Fatal(err)
		}
	}
	total := near.calls + far.calls
	if total != rounds {
		t.Fatalf("calls = %d, want %d", total, rounds)
	}
	frac := float64(near.calls) / float64(total)
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("near fraction = %.3f, want ~0.9", frac)
	}
}

func TestSetPeersResetsWeights(t *testing.T) {
	n, err := New(Config{Site: 1, Seed: 4, Redistribution: core.RedistributeNone})
	if err != nil {
		t.Fatal(err)
	}
	a := &countingPeer{id: 2}
	bPeer := &countingPeer{id: 3}
	if err := n.SetPeersWeighted([]Peer{a, bPeer}, []float64{100, 1}); err != nil {
		t.Fatal(err)
	}
	// Plain SetPeers restores uniform selection.
	n.SetPeers([]Peer{a, bPeer})
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		if err := n.StepAntiEntropy(); err != nil {
			t.Fatal(err)
		}
	}
	frac := float64(a.calls) / float64(rounds)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("uniform fraction = %.3f, want ~0.5", frac)
	}
}
