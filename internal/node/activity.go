package node

import (
	"fmt"

	"epidemic/internal/store"
)

// This file implements §1.5's combined peel-back / rumor-mongering scheme.
//
// Instead of a binary hot-rumor list, the node keeps *all* of its updates
// in a doubly-linked list ordered by local activity. Each round it sends a
// batch of entries from the head of the list to one partner; rumor
// feedback moves useful updates to the front, useless ones slip gradually
// deeper. If the first batch fails to reach checksum agreement, more
// batches are sent — so, unlike pure rumor mongering, the exchange has no
// failure probability: in the worst case it peels back through the entire
// database. Any update in the database can become a hot rumor again just
// by moving forward in the list.

// activityState is lazily created when the combined scheme is used.
func (n *Node) activityState() *store.ActivityList {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.activity == nil {
		n.activity = store.NewActivityList()
		// Seed with existing entries newest-first, so a cold list starts
		// in reverse timestamp order — exactly peel-back — and activity
		// feedback takes over from there.
		for _, e := range n.store.NewestFirst(0) {
			n.activity.Append(e.Key)
		}
	}
	return n.activity
}

// StepActivityExchange runs one §1.5 combined exchange with a random
// peer: send batches of batchSize entries in activity order, apply
// feedback, and stop as soon as the two databases' checksums agree (or
// the list is exhausted, which means everything sendable has been sent).
// It returns the number of entries sent.
func (n *Node) StepActivityExchange(batchSize int) (int, error) {
	if batchSize <= 0 {
		batchSize = 8
	}
	peer, ok := n.pickPeer()
	if !ok {
		return 0, ErrNoPeers
	}
	act := n.activityState()
	tau1 := n.cfg.Tau1

	sent := 0
	// Checksum probe before doing any work: usually the databases agree
	// and the exchange costs one probe. localRaw remembers the content
	// checksum at probe time so later batches can tell whether a re-probe
	// could possibly change the verdict.
	localRaw := n.store.Checksum()
	remote, err := peer.Checksum(tau1)
	if err != nil {
		return 0, fmt.Errorf("checksum probe of %d: %w", peer.ID(), err)
	}
	if remote == n.store.ChecksumLive(n.store.Now(), tau1) {
		return 0, nil
	}

	// Snapshot the iteration order up front: feedback reorders the live
	// list (useful entries move to the front) and must not disturb the
	// cursor of this exchange.
	n.mu.Lock()
	order := act.Front(0)
	n.mu.Unlock()

	for start := 0; ; start += batchSize {
		if start >= len(order) {
			return sent, nil // list exhausted: everything has been offered
		}
		end := start + batchSize
		if end > len(order) {
			end = len(order)
		}
		keys := order[start:end]

		batch := make([]store.Entry, 0, len(keys))
		for _, key := range keys {
			if e, ok := n.store.Get(key); ok && !store.IsDormant(e, n.store.Now(), tau1) {
				batch = append(batch, e)
			}
		}
		pushedUseful := false
		if len(batch) > 0 {
			needed, err := peer.PushRumors(batch, n.tracer.Envelopes(batch))
			if err != nil {
				return sent, fmt.Errorf("activity batch to %d: %w", peer.ID(), err)
			}
			sent += len(batch)
			n.mu.Lock()
			for i, e := range batch {
				if i < len(needed) && needed[i] {
					act.Touch(e.Key)
					pushedUseful = true
				} else {
					act.Demote(e.Key)
				}
			}
			n.stats.EntriesSent += len(batch)
			n.mu.Unlock()
		}

		// A batch the peer needed nothing from, on a store that saw no
		// writes since the last probe, cannot have moved either checksum:
		// the standing mismatch verdict holds, so skip both the remote
		// probe and the local recompute and offer the next batch. (A
		// dormancy transition could flip the live checksum without a
		// write; the list-exhaustion return above still terminates, at
		// worst a few batches late.)
		raw := n.store.Checksum()
		if !pushedUseful && raw == localRaw {
			continue
		}
		localRaw = raw

		remote, err = peer.Checksum(tau1)
		if err != nil {
			return sent, fmt.Errorf("checksum probe of %d: %w", peer.ID(), err)
		}
		if remote == n.store.ChecksumLive(n.store.Now(), tau1) {
			return sent, nil
		}
	}
}

// ActivityOrder exposes the current activity-ordered key list (front
// first) for inspection and tests.
func (n *Node) ActivityOrder() []string {
	act := n.activityState()
	n.mu.Lock()
	defer n.mu.Unlock()
	return act.Front(0)
}
