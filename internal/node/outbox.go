package node

import (
	"sync"
	"sync/atomic"
	"time"

	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// The outbound gossip engine. The paper's direct mail (§1.2) is a queued,
// nearly-reliable message — "the originating site sends the update to all
// other sites", with mail understood to be queued and possibly delayed —
// so Update/Delete must not block on N network round trips. The outbox
// gives every peer a bounded send queue with newest-stamp-wins coalescing
// per key, drained by a small worker pool that fans out to all peers in
// parallel and ships each drain as one batched frame when the peer's wire
// supports it. A failing peer backs off exponentially and its queue drops
// oldest on overflow, the paper's "messages may be discarded when queues
// overflow" made literal.

// OutboxConfig tunes the asynchronous outbound mail engine. Zero values
// select the defaults noted per field.
type OutboxConfig struct {
	// Workers bounds the goroutines draining peer queues (default 8).
	// Negative disables the engine entirely: mail is posted serially on
	// the caller's goroutine — the pre-engine behaviour, kept for
	// deterministic simulation and comparison benchmarks.
	Workers int
	// QueuePerPeer bounds the coalesced entries queued per peer (default
	// 256). On overflow the oldest queued entry is dropped.
	QueuePerPeer int
	// RetryBackoff is the delay before a peer whose send failed is drained
	// again (default 50ms), doubling per consecutive failure up to
	// MaxBackoff (default 5s). While backed off a peer consumes no worker.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// FlushTimeout bounds the graceful drain on Stop (default 2s); queues
	// still pending when it expires (a down peer mid-backoff) are dropped.
	FlushTimeout time.Duration
}

// Defaults for OutboxConfig zero values.
const (
	defaultOutboxWorkers = 8
	defaultOutboxQueue   = 256
)

const (
	defaultRetryBackoff = 50 * time.Millisecond
	defaultMaxBackoff   = 5 * time.Second
	defaultFlushTimeout = 2 * time.Second
)

func (c OutboxConfig) withDefaults() OutboxConfig {
	if c.Workers == 0 {
		c.Workers = defaultOutboxWorkers
	}
	if c.QueuePerPeer <= 0 {
		c.QueuePerPeer = defaultOutboxQueue
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = defaultRetryBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = defaultMaxBackoff
	}
	if c.FlushTimeout <= 0 {
		c.FlushTimeout = defaultFlushTimeout
	}
	return c
}

// MailBatch is one coalesced drain of a peer's send queue: the entries
// (one per key, newest version wins) with their provenance envelopes, plus
// the engine telemetry the codec-v5 wire section carries to the receiver.
type MailBatch struct {
	Entries []store.Entry
	// Hops carries one provenance envelope per entry, or nil when the
	// sender does not trace.
	Hops []trace.Hop
	// QueuedNanos is the age of the batch's oldest entry at drain time.
	QueuedNanos int64
	// Coalesced counts the supersessions absorbed while the entries
	// queued: enqueues that replaced (or lost to) an already-queued
	// version of the same key instead of crossing the wire twice.
	Coalesced int
}

// BatchMailer is an optional Peer capability: posting a whole mail batch
// in one round trip. The outbox type-asserts for it on every drain and
// falls back to per-entry Mail calls otherwise, so implementing it is
// purely an optimisation.
type BatchMailer interface {
	MailBatch(b MailBatch) error
}

// outEntry is one queued mail: the entry, its envelope, and when it was
// first enqueued (survives coalescing, so QueuedNanos reports true age).
type outEntry struct {
	entry store.Entry
	hop   trace.Hop
	enq   time.Time
}

// peerQueue is one peer's bounded coalescing send queue. All fields are
// guarded by the owning outbox's mutex except peer, which is fixed at
// construction (a membership change replaces the whole queue entry).
type peerQueue struct {
	peer  Peer
	keys  []string // FIFO key order; a coalesced key keeps its position
	byKey map[string]outEntry

	coalesced int  // supersessions since the last drain
	scheduled bool // on the run queue, or being drained by a worker

	backoff      time.Duration // current failure backoff (0 = healthy)
	backoffUntil time.Time
	timerArmed   bool // a wake-up timer for backoffUntil is outstanding
}

func newPeerQueue(p Peer) *peerQueue {
	return &peerQueue{peer: p, byKey: make(map[string]outEntry)}
}

// outbox is the engine: per-peer queues, a run queue of peers with work,
// and the worker pool that drains them.
type outbox struct {
	cfg  OutboxConfig
	node *Node

	// Monotonic counters, readable without the mutex (Stats, metrics).
	enqueued  atomic.Int64
	coalesced atomic.Int64
	dropped   atomic.Int64
	batches   atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on run-queue growth and drain progress
	queues   map[timestamp.SiteID]*peerQueue
	runq     []*peerQueue
	pending  int // entries queued across all peers
	inflight int // workers currently mid-send
	started  bool
	stopped  bool
	wg       sync.WaitGroup
}

func newOutbox(cfg OutboxConfig, n *Node) *outbox {
	ox := &outbox{cfg: cfg, node: n, queues: make(map[timestamp.SiteID]*peerQueue)}
	ox.cond = sync.NewCond(&ox.mu)
	return ox
}

// setPeers rebuilds the queue set for a new peer list. Queues of surviving
// sites keep their pending mail (the peer object may have been replaced by
// a membership sync; mail follows the site, not the connection); queues of
// departed sites are discarded, their entries counted as dropped.
func (ox *outbox) setPeers(peers []Peer) {
	ox.mu.Lock()
	defer ox.mu.Unlock()
	next := make(map[timestamp.SiteID]*peerQueue, len(peers))
	for _, p := range peers {
		if q, ok := ox.queues[p.ID()]; ok {
			q.peer = p
			next[p.ID()] = q
			delete(ox.queues, p.ID())
			continue
		}
		next[p.ID()] = newPeerQueue(p)
	}
	for _, q := range ox.queues { // departed sites
		ox.pending -= len(q.keys)
		ox.dropped.Add(int64(len(q.keys)))
	}
	ox.queues = next
	ox.cond.Broadcast() // pending may have reached zero for Flush waiters
}

// enqueue queues one entry to every peer, coalescing per key: a version
// already queued for a peer is replaced in place when e is newer (and
// keeps its queue position), absorbed when older. O(peers) map work, no
// network — this is the whole cost Update/Delete pay for distribution.
func (ox *outbox) enqueue(e store.Entry, hop trace.Hop) {
	ox.mu.Lock()
	if ox.stopped {
		ox.mu.Unlock()
		return
	}
	ox.startWorkersLocked()
	now := time.Now()
	for _, q := range ox.queues {
		if old, ok := q.byKey[e.Key]; ok {
			if old.entry.Stamp.Less(e.Stamp) {
				q.byKey[e.Key] = outEntry{entry: e, hop: hop, enq: old.enq}
			}
			q.coalesced++
			ox.coalesced.Add(1)
			continue
		}
		if len(q.keys) >= ox.cfg.QueuePerPeer {
			oldest := q.keys[0]
			q.keys = q.keys[1:]
			delete(q.byKey, oldest)
			ox.pending--
			ox.dropped.Add(1)
		}
		q.keys = append(q.keys, e.Key)
		q.byKey[e.Key] = outEntry{entry: e, hop: hop, enq: now}
		ox.pending++
		ox.enqueued.Add(1)
		ox.scheduleLocked(q, now)
	}
	ox.mu.Unlock()
}

// scheduleLocked puts q on the run queue unless it is already there (or
// mid-drain), or is backing off — in which case a wake-up timer re-checks
// when the backoff expires.
func (ox *outbox) scheduleLocked(q *peerQueue, now time.Time) {
	if q.scheduled {
		return
	}
	if now.Before(q.backoffUntil) {
		if !q.timerArmed {
			q.timerArmed = true
			time.AfterFunc(q.backoffUntil.Sub(now), func() { ox.backoffExpired(q) })
		}
		return
	}
	q.scheduled = true
	ox.runq = append(ox.runq, q)
	ox.cond.Broadcast()
}

func (ox *outbox) backoffExpired(q *peerQueue) {
	ox.mu.Lock()
	q.timerArmed = false
	if !ox.stopped && len(q.keys) > 0 && ox.queues[q.peer.ID()] == q {
		ox.scheduleLocked(q, time.Now())
	}
	ox.mu.Unlock()
}

func (ox *outbox) startWorkersLocked() {
	if ox.started {
		return
	}
	ox.started = true
	for i := 0; i < ox.cfg.Workers; i++ {
		ox.wg.Add(1)
		go ox.worker()
	}
}

// drainLocked empties q into one MailBatch. Hops are materialised only
// when at least one envelope is valid, so untraced batches ship nil.
func (q *peerQueue) drainLocked(now time.Time) MailBatch {
	b := MailBatch{Coalesced: q.coalesced}
	q.coalesced = 0
	if len(q.keys) == 0 {
		return b
	}
	b.Entries = make([]store.Entry, 0, len(q.keys))
	hops := make([]trace.Hop, 0, len(q.keys))
	anyHop := false
	oldest := now
	for _, k := range q.keys {
		oe := q.byKey[k]
		b.Entries = append(b.Entries, oe.entry)
		hops = append(hops, oe.hop)
		if oe.hop.Valid {
			anyHop = true
		}
		if oe.enq.Before(oldest) {
			oldest = oe.enq
		}
		delete(q.byKey, k)
	}
	q.keys = q.keys[:0]
	if anyHop {
		b.Hops = hops
	}
	b.QueuedNanos = now.Sub(oldest).Nanoseconds()
	return b
}

func (ox *outbox) worker() {
	defer ox.wg.Done()
	ox.mu.Lock()
	for {
		for len(ox.runq) == 0 && !ox.stopped {
			ox.cond.Wait()
		}
		if len(ox.runq) == 0 { // stopped and drained
			ox.mu.Unlock()
			return
		}
		q := ox.runq[0]
		ox.runq = ox.runq[1:]
		now := time.Now()
		batch := q.drainLocked(now)
		ox.pending -= len(batch.Entries)
		if len(batch.Entries) == 0 {
			q.scheduled = false
			continue
		}
		ox.inflight++
		ox.mu.Unlock()

		sent, failed, err := sendBatch(q.peer, batch)
		ox.batches.Add(1)
		ox.node.noteMailResult(q.peer.ID(), sent, failed, err)

		ox.mu.Lock()
		ox.inflight--
		// A replaced queue (membership change mid-send) is abandoned: its
		// successor schedules itself on the next enqueue.
		current := ox.queues[q.peer.ID()] == q
		if err != nil {
			if q.backoff == 0 {
				q.backoff = ox.cfg.RetryBackoff
			} else if q.backoff *= 2; q.backoff > ox.cfg.MaxBackoff {
				q.backoff = ox.cfg.MaxBackoff
			}
			q.backoffUntil = time.Now().Add(q.backoff)
			q.scheduled = false
			if current && len(q.keys) > 0 {
				ox.scheduleLocked(q, time.Now()) // arms the backoff timer
			}
		} else {
			q.backoff = 0
			if current && len(q.keys) > 0 {
				ox.runq = append(ox.runq, q) // stay scheduled, more arrived
			} else {
				q.scheduled = false
			}
		}
		ox.cond.Broadcast() // progress for Flush waiters
	}
}

// sendBatch ships one batch to one peer: a single round trip when the
// peer batches, per-entry Mail otherwise. Attribution is all-or-nothing
// for batching peers — a failed frame counts every entry as failed.
func sendBatch(p Peer, b MailBatch) (sent, failed int, err error) {
	if bm, ok := p.(BatchMailer); ok {
		if err := bm.MailBatch(b); err != nil {
			return 0, len(b.Entries), err
		}
		return len(b.Entries), 0, nil
	}
	for i, e := range b.Entries {
		if merr := p.Mail(e, hopAt(b.Hops, i)); merr != nil {
			failed++
			if err == nil {
				err = merr
			}
			continue
		}
		sent++
	}
	return sent, failed, err
}

// flush blocks until every queue has drained and every in-flight send has
// completed, or timeout elapses (<= 0 selects the configured
// FlushTimeout). It reports whether the drain completed. Queues waiting
// out a failure backoff count as pending: flushing a cluster with a down
// peer times out rather than lying.
func (ox *outbox) flush(timeout time.Duration) bool {
	if timeout <= 0 {
		timeout = ox.cfg.FlushTimeout
	}
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() {
		ox.mu.Lock()
		ox.cond.Broadcast()
		ox.mu.Unlock()
	})
	defer wake.Stop()
	ox.mu.Lock()
	defer ox.mu.Unlock()
	for (ox.pending > 0 || ox.inflight > 0) && time.Now().Before(deadline) {
		ox.cond.Wait()
	}
	return ox.pending == 0 && ox.inflight == 0
}

// stop gracefully flushes, then terminates the workers. Entries still
// queued when the flush budget runs out (a peer mid-backoff) are dropped,
// exactly like the paper's overflowing mail queues at shutdown.
func (ox *outbox) stop() {
	ox.mu.Lock()
	if ox.stopped {
		ox.mu.Unlock()
		return
	}
	started := ox.started
	ox.mu.Unlock()
	if started {
		ox.flush(ox.cfg.FlushTimeout)
	}
	ox.mu.Lock()
	ox.stopped = true
	for _, q := range ox.queues {
		if n := len(q.keys); n > 0 {
			ox.dropped.Add(int64(n))
			ox.pending -= n
			q.keys = q.keys[:0]
			q.byKey = make(map[string]outEntry)
		}
	}
	ox.cond.Broadcast()
	ox.mu.Unlock()
	ox.wg.Wait()
}

// depth returns the entries currently queued across all peers.
func (ox *outbox) depth() int {
	ox.mu.Lock()
	defer ox.mu.Unlock()
	return ox.pending
}
