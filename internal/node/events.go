package node

import (
	"time"

	"epidemic/internal/core"
	"epidemic/internal/timestamp"
)

// EventKind classifies node lifecycle events.
type EventKind int

const (
	// EventAntiEntropy : one anti-entropy conversation finished.
	EventAntiEntropy EventKind = iota + 1
	// EventRumor : one rumor-mongering round finished.
	EventRumor
	// EventRedistribute : repaired updates were re-hotted or re-mailed
	// (§1.5).
	EventRedistribute
	// EventGC : death-certificate expiry ran.
	EventGC
	// EventMailFailed : a direct-mail posting failed outright.
	EventMailFailed
	// EventUpdate : a client write (update or delete) was accepted at this
	// replica — the update's origination, time zero of its propagation.
	EventUpdate
	// EventApply : an update originated elsewhere changed this replica
	// (via mail, a rumor exchange, or an anti-entropy repair) — this
	// site's infection timestamp for that update.
	EventApply
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventAntiEntropy:
		return "anti-entropy"
	case EventRumor:
		return "rumor"
	case EventRedistribute:
		return "redistribute"
	case EventGC:
		return "gc"
	case EventMailFailed:
		return "mail-failed"
	case EventUpdate:
		return "update"
	case EventApply:
		return "apply"
	default:
		return "invalid"
	}
}

// Event is one observable node action. Fields are populated per kind:
// anti-entropy events carry Peer and Stats; rumor events Peer; update and
// apply events Key and Stamp (apply events also Peer when the source peer
// is known); redistribute events Keys; GC events Count (dropped
// certificates); mail failures Peer.
type Event struct {
	Kind  EventKind
	Peer  timestamp.SiteID
	Stats core.ExchangeStats
	Keys  []string
	Count int
	Key   string
	Stamp timestamp.T
	// Duration is the wall-clock time the exchange took; set on
	// anti-entropy and rumor events, zero elsewhere. It feeds the
	// per-mechanism exchange-latency histograms in the cluster digest.
	Duration time.Duration
}

// emit delivers an event to the configured observer. It must be called
// WITHOUT n.mu held: observers may call back into the node.
func (n *Node) emit(e Event) {
	if fn := n.onEvent.Load(); fn != nil {
		(*fn)(e)
	}
}
