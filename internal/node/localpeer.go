package node

import (
	"errors"
	"math/rand"
	"sync"

	"epidemic/internal/core"
	"epidemic/internal/obs/cluster"
	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// LocalPeer exposes an in-process Node as a Peer, with optional failure
// injection modelling the paper's unreliable substrate: lossy mail (queue
// overflow, §1.2) and partitions (a down peer refuses conversations).
type LocalPeer struct {
	target *Node

	// owner is the calling node's digest directory; when set, anti-entropy
	// and rumor-pull conversations exchange cluster digests with the
	// target, mirroring the TCP transport's piggyback. Nil disables.
	owner *cluster.Directory

	mu       sync.Mutex
	rng      *rand.Rand
	mailLoss float64
	down     bool
}

var _ Peer = (*LocalPeer)(nil)

// NewLocalPeer wraps target. seed feeds the loss-injection RNG.
func NewLocalPeer(target *Node, seed int64) *LocalPeer {
	return &LocalPeer{target: target, rng: rand.New(rand.NewSource(seed))}
}

// SetDigestDirectory installs the calling node's digest directory so
// conversations through this peer carry cluster digests both ways (the
// in-process analogue of the wire piggyback). Nil disables. Set before
// use; not safe to swap while conversations run.
func (p *LocalPeer) SetDigestDirectory(owner *cluster.Directory) {
	p.owner = owner
}

// exchangeDigests pushes the owner's digest view to the target and pulls
// the target's back — the bidirectional piggyback every conversation gets.
// All operations are nil-safe no-ops when either side has no directory.
func (p *LocalPeer) exchangeDigests() {
	if p.owner == nil {
		return
	}
	p.target.Digests().Merge(p.owner.Share())
	p.owner.Merge(p.target.Digests().Share())
}

// SetMailLoss sets the probability that a mailed update is silently
// dropped.
func (p *LocalPeer) SetMailLoss(prob float64) {
	p.mu.Lock()
	p.mailLoss = prob
	p.mu.Unlock()
}

// SetDown simulates a partition: while down, conversations fail and mail
// is discarded (the paper's queues overflow when "destinations are
// inaccessible for a long time").
func (p *LocalPeer) SetDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
}

// ErrPeerDown is returned while the peer is partitioned away.
var ErrPeerDown = errors.New("node: peer unreachable")

// ID implements Peer.
func (p *LocalPeer) ID() timestamp.SiteID { return p.target.Site() }

// AntiEntropy implements Peer. Repairs that land on the target replica are
// reported to it as apply events — ResolveDifference writes into both
// stores directly, so the target would otherwise never observe its own
// infections. Before reporting, each repair's SenderHop is backfilled from
// the shipping side's tracer so both parties stamp causal hop counts, just
// as the wire envelope provides over TCP.
func (p *LocalPeer) AntiEntropy(cfg core.ResolveConfig, local *store.Store, tr *trace.Tracer) (core.ExchangeStats, error) {
	if p.isDown() {
		return core.ExchangeStats{}, ErrPeerDown
	}
	st, err := core.ResolveDifference(cfg, local, p.target.Store())
	if err != nil {
		return st, err
	}
	for i, r := range st.Repairs {
		sender := tr
		if r.Parent == p.target.Site() {
			sender = p.target.Tracer()
		}
		if env := sender.Envelope(r.Key, r.Stamp); env.Valid {
			st.Repairs[i].SenderHop = env.Count
		}
	}
	p.target.noteRepaired(st.Repairs)
	p.exchangeDigests()
	return st, nil
}

// PushRumors implements Peer.
func (p *LocalPeer) PushRumors(entries []store.Entry, hops []trace.Hop) ([]bool, error) {
	if p.isDown() {
		return nil, ErrPeerDown
	}
	return p.target.HandleRumors(entries, hops), nil
}

// PullRumors implements Peer.
func (p *LocalPeer) PullRumors() ([]store.Entry, []trace.Hop, error) {
	if p.isDown() {
		return nil, nil, ErrPeerDown
	}
	entries, hops := p.target.HotEntriesTraced()
	p.exchangeDigests()
	return entries, hops, nil
}

// Checksum implements Peer.
func (p *LocalPeer) Checksum(tau1 int64) (uint64, error) {
	if p.isDown() {
		return 0, ErrPeerDown
	}
	st := p.target.Store()
	return st.ChecksumLive(st.Now(), tau1), nil
}

// Mail implements Peer. Lost mail returns nil: PostMail's failure mode is
// silent ("messages may be discarded when queues overflow").
func (p *LocalPeer) Mail(e store.Entry, hop trace.Hop) error {
	p.mu.Lock()
	drop := p.down || (p.mailLoss > 0 && p.rng.Float64() < p.mailLoss)
	p.mu.Unlock()
	if drop {
		return nil
	}
	p.target.HandleMail(e, hop)
	return nil
}

// MailBatch implements BatchMailer. Each entry is delivered or lost
// independently through the per-entry path, so loss injection keeps the
// same semantics whether the sender batches or not.
func (p *LocalPeer) MailBatch(b MailBatch) error {
	for i, e := range b.Entries {
		_ = p.Mail(e, hopAt(b.Hops, i)) // lost mail is a silent nil
	}
	return nil
}

var _ BatchMailer = (*LocalPeer)(nil)

func (p *LocalPeer) isDown() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}
