// Package node implements a production-style replica runtime around the
// epidemic protocols: each Node owns a store.Store replica and runs the
// paper's full update-distribution stack — direct mail on update (§1.2),
// periodic anti-entropy (§1.3), rumor mongering of hot updates (§1.4) with
// anti-entropy as the backup mechanism (§1.5), and the death-certificate
// lifecycle with dormant retention (§2).
//
// Nodes are transport-agnostic: they talk to other replicas through the
// Peer interface, implemented in-process by LocalPeer and over TCP by
// package transport.
package node

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/obs/cluster"
	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// Peer is a remote replica as seen from one node. Implementations must be
// safe for concurrent use.
type Peer interface {
	// ID returns the peer's site ID.
	ID() timestamp.SiteID
	// AntiEntropy runs one ResolveDifference conversation between local
	// and the peer's replica. tr, when non-nil, is the initiator's tracer:
	// implementations backfill SenderHop on the returned stats' Repairs so
	// both parties can stamp causal hop spans. A nil tr disables tracing.
	AntiEntropy(cfg core.ResolveConfig, local *store.Store, tr *trace.Tracer) (core.ExchangeStats, error)
	// PushRumors delivers hot entries to the peer; needed[i] reports
	// whether entry i changed the peer's replica (the rumor feedback bit
	// vector of §1.4). hops carries one provenance envelope per entry, or
	// nil when tracing is disabled.
	PushRumors(entries []store.Entry, hops []trace.Hop) (needed []bool, err error)
	// PullRumors fetches the peer's current hot entries with their
	// provenance envelopes (nil when the peer does not trace).
	PullRumors() ([]store.Entry, []trace.Hop, error)
	// Checksum returns the peer's live database checksum at its current
	// clock with the given dormancy threshold — the agreement probe of
	// §1.5's combined peel-back / rumor scheme.
	Checksum(tau1 int64) (uint64, error)
	// Mail posts one entry to the peer's mailbox (PostMail of §1.2). hop is
	// the sender's provenance envelope (zero when tracing is disabled).
	Mail(e store.Entry, hop trace.Hop) error
}

// Config configures a Node. Zero values get sensible defaults from
// Validate.
type Config struct {
	// Site is this replica's unique ID.
	Site timestamp.SiteID
	// Clock issues timestamps; defaults to timestamp.WallClock(Site).
	Clock timestamp.Clock
	// Rumor selects the rumor-mongering variant for hot updates.
	Rumor core.RumorConfig
	// Resolve selects the anti-entropy conversation parameters.
	Resolve core.ResolveConfig
	// DirectMailOnUpdate mails each locally accepted update to all peers
	// immediately (§1.2). Rumor mongering makes this optional.
	DirectMailOnUpdate bool
	// Outbox tunes the asynchronous outbound mail engine that direct mail
	// and RedistributeMail ride: Update/Delete enqueue in O(1) and a
	// worker pool fans out in parallel. The zero value enables it with
	// defaults; Workers < 0 disables it (serial blocking mail on the
	// caller's goroutine, the deterministic mode the simulator uses).
	Outbox OutboxConfig
	// Redistribution is the action taken when anti-entropy repairs a
	// missing update at either party (§1.5).
	Redistribution core.Redistribution
	// Tau1 and Tau2 are the death-certificate thresholds of §2.1, in clock
	// units. RetentionCount is r, the number of dormant-copy sites.
	Tau1, Tau2     int64
	RetentionCount int
	// AntiEntropyEvery and RumorEvery are the background daemon periods;
	// zero disables the corresponding daemon (Step* methods still work,
	// which is how the simulator and tests drive nodes deterministically).
	AntiEntropyEvery, RumorEvery time.Duration
	// SnapshotPath, when set, makes the replica durable: New merges the
	// snapshot at that path (if any), Stop writes a final one, and
	// SnapshotEvery (if non-zero) saves periodically — the stable storage
	// the paper assumes replicas live on.
	SnapshotPath  string
	SnapshotEvery time.Duration
	// StoreShards is the replica store's lock-stripe count, rounded up to a
	// power of two; 0 selects store.DefaultShards.
	StoreShards int
	// TraceRing, when positive, enables update tracing with a span ring of
	// that capacity: every apply records a hop span and outbound exchanges
	// carry provenance envelopes. Zero (the default) disables tracing
	// entirely — no spans, no envelopes, no allocations.
	TraceRing int
	// Digests, when non-nil, is this node's cluster digest directory: the
	// transport piggybacks its Share() on anti-entropy and rumor-pull
	// exchanges and merges what peers send back. Nil (the default)
	// disables the cluster observatory — no directory, no wire bytes.
	Digests *cluster.Directory
	// Seed seeds this node's private RNG; 0 derives one from the site ID.
	Seed int64
	// OnEvent, when set, receives lifecycle events (exchanges, rumor
	// rounds, redistributions, GC, mail failures, update originations and
	// applies). Called synchronously from the step that produced the
	// event, without internal locks held; the callback must be safe for
	// concurrent use when daemons run.
	OnEvent func(Event)
	// Logger, when set, receives structured logs (protocol rounds at
	// Debug, failures at Warn). Nil discards all logging.
	Logger *slog.Logger
}

// Node is one database replica plus its propagation daemons.
type Node struct {
	cfg    Config
	store  *store.Store
	log    *slog.Logger
	tracer *trace.Tracer // nil when tracing is disabled
	outbox *outbox       // nil when Config.Outbox.Workers < 0 (serial mail)

	// rounds counts protocol rounds (rumor + anti-entropy) for span
	// stamping; atomic because daemons and handlers read it concurrently.
	rounds atomic.Uint64

	mu       sync.Mutex
	rng      *rand.Rand
	hot      *core.HotList
	activity *store.ActivityList // lazily built for §1.5's combined scheme
	peers    []Peer
	peerCum  []float64 // cumulative selection weights; nil = uniform

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	// onEvent holds the current observer; atomic so SetOnEvent can
	// install instrumentation after New without racing emit.
	onEvent atomic.Pointer[func(Event)]

	stats Stats
}

// Stats counts a node's protocol activity. The JSON field names are the
// machine-readable contract of gossipd's STATSJSON client command.
type Stats struct {
	// UpdatesAccepted counts local client writes (updates and deletes).
	UpdatesAccepted int `json:"updates_accepted"`
	// MailSent and MailFailed count direct-mail postings.
	MailSent   int `json:"mail_sent"`
	MailFailed int `json:"mail_failed"`
	// AntiEntropyRuns and RumorRuns count protocol rounds executed.
	AntiEntropyRuns int `json:"anti_entropy_runs"`
	RumorRuns       int `json:"rumor_runs"`
	// EntriesSent and EntriesReceived aggregate exchange traffic by
	// direction (outbound from this node vs inbound to it); EntriesApplied
	// counts the transfers that changed a replica.
	EntriesSent     int `json:"entries_sent"`
	EntriesReceived int `json:"entries_received"`
	EntriesApplied  int `json:"entries_applied"`
	// FullCompares counts anti-entropy conversations that fell back to
	// shipping complete databases (checksum or recent-list miss, §1.3).
	FullCompares int `json:"full_compares"`
	// Redistributed counts updates re-hotted or re-mailed after an
	// anti-entropy repair.
	Redistributed int `json:"redistributed"`
	// CertificatesExpired counts death certificates dropped by GC.
	CertificatesExpired int `json:"certificates_expired"`
	// Outbox engine counters (all zero when the engine is disabled):
	// entries enqueued to peer send queues, enqueues absorbed by
	// newest-stamp-wins coalescing, entries dropped (queue overflow,
	// departed peers, shutdown), batches drained onto the wire, and the
	// current queue depth across all peers.
	OutboxEnqueued  int `json:"outbox_enqueued"`
	OutboxCoalesced int `json:"outbox_coalesced"`
	OutboxDropped   int `json:"outbox_dropped"`
	OutboxBatches   int `json:"outbox_batches"`
	OutboxDepth     int `json:"outbox_depth"`
	// MailBatchesReceived counts batched mail frames applied by this
	// replica; MailMaxQueuedNanos is the largest sender-side queueing
	// delay reported by any of them (codec v5 telemetry).
	MailBatchesReceived int   `json:"mail_batches_received"`
	MailMaxQueuedNanos  int64 `json:"mail_max_queued_nanos"`
}

// New builds a stopped node; call Start to launch its daemons, or drive it
// with StepAntiEntropy/StepRumor.
func New(cfg Config) (*Node, error) {
	if cfg.Clock == nil {
		cfg.Clock = timestamp.WallClock(cfg.Site)
	}
	if cfg.Rumor.K == 0 {
		cfg.Rumor = core.DefaultRumorConfig()
	}
	if err := cfg.Rumor.Validate(); err != nil {
		return nil, fmt.Errorf("node: rumor config: %w", err)
	}
	if cfg.Resolve.Mode == 0 {
		cfg.Resolve = core.ResolveConfig{Mode: core.PushPull, Strategy: ComparePeelBackDefault, ReactivateDormant: true}
	}
	if err := cfg.Resolve.Validate(); err != nil {
		return nil, fmt.Errorf("node: resolve config: %w", err)
	}
	if cfg.Redistribution == 0 {
		cfg.Redistribution = core.RedistributeRumor
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(cfg.Site)*2654435761 + 1
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Node{
		cfg:   cfg,
		store: store.NewSharded(cfg.Site, cfg.Clock, cfg.StoreShards),
		log:   logger.With("site", int(cfg.Site)),
		rng:   rng,
		hot:   core.NewHotList(cfg.Rumor, rng),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if cfg.TraceRing > 0 {
		n.tracer = trace.NewTracer(cfg.Site, cfg.TraceRing)
	}
	if ocfg := cfg.Outbox.withDefaults(); ocfg.Workers > 0 {
		n.outbox = newOutbox(ocfg, n)
	}
	if cfg.OnEvent != nil {
		n.onEvent.Store(&cfg.OnEvent)
	}
	if cfg.SnapshotPath != "" {
		if _, err := n.store.LoadFile(cfg.SnapshotPath); err != nil {
			return nil, fmt.Errorf("node: load snapshot: %w", err)
		}
	}
	return n, nil
}

// SetOnEvent replaces the event observer (see Config.OnEvent); nil
// removes it. Safe to call concurrently with running daemons — typical use
// is installing observability instrumentation right after New, which needs
// the constructed node to close over.
func (n *Node) SetOnEvent(fn func(Event)) {
	if fn == nil {
		n.onEvent.Store(nil)
		return
	}
	n.onEvent.Store(&fn)
}

// SaveSnapshot writes the replica to the configured snapshot path (or the
// given path if the config has none).
func (n *Node) SaveSnapshot(path string) error {
	if path == "" {
		path = n.cfg.SnapshotPath
	}
	if path == "" {
		return errors.New("node: no snapshot path configured")
	}
	return n.store.SaveFile(path)
}

// ComparePeelBackDefault is the default anti-entropy comparison strategy:
// peel-back, which §1.5 shows composes best with rumor mongering.
const ComparePeelBackDefault = core.ComparePeelBack

// Site returns this node's site ID.
func (n *Node) Site() timestamp.SiteID { return n.cfg.Site }

// Store exposes the replica (read-mostly; the store is thread-safe).
func (n *Node) Store() *store.Store { return n.store }

// Tracer returns this node's span tracer, or nil when tracing is
// disabled (Config.TraceRing <= 0). The nil tracer is safe to use.
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// Digests returns this node's cluster digest directory, or nil when the
// observatory is disabled (Config.Digests unset). The nil directory is
// safe to use — every method no-ops.
func (n *Node) Digests() *cluster.Directory { return n.cfg.Digests }

// SetPeers replaces the peer set with uniform selection probability. The
// slice is copied.
func (n *Node) SetPeers(peers []Peer) {
	n.mu.Lock()
	n.peers = make([]Peer, len(peers))
	copy(n.peers, peers)
	n.peerCum = nil
	n.mu.Unlock()
	if n.outbox != nil {
		n.outbox.setPeers(peers)
	}
}

// SetPeersWeighted replaces the peer set with the given relative selection
// weights — how spatial distributions (§3) are deployed on a real node:
// compute per-peer weights from the network distances (e.g. with
// spatial.Probabilities) and pass them here. Weights must be positive and
// len(weights) must equal len(peers).
func (n *Node) SetPeersWeighted(peers []Peer, weights []float64) error {
	if len(peers) != len(weights) {
		return fmt.Errorf("node: %d peers but %d weights", len(peers), len(weights))
	}
	cum := make([]float64, len(weights))
	run := 0.0
	for i, w := range weights {
		if w <= 0 {
			return fmt.Errorf("node: weight %d is %v, must be positive", i, w)
		}
		run += w
		cum[i] = run
	}
	n.mu.Lock()
	n.peers = make([]Peer, len(peers))
	copy(n.peers, peers)
	n.peerCum = cum
	n.mu.Unlock()
	if n.outbox != nil {
		n.outbox.setPeers(peers)
	}
	return nil
}

// Peers returns a copy of the peer set.
func (n *Node) Peers() []Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Peer, len(n.peers))
	copy(out, n.peers)
	return out
}

// Stats returns a copy of the activity counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	s := n.stats
	n.mu.Unlock()
	if ox := n.outbox; ox != nil {
		s.OutboxEnqueued = int(ox.enqueued.Load())
		s.OutboxCoalesced = int(ox.coalesced.Load())
		s.OutboxDropped = int(ox.dropped.Load())
		s.OutboxBatches = int(ox.batches.Load())
		s.OutboxDepth = ox.depth()
	}
	return s
}

// Update accepts a client write at this site and starts distributing it.
func (n *Node) Update(key string, value store.Value) store.Entry {
	e := n.store.Update(key, value)
	n.distribute(e)
	return e
}

// Delete accepts a client delete: it writes a death certificate whose
// retention sites are chosen uniformly from the current peer set plus this
// site (§2.1), then distributes it like any update.
func (n *Node) Delete(key string) store.Entry {
	n.mu.Lock()
	sites := make([]timestamp.SiteID, 0, len(n.peers)+1)
	sites = append(sites, n.cfg.Site)
	for _, p := range n.peers {
		sites = append(sites, p.ID())
	}
	retention := core.ChooseRetention(n.rng, sites, n.cfg.RetentionCount)
	n.mu.Unlock()

	e := n.store.Delete(key, retention)
	n.distribute(e)
	return e
}

// Lookup reads the current value at this replica.
func (n *Node) Lookup(key string) (store.Value, bool) { return n.store.Lookup(key) }

// distribute makes a fresh local entry hot and optionally direct-mails it.
// With the outbox engine on, the mail cost is an O(1) enqueue per peer —
// the caller never waits on the network (§1.2's queued mail).
func (n *Node) distribute(e store.Entry) {
	n.mu.Lock()
	n.stats.UpdatesAccepted++
	n.hot.Add(e.Key, e.Stamp)
	if n.activity != nil {
		n.activity.Touch(e.Key)
	}
	var peers []Peer
	if n.outbox == nil && n.cfg.DirectMailOnUpdate {
		peers = append([]Peer(nil), n.peers...)
	}
	n.mu.Unlock()
	n.tracer.RecordLocal(e.Key, e.Stamp, n.rounds.Load())
	n.emit(Event{Kind: EventUpdate, Key: e.Key, Stamp: e.Stamp})

	if !n.cfg.DirectMailOnUpdate {
		return
	}
	env := n.tracer.Envelope(e.Key, e.Stamp)
	if n.outbox != nil {
		n.outbox.enqueue(e, env)
		return
	}
	n.mailSerial(peers, e, env)
}

// mailSerial is the engine-disabled mail path: post to every peer on the
// caller's goroutine. Must be called without n.mu held.
func (n *Node) mailSerial(peers []Peer, e store.Entry, env trace.Hop) {
	sent, failed := 0, 0
	for _, p := range peers {
		if err := p.Mail(e, env); err != nil {
			failed++
			n.log.Warn("direct mail failed", "peer", int(p.ID()), "key", e.Key, "err", err)
			n.emit(Event{Kind: EventMailFailed, Peer: p.ID(), Count: 1})
			continue
		}
		sent++
	}
	n.mu.Lock()
	n.stats.MailSent += sent
	n.stats.MailFailed += failed
	n.mu.Unlock()
}

// noteMailResult records the outcome of one outbox drain: sent/failed
// counters plus one EventMailFailed per failed peer batch (Count carries
// the entries lost with it). Called from outbox workers without any locks
// held.
func (n *Node) noteMailResult(peer timestamp.SiteID, sent, failed int, err error) {
	n.mu.Lock()
	n.stats.MailSent += sent
	n.stats.MailFailed += failed
	n.mu.Unlock()
	if failed > 0 {
		n.log.Warn("direct mail batch failed", "peer", int(peer), "entries", failed, "err", err)
		n.emit(Event{Kind: EventMailFailed, Peer: peer, Count: failed})
	}
}

// FlushMail blocks until the outbound mail engine has drained every queue
// and finished every in-flight send, or timeout elapses (<= 0 selects the
// configured FlushTimeout). It reports whether the drain completed. With
// the engine disabled (serial mail) there is nothing to wait for and it
// returns true immediately.
func (n *Node) FlushMail(timeout time.Duration) bool {
	if n.outbox == nil {
		return true
	}
	return n.outbox.flush(timeout)
}

// HandleMail is the receive side of PostMail: apply the update; a fresh
// update also becomes a hot rumor here. hop is the sender's provenance
// envelope (zero when the sender does not trace).
func (n *Node) HandleMail(e store.Entry, hop trace.Hop) {
	res := n.store.Apply(e)
	if res.Changed() {
		n.mu.Lock()
		n.hot.Add(e.Key, e.Stamp)
		if n.activity != nil {
			n.activity.Touch(e.Key)
		}
		n.mu.Unlock()
		n.tracer.RecordApply(e.Key, e.Stamp, hop.Sender(), hop,
			trace.MechDirectMail, n.store.Now(), n.rounds.Load())
		n.emit(Event{Kind: EventApply, Key: e.Key, Stamp: e.Stamp})
	}
}

// HandleMailBatch is the receive side of a batched mail frame: every entry
// is applied exactly like HandleMail (fresh updates become hot rumors),
// with the whole batch sharing one lock acquisition for the hot-list and
// activity bookkeeping. needed[i] reports whether entry i changed this
// replica. The batch's sender-side telemetry feeds the mail stats.
func (n *Node) HandleMailBatch(b MailBatch) []bool {
	needed := n.applyRumors(b.Entries, b.Hops, trace.MechDirectMail)
	n.mu.Lock()
	n.stats.MailBatchesReceived++
	if b.QueuedNanos > n.stats.MailMaxQueuedNanos {
		n.stats.MailMaxQueuedNanos = b.QueuedNanos
	}
	n.mu.Unlock()
	return needed
}

// HandleRumors is the receive side of PushRumors: apply each entry, report
// which were needed, and treat fresh ones as hot rumors here too ("the
// recipient ... adds all new updates to its infective list", §1.4). hops
// carries one envelope per entry or nil.
func (n *Node) HandleRumors(entries []store.Entry, hops []trace.Hop) []bool {
	return n.applyRumors(entries, hops, trace.MechRumorPush)
}

// appliedRumor defers span and event emission until n.mu is released. It
// carries only what those emissions need — copying whole entries (values,
// retention lists) into the deferral list showed up as the dominant cost
// of a 64-entry batch in profiles.
type appliedRumor struct {
	key   string
	stamp timestamp.T
	hop   trace.Hop
	at    int64
}

func (n *Node) applyRumors(entries []store.Entry, hops []trace.Hop, mech trace.Mechanism) []bool {
	needed := make([]bool, len(entries))
	// Typical batches fit the stack buffer; only oversized pushes pay a
	// heap allocation for the deferral list.
	var buf [64]appliedRumor
	applied := buf[:0]
	if len(entries) > len(buf) {
		applied = make([]appliedRumor, 0, len(entries))
	}
	for i, e := range entries {
		res := n.store.Apply(e)
		needed[i] = res.Changed()
		if res.Changed() {
			applied = append(applied, appliedRumor{key: e.Key, stamp: e.Stamp, hop: hopAt(hops, i), at: n.store.Now()})
		}
	}
	if len(applied) > 0 {
		// One lock acquisition for the whole batch: a 64-entry push used to
		// take and release n.mu 64 times here, serializing against every
		// concurrent Update and Stats call.
		n.mu.Lock()
		for i := range applied {
			n.hot.Add(applied[i].key, applied[i].stamp)
			if n.activity != nil {
				n.activity.Touch(applied[i].key)
			}
		}
		n.mu.Unlock()
	}
	round := n.rounds.Load()
	for i := range applied {
		a := &applied[i]
		n.tracer.RecordApply(a.key, a.stamp, a.hop.Sender(), a.hop, mech, a.at, round)
		n.emit(Event{Kind: EventApply, Key: a.key, Stamp: a.stamp})
	}
	return needed
}

// hopAt returns hops[i], or the zero (no-envelope) Hop when the slice is
// nil or short — untraced senders simply omit the envelopes.
func hopAt(hops []trace.Hop, i int) trace.Hop {
	if i < len(hops) {
		return hops[i]
	}
	return trace.Hop{}
}

// ApplyRepair applies one entry received through a remotely initiated
// anti-entropy conversation (the transport server's sync requests),
// emitting EventApply when it changes this replica. from identifies the
// initiating site, hop its provenance envelope for the entry, and mech the
// anti-entropy sub-mechanism (MechAntiEntropy or MechPeelBack). Unlike
// HandleMail the entry does not become a hot rumor: redistribution of
// repaired updates is the initiator's policy decision (§1.5).
func (n *Node) ApplyRepair(e store.Entry, from timestamp.SiteID, hop trace.Hop, mech trace.Mechanism) store.ApplyResult {
	res := n.store.Apply(e)
	if res.Changed() {
		src := from
		if hop.Valid {
			src = hop.Parent
		}
		n.tracer.RecordApply(e.Key, e.Stamp, src, hop, mech, n.store.Now(), n.rounds.Load())
		n.emit(Event{Kind: EventApply, Key: e.Key, Stamp: e.Stamp, Peer: src})
	}
	return res
}

// noteRepaired records spans and emits EventApply for repairs an
// anti-entropy exchange landed on THIS replica while some other node
// initiated the conversation (the in-process LocalPeer path, where
// core.ResolveDifference writes into both stores directly). Must be called
// without n.mu held.
func (n *Node) noteRepaired(repairs []core.Repair) {
	round := n.rounds.Load()
	for _, r := range repairs {
		if r.Site != n.cfg.Site {
			continue
		}
		hop := trace.Hop{Parent: r.Parent, Count: r.SenderHop, Valid: true}
		n.tracer.RecordApply(r.Key, r.Stamp, r.Parent, hop, r.Mech, n.store.Now(), round)
		n.emit(Event{Kind: EventApply, Key: r.Key, Stamp: r.Stamp, Peer: r.Parent})
	}
}

// HotEntries returns the node's current hot rumors as entries (the
// infective list). Rumors whose entry has been superseded are dropped.
func (n *Node) HotEntries() []store.Entry {
	n.mu.Lock()
	keys := n.hot.Keys()
	stamps := make(map[string]timestamp.T, len(keys))
	for _, k := range keys {
		if ts, ok := n.hot.Stamp(k); ok {
			stamps[k] = ts
		}
	}
	n.mu.Unlock()

	out := make([]store.Entry, 0, len(keys))
	for _, k := range keys {
		e, ok := n.store.Get(k)
		if !ok || stamps[k].Less(e.Stamp) {
			// Superseded or expired while hot: stop spreading the stale
			// version.
			n.mu.Lock()
			n.hot.Remove(k)
			n.mu.Unlock()
			continue
		}
		out = append(out, e)
	}
	return out
}

// HotEntriesTraced returns the hot rumors plus one provenance envelope per
// entry (nil envelopes when tracing is disabled) — the pull-side payload.
func (n *Node) HotEntriesTraced() ([]store.Entry, []trace.Hop) {
	entries := n.HotEntries()
	return entries, n.tracer.Envelopes(entries)
}

// pickPeer chooses a random peer, uniformly or by the weights installed
// with SetPeersWeighted.
func (n *Node) pickPeer() (Peer, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.peers) == 0 {
		return nil, false
	}
	if n.peerCum == nil {
		return n.peers[n.rng.Intn(len(n.peers))], true
	}
	total := n.peerCum[len(n.peerCum)-1]
	x := n.rng.Float64() * total
	i := sort.SearchFloat64s(n.peerCum, x)
	if i == len(n.peerCum) {
		i--
	}
	return n.peers[i], true
}

// ErrNoPeers is returned by Step methods when the node has no peers.
var ErrNoPeers = errors.New("node: no peers configured")

// StepRumor runs one rumor-mongering round: share hot rumors with one
// random peer and apply feedback. In Pull/PushPull modes it also pulls the
// peer's hot rumors.
func (n *Node) StepRumor() error {
	peer, ok := n.pickPeer()
	if !ok {
		return ErrNoPeers
	}
	n.rounds.Add(1)
	n.mu.Lock()
	n.stats.RumorRuns++
	n.mu.Unlock()
	began := time.Now()

	mode := n.cfg.Rumor.Mode
	if mode == core.Push || mode == core.PushPull {
		hot, hops := n.HotEntriesTraced()
		// Clamp the batch so a push stays small (and, over the TCP/UDP
		// transport, datagram-sized); the rest stays hot for later rounds.
		if mb := n.cfg.Rumor.MaxBatch; mb > 0 && len(hot) > mb {
			hot = hot[:mb]
			if len(hops) > mb {
				hops = hops[:mb]
			}
		}
		if len(hot) > 0 {
			needed, err := peer.PushRumors(hot, hops)
			if err != nil {
				return fmt.Errorf("push rumors to %d: %w", peer.ID(), err)
			}
			n.mu.Lock()
			for i, e := range hot {
				if i < len(needed) {
					n.hot.Feedback(e.Key, needed[i])
				}
			}
			n.stats.EntriesSent += len(hot)
			n.mu.Unlock()
		}
	}
	if mode == core.Pull || mode == core.PushPull {
		entries, hops, err := peer.PullRumors()
		if err != nil {
			return fmt.Errorf("pull rumors from %d: %w", peer.ID(), err)
		}
		n.applyRumors(entries, hops, trace.MechRumorPull)
		n.mu.Lock()
		n.stats.EntriesReceived += len(entries)
		n.mu.Unlock()
	}
	n.emit(Event{Kind: EventRumor, Peer: peer.ID(), Duration: time.Since(began)})
	n.log.Debug("rumor round finished", "peer", int(peer.ID()))
	return nil
}

// StepAntiEntropy runs one anti-entropy conversation with a random peer,
// applying the configured redistribution policy to repaired updates.
func (n *Node) StepAntiEntropy() error {
	peer, ok := n.pickPeer()
	if !ok {
		return ErrNoPeers
	}
	n.rounds.Add(1)
	before := n.store.Checksum()
	began := time.Now()
	st, err := peer.AntiEntropy(n.cfg.Resolve, n.store, n.tracer)
	if err != nil {
		return fmt.Errorf("anti-entropy with %d: %w", peer.ID(), err)
	}
	elapsed := time.Since(began)
	n.mu.Lock()
	n.stats.AntiEntropyRuns++
	n.stats.EntriesSent += st.EntriesSent
	n.stats.EntriesReceived += st.EntriesReceived
	n.stats.EntriesApplied += st.EntriesApplied
	if st.FullCompare {
		n.stats.FullCompares++
	}
	n.mu.Unlock()
	// Infections repaired INTO this replica during the conversation.
	round := n.rounds.Load()
	for _, r := range st.Repairs {
		if r.Site != n.cfg.Site {
			continue
		}
		hop := trace.Hop{Parent: r.Parent, Count: r.SenderHop, Valid: true}
		n.tracer.RecordApply(r.Key, r.Stamp, r.Parent, hop, r.Mech, n.store.Now(), round)
		n.emit(Event{Kind: EventApply, Key: r.Key, Stamp: r.Stamp, Peer: peer.ID()})
	}
	n.emit(Event{Kind: EventAntiEntropy, Peer: peer.ID(), Stats: st, Duration: elapsed})
	n.log.Debug("anti-entropy finished", "peer", int(peer.ID()),
		"sent", st.EntriesSent, "received", st.EntriesReceived,
		"applied", st.EntriesApplied, "full_compare", st.FullCompare)

	if n.cfg.Redistribution == core.RedistributeNone {
		return nil
	}
	if n.store.Checksum() == before && st.EntriesApplied == 0 {
		return nil // nothing was repaired
	}
	n.redistributeRepaired(st)
	return nil
}

// redistributeRepaired applies §1.5's redistribution policy: an update the
// exchange moved becomes a hot rumor again (or is re-mailed). Bookkeeping
// happens under n.mu but network sends never do: RedistributeMail entries
// are collected under the lock and posted after it is released (through
// the outbox when the engine is on), so a slow peer cannot wedge every
// Stats/Update/pickPeer caller behind a redistribution in progress.
func (n *Node) redistributeRepaired(st core.ExchangeStats) {
	keys := st.RepairedKeys()
	if len(keys) == 0 {
		return
	}
	type mailing struct {
		entry store.Entry
		env   trace.Hop
	}
	var outgoing []mailing
	var peers []Peer
	// After the exchange both replicas hold every repaired entry, so this
	// node can redistribute all of them regardless of direction.
	n.mu.Lock()
	var done []string
	for _, key := range keys {
		e, ok := n.store.Get(key)
		if !ok {
			continue
		}
		switch n.cfg.Redistribution {
		case core.RedistributeRumor:
			n.hot.Add(key, e.Stamp)
		case core.RedistributeMail:
			outgoing = append(outgoing, mailing{entry: e, env: n.tracer.Envelope(key, e.Stamp)})
		}
		n.stats.Redistributed++
		done = append(done, key)
	}
	if len(outgoing) > 0 && n.outbox == nil {
		peers = append([]Peer(nil), n.peers...)
	}
	n.mu.Unlock()
	for _, m := range outgoing {
		if n.outbox != nil {
			n.outbox.enqueue(m.entry, m.env)
			continue
		}
		n.mailSerial(peers, m.entry, m.env)
	}
	if len(done) > 0 {
		n.emit(Event{Kind: EventRedistribute, Keys: done, Count: len(done)})
	}
}

// StepGC expires death certificates per §2.1 and prunes hot-list entries
// whose certificates vanished.
func (n *Node) StepGC() int {
	dropped := n.store.ExpireDeathCertificates(n.store.Now(), n.cfg.Tau1, n.cfg.Tau2)
	if dropped > 0 {
		n.mu.Lock()
		n.stats.CertificatesExpired += dropped
		n.mu.Unlock()
		n.emit(Event{Kind: EventGC, Count: dropped})
		n.log.Debug("death certificates expired", "dropped", dropped)
	}
	return dropped
}

// Start launches the background daemons configured with non-zero periods.
func (n *Node) Start() {
	if n.cfg.AntiEntropyEvery > 0 {
		n.wg.Add(1)
		go n.loop(n.cfg.AntiEntropyEvery, func() {
			if err := n.StepAntiEntropy(); err != nil && !errors.Is(err, ErrNoPeers) {
				n.log.Warn("anti-entropy round failed", "err", err)
			}
			n.StepGC()
		})
	}
	if n.cfg.RumorEvery > 0 {
		n.wg.Add(1)
		go n.loop(n.cfg.RumorEvery, func() {
			if err := n.StepRumor(); err != nil && !errors.Is(err, ErrNoPeers) {
				n.log.Warn("rumor round failed", "err", err)
			}
		})
	}
	if n.cfg.SnapshotPath != "" && n.cfg.SnapshotEvery > 0 {
		n.wg.Add(1)
		go n.loop(n.cfg.SnapshotEvery, func() {
			if err := n.SaveSnapshot(""); err != nil {
				n.log.Warn("periodic snapshot failed", "err", err)
			}
		})
	}
	go func() {
		n.wg.Wait()
		close(n.done)
	}()
}

func (n *Node) loop(every time.Duration, step func()) {
	defer n.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			step()
		case <-n.stop:
			return
		}
	}
}

// Stop terminates the daemons and waits for them to exit. It is safe to
// call Stop on a node that was never started only if Start was not called;
// Stop must be called at most once.
func (n *Node) Stop() {
	close(n.stop)
	if n.cfg.AntiEntropyEvery > 0 || n.cfg.RumorEvery > 0 ||
		(n.cfg.SnapshotPath != "" && n.cfg.SnapshotEvery > 0) {
		<-n.done
	}
	if n.outbox != nil {
		// Graceful flush: drain queued mail within the configured budget,
		// then drop what a backed-off peer still holds and stop the workers.
		n.outbox.stop()
	}
	if n.cfg.SnapshotPath != "" {
		_ = n.SaveSnapshot("") // best-effort final snapshot
	}
}
