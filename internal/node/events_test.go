package node

import (
	"sync"
	"testing"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// recorder collects events thread-safely.
type recorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *recorder) record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recorder) reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

func (r *recorder) byKind(k EventKind) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EventAntiEntropy, EventRumor, EventRedistribute, EventGC,
		EventMailFailed, EventUpdate, EventApply}
	for _, k := range kinds {
		if k.String() == "invalid" {
			t.Errorf("kind %d unnamed", int(k))
		}
	}
	if EventKind(0).String() != "invalid" {
		t.Error("zero kind should be invalid")
	}
}

func TestEventsEmitted(t *testing.T) {
	rec := &recorder{}
	src := timestamp.NewSimulated(1)
	a, err := New(Config{
		Site: 1, Clock: src.ClockAt(1), Seed: 1,
		Tau1: 5, Tau2: 5,
		OnEvent: rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Site: 2, Clock: src.ClockAt(2), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeers([]Peer{NewLocalPeer(b, 1)})

	// Anti-entropy repairing a cold entry fires exchange + redistribute.
	b.Store().Update("cold", store.Value("v"))
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	ae := rec.byKind(EventAntiEntropy)
	if len(ae) != 1 || ae[0].Peer != 2 || ae[0].Stats.EntriesApplied == 0 {
		t.Fatalf("anti-entropy events = %+v", ae)
	}
	rd := rec.byKind(EventRedistribute)
	if len(rd) != 1 || rd[0].Count != 1 || rd[0].Keys[0] != "cold" {
		t.Fatalf("redistribute events = %+v", rd)
	}

	// Rumor round fires EventRumor.
	if err := a.StepRumor(); err != nil {
		t.Fatal(err)
	}
	if len(rec.byKind(EventRumor)) != 1 {
		t.Fatal("rumor event missing")
	}

	// GC fires with the drop count.
	a.Delete("gone")
	src.Advance(100)
	a.StepGC()
	gc := rec.byKind(EventGC)
	if len(gc) != 1 || gc[0].Count != 1 {
		t.Fatalf("gc events = %+v", gc)
	}
}

func TestMailFailureEvent(t *testing.T) {
	rec := &recorder{}
	src := timestamp.NewSimulated(1)
	b, err := New(Config{Site: 2, Clock: src.ClockAt(2)})
	if err != nil {
		t.Fatal(err)
	}
	lp := NewLocalPeer(b, 1)
	lp.SetDown(true)

	a, err := New(Config{
		Site: 1, Clock: src.ClockAt(1),
		DirectMailOnUpdate: true,
		OnEvent:            rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeers([]Peer{lp})
	_ = a // Mail to a downed LocalPeer silently drops (returns nil)...
	a.Update("k", store.Value("v"))
	a.FlushMail(0)
	// ...so no failure event; flip to an erroring peer.
	if got := rec.byKind(EventMailFailed); len(got) != 0 {
		t.Fatalf("unexpected mail failures: %+v", got)
	}

	ep := &erroringPeer{id: 3}
	a.SetPeers([]Peer{ep})
	a.Update("k2", store.Value("v"))
	a.FlushMail(0) // wait for the drain; the failed batch is dropped, not retried
	if got := rec.byKind(EventMailFailed); len(got) != 1 || got[0].Peer != 3 || got[0].Count != 1 {
		t.Fatalf("mail failure events = %+v", got)
	}
}

// TestUpdateAndApplyEvents walks every origination/infection emission
// path: local update, mail delivery, a rumor push, and both sides of an
// anti-entropy conversation.
func TestUpdateAndApplyEvents(t *testing.T) {
	recA, recB := &recorder{}, &recorder{}
	src := timestamp.NewSimulated(1)
	a, err := New(Config{Site: 1, Clock: src.ClockAt(1), Seed: 1, OnEvent: recA.record})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Site: 2, Clock: src.ClockAt(2), Seed: 2, OnEvent: recB.record})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeers([]Peer{NewLocalPeer(b, 1)})
	b.SetPeers([]Peer{NewLocalPeer(a, 2)})

	// Local write: EventUpdate with the accepted entry's key and stamp.
	e := a.Update("k1", store.Value("v"))
	up := recA.byKind(EventUpdate)
	if len(up) != 1 || up[0].Key != "k1" || up[0].Stamp != e.Stamp {
		t.Fatalf("update events = %+v", up)
	}
	if len(recA.byKind(EventApply)) != 0 {
		t.Fatal("a local update must not count as an infection")
	}

	// Mail delivery that changes the recipient: EventApply there.
	b.HandleMail(e, trace.Hop{})
	ap := recB.byKind(EventApply)
	if len(ap) != 1 || ap[0].Key != "k1" || ap[0].Stamp != e.Stamp {
		t.Fatalf("apply events after mail = %+v", ap)
	}
	// Redelivery changes nothing, so no second apply.
	b.HandleMail(e, trace.Hop{})
	if got := recB.byKind(EventApply); len(got) != 1 {
		t.Fatalf("duplicate mail fired an apply: %+v", got)
	}

	// Rumor push: one apply per entry that landed.
	src.Advance(1)
	e2 := a.Update("k2", store.Value("v2"))
	needed := b.HandleRumors([]store.Entry{e2}, nil)
	if len(needed) != 1 || !needed[0] {
		t.Fatalf("needed = %v", needed)
	}
	found := false
	for _, ev := range recB.byKind(EventApply) {
		if ev.Key == "k2" && ev.Stamp == e2.Stamp {
			found = true
		}
	}
	if !found {
		t.Fatalf("rumor apply missing: %+v", recB.byKind(EventApply))
	}

	// Anti-entropy repairs flow both ways: the initiator emits applies for
	// entries it received, the responder (via the peer's noteRepaired) for
	// entries pushed onto it.
	src.Advance(1)
	a.Update("onlyA", store.Value("va"))
	src.Advance(1)
	b.Update("onlyB", store.Value("vb"))
	recA.reset()
	recB.reset()
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	gotA := recA.byKind(EventApply)
	if len(gotA) != 1 || gotA[0].Key != "onlyB" || gotA[0].Peer != 2 {
		t.Fatalf("initiator applies = %+v", gotA)
	}
	gotB := recB.byKind(EventApply)
	if len(gotB) != 1 || gotB[0].Key != "onlyA" || gotB[0].Peer != 1 {
		t.Fatalf("responder applies = %+v", gotB)
	}
}

// TestSetOnEvent covers late observer installation and removal.
func TestSetOnEvent(t *testing.T) {
	rec := &recorder{}
	n, err := New(Config{Site: 1, Clock: timestamp.NewSimulated(1).ClockAt(1)})
	if err != nil {
		t.Fatal(err)
	}
	n.Update("before", store.Value("v"))
	n.SetOnEvent(rec.record)
	n.Update("k", store.Value("v"))
	if got := rec.byKind(EventUpdate); len(got) != 1 || got[0].Key != "k" {
		t.Fatalf("after install: %+v", got)
	}
	n.SetOnEvent(nil)
	n.Update("after", store.Value("v"))
	if got := rec.byKind(EventUpdate); len(got) != 1 {
		t.Fatalf("events after removal: %+v", got)
	}
}

// TestEmitNotUnderNodeLock drives every emission path with an observer
// that try-locks n.mu: in this single-goroutine test a failed TryLock
// could only mean emit was called with the node's own lock held — the
// deadlock the emit contract rules out (observers may call back into the
// node).
func TestEmitNotUnderNodeLock(t *testing.T) {
	src := timestamp.NewSimulated(1)
	var a *Node
	probe := func(e Event) {
		if !a.mu.TryLock() {
			t.Errorf("emit(%v) called with n.mu held", e.Kind)
			return
		}
		a.mu.Unlock()
		// Re-entering the node exercises the contract for real.
		_ = a.Stats()
	}
	a, err := New(Config{
		Site: 1, Clock: src.ClockAt(1), Seed: 1,
		Tau1: 5, Tau2: 5,
		DirectMailOnUpdate: true,
		// Serial mail keeps this a single-goroutine test: with the async
		// engine a worker's emit could TryLock while the main goroutine
		// legitimately holds n.mu, a false positive. The serial path and
		// the workers' noteMailResult share the same no-locks-held emit.
		Outbox:  OutboxConfig{Workers: -1},
		OnEvent: probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Site: 2, Clock: src.ClockAt(2), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeers([]Peer{NewLocalPeer(b, 1)})

	a.Update("k", store.Value("v")) // update + mail
	b.Store().Update("cold", store.Value("v"))
	if err := a.StepAntiEntropy(); err != nil { // apply + redistribute + exchange
		t.Fatal(err)
	}
	if err := a.StepRumor(); err != nil { // rumor round
		t.Fatal(err)
	}
	e := b.Store().Update("mailed", store.Value("v"))
	a.HandleMail(e, trace.Hop{}) // apply via mail
	e2 := b.Store().Update("rumored", store.Value("v"))
	a.HandleRumors([]store.Entry{e2}, nil) // apply via rumor push
	a.ApplyRepair(b.Store().Update("fixed", store.Value("v")), 2, trace.Hop{}, trace.MechAntiEntropy)
	a.SetPeers([]Peer{&erroringPeer{id: 3}})
	a.Update("k2", store.Value("v")) // mail failure
	a.Delete("gone")                 // update (death certificate)
	src.Advance(100)
	a.StepGC() // gc
}

// TestEventsWithDaemonsRunning lets the background daemons race real
// client writes, then checks the observer saw the traffic. Run under
// -race this also proves the emission paths are data-race free.
func TestEventsWithDaemonsRunning(t *testing.T) {
	rec := &recorder{}
	a, err := New(Config{
		Site:               1,
		DirectMailOnUpdate: true,
		AntiEntropyEvery:   2 * time.Millisecond,
		RumorEvery:         time.Millisecond,
		OnEvent:            rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{
		Site:             2,
		AntiEntropyEvery: 2 * time.Millisecond,
		RumorEvery:       time.Millisecond,
		OnEvent:          rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeers([]Peer{NewLocalPeer(b, 1)})
	b.SetPeers([]Peer{NewLocalPeer(a, 2)})
	a.Start()
	b.Start()
	for i := 0; i < 5; i++ {
		a.Update("ka", store.Value{byte(i)})
		b.Update("kb", store.Value{byte(i)})
		time.Sleep(3 * time.Millisecond)
	}
	a.Stop()
	b.Stop()

	if got := rec.byKind(EventUpdate); len(got) != 10 {
		t.Errorf("update events = %d, want 10", len(got))
	}
	if len(rec.byKind(EventAntiEntropy)) == 0 {
		t.Error("no anti-entropy events under daemons")
	}
	if len(rec.byKind(EventRumor)) == 0 {
		t.Error("no rumor events under daemons")
	}
	if len(rec.byKind(EventApply)) == 0 {
		t.Error("no apply events although updates crossed replicas")
	}
}

// erroringPeer fails everything.
type erroringPeer struct{ id timestamp.SiteID }

func (p *erroringPeer) ID() timestamp.SiteID { return p.id }
func (p *erroringPeer) AntiEntropy(core.ResolveConfig, *store.Store, *trace.Tracer) (core.ExchangeStats, error) {
	return core.ExchangeStats{}, ErrPeerDown
}
func (p *erroringPeer) PushRumors([]store.Entry, []trace.Hop) ([]bool, error) {
	return nil, ErrPeerDown
}
func (p *erroringPeer) PullRumors() ([]store.Entry, []trace.Hop, error) {
	return nil, nil, ErrPeerDown
}
func (p *erroringPeer) Checksum(int64) (uint64, error) { return 0, ErrPeerDown }
func (p *erroringPeer) Mail(store.Entry, trace.Hop) error {
	return ErrPeerDown
}
