package node

import (
	"sync"
	"testing"

	"epidemic/internal/core"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// recorder collects events thread-safely.
type recorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *recorder) record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recorder) byKind(k EventKind) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EventAntiEntropy, EventRumor, EventRedistribute, EventGC, EventMailFailed}
	for _, k := range kinds {
		if k.String() == "invalid" {
			t.Errorf("kind %d unnamed", int(k))
		}
	}
	if EventKind(0).String() != "invalid" {
		t.Error("zero kind should be invalid")
	}
}

func TestEventsEmitted(t *testing.T) {
	rec := &recorder{}
	src := timestamp.NewSimulated(1)
	a, err := New(Config{
		Site: 1, Clock: src.ClockAt(1), Seed: 1,
		Tau1: 5, Tau2: 5,
		OnEvent: rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Site: 2, Clock: src.ClockAt(2), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeers([]Peer{NewLocalPeer(b, 1)})

	// Anti-entropy repairing a cold entry fires exchange + redistribute.
	b.Store().Update("cold", store.Value("v"))
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	ae := rec.byKind(EventAntiEntropy)
	if len(ae) != 1 || ae[0].Peer != 2 || ae[0].Stats.EntriesApplied == 0 {
		t.Fatalf("anti-entropy events = %+v", ae)
	}
	rd := rec.byKind(EventRedistribute)
	if len(rd) != 1 || rd[0].Count != 1 || rd[0].Keys[0] != "cold" {
		t.Fatalf("redistribute events = %+v", rd)
	}

	// Rumor round fires EventRumor.
	if err := a.StepRumor(); err != nil {
		t.Fatal(err)
	}
	if len(rec.byKind(EventRumor)) != 1 {
		t.Fatal("rumor event missing")
	}

	// GC fires with the drop count.
	a.Delete("gone")
	src.Advance(100)
	a.StepGC()
	gc := rec.byKind(EventGC)
	if len(gc) != 1 || gc[0].Count != 1 {
		t.Fatalf("gc events = %+v", gc)
	}
}

func TestMailFailureEvent(t *testing.T) {
	rec := &recorder{}
	src := timestamp.NewSimulated(1)
	b, err := New(Config{Site: 2, Clock: src.ClockAt(2)})
	if err != nil {
		t.Fatal(err)
	}
	lp := NewLocalPeer(b, 1)
	lp.SetDown(true)

	a, err := New(Config{
		Site: 1, Clock: src.ClockAt(1),
		DirectMailOnUpdate: true,
		OnEvent:            rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeers([]Peer{lp})
	_ = a // Mail to a downed LocalPeer silently drops (returns nil)...
	a.Update("k", store.Value("v"))
	// ...so no failure event; flip to an erroring peer.
	if got := rec.byKind(EventMailFailed); len(got) != 0 {
		t.Fatalf("unexpected mail failures: %+v", got)
	}

	ep := &erroringPeer{id: 3}
	a.SetPeers([]Peer{ep})
	a.Update("k2", store.Value("v"))
	if got := rec.byKind(EventMailFailed); len(got) != 1 || got[0].Peer != 3 {
		t.Fatalf("mail failure events = %+v", got)
	}
}

// erroringPeer fails everything.
type erroringPeer struct{ id timestamp.SiteID }

func (p *erroringPeer) ID() timestamp.SiteID { return p.id }
func (p *erroringPeer) AntiEntropy(core.ResolveConfig, *store.Store) (core.ExchangeStats, error) {
	return core.ExchangeStats{}, ErrPeerDown
}
func (p *erroringPeer) PushRumors([]store.Entry) ([]bool, error) { return nil, ErrPeerDown }
func (p *erroringPeer) PullRumors() ([]store.Entry, error)       { return nil, ErrPeerDown }
func (p *erroringPeer) Checksum(int64) (uint64, error)           { return 0, ErrPeerDown }
func (p *erroringPeer) Mail(store.Entry) error                   { return ErrPeerDown }
