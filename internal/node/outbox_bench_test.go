package node

import (
	"fmt"
	"sync"
	"testing"

	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// applyRumorsPerEntryLock is a bench-local replica of the pre-batching
// applyRumors hot path: one n.mu acquisition per applied entry. Kept here
// as the comparison baseline for BenchmarkApplyRumors.
func applyRumorsPerEntryLock(n *Node, entries []store.Entry, mech trace.Mechanism) {
	round := n.rounds.Load()
	for _, e := range entries {
		res := n.store.Apply(e)
		if !res.Changed() {
			continue
		}
		at := n.store.Now()
		n.mu.Lock()
		n.hot.Add(e.Key, e.Stamp)
		if n.activity != nil {
			n.activity.Touch(e.Key)
		}
		n.mu.Unlock()
		n.tracer.RecordApply(e.Key, e.Stamp, 0, trace.Hop{}, mech, at, round)
		n.emit(Event{Kind: EventApply, Key: e.Key, Stamp: e.Stamp})
	}
}

// benchApplyNode builds a node plus background Stats hammering — the
// concurrent-reader load the per-entry locking used to serialize against.
func benchApplyNode(b *testing.B) (*Node, func()) {
	b.Helper()
	n, err := New(Config{Site: 1, Outbox: OutboxConfig{Workers: -1}})
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = n.Stats()
				}
			}
		}()
	}
	return n, func() { close(stop); wg.Wait() }
}

// BenchmarkApplyRumors measures a 64-entry rumor batch landing on a
// replica under concurrent Stats readers: the shipped single-lock batching
// against the old per-entry lock/unlock pattern.
func BenchmarkApplyRumors(b *testing.B) {
	const batch = 64
	keys := make([]string, batch)
	for j := range keys {
		keys[j] = fmt.Sprintf("key-%03d", j)
	}
	fill := func(entries []store.Entry, round int) {
		for j := range entries {
			entries[j] = store.Entry{
				Key:   keys[j],
				Value: store.Value("v"),
				// A fresh stamp every round keeps every apply a real change.
				Stamp: timestamp.T{Time: int64(round + 1), Site: 2, Seq: uint32(j)},
			}
		}
	}
	b.Run("batched-lock", func(b *testing.B) {
		n, done := benchApplyNode(b)
		defer done()
		entries := make([]store.Entry, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fill(entries, i)
			n.applyRumors(entries, nil, trace.MechRumorPush)
		}
		b.ReportMetric(1, "locks/op")
	})
	b.Run("per-entry-lock", func(b *testing.B) {
		n, done := benchApplyNode(b)
		defer done()
		entries := make([]store.Entry, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fill(entries, i)
			applyRumorsPerEntryLock(n, entries, trace.MechRumorPush)
		}
		b.ReportMetric(batch, "locks/op")
	})
}
