package node

import (
	"testing"

	"epidemic/internal/store"
)

func TestActivityExchangeConverges(t *testing.T) {
	a, b, _ := twoNodes(t, nil)
	a.Update("x", store.Value("1"))
	a.Update("y", store.Value("2"))
	b.Update("z", store.Value("3"))

	// a ships batches until checksums agree (which requires b's side too:
	// run both directions).
	for round := 0; round < 10; round++ {
		if _, err := a.StepActivityExchange(2); err != nil {
			t.Fatal(err)
		}
		if _, err := b.StepActivityExchange(2); err != nil {
			t.Fatal(err)
		}
		if store.ContentEqual(a.Store(), b.Store()) {
			return
		}
	}
	t.Fatal("combined exchange never converged")
}

func TestActivityExchangeInSyncCostsOneProbe(t *testing.T) {
	a, b, _ := twoNodes(t, nil)
	e := a.Update("k", store.Value("v"))
	b.Store().Apply(e)
	sent, err := a.StepActivityExchange(4)
	if err != nil {
		t.Fatal(err)
	}
	if sent != 0 {
		t.Errorf("in-sync exchange sent %d entries", sent)
	}
}

func TestActivityExchangeNoFailureProbability(t *testing.T) {
	// Even with a deep cold history and a tiny batch size, the exchange
	// peels back until everything the partner lacks has been shipped.
	a, b, src := twoNodes(t, nil)
	for i := 0; i < 40; i++ {
		a.Update(key4(i), store.Value("v"))
		src.Advance(1)
	}
	// One shared entry newer than everything, so the head of the list is
	// useless and the divergence sits deep.
	e := a.Update("shared", store.Value("s"))
	b.Store().Apply(e)

	if _, err := a.StepActivityExchange(4); err != nil {
		t.Fatal(err)
	}
	if !store.ContentEqual(a.Store(), b.Store()) {
		t.Fatal("deep divergence not repaired")
	}
}

func TestActivityOrderUsefulMovesToFront(t *testing.T) {
	a, b, _ := twoNodes(t, nil)
	a.Update("old", store.Value("1"))
	a.Update("new", store.Value("2"))
	// Prime the activity list before priming b, so feedback applies.
	_ = a.ActivityOrder()

	// First exchange: both entries needed; order preserved with "new"
	// touched last... both get touched. Now sync b fully.
	if _, err := a.StepActivityExchange(8); err != nil {
		t.Fatal(err)
	}
	// Add a third entry only to b, making a's entries useless next time.
	b.Update("fresh", store.Value("3"))
	if _, err := a.StepActivityExchange(8); err != nil {
		t.Fatal(err)
	}
	order := a.ActivityOrder()
	// "fresh" arrived via nothing at a (one-way push), so a's list holds
	// old/new; both were useless in the second exchange and got demoted,
	// but relative order persists. Just verify the list is consistent.
	if len(order) < 2 {
		t.Fatalf("activity order too short: %v", order)
	}
	seen := make(map[string]bool)
	for _, k := range order {
		if seen[k] {
			t.Fatalf("duplicate key %q in activity order", k)
		}
		seen[k] = true
	}
}

// probeCountPeer wraps a peer and counts its checksum probes.
type probeCountPeer struct {
	Peer
	probes int
}

func (c *probeCountPeer) Checksum(tau1 int64) (uint64, error) {
	c.probes++
	return c.Peer.Checksum(tau1)
}

// TestActivityExchangeSkipsUselessProbes pins the probe economy: batches
// the peer needed nothing from, with no local writes in between, must not
// re-fetch the peer's checksum — the standing mismatch verdict holds.
func TestActivityExchangeSkipsUselessProbes(t *testing.T) {
	a, b, src := twoNodes(t, nil)
	// Deep divergence that is all useless to push: b has strictly more
	// than a, so every batch a offers is already known at b.
	for i := 0; i < 24; i++ {
		e := a.Update(key4(i), store.Value("v"))
		b.Store().Apply(e)
		src.Advance(1)
	}
	b.Update("bonly", store.Value("x"))

	cp := &probeCountPeer{Peer: a.Peers()[0]}
	a.SetPeers([]Peer{cp})
	if _, err := a.StepActivityExchange(4); err != nil {
		t.Fatal(err)
	}
	// One opening probe; the 6 all-useless batches must add none.
	if cp.probes != 1 {
		t.Errorf("exchange made %d checksum probes, want 1", cp.probes)
	}
}

// TestActivityExchangeReprobesAfterUsefulBatch is the counterweight: when a
// batch does repair the peer, the exchange must re-probe and stop early.
func TestActivityExchangeReprobesAfterUsefulBatch(t *testing.T) {
	a, b, _ := twoNodes(t, nil)
	a.Update("x", store.Value("1"))
	a.Update("y", store.Value("2"))

	cp := &probeCountPeer{Peer: a.Peers()[0]}
	a.SetPeers([]Peer{cp})
	if _, err := a.StepActivityExchange(8); err != nil {
		t.Fatal(err)
	}
	if !store.ContentEqual(a.Store(), b.Store()) {
		t.Fatal("one-way divergence not repaired")
	}
	// Opening probe + the post-batch probe that detected agreement.
	if cp.probes != 2 {
		t.Errorf("exchange made %d checksum probes, want 2", cp.probes)
	}
}

func TestActivityExchangeNoPeers(t *testing.T) {
	n, err := New(Config{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.StepActivityExchange(4); err != ErrNoPeers {
		t.Errorf("err = %v, want ErrNoPeers", err)
	}
}

func TestActivityExchangePartitionedPeer(t *testing.T) {
	a, _, _ := twoNodes(t, nil)
	lp := a.Peers()[0].(*LocalPeer)
	lp.SetDown(true)
	a.Update("k", store.Value("v"))
	if _, err := a.StepActivityExchange(4); err == nil {
		t.Error("exchange with downed peer should fail")
	}
}

func TestActivitySeededFromExistingStore(t *testing.T) {
	a, _, _ := twoNodes(t, nil)
	a.Store().Update("pre1", store.Value("1"))
	a.Store().Update("pre2", store.Value("2"))
	order := a.ActivityOrder()
	if len(order) != 2 {
		t.Fatalf("seeded order = %v", order)
	}
	// Fresh updates go to the front once the list exists.
	a.Update("hot", store.Value("3"))
	if got := a.ActivityOrder()[0]; got != "hot" {
		t.Errorf("front = %q, want hot", got)
	}
}

func key4(i int) string {
	return string([]byte{'k', byte('a' + i/10), byte('a' + i%10)})
}
