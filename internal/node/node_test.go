package node

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// twoNodes wires a pair of nodes over LocalPeers with a shared simulated
// clock.
func twoNodes(t *testing.T, cfgMut func(*Config)) (*Node, *Node, *timestamp.Simulated) {
	t.Helper()
	src := timestamp.NewSimulated(1)
	mk := func(site timestamp.SiteID) *Node {
		cfg := Config{Site: site, Clock: src.ClockAt(site), Seed: int64(site) + 100}
		if cfgMut != nil {
			cfgMut(&cfg)
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b := mk(1), mk(2)
	a.SetPeers([]Peer{NewLocalPeer(b, 1)})
	b.SetPeers([]Peer{NewLocalPeer(a, 2)})
	return a, b, src
}

func TestNewDefaults(t *testing.T) {
	n, err := New(Config{Site: 7})
	if err != nil {
		t.Fatal(err)
	}
	if n.Site() != 7 {
		t.Errorf("Site = %d", n.Site())
	}
	if n.Store() == nil {
		t.Fatal("no store")
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{Site: 1, Rumor: core.RumorConfig{K: -1, Mode: core.Push}}); err == nil {
		t.Error("bad rumor config accepted")
	}
	if _, err := New(Config{Site: 1, Resolve: core.ResolveConfig{Mode: core.Push, Strategy: core.ComparePeelBack}}); err == nil {
		t.Error("bad resolve config accepted")
	}
}

func TestUpdateLookupLocal(t *testing.T) {
	a, _, _ := twoNodes(t, nil)
	a.Update("k", store.Value("v"))
	if v, ok := a.Lookup("k"); !ok || string(v) != "v" {
		t.Fatalf("Lookup = %q, %v", v, ok)
	}
	if len(a.HotEntries()) != 1 {
		t.Fatal("fresh update should be hot")
	}
	if a.Stats().UpdatesAccepted != 1 {
		t.Fatal("stats not counted")
	}
}

func TestDirectMailDelivers(t *testing.T) {
	a, b, _ := twoNodes(t, func(c *Config) { c.DirectMailOnUpdate = true })
	a.Update("k", store.Value("v"))
	if !a.FlushMail(0) { // Update only enqueues; wait for the outbox drain
		t.Fatal("outbox flush timed out")
	}
	if v, ok := b.Lookup("k"); !ok || string(v) != "v" {
		t.Fatalf("mail did not deliver: %q %v", v, ok)
	}
	if a.Stats().MailSent != 1 {
		t.Fatalf("MailSent = %d", a.Stats().MailSent)
	}
	// The mailed update is hot at the recipient too.
	if len(b.HotEntries()) != 1 {
		t.Fatal("mailed update should be hot at recipient")
	}
}

func TestRumorPushPropagates(t *testing.T) {
	a, b, _ := twoNodes(t, func(c *Config) {
		c.Rumor = core.RumorConfig{K: 2, Counter: true, Feedback: true, Mode: core.Push}
	})
	a.Update("k", store.Value("v"))
	if err := a.StepRumor(); err != nil {
		t.Fatal(err)
	}
	if v, ok := b.Lookup("k"); !ok || string(v) != "v" {
		t.Fatalf("rumor did not deliver: %q %v", v, ok)
	}
}

func TestRumorPullPropagates(t *testing.T) {
	a, b, _ := twoNodes(t, func(c *Config) {
		c.Rumor = core.RumorConfig{K: 2, Counter: true, Feedback: true, Mode: core.Pull}
	})
	b.Update("k", store.Value("v")) // hot at b
	if err := a.StepRumor(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Lookup("k"); !ok {
		t.Fatal("pull did not fetch the rumor")
	}
}

func TestRumorDiesAfterKUnnecessary(t *testing.T) {
	a, b, _ := twoNodes(t, func(c *Config) {
		c.Rumor = core.RumorConfig{K: 2, Counter: true, Feedback: true, Mode: core.Push}
	})
	a.Update("k", store.Value("v"))
	// First push: needed. Then two unnecessary pushes kill the rumor.
	for i := 0; i < 3; i++ {
		if err := a.StepRumor(); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.HotEntries()) != 0 {
		t.Fatal("rumor should be removed after k unnecessary shares")
	}
	_ = b
}

// batchPeer records the size of every rumor batch pushed at it.
type batchPeer struct {
	countingPeer
	batches []int
}

func (p *batchPeer) PushRumors(entries []store.Entry, _ []trace.Hop) ([]bool, error) {
	p.batches = append(p.batches, len(entries))
	// Report every entry as needed so the sender keeps them hot.
	needed := make([]bool, len(entries))
	for i := range needed {
		needed[i] = true
	}
	return needed, nil
}

func TestRumorMaxBatchClampsPushes(t *testing.T) {
	n, err := New(Config{
		Site:  1,
		Rumor: core.RumorConfig{K: 2, Counter: true, Feedback: true, Mode: core.Push, MaxBatch: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &batchPeer{countingPeer: countingPeer{id: 2}}
	n.SetPeers([]Peer{p})
	for i := 0; i < 8; i++ {
		n.Update(string(rune('a'+i)), store.Value("v"))
	}
	for i := 0; i < 3; i++ {
		if err := n.StepRumor(); err != nil {
			t.Fatal(err)
		}
	}
	if len(p.batches) != 3 {
		t.Fatalf("batches = %v, want 3 pushes", p.batches)
	}
	for _, sz := range p.batches {
		if sz != 3 {
			t.Errorf("batch of %d entries, want MaxBatch=3 (all entries stay hot)", sz)
		}
	}
	// Uncapped entries stay hot for later rounds.
	if got := len(n.HotEntries()); got != 8 {
		t.Errorf("hot entries = %d, want 8", got)
	}
}

func TestStepRumorNoPeers(t *testing.T) {
	n, err := New(Config{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.StepRumor(); err != ErrNoPeers {
		t.Errorf("err = %v, want ErrNoPeers", err)
	}
	if err := n.StepAntiEntropy(); err != ErrNoPeers {
		t.Errorf("err = %v, want ErrNoPeers", err)
	}
}

func TestAntiEntropyRepairs(t *testing.T) {
	a, b, _ := twoNodes(t, nil)
	a.Update("x", store.Value("1"))
	b.Update("y", store.Value("2"))
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	if !store.ContentEqual(a.Store(), b.Store()) {
		t.Fatal("replicas differ after anti-entropy")
	}
	st := a.Stats()
	if st.AntiEntropyRuns != 1 || st.EntriesApplied == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestAntiEntropyRedistributesAsRumor(t *testing.T) {
	a, b, _ := twoNodes(t, func(c *Config) { c.Redistribution = core.RedistributeRumor })
	// Simulate an update that reached b but is no longer hot anywhere.
	e := b.Store().Update("cold", store.Value("v"))
	_ = e
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	// a repaired the miss; the update must be hot again at a.
	if len(a.HotEntries()) != 1 {
		t.Fatalf("repaired update not redistributed: hot=%d", len(a.HotEntries()))
	}
	if a.Stats().Redistributed != 1 {
		t.Errorf("Redistributed = %d", a.Stats().Redistributed)
	}
}

func TestAntiEntropyRedistributesByMail(t *testing.T) {
	a, b, _ := twoNodes(t, func(c *Config) { c.Redistribution = core.RedistributeMail })
	b.Store().Update("cold", store.Value("v"))
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	if !a.FlushMail(0) { // redistribution mails through the outbox
		t.Fatal("outbox flush timed out")
	}
	if a.Stats().MailSent == 0 {
		t.Error("expected remailing")
	}
}

func TestRedistributeNoneLeavesColdUpdatesCold(t *testing.T) {
	a, b, _ := twoNodes(t, func(c *Config) { c.Redistribution = core.RedistributeNone })
	b.Store().Update("cold", store.Value("v"))
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	if len(a.HotEntries()) != 0 {
		t.Error("conservative policy must not re-hot updates")
	}
	if _, ok := a.Lookup("cold"); !ok {
		t.Error("repair itself must still happen")
	}
}

func TestDeleteCreatesRetainedCertificate(t *testing.T) {
	a, b, _ := twoNodes(t, func(c *Config) { c.RetentionCount = 2 })
	a.Update("k", store.Value("v"))
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	dc := a.Delete("k")
	if !dc.IsDeath() {
		t.Fatal("Delete did not produce a death certificate")
	}
	if len(dc.Retention) != 2 {
		t.Fatalf("retention = %v, want 2 sites", dc.Retention)
	}
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup("k"); ok {
		t.Fatal("delete did not propagate")
	}
}

func TestStepGCExpires(t *testing.T) {
	a, _, src := twoNodes(t, func(c *Config) { c.Tau1 = 10; c.Tau2 = 20 })
	a.Delete("k")
	src.Advance(100)
	if dropped := a.StepGC(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if a.Stats().CertificatesExpired != 1 {
		t.Error("stats not counted")
	}
}

func TestHotEntriesDropsSuperseded(t *testing.T) {
	a, _, _ := twoNodes(t, nil)
	a.Update("k", store.Value("v1"))
	// Supersede directly in the store without touching the hot list.
	a.Store().Update("k", store.Value("v2"))
	hot := a.HotEntries()
	// The hot list entry for the old stamp must be dropped, not resent.
	for _, e := range hot {
		if string(e.Value) == "v1" {
			t.Fatal("stale version still hot")
		}
	}
}

func TestPeersAccessors(t *testing.T) {
	a, b, _ := twoNodes(t, nil)
	got := a.Peers()
	if len(got) != 1 || got[0].ID() != b.Site() {
		t.Fatalf("Peers = %v", got)
	}
	// Mutating the returned slice must not affect the node.
	got[0] = nil
	if a.Peers()[0] == nil {
		t.Fatal("Peers aliases internal state")
	}
}

func TestPartitionedPeerFailsExchanges(t *testing.T) {
	a, b, _ := twoNodes(t, nil)
	lp := a.Peers()[0].(*LocalPeer)
	lp.SetDown(true)
	a.SetPeers([]Peer{lp})
	a.Update("k", store.Value("v"))
	if err := a.StepRumor(); err == nil {
		t.Error("rumor to downed peer should fail")
	}
	if err := a.StepAntiEntropy(); err == nil {
		t.Error("anti-entropy to downed peer should fail")
	}
	lp.SetDown(false)
	if err := a.StepAntiEntropy(); err != nil {
		t.Errorf("recovered peer still failing: %v", err)
	}
	if _, ok := b.Lookup("k"); !ok {
		t.Error("update not delivered after partition heal")
	}
}

func TestMailLoss(t *testing.T) {
	a, b, _ := twoNodes(t, func(c *Config) { c.DirectMailOnUpdate = true })
	lp := a.Peers()[0].(*LocalPeer)
	lp.SetMailLoss(1) // drop everything
	a.SetPeers([]Peer{lp})
	a.Update("k", store.Value("v"))
	if !a.FlushMail(0) { // make sure the drop happened, not just a queue
		t.Fatal("outbox flush timed out")
	}
	if _, ok := b.Lookup("k"); ok {
		t.Fatal("lossy mail delivered anyway")
	}
	// Anti-entropy recovers the loss, as designed (§1.3).
	if err := a.StepAntiEntropy(); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup("k"); !ok {
		t.Fatal("anti-entropy did not recover lost mail")
	}
}

func TestStartStopDaemons(t *testing.T) {
	src := timestamp.NewSimulated(1)
	a, err := New(Config{
		Site: 1, Clock: src.ClockAt(1),
		AntiEntropyEvery: time.Millisecond,
		RumorEvery:       time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Site: 2, Clock: src.ClockAt(2)})
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeers([]Peer{NewLocalPeer(b, 1)})
	b.SetPeers([]Peer{NewLocalPeer(a, 2)})

	a.Update("k", store.Value("v"))
	a.Start()
	deadline := time.After(2 * time.Second)
	for {
		if _, ok := b.Lookup("k"); ok {
			break
		}
		select {
		case <-deadline:
			a.Stop()
			t.Fatal("daemons did not propagate update within deadline")
		case <-time.After(2 * time.Millisecond):
		}
	}
	a.Stop() // must not hang; waits for daemon exit
}

func TestStopWithoutDaemons(t *testing.T) {
	n, err := New(Config{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	n.Stop() // no daemons configured: immediate
}

func TestSnapshotPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "replica.snap")
	src := timestamp.NewSimulated(1)

	n1, err := New(Config{Site: 1, Clock: src.ClockAt(1), SnapshotPath: path})
	if err != nil {
		t.Fatal(err)
	}
	n1.Update("k", store.Value("v"))
	n1.Start()
	n1.Stop() // final snapshot

	// A restarted replica recovers its state.
	n2, err := New(Config{Site: 1, Clock: src.ClockAt(1), SnapshotPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := n2.Lookup("k"); !ok || string(v) != "v" {
		t.Fatalf("restart lost data: %q %v", v, ok)
	}
}

func TestSnapshotDaemonWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "replica.snap")
	n, err := New(Config{Site: 1, SnapshotPath: path, SnapshotEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	n.Update("k", store.Value("v"))
	n.Start()
	deadline := time.After(2 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		select {
		case <-deadline:
			n.Stop()
			t.Fatal("snapshot daemon never wrote")
		case <-time.After(2 * time.Millisecond):
		}
	}
	n.Stop()
}

func TestSaveSnapshotNoPath(t *testing.T) {
	n, err := New(Config{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SaveSnapshot(""); err == nil {
		t.Error("expected error without a path")
	}
}

func TestNewRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Site: 1, SnapshotPath: path}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}
