package node

import (
	"sync"
	"testing"
	"time"

	"epidemic/internal/core"
	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// mkEntry builds a store entry with an explicit stamp for queue tests.
func mkEntry(key string, t int64) store.Entry {
	return store.Entry{Key: key, Value: store.Value("v"), Stamp: timestamp.T{Time: t, Site: 1}}
}

// idleOutbox builds an engine with zero workers: enqueues accumulate and
// nothing drains, so queue state can be inspected deterministically.
// (node.New never builds one of these — withDefaults maps 0 to the default
// pool — but newOutbox takes the config as given.)
func idleOutbox(t *testing.T, queuePerPeer int, peers ...Peer) *outbox {
	t.Helper()
	n, err := New(Config{Site: 1, Outbox: OutboxConfig{Workers: -1}})
	if err != nil {
		t.Fatal(err)
	}
	ox := newOutbox(OutboxConfig{Workers: 0, QueuePerPeer: queuePerPeer}, n)
	ox.setPeers(peers)
	return ox
}

func TestOutboxCoalesceNewestStampWins(t *testing.T) {
	p := &countingPeer{id: 2}
	ox := idleOutbox(t, 16, p)

	ox.enqueue(mkEntry("a", 10), trace.Hop{})
	ox.enqueue(mkEntry("b", 11), trace.Hop{})
	ox.enqueue(mkEntry("a", 20), trace.Hop{}) // newer version supersedes in place
	ox.enqueue(mkEntry("a", 5), trace.Hop{})  // older version is absorbed

	q := ox.queues[2]
	if len(q.keys) != 2 || q.keys[0] != "a" || q.keys[1] != "b" {
		t.Fatalf("keys = %v, want [a b] (coalescing keeps queue position)", q.keys)
	}
	if got := q.byKey["a"].entry.Stamp.Time; got != 20 {
		t.Errorf("queued stamp for a = %d, want 20 (newest wins)", got)
	}
	if got := ox.coalesced.Load(); got != 2 {
		t.Errorf("coalesced = %d, want 2", got)
	}
	if ox.pending != 2 {
		t.Errorf("pending = %d, want 2", ox.pending)
	}

	b := q.drainLocked(time.Now())
	if len(b.Entries) != 2 || b.Coalesced != 2 {
		t.Errorf("drain = %d entries, coalesced %d; want 2 and 2", len(b.Entries), b.Coalesced)
	}
	if len(q.keys) != 0 || len(q.byKey) != 0 {
		t.Error("drain left queue state behind")
	}
}

func TestOutboxDropOldestOnOverflow(t *testing.T) {
	p := &countingPeer{id: 2}
	ox := idleOutbox(t, 2, p)

	ox.enqueue(mkEntry("a", 1), trace.Hop{})
	ox.enqueue(mkEntry("b", 2), trace.Hop{})
	ox.enqueue(mkEntry("c", 3), trace.Hop{}) // overflows: a (oldest) is dropped

	q := ox.queues[2]
	if len(q.keys) != 2 || q.keys[0] != "b" || q.keys[1] != "c" {
		t.Fatalf("keys = %v, want [b c]", q.keys)
	}
	if got := ox.dropped.Load(); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	if ox.pending != 2 {
		t.Errorf("pending = %d, want 2", ox.pending)
	}
}

func TestOutboxSetPeersDropsDepartedKeepsSurvivors(t *testing.T) {
	p2, p3 := &countingPeer{id: 2}, &countingPeer{id: 3}
	ox := idleOutbox(t, 16, p2, p3)
	ox.enqueue(mkEntry("a", 1), trace.Hop{})
	ox.enqueue(mkEntry("b", 2), trace.Hop{})

	// Site 3 departs; site 2's peer object is replaced by a membership
	// refresh — its mail must follow the site.
	p2b := &countingPeer{id: 2}
	ox.setPeers([]Peer{p2b})
	if got := ox.dropped.Load(); got != 2 {
		t.Errorf("dropped = %d, want 2 (departed peer's queue)", got)
	}
	if ox.pending != 2 {
		t.Errorf("pending = %d, want 2 (survivor keeps its mail)", ox.pending)
	}
	q := ox.queues[2]
	if q == nil || q.peer != Peer(p2b) {
		t.Fatal("surviving queue did not adopt the replacement peer object")
	}
	if len(q.keys) != 2 {
		t.Errorf("survivor queue has %d keys, want 2", len(q.keys))
	}
}

// gatedBatchPeer blocks every MailBatch until released, recording each
// batch it eventually receives.
type gatedBatchPeer struct {
	countingPeer
	entered chan struct{} // signalled when a delivery starts blocking
	gate    chan struct{} // receive one token per delivery
	mu      sync.Mutex
	batches []MailBatch
}

func (p *gatedBatchPeer) MailBatch(b MailBatch) error {
	p.entered <- struct{}{}
	<-p.gate
	p.mu.Lock()
	p.batches = append(p.batches, b)
	p.mu.Unlock()
	return nil
}

func (p *gatedBatchPeer) snapshot() []MailBatch {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]MailBatch(nil), p.batches...)
}

func TestOutboxBatchesQueueBuiltWhileSending(t *testing.T) {
	n, err := New(Config{Site: 1, DirectMailOnUpdate: true, Outbox: OutboxConfig{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	p := &gatedBatchPeer{
		countingPeer: countingPeer{id: 2},
		entered:      make(chan struct{}, 8),
		gate:         make(chan struct{}, 8),
	}
	n.SetPeers([]Peer{p})

	// First update drains immediately and blocks in MailBatch; the next
	// three queue up behind it, including one coalescing supersession.
	n.Update("k1", store.Value("v1"))
	<-p.entered // the k1 drain is in flight and wedged
	n.Update("k2", store.Value("v2"))
	n.Update("k3", store.Value("v3"))
	n.Update("k2", store.Value("v2'"))
	p.gate <- struct{}{}
	p.gate <- struct{}{}
	if !n.FlushMail(2 * time.Second) {
		t.Fatal("flush timed out")
	}
	<-p.entered // the coalesced drain

	batches := p.snapshot()
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2 (first entry, then the coalesced rest)", len(batches))
	}
	if len(batches[0].Entries) != 1 || batches[0].Entries[0].Key != "k1" {
		t.Errorf("first batch = %+v, want just k1", batches[0].Entries)
	}
	second := batches[1]
	if len(second.Entries) != 2 {
		t.Fatalf("second batch carried %d entries, want 2 (k2 coalesced with its rewrite)", len(second.Entries))
	}
	if second.Coalesced != 1 {
		t.Errorf("second batch coalesced = %d, want 1", second.Coalesced)
	}
	for _, e := range second.Entries {
		if e.Key == "k2" && string(e.Value) != "v2'" {
			t.Errorf("k2 shipped %q, want the newest version v2'", e.Value)
		}
	}

	s := n.Stats()
	if s.OutboxEnqueued != 3 || s.OutboxCoalesced != 1 || s.OutboxBatches != 2 {
		t.Errorf("stats = enq %d coal %d batches %d, want 3/1/2",
			s.OutboxEnqueued, s.OutboxCoalesced, s.OutboxBatches)
	}
	if s.MailSent != 3 {
		t.Errorf("MailSent = %d, want 3", s.MailSent)
	}
}

func TestOutboxBackoffAndFlushTimeout(t *testing.T) {
	n, err := New(Config{
		Site:               1,
		DirectMailOnUpdate: true,
		Outbox: OutboxConfig{
			Workers:      2,
			RetryBackoff: 50 * time.Millisecond,
			MaxBackoff:   time.Second,
			FlushTimeout: 100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	n.SetPeers([]Peer{&erroringPeer{id: 2}})

	// The first batch fails and is dropped (lossy mail, §1.2); the queue
	// enters backoff.
	n.Update("k1", store.Value("v"))
	if !n.FlushMail(2 * time.Second) {
		t.Fatal("flush after first failure timed out (failed batches must drop, not retry)")
	}
	if s := n.Stats(); s.MailFailed != 1 {
		t.Fatalf("MailFailed = %d, want 1", s.MailFailed)
	}

	// A second update lands inside the backoff window: it stays pending,
	// so a short flush must report failure rather than lie.
	n.Update("k2", store.Value("v"))
	if n.FlushMail(5 * time.Millisecond) {
		t.Error("flush succeeded while the peer's queue was backing off")
	}
	// Once the backoff expires the drain is attempted (and fails, and is
	// dropped), so a patient flush completes.
	if !n.FlushMail(2 * time.Second) {
		t.Fatal("flush never completed after backoff expiry")
	}
	if s := n.Stats(); s.MailFailed != 2 {
		t.Errorf("MailFailed = %d, want 2", s.MailFailed)
	}
}

// blockingMailPeer wedges every Mail call until the test releases it —
// the pathological slow peer of the Stats-under-lock regression.
type blockingMailPeer struct {
	countingPeer
	release chan struct{}
}

func (p *blockingMailPeer) Mail(store.Entry, trace.Hop) error {
	<-p.release
	return nil
}

// TestRedistributeMailDoesNotBlockStats pins the fix for a lock-ordering
// bug: redistributeRepaired used to hold n.mu across every peer Mail call,
// so one wedged peer made Stats (and Update, and pickPeer) hang. Serial
// mode (Workers < 0) exercises the same collect-then-send path the outbox
// case gets for free.
func TestRedistributeMailDoesNotBlockStats(t *testing.T) {
	a, err := New(Config{
		Site:           1,
		Redistribution: core.RedistributeMail,
		Outbox:         OutboxConfig{Workers: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	slow := &blockingMailPeer{countingPeer: countingPeer{id: 3}, release: make(chan struct{})}
	a.SetPeers([]Peer{slow})
	a.Update("k", store.Value("v"))

	// Redistribute k as an exchange would after repairing it: the remail
	// wedges on the slow peer, outside n.mu.
	done := make(chan struct{})
	go func() {
		a.redistributeRepaired(core.ExchangeStats{AppliedKeys: []string{"k"}})
		close(done)
	}()

	probe := make(chan Stats, 1)
	go func() { probe <- a.Stats() }()
	select {
	case <-probe:
		// Stats returned while mail was blocked: the lock is free.
	case <-time.After(2 * time.Second):
		t.Fatal("Stats() blocked behind a wedged redistribution mail")
	}
	select {
	case <-done:
		t.Fatal("redistribution finished without the peer unblocking — the wedge never engaged")
	default:
	}

	close(slow.release)
	<-done
	if s := a.Stats(); s.Redistributed != 1 || s.MailSent != 1 {
		t.Errorf("redistributed %d, mail sent %d; want 1 and 1", s.Redistributed, s.MailSent)
	}
}
