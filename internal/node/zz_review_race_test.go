package node

import (
	"testing"
	"time"
)

// Review repro: setPeers mutates q.peer under ox.mu while a worker reads
// q.peer after releasing ox.mu (sendBatch call).
func TestReviewOutboxSetPeersRace(t *testing.T) {
	n, err := New(Config{Site: 1, DirectMailOnUpdate: true})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(Config{Site: 2, Outbox: OutboxConfig{Workers: -1}})
	p := NewLocalPeer(b, 1)
	n.SetPeers([]Peer{p})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			n.SetPeers([]Peer{NewLocalPeer(b, 1)})
		}
	}()
	for i := 0; i < 2000; i++ {
		n.Update("k", []byte("v"))
	}
	<-done
	n.FlushMail(time.Second)
	n.Stop()
}
