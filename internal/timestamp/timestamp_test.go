package timestamp

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestLessOrdering(t *testing.T) {
	tests := []struct {
		name string
		a, b T
		want bool
	}{
		{name: "time dominates", a: T{Time: 1, Site: 9, Seq: 9}, b: T{Time: 2}, want: true},
		{name: "time dominates reverse", a: T{Time: 2}, b: T{Time: 1, Site: 9, Seq: 9}, want: false},
		{name: "site breaks time tie", a: T{Time: 5, Site: 1}, b: T{Time: 5, Site: 2}, want: true},
		{name: "seq breaks site tie", a: T{Time: 5, Site: 1, Seq: 0}, b: T{Time: 5, Site: 1, Seq: 1}, want: true},
		{name: "equal is not less", a: T{Time: 5, Site: 1, Seq: 1}, b: T{Time: 5, Site: 1, Seq: 1}, want: false},
		{name: "zero before everything", a: Zero, b: T{Time: 1}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Less(tt.b); got != tt.want {
				t.Errorf("(%v).Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCompare(t *testing.T) {
	a := T{Time: 1, Site: 2, Seq: 3}
	b := T{Time: 1, Site: 2, Seq: 4}
	if got := a.Compare(b); got != -1 {
		t.Errorf("Compare = %d, want -1", got)
	}
	if got := b.Compare(a); got != 1 {
		t.Errorf("Compare = %d, want 1", got)
	}
	if got := a.Compare(a); got != 0 {
		t.Errorf("Compare = %d, want 0", got)
	}
}

func TestMax(t *testing.T) {
	a := T{Time: 1}
	b := T{Time: 2}
	if got := Max(a, b); got != b {
		t.Errorf("Max = %v, want %v", got, b)
	}
	if got := Max(b, a); got != b {
		t.Errorf("Max = %v, want %v", got, b)
	}
}

func TestIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Error("Zero.IsZero() = false")
	}
	if (T{Time: 1}).IsZero() {
		t.Error("non-zero IsZero() = true")
	}
}

func TestString(t *testing.T) {
	got := T{Time: 42, Site: 7, Seq: 1}.String()
	if got != "42@s7#1" {
		t.Errorf("String() = %q", got)
	}
}

// Property: Less is a strict total order (irreflexive, asymmetric,
// trichotomous) on arbitrary timestamps.
func TestLessIsStrictTotalOrderProperty(t *testing.T) {
	f := func(at, bt int64, as, bs int32, aq, bq uint32) bool {
		a := T{Time: at, Site: SiteID(as), Seq: aq}
		b := T{Time: bt, Site: SiteID(bs), Seq: bq}
		if a.Less(a) || b.Less(b) {
			return false // irreflexive
		}
		if a.Less(b) && b.Less(a) {
			return false // asymmetric
		}
		// trichotomy
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is consistent with Less.
func TestCompareConsistentProperty(t *testing.T) {
	f := func(at, bt int64, as, bs int32) bool {
		a := T{Time: at, Site: SiteID(as)}
		b := T{Time: bt, Site: SiteID(bs)}
		switch a.Compare(b) {
		case -1:
			return a.Less(b)
		case 1:
			return b.Less(a)
		default:
			return a == b
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWallClockMonotonicUnique(t *testing.T) {
	c := WallClock(3)
	prev := c.Now()
	for i := 0; i < 10_000; i++ {
		cur := c.Now()
		if !prev.Less(cur) {
			t.Fatalf("clock not strictly increasing: %v then %v", prev, cur)
		}
		prev = cur
	}
}

func TestWallClockConcurrentUnique(t *testing.T) {
	c := WallClock(1)
	const workers, per = 8, 2000
	var (
		mu   sync.Mutex
		seen = make(map[T]bool, workers*per)
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]T, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, c.Now())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, ts := range local {
				if seen[ts] {
					t.Errorf("duplicate timestamp %v", ts)
					return
				}
				seen[ts] = true
			}
		}()
	}
	wg.Wait()
}

func TestSimulatedClock(t *testing.T) {
	src := NewSimulated(100)
	c1 := src.ClockAt(1)
	c2 := src.ClockAt(2)

	a := c1.Now()
	b := c2.Now()
	if a.Time != 100 || b.Time != 100 {
		t.Fatalf("expected time 100, got %v %v", a, b)
	}
	if a == b {
		t.Fatal("clocks at different sites must not collide")
	}

	src.Advance(50)
	cNext := c1.Now()
	if cNext.Time != 150 {
		t.Fatalf("after Advance expected 150, got %v", cNext)
	}
	if !a.Less(cNext) {
		t.Fatal("later simulated timestamp must order after earlier one")
	}
}

func TestSimulatedSet(t *testing.T) {
	src := NewSimulated(10)
	src.Set(5) // going backwards is ignored
	if got := src.Read(); got != 10 {
		t.Fatalf("Read = %d, want 10", got)
	}
	src.Set(20)
	if got := src.Read(); got != 20 {
		t.Fatalf("Read = %d, want 20", got)
	}
}

func TestSimulatedAdvanceNegativeIgnored(t *testing.T) {
	src := NewSimulated(10)
	src.Advance(-5)
	if got := src.Read(); got != 10 {
		t.Fatalf("Read = %d, want 10", got)
	}
}

func TestSameSiteSameTickUsesSeq(t *testing.T) {
	src := NewSimulated(7)
	c := src.ClockAt(4)
	a := c.Now()
	b := c.Now()
	if a.Time != b.Time || a.Site != b.Site {
		t.Fatalf("expected same time/site: %v %v", a, b)
	}
	if b.Seq != a.Seq+1 {
		t.Fatalf("expected consecutive seq, got %v then %v", a, b)
	}
	if !a.Less(b) {
		t.Fatal("second timestamp must order after first")
	}
}

func TestSortStability(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts := make([]T, 500)
	for i := range ts {
		ts[i] = T{Time: rng.Int63n(10), Site: SiteID(rng.Intn(5)), Seq: uint32(rng.Intn(4))}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	for i := 1; i < len(ts); i++ {
		if ts[i].Less(ts[i-1]) {
			t.Fatalf("not sorted at %d: %v > %v", i, ts[i-1], ts[i])
		}
	}
}

func TestClockReadDoesNotConsume(t *testing.T) {
	src := NewSimulated(5)
	c := src.ClockAt(1)
	before := c.Read()
	ts := c.Now()
	if before != 5 || ts.Time != 5 {
		t.Fatalf("Read/Now mismatch: read=%d now=%v", before, ts)
	}
	// Read never goes below the last issued timestamp's time.
	if got := c.Read(); got < ts.Time {
		t.Fatalf("Read = %d regressed below %d", got, ts.Time)
	}
}

func TestSkewedClock(t *testing.T) {
	src := NewSimulated(100)
	fast := src.SkewedClockAt(1, 50)
	slow := src.SkewedClockAt(2, -50)
	if got := fast.Read(); got != 150 {
		t.Errorf("fast Read = %d, want 150", got)
	}
	if got := slow.Read(); got != 50 {
		t.Errorf("slow Read = %d, want 50", got)
	}
	// A fast clock's timestamp supersedes a slow clock's *later* write —
	// the practical anomaly the paper warns about.
	early := fast.Now()
	src.Advance(10)
	late := slow.Now()
	if late.Less(early) == false {
		t.Error("expected the genuinely later write to carry the smaller timestamp")
	}
	// Monotonicity per clock still holds.
	if next := fast.Now(); !early.Less(next) {
		t.Error("skewed clock not monotonic")
	}
}
