// Package timestamp provides the globally unique, totally ordered
// timestamps that the epidemic algorithms rely on to decide which of two
// values for the same key supersedes the other.
//
// The paper assumes an operation Now[] "returning a globally unique
// timestamp" and notes that "a pair with a larger timestamp will always
// supersede one with a smaller timestamp". We realise global uniqueness by
// combining wall-clock (or simulated) time with the originating site ID and
// a per-site sequence number, compared lexicographically. Two timestamps
// produced anywhere in the system are therefore never equal unless they are
// the same timestamp.
package timestamp

import (
	"fmt"
	"sync"
	"time"
)

// SiteID identifies a database replica. IDs are dense small integers in the
// simulator and arbitrary unique integers in real deployments.
type SiteID int32

// T is a globally unique timestamp. Ordering is lexicographic on
// (Time, Site, Seq): approximate wall time dominates, ties are broken by
// the originating site and then by a per-site sequence counter, so no two
// distinct events ever compare equal.
type T struct {
	// Time is the clock reading at the originating site, in nanoseconds
	// since the epoch (or simulated ticks). Clock skew between sites makes
	// the algorithms behave "formally but not practically", exactly as the
	// paper notes, so we keep the field coarse and let Site/Seq break ties.
	Time int64
	// Site is the site at which the update was accepted.
	Site SiteID
	// Seq disambiguates multiple updates accepted at the same site within
	// one clock reading.
	Seq uint32
}

// Zero is the timestamp smaller than every timestamp produced by a clock.
// It is the timestamp of the "never written" entry.
var Zero = T{}

// Less reports whether t orders strictly before u.
func (t T) Less(u T) bool {
	if t.Time != u.Time {
		return t.Time < u.Time
	}
	if t.Site != u.Site {
		return t.Site < u.Site
	}
	return t.Seq < u.Seq
}

// Compare returns -1, 0, or +1 as t orders before, equal to, or after u.
func (t T) Compare(u T) int {
	switch {
	case t.Less(u):
		return -1
	case u.Less(t):
		return 1
	default:
		return 0
	}
}

// IsZero reports whether t is the zero timestamp.
func (t T) IsZero() bool { return t == Zero }

// String renders the timestamp for logs and test failures.
func (t T) String() string {
	return fmt.Sprintf("%d@s%d#%d", t.Time, t.Site, t.Seq)
}

// Max returns the later of t and u.
func Max(t, u T) T {
	if t.Less(u) {
		return u
	}
	return t
}

// Clock produces globally unique timestamps for one site. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns a fresh timestamp strictly greater than any timestamp
	// previously returned by this clock.
	Now() T
	// Read returns the current time component without consuming a
	// timestamp. It is used to age entries (e.g. recent-update lists and
	// death-certificate thresholds).
	Read() int64
}

// siteClock is the common monotonic core shared by wall and simulated
// clocks.
type siteClock struct {
	mu   sync.Mutex
	site SiteID
	last int64
	seq  uint32
	read func() int64
}

func (c *siteClock) Now() T {
	c.mu.Lock()
	defer c.mu.Unlock()

	now := c.read()
	if now < c.last {
		// The underlying clock went backwards; hold our reading so the
		// timestamps we issue stay monotonic.
		now = c.last
	}
	if now == c.last {
		c.seq++
	} else {
		c.last = now
		c.seq = 0
	}
	return T{Time: now, Site: c.site, Seq: c.seq}
}

func (c *siteClock) Read() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.read()
	if now < c.last {
		now = c.last
	}
	return now
}

// WallClock returns a Clock for the given site backed by time.Now. Skew
// between sites is tolerated by design: larger timestamps supersede smaller
// ones regardless of which site issued them.
func WallClock(site SiteID) Clock {
	return &siteClock{site: site, read: func() int64 { return time.Now().UnixNano() }}
}

// Simulated is a manually advanced clock for deterministic simulation. All
// sites in a simulation typically share one Simulated time source via
// per-site views.
type Simulated struct {
	mu  sync.Mutex
	now int64
}

// NewSimulated returns a simulated time source starting at start.
func NewSimulated(start int64) *Simulated {
	return &Simulated{now: start}
}

// Advance moves simulated time forward by d ticks.
func (s *Simulated) Advance(d int64) {
	if d < 0 {
		return
	}
	s.mu.Lock()
	s.now += d
	s.mu.Unlock()
}

// Set moves simulated time to now if it is ahead of the current reading.
func (s *Simulated) Set(now int64) {
	s.mu.Lock()
	if now > s.now {
		s.now = now
	}
	s.mu.Unlock()
}

// Read returns the current simulated time.
func (s *Simulated) Read() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// ClockAt returns a site-local Clock view of the shared simulated time.
func (s *Simulated) ClockAt(site SiteID) Clock {
	return &siteClock{site: site, read: s.Read}
}

// SkewedClockAt returns a site-local Clock whose readings are offset by
// skew from the shared simulated time — a site whose clock is not
// synchronised to GMT. The paper notes that with badly skewed clocks the
// algorithms "work formally but not practically": replicas still
// converge, but a fast clock's updates supersede genuinely later writes
// from slow-clocked sites.
func (s *Simulated) SkewedClockAt(site SiteID, skew int64) Clock {
	return &siteClock{site: site, read: func() int64 { return s.Read() + skew }}
}
