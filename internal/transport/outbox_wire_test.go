package transport

import (
	"fmt"
	"net"
	"sort"
	"testing"
	"time"

	"epidemic/internal/node"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// outboxNode builds a node with the async outbound engine enabled and a
// short flush budget, serving gossip on an ephemeral port.
func outboxNode(t *testing.T, site timestamp.SiteID, src *timestamp.Simulated) (*node.Node, *Server) {
	t.Helper()
	n, err := node.New(node.Config{
		Site:               site,
		Clock:              src.ClockAt(site),
		Seed:               int64(site),
		DirectMailOnUpdate: true,
		Outbox:             node.OutboxConfig{Workers: 4, FlushTimeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	srv, err := Serve(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return n, srv
}

// TestMailBatchOverTCP drives a multi-entry outbox drain through the
// codec-v5 batched frame: after the first per-entry round trip settles the
// session codec, a whole drain ships as one reqMailBatch.
func TestMailBatchOverTCP(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)
	a, _ := outboxNode(t, 1, src)
	b, sb := outboxNode(t, 2, src)

	ws := &WireStats{}
	peer := NewTCPPeerWith(2, sb.Addr(), PeerOptions{Stats: ws})
	a.SetPeers([]node.Peer{peer})

	// First round primes the codec (one per-entry Mail round trip).
	a.Update("prime", store.Value("v"))
	if !a.FlushMail(0) {
		t.Fatal("priming flush timed out")
	}
	// Second round: several keys drain as one batched frame.
	for i := 0; i < 5; i++ {
		a.Update(fmt.Sprintf("k%d", i), store.Value("v"))
	}
	if !a.FlushMail(0) {
		t.Fatal("batch flush timed out")
	}

	for i := 0; i < 5; i++ {
		if _, ok := b.Lookup(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d never arrived", i)
		}
	}
	snap := ws.Snapshot()
	if snap.MailBatches == 0 {
		t.Error("no batched mail frames on a v5<->v5 session")
	}
	if snap.MailBatchEntries == 0 {
		t.Error("batched frames carried no entries")
	}
	if snap.MailFallbackEntries != 0 {
		t.Errorf("fallback entries = %d on a v5 session, want 0", snap.MailFallbackEntries)
	}
	if s := b.Stats(); s.MailBatchesReceived == 0 {
		t.Error("receiver never counted a mail batch")
	}
}

// TestMailBatchMixedCodecConvergence ships the same update set from a v5
// sender to receivers pinned at every older codec level. Pre-v5 peers get
// transparent per-entry fallback; everyone ends with the identical key
// set.
func TestMailBatchMixedCodecConvergence(t *testing.T) {
	cases := []struct {
		peerCodec string
		batched   bool // the wire should show batched frames
	}{
		{"binary", true},
		{"binary-v4", false},
		{"gob", false},
		{"legacy", false},
	}
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for _, tc := range cases {
		t.Run(tc.peerCodec, func(t *testing.T) {
			src := timestamp.NewSimulated(1 << 30)
			a, _ := outboxNode(t, 1, src)
			b, sb := outboxNode(t, 2, src)

			ws := &WireStats{}
			peer := NewTCPPeerWith(2, sb.Addr(), PeerOptions{Stats: ws, Codec: tc.peerCodec})
			a.SetPeers([]node.Peer{peer})

			a.Update("prime", store.Value("v"))
			if !a.FlushMail(0) {
				t.Fatal("priming flush timed out")
			}
			for _, k := range keys {
				a.Update(k, store.Value("v-"+k))
			}
			if !a.FlushMail(0) {
				t.Fatal("flush timed out")
			}

			var got []string
			for _, k := range b.Store().Keys() {
				if k != "prime" {
					got = append(got, k)
				}
			}
			sort.Strings(got)
			want := append([]string(nil), keys...)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("receiver keys = %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("receiver keys = %v, want %v", got, want)
				}
			}

			snap := ws.Snapshot()
			if tc.batched {
				if snap.MailBatches == 0 {
					t.Error("v5 peer moved no batched frames")
				}
				if snap.MailFallbackEntries != 0 {
					t.Errorf("v5 peer degraded %d entries to fallback", snap.MailFallbackEntries)
				}
			} else {
				if snap.MailBatches != 0 {
					t.Errorf("pre-v5 peer shipped %d batched frames", snap.MailBatches)
				}
				if snap.MailFallbackEntries == 0 {
					t.Error("pre-v5 peer recorded no fallback entries")
				}
			}
		})
	}
}

// TestSlowPeerDoesNotDelayUpdateOrHealthyPeers is the isolation guarantee
// behind the engine: a blackholed peer (accepts, never reads) must neither
// stretch Update's return nor starve delivery to healthy peers.
func TestSlowPeerDoesNotDelayUpdateOrHealthyPeers(t *testing.T) {
	src := timestamp.NewSimulated(1 << 30)
	a, _ := outboxNode(t, 1, src)
	b, sb := outboxNode(t, 2, src)

	// The blackhole: a listener that accepts connections and then ignores
	// them, the worst kind of slow peer — TCP connects fine, every request
	// hangs until the client deadline.
	hole, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()
	go func() {
		for {
			conn, err := hole.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, read nothing
		}
	}()

	healthy := NewTCPPeer(2, sb.Addr())
	stalled := NewTCPPeerWith(3, hole.Addr().String(), PeerOptions{Timeout: 500 * time.Millisecond})
	a.SetPeers([]node.Peer{healthy, stalled})

	start := time.Now()
	a.Update("k", store.Value("v"))
	if took := time.Since(start); took > 200*time.Millisecond {
		t.Fatalf("Update took %v with a stalled peer; must return after an enqueue", took)
	}

	// The healthy peer must receive the update long before the stalled
	// peer's request deadline would even fire.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := b.Lookup("k"); ok && string(v) == "v" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthy peer starved behind the stalled one")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Site 3's batch is still pending or failing in the background; that
	// is the outbox's problem, not Update's. Flush generously so Stop's
	// own flush does not race the assertion window.
	a.FlushMail(3 * time.Second)
}
