package transport

import (
	"errors"
	"reflect"
	"testing"

	"epidemic/internal/timestamp"
)

// shardRequests are field shapes specific to the codec-v4 shard section:
// vector swaps, shard-scoped peels, and the zero section every other kind
// carries on a v4 session.
func shardRequests() []request {
	return []request{
		{Kind: reqShardVector, From: 4, Now: 77, Tau1: 9,
			Vector: []uint64{0, 1, ^uint64(0), 0xdeadbeef}},
		{Kind: reqShardVector, Vector: []uint64{5}},
		{Kind: reqPeelBackShard, From: 2, Shard: 13, ShardCount: 16,
			Bound: timestamp.T{Time: 50, Site: 1, Seq: 2}, Limit: 8},
		{Kind: reqPeelBackShard, Shard: 1023, ShardCount: 1024},
		{Kind: reqChecksum, Tau1: 42}, // empty shard section on v4
	}
}

func shardResponses() []response {
	return []response{
		{ShardCount: 16, Vector: []uint64{7, 0, 0xffffffffffffffff}, Checksum: 3, Now: 9},
		{ShardCount: 1, Vector: []uint64{0}},
		{Checksum: 11, More: true, Bound: timestamp.T{Time: -2, Site: 3}}, // empty section
	}
}

func normalizeShardReq(r *request) {
	normalizeReq(r)
	if len(r.Vector) == 0 {
		r.Vector = nil
	}
}

func normalizeShardResp(r *response) {
	normalizeResp(r)
	if len(r.Vector) == 0 {
		r.Vector = nil
	}
}

// TestCodecShardRoundTrip runs both the shard-specific shapes and the whole
// pre-v4 table through a codecBinaryShard session encode/decode.
func TestCodecShardRoundTrip(t *testing.T) {
	for i, req := range append(shardRequests(), codecRequests()...) {
		payload := appendRequest(nil, &req, codecBinaryShard)
		got := request{Shard: 99, ShardCount: 99, Vector: []uint64{99}}
		if err := decodeRequest(payload, &got, codecBinaryShard); err != nil {
			t.Fatalf("request case %d: decode: %v", i, err)
		}
		want := req
		normalizeShardReq(&want)
		normalizeShardReq(&got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("request case %d: round trip\n got %+v\nwant %+v", i, got, want)
		}
	}
	for i, resp := range append(shardResponses(), codecResponses()...) {
		payload := appendResponse(nil, &resp, codecBinaryShard)
		got := response{ShardCount: 99, Vector: []uint64{99}}
		if err := decodeResponse(payload, &got, codecBinaryShard); err != nil {
			t.Fatalf("response case %d: decode: %v", i, err)
		}
		want := resp
		normalizeShardResp(&want)
		normalizeShardResp(&got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("response case %d: round trip\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestCodecShardSectionGatedByVersion pins the downgrade semantics: a v2/v3
// encode of a request carrying shard fields drops them (they never reach an
// old peer), and a v3 frame decoded as v3 leaves the fields zero even when
// the decode target was dirty.
func TestCodecShardSectionGatedByVersion(t *testing.T) {
	req := shardRequests()[0]
	for _, codec := range []byte{codecBinary, codecBinaryDigest} {
		payload := appendRequest(nil, &req, codec)
		got := request{Shard: 99, ShardCount: 99, Vector: []uint64{99}}
		if err := decodeRequest(payload, &got, codec); err != nil {
			t.Fatalf("codec %d: decode: %v", codec, err)
		}
		if got.Shard != 0 || got.ShardCount != 0 || got.Vector != nil {
			t.Errorf("codec %d: shard section leaked through: %+v", codec, got)
		}
	}
	resp := shardResponses()[0]
	payload := appendResponse(nil, &resp, codecBinaryDigest)
	got := response{ShardCount: 99, Vector: []uint64{99}}
	if err := decodeResponse(payload, &got, codecBinaryDigest); err != nil {
		t.Fatal(err)
	}
	if got.ShardCount != 0 || got.Vector != nil {
		t.Errorf("v3 response decode kept shard section: %+v", got)
	}
}

// TestCodecShardTruncationEveryPrefix chops v4 payloads at every length:
// typed errors only, never a panic or a false success.
func TestCodecShardTruncationEveryPrefix(t *testing.T) {
	for i, req := range shardRequests() {
		payload := appendRequest(nil, &req, codecBinaryShard)
		for n := 0; n < len(payload); n++ {
			var got request
			err := decodeRequest(payload[:n], &got, codecBinaryShard)
			if err == nil {
				t.Fatalf("case %d: decode of %d/%d-byte prefix succeeded", i, n, len(payload))
			}
			if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrFrameGarbage) {
				t.Fatalf("case %d: prefix %d: untyped error %v", i, n, err)
			}
		}
	}
	for i, resp := range shardResponses() {
		payload := appendResponse(nil, &resp, codecBinaryShard)
		for n := 0; n < len(payload); n++ {
			var got response
			err := decodeResponse(payload[:n], &got, codecBinaryShard)
			if err == nil {
				t.Fatalf("case %d: decode of %d/%d-byte prefix succeeded", i, n, len(payload))
			}
			if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrFrameGarbage) {
				t.Fatalf("case %d: prefix %d: untyped error %v", i, n, err)
			}
		}
	}
}

// TestCodecShardForgedVectorCount hand-builds a v4 frame whose vector count
// promises far more 8-byte sums than the frame holds; the count-vs-remaining
// check must refuse it before allocating.
func TestCodecShardForgedVectorCount(t *testing.T) {
	req := request{Kind: reqShardVector}
	payload := appendRequest(nil, &req, codecBinaryShard)
	// The encoding ends ...Shard(0) ShardCount(0) vectorCount(0): forge the
	// final count byte into a huge uvarint.
	forged := append(payload[:len(payload)-1], 0xff, 0xff, 0xff, 0xff, 0x0f)
	var got request
	if err := decodeRequest(forged, &got, codecBinaryShard); !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("forged vector count: err = %v, want ErrTruncatedFrame", err)
	}
}
