package transport

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"epidemic/internal/obs/trace"
	"epidemic/internal/store"
	"epidemic/internal/timestamp"
)

// codecRequests covers the field shapes the binary codec must preserve:
// zero values, negative clocks, nil-vs-empty values (the death-certificate
// distinction), retention lists, and traced pushes.
func codecRequests() []request {
	return []request{
		{},
		{Kind: reqChecksum, Tau1: 42},
		{Kind: reqSync, From: 3, Checksum: 0xdeadbeefcafef00d, Now: -7, Tau: 100, Tau1: 1 << 40},
		{Kind: reqPeelBack, Bound: timestamp.T{Time: 99, Site: 2, Seq: 7}, Limit: 64},
		{
			Kind: reqMail,
			Entries: []store.Entry{
				{Key: "k", Value: store.Value("v"), Stamp: timestamp.T{Time: 1, Site: 1, Seq: 1}},
			},
		},
		{
			Kind: reqPushRumors,
			From: 9,
			Entries: []store.Entry{
				{Key: "", Value: store.Value{}, Stamp: timestamp.T{Time: -5, Site: 1}},
				{Key: "dead", Value: nil, Stamp: timestamp.T{Time: 2, Site: 2, Seq: 3},
					Activation: timestamp.T{Time: 8, Site: 2, Seq: 4},
					Retention:  []timestamp.SiteID{1, 5, 9}},
				{Key: "big", Value: store.Value(bytes.Repeat([]byte{0xab}, 300)),
					Stamp: timestamp.T{Time: 1 << 50, Site: 1 << 20, Seq: 1 << 30}},
			},
			Hops: []trace.Hop{
				{Parent: 4, Count: 2, Valid: true},
				{Parent: -1, Count: trace.HopUnknown},
				{},
			},
		},
	}
}

func codecResponses() []response {
	return []response{
		{},
		{Err: "remote exploded"},
		{InSync: true, Checksum: 12345, Now: 678},
		{More: true, Bound: timestamp.T{Time: -3, Site: 7, Seq: 1}},
		{Needed: []bool{true}},
		{Needed: []bool{true, false, true, false, true, false, true}},        // 7: partial byte
		{Needed: []bool{false, true, false, true, false, true, false, true}}, // 8: exact byte
		{Needed: append(make([]bool, 8), true)},                              // 9: byte + 1
		{Needed: func() []bool { n := make([]bool, 65); n[64] = true; return n }()},
		{
			Entries: []store.Entry{
				{Key: "x", Value: nil, Stamp: timestamp.T{Time: 5, Site: 5, Seq: 5}},
				{Key: "y", Value: store.Value("data"), Stamp: timestamp.T{Time: 6, Site: 6, Seq: 6}},
			},
			Hops:     []trace.Hop{{Parent: 1, Count: 1, Valid: true}, {Valid: false}},
			Checksum: 1, Now: 2, InSync: false, More: true,
		},
	}
}

// normalizeEntries maps the wire's nil/empty conventions onto reflect
// equality: a nil Entries/Hops/Needed slice and a zero-length one are the
// same wire object.
func normalizeReq(r *request) {
	if len(r.Entries) == 0 {
		r.Entries = nil
	}
	if len(r.Hops) == 0 {
		r.Hops = nil
	}
	for i := range r.Entries {
		if len(r.Entries[i].Retention) == 0 {
			r.Entries[i].Retention = nil
		}
	}
}

func normalizeResp(r *response) {
	if len(r.Entries) == 0 {
		r.Entries = nil
	}
	if len(r.Hops) == 0 {
		r.Hops = nil
	}
	if len(r.Needed) == 0 {
		r.Needed = nil
	}
	for i := range r.Entries {
		if len(r.Entries[i].Retention) == 0 {
			r.Entries[i].Retention = nil
		}
	}
}

func TestCodecRequestRoundTrip(t *testing.T) {
	for i, req := range codecRequests() {
		payload := appendRequest(nil, &req, codecBinary)
		// Decode into a dirty struct: every field must be overwritten.
		got := request{Kind: 99, From: 99, Checksum: 99, Now: 99, Tau: 99,
			Tau1: 99, Bound: timestamp.T{Time: 99}, Limit: 99,
			Entries: []store.Entry{{Key: "stale"}}, Hops: []trace.Hop{{Count: 9}}}
		if err := decodeRequest(payload, &got, codecBinary); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		want := req
		normalizeReq(&want)
		normalizeReq(&got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: round trip\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestCodecResponseRoundTrip(t *testing.T) {
	for i, resp := range codecResponses() {
		payload := appendResponse(nil, &resp, codecBinary)
		got := response{Needed: []bool{true}, Entries: []store.Entry{{Key: "stale"}},
			InSync: true, Checksum: 99, Now: 99, Bound: timestamp.T{Time: 99},
			More: true, Hops: []trace.Hop{{Count: 9}}, Err: "stale"}
		if err := decodeResponse(payload, &got, codecBinary); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		want := resp
		normalizeResp(&want)
		normalizeResp(&got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: round trip\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestCodecValueNilVsEmpty pins the death-certificate distinction on the
// wire: a nil value (deleted) and an empty value (present, zero bytes)
// must survive a round trip as themselves.
func TestCodecValueNilVsEmpty(t *testing.T) {
	req := request{Kind: reqMail, Entries: []store.Entry{
		{Key: "dead", Value: nil, Stamp: timestamp.T{Time: 1, Site: 1}},
		{Key: "empty", Value: store.Value{}, Stamp: timestamp.T{Time: 2, Site: 1}},
	}}
	var got request
	if err := decodeRequest(appendRequest(nil, &req, codecBinary), &got, codecBinary); err != nil {
		t.Fatal(err)
	}
	if got.Entries[0].Value != nil {
		t.Errorf("nil value decoded as %v", got.Entries[0].Value)
	}
	if got.Entries[1].Value == nil {
		t.Error("empty value decoded as nil")
	}
}

// TestCodecTruncationEveryPrefix chops valid payloads at every length:
// decode must fail with a typed error — never panic, never succeed (except
// at full length).
func TestCodecTruncationEveryPrefix(t *testing.T) {
	for i, req := range codecRequests() {
		payload := appendRequest(nil, &req, codecBinary)
		for n := 0; n < len(payload); n++ {
			var got request
			err := decodeRequest(payload[:n], &got, codecBinary)
			if err == nil {
				t.Fatalf("case %d: decode of %d/%d-byte prefix succeeded", i, n, len(payload))
			}
			if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrFrameGarbage) {
				t.Fatalf("case %d: prefix %d: untyped error %v", i, n, err)
			}
		}
	}
	for i, resp := range codecResponses() {
		payload := appendResponse(nil, &resp, codecBinary)
		for n := 0; n < len(payload); n++ {
			var got response
			err := decodeResponse(payload[:n], &got, codecBinary)
			if err == nil {
				t.Fatalf("case %d: decode of %d/%d-byte prefix succeeded", i, n, len(payload))
			}
			if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrFrameGarbage) {
				t.Fatalf("case %d: prefix %d: untyped error %v", i, n, err)
			}
		}
	}
}

// TestCodecTrailingGarbage appends junk after a valid payload: the decoder
// must notice the frame was not fully consumed.
func TestCodecTrailingGarbage(t *testing.T) {
	req := codecRequests()[2]
	payload := append(appendRequest(nil, &req, codecBinary), 0xde, 0xad)
	var got request
	if err := decodeRequest(payload, &got, codecBinary); !errors.Is(err, ErrFrameGarbage) {
		t.Errorf("decodeRequest err = %v, want ErrFrameGarbage", err)
	}
	resp := codecResponses()[2]
	rp := append(appendResponse(nil, &resp, codecBinary), 0xbe)
	var gotR response
	if err := decodeResponse(rp, &gotR, codecBinary); !errors.Is(err, ErrFrameGarbage) {
		t.Errorf("decodeResponse err = %v, want ErrFrameGarbage", err)
	}
}

// TestCodecForgedCountsRejected hand-builds payloads whose collection
// counts promise more than the frame holds; the sanity checks must refuse
// them before any large allocation.
func TestCodecForgedCountsRejected(t *testing.T) {
	// A request whose entry count claims 2^40 entries.
	var b []byte
	b = append(b, byte(reqPushRumors))
	b = appendUint32(b, 1)
	b = appendUint64(b, 0)
	b = appendVarint(b, 0) // Now
	b = appendVarint(b, 0) // Tau
	b = appendVarint(b, 0) // Tau1
	b = appendStamp(b, timestamp.T{})
	b = appendVarint(b, 0)      // Limit
	b = appendUvarint(b, 1<<40) // forged entry count
	var got request
	if err := decodeRequest(b, &got, codecBinary); !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("forged entry count: err = %v, want ErrTruncatedFrame", err)
	}

	// A response whose Needed count far exceeds 8 bits per remaining byte.
	var rb []byte
	rb = append(rb, 0) // flags
	rb = appendUint64(rb, 0)
	rb = appendVarint(rb, 0)
	rb = appendStamp(rb, timestamp.T{})
	rb = appendUvarint(rb, 1<<40) // forged Needed count
	var gotR response
	if err := decodeResponse(rb, &gotR, codecBinary); !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("forged needed count: err = %v, want ErrTruncatedFrame", err)
	}
}

func TestRequestWireSizeIsUpperBound(t *testing.T) {
	for i, req := range codecRequests() {
		actual := len(appendRequest(nil, &req, codecBinary))
		bound := requestWireSize(&req)
		if actual > bound {
			t.Errorf("case %d: encoded %d bytes > claimed bound %d", i, actual, bound)
		}
		if bound > actual+128 {
			t.Errorf("case %d: bound %d too loose for %d actual bytes", i, bound, actual)
		}
	}
}

// FuzzDecodeFrame feeds arbitrary bytes to both decoders. They must never
// panic, and anything that decodes cleanly must re-encode and re-decode to
// the same value (the codec is its own inverse on its image).
func FuzzDecodeFrame(f *testing.F) {
	for _, req := range codecRequests() {
		f.Add(appendRequest(nil, &req, codecBinary))
	}
	for _, resp := range codecResponses() {
		f.Add(appendResponse(nil, &resp, codecBinary))
	}
	// Seed valid v4 frames so the fuzzer starts with shard-vector and
	// shard-peel sections to mutate.
	for _, req := range shardRequests() {
		f.Add(appendRequest(nil, &req, codecBinaryShard))
	}
	for _, resp := range shardResponses() {
		f.Add(appendResponse(nil, &resp, codecBinaryShard))
	}
	// And valid v5 frames: mail batches with their telemetry section.
	for _, req := range mailRequests() {
		f.Add(appendRequest(nil, &req, codecBinaryMail))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		// Every payload is tried under the v2, v4 and v5 framings: the same
		// bytes mean different things per negotiated codec, and every decoder
		// must stay panic-free, typed on error, and self-inverse on success.
		for _, codec := range []byte{codecBinary, codecBinaryShard, codecBinaryMail} {
			var req request
			if err := decodeRequest(payload, &req, codec); err == nil {
				re := appendRequest(nil, &req, codec)
				var again request
				if err := decodeRequest(re, &again, codec); err != nil {
					t.Fatalf("codec %d: re-decode of re-encoded request failed: %v", codec, err)
				}
				normalizeShardReq(&req)
				normalizeShardReq(&again)
				if !reflect.DeepEqual(req, again) {
					t.Fatalf("codec %d: request not stable under re-encode:\n1st %+v\n2nd %+v", codec, req, again)
				}
			} else if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrFrameGarbage) {
				t.Fatalf("codec %d: decodeRequest returned untyped error %v", codec, err)
			}
			var resp response
			if err := decodeResponse(payload, &resp, codec); err == nil {
				re := appendResponse(nil, &resp, codec)
				var again response
				if err := decodeResponse(re, &again, codec); err != nil {
					t.Fatalf("codec %d: re-decode of re-encoded response failed: %v", codec, err)
				}
				normalizeShardResp(&resp)
				normalizeShardResp(&again)
				if !reflect.DeepEqual(resp, again) {
					t.Fatalf("codec %d: response not stable under re-encode:\n1st %+v\n2nd %+v", codec, resp, again)
				}
			} else if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrFrameGarbage) {
				t.Fatalf("codec %d: decodeResponse returned untyped error %v", codec, err)
			}
		}
	})
}

// TestCodecNames pins the codec and flag vocabulary.
func TestCodecNames(t *testing.T) {
	if codecName(codecGob) != "gob" || codecName(codecBinary) != "binary" ||
		codecName(codecBinaryDigest) != "binary" || codecName(codecBinaryShard) != "binary" ||
		codecName(codecBinaryMail) != "binary" || codecName(0) != "unknown" {
		t.Error("codecName vocabulary changed")
	}
	for _, tc := range []struct {
		in     string
		codec  byte
		legacy bool
		ok     bool
	}{
		{"", codecBinaryMail, false, true},
		{"binary", codecBinaryMail, false, true},
		{"binary-v2", codecBinary, false, true},
		{"binary-v3", codecBinaryDigest, false, true},
		{"binary-v4", codecBinaryShard, false, true},
		{"gob", codecGob, false, true},
		{"legacy", codecGob, true, true},
		{"protobuf", 0, false, false},
	} {
		c, l, err := parseCodec(tc.in)
		if (err == nil) != tc.ok || c != tc.codec || l != tc.legacy {
			t.Errorf("parseCodec(%q) = %d %v %v", tc.in, c, l, err)
		}
	}
	_ = fmt.Sprintf // keep fmt imported if cases above change
}
